#!/usr/bin/env bash
# Tier-1 verification: build + full test suite on the default preset, then
# the same suite under address+UB sanitizers (catches the memory bugs the
# fast interpreter paths could hide, e.g. decode-cache indexing).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== default preset: build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "== xlint: encoding-space audit + kernel sweep =="
./build/tools/xlint --audit --kernels

echo "== xrace: static race sweep + shadow-validated parallel conv =="
./build/tools/xrace --static --kernels --json /tmp/xrace-static.json
./build/tools/xrace --shadow --cores 4 --json /tmp/xrace-shadow.json

echo "== xfault: seeded fault campaign (gated) + determinism check =="
./build/tools/xfault --small --inject 100 --seed 2026 \
  --min-detected 1.0 --min-recovered 0.6 --json /tmp/xfault.json
./build/tools/xfault --small --inject 100 --seed 2026 \
  --json /tmp/xfault-rerun.json
cmp /tmp/xfault.json /tmp/xfault-rerun.json

echo "== clang-tidy (bugprone/performance/readability) =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset tidy
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-tidy -quiet \
      "src/.*\.cpp$" "tools/.*\.cpp$" "tests/.*\.cpp$" "bench/.*\.cpp$"
  else
    # Fall back to serial invocation when the parallel driver is absent.
    find src tools tests bench -name '*.cpp' -print0 |
      xargs -0 -n 1 clang-tidy -p build-tidy --quiet
  fi
else
  echo "clang-tidy not installed; skipping (config in .clang-tidy)"
fi

echo "== asan-ubsan preset: build + ctest =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)"

echo "verify: all suites passed"
