#!/usr/bin/env bash
# Tier-1 verification: build + full test suite on the default preset, then
# the same suite under address+UB sanitizers (catches the memory bugs the
# fast interpreter paths could hide, e.g. decode-cache indexing).
#
# Each step is timed; the run ends with a per-step wall-time summary, and
# a failing step aborts immediately with its name and exit code.
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_SECS=()
CURRENT_STEP=""

# step <name> <command...>: announce, run, time; abort with the step name
# on failure (the summary of completed steps still prints via the trap).
step() {
  CURRENT_STEP="$1"
  shift
  echo "== ${CURRENT_STEP} =="
  local t0 t1 rc=0
  t0=$(date +%s.%N)
  "$@" || rc=$?
  t1=$(date +%s.%N)
  STEP_NAMES+=("${CURRENT_STEP}")
  STEP_SECS+=("$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.1f", b - a }')")
  if [[ ${rc} -ne 0 ]]; then
    echo "verify: FAILED at step '${CURRENT_STEP}' (exit ${rc})" >&2
    exit "${rc}"
  fi
  CURRENT_STEP=""
}

summary() {
  local rc=$?
  if [[ ${#STEP_NAMES[@]} -gt 0 ]]; then
    echo
    echo "-- step wall times --"
    local i
    for i in "${!STEP_NAMES[@]}"; do
      printf '%9ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
    done
  fi
  if [[ ${rc} -ne 0 && -n "${CURRENT_STEP}" ]]; then
    echo "verify: FAILED at step '${CURRENT_STEP}' (exit ${rc})" >&2
  fi
  return "${rc}"
}
trap summary EXIT

step "configure (default preset)" cmake --preset default
step "build (default preset)" cmake --build --preset default -j "$(nproc)"
step "ctest (default preset)" ctest --preset default -j "$(nproc)"

step "xlint: encoding-space audit + kernel sweep" \
  ./build/tools/xlint --audit --kernels

# Every mpc operand format bit-exact vs golden, counter breakdown pure,
# cycles pinned to the uniform kernel at the activation width; writes
# BENCH_mixed.json (gated on all_ok via the exit status).
step "mixed-precision smoke (virtual-SIMD layers vs golden)" \
  ./build/bench/bench_mixed_precision

step "xrace: static race sweep" \
  ./build/tools/xrace --static --kernels --json /tmp/xrace-static.json
step "xrace: shadow-validated parallel conv" \
  ./build/tools/xrace --shadow --cores 4 --json /tmp/xrace-shadow.json

step "xtel: sampled telemetry + energy reconciliation" \
  ./build/tools/xtel --small --mode superblock --json /tmp/xtel.json
step "xtel: cluster heatmap reconciliation + scheduler parity" \
  ./build/tools/xtel --small --cores 4 --heatmap /tmp/xtel-heatmap.json

step "cluster: burst scheduler differential (2 + 8 cores)" \
  ./build/tests/test_cluster_sched \
  --gtest_filter='*/b8_c2:*/b8_c8:*/b4_c2:*/b4_c8:BurstSchedDiff.Budget*:BurstSchedDiff.Sampled*'

cluster_bench_step() {
  cmake --preset release-bench
  cmake --build --preset release-bench -j "$(nproc)" \
    --target bench_cluster_scaling
  local floor
  floor=$(python3 -c "import json; print(0.5 * json.load(open('BENCH_cluster.json'))['speedup_8core'])")
  (cd /tmp && "$OLDPWD"/build-bench/bench/bench_cluster_scaling \
    --min-speedup "$floor")
}
step "cluster: burst speedup floor (half committed baseline)" \
  cluster_bench_step

step "xfault: seeded fault campaign (gated)" \
  ./build/tools/xfault --small --inject 100 --seed 2026 \
  --min-detected 1.0 --min-recovered 0.6 --json /tmp/xfault.json
step "xfault: determinism rerun" \
  ./build/tools/xfault --small --inject 100 --seed 2026 \
  --json /tmp/xfault-rerun.json
step "xfault: rerun byte-compare" cmp /tmp/xfault.json /tmp/xfault-rerun.json

clang_tidy_step() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (config in .clang-tidy)"
    return 0
  fi
  cmake --preset tidy
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-tidy -quiet \
      "src/.*\.cpp$" "tools/.*\.cpp$" "tests/.*\.cpp$" "bench/.*\.cpp$"
  else
    # Fall back to serial invocation when the parallel driver is absent.
    find src tools tests bench -name '*.cpp' -print0 |
      xargs -0 -n 1 clang-tidy -p build-tidy --quiet
  fi
}
step "clang-tidy (bugprone/performance/readability)" clang_tidy_step

step "configure (asan-ubsan preset)" cmake --preset asan-ubsan
step "build (asan-ubsan preset)" \
  cmake --build --preset asan-ubsan -j "$(nproc)"
step "ctest (asan-ubsan preset)" ctest --preset asan-ubsan -j "$(nproc)"

echo "verify: all suites passed"
