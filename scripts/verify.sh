#!/usr/bin/env bash
# Tier-1 verification: build + full test suite on the default preset, then
# the same suite under address+UB sanitizers (catches the memory bugs the
# fast interpreter paths could hide, e.g. decode-cache indexing).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== default preset: build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "== asan-ubsan preset: build + ctest =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)"

echo "verify: all suites passed"
