// End-to-end 4-bit QNN inference on the simulated XpulpNN core: a small
// convolutional classifier runs layer by layer on the device, with every
// intermediate tensor checked bit-exactly against the host golden model.
//
// Network (all tensors 4-bit unsigned codes, weights 4-bit signed):
//   input  8x8x16
//   conv1  3x3, 16 -> 16 channels, pad 1        (XpulpNN kernel, pv.qnt)
//   pool1  2x2 max pooling -> 4x4x16            (pv.maxu.n kernel)
//   conv2  3x3, 16 -> 32 channels, pad 1
//   pool2  2x2 max pooling -> 2x2x32
//   fc     1x1 conv over the flattened 1x1x128 -> 10 class scores
//
// Weights are synthetic; per-channel thresholds are derived from activation
// quantiles exactly as a trained thresholding pipeline would produce them.
#include <cstdio>

#include "kernels/conv_layer.hpp"
#include "kernels/pool_gen.hpp"

using namespace xpulp;
using kernels::ConvGenOptions;
using kernels::ConvLayerData;
using kernels::ConvVariant;

namespace {

constexpr unsigned kBits = 4;

/// Build layer data for a *given* input: random weights plus per-channel
/// thresholds at the accumulator quantiles of this input (what a trained
/// batch-norm-folding pipeline produces).
ConvLayerData make_layer(const qnn::Tensor& input, const qnn::ConvSpec& spec,
                         u64 seed) {
  // Reuse the generator for weights/thresholds shape, then recompute
  // thresholds against the real input.
  ConvLayerData d = ConvLayerData::random(spec, seed);
  d.input = input;

  std::vector<qnn::Thresholds> per_channel;
  const int levels = 1 << spec.out_bits;
  const int positions = spec.out_h() * spec.out_w();
  // With few spatial positions per channel (e.g. the FC layer's single
  // output), per-channel quantiles degenerate; use quantiles of the whole
  // layer's accumulator distribution instead (shared thresholds).
  const bool global = positions < 2 * levels;
  auto quantile_thresholds = [&](std::vector<i32>& accs) {
    std::sort(accs.begin(), accs.end());
    std::vector<i16> th(static_cast<size_t>(levels - 1));
    i32 prev = -40000;
    for (int i = 1; i < levels; ++i) {
      i32 t = accs[std::min(accs.size() - 1,
                            static_cast<size_t>(i) * accs.size() / levels)];
      if (t <= prev) t = prev + 1;
      th[static_cast<size_t>(i - 1)] = static_cast<i16>(
          std::clamp<i32>(t, -32768, 32767));
      prev = th[static_cast<size_t>(i - 1)];
    }
    return qnn::Thresholds(spec.out_bits, std::move(th));
  };

  if (global) {
    std::vector<i32> accs;
    for (int oc = 0; oc < spec.out_c; ++oc) {
      for (int oy = 0; oy < spec.out_h(); ++oy) {
        for (int ox = 0; ox < spec.out_w(); ++ox) {
          accs.push_back(
              qnn::conv_accumulate(input, d.weights, spec, oy, ox, oc));
        }
      }
    }
    const auto shared = quantile_thresholds(accs);
    per_channel.assign(static_cast<size_t>(spec.out_c), shared);
  } else {
    for (int oc = 0; oc < spec.out_c; ++oc) {
      std::vector<i32> accs;
      accs.reserve(static_cast<size_t>(positions));
      for (int oy = 0; oy < spec.out_h(); ++oy) {
        for (int ox = 0; ox < spec.out_w(); ++ox) {
          accs.push_back(
              qnn::conv_accumulate(input, d.weights, spec, oy, ox, oc));
        }
      }
      per_channel.push_back(quantile_thresholds(accs));
    }
  }
  d.thresholds = qnn::LayerThresholds(spec.out_bits, std::move(per_channel));
  return d;
}

int check(const qnn::Tensor& device, const qnn::Tensor& golden,
          const char* stage) {
  int bad = 0;
  for (int i = 0; i < golden.elems(); ++i) {
    if (device.flat(i) != golden.flat(i)) ++bad;
  }
  std::printf("  %-8s %2dx%2dx%-3d  device vs golden: %s\n", stage,
              golden.shape().h, golden.shape().w, golden.shape().c,
              bad == 0 ? "bit-exact" : "MISMATCH");
  return bad;
}

}  // namespace

int main() {
  std::printf("4-bit QNN inference on the simulated XpulpNN core\n");
  std::printf("=================================================\n");

  const auto cfg = sim::CoreConfig::extended();

  // Synthetic input: a diagonal "stripe" pattern in 4-bit codes.
  qnn::Tensor input({8, 8, 16});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      for (int c = 0; c < 16; ++c) {
        input.at(y, x, c) = ((y + x + c) % 5 == 0) ? 15 : (x + c) % 4;
      }
    }
  }

  int total_bad = 0;
  cycles_t total_cycles = 0;
  std::printf("\nlayers:\n");

  // conv1: 8x8x16 -> 8x8x16.
  qnn::ConvSpec c1;
  c1.in_h = c1.in_w = 8;
  c1.in_c = 16;
  c1.out_c = 16;
  c1.in_bits = c1.w_bits = c1.out_bits = kBits;
  const auto l1 = make_layer(input, c1, 101);
  const auto r1 = kernels::run_conv_layer(l1, ConvVariant::kXpulpNN_HwQ, cfg);
  total_bad += check(r1.output, l1.golden(), "conv1");
  total_cycles += r1.perf.cycles;

  // pool1: 8x8x16 -> 4x4x16.
  const auto p1 = kernels::run_pool2x2(r1.output, kBits,
                                       kernels::PoolOp::kMax, cfg);
  total_bad += check(p1.output, qnn::maxpool2x2_ref(r1.output), "pool1");
  total_cycles += p1.perf.cycles;

  // conv2: 4x4x16 -> 4x4x32.
  qnn::ConvSpec c2;
  c2.in_h = c2.in_w = 4;
  c2.in_c = 16;
  c2.out_c = 32;
  c2.in_bits = c2.w_bits = c2.out_bits = kBits;
  const auto l2 = make_layer(p1.output, c2, 202);
  const auto r2 = kernels::run_conv_layer(l2, ConvVariant::kXpulpNN_HwQ, cfg);
  total_bad += check(r2.output, l2.golden(), "conv2");
  total_cycles += r2.perf.cycles;

  // pool2: 4x4x32 -> 2x2x32.
  const auto p2 = kernels::run_pool2x2(r2.output, kBits,
                                       kernels::PoolOp::kMax, cfg);
  total_bad += check(p2.output, qnn::maxpool2x2_ref(r2.output), "pool2");
  total_cycles += p2.perf.cycles;

  // fc: flatten to 1x1x128, classify into 10 codes via a pointwise conv
  // (the matmul subroutine in 2x1 blocking handles the odd 1x1 output).
  qnn::Tensor flat({1, 1, 128});
  for (int i = 0; i < 128; ++i) flat.flat(i) = p2.output.flat(i);
  qnn::ConvSpec fc;
  fc.in_h = fc.in_w = 1;
  fc.in_c = 128;
  fc.out_c = 10;
  fc.k_h = fc.k_w = 1;
  fc.pad = 0;
  fc.in_bits = fc.w_bits = fc.out_bits = kBits;
  const auto lf = make_layer(flat, fc, 303);
  ConvGenOptions fc_opts;
  fc_opts.pixel_block = 1;
  const auto rf =
      kernels::run_conv_layer(lf, ConvVariant::kXpulpNN_HwQ, cfg, fc_opts);
  total_bad += check(rf.output, lf.golden(), "fc");
  total_cycles += rf.perf.cycles;

  // argmax over the 10 class codes.
  int best = 0;
  for (int i = 1; i < 10; ++i) {
    if (rf.output.flat(i) > rf.output.flat(best)) best = i;
  }
  const auto gf = lf.golden();
  int gbest = 0;
  for (int i = 1; i < 10; ++i) {
    if (gf.flat(i) > gf.flat(gbest)) gbest = i;
  }

  std::printf("\nclass scores (4-bit codes): ");
  for (int i = 0; i < 10; ++i) std::printf("%d ", rf.output.flat(i));
  std::printf("\npredicted class: %d (golden model: %d) -> %s\n", best, gbest,
              best == gbest ? "agree" : "DISAGREE");
  std::printf("total device cycles: %llu (%.3f ms @ 250 MHz)\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<double>(total_cycles) / 250e6 * 1e3);
  std::printf("pipeline status: %s\n",
              total_bad == 0 ? "every stage bit-exact" : "MISMATCHES FOUND");
  return (total_bad == 0 && best == gbest) ? 0 : 1;
}
