// Quickstart: assemble a tiny XpulpNN program, run it on the simulated
// PULPissimo SoC, and inspect the results.
//
//   build/examples/quickstart
//
// The program packs eight 4-bit activations and eight 4-bit weights into
// one register each, multiply-accumulates them with a single pv.sdotusp.n,
// then re-quantizes the result with pv.qnt.n against a threshold tree.
#include <cstdio>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "qnn/thresholds.hpp"
#include "soc/pulpissimo.hpp"
#include "xasm/assembler.hpp"

using namespace xpulp;
namespace r = xasm::reg;

int main() {
  // ---- 1. Assemble ----
  xasm::Assembler a(0);
  a.li(r::a0, 0x87654321);          // activations: nibbles 1..8 (unsigned)
  a.li(r::a1, 0x211F211F);          // weights: f,1,1,2 pattern (signed)
  a.li(r::a2, 0);                   // accumulator
  a.pv_sdotusp(isa::SimdFmt::kN, r::a2, r::a0, r::a1);  // 8 MACs, 1 cycle
  a.pv_sdotusp(isa::SimdFmt::kN, r::a2, r::a0, r::a1);  // accumulate again
  a.li(r::a3, 0x2000);              // threshold-tree base address
  // Pack the accumulator twice (low/high half) and quantize both to 4 bits.
  a.p_exthz(r::t0, r::a2);
  a.slli(r::t1, r::a2, 16);
  a.or_(r::t0, r::t0, r::t1);
  a.pv_qnt(4, r::a4, r::t0, r::a3);
  a.ecall();
  const xasm::Program prog = a.finish();

  std::printf("assembled %u instructions (%u bytes):\n",
              prog.size_words(), prog.size_bytes());
  for (u32 i = 0; i < prog.size_words(); ++i) {
    const addr_t pc = prog.base() + i * 4;
    const auto in = isa::decode(prog.words()[i], pc);
    std::printf("  %04x:  %08x  %s\n", pc, prog.words()[i],
                isa::disassemble(in, pc).c_str());
  }

  // ---- 2. Load data + program into the SoC ----
  soc::Pulpissimo soc;  // extended core, 250 MHz, 512 kB SRAM
  soc.load(prog);
  Rng rng(1);
  const auto th = qnn::Thresholds::uniform(4, /*step=*/8, /*offset=*/20);
  const auto tree = qnn::LayerThresholds(4, {th, th}).serialize();
  soc.memory().write_block(0x2000, tree);

  // ---- 3. Run and inspect ----
  soc.run();
  const auto& perf = soc.core().perf();
  std::printf("\nexecution: %llu instructions in %llu cycles\n",
              static_cast<unsigned long long>(perf.instructions),
              static_cast<unsigned long long>(perf.cycles));
  std::printf("dot product result (a2)  = %d\n",
              static_cast<i32>(soc.core().reg(r::a2)));
  std::printf("quantized codes (a4)     = low %u, high %u\n",
              soc.core().reg(r::a4) & 0xf, (soc.core().reg(r::a4) >> 16) & 0xf);
  std::printf("pv.qnt pipeline stalls   = %llu cycles (paper: 9-cycle latency)\n",
              static_cast<unsigned long long>(perf.qnt_stall_cycles));
  std::printf("estimated SoC power      = %.2f mW @ 250 MHz\n",
              soc.power().soc_mw());

  // Cross-check against the host-side staircase.
  const i32 acc = static_cast<i32>(soc.core().reg(r::a2));
  const u32 expect = th.quantize(static_cast<i16>(acc));
  std::printf("\nhost staircase check: code(%d) = %u -> %s\n", acc, expect,
              (soc.core().reg(r::a4) & 0xf) == expect ? "match" : "MISMATCH");
  return (soc.core().reg(r::a4) & 0xf) == expect ? 0 : 1;
}
