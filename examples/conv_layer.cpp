// Run one quantized convolution layer (the paper's benchmark layer by
// default) on a chosen core/kernel configuration and report performance,
// power, and a bit-exactness check against the golden model.
//
//   build/examples/conv_layer [bits] [variant] [core]
//     bits    : 8 | 4 | 2                  (default 4)
//     variant : 8b | sub | swq | hwq       (default hwq)
//     core    : ri5cy | xpulpnn            (default xpulpnn)
//
// e.g.  build/examples/conv_layer 2 hwq xpulpnn
//       build/examples/conv_layer 4 sub ri5cy
#include <cstdio>
#include <cstring>

#include "kernels/conv_layer.hpp"
#include "power/power_model.hpp"

using namespace xpulp;
using kernels::ConvVariant;

int main(int argc, char** argv) {
  unsigned bits = 4;
  ConvVariant variant = ConvVariant::kXpulpNN_HwQ;
  sim::CoreConfig cfg = sim::CoreConfig::extended();

  if (argc > 1) bits = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2) {
    if (!std::strcmp(argv[2], "8b")) variant = ConvVariant::kXpulpV2_8b;
    else if (!std::strcmp(argv[2], "sub")) variant = ConvVariant::kXpulpV2_Sub;
    else if (!std::strcmp(argv[2], "swq")) variant = ConvVariant::kXpulpNN_SwQ;
    else if (!std::strcmp(argv[2], "hwq")) variant = ConvVariant::kXpulpNN_HwQ;
    else {
      std::fprintf(stderr, "unknown variant '%s'\n", argv[2]);
      return 2;
    }
  } else if (bits == 8) {
    variant = ConvVariant::kXpulpV2_8b;
  }
  if (argc > 3 && !std::strcmp(argv[3], "ri5cy")) cfg = sim::CoreConfig::ri5cy();

  const auto spec = qnn::ConvSpec::paper_layer(bits);
  std::printf("layer: %dx%dx%d input, %d filters %dx%dx%d, %u-bit, pad %d\n",
              spec.in_h, spec.in_w, spec.in_c, spec.out_c, spec.k_h, spec.k_w,
              spec.in_c, bits, spec.pad);
  std::printf("kernel: %s on core '%s'\n", kernels::variant_name(variant),
              cfg.name.c_str());

  const auto data = kernels::ConvLayerData::random(spec, 42);
  const auto res = kernels::run_conv_layer(data, variant, cfg);
  const auto gold = data.golden();

  int mismatches = 0;
  for (int i = 0; i < gold.elems(); ++i) {
    if (gold.flat(i) != res.output.flat(i)) ++mismatches;
  }

  const auto p = power::estimate_power(res.perf, res.activity, res.mem_stats,
                                       cfg);
  const power::OperatingPoint op;
  std::printf("\nresults:\n");
  std::printf("  MACs                 : %llu\n",
              static_cast<unsigned long long>(res.macs));
  std::printf("  cycles               : %llu (%.3f ms @ 250 MHz)\n",
              static_cast<unsigned long long>(res.perf.cycles),
              static_cast<double>(res.perf.cycles) / op.freq_hz * 1e3);
  std::printf("  MAC/cycle            : %.2f\n", res.macs_per_cycle());
  std::printf("  instructions         : %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(res.perf.instructions),
              static_cast<double>(res.perf.instructions) / res.perf.cycles);
  std::printf("  hw-loop back-edges   : %llu\n",
              static_cast<unsigned long long>(res.perf.hwloop_backedges));
  std::printf("  re-quantization      : %llu cycles (%.1f%% of total)\n",
              static_cast<unsigned long long>(res.quant_cycles),
              100.0 * static_cast<double>(res.quant_cycles) / res.perf.cycles);
  std::printf("  generated code       : %u bytes\n", res.code_bytes);
  std::printf("  SoC power            : %.2f mW   (core %.2f mW)\n",
              p.soc_mw(), p.core.core_mw());
  std::printf("  energy               : %.2f uJ\n",
              p.soc_mw() * 1e-3 *
                  (static_cast<double>(res.perf.cycles) / op.freq_hz) * 1e6);
  std::printf("  efficiency           : %.1f GMAC/s/W\n",
              power::gmac_per_s_per_w(res.macs, res.perf.cycles, p.soc_mw()));
  std::printf("  golden-model check   : %s (%d/%d mismatches)\n",
              mismatches == 0 ? "bit-exact" : "FAILED", mismatches,
              gold.elems());
  return mismatches == 0 ? 0 : 1;
}
