// Compare one quantized convolution across all four simulated platforms
// (extended XpulpNN core, baseline RI5CY, Cortex-M4, Cortex-M7) — a
// miniature of the paper's Fig. 8/9 story through the public API.
//
//   build/examples/isa_comparison [bits]    (default: 2)
#include <cstdio>
#include <cstdlib>

#include "armv7e/cmsis_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "power/power_model.hpp"

using namespace xpulp;
using kernels::ConvVariant;

int main(int argc, char** argv) {
  const unsigned bits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
  if (bits != 8 && bits != 4 && bits != 2) {
    std::fprintf(stderr, "bits must be 8, 4 or 2\n");
    return 2;
  }

  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, 2026);
  const auto gold = data.golden();
  auto mism = [&](const qnn::Tensor& t) {
    int bad = 0;
    for (int i = 0; i < gold.elems(); ++i) {
      if (t.flat(i) != gold.flat(i)) ++bad;
    }
    return bad;
  };

  std::printf("%u-bit convolution, %llu MACs, on four platforms\n", bits,
              static_cast<unsigned long long>(spec.macs()));
  std::printf("%-26s %12s %9s %9s %12s %6s\n", "platform", "cycles", "MAC/cyc",
              "ms", "GMAC/s/W", "check");

  // Extended core.
  {
    const auto cfg = sim::CoreConfig::extended();
    const auto v = bits == 8 ? ConvVariant::kXpulpV2_8b
                             : ConvVariant::kXpulpNN_HwQ;
    const auto r = kernels::run_conv_layer(data, v, cfg);
    const auto p = power::estimate_power(r.perf, r.activity, r.mem_stats, cfg);
    std::printf("%-26s %12llu %9.2f %9.3f %12.1f %6s\n",
                "XpulpNN (this work)",
                static_cast<unsigned long long>(r.perf.cycles),
                r.macs_per_cycle(),
                static_cast<double>(r.perf.cycles) / 250e6 * 1e3,
                power::gmac_per_s_per_w(r.macs, r.perf.cycles, p.soc_mw()),
                mism(r.output) == 0 ? "ok" : "BAD");
  }
  // Baseline RI5CY.
  {
    const auto cfg = sim::CoreConfig::ri5cy();
    const auto v = bits == 8 ? ConvVariant::kXpulpV2_8b
                             : ConvVariant::kXpulpV2_Sub;
    const auto r = kernels::run_conv_layer(data, v, cfg);
    const auto p = power::estimate_power(r.perf, r.activity, r.mem_stats, cfg);
    std::printf("%-26s %12llu %9.2f %9.3f %12.1f %6s\n", "RI5CY (XpulpV2)",
                static_cast<unsigned long long>(r.perf.cycles),
                r.macs_per_cycle(),
                static_cast<double>(r.perf.cycles) / 250e6 * 1e3,
                power::gmac_per_s_per_w(r.macs, r.perf.cycles, p.soc_mw()),
                mism(r.output) == 0 ? "ok" : "BAD");
  }
  // ARM Cortex-M models.
  for (const auto model : {armv7e::ArmModel::kCortexM4,
                           armv7e::ArmModel::kCortexM7}) {
    const auto r = armv7e::run_conv_layer_arm(data, model);
    const auto plat = model == armv7e::ArmModel::kCortexM4
                          ? power::stm32l4_platform()
                          : power::stm32h7_platform();
    const double macs_per_s =
        static_cast<double>(r.macs) * plat.freq_hz / r.perf.cycles;
    std::printf("%-26s %12llu %9.2f %9.3f %12.2f %6s\n", plat.name,
                static_cast<unsigned long long>(r.perf.cycles),
                r.macs_per_cycle(),
                static_cast<double>(r.perf.cycles) / plat.freq_hz * 1e3,
                macs_per_s / (plat.power_mw * 1e-3) * 1e-9,
                mism(r.output) == 0 ? "ok" : "BAD");
  }
  std::printf("\nall platforms compute the identical quantized output from\n");
  std::printf("the same packed tensors -- only the ISA support differs.\n");
  return 0;
}
