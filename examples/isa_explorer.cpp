// ISA explorer: assemble a text program (file argument or built-in demo),
// run it on a chosen core with an instruction trace, and dump the final
// register file and performance counters. Handy for experimenting with the
// XpulpNN instructions interactively.
//
//   build/examples/isa_explorer                 # run the built-in demo
//   build/examples/isa_explorer prog.s          # run your own program
//   build/examples/isa_explorer prog.s ri5cy    # ... on the baseline core
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "isa/disasm.hpp"
#include "sim/trace.hpp"
#include "soc/pulpissimo.hpp"
#include "xasm/text_asm.hpp"

using namespace xpulp;

namespace {

constexpr const char* kDemo = R"(# XpulpNN demo: dot-product 16 crumbs per instruction.
    li   a0, 0x5555AAAA     # activations: 16 2-bit codes
    li   a1, 0x00FF00FF     # weights: 16 2-bit signed values
    li   a2, 0
    li   t0, 8              # eight accumulation steps
  loop:
    pv.sdotusp.c a2, a0, a1
    addi t0, t0, -1
    bne  t0, zero, loop
    p.abs t1, a2
    p.cnt t2, a0
    ecall
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }
  sim::CoreConfig cfg = sim::CoreConfig::extended();
  if (argc > 2 && std::string(argv[2]) == "ri5cy") {
    cfg = sim::CoreConfig::ri5cy();
  }

  xasm::Program prog{0, {}};
  try {
    prog = xasm::assemble_text(source);
  } catch (const AsmError& e) {
    std::fprintf(stderr, "assembly error: %s\n", e.what());
    return 1;
  }
  std::printf("assembled %u instructions on core '%s'\n\n", prog.size_words(),
              cfg.name.c_str());

  soc::Pulpissimo soc(cfg);
  soc.load(prog);
  sim::TraceWriter trace(soc.core(), std::cout, /*limit=*/64);
  try {
    soc.run();
  } catch (const SimError& e) {
    std::fprintf(stderr, "\nexecution fault: %s\n", e.what());
    return 1;
  }
  if (trace.lines_written() == 64) std::printf("... (trace truncated)\n");

  std::printf("\nnon-zero registers:\n");
  for (unsigned r = 1; r < 32; ++r) {
    const u32 v = soc.core().reg(r);
    if (v != 0) {
      std::printf("  %-5s = 0x%08x (%d)\n",
                  std::string(isa::reg_name(r)).c_str(), v,
                  static_cast<i32>(v));
    }
  }
  const auto& p = soc.core().perf();
  std::printf("\n%llu instructions, %llu cycles (IPC %.2f), "
              "%llu hw-loop back-edges, %llu taken branches\n",
              static_cast<unsigned long long>(p.instructions),
              static_cast<unsigned long long>(p.cycles),
              static_cast<double>(p.instructions) / static_cast<double>(p.cycles),
              static_cast<unsigned long long>(p.hwloop_backedges),
              static_cast<unsigned long long>(p.taken_branches));
  return 0;
}
