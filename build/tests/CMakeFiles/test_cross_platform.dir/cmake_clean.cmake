file(REMOVE_RECURSE
  "CMakeFiles/test_cross_platform.dir/test_cross_platform.cpp.o"
  "CMakeFiles/test_cross_platform.dir/test_cross_platform.cpp.o.d"
  "test_cross_platform"
  "test_cross_platform.pdb"
  "test_cross_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
