# Empty dependencies file for test_core_xpulpv2.
# This may be replaced when dependencies are built.
