file(REMOVE_RECURSE
  "CMakeFiles/test_core_rv32i.dir/test_core_rv32i.cpp.o"
  "CMakeFiles/test_core_rv32i.dir/test_core_rv32i.cpp.o.d"
  "test_core_rv32i"
  "test_core_rv32i.pdb"
  "test_core_rv32i[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rv32i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
