# Empty compiler generated dependencies file for test_core_rv32i.
# This may be replaced when dependencies are built.
