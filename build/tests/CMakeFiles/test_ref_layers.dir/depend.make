# Empty dependencies file for test_ref_layers.
# This may be replaced when dependencies are built.
