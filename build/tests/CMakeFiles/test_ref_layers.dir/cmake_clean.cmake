file(REMOVE_RECURSE
  "CMakeFiles/test_ref_layers.dir/test_ref_layers.cpp.o"
  "CMakeFiles/test_ref_layers.dir/test_ref_layers.cpp.o.d"
  "test_ref_layers"
  "test_ref_layers.pdb"
  "test_ref_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
