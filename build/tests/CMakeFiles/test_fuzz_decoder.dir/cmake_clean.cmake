file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_decoder.dir/test_fuzz_decoder.cpp.o"
  "CMakeFiles/test_fuzz_decoder.dir/test_fuzz_decoder.cpp.o.d"
  "test_fuzz_decoder"
  "test_fuzz_decoder.pdb"
  "test_fuzz_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
