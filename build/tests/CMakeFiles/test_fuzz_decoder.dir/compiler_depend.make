# Empty compiler generated dependencies file for test_fuzz_decoder.
# This may be replaced when dependencies are built.
