# Empty dependencies file for test_dotp.
# This may be replaced when dependencies are built.
