file(REMOVE_RECURSE
  "CMakeFiles/test_dotp.dir/test_dotp.cpp.o"
  "CMakeFiles/test_dotp.dir/test_dotp.cpp.o.d"
  "test_dotp"
  "test_dotp.pdb"
  "test_dotp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dotp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
