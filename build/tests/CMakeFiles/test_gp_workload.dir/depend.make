# Empty dependencies file for test_gp_workload.
# This may be replaced when dependencies are built.
