file(REMOVE_RECURSE
  "CMakeFiles/test_gp_workload.dir/test_gp_workload.cpp.o"
  "CMakeFiles/test_gp_workload.dir/test_gp_workload.cpp.o.d"
  "test_gp_workload"
  "test_gp_workload.pdb"
  "test_gp_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
