# Empty dependencies file for test_pool_kernels.
# This may be replaced when dependencies are built.
