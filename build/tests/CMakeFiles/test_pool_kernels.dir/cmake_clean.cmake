file(REMOVE_RECURSE
  "CMakeFiles/test_pool_kernels.dir/test_pool_kernels.cpp.o"
  "CMakeFiles/test_pool_kernels.dir/test_pool_kernels.cpp.o.d"
  "test_pool_kernels"
  "test_pool_kernels.pdb"
  "test_pool_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
