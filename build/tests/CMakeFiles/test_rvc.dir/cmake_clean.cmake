file(REMOVE_RECURSE
  "CMakeFiles/test_rvc.dir/test_rvc.cpp.o"
  "CMakeFiles/test_rvc.dir/test_rvc.cpp.o.d"
  "test_rvc"
  "test_rvc.pdb"
  "test_rvc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
