# Empty compiler generated dependencies file for test_simd_elem.
# This may be replaced when dependencies are built.
