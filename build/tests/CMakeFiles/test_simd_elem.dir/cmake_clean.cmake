file(REMOVE_RECURSE
  "CMakeFiles/test_simd_elem.dir/test_simd_elem.cpp.o"
  "CMakeFiles/test_simd_elem.dir/test_simd_elem.cpp.o.d"
  "test_simd_elem"
  "test_simd_elem.pdb"
  "test_simd_elem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_elem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
