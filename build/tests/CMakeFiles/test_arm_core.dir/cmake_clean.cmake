file(REMOVE_RECURSE
  "CMakeFiles/test_arm_core.dir/test_arm_core.cpp.o"
  "CMakeFiles/test_arm_core.dir/test_arm_core.cpp.o.d"
  "test_arm_core"
  "test_arm_core.pdb"
  "test_arm_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
