# Empty dependencies file for test_quant_unit.
# This may be replaced when dependencies are built.
