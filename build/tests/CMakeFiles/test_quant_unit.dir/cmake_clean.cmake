file(REMOVE_RECURSE
  "CMakeFiles/test_quant_unit.dir/test_quant_unit.cpp.o"
  "CMakeFiles/test_quant_unit.dir/test_quant_unit.cpp.o.d"
  "test_quant_unit"
  "test_quant_unit.pdb"
  "test_quant_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
