# Empty compiler generated dependencies file for test_core_rv32m.
# This may be replaced when dependencies are built.
