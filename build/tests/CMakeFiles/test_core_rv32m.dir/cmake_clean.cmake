file(REMOVE_RECURSE
  "CMakeFiles/test_core_rv32m.dir/test_core_rv32m.cpp.o"
  "CMakeFiles/test_core_rv32m.dir/test_core_rv32m.cpp.o.d"
  "test_core_rv32m"
  "test_core_rv32m.pdb"
  "test_core_rv32m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rv32m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
