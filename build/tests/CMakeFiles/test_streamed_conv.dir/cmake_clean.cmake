file(REMOVE_RECURSE
  "CMakeFiles/test_streamed_conv.dir/test_streamed_conv.cpp.o"
  "CMakeFiles/test_streamed_conv.dir/test_streamed_conv.cpp.o.d"
  "test_streamed_conv"
  "test_streamed_conv.pdb"
  "test_streamed_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streamed_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
