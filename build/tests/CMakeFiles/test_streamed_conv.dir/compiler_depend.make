# Empty compiler generated dependencies file for test_streamed_conv.
# This may be replaced when dependencies are built.
