# Empty dependencies file for test_dispatch_diff.
# This may be replaced when dependencies are built.
