
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dispatch_diff.cpp" "tests/CMakeFiles/test_dispatch_diff.dir/test_dispatch_diff.cpp.o" "gcc" "tests/CMakeFiles/test_dispatch_diff.dir/test_dispatch_diff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/xp_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/xp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/xp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/armv7e/CMakeFiles/xp_armv7e.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/xp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xasm/CMakeFiles/xp_xasm.dir/DependInfo.cmake"
  "/root/repo/build/src/qnn/CMakeFiles/xp_qnn.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
