file(REMOVE_RECURSE
  "CMakeFiles/test_dispatch_diff.dir/test_dispatch_diff.cpp.o"
  "CMakeFiles/test_dispatch_diff.dir/test_dispatch_diff.cpp.o.d"
  "test_dispatch_diff"
  "test_dispatch_diff.pdb"
  "test_dispatch_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatch_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
