file(REMOVE_RECURSE
  "CMakeFiles/test_arm_disasm.dir/test_arm_disasm.cpp.o"
  "CMakeFiles/test_arm_disasm.dir/test_arm_disasm.cpp.o.d"
  "test_arm_disasm"
  "test_arm_disasm.pdb"
  "test_arm_disasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
