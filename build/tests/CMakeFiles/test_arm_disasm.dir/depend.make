# Empty dependencies file for test_arm_disasm.
# This may be replaced when dependencies are built.
