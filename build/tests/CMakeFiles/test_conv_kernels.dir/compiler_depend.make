# Empty compiler generated dependencies file for test_conv_kernels.
# This may be replaced when dependencies are built.
