file(REMOVE_RECURSE
  "CMakeFiles/test_conv_kernels.dir/test_conv_kernels.cpp.o"
  "CMakeFiles/test_conv_kernels.dir/test_conv_kernels.cpp.o.d"
  "test_conv_kernels"
  "test_conv_kernels.pdb"
  "test_conv_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
