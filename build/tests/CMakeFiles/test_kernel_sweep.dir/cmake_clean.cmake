file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sweep.dir/test_kernel_sweep.cpp.o"
  "CMakeFiles/test_kernel_sweep.dir/test_kernel_sweep.cpp.o.d"
  "test_kernel_sweep"
  "test_kernel_sweep.pdb"
  "test_kernel_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
