file(REMOVE_RECURSE
  "CMakeFiles/test_arm_conv.dir/test_arm_conv.cpp.o"
  "CMakeFiles/test_arm_conv.dir/test_arm_conv.cpp.o.d"
  "test_arm_conv"
  "test_arm_conv.pdb"
  "test_arm_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
