# Empty dependencies file for test_arm_conv.
# This may be replaced when dependencies are built.
