# Empty dependencies file for bench_fig7_energy_core.
# This may be replaced when dependencies are built.
