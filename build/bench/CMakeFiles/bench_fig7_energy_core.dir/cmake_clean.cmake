file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_energy_core.dir/bench_fig7_energy_core.cpp.o"
  "CMakeFiles/bench_fig7_energy_core.dir/bench_fig7_energy_core.cpp.o.d"
  "bench_fig7_energy_core"
  "bench_fig7_energy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_energy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
