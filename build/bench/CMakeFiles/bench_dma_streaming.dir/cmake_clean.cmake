file(REMOVE_RECURSE
  "CMakeFiles/bench_dma_streaming.dir/bench_dma_streaming.cpp.o"
  "CMakeFiles/bench_dma_streaming.dir/bench_dma_streaming.cpp.o.d"
  "bench_dma_streaming"
  "bench_dma_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
