# Empty dependencies file for bench_dma_streaming.
# This may be replaced when dependencies are built.
