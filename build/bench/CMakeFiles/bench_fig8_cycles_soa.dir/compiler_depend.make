# Empty compiler generated dependencies file for bench_fig8_cycles_soa.
# This may be replaced when dependencies are built.
