file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cycles_soa.dir/bench_fig8_cycles_soa.cpp.o"
  "CMakeFiles/bench_fig8_cycles_soa.dir/bench_fig8_cycles_soa.cpp.o.d"
  "bench_fig8_cycles_soa"
  "bench_fig8_cycles_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cycles_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
