# Empty dependencies file for bench_micro_isa.
# This may be replaced when dependencies are built.
