file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_isa.dir/bench_micro_isa.cpp.o"
  "CMakeFiles/bench_micro_isa.dir/bench_micro_isa.cpp.o.d"
  "bench_micro_isa"
  "bench_micro_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
