# Empty dependencies file for bench_fig9_energy_soa.
# This may be replaced when dependencies are built.
