# Empty dependencies file for xp_isa.
# This may be replaced when dependencies are built.
