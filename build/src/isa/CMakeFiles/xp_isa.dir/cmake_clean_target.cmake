file(REMOVE_RECURSE
  "libxp_isa.a"
)
