file(REMOVE_RECURSE
  "CMakeFiles/xp_isa.dir/decoder.cpp.o"
  "CMakeFiles/xp_isa.dir/decoder.cpp.o.d"
  "CMakeFiles/xp_isa.dir/disasm.cpp.o"
  "CMakeFiles/xp_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/xp_isa.dir/encoding.cpp.o"
  "CMakeFiles/xp_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/xp_isa.dir/instruction.cpp.o"
  "CMakeFiles/xp_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/xp_isa.dir/rvc.cpp.o"
  "CMakeFiles/xp_isa.dir/rvc.cpp.o.d"
  "libxp_isa.a"
  "libxp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
