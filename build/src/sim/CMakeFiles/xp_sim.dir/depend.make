# Empty dependencies file for xp_sim.
# This may be replaced when dependencies are built.
