file(REMOVE_RECURSE
  "libxp_sim.a"
)
