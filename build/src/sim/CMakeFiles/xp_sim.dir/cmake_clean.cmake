file(REMOVE_RECURSE
  "CMakeFiles/xp_sim.dir/core.cpp.o"
  "CMakeFiles/xp_sim.dir/core.cpp.o.d"
  "CMakeFiles/xp_sim.dir/dotp_unit.cpp.o"
  "CMakeFiles/xp_sim.dir/dotp_unit.cpp.o.d"
  "CMakeFiles/xp_sim.dir/quant_unit.cpp.o"
  "CMakeFiles/xp_sim.dir/quant_unit.cpp.o.d"
  "libxp_sim.a"
  "libxp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
