
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/xp_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/xp_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/dotp_unit.cpp" "src/sim/CMakeFiles/xp_sim.dir/dotp_unit.cpp.o" "gcc" "src/sim/CMakeFiles/xp_sim.dir/dotp_unit.cpp.o.d"
  "/root/repo/src/sim/quant_unit.cpp" "src/sim/CMakeFiles/xp_sim.dir/quant_unit.cpp.o" "gcc" "src/sim/CMakeFiles/xp_sim.dir/quant_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/xp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
