
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qnn/pack.cpp" "src/qnn/CMakeFiles/xp_qnn.dir/pack.cpp.o" "gcc" "src/qnn/CMakeFiles/xp_qnn.dir/pack.cpp.o.d"
  "/root/repo/src/qnn/ref_layers.cpp" "src/qnn/CMakeFiles/xp_qnn.dir/ref_layers.cpp.o" "gcc" "src/qnn/CMakeFiles/xp_qnn.dir/ref_layers.cpp.o.d"
  "/root/repo/src/qnn/thresholds.cpp" "src/qnn/CMakeFiles/xp_qnn.dir/thresholds.cpp.o" "gcc" "src/qnn/CMakeFiles/xp_qnn.dir/thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
