file(REMOVE_RECURSE
  "CMakeFiles/xp_qnn.dir/pack.cpp.o"
  "CMakeFiles/xp_qnn.dir/pack.cpp.o.d"
  "CMakeFiles/xp_qnn.dir/ref_layers.cpp.o"
  "CMakeFiles/xp_qnn.dir/ref_layers.cpp.o.d"
  "CMakeFiles/xp_qnn.dir/thresholds.cpp.o"
  "CMakeFiles/xp_qnn.dir/thresholds.cpp.o.d"
  "libxp_qnn.a"
  "libxp_qnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_qnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
