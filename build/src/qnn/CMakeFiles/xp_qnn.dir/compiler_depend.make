# Empty compiler generated dependencies file for xp_qnn.
# This may be replaced when dependencies are built.
