file(REMOVE_RECURSE
  "libxp_qnn.a"
)
