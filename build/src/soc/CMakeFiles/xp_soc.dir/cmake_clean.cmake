file(REMOVE_RECURSE
  "CMakeFiles/xp_soc.dir/streamed_conv.cpp.o"
  "CMakeFiles/xp_soc.dir/streamed_conv.cpp.o.d"
  "libxp_soc.a"
  "libxp_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
