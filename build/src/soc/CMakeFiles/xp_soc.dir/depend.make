# Empty dependencies file for xp_soc.
# This may be replaced when dependencies are built.
