file(REMOVE_RECURSE
  "libxp_soc.a"
)
