file(REMOVE_RECURSE
  "CMakeFiles/xp_power.dir/power_model.cpp.o"
  "CMakeFiles/xp_power.dir/power_model.cpp.o.d"
  "libxp_power.a"
  "libxp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
