# Empty compiler generated dependencies file for xp_power.
# This may be replaced when dependencies are built.
