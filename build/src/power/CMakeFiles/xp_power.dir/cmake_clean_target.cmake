file(REMOVE_RECURSE
  "libxp_power.a"
)
