# Empty dependencies file for xp_cluster.
# This may be replaced when dependencies are built.
