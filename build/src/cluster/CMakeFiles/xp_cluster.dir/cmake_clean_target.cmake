file(REMOVE_RECURSE
  "libxp_cluster.a"
)
