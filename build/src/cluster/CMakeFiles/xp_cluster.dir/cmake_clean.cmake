file(REMOVE_RECURSE
  "CMakeFiles/xp_cluster.dir/cluster.cpp.o"
  "CMakeFiles/xp_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/xp_cluster.dir/parallel_conv.cpp.o"
  "CMakeFiles/xp_cluster.dir/parallel_conv.cpp.o.d"
  "libxp_cluster.a"
  "libxp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
