file(REMOVE_RECURSE
  "CMakeFiles/xp_kernels.dir/conv_gen.cpp.o"
  "CMakeFiles/xp_kernels.dir/conv_gen.cpp.o.d"
  "CMakeFiles/xp_kernels.dir/conv_layer.cpp.o"
  "CMakeFiles/xp_kernels.dir/conv_layer.cpp.o.d"
  "CMakeFiles/xp_kernels.dir/gp_workload.cpp.o"
  "CMakeFiles/xp_kernels.dir/gp_workload.cpp.o.d"
  "CMakeFiles/xp_kernels.dir/linear.cpp.o"
  "CMakeFiles/xp_kernels.dir/linear.cpp.o.d"
  "CMakeFiles/xp_kernels.dir/network.cpp.o"
  "CMakeFiles/xp_kernels.dir/network.cpp.o.d"
  "CMakeFiles/xp_kernels.dir/pool_gen.cpp.o"
  "CMakeFiles/xp_kernels.dir/pool_gen.cpp.o.d"
  "libxp_kernels.a"
  "libxp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
