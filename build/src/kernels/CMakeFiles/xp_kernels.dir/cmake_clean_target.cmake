file(REMOVE_RECURSE
  "libxp_kernels.a"
)
