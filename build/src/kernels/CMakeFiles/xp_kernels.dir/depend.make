# Empty dependencies file for xp_kernels.
# This may be replaced when dependencies are built.
