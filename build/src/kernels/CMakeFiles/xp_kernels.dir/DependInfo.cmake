
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv_gen.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/conv_gen.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/conv_gen.cpp.o.d"
  "/root/repo/src/kernels/conv_layer.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/conv_layer.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/conv_layer.cpp.o.d"
  "/root/repo/src/kernels/gp_workload.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/gp_workload.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/gp_workload.cpp.o.d"
  "/root/repo/src/kernels/linear.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/linear.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/linear.cpp.o.d"
  "/root/repo/src/kernels/network.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/network.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/network.cpp.o.d"
  "/root/repo/src/kernels/pool_gen.cpp" "src/kernels/CMakeFiles/xp_kernels.dir/pool_gen.cpp.o" "gcc" "src/kernels/CMakeFiles/xp_kernels.dir/pool_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xasm/CMakeFiles/xp_xasm.dir/DependInfo.cmake"
  "/root/repo/build/src/qnn/CMakeFiles/xp_qnn.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
