# Empty dependencies file for xp_armv7e.
# This may be replaced when dependencies are built.
