file(REMOVE_RECURSE
  "libxp_armv7e.a"
)
