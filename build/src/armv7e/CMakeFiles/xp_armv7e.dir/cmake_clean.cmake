file(REMOVE_RECURSE
  "CMakeFiles/xp_armv7e.dir/arm_core.cpp.o"
  "CMakeFiles/xp_armv7e.dir/arm_core.cpp.o.d"
  "CMakeFiles/xp_armv7e.dir/arm_disasm.cpp.o"
  "CMakeFiles/xp_armv7e.dir/arm_disasm.cpp.o.d"
  "CMakeFiles/xp_armv7e.dir/arm_isa.cpp.o"
  "CMakeFiles/xp_armv7e.dir/arm_isa.cpp.o.d"
  "CMakeFiles/xp_armv7e.dir/cmsis_conv.cpp.o"
  "CMakeFiles/xp_armv7e.dir/cmsis_conv.cpp.o.d"
  "libxp_armv7e.a"
  "libxp_armv7e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_armv7e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
