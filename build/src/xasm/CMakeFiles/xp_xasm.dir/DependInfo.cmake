
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xasm/assembler.cpp" "src/xasm/CMakeFiles/xp_xasm.dir/assembler.cpp.o" "gcc" "src/xasm/CMakeFiles/xp_xasm.dir/assembler.cpp.o.d"
  "/root/repo/src/xasm/text_asm.cpp" "src/xasm/CMakeFiles/xp_xasm.dir/text_asm.cpp.o" "gcc" "src/xasm/CMakeFiles/xp_xasm.dir/text_asm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/xp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
