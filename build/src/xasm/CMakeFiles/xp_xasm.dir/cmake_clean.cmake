file(REMOVE_RECURSE
  "CMakeFiles/xp_xasm.dir/assembler.cpp.o"
  "CMakeFiles/xp_xasm.dir/assembler.cpp.o.d"
  "CMakeFiles/xp_xasm.dir/text_asm.cpp.o"
  "CMakeFiles/xp_xasm.dir/text_asm.cpp.o.d"
  "libxp_xasm.a"
  "libxp_xasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xp_xasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
