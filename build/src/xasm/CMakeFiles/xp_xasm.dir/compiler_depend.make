# Empty compiler generated dependencies file for xp_xasm.
# This may be replaced when dependencies are built.
