file(REMOVE_RECURSE
  "libxp_xasm.a"
)
