# Empty dependencies file for isa_comparison.
# This may be replaced when dependencies are built.
