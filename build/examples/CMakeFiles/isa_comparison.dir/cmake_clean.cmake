file(REMOVE_RECURSE
  "CMakeFiles/isa_comparison.dir/isa_comparison.cpp.o"
  "CMakeFiles/isa_comparison.dir/isa_comparison.cpp.o.d"
  "isa_comparison"
  "isa_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
