file(REMOVE_RECURSE
  "CMakeFiles/conv_layer.dir/conv_layer.cpp.o"
  "CMakeFiles/conv_layer.dir/conv_layer.cpp.o.d"
  "conv_layer"
  "conv_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
