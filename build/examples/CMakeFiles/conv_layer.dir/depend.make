# Empty dependencies file for conv_layer.
# This may be replaced when dependencies are built.
