# Empty dependencies file for qnn_inference.
# This may be replaced when dependencies are built.
