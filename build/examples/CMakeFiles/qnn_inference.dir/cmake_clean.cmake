file(REMOVE_RECURSE
  "CMakeFiles/qnn_inference.dir/qnn_inference.cpp.o"
  "CMakeFiles/qnn_inference.dir/qnn_inference.cpp.o.d"
  "qnn_inference"
  "qnn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
