#include "obs/profiler.hpp"

#include <algorithm>
#include <sstream>

namespace xpulp::obs {

Profiler::Profiler(sim::Core& core, const RegionMap& regions,
                   const Options& opts)
    : core_(core),
      region_index_(regions.build_index()),
      n_regions_(regions.size()),
      tl_(opts.timeline),
      track_(opts.track),
      track_pc_(opts.track_pc),
      emit_stalls_(opts.emit_stalls),
      block_limit_(opts.block_instructions ? opts.block_instructions : 1) {
  region_names_.reserve(static_cast<size_t>(n_regions_) + 1);
  for (int i = 0; i < n_regions_; ++i) region_names_.push_back(regions.name(i));
  region_names_.emplace_back("other");
  region_stats_.resize(static_cast<size_t>(n_regions_) + 1);
  region_mnem_cycles_.resize(static_cast<size_t>(n_regions_) + 1);
  for (auto& row : region_mnem_cycles_) row.fill(0);

  if (tl_) {
    for (const std::string& n : region_names_) {
      region_name_ids_.push_back(tl_->intern(n));
    }
    block_name_id_ = tl_->intern("instructions");
    stall_name_id_ = tl_->intern("stall");
  }

  last_ = snap();
  core_.set_trace([this](addr_t pc, const isa::Instr& in) {
    return on_instr(pc, in);
  });
  attached_ = true;
}

Profiler::~Profiler() { finalize(); }

Profiler::Snapshot Profiler::snap() const {
  const sim::PerfCounters& p = core_.perf();
  return Snapshot{p.cycles,
                  p.branch_stall_cycles,
                  p.load_use_stall_cycles,
                  p.mem_stall_cycles,
                  p.mul_div_stall_cycles,
                  p.qnt_stall_cycles};
}

bool Profiler::on_instr(addr_t pc, const isa::Instr& in) {
  // The hook fires before this instruction's stalls and base cycle are
  // charged, so the counter delta since the previous firing is exactly the
  // cost of the *previous* (pending) instruction.
  const Snapshot now = snap();
  if (pending_valid_) settle(now);
  pending_pc_ = pc;
  pending_op_ = in.op;
  pending_cls_ = in.cls;
  pending_region_ = region_of(pc);
  pending_valid_ = true;
  last_ = now;
  return true;
}

void Profiler::settle(const Snapshot& now) {
  const u64 dc = now.cycles - last_.cycles;
  StallBreakdown d;
  d.branch = now.branch - last_.branch;
  d.load_use = now.load_use - last_.load_use;
  d.mem = now.mem - last_.mem;
  d.mul_div = now.mul_div - last_.mul_div;
  d.qnt = now.qnt - last_.qnt;

  const auto add = [&](SiteStat& s) {
    s.instructions += 1;
    s.cycles += dc;
    s.stalls += d;
  };
  add(total_);
  add(by_mnemonic_[static_cast<size_t>(pending_op_)]);
  add(by_class_[static_cast<size_t>(pending_cls_)]);
  add(region_stats_[static_cast<size_t>(pending_region_)]);
  region_mnem_cycles_[static_cast<size_t>(pending_region_)]
                     [static_cast<size_t>(pending_op_)] += dc;
  if (track_pc_) {
    const size_t parcel = pending_pc_ >> 1;
    if (parcel >= pc_stats_.size()) pc_stats_.resize(parcel + 1);
    add(pc_stats_[parcel]);
  }

  if (tl_) {
    // The settled instruction spans [last_.cycles, now.cycles). A region
    // switch happened at its start.
    if (pending_region_ != open_region_) {
      flush_block(last_.cycles);
      Event e;
      e.track = track_;
      e.ts = last_.cycles;
      if (open_region_ >= 0) {
        e.kind = EventKind::kRegionEnd;
        e.name = region_name_ids_[static_cast<size_t>(open_region_)];
        tl_->record(e);
      }
      e.kind = EventKind::kRegionBegin;
      e.name = region_name_ids_[static_cast<size_t>(pending_region_)];
      tl_->record(e);
      open_region_ = pending_region_;
    }
    if (emit_stalls_ && d.total() != 0) {
      Event e;
      e.kind = EventKind::kStall;
      e.track = track_;
      e.ts = last_.cycles;
      e.name = stall_name_id_;
      e.value = static_cast<u32>(d.total());
      tl_->record(e);
    }
    block_instrs_ += 1;
    if (block_instrs_ >= block_limit_) flush_block(now.cycles);
  }
}

void Profiler::flush_block(u64 end_ts) {
  if (block_instrs_ != 0 && end_ts > block_start_) {
    Event e;
    e.kind = EventKind::kInstrBlock;
    e.track = track_;
    e.ts = block_start_;
    e.dur = end_ts - block_start_;
    e.name = block_name_id_;
    e.value = block_instrs_;
    tl_->record(e);
  }
  block_start_ = end_ts;
  block_instrs_ = 0;
}

void Profiler::finalize() {
  if (finalized_) return;
  const Snapshot now = snap();
  if (pending_valid_) settle(now);
  pending_valid_ = false;
  if (tl_) {
    flush_block(now.cycles);
    if (open_region_ >= 0) {
      Event e;
      e.kind = EventKind::kRegionEnd;
      e.track = track_;
      e.ts = now.cycles;
      e.name = region_name_ids_[static_cast<size_t>(open_region_)];
      tl_->record(e);
      open_region_ = -1;
    }
  }
  if (attached_) {
    core_.set_trace({});
    attached_ = false;
  }
  finalized_ = true;
}

std::vector<RegionStat> Profiler::region_stats() const {
  std::vector<RegionStat> out;
  out.reserve(region_stats_.size());
  for (size_t i = 0; i < region_stats_.size(); ++i) {
    out.push_back({region_names_[i], region_stats_[i]});
  }
  return out;
}

std::vector<PcStat> Profiler::hotspots(size_t top_n) const {
  std::vector<PcStat> all;
  for (size_t parcel = 0; parcel < pc_stats_.size(); ++parcel) {
    if (pc_stats_[parcel].instructions == 0) continue;
    all.push_back({static_cast<addr_t>(parcel << 1), pc_stats_[parcel]});
  }
  std::stable_sort(all.begin(), all.end(), [](const PcStat& a, const PcStat& b) {
    return a.stat.cycles > b.stat.cycles;
  });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

std::string Profiler::collapsed_stacks(std::string_view root) const {
  std::ostringstream os;
  for (size_t r = 0; r < region_mnem_cycles_.size(); ++r) {
    for (size_t m = 0; m < region_mnem_cycles_[r].size(); ++m) {
      const u64 cyc = region_mnem_cycles_[r][m];
      if (cyc == 0) continue;
      if (!root.empty()) os << root << ';';
      os << region_names_[r] << ';'
         << isa::mnemonic_name(static_cast<isa::Mnemonic>(m)) << ' ' << cyc
         << '\n';
    }
  }
  return os.str();
}

void Profiler::add_to_registry(Registry& r, std::string_view prefix) const {
  const std::string pre = std::string(prefix) + ".";
  const auto add_site = [&](const std::string& p, const SiteStat& s) {
    r.counter(p + ".instructions", s.instructions);
    r.counter(p + ".cycles", s.cycles);
    r.counter(p + ".stall_cycles.branch", s.stalls.branch);
    r.counter(p + ".stall_cycles.load_use", s.stalls.load_use);
    r.counter(p + ".stall_cycles.mem", s.stalls.mem);
    r.counter(p + ".stall_cycles.mul_div", s.stalls.mul_div);
    r.counter(p + ".stall_cycles.qnt", s.stalls.qnt);
  };
  add_site(pre + "total", total_);
  for (size_t i = 0; i < region_stats_.size(); ++i) {
    add_site(pre + "regions." + region_names_[i], region_stats_[i]);
  }
}

}  // namespace xpulp::obs
