#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace xpulp::obs {

u16 Timeline::intern(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  if (names_.size() >= 0xffff) {
    throw SimError("timeline string table full (65535 names)");
  }
  const u16 id = static_cast<u16>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Timeline::set_track_name(u8 track, std::string_view name) {
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::string(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::string(name));
}

std::vector<Event> Timeline::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // head_ is the oldest element once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<CounterPoint> Timeline::counter_points() const {
  std::vector<CounterPoint> out;
  out.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    out.push_back(counters_[(counter_head_ + i) % counters_.size()]);
  }
  return out;
}

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void Timeline::write_chrome_json(std::ostream& os) const {
  std::vector<Event> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  const u64 window_start = evs.empty() ? 0 : evs.front().ts;
  u64 window_end = 0;
  for (const Event& e : evs) window_end = std::max(window_end, e.ts + e.dur);

  // Balance repair. Walk in time order keeping a per-track stack of open
  // begins: an end with no open begin gets a synthetic begin at the window
  // start (prepended so repaired slices nest outermost); a begin never
  // closed gets a synthetic end at the window end.
  std::vector<Event> prefix;
  std::vector<Event> suffix;
  std::vector<int> open_depth(256, 0);
  std::vector<std::vector<u16>> open_names(256);
  for (const Event& e : evs) {
    if (e.kind == EventKind::kRegionBegin) {
      open_depth[e.track] += 1;
      open_names[e.track].push_back(e.name);
    } else if (e.kind == EventKind::kRegionEnd) {
      if (open_depth[e.track] == 0) {
        Event b = e;
        b.kind = EventKind::kRegionBegin;
        b.ts = window_start;
        b.dur = 0;
        // Later repairs must enclose earlier ones: prepend.
        prefix.insert(prefix.begin(), b);
      } else {
        open_depth[e.track] -= 1;
        open_names[e.track].pop_back();
      }
    }
  }
  for (unsigned t = 0; t < 256; ++t) {
    while (!open_names[t].empty()) {
      Event e;
      e.kind = EventKind::kRegionEnd;
      e.ts = window_end;
      e.track = static_cast<u8>(t);
      e.name = open_names[t].back();
      open_names[t].pop_back();
      suffix.push_back(e);
    }
  }

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"cycles\","
        "\"tool\":\"xprof\",\"dropped_events\":"
     << dropped();
  // Counter bookkeeping only appears when counters were recorded, so a
  // counter-free timeline (every pre-xtel caller) stays byte-identical.
  if (counters_recorded_ != 0) {
    os << ",\"dropped_counters\":" << counters_dropped();
  }
  os << "},\"traceEvents\":[";

  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Track metadata first: one process, one named thread per track.
  sep();
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
        R"("args":{"name":"xpulpnn-sim"}})";
  for (const auto& [track, tname] : track_names_) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)"
       << unsigned(track) << R"(,"args":{"name":")";
    json_escape(os, tname);
    os << R"("}})";
  }

  const auto emit = [&](const Event& e) {
    sep();
    os << "{\"name\":\"";
    json_escape(os, names_[e.name]);
    os << "\",\"pid\":0,\"tid\":" << unsigned(e.track)
       << ",\"ts\":" << e.ts;
    switch (e.kind) {
      case EventKind::kRegionBegin:
        os << ",\"ph\":\"B\",\"cat\":\"region\"";
        break;
      case EventKind::kRegionEnd:
        os << ",\"ph\":\"E\",\"cat\":\"region\"";
        break;
      case EventKind::kStall:
        os << ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"stall\",\"args\":{"
              "\"cycles\":"
           << e.value << "}";
        break;
      case EventKind::kInstrBlock:
        os << ",\"ph\":\"X\",\"dur\":" << e.dur
           << ",\"cat\":\"code\",\"args\":{\"instructions\":" << e.value
           << "}";
        break;
      case EventKind::kDmaWindow:
        os << ",\"ph\":\"X\",\"dur\":" << e.dur
           << ",\"cat\":\"dma\",\"args\":{\"bytes\":" << e.value << "}";
        break;
    }
    os << "}";
  };

  for (const Event& e : prefix) emit(e);
  for (const Event& e : evs) emit(e);
  for (const Event& e : suffix) emit(e);

  // Counter tracks last: Perfetto keys them on (pid, name), so per-core
  // samplers intern per-core names ("core0/ipc"). Stable-sorted by ts so
  // every track's points are monotonic even after the ring wrapped.
  std::vector<CounterPoint> cps = counter_points();
  std::stable_sort(
      cps.begin(), cps.end(),
      [](const CounterPoint& a, const CounterPoint& b) { return a.ts < b.ts; });
  for (const CounterPoint& p : cps) {
    sep();
    os << "{\"name\":\"";
    json_escape(os, names_[p.name]);
    os << "\",\"pid\":0,\"tid\":" << unsigned(p.track) << ",\"ts\":" << p.ts
       << ",\"ph\":\"C\",\"cat\":\"counter\",\"args\":{\"value\":";
    // JSON has no NaN/inf literals; clamp non-finite samples to 0.
    const double v = std::isfinite(p.value) ? p.value : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << buf << "}}";
  }

  os << "\n]}\n";
}

std::string Timeline::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

}  // namespace xpulp::obs
