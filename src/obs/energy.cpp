#include "obs/energy.hpp"

#include <cmath>
#include <sstream>

#include "obs/delta.hpp"

namespace xpulp::obs {

EnergyProfiler::EnergyProfiler(sim::Core& core, const RegionMap& regions,
                               const Options& opts)
    : core_(core),
      opts_(opts),
      region_index_(regions.build_index()),
      n_regions_(regions.size()) {
  region_names_.reserve(static_cast<size_t>(n_regions_) + 1);
  for (int i = 0; i < n_regions_; ++i) region_names_.push_back(regions.name(i));
  region_names_.emplace_back("other");
  region_cells_.resize(static_cast<size_t>(n_regions_) + 1);

  last_ = snap();
  core_.set_trace([this](addr_t pc, const isa::Instr& in) {
    return on_instr(pc, in);
  });
  attached_ = true;
}

EnergyProfiler::~EnergyProfiler() { finalize(); }

EnergyProfiler::Snapshot EnergyProfiler::snap() const {
  return Snapshot{core_.perf(), core_.dotp_unit().activity(),
                  core_.memory().stats()};
}

bool EnergyProfiler::on_instr(addr_t pc, const isa::Instr& in) {
  // The hook fires before this instruction's stalls and base cycle are
  // charged, so the delta since the previous firing is exactly the cost
  // of the *previous* (pending) instruction.
  const Snapshot now = snap();
  if (pending_valid_) settle(now);
  pending_region_ = region_of(pc);
  pending_cls_ = in.cls;
  pending_valid_ = true;
  last_ = now;
  return true;
}

void EnergyProfiler::settle(const Snapshot& now) {
  const sim::PerfCounters dp = diff(now.perf, last_.perf);
  const sim::DotpActivity dd = diff(now.dotp, last_.dotp);
  const mem::MemStats dm = diff(now.mem, last_.mem);
  const auto add = [&](EnergyCell& c) {
    accumulate(c.perf, dp);
    accumulate(c.dotp, dd);
    accumulate(c.mem, dm);
  };
  add(total_);
  add(region_cells_[static_cast<size_t>(pending_region_)]);
  add(by_class_[static_cast<size_t>(pending_cls_)]);
}

void EnergyProfiler::finalize() {
  if (finalized_) return;
  const Snapshot now = snap();
  if (pending_valid_) settle(now);
  pending_valid_ = false;
  if (attached_) {
    core_.set_trace({});
    attached_ = false;
  }
  const auto price = [&](EnergyCell& c) {
    c.energy = power::estimate_energy(c.perf, c.dotp, c.mem, core_.config(),
                                      opts_.op);
  };
  price(total_);
  for (EnergyCell& c : region_cells_) price(c);
  for (EnergyCell& c : by_class_) price(c);
  finalized_ = true;
}

std::vector<RegionEnergy> EnergyProfiler::region_energies() const {
  std::vector<RegionEnergy> out;
  out.reserve(region_cells_.size());
  for (size_t i = 0; i < region_cells_.size(); ++i) {
    out.push_back({region_names_[i], region_cells_[i]});
  }
  return out;
}

std::string EnergyProfiler::reconciliation_violation() const {
  sim::PerfCounters psum;
  sim::DotpActivity dsum;
  mem::MemStats msum;
  for (const EnergyCell& c : region_cells_) {
    accumulate(psum, c.perf);
    accumulate(dsum, c.dotp);
    accumulate(msum, c.mem);
  }

  // Layer 1: the integer counters partition the run totals exactly.
#define XTEL_CHK(agg, tot, f)                                   \
  if ((agg).f != (tot).f) {                                     \
    return std::string("region partition mismatch: ") + #tot "." #f; \
  }
  XTEL_CHK(psum, total_.perf, cycles)
  XTEL_CHK(psum, total_.perf, instructions)
  XTEL_CHK(psum, total_.perf, taken_branches)
  XTEL_CHK(psum, total_.perf, not_taken_branches)
  XTEL_CHK(psum, total_.perf, jumps)
  XTEL_CHK(psum, total_.perf, branch_stall_cycles)
  XTEL_CHK(psum, total_.perf, load_use_stall_cycles)
  XTEL_CHK(psum, total_.perf, mem_stall_cycles)
  XTEL_CHK(psum, total_.perf, mul_div_stall_cycles)
  XTEL_CHK(psum, total_.perf, qnt_stall_cycles)
  XTEL_CHK(psum, total_.perf, hwloop_backedges)
  XTEL_CHK(psum, total_.perf, loads)
  XTEL_CHK(psum, total_.perf, stores)
  XTEL_CHK(psum, total_.perf, scalar_alu_ops)
  XTEL_CHK(psum, total_.perf, mul_ops)
  XTEL_CHK(psum, total_.perf, mac_ops)
  XTEL_CHK(psum, total_.perf, div_ops)
  XTEL_CHK(psum, total_.perf, simd_alu_ops)
  XTEL_CHK(psum, total_.perf, qnt_ops)
  XTEL_CHK(psum, total_.perf, csr_ops)
  XTEL_CHK(psum, total_.perf, sys_ops)
  XTEL_CHK(psum, total_.perf, lsu_data_toggles)
  for (unsigned i = 0; i < 3; ++i) {
    if (psum.mixed_dotp_ops[i] != total_.perf.mixed_dotp_ops[i]) {
      return "region partition mismatch: perf.mixed_dotp_ops";
    }
  }
  for (unsigned i = 0; i < 4; ++i) {
    if (psum.dotp_ops[i] != total_.perf.dotp_ops[i]) {
      return "region partition mismatch: perf.dotp_ops";
    }
    if (dsum.operand_toggles[i] != total_.dotp.operand_toggles[i] ||
        dsum.ops[i] != total_.dotp.ops[i]) {
      return "region partition mismatch: dotp activity";
    }
  }
  XTEL_CHK(msum, total_.mem, loads)
  XTEL_CHK(msum, total_.mem, stores)
  XTEL_CHK(msum, total_.mem, load_bytes)
  XTEL_CHK(msum, total_.mem, store_bytes)
  XTEL_CHK(msum, total_.mem, misaligned_accesses)
  XTEL_CHK(msum, total_.mem, contention_stalls)
#undef XTEL_CHK

  // Layer 2: energy over the summed counters is bit-identical to energy
  // over the run totals (same integers in, same doubles out).
  const power::EnergyBreakdown esum =
      power::estimate_energy(psum, dsum, msum, core_.config(), opts_.op);
  const power::EnergyBreakdown etot = power::estimate_energy(
      total_.perf, total_.dotp, total_.mem, core_.config(), opts_.op);
#define XTEL_ECHK(f)                                      \
  if (esum.f != etot.f) {                                 \
    return std::string("energy identity violated: ") + #f; \
  }
  XTEL_ECHK(leak_pj)
  XTEL_ECHK(base_pj)
  XTEL_ECHK(alu_pj)
  XTEL_ECHK(muldiv_pj)
  XTEL_ECHK(dotp_pj)
  XTEL_ECHK(dotp_toggle_pj)
  XTEL_ECHK(qnt_pj)
  XTEL_ECHK(lsu_pj)
  XTEL_ECHK(sram_pj)
  XTEL_ECHK(soc_static_pj)
#undef XTEL_ECHK

  // Layer 3 (FP-honest): the double sum of per-region energies matches
  // the total to a relative epsilon (addition is not associative).
  double region_sum = 0;
  for (const EnergyCell& c : region_cells_) region_sum += c.energy.soc_pj();
  const double tot = etot.soc_pj();
  const double tol = 1e-9 * std::max(1.0, std::abs(tot));
  if (std::abs(region_sum - tot) > tol) {
    std::ostringstream os;
    os << "per-region energy sum drifted: " << region_sum << " vs " << tot;
    return os.str();
  }
  return {};
}

namespace {

struct Component {
  const char* name;
  double power::EnergyBreakdown::* field;
};

constexpr Component kComponents[] = {
    {"leak", &power::EnergyBreakdown::leak_pj},
    {"base", &power::EnergyBreakdown::base_pj},
    {"alu", &power::EnergyBreakdown::alu_pj},
    {"muldiv", &power::EnergyBreakdown::muldiv_pj},
    {"dotp", &power::EnergyBreakdown::dotp_pj},
    {"dotp_toggle", &power::EnergyBreakdown::dotp_toggle_pj},
    {"qnt", &power::EnergyBreakdown::qnt_pj},
    {"lsu", &power::EnergyBreakdown::lsu_pj},
    {"sram", &power::EnergyBreakdown::sram_pj},
    {"soc_static", &power::EnergyBreakdown::soc_static_pj},
};

}  // namespace

std::string EnergyProfiler::collapsed_stacks(std::string_view root) const {
  std::ostringstream os;
  for (size_t r = 0; r < region_cells_.size(); ++r) {
    for (const Component& c : kComponents) {
      const long long pj = std::llround(region_cells_[r].energy.*c.field);
      if (pj <= 0) continue;
      if (!root.empty()) os << root << ';';
      os << region_names_[r] << ';' << c.name << ' ' << pj << '\n';
    }
  }
  return os.str();
}

void EnergyProfiler::add_to_registry(Registry& r, std::string_view prefix) const {
  const std::string pre = std::string(prefix) + ".";
  add_energy_breakdown(r, pre + "total", total_.energy);
  r.counter(pre + "total.cycles", total_.perf.cycles);
  r.counter(pre + "total.instructions", total_.perf.instructions);
  for (size_t i = 0; i < region_cells_.size(); ++i) {
    const std::string rp = pre + "regions." + region_names_[i];
    add_energy_breakdown(r, rp, region_cells_[i].energy);
    r.counter(rp + ".cycles", region_cells_[i].perf.cycles);
    r.counter(rp + ".instructions", region_cells_[i].perf.instructions);
  }
}

void add_soc_power(Registry& r, std::string_view prefix,
                   const power::SocPower& p) {
  const std::string pre = std::string(prefix) + ".";
  r.gauge(pre + "core_mw", p.core.core_mw());
  r.gauge(pre + "soc_mw", p.soc_mw());
  r.gauge(pre + "sram_mw", p.sram_mw);
  r.gauge(pre + "soc_static_mw", p.soc_static_mw);
  r.gauge(pre + "core.leak_mw", p.core.leak_mw);
  r.gauge(pre + "core.base_mw", p.core.base_mw);
  r.gauge(pre + "core.alu_mw", p.core.alu_mw);
  r.gauge(pre + "core.muldiv_mw", p.core.muldiv_mw);
  r.gauge(pre + "core.dotp_mw", p.core.dotp_mw);
  r.gauge(pre + "core.dotp_toggle_mw", p.core.dotp_toggle_mw);
  r.gauge(pre + "core.qnt_mw", p.core.qnt_mw);
  r.gauge(pre + "core.lsu_mw", p.core.lsu_mw);
}

void add_energy_breakdown(Registry& r, std::string_view prefix,
                          const power::EnergyBreakdown& e) {
  const std::string pre = std::string(prefix) + ".";
  r.gauge(pre + "core_pj", e.core_pj());
  r.gauge(pre + "soc_pj", e.soc_pj());
  for (const Component& c : kComponents) {
    r.gauge(pre + std::string(c.name) + "_pj", e.*c.field);
  }
}

}  // namespace xpulp::obs
