#include "obs/registry.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace xpulp::obs {

void Registry::set(std::string_view path, Value v) {
  for (Metric& m : metrics_) {
    if (m.path == path) {
      m.value = std::move(v);
      return;
    }
  }
  metrics_.push_back({std::string(path), std::move(v)});
}

bool Registry::contains(std::string_view path) const {
  for (const Metric& m : metrics_) {
    if (m.path == path) return true;
  }
  return false;
}

namespace {

void write_value(std::ostream& os, const Registry::Value& v) {
  if (const u64* u = std::get_if<u64>(&v)) {
    os << *u;
  } else if (const double* d = std::get_if<double>(&v)) {
    if (!std::isfinite(*d)) {
      // JSON has no NaN/inf literals; keep the information as a string.
      os << (std::isnan(*d) ? "\"NaN\""
                            : (*d > 0 ? "\"Infinity\"" : "\"-Infinity\""));
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", *d);
    os << buf;
  } else if (const bool* b = std::get_if<bool>(&v)) {
    os << (*b ? "true" : "false");
  } else {
    os << '"';
    for (char c : std::get<std::string>(v)) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  }
}

/// Insertion-ordered path tree built from the dotted metric names.
struct Node {
  std::vector<std::pair<std::string, Node>> children;
  const Registry::Value* leaf = nullptr;
};

Node build_tree(const std::vector<std::pair<std::string, const Registry::Value*>>&
                    metrics) {
  Node root;
  for (const auto& [path, value] : metrics) {
    Node* n = &root;
    size_t start = 0;
    while (true) {
      const size_t dot = path.find('.', start);
      const std::string seg =
          path.substr(start, dot == std::string::npos ? dot : dot - start);
      Node* child = nullptr;
      for (auto& [name, c] : n->children) {
        if (name == seg) {
          child = &c;
          break;
        }
      }
      if (!child) {
        n->children.emplace_back(seg, Node{});
        child = &n->children.back().second;
      }
      if (child->leaf) {
        throw SimError("metric path conflict at '" + path.substr(0, dot) +
                       "': already a leaf");
      }
      n = child;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    if (!n->children.empty()) {
      throw SimError("metric path conflict at '" + path +
                     "': already an object");
    }
    n->leaf = value;
  }
  return root;
}

void write_node(std::ostream& os, const Node& n, int indent) {
  if (n.leaf) {
    write_value(os, *n.leaf);
    return;
  }
  os << "{";
  const std::string pad(static_cast<size_t>(indent + 2), ' ');
  bool first = true;
  for (const auto& [name, child] : n.children) {
    os << (first ? "\n" : ",\n") << pad << '"';
    for (char c : name) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\": ";
    write_node(os, child, indent + 2);
    first = false;
  }
  os << "\n" << std::string(static_cast<size_t>(indent), ' ') << "}";
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::vector<std::pair<std::string, const Value*>> flat;
  flat.reserve(metrics_.size() + 1);
  static const Value kVersion{kSchemaVersion};
  if (!contains("schema_version")) flat.emplace_back("schema_version",
                                                     &kVersion);
  for (const Metric& m : metrics_) flat.emplace_back(m.path, &m.value);
  write_node(os, build_tree(flat), 0);
  os << "\n";
}

namespace {

void write_csv_field(std::ostream& os, std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void Registry::write_csv(std::ostream& os) const {
  os << "metric,value\n";
  for (const Metric& m : metrics_) {
    write_csv_field(os, m.path);
    os << ',';
    if (const std::string* s = std::get_if<std::string>(&m.value)) {
      // RFC-4180 quoting: only when the value needs it, so plain strings
      // stay bare and commas/quotes keep the row two-column.
      write_csv_field(os, *s);
    } else if (const double* d = std::get_if<double>(&m.value);
               d && !std::isfinite(*d)) {
      // CSV is untyped; bare NaN/Infinity round-trips through spreadsheet
      // tools better than the JSON-style quoted form.
      os << (std::isnan(*d) ? "NaN" : (*d > 0 ? "Infinity" : "-Infinity"));
    } else {
      write_value(os, m.value);
    }
    os << '\n';
  }
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

bool Registry::save_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

bool Registry::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

void add_perf_counters(Registry& r, std::string_view prefix,
                       const sim::PerfCounters& p) {
  const std::string pre = std::string(prefix) + ".";
  r.counter(pre + "cycles", p.cycles);
  r.counter(pre + "instructions", p.instructions);
  r.counter(pre + "taken_branches", p.taken_branches);
  r.counter(pre + "not_taken_branches", p.not_taken_branches);
  r.counter(pre + "jumps", p.jumps);
  r.counter(pre + "branch_stall_cycles", p.branch_stall_cycles);
  r.counter(pre + "load_use_stall_cycles", p.load_use_stall_cycles);
  r.counter(pre + "mem_stall_cycles", p.mem_stall_cycles);
  r.counter(pre + "mul_div_stall_cycles", p.mul_div_stall_cycles);
  r.counter(pre + "qnt_stall_cycles", p.qnt_stall_cycles);
  r.counter(pre + "hwloop_backedges", p.hwloop_backedges);
  r.counter(pre + "loads", p.loads);
  r.counter(pre + "stores", p.stores);
  r.counter(pre + "scalar_alu_ops", p.scalar_alu_ops);
  r.counter(pre + "mul_ops", p.mul_ops);
  r.counter(pre + "mac_ops", p.mac_ops);
  r.counter(pre + "div_ops", p.div_ops);
  r.counter(pre + "simd_alu_ops", p.simd_alu_ops);
  r.counter(pre + "qnt_ops", p.qnt_ops);
  r.counter(pre + "csr_ops", p.csr_ops);
  r.counter(pre + "sys_ops", p.sys_ops);
  static const char* kRegion[4] = {"16b", "8b", "4b", "2b"};
  for (unsigned i = 0; i < 4; ++i) {
    r.counter(pre + "dotp_ops." + kRegion[i], p.dotp_ops[i]);
  }
  static const char* kMixed[3] = {"8x4", "8x2", "4x2"};
  for (unsigned i = 0; i < 3; ++i) {
    r.counter(pre + "mixed_dotp_ops." + kMixed[i], p.mixed_dotp_ops[i]);
  }
  r.counter(pre + "lsu_data_toggles", p.lsu_data_toggles);
}

void add_mem_stats(Registry& r, std::string_view prefix,
                   const mem::MemStats& s) {
  const std::string pre = std::string(prefix) + ".";
  r.counter(pre + "loads", s.loads);
  r.counter(pre + "stores", s.stores);
  r.counter(pre + "load_bytes", s.load_bytes);
  r.counter(pre + "store_bytes", s.store_bytes);
  r.counter(pre + "misaligned_accesses", s.misaligned_accesses);
  r.counter(pre + "contention_stalls", s.contention_stalls);
}

void add_superblock_stats(Registry& r, std::string_view prefix,
                          const sim::SuperblockStats& s,
                          u64 total_instructions) {
  const std::string pre = std::string(prefix) + ".";
  r.counter(pre + "blocks_compiled", s.blocks_compiled);
  r.counter(pre + "compile_rejects", s.compile_rejects);
  r.counter(pre + "entries", s.entries);
  r.counter(pre + "entry_rejects", s.entry_rejects);
  r.counter(pre + "fused_iterations", s.fused_iterations);
  r.counter(pre + "fused_instructions", s.fused_instructions);
  r.counter(pre + "smc_bails", s.smc_bails);
  r.counter(pre + "trap_bails", s.trap_bails);
  r.counter(pre + "sample_flushes", s.sample_flushes);
  r.counter(pre + "burst_flushes", s.burst_flushes);
  r.counter(pre + "invalidations", s.invalidations);
  if (total_instructions != 0) {
    r.gauge(pre + "fused_fraction",
            static_cast<double>(s.fused_instructions) /
                static_cast<double>(total_instructions));
  }
}

}  // namespace xpulp::obs
