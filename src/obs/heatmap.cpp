#include "obs/heatmap.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xpulp::obs {

BankHeatmap::BankHeatmap(u32 banks, int cores, const Options& opts)
    : banks_(banks ? banks : 1),
      cores_(cores > 0 ? cores : 1),
      opts_(opts),
      capacity_(opts.capacity ? opts.capacity : 1),
      bank_totals_accesses_(banks_, 0),
      bank_totals_conflicts_(banks_, 0) {
  if (opts_.window_cycles == 0) opts_.window_cycles = 1;
}

BankHeatmap::Window& BankHeatmap::window_for(cycles_t cycle) {
  const u64 idx = cycle / opts_.window_cycles;
  if (!ring_.empty()) {
    // The event-driven scheduler hands out accesses in non-decreasing
    // global cycle order, so the newest window is the only live one;
    // clamp any same-cycle reordering into it.
    Window& newest = ring_[(head_ + ring_.size() - 1) % ring_.size()];
    if (idx <= newest.index) return newest;
  }
  Window w;
  w.index = idx;
  w.banks.assign(banks_, BankCell{});
  w.core_accesses.assign(static_cast<size_t>(cores_), 0);
  ++windows_recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(w));
    return ring_.back();
  }
  ring_[head_] = std::move(w);
  Window& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  return slot;
}

void BankHeatmap::observe(int core, cycles_t cycle, addr_t addr,
                          unsigned stalls) {
  // Same mapping as BankArbiter::access: word-interleaved banks.
  const u32 b = (addr >> 2) % banks_;
  Window& w = window_for(cycle);
  w.banks[b].accesses += 1;
  if (core >= 0 && core < cores_) {
    w.core_accesses[static_cast<size_t>(core)] += 1;
  }
  total_accesses_ += 1;
  bank_totals_accesses_[b] += 1;
  if (stalls != 0) {
    w.banks[b].conflicts += 1;
    total_conflicts_ += 1;
    bank_totals_conflicts_[b] += 1;
  }
}

u64 BankHeatmap::windows_dropped() const {
  return windows_recorded_ <= capacity_ ? 0 : windows_recorded_ - capacity_;
}

const BankHeatmap::Window& BankHeatmap::retained(size_t w) const {
  if (w >= ring_.size()) throw SimError("heatmap window index out of range");
  return ring_[(head_ + w) % ring_.size()];
}

u64 BankHeatmap::window_index(size_t w) const { return retained(w).index; }

const std::vector<BankCell>& BankHeatmap::window_banks(size_t w) const {
  return retained(w).banks;
}

const std::vector<u64>& BankHeatmap::window_core_accesses(size_t w) const {
  return retained(w).core_accesses;
}

void BankHeatmap::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": " << Registry::kSchemaVersion
     << ",\n  \"banks\": " << banks_ << ",\n  \"cores\": " << cores_
     << ",\n  \"window_cycles\": " << opts_.window_cycles
     << ",\n  \"total_accesses\": " << total_accesses_
     << ",\n  \"total_conflicts\": " << total_conflicts_
     << ",\n  \"windows_recorded\": " << windows_recorded_
     << ",\n  \"windows_dropped\": " << windows_dropped()
     << ",\n  \"windows\": [";
  for (size_t w = 0; w < ring_.size(); ++w) {
    const Window& win = retained(w);
    os << (w ? ",\n" : "\n") << "    {\"window\": " << win.index
       << ", \"accesses\": [";
    for (size_t b = 0; b < win.banks.size(); ++b) {
      os << (b ? "," : "") << win.banks[b].accesses;
    }
    os << "], \"conflicts\": [";
    for (size_t b = 0; b < win.banks.size(); ++b) {
      os << (b ? "," : "") << win.banks[b].conflicts;
    }
    os << "], \"core_accesses\": [";
    for (size_t c = 0; c < win.core_accesses.size(); ++c) {
      os << (c ? "," : "") << win.core_accesses[c];
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

void BankHeatmap::write_csv(std::ostream& os) const {
  os << "window,bank,accesses,conflicts\n";
  for (size_t w = 0; w < ring_.size(); ++w) {
    const Window& win = retained(w);
    for (size_t b = 0; b < win.banks.size(); ++b) {
      os << win.index << ',' << b << ',' << win.banks[b].accesses << ','
         << win.banks[b].conflicts << '\n';
    }
  }
}

void BankHeatmap::add_to_timeline(Timeline& tl, u8 track) const {
  std::vector<u16> acc_names(banks_);
  std::vector<u16> cf_names(banks_);
  for (u32 b = 0; b < banks_; ++b) {
    const std::string base = "tcdm/bank" + std::to_string(b);
    acc_names[b] = tl.intern(base + "/accesses");
    cf_names[b] = tl.intern(base + "/conflicts");
  }
  for (size_t w = 0; w < ring_.size(); ++w) {
    const Window& win = retained(w);
    const u64 ts = win.index * opts_.window_cycles;
    for (u32 b = 0; b < banks_; ++b) {
      CounterPoint p;
      p.ts = ts;
      p.track = track;
      p.name = acc_names[b];
      p.value = static_cast<double>(win.banks[b].accesses);
      tl.record_counter(p);
      p.name = cf_names[b];
      p.value = static_cast<double>(win.banks[b].conflicts);
      tl.record_counter(p);
    }
  }
}

void BankHeatmap::add_to_registry(Registry& r, std::string_view prefix) const {
  const std::string pre = std::string(prefix) + ".";
  r.counter(pre + "banks", banks_);
  r.counter(pre + "window_cycles", opts_.window_cycles);
  r.counter(pre + "accesses", total_accesses_);
  r.counter(pre + "conflicts", total_conflicts_);
  r.counter(pre + "windows", windows_recorded_);
  r.counter(pre + "windows_dropped", windows_dropped());
  u32 hot = 0;
  for (u32 b = 1; b < banks_; ++b) {
    if (bank_totals_accesses_[b] > bank_totals_accesses_[hot]) hot = b;
  }
  r.counter(pre + "hottest_bank", hot);
  if (total_accesses_ != 0) {
    r.gauge(pre + "hottest_bank_share",
            static_cast<double>(bank_totals_accesses_[hot]) /
                static_cast<double>(total_accesses_));
  }
}

}  // namespace xpulp::obs
