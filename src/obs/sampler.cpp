#include "obs/sampler.hpp"

#include <cstdio>

#include "obs/delta.hpp"

namespace xpulp::obs {

namespace {

// MACs per dot-product op by multiplier region {16, 8, 4, 2}-bit.
constexpr u64 kDotpMacs[4] = {2, 4, 8, 16};

}  // namespace

Sampler::Sampler(sim::Core& core, const Options& opts)
    : core_(core),
      opts_(opts),
      capacity_(opts.capacity ? opts.capacity : 1),
      mem_src_(opts.mem_stats ? opts.mem_stats : &core.memory().stats()) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
  last_perf_ = core_.perf();
  last_mem_ = *mem_src_;
  last_dotp_ = core_.dotp_unit().activity();
  last_sb_ = core_.superblock_stats();
  if (opts_.timeline) {
    const std::string pre = opts_.track_prefix + "/";
    name_ipc_ = opts_.timeline->intern(pre + "ipc");
    name_stall_ = opts_.timeline->intern(pre + "stall_frac");
    name_macs_ = opts_.timeline->intern(pre + "macs_per_cycle");
    name_fused_ = opts_.timeline->intern(pre + "fused_frac");
    name_core_mw_ = opts_.timeline->intern(pre + "core_mw");
    name_soc_mw_ = opts_.timeline->intern(pre + "soc_mw");
  }
  core_.set_sampler([this] { fire(); }, opts_.interval_cycles);
  attached_ = true;
}

Sampler::~Sampler() { finalize(); }

void Sampler::fire() {
  const Sample s = capture(core_.perf().cycles);
  push(s);
  stream(s);
}

Sample Sampler::capture(u64 ts) {
  Sample s;
  s.ts_cycles = ts;
  const sim::PerfCounters perf_now = core_.perf();
  const mem::MemStats mem_now = *mem_src_;
  const sim::DotpActivity dotp_now = core_.dotp_unit().activity();
  const sim::SuperblockStats sb_now = core_.superblock_stats();
  s.perf = diff(perf_now, last_perf_);
  s.mem = diff(mem_now, last_mem_);
  s.dotp = diff(dotp_now, last_dotp_);
  s.sb = diff(sb_now, last_sb_);
  last_perf_ = perf_now;
  last_mem_ = mem_now;
  last_dotp_ = dotp_now;
  last_sb_ = sb_now;
  return s;
}

void Sampler::push(const Sample& s) {
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    ring_[head_] = s;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void Sampler::stream(const Sample& s) {
  if (!opts_.timeline) return;
  const SampleMetrics m = derive(s, core_.config(), opts_.op);
  const auto emit = [&](u16 name, double v) {
    CounterPoint p;
    p.ts = s.ts_cycles;
    p.value = v;
    p.name = name;
    p.track = opts_.track;
    opts_.timeline->record_counter(p);
  };
  emit(name_ipc_, m.ipc);
  emit(name_stall_, m.stall_frac);
  emit(name_macs_, m.macs_per_cycle);
  emit(name_fused_, m.fused_frac);
  emit(name_core_mw_, m.core_mw);
  emit(name_soc_mw_, m.soc_mw);
}

void Sampler::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (attached_) {
    // Trailing partial window: everything since the last fired boundary.
    if (core_.perf().cycles != last_perf_.cycles) {
      const Sample s = capture(core_.perf().cycles);
      push(s);
      stream(s);
    }
    core_.set_sampler({}, 0);
    attached_ = false;
  }
}

std::vector<Sample> Sampler::samples() const {
  std::vector<Sample> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

SampleMetrics Sampler::derive(const Sample& s, const sim::CoreConfig& cfg,
                              const power::OperatingPoint& op) {
  SampleMetrics m;
  if (s.perf.cycles == 0) return m;
  const double cyc = static_cast<double>(s.perf.cycles);
  m.ipc = static_cast<double>(s.perf.instructions) / cyc;
  m.stall_frac = static_cast<double>(sim::perf_stall_cycles(s.perf)) / cyc;
  u64 macs = s.perf.mac_ops;
  for (unsigned i = 0; i < 4; ++i) macs += kDotpMacs[i] * s.perf.dotp_ops[i];
  m.macs_per_cycle = static_cast<double>(macs) / cyc;
  if (s.perf.instructions != 0) {
    m.fused_frac = static_cast<double>(s.sb.fused_instructions) /
                   static_cast<double>(s.perf.instructions);
  }
  const power::SocPower p = estimate_power(s.perf, s.dotp, s.mem, cfg, op);
  m.core_mw = p.core.core_mw();
  m.soc_mw = p.soc_mw();
  return m;
}

void Sampler::write_csv(std::ostream& os) const {
  os << "ts_cycles,cycles,instructions,ipc,stall_frac,macs_per_cycle,"
        "fused_frac,core_mw,soc_mw,loads,stores,contention_stalls\n";
  for (const Sample& s : samples()) {
    const SampleMetrics m = derive(s, core_.config(), opts_.op);
    char buf[160];
    std::snprintf(buf, sizeof buf, "%.6g,%.6g,%.6g,%.6g,%.6g,%.6g", m.ipc,
                  m.stall_frac, m.macs_per_cycle, m.fused_frac, m.core_mw,
                  m.soc_mw);
    os << s.ts_cycles << ',' << s.perf.cycles << ',' << s.perf.instructions
       << ',' << buf << ',' << s.mem.loads << ',' << s.mem.stores << ','
       << s.mem.contention_stalls << '\n';
  }
}

void Sampler::add_to_registry(Registry& r, std::string_view prefix) const {
  const std::string pre = std::string(prefix) + ".";
  r.counter(pre + "interval_cycles", opts_.interval_cycles);
  r.counter(pre + "windows", recorded_);
  r.counter(pre + "dropped", dropped());
  sim::PerfCounters sum;
  u64 fused = 0;
  u64 flushes = 0;
  sim::DotpActivity dsum;
  mem::MemStats msum;
  for (const Sample& s : samples()) {
    sum.cycles += s.perf.cycles;
    sum.instructions += s.perf.instructions;
    fused += s.sb.fused_instructions;
    flushes += s.sb.sample_flushes;
    for (unsigned i = 0; i < 4; ++i) {
      sum.dotp_ops[i] += s.perf.dotp_ops[i];
      dsum.operand_toggles[i] += s.dotp.operand_toggles[i];
    }
    sum.mac_ops += s.perf.mac_ops;
    msum.loads += s.mem.loads;
    msum.stores += s.mem.stores;
  }
  r.counter(pre + "retained.cycles", sum.cycles);
  r.counter(pre + "retained.instructions", sum.instructions);
  r.counter(pre + "retained.fused_instructions", fused);
  r.counter(pre + "retained.sample_flushes", flushes);
  r.counter(pre + "retained.mem_loads", msum.loads);
  r.counter(pre + "retained.mem_stores", msum.stores);
}

}  // namespace xpulp::obs
