// Exactly-reconciled energy attribution (xtel, DESIGN.md §14).
//
// EnergyProfiler attaches to the core's trace hook (like obs::Profiler:
// the hook fires at the start of each instruction, before its stalls are
// charged, so the counter delta between firings is exactly the previous
// instruction's cost) and partitions the run's *integer activity
// counters* — PerfCounters, DotpActivity, MemStats — over the RegionMap
// regions and over ExecClass. Energy is then computed per partition cell
// with power::estimate_energy, which is linear in those counters.
//
// The reconciliation invariant has two exact layers and one FP-honest
// layer:
//   1. counter partition: every u64 field of the per-region counter sums
//      equals the run's total delta exactly (same style as xprof's cycle
//      reconciliation);
//   2. energy identity: estimate_energy(sum of per-region counters) is
//      bit-identical to estimate_energy(run totals) — same integers in,
//      same doubles out;
//   3. the *sum of per-region energies in double* matches the total only
//      to a relative epsilon (floating-point addition is not
//      associative), checked as a secondary sanity bound.
// reconciliation_violation() checks all three and returns a diagnostic,
// empty when they hold.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "obs/region.hpp"
#include "obs/registry.hpp"
#include "power/power_model.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {

/// One attribution cell: the integer counters charged to it plus the
/// energy those counters cost under the power model.
struct EnergyCell {
  sim::PerfCounters perf;
  sim::DotpActivity dotp;
  mem::MemStats mem;
  power::EnergyBreakdown energy;  // filled by finalize()
};

struct RegionEnergy {
  std::string name;
  EnergyCell cell;
};

class EnergyProfiler {
 public:
  struct Options {
    /// Operating point the pJ figures are computed at.
    power::OperatingPoint op{};
  };

  /// Attaches to `core`'s trace hook (displacing any other hook — one
  /// owner at a time; don't combine with obs::Profiler on the same core).
  /// `regions` maps pcs to named regions; unmatched pcs fall into the
  /// trailing "other" bucket.
  EnergyProfiler(sim::Core& core, const RegionMap& regions,
                 const Options& opts);
  EnergyProfiler(sim::Core& core, const RegionMap& regions)
      : EnergyProfiler(core, regions, Options{}) {}
  ~EnergyProfiler();

  EnergyProfiler(const EnergyProfiler&) = delete;
  EnergyProfiler& operator=(const EnergyProfiler&) = delete;

  /// Settle the pending instruction, compute per-cell energies and detach
  /// from the core. Idempotent; results are stable afterwards.
  void finalize();

  /// Counter deltas of the whole observed run plus their energy.
  const EnergyCell& total() const { return total_; }

  /// Per-region cells in RegionMap order plus a final "other" bucket.
  /// Every integer counter field partitions the total exactly.
  std::vector<RegionEnergy> region_energies() const;

  /// Per-ExecClass cells; the same exact-partition property holds.
  const std::array<EnergyCell, static_cast<size_t>(isa::ExecClass::kCount)>&
  by_class() const {
    return by_class_;
  }

  /// Check the three-layer reconciliation invariant (see file comment).
  /// Returns an empty string when it holds, else a diagnostic naming the
  /// first violated field. Call after finalize().
  std::string reconciliation_violation() const;

  /// Collapsed flamegraph stacks ("root;region;component picojoules"
  /// lines, energy rounded to integer pJ), consumable by flamegraph.pl /
  /// speedscope / inferno.
  std::string collapsed_stacks(std::string_view root) const;

  /// Publish total + per-region energies (pJ) and headline counters under
  /// `prefix`.
  void add_to_registry(Registry& r, std::string_view prefix) const;

 private:
  struct Snapshot {
    sim::PerfCounters perf;
    sim::DotpActivity dotp;
    mem::MemStats mem;
  };

  Snapshot snap() const;
  bool on_instr(addr_t pc, const isa::Instr& in);
  void settle(const Snapshot& now);
  int region_of(addr_t pc) const {
    const size_t parcel = pc >> 1;
    if (parcel < region_index_.size() && region_index_[parcel] >= 0) {
      return region_index_[parcel];
    }
    return n_regions_;  // "other"
  }

  sim::Core& core_;
  Options opts_;
  std::vector<int> region_index_;
  int n_regions_;
  std::vector<std::string> region_names_;  // includes "other"

  bool attached_ = false;
  bool finalized_ = false;

  Snapshot last_{};
  bool pending_valid_ = false;
  int pending_region_ = 0;
  isa::ExecClass pending_cls_ = isa::ExecClass::kIllegal;

  EnergyCell total_;
  std::vector<EnergyCell> region_cells_;  // n_regions_ + 1 ("other" last)
  std::array<EnergyCell, static_cast<size_t>(isa::ExecClass::kCount)>
      by_class_{};
};

/// Publish a SocPower breakdown under `prefix` ("<prefix>.core_mw",
/// ".soc_mw", ".sram_mw", ".soc_static_mw" plus every core component).
/// Shared by xprof and xtel so both publish the same "sim.power.*" keys.
void add_soc_power(Registry& r, std::string_view prefix,
                   const power::SocPower& p);

/// Publish an EnergyBreakdown in pJ under `prefix`.
void add_energy_breakdown(Registry& r, std::string_view prefix,
                          const power::EnergyBreakdown& e);

}  // namespace xpulp::obs
