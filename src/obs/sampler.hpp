// Time-series counter sampler (xtel, DESIGN.md §14). Attaches to a
// Core's sampling hook (Core::set_sampler), which fires at the first
// instruction boundary at or past each multiple of the sample interval —
// on every dispatch path (reference, fast, superblock), with identical
// boundaries and identical counter state, so the sampled series is a
// dispatch-mode-independent artifact of the workload.
//
// Each firing snapshots PerfCounters / MemStats / DotpActivity /
// SuperblockStats and stores the *window delta* since the previous
// boundary in a fixed-capacity ring (oldest windows drop first). When a
// Timeline is attached, derived metrics (IPC, stall fraction, MACs/cycle,
// fused fraction, core/SoC mW from the power model) stream out as
// Perfetto counter tracks at fire time, named "<prefix>/<metric>" so
// per-core tracks in cluster runs stay separate.
//
// A core with no sampler attached pays nothing: the detached run loops
// are compiled without the deadline compare (see Core::set_sampler docs;
// guarded by bench_sim_throughput --guard-sampler).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "mem/memory.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "power/power_model.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {

/// One sampled window: raw counter deltas between two consecutive sample
/// boundaries. `ts_cycles` is the cycle count at the window's *end*
/// boundary (the first instruction boundary at or past a multiple of the
/// interval — the last window of a run may also end off-grid at halt).
struct Sample {
  u64 ts_cycles = 0;
  sim::PerfCounters perf;
  mem::MemStats mem;
  sim::DotpActivity dotp;
  sim::SuperblockStats sb;
};

/// Metrics derived from one window, matching the streamed counter tracks.
struct SampleMetrics {
  double ipc = 0;
  double stall_frac = 0;       // all stall causes / window cycles
  double macs_per_cycle = 0;   // SIMD lanes * dotp ops + scalar MACs
  double fused_frac = 0;       // superblock-fused instruction fraction
  double core_mw = 0;
  double soc_mw = 0;
};

class Sampler {
 public:
  struct Options {
    /// Sample boundary spacing in cycles (the due-threshold contract:
    /// a sample fires at the first instruction boundary where the cycle
    /// counter reached the next multiple of this).
    cycles_t interval_cycles = 4096;
    /// Retained-window ring capacity; oldest windows drop first.
    size_t capacity = 1u << 16;
    /// Optional counter-track sink (streamed at fire time, so dropped
    /// ring windows still appear in the trace up to its own capacity).
    Timeline* timeline = nullptr;
    u8 track = 0;
    /// Counter-track name prefix, e.g. "core0" -> "core0/ipc".
    std::string track_prefix = "core0";
    /// Capture MemStats deltas from this source; defaults to the core's
    /// own memory. Cluster callers pass the shared TCDM's stats.
    const mem::MemStats* mem_stats = nullptr;
    /// Operating point for the streamed mW tracks.
    power::OperatingPoint op{};
  };

  /// Attaches to `core`'s sampling hook (displacing any other sampler —
  /// one owner at a time). Attach at an instruction boundary, outside
  /// run().
  Sampler(sim::Core& core, const Options& opts);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Capture the trailing partial window (if any cycles elapsed past the
  /// last boundary) and detach from the core. Idempotent; the sample
  /// series is stable afterwards.
  void finalize();

  /// Retained windows, oldest first.
  std::vector<Sample> samples() const;
  u64 recorded() const { return recorded_; }
  u64 dropped() const {
    return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
  }
  cycles_t interval() const { return opts_.interval_cycles; }

  /// Derived metrics of one window under `cfg` / `op` — the same numbers
  /// the counter tracks stream.
  static SampleMetrics derive(const Sample& s, const sim::CoreConfig& cfg,
                              const power::OperatingPoint& op = {});

  /// One row per retained window: ts plus the derived metrics and the
  /// headline raw counters.
  void write_csv(std::ostream& os) const;

  /// Publish series summary (window count, drops, interval, totals over
  /// the retained windows) under `prefix`.
  void add_to_registry(Registry& r, std::string_view prefix) const;

 private:
  void fire();
  Sample capture(u64 ts);
  void push(const Sample& s);
  void stream(const Sample& s);

  sim::Core& core_;
  Options opts_;
  size_t capacity_;
  const mem::MemStats* mem_src_;

  std::vector<Sample> ring_;
  size_t head_ = 0;
  u64 recorded_ = 0;

  // Previous-boundary totals the next window diffs against.
  sim::PerfCounters last_perf_;
  mem::MemStats last_mem_;
  sim::DotpActivity last_dotp_;
  sim::SuperblockStats last_sb_;

  bool attached_ = false;
  bool finalized_ = false;

  // Interned counter-track names (valid when opts_.timeline != nullptr).
  u16 name_ipc_ = 0;
  u16 name_stall_ = 0;
  u16 name_macs_ = 0;
  u16 name_fused_ = 0;
  u16 name_core_mw_ = 0;
  u16 name_soc_mw_ = 0;
};

}  // namespace xpulp::obs
