// Cycle-attribution profiler. Attaches to a Core's trace hook (the hook
// fires at the *start* of each instruction, before its stalls are
// charged), snapshots the PerfCounters, and attributes the cycle delta
// between consecutive hook firings — base cycle plus every stall the
// instruction caused — to the previous instruction's pc, mnemonic,
// ExecClass and RegionMap region. Works identically on the predecoded
// fast path and the legacy reference interpreter: both fire the same
// hook, and a core with no hook attached pays nothing (the templated
// trace-free loop never tests for a profiler).
//
// Attach to a freshly reset core and call finalize() (or destroy the
// profiler) after the run: total().cycles then equals the core's
// PerfCounters.cycles, and the per-region cycle totals partition it.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hpp"
#include "obs/region.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {

/// Per-site stall attribution, one field per PerfCounters stall cause.
struct StallBreakdown {
  u64 branch = 0;
  u64 load_use = 0;
  u64 mem = 0;
  u64 mul_div = 0;
  u64 qnt = 0;

  u64 total() const { return branch + load_use + mem + mul_div + qnt; }
  StallBreakdown& operator+=(const StallBreakdown& o) {
    branch += o.branch;
    load_use += o.load_use;
    mem += o.mem;
    mul_div += o.mul_div;
    qnt += o.qnt;
    return *this;
  }
};

/// Accumulated cost of one attribution site (a pc, a mnemonic, a class or
/// a region). stalls.total() <= cycles; cycles - stalls = active cycles.
struct SiteStat {
  u64 instructions = 0;
  u64 cycles = 0;
  StallBreakdown stalls;
};

struct RegionStat {
  std::string name;
  SiteStat stat;
};

struct PcStat {
  addr_t pc = 0;
  SiteStat stat;
};

class Profiler {
 public:
  struct Options {
    /// Optional timeline sink: region begin/end slices, stall instants and
    /// coalesced instruction blocks are recorded on `track`.
    Timeline* timeline = nullptr;
    u8 track = 0;
    /// Keep the per-PC histogram (off saves memory on huge images).
    bool track_pc = true;
    /// Emit an instant event per stalled instruction (timeline only).
    bool emit_stalls = true;
    /// Coalesce this many instructions per timeline block slice.
    u32 block_instructions = 64;
  };

  /// Attaches to `core`'s trace hook (displacing any other hook — one
  /// owner at a time). `regions` maps pcs to named regions; unmatched pcs
  /// fall into the trailing "other" bucket.
  Profiler(sim::Core& core, const RegionMap& regions, const Options& opts);
  Profiler(sim::Core& core, const RegionMap& regions)
      : Profiler(core, regions, Options{}) {}
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Settle the still-pending instruction against the final counter state,
  /// close open timeline slices and detach from the core. Idempotent;
  /// results are stable afterwards.
  void finalize();

  const SiteStat& total() const { return total_; }

  /// Per-region totals in RegionMap order plus a final "other" bucket.
  /// The cycle fields partition total().cycles exactly.
  std::vector<RegionStat> region_stats() const;

  const std::array<SiteStat, static_cast<size_t>(isa::Mnemonic::kCount)>&
  by_mnemonic() const {
    return by_mnemonic_;
  }
  const std::array<SiteStat, static_cast<size_t>(isa::ExecClass::kCount)>&
  by_class() const {
    return by_class_;
  }

  /// Hottest pcs by attributed cycles, descending; empty if track_pc off.
  std::vector<PcStat> hotspots(size_t top_n) const;

  /// Collapsed flamegraph stacks ("root;region;mnemonic cycles" lines),
  /// consumable by flamegraph.pl / speedscope / inferno.
  std::string collapsed_stacks(std::string_view root) const;

  /// Publish totals + per-region stats under `prefix`.
  void add_to_registry(Registry& r, std::string_view prefix) const;

 private:
  struct Snapshot {
    u64 cycles = 0;
    u64 branch = 0;
    u64 load_use = 0;
    u64 mem = 0;
    u64 mul_div = 0;
    u64 qnt = 0;
  };

  Snapshot snap() const;
  bool on_instr(addr_t pc, const isa::Instr& in);
  void settle(const Snapshot& now);
  int region_of(addr_t pc) const {
    const size_t parcel = pc >> 1;
    if (parcel < region_index_.size() && region_index_[parcel] >= 0) {
      return region_index_[parcel];
    }
    return n_regions_;  // "other"
  }
  void flush_block(u64 end_ts);

  sim::Core& core_;
  std::vector<int> region_index_;
  int n_regions_;
  std::vector<std::string> region_names_;  // includes "other"

  bool attached_ = false;
  bool finalized_ = false;

  Snapshot last_{};
  bool pending_valid_ = false;
  addr_t pending_pc_ = 0;
  isa::Mnemonic pending_op_ = isa::Mnemonic::kInvalid;
  isa::ExecClass pending_cls_ = isa::ExecClass::kIllegal;
  int pending_region_ = 0;

  SiteStat total_;
  std::vector<SiteStat> pc_stats_;  // indexed by pc >> 1
  std::array<SiteStat, static_cast<size_t>(isa::Mnemonic::kCount)>
      by_mnemonic_{};
  std::array<SiteStat, static_cast<size_t>(isa::ExecClass::kCount)>
      by_class_{};
  std::vector<SiteStat> region_stats_;  // n_regions_ + 1 ("other" last)
  /// Region x mnemonic cycles for the collapsed-stack export.
  std::vector<std::array<u64, static_cast<size_t>(isa::Mnemonic::kCount)>>
      region_mnem_cycles_;

  Timeline* tl_;
  u8 track_;
  bool track_pc_;
  bool emit_stalls_;
  u32 block_limit_;
  int open_region_ = -1;  // -1: nothing open yet on the timeline
  std::vector<u16> region_name_ids_;
  u16 block_name_id_ = 0;
  u16 stall_name_id_ = 0;
  u64 block_start_ = 0;
  u32 block_instrs_ = 0;
};

}  // namespace xpulp::obs
