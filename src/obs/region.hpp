// Named PC-range regions for cycle attribution. Kernel generators mark the
// code ranges of their phases (im2col / matmul / quantization) while
// emitting; the profiler turns the map into an O(1) parcel-indexed lookup
// so per-instruction attribution costs one array read.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace xpulp::obs {

/// A set of named, possibly overlapping [lo, hi) code ranges. Overlap is
/// resolved by region *creation* order: the latest-created region wins, so
/// generators create outer phases first and nested phases after (the
/// quantization staircase emitted inside the matmul subroutine attributes
/// to "quant", not "matmul").
class RegionMap {
 public:
  /// lookup() result for an address no range covers.
  static constexpr int kNone = -1;

  /// Id of the region called `name`, creating it (empty) on first use.
  /// Ids are dense and assigned in creation order.
  int region(std::string_view name);

  /// Add the half-open byte range [lo, hi) to region `name`.
  void add_range(std::string_view name, addr_t lo, addr_t hi);

  int size() const { return static_cast<int>(regions_.size()); }
  const std::string& name(int id) const { return regions_[id].name; }
  const std::vector<std::pair<addr_t, addr_t>>& ranges(int id) const {
    return regions_[id].ranges;
  }

  /// One past the highest code byte covered by any range (0 if empty).
  addr_t end_addr() const;

  /// Innermost (= latest-created) region containing pc, or kNone.
  int lookup(addr_t pc) const;

  /// Dense per-parcel table for the profiler's hot path: entry pc >> 1
  /// holds lookup(pc) for every pc below end_addr().
  std::vector<int> build_index() const;

 private:
  struct Region {
    std::string name;
    std::vector<std::pair<addr_t, addr_t>> ranges;
  };
  std::vector<Region> regions_;
};

}  // namespace xpulp::obs
