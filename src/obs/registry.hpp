// Unified metrics registry: one insertion-ordered bag of named counters,
// gauges, flags and text values with JSON and CSV exporters. Bench
// binaries, xprof and tests publish PerfCounters / memory stats / power
// numbers here instead of hand-rolling their own emission.
//
// Metric names are dotted paths ("workloads.conv4b.fast.mips"); the JSON
// exporter nests objects along the dots, the CSV exporter writes one
// `metric,value` row per leaf.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {

class Registry {
 public:
  using Value = std::variant<u64, double, bool, std::string>;

  /// Version of the JSON export layout, written as a top-level
  /// "schema_version" key by write_json so downstream parsers (CI smoke
  /// scripts, plotting notebooks) can detect layout changes. Bump when a
  /// serialized representation changes incompatibly.
  static constexpr u64 kSchemaVersion = 1;

  /// Monotonic integer metric (counts, cycles, bytes).
  void counter(std::string_view path, u64 v) { set(path, Value(v)); }
  /// Floating-point metric (rates, ratios, milliwatts).
  void gauge(std::string_view path, double v) { set(path, Value(v)); }
  void flag(std::string_view path, bool v) { set(path, Value(v)); }
  void text(std::string_view path, std::string_view v) {
    set(path, Value(std::string(v)));
  }

  /// Set any value; an existing metric with the same path is overwritten.
  void set(std::string_view path, Value v);

  bool contains(std::string_view path) const;
  size_t size() const { return metrics_.size(); }

  /// Nested, two-space-indented JSON with a leading "schema_version" key
  /// (kSchemaVersion; suppressed if a metric already claimed that path).
  /// Non-finite doubles serialize as the strings "NaN" / "Infinity" /
  /// "-Infinity" — JSON has no literals for them. Throws SimError if one
  /// path is both a leaf and a prefix of another ("a.b" alongside
  /// "a.b.c").
  void write_json(std::ostream& os) const;
  std::string json() const;

  /// `metric,value` rows, one per leaf, insertion order, with header.
  /// Paths and string values containing commas, quotes or newlines are
  /// RFC-4180 quoted so every row stays two columns.
  void write_csv(std::ostream& os) const;
  std::string csv() const;

  /// Write the JSON export to `path` (creates/truncates). Returns false
  /// (and writes nothing) if the file can't be opened.
  bool save_json(const std::string& path) const;
  bool save_csv(const std::string& path) const;

 private:
  struct Metric {
    std::string path;
    Value value;
  };
  std::vector<Metric> metrics_;
};

/// Publish every PerfCounters field under `prefix` (e.g. "perf").
void add_perf_counters(Registry& r, std::string_view prefix,
                       const sim::PerfCounters& p);

/// Publish MemStats fields under `prefix` (e.g. "mem").
void add_mem_stats(Registry& r, std::string_view prefix,
                   const mem::MemStats& s);

/// Publish superblock-engine coverage/fallback counters under `prefix`
/// (e.g. "sim.superblock"), plus the derived fused-instruction fraction
/// when `total_instructions` is nonzero.
void add_superblock_stats(Registry& r, std::string_view prefix,
                          const sim::SuperblockStats& s,
                          u64 total_instructions = 0);

}  // namespace xpulp::obs
