// Field-wise counter arithmetic over the simulator's stat structs, shared
// by the xtel observers (sampler windows, energy attribution). Kept as
// plain free functions instead of operators on the sim structs so the hot
// simulator headers stay arithmetic-free.
#pragma once

#include "mem/memory.hpp"
#include "sim/core.hpp"

namespace xpulp::obs {

inline sim::PerfCounters diff(const sim::PerfCounters& a,
                              const sim::PerfCounters& b) {
  sim::PerfCounters d;
  d.cycles = a.cycles - b.cycles;
  d.instructions = a.instructions - b.instructions;
  d.taken_branches = a.taken_branches - b.taken_branches;
  d.not_taken_branches = a.not_taken_branches - b.not_taken_branches;
  d.jumps = a.jumps - b.jumps;
  d.branch_stall_cycles = a.branch_stall_cycles - b.branch_stall_cycles;
  d.load_use_stall_cycles = a.load_use_stall_cycles - b.load_use_stall_cycles;
  d.mem_stall_cycles = a.mem_stall_cycles - b.mem_stall_cycles;
  d.mul_div_stall_cycles = a.mul_div_stall_cycles - b.mul_div_stall_cycles;
  d.hwloop_backedges = a.hwloop_backedges - b.hwloop_backedges;
  d.loads = a.loads - b.loads;
  d.stores = a.stores - b.stores;
  d.scalar_alu_ops = a.scalar_alu_ops - b.scalar_alu_ops;
  d.mul_ops = a.mul_ops - b.mul_ops;
  d.div_ops = a.div_ops - b.div_ops;
  d.simd_alu_ops = a.simd_alu_ops - b.simd_alu_ops;
  d.qnt_ops = a.qnt_ops - b.qnt_ops;
  d.qnt_stall_cycles = a.qnt_stall_cycles - b.qnt_stall_cycles;
  d.csr_ops = a.csr_ops - b.csr_ops;
  d.sys_ops = a.sys_ops - b.sys_ops;
  d.mac_ops = a.mac_ops - b.mac_ops;
  for (unsigned i = 0; i < 4; ++i) {
    d.dotp_ops[i] = a.dotp_ops[i] - b.dotp_ops[i];
  }
  for (unsigned i = 0; i < 3; ++i) {
    d.mixed_dotp_ops[i] = a.mixed_dotp_ops[i] - b.mixed_dotp_ops[i];
  }
  d.lsu_data_toggles = a.lsu_data_toggles - b.lsu_data_toggles;
  return d;
}

inline void accumulate(sim::PerfCounters& a, const sim::PerfCounters& d) {
  a.cycles += d.cycles;
  a.instructions += d.instructions;
  a.taken_branches += d.taken_branches;
  a.not_taken_branches += d.not_taken_branches;
  a.jumps += d.jumps;
  a.branch_stall_cycles += d.branch_stall_cycles;
  a.load_use_stall_cycles += d.load_use_stall_cycles;
  a.mem_stall_cycles += d.mem_stall_cycles;
  a.mul_div_stall_cycles += d.mul_div_stall_cycles;
  a.hwloop_backedges += d.hwloop_backedges;
  a.loads += d.loads;
  a.stores += d.stores;
  a.scalar_alu_ops += d.scalar_alu_ops;
  a.mul_ops += d.mul_ops;
  a.div_ops += d.div_ops;
  a.simd_alu_ops += d.simd_alu_ops;
  a.qnt_ops += d.qnt_ops;
  a.qnt_stall_cycles += d.qnt_stall_cycles;
  a.csr_ops += d.csr_ops;
  a.sys_ops += d.sys_ops;
  a.mac_ops += d.mac_ops;
  for (unsigned i = 0; i < 4; ++i) a.dotp_ops[i] += d.dotp_ops[i];
  for (unsigned i = 0; i < 3; ++i) a.mixed_dotp_ops[i] += d.mixed_dotp_ops[i];
  a.lsu_data_toggles += d.lsu_data_toggles;
}

inline mem::MemStats diff(const mem::MemStats& a, const mem::MemStats& b) {
  mem::MemStats d;
  d.loads = a.loads - b.loads;
  d.stores = a.stores - b.stores;
  d.load_bytes = a.load_bytes - b.load_bytes;
  d.store_bytes = a.store_bytes - b.store_bytes;
  d.misaligned_accesses = a.misaligned_accesses - b.misaligned_accesses;
  d.contention_stalls = a.contention_stalls - b.contention_stalls;
  return d;
}

inline void accumulate(mem::MemStats& a, const mem::MemStats& d) {
  a.loads += d.loads;
  a.stores += d.stores;
  a.load_bytes += d.load_bytes;
  a.store_bytes += d.store_bytes;
  a.misaligned_accesses += d.misaligned_accesses;
  a.contention_stalls += d.contention_stalls;
}

inline sim::DotpActivity diff(const sim::DotpActivity& a,
                              const sim::DotpActivity& b) {
  sim::DotpActivity d;
  for (unsigned i = 0; i < 4; ++i) {
    d.operand_toggles[i] = a.operand_toggles[i] - b.operand_toggles[i];
    d.ops[i] = a.ops[i] - b.ops[i];
  }
  return d;
}

inline void accumulate(sim::DotpActivity& a, const sim::DotpActivity& d) {
  for (unsigned i = 0; i < 4; ++i) {
    a.operand_toggles[i] += d.operand_toggles[i];
    a.ops[i] += d.ops[i];
  }
}

inline sim::SuperblockStats diff(const sim::SuperblockStats& a,
                                 const sim::SuperblockStats& b) {
  sim::SuperblockStats d;
  d.blocks_compiled = a.blocks_compiled - b.blocks_compiled;
  d.compile_rejects = a.compile_rejects - b.compile_rejects;
  d.entries = a.entries - b.entries;
  d.entry_rejects = a.entry_rejects - b.entry_rejects;
  d.fused_iterations = a.fused_iterations - b.fused_iterations;
  d.fused_instructions = a.fused_instructions - b.fused_instructions;
  d.smc_bails = a.smc_bails - b.smc_bails;
  d.trap_bails = a.trap_bails - b.trap_bails;
  d.invalidations = a.invalidations - b.invalidations;
  d.sample_flushes = a.sample_flushes - b.sample_flushes;
  d.burst_flushes = a.burst_flushes - b.burst_flushes;
  return d;
}

}  // namespace xpulp::obs
