// Timeline trace sink: a fixed-capacity ring buffer of compact binary
// events (region slices, stalls, coalesced instruction blocks, DMA
// streaming windows) on named tracks, exportable as Chrome trace-event
// JSON ("trace.json", loadable in Perfetto / chrome://tracing).
//
// Timestamps are simulated clock cycles. The JSON exporter writes them
// into the `ts` microsecond field unscaled, so 1 µs on the Perfetto ruler
// reads as 1 cycle.
#pragma once

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace xpulp::obs {

enum class EventKind : u8 {
  kRegionBegin,  // open a nested slice on `track`
  kRegionEnd,    // close the innermost open slice on `track`
  kStall,        // instant marker; value = stall cycles
  kInstrBlock,   // complete slice [ts, ts+dur); value = instructions
  kDmaWindow,    // complete slice [ts, ts+dur); value = bytes moved
};

/// One 24-byte trace event. `name` indexes the Timeline's string table.
struct Event {
  u64 ts = 0;
  u64 dur = 0;
  u32 value = 0;
  u16 name = 0;
  EventKind kind = EventKind::kRegionBegin;
  u8 track = 0;
};

/// One sampled counter point on a Perfetto counter track ("ph":"C").
/// Held in a side ring separate from the slice events so a dense sample
/// stream cannot evict region slices (and vice versa).
struct CounterPoint {
  u64 ts = 0;
  double value = 0;
  u16 name = 0;
  u8 track = 0;
};

class Timeline {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 20;

  explicit Timeline(size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {
    ring_.reserve(std::min<size_t>(capacity_, 4096));
  }

  /// Intern `name`, returning its stable string-table id.
  u16 intern(std::string_view name);
  const std::string& name(u16 id) const { return names_[id]; }

  /// Append an event; once the ring is full the oldest event is dropped.
  void record(const Event& e) {
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
  }

  /// Append a counter sample; once the counter ring is full the oldest
  /// point is dropped (the track just starts later — no repair needed,
  /// the export stays well-formed and per-track monotonic).
  void record_counter(const CounterPoint& p) {
    if (counters_.size() < counter_capacity_) {
      counters_.push_back(p);
    } else {
      counters_[counter_head_] = p;
      counter_head_ = (counter_head_ + 1) % counter_capacity_;
    }
    ++counters_recorded_;
  }

  /// Label a track (becomes a Perfetto thread_name; track 0-based).
  /// In cluster runs, track i is core i's lane.
  void set_track_name(u8 track, std::string_view name);

  /// Resize the counter-point ring. Call before recording counters; a
  /// later shrink only takes effect once the ring cycles naturally.
  void set_counter_capacity(size_t capacity) {
    counter_capacity_ = capacity ? capacity : 1;
  }

  u64 recorded() const { return recorded_; }
  u64 dropped() const {
    return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
  }
  size_t size() const { return ring_.size(); }

  u64 counters_recorded() const { return counters_recorded_; }
  u64 counters_dropped() const {
    return counters_recorded_ <= counter_capacity_
               ? 0
               : counters_recorded_ - counter_capacity_;
  }

  /// Events still held, oldest first.
  std::vector<Event> events() const;

  /// Counter points still held, oldest first.
  std::vector<CounterPoint> counter_points() const;

  /// Chrome trace-event JSON. Begin/end pairs that lost their partner to
  /// the ring (or to an abandoned run) are repaired with synthetic events
  /// at the retained window's edges, so the output always nests cleanly.
  /// Counter points, if any were recorded, are appended as "ph":"C"
  /// events sorted by timestamp and "dropped_counters" joins otherData;
  /// a counter-free timeline emits byte-identical output to pre-counter
  /// builds.
  void write_chrome_json(std::ostream& os) const;
  std::string chrome_json() const;

 private:
  static constexpr size_t kDefaultCounterCapacity = 1u << 16;

  size_t capacity_;
  std::vector<Event> ring_;
  size_t head_ = 0;  // oldest element once the ring is full
  u64 recorded_ = 0;
  size_t counter_capacity_ = kDefaultCounterCapacity;
  std::vector<CounterPoint> counters_;
  size_t counter_head_ = 0;
  u64 counters_recorded_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, u16> name_ids_;
  std::vector<std::pair<u8, std::string>> track_names_;
};

}  // namespace xpulp::obs
