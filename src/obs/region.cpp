#include "obs/region.hpp"

#include <algorithm>

namespace xpulp::obs {

int RegionMap::region(std::string_view name) {
  for (int i = 0; i < size(); ++i) {
    if (regions_[static_cast<size_t>(i)].name == name) return i;
  }
  regions_.push_back({std::string(name), {}});
  return size() - 1;
}

void RegionMap::add_range(std::string_view name, addr_t lo, addr_t hi) {
  if (hi <= lo) return;
  regions_[static_cast<size_t>(region(name))].ranges.emplace_back(lo, hi);
}

addr_t RegionMap::end_addr() const {
  addr_t end = 0;
  for (const Region& r : regions_) {
    for (const auto& [lo, hi] : r.ranges) end = std::max(end, hi);
  }
  return end;
}

int RegionMap::lookup(addr_t pc) const {
  for (int i = size() - 1; i >= 0; --i) {
    for (const auto& [lo, hi] : regions_[static_cast<size_t>(i)].ranges) {
      if (pc >= lo && pc < hi) return i;
    }
  }
  return kNone;
}

std::vector<int> RegionMap::build_index() const {
  std::vector<int> index(static_cast<size_t>((end_addr() + 1) >> 1), kNone);
  // Paint in creation order so later regions overwrite earlier ones,
  // matching lookup()'s innermost-wins rule.
  for (int i = 0; i < size(); ++i) {
    for (const auto& [lo, hi] : regions_[static_cast<size_t>(i)].ranges) {
      for (addr_t p = lo >> 1; p < ((hi + 1) >> 1); ++p) {
        index[p] = i;
      }
    }
  }
  return index;
}

}  // namespace xpulp::obs
