// TCDM bank heatmap (xtel, DESIGN.md §14). Consumes the cluster's access
// observer stream (cluster::Cluster::set_access_observer) and bins every
// data access into (sample window, bank) cells with per-core
// contributions, using the arbiter's own bank mapping (word-interleaved:
// bank = (addr >> 2) % banks). Conflicts are counted from the observer's
// `conflict_stalls` argument — nonzero exactly when BankArbiter charged a
// conflict — so the heatmap's conflict total equals
// BankArbiter::conflicts() exactly, access for access.
//
// The heatmap is deliberately independent of the cluster class: wire it
// up with
//   cl.set_access_observer([&hm](int c, cycles_t cy, addr_t, addr_t a,
//                                unsigned, bool, unsigned st) {
//     hm.observe(c, cy, a, st);
//   });
// so xp_obs does not grow a dependency on xp_cluster.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"

namespace xpulp::obs {

/// One (window, bank) cell of the heatmap.
struct BankCell {
  u64 accesses = 0;
  u64 conflicts = 0;
};

class BankHeatmap {
 public:
  struct Options {
    /// Window width in scheduler cycles; window index = cycle / this.
    cycles_t window_cycles = 4096;
    /// Retained-window ring capacity; oldest windows drop first.
    size_t capacity = 1u << 12;
  };

  /// `banks` and `cores` size the per-window grids; `banks` must match
  /// the cluster's arbiter (num_cores * banks_per_core).
  BankHeatmap(u32 banks, int cores, const Options& opts);
  BankHeatmap(u32 banks, int cores) : BankHeatmap(banks, cores, Options{}) {}

  /// Feed one observed access (call from the cluster access observer).
  /// `stalls` is the arbiter's charged stall count for this access;
  /// nonzero counts as one conflict.
  void observe(int core, cycles_t cycle, addr_t addr, unsigned stalls);

  u32 banks() const { return banks_; }
  int cores() const { return cores_; }
  u64 windows_recorded() const { return windows_recorded_; }
  u64 windows_dropped() const;

  /// Grand totals over every observed access (not just retained windows).
  u64 total_accesses() const { return total_accesses_; }
  /// Equals BankArbiter::conflicts() for the same run, exactly.
  u64 total_conflicts() const { return total_conflicts_; }

  /// Per-bank cells of retained window `w` (0 = oldest retained).
  size_t retained_windows() const { return ring_.size(); }
  u64 window_index(size_t w) const;  // absolute window number
  const std::vector<BankCell>& window_banks(size_t w) const;
  /// Per-core access counts of retained window `w`.
  const std::vector<u64>& window_core_accesses(size_t w) const;

  /// JSON: header (banks, cores, window size, totals, drops) plus one
  /// entry per retained window with per-bank and per-core arrays.
  void write_json(std::ostream& os) const;
  /// CSV: window,bank,accesses,conflicts rows.
  void write_csv(std::ostream& os) const;

  /// Stream per-bank counter tracks ("tcdm/bank<N>/accesses|conflicts",
  /// one point per retained window at the window-start cycle) into `tl`.
  void add_to_timeline(Timeline& tl, u8 track = 0) const;

  /// Publish totals under `prefix` (accesses, conflicts, windows, the
  /// hottest bank and its share).
  void add_to_registry(Registry& r, std::string_view prefix) const;

 private:
  struct Window {
    u64 index = 0;  // absolute window number (cycle / window_cycles)
    std::vector<BankCell> banks;
    std::vector<u64> core_accesses;
  };

  Window& window_for(cycles_t cycle);
  const Window& retained(size_t w) const;

  u32 banks_;
  int cores_;
  Options opts_;
  size_t capacity_;

  std::vector<Window> ring_;
  size_t head_ = 0;
  u64 windows_recorded_ = 0;

  u64 total_accesses_ = 0;
  u64 total_conflicts_ = 0;
  std::vector<u64> bank_totals_accesses_;
  std::vector<u64> bank_totals_conflicts_;
};

}  // namespace xpulp::obs
