// Binary decoder: 32-bit (and 16-bit compressed) words -> Instr records.
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace xpulp::isa {

/// Decode one instruction word fetched at `pc`. For compressed instructions
/// only the low 16 bits of `raw` are consumed and the result has size == 2.
/// Throws IllegalInstruction for unknown encodings.
Instr decode(u32 raw, addr_t pc);

/// True if the low 16 bits of `raw` form a compressed (16-bit) instruction.
constexpr bool is_compressed(u32 raw) { return (raw & 0x3u) != 0x3u; }

/// Decode a 16-bit compressed instruction into its 32-bit equivalent Instr
/// (size == 2). Supports the RVC subset listed in DESIGN.md.
Instr decode_compressed(u16 raw, addr_t pc);

}  // namespace xpulp::isa
