// Instruction model: every mnemonic the simulator understands, plus the
// decoded-instruction record that the decoder produces and the core executes.
//
// The instruction set is RV32IM + a subset of the C extension, the XpulpV2
// DSP extensions used by PULP-NN kernels (hardware loops, post-increment
// load/store, scalar min/max/abs/clip, MAC, bit manipulation, 8/16-bit
// packed SIMD), and the XpulpNN extensions contributed by the paper
// (4-bit "nibble" / 2-bit "crumb" packed SIMD incl. dot products, and the
// multi-cycle pv.qnt quantization instruction).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace xpulp::isa {

enum class Mnemonic : u16 {
  kInvalid = 0,

  // ---- RV32I ----
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,

  // ---- RV32M ----
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,

  // ---- XpulpV2: post-increment / register-addressed memory ops ----
  kPLbPostImm, kPLhPostImm, kPLwPostImm, kPLbuPostImm, kPLhuPostImm,
  kPSbPostImm, kPShPostImm, kPSwPostImm,
  kPLbPostReg, kPLhPostReg, kPLwPostReg, kPLbuPostReg, kPLhuPostReg,
  kPLbRegReg, kPLhRegReg, kPLwRegReg, kPLbuRegReg, kPLhuRegReg,
  kPSbPostReg, kPShPostReg, kPSwPostReg,
  kPSbRegReg, kPShRegReg, kPSwRegReg,

  // ---- XpulpV2: scalar ALU extensions ----
  kPAbs, kPMin, kPMinu, kPMax, kPMaxu,
  kPExths, kPExthz, kPExtbs, kPExtbz,
  kPCnt, kPFf1, kPFl1, kPClb, kPRor,
  kPClip, kPClipu,           // immediate clip: [-2^(i-1), 2^(i-1)-1] / [0, 2^i - 1]
  kPMac, kPMsu,              // rd +/-= rs1 * rs2

  // ---- XpulpV2: bit manipulation (two 5-bit immediates Is3=width-1, Is2=pos)
  kPExtract, kPExtractu, kPInsert, kPBclr, kPBset,

  // ---- XpulpV2: immediate-compare branches (rs2 field = signed imm5) ----
  kPBeqimm, kPBneimm,

  // ---- XpulpV2: hardware loops ----
  kLpStarti, kLpEndi, kLpCount, kLpCounti, kLpSetup, kLpSetupi,

  // ---- Packed SIMD (XpulpV2 for b/h formats, XpulpNN for n/c formats) ----
  kPvAdd, kPvSub, kPvAvg, kPvAvgu,
  kPvMax, kPvMaxu, kPvMin, kPvMinu,
  kPvSrl, kPvSra, kPvSll, kPvAbs,
  kPvAnd, kPvOr, kPvXor,
  kPvDotup, kPvDotusp, kPvDotsp,
  kPvSdotup, kPvSdotusp, kPvSdotsp,
  // Mixed-precision "virtual" dot products (Ottavi et al.): the operand
  // formats are not encoded in the instruction — they come from the
  // precision-status CSR (mpc, 0x7C1) at execution time. rs1 holds
  // 32/WA activations of WA bits; rs2 packs the same number of WB-bit
  // weights in its low lanes. mldot* overwrite rd, mlsdot* accumulate.
  kPvMldotup, kPvMldotusp, kPvMldotsp,
  kPvMlsdotup, kPvMlsdotusp, kPvMlsdotsp,
  // Element manipulation (XpulpV2, b/h formats; lane index in the rs2
  // field for extract/insert).
  kPvElemExtract, kPvElemExtractu, kPvElemInsert,
  kPvShuffle,  // rd[i] = rs1[rs2[i] mod lanes]
  kPvPackH,    // rd = (rs1.h0 << 16) | rs2.h0   (h format only)
  kPvQnt,  // XpulpNN thresholding-based quantization (n/c only)

  kCount,
};

/// SIMD vector format: element width and whether the second operand is a
/// replicated scalar (`.sc` variant). The `sci` immediate variants of
/// XpulpV2 are intentionally not modelled (see DESIGN.md §3).
enum class SimdFmt : u8 {
  kNone = 0,
  kB,    // 4 x 8-bit
  kBSc,
  kH,    // 2 x 16-bit
  kHSc,
  kN,    // 8 x 4-bit  (nibble, XpulpNN)
  kNSc,
  kC,    // 16 x 2-bit (crumb, XpulpNN)
  kCSc,
};

/// Element width in bits for a SIMD format (0 for kNone).
constexpr unsigned simd_elem_bits(SimdFmt f) {
  switch (f) {
    case SimdFmt::kB: case SimdFmt::kBSc: return 8;
    case SimdFmt::kH: case SimdFmt::kHSc: return 16;
    case SimdFmt::kN: case SimdFmt::kNSc: return 4;
    case SimdFmt::kC: case SimdFmt::kCSc: return 2;
    default: return 0;
  }
}

/// Number of elements packed in a 32-bit register for a SIMD format.
constexpr unsigned simd_elem_count(SimdFmt f) {
  const unsigned b = simd_elem_bits(f);
  return b == 0 ? 0 : 32 / b;
}

/// True for the `.sc` (replicated scalar) variants.
constexpr bool simd_is_scalar_rep(SimdFmt f) {
  return f == SimdFmt::kBSc || f == SimdFmt::kHSc || f == SimdFmt::kNSc ||
         f == SimdFmt::kCSc;
}

/// True for the sub-byte formats introduced by XpulpNN.
constexpr bool simd_is_subbyte(SimdFmt f) {
  return simd_elem_bits(f) == 4 || simd_elem_bits(f) == 2;
}

/// Precision-status CSR for the mixed virtual dot products (Ottavi et
/// al.). WARL, two bits: 0 selects 8x4, 1 selects 8x2, 2 selects 4x2;
/// 3 is reserved and makes any mixed dot product trap as illegal.
inline constexpr u32 kMpcCsr = 0x7C1;
inline constexpr u32 kMpcSelCount = 3;

/// Activation (rs1) element width in bits for an mpc selector.
constexpr unsigned mixed_width_a(u32 sel) { return sel == 2 ? 4u : 8u; }
/// Weight (rs2) element width in bits for an mpc selector. The rs2 word
/// packs 32/width_a values of width_b bits in its low lanes.
constexpr unsigned mixed_width_b(u32 sel) { return sel == 0 ? 4u : 2u; }

/// Handler class an instruction dispatches to. Computed once at decode
/// time; the core indexes a static handler table with it instead of
/// switching over the ~130 mnemonics on every executed instruction.
enum class ExecClass : u8 {
  kIllegal = 0,
  kLui,
  kAuipc,
  kBranchJump,  // jal/jalr, conditional branches, p.beqimm/p.bneimm
  kAluImm,      // RV32I immediate ALU ops
  kAluReg,      // RV32I register ALU ops
  kMulDiv,
  kMem,         // every load/store addressing mode
  kFence,
  kEcall,
  kEbreak,
  kCsr,
  kHwloop,
  kPulpScalar,
  kSimdAlu,     // packed SIMD arithmetic/logic/shift
  kSimdDotp,    // pv.dot* / pv.sdot*
  kSimdElem,    // pv.extract/insert/shuffle/pack
  kSimdQnt,     // pv.qnt
  kCount,
};

/// True for the four packed-SIMD handler classes.
constexpr bool exec_class_is_simd(ExecClass c) {
  return c == ExecClass::kSimdAlu || c == ExecClass::kSimdDotp ||
         c == ExecClass::kSimdElem || c == ExecClass::kSimdQnt;
}

/// Packed operand-use / classification flags, filled at decode time from
/// the predicate functions below so the interpreter's per-step hot path
/// reads one bitmask instead of re-running mnemonic switches.
namespace iflag {
inline constexpr u16 kReadsRs1 = 1u << 0;
inline constexpr u16 kReadsRs2 = 1u << 1;
inline constexpr u16 kReadsRd = 1u << 2;   // rd used as a source operand
inline constexpr u16 kWritesRd = 1u << 3;
inline constexpr u16 kIsLoad = 1u << 4;
inline constexpr u16 kIsStore = 1u << 5;
inline constexpr u16 kLoadSigned = 1u << 6;
// ISA-feature requirements; the core pre-computes a mask of *missing*
// features from its config and a single AND replaces the require() chains.
inline constexpr u16 kNeedXpulpV2 = 1u << 7;
inline constexpr u16 kNeedXpulpNN = 1u << 8;
inline constexpr u16 kNeedHwloops = 1u << 9;
// Load/store addressing mode, resolved at decode time so the memory handler
// needs no mnemonic switch: post-increment addresses with the unmodified
// base and writes base+offset back to rs1; reg-offset takes the offset from
// a register (rs2 for loads, the rd field for stores) instead of `imm`.
inline constexpr u16 kMemPostInc = 1u << 10;
inline constexpr u16 kMemRegOff = 1u << 11;
// Dot-product family, resolved at decode time: sdot accumulates into rd,
// and each operand is independently signed (pv.dotusp is unsigned x signed).
inline constexpr u16 kDotAccum = 1u << 12;
inline constexpr u16 kDotSignedA = 1u << 13;
inline constexpr u16 kDotSignedB = 1u << 14;
// Mixed-precision virtual dot product: the operand widths come from the
// precision-status CSR (mpc) at execution time, not from `fmt` (kNone).
inline constexpr u16 kDotMixed = 1u << 15;
}  // namespace iflag

/// A decoded instruction. `imm` is the primary (sign-extended) immediate;
/// `imm2` carries secondary fields: Is3 for bit-manipulation ops, the loop
/// index L for hardware loops, and the CSR uimm for CSRR*I. `flags`,
/// `cls` and `mem_size` are derived fields filled by finalize_decode().
struct Instr {
  Mnemonic op = Mnemonic::kInvalid;
  SimdFmt fmt = SimdFmt::kNone;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
  u8 imm2 = 0;
  u32 raw = 0;
  u8 size = 4;  // bytes: 2 for compressed, 4 otherwise

  u16 flags = 0;                       // iflag:: bits
  ExecClass cls = ExecClass::kIllegal;
  u8 mem_size = 0;                     // bytes for loads/stores, else 0

  bool valid() const { return op != Mnemonic::kInvalid; }
  bool has(u16 f) const { return (flags & f) != 0; }
};

/// Fill the derived fields (`flags`, `cls`, `mem_size`) of a decoded
/// instruction from its mnemonic/format. Idempotent; decode() and
/// decode_compressed() call it on every instruction they produce. The
/// values are defined to agree exactly with the predicate functions below
/// (the differential dispatch test enforces this).
void finalize_decode(Instr& in);

/// Human-readable mnemonic (e.g. "pv.sdotsp"). The SIMD format suffix is
/// appended by the disassembler, not included here.
std::string_view mnemonic_name(Mnemonic m);

/// Classification helpers used by the timing model and the power model.
bool is_load(Mnemonic m);
bool is_store(Mnemonic m);
bool is_branch(Mnemonic m);
bool is_simd(Mnemonic m);
bool is_dotp(Mnemonic m);        // any pv.dot*/pv.sdot*/pv.mldot* op
bool is_mixed_dotp(Mnemonic m);  // pv.mldot*/pv.mlsdot* (CSR-selected widths)
bool is_elem_manip(Mnemonic m);  // pv.extract/insert/shuffle/pack
bool is_mem_post_increment(Mnemonic m);
bool writes_rd(const Instr& in); // whether the instruction writes `rd`
bool reads_rs1(const Instr& in);
bool reads_rs2(const Instr& in);
bool reads_rd(const Instr& in);  // rd used as a source (MAC, sdot, insert, ...)

/// Memory access size in bytes for load/store mnemonics (0 otherwise).
unsigned mem_access_size(Mnemonic m);

/// True if the load mnemonic sign-extends its result.
bool load_is_signed(Mnemonic m);

}  // namespace xpulp::isa
