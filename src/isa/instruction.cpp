#include "isa/instruction.hpp"

namespace xpulp::isa {

std::string_view mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::kInvalid: return "<invalid>";
    case Mnemonic::kLui: return "lui";
    case Mnemonic::kAuipc: return "auipc";
    case Mnemonic::kJal: return "jal";
    case Mnemonic::kJalr: return "jalr";
    case Mnemonic::kBeq: return "beq";
    case Mnemonic::kBne: return "bne";
    case Mnemonic::kBlt: return "blt";
    case Mnemonic::kBge: return "bge";
    case Mnemonic::kBltu: return "bltu";
    case Mnemonic::kBgeu: return "bgeu";
    case Mnemonic::kLb: return "lb";
    case Mnemonic::kLh: return "lh";
    case Mnemonic::kLw: return "lw";
    case Mnemonic::kLbu: return "lbu";
    case Mnemonic::kLhu: return "lhu";
    case Mnemonic::kSb: return "sb";
    case Mnemonic::kSh: return "sh";
    case Mnemonic::kSw: return "sw";
    case Mnemonic::kAddi: return "addi";
    case Mnemonic::kSlti: return "slti";
    case Mnemonic::kSltiu: return "sltiu";
    case Mnemonic::kXori: return "xori";
    case Mnemonic::kOri: return "ori";
    case Mnemonic::kAndi: return "andi";
    case Mnemonic::kSlli: return "slli";
    case Mnemonic::kSrli: return "srli";
    case Mnemonic::kSrai: return "srai";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kSll: return "sll";
    case Mnemonic::kSlt: return "slt";
    case Mnemonic::kSltu: return "sltu";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kSrl: return "srl";
    case Mnemonic::kSra: return "sra";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kFence: return "fence";
    case Mnemonic::kEcall: return "ecall";
    case Mnemonic::kEbreak: return "ebreak";
    case Mnemonic::kCsrrw: return "csrrw";
    case Mnemonic::kCsrrs: return "csrrs";
    case Mnemonic::kCsrrc: return "csrrc";
    case Mnemonic::kCsrrwi: return "csrrwi";
    case Mnemonic::kCsrrsi: return "csrrsi";
    case Mnemonic::kCsrrci: return "csrrci";
    case Mnemonic::kMul: return "mul";
    case Mnemonic::kMulh: return "mulh";
    case Mnemonic::kMulhsu: return "mulhsu";
    case Mnemonic::kMulhu: return "mulhu";
    case Mnemonic::kDiv: return "div";
    case Mnemonic::kDivu: return "divu";
    case Mnemonic::kRem: return "rem";
    case Mnemonic::kRemu: return "remu";
    case Mnemonic::kPLbPostImm: return "p.lb!";
    case Mnemonic::kPLhPostImm: return "p.lh!";
    case Mnemonic::kPLwPostImm: return "p.lw!";
    case Mnemonic::kPLbuPostImm: return "p.lbu!";
    case Mnemonic::kPLhuPostImm: return "p.lhu!";
    case Mnemonic::kPSbPostImm: return "p.sb!";
    case Mnemonic::kPShPostImm: return "p.sh!";
    case Mnemonic::kPSwPostImm: return "p.sw!";
    case Mnemonic::kPLbPostReg: return "p.lb.r!";
    case Mnemonic::kPLhPostReg: return "p.lh.r!";
    case Mnemonic::kPLwPostReg: return "p.lw.r!";
    case Mnemonic::kPLbuPostReg: return "p.lbu.r!";
    case Mnemonic::kPLhuPostReg: return "p.lhu.r!";
    case Mnemonic::kPLbRegReg: return "p.lb.rr";
    case Mnemonic::kPLhRegReg: return "p.lh.rr";
    case Mnemonic::kPLwRegReg: return "p.lw.rr";
    case Mnemonic::kPLbuRegReg: return "p.lbu.rr";
    case Mnemonic::kPLhuRegReg: return "p.lhu.rr";
    case Mnemonic::kPSbPostReg: return "p.sb.r!";
    case Mnemonic::kPShPostReg: return "p.sh.r!";
    case Mnemonic::kPSwPostReg: return "p.sw.r!";
    case Mnemonic::kPSbRegReg: return "p.sb.rr";
    case Mnemonic::kPShRegReg: return "p.sh.rr";
    case Mnemonic::kPSwRegReg: return "p.sw.rr";
    case Mnemonic::kPAbs: return "p.abs";
    case Mnemonic::kPMin: return "p.min";
    case Mnemonic::kPMinu: return "p.minu";
    case Mnemonic::kPMax: return "p.max";
    case Mnemonic::kPMaxu: return "p.maxu";
    case Mnemonic::kPExths: return "p.exths";
    case Mnemonic::kPExthz: return "p.exthz";
    case Mnemonic::kPExtbs: return "p.extbs";
    case Mnemonic::kPExtbz: return "p.extbz";
    case Mnemonic::kPCnt: return "p.cnt";
    case Mnemonic::kPFf1: return "p.ff1";
    case Mnemonic::kPFl1: return "p.fl1";
    case Mnemonic::kPClb: return "p.clb";
    case Mnemonic::kPRor: return "p.ror";
    case Mnemonic::kPClip: return "p.clip";
    case Mnemonic::kPClipu: return "p.clipu";
    case Mnemonic::kPMac: return "p.mac";
    case Mnemonic::kPMsu: return "p.msu";
    case Mnemonic::kPExtract: return "p.extract";
    case Mnemonic::kPExtractu: return "p.extractu";
    case Mnemonic::kPInsert: return "p.insert";
    case Mnemonic::kPBclr: return "p.bclr";
    case Mnemonic::kPBset: return "p.bset";
    case Mnemonic::kPBeqimm: return "p.beqimm";
    case Mnemonic::kPBneimm: return "p.bneimm";
    case Mnemonic::kLpStarti: return "lp.starti";
    case Mnemonic::kLpEndi: return "lp.endi";
    case Mnemonic::kLpCount: return "lp.count";
    case Mnemonic::kLpCounti: return "lp.counti";
    case Mnemonic::kLpSetup: return "lp.setup";
    case Mnemonic::kLpSetupi: return "lp.setupi";
    case Mnemonic::kPvAdd: return "pv.add";
    case Mnemonic::kPvSub: return "pv.sub";
    case Mnemonic::kPvAvg: return "pv.avg";
    case Mnemonic::kPvAvgu: return "pv.avgu";
    case Mnemonic::kPvMax: return "pv.max";
    case Mnemonic::kPvMaxu: return "pv.maxu";
    case Mnemonic::kPvMin: return "pv.min";
    case Mnemonic::kPvMinu: return "pv.minu";
    case Mnemonic::kPvSrl: return "pv.srl";
    case Mnemonic::kPvSra: return "pv.sra";
    case Mnemonic::kPvSll: return "pv.sll";
    case Mnemonic::kPvAbs: return "pv.abs";
    case Mnemonic::kPvAnd: return "pv.and";
    case Mnemonic::kPvOr: return "pv.or";
    case Mnemonic::kPvXor: return "pv.xor";
    case Mnemonic::kPvDotup: return "pv.dotup";
    case Mnemonic::kPvDotusp: return "pv.dotusp";
    case Mnemonic::kPvDotsp: return "pv.dotsp";
    case Mnemonic::kPvSdotup: return "pv.sdotup";
    case Mnemonic::kPvSdotusp: return "pv.sdotusp";
    case Mnemonic::kPvSdotsp: return "pv.sdotsp";
    case Mnemonic::kPvMldotup: return "pv.mldotup";
    case Mnemonic::kPvMldotusp: return "pv.mldotusp";
    case Mnemonic::kPvMldotsp: return "pv.mldotsp";
    case Mnemonic::kPvMlsdotup: return "pv.mlsdotup";
    case Mnemonic::kPvMlsdotusp: return "pv.mlsdotusp";
    case Mnemonic::kPvMlsdotsp: return "pv.mlsdotsp";
    case Mnemonic::kPvElemExtract: return "pv.extract";
    case Mnemonic::kPvElemExtractu: return "pv.extractu";
    case Mnemonic::kPvElemInsert: return "pv.insert";
    case Mnemonic::kPvShuffle: return "pv.shuffle";
    case Mnemonic::kPvPackH: return "pv.pack";
    case Mnemonic::kPvQnt: return "pv.qnt";
    case Mnemonic::kCount: return "<count>";
  }
  return "<unknown>";
}

bool is_load(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLb: case Mnemonic::kLh: case Mnemonic::kLw:
    case Mnemonic::kLbu: case Mnemonic::kLhu:
    case Mnemonic::kPLbPostImm: case Mnemonic::kPLhPostImm:
    case Mnemonic::kPLwPostImm: case Mnemonic::kPLbuPostImm:
    case Mnemonic::kPLhuPostImm:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPLbRegReg: case Mnemonic::kPLhRegReg:
    case Mnemonic::kPLwRegReg: case Mnemonic::kPLbuRegReg:
    case Mnemonic::kPLhuRegReg:
      return true;
    default:
      return false;
  }
}

bool is_store(Mnemonic m) {
  switch (m) {
    case Mnemonic::kSb: case Mnemonic::kSh: case Mnemonic::kSw:
    case Mnemonic::kPSbPostImm: case Mnemonic::kPShPostImm:
    case Mnemonic::kPSwPostImm:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
    case Mnemonic::kPSbRegReg: case Mnemonic::kPShRegReg:
    case Mnemonic::kPSwRegReg:
      return true;
    default:
      return false;
  }
}

bool is_branch(Mnemonic m) {
  switch (m) {
    case Mnemonic::kBeq: case Mnemonic::kBne: case Mnemonic::kBlt:
    case Mnemonic::kBge: case Mnemonic::kBltu: case Mnemonic::kBgeu:
    case Mnemonic::kPBeqimm: case Mnemonic::kPBneimm:
      return true;
    default:
      return false;
  }
}

bool is_simd(Mnemonic m) {
  return m >= Mnemonic::kPvAdd && m <= Mnemonic::kPvQnt;
}

bool is_elem_manip(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPvElemExtract: case Mnemonic::kPvElemExtractu:
    case Mnemonic::kPvElemInsert: case Mnemonic::kPvShuffle:
    case Mnemonic::kPvPackH:
      return true;
    default:
      return false;
  }
}

bool is_dotp(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPvDotup: case Mnemonic::kPvDotusp: case Mnemonic::kPvDotsp:
    case Mnemonic::kPvSdotup: case Mnemonic::kPvSdotusp:
    case Mnemonic::kPvSdotsp:
    case Mnemonic::kPvMldotup: case Mnemonic::kPvMldotusp:
    case Mnemonic::kPvMldotsp:
    case Mnemonic::kPvMlsdotup: case Mnemonic::kPvMlsdotusp:
    case Mnemonic::kPvMlsdotsp:
      return true;
    default:
      return false;
  }
}

bool is_mixed_dotp(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPvMldotup: case Mnemonic::kPvMldotusp:
    case Mnemonic::kPvMldotsp:
    case Mnemonic::kPvMlsdotup: case Mnemonic::kPvMlsdotusp:
    case Mnemonic::kPvMlsdotsp:
      return true;
    default:
      return false;
  }
}

bool is_mem_post_increment(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPLbPostImm: case Mnemonic::kPLhPostImm:
    case Mnemonic::kPLwPostImm: case Mnemonic::kPLbuPostImm:
    case Mnemonic::kPLhuPostImm:
    case Mnemonic::kPSbPostImm: case Mnemonic::kPShPostImm:
    case Mnemonic::kPSwPostImm:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
      return true;
    default:
      return false;
  }
}

bool writes_rd(const Instr& in) {
  switch (in.op) {
    case Mnemonic::kSb: case Mnemonic::kSh: case Mnemonic::kSw:
    case Mnemonic::kPSbPostImm: case Mnemonic::kPShPostImm:
    case Mnemonic::kPSwPostImm:
    case Mnemonic::kPSbRegReg:
    case Mnemonic::kPShRegReg: case Mnemonic::kPSwRegReg:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
    case Mnemonic::kBeq: case Mnemonic::kBne: case Mnemonic::kBlt:
    case Mnemonic::kBge: case Mnemonic::kBltu: case Mnemonic::kBgeu:
    case Mnemonic::kPBeqimm: case Mnemonic::kPBneimm:
    case Mnemonic::kFence: case Mnemonic::kEcall: case Mnemonic::kEbreak:
    case Mnemonic::kLpStarti: case Mnemonic::kLpEndi:
    case Mnemonic::kLpCount: case Mnemonic::kLpCounti:
    case Mnemonic::kLpSetup: case Mnemonic::kLpSetupi:
      return false;
    default:
      return in.rd != 0;
  }
}

bool reads_rs1(const Instr& in) {
  switch (in.op) {
    case Mnemonic::kLui: case Mnemonic::kAuipc: case Mnemonic::kJal:
    case Mnemonic::kFence: case Mnemonic::kEcall: case Mnemonic::kEbreak:
    case Mnemonic::kCsrrwi: case Mnemonic::kCsrrsi: case Mnemonic::kCsrrci:
    case Mnemonic::kLpStarti: case Mnemonic::kLpEndi:
    case Mnemonic::kLpCounti: case Mnemonic::kLpSetupi:
      return false;
    default:
      return true;
  }
}

bool reads_rs2(const Instr& in) {
  switch (in.op) {
    case Mnemonic::kAdd: case Mnemonic::kSub: case Mnemonic::kSll:
    case Mnemonic::kSlt: case Mnemonic::kSltu: case Mnemonic::kXor:
    case Mnemonic::kSrl: case Mnemonic::kSra: case Mnemonic::kOr:
    case Mnemonic::kAnd:
    case Mnemonic::kMul: case Mnemonic::kMulh: case Mnemonic::kMulhsu:
    case Mnemonic::kMulhu: case Mnemonic::kDiv: case Mnemonic::kDivu:
    case Mnemonic::kRem: case Mnemonic::kRemu:
    case Mnemonic::kBeq: case Mnemonic::kBne: case Mnemonic::kBlt:
    case Mnemonic::kBge: case Mnemonic::kBltu: case Mnemonic::kBgeu:
    case Mnemonic::kSb: case Mnemonic::kSh: case Mnemonic::kSw:
    case Mnemonic::kPSbPostImm: case Mnemonic::kPShPostImm:
    case Mnemonic::kPSwPostImm:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
    case Mnemonic::kPSbRegReg: case Mnemonic::kPShRegReg:
    case Mnemonic::kPSwRegReg:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPLbRegReg: case Mnemonic::kPLhRegReg:
    case Mnemonic::kPLwRegReg: case Mnemonic::kPLbuRegReg:
    case Mnemonic::kPLhuRegReg:
    case Mnemonic::kPMin: case Mnemonic::kPMinu: case Mnemonic::kPMax:
    case Mnemonic::kPMaxu: case Mnemonic::kPRor:
    case Mnemonic::kPMac: case Mnemonic::kPMsu:
      return true;
    default:
      // SIMD register-register ops read rs2; .sc variants also read rs2 (the
      // scalar lives in a register). pv.qnt reads rs2 as the threshold base.
      return is_simd(in.op);
  }
}

bool reads_rd(const Instr& in) {
  switch (in.op) {
    case Mnemonic::kPMac: case Mnemonic::kPMsu:
    case Mnemonic::kPInsert: case Mnemonic::kPvElemInsert:
    case Mnemonic::kPvSdotup: case Mnemonic::kPvSdotusp:
    case Mnemonic::kPvSdotsp:
    case Mnemonic::kPvMlsdotup: case Mnemonic::kPvMlsdotusp:
    case Mnemonic::kPvMlsdotsp:
      return true;
    // Register post-increment / reg-reg stores carry the increment/offset
    // register in the rd field.
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
    case Mnemonic::kPSbRegReg: case Mnemonic::kPShRegReg:
    case Mnemonic::kPSwRegReg:
      return true;
    default:
      return false;
  }
}

unsigned mem_access_size(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLb: case Mnemonic::kLbu: case Mnemonic::kSb:
    case Mnemonic::kPLbPostImm: case Mnemonic::kPLbuPostImm:
    case Mnemonic::kPSbPostImm:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLbRegReg: case Mnemonic::kPLbuRegReg:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPSbRegReg:
      return 1;
    case Mnemonic::kLh: case Mnemonic::kLhu: case Mnemonic::kSh:
    case Mnemonic::kPLhPostImm: case Mnemonic::kPLhuPostImm:
    case Mnemonic::kPShPostImm:
    case Mnemonic::kPLhPostReg: case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPLhRegReg: case Mnemonic::kPLhuRegReg:
    case Mnemonic::kPShPostReg: case Mnemonic::kPShRegReg:
      return 2;
    case Mnemonic::kLw: case Mnemonic::kSw:
    case Mnemonic::kPLwPostImm: case Mnemonic::kPSwPostImm:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLwRegReg:
    case Mnemonic::kPSwPostReg: case Mnemonic::kPSwRegReg:
      return 4;
    default:
      return 0;
  }
}

bool load_is_signed(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLb: case Mnemonic::kLh:
    case Mnemonic::kPLbPostImm: case Mnemonic::kPLhPostImm:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLbRegReg: case Mnemonic::kPLhRegReg:
      return true;
    default:
      return false;
  }
}

namespace {

ExecClass classify(Mnemonic m) {
  using M = Mnemonic;
  switch (m) {
    case M::kLui: return ExecClass::kLui;
    case M::kAuipc: return ExecClass::kAuipc;
    case M::kJal: case M::kJalr:
    case M::kBeq: case M::kBne: case M::kBlt: case M::kBge:
    case M::kBltu: case M::kBgeu:
    case M::kPBeqimm: case M::kPBneimm:
      return ExecClass::kBranchJump;
    case M::kAddi: case M::kSlti: case M::kSltiu: case M::kXori:
    case M::kOri: case M::kAndi: case M::kSlli: case M::kSrli:
    case M::kSrai:
      return ExecClass::kAluImm;
    case M::kAdd: case M::kSub: case M::kSll: case M::kSlt:
    case M::kSltu: case M::kXor: case M::kSrl: case M::kSra:
    case M::kOr: case M::kAnd:
      return ExecClass::kAluReg;
    case M::kMul: case M::kMulh: case M::kMulhsu: case M::kMulhu:
    case M::kDiv: case M::kDivu: case M::kRem: case M::kRemu:
      return ExecClass::kMulDiv;
    case M::kFence: return ExecClass::kFence;
    case M::kEcall: return ExecClass::kEcall;
    case M::kEbreak: return ExecClass::kEbreak;
    case M::kCsrrw: case M::kCsrrs: case M::kCsrrc:
    case M::kCsrrwi: case M::kCsrrsi: case M::kCsrrci:
      return ExecClass::kCsr;
    case M::kLpStarti: case M::kLpEndi: case M::kLpCount:
    case M::kLpCounti: case M::kLpSetup: case M::kLpSetupi:
      return ExecClass::kHwloop;
    case M::kPAbs: case M::kPMin: case M::kPMinu: case M::kPMax:
    case M::kPMaxu: case M::kPExths: case M::kPExthz: case M::kPExtbs:
    case M::kPExtbz: case M::kPCnt: case M::kPFf1: case M::kPFl1:
    case M::kPClb: case M::kPRor: case M::kPClip: case M::kPClipu:
    case M::kPMac: case M::kPMsu:
    case M::kPExtract: case M::kPExtractu: case M::kPInsert:
    case M::kPBclr: case M::kPBset:
      return ExecClass::kPulpScalar;
    default:
      if (is_load(m) || is_store(m)) return ExecClass::kMem;
      if (m == M::kPvQnt) return ExecClass::kSimdQnt;
      if (is_dotp(m)) return ExecClass::kSimdDotp;
      if (is_elem_manip(m)) return ExecClass::kSimdElem;
      if (is_simd(m)) return ExecClass::kSimdAlu;
      return ExecClass::kIllegal;
  }
}

bool mem_is_base_rv32i(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLb: case Mnemonic::kLh: case Mnemonic::kLw:
    case Mnemonic::kLbu: case Mnemonic::kLhu:
    case Mnemonic::kSb: case Mnemonic::kSh: case Mnemonic::kSw:
      return true;
    default:
      return false;
  }
}

}  // namespace

namespace {

bool mem_is_post_inc(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPLbPostImm: case Mnemonic::kPLhPostImm:
    case Mnemonic::kPLwPostImm: case Mnemonic::kPLbuPostImm:
    case Mnemonic::kPLhuPostImm:
    case Mnemonic::kPSbPostImm: case Mnemonic::kPShPostImm:
    case Mnemonic::kPSwPostImm:
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
      return true;
    default:
      return false;
  }
}

bool mem_is_reg_offset(Mnemonic m) {
  switch (m) {
    case Mnemonic::kPLbPostReg: case Mnemonic::kPLhPostReg:
    case Mnemonic::kPLwPostReg: case Mnemonic::kPLbuPostReg:
    case Mnemonic::kPLhuPostReg:
    case Mnemonic::kPSbPostReg: case Mnemonic::kPShPostReg:
    case Mnemonic::kPSwPostReg:
    case Mnemonic::kPLbRegReg: case Mnemonic::kPLhRegReg:
    case Mnemonic::kPLwRegReg: case Mnemonic::kPLbuRegReg:
    case Mnemonic::kPLhuRegReg:
    case Mnemonic::kPSbRegReg: case Mnemonic::kPShRegReg:
    case Mnemonic::kPSwRegReg:
      return true;
    default:
      return false;
  }
}

}  // namespace

void finalize_decode(Instr& in) {
  u16 f = 0;
  if (reads_rs1(in)) f |= iflag::kReadsRs1;
  if (reads_rs2(in)) f |= iflag::kReadsRs2;
  if (reads_rd(in)) f |= iflag::kReadsRd;
  if (writes_rd(in)) f |= iflag::kWritesRd;
  if (is_load(in.op)) f |= iflag::kIsLoad;
  if (is_store(in.op)) f |= iflag::kIsStore;
  if (load_is_signed(in.op)) f |= iflag::kLoadSigned;
  if (mem_is_post_inc(in.op)) f |= iflag::kMemPostInc;
  if (mem_is_reg_offset(in.op)) f |= iflag::kMemRegOff;
  switch (in.op) {
    case Mnemonic::kPvSdotup:
      f |= iflag::kDotAccum;
      break;
    case Mnemonic::kPvDotusp:
      f |= iflag::kDotSignedB;
      break;
    case Mnemonic::kPvSdotusp:
      f |= iflag::kDotAccum | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvDotsp:
      f |= iflag::kDotSignedA | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvSdotsp:
      f |= iflag::kDotAccum | iflag::kDotSignedA | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvMldotup:
      f |= iflag::kDotMixed;
      break;
    case Mnemonic::kPvMldotusp:
      f |= iflag::kDotMixed | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvMldotsp:
      f |= iflag::kDotMixed | iflag::kDotSignedA | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvMlsdotup:
      f |= iflag::kDotMixed | iflag::kDotAccum;
      break;
    case Mnemonic::kPvMlsdotusp:
      f |= iflag::kDotMixed | iflag::kDotAccum | iflag::kDotSignedB;
      break;
    case Mnemonic::kPvMlsdotsp:
      f |= iflag::kDotMixed | iflag::kDotAccum | iflag::kDotSignedA |
           iflag::kDotSignedB;
      break;
    default:
      break;
  }

  const ExecClass cls = classify(in.op);
  switch (cls) {
    case ExecClass::kHwloop:
      f |= iflag::kNeedXpulpV2 | iflag::kNeedHwloops;
      break;
    case ExecClass::kPulpScalar:
      f |= iflag::kNeedXpulpV2;
      break;
    case ExecClass::kBranchJump:
      if (in.op == Mnemonic::kPBeqimm || in.op == Mnemonic::kPBneimm) {
        f |= iflag::kNeedXpulpV2;
      }
      break;
    case ExecClass::kMem:
      if (!mem_is_base_rv32i(in.op)) f |= iflag::kNeedXpulpV2;
      break;
    default:
      if (exec_class_is_simd(cls)) {
        f |= iflag::kNeedXpulpV2;
        // Mixed dot products have fmt == kNone (widths live in the mpc
        // CSR) but are sub-byte capable, so they need XpulpNN outright.
        if (simd_is_subbyte(in.fmt) || in.op == Mnemonic::kPvQnt ||
            (f & iflag::kDotMixed)) {
          f |= iflag::kNeedXpulpNN;
        }
      }
      break;
  }

  in.flags = f;
  in.cls = cls;
  in.mem_size = static_cast<u8>(mem_access_size(in.op));
}

}  // namespace xpulp::isa
