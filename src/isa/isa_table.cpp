#include "isa/isa_table.hpp"

#include <map>
#include <utility>

#include "isa/encoding.hpp"

namespace xpulp::isa {

namespace {

constexpr u32 kMaskOpc = 0x7fu;
constexpr u32 kMaskF3 = 7u << 12;
constexpr u32 kMaskF7 = 0x7fu << 25;
constexpr u32 kMaskRs1 = 0x1fu << 15;
constexpr u32 kMaskRs2 = 0x1fu << 20;
constexpr u32 kMaskImmI = 0xfffu << 20;
// Hardware loops: the decoder uses only rd bit 0 (the loop index); the
// encoder always emits rd[4:1] = 0, so those bits are part of the
// canonical match.
constexpr u32 kMaskHwRdHigh = 0xfu << 8;
// Bit manipulation: funct7[6:5] selects the op, funct7[4:0] is the free
// Is3 operand.
constexpr u32 kMaskBitmanipOp = 3u << 30;

u32 base_match(u32 opcode, u32 funct3 = 0, u32 funct7 = 0) {
  return opcode | (funct3 << 12) | (funct7 << 25);
}

IsaTableEntry ent(Mnemonic op, EncShape shape, u32 mask, u32 match,
                  SimdFmt fmt = SimdFmt::kNone) {
  IsaTableEntry e;
  e.op = op;
  e.fmt = fmt;
  e.shape = shape;
  e.mask = mask;
  e.match = match;
  return e;
}

void add_u(std::vector<IsaTableEntry>& t, Mnemonic op, u32 opcode) {
  t.push_back(ent(op, EncShape::kU, kMaskOpc, base_match(opcode)));
}

void add_i(std::vector<IsaTableEntry>& t, Mnemonic op, u32 opcode, u32 f3,
           EncShape shape = EncShape::kI) {
  t.push_back(ent(op, shape, kMaskOpc | kMaskF3, base_match(opcode, f3)));
}

void add_shift(std::vector<IsaTableEntry>& t, Mnemonic op, u32 f3, u32 f7) {
  t.push_back(ent(op, EncShape::kShift, kMaskOpc | kMaskF3 | kMaskF7,
                  base_match(kOpOpImm, f3, f7)));
}

void add_b(std::vector<IsaTableEntry>& t, Mnemonic op, u32 f3,
           EncShape shape = EncShape::kB) {
  t.push_back(ent(op, shape, kMaskOpc | kMaskF3, base_match(kOpBranch, f3)));
}

void add_s(std::vector<IsaTableEntry>& t, Mnemonic op, u32 opcode, u32 f3) {
  t.push_back(ent(op, EncShape::kS, kMaskOpc | kMaskF3, base_match(opcode, f3)));
}

void add_r(std::vector<IsaTableEntry>& t, Mnemonic op, u32 opcode, u32 f3,
           u32 f7, EncShape shape = EncShape::kR) {
  u32 mask = kMaskOpc | kMaskF3 | kMaskF7;
  if (shape == EncShape::kRUnary) mask |= kMaskRs2;
  t.push_back(ent(op, shape, mask, base_match(opcode, f3, f7)));
}

void add_fixed(std::vector<IsaTableEntry>& t, Mnemonic op, u32 word) {
  t.push_back(ent(op, EncShape::kFixedWord, 0xffffffffu, word));
}

void add_alu(std::vector<IsaTableEntry>& t, Mnemonic op, ScalarAluFunct7 f7,
             EncShape shape = EncShape::kR) {
  add_r(t, op, kOpPulpScalar, kScalarAlu, static_cast<u32>(f7), shape);
}

void add_scalar_mem(std::vector<IsaTableEntry>& t, Mnemonic op, u32 f3,
                    MemSizeCode size) {
  add_r(t, op, kOpPulpScalar, f3, static_cast<u32>(size));
}

void add_bitmanip(std::vector<IsaTableEntry>& t, Mnemonic op, u32 f3, u32 op2) {
  t.push_back(ent(op, EncShape::kBitmanip,
                  kMaskOpc | kMaskF3 | kMaskBitmanipOp,
                  base_match(kOpPulpScalar, f3) | (op2 << 30)));
}

void add_hwloop(std::vector<IsaTableEntry>& t, Mnemonic op, HwloopFunct3 f3,
                EncShape shape) {
  u32 mask = kMaskOpc | kMaskF3 | kMaskHwRdHigh;
  // lp.starti/lp.endi take no register; lp.counti's count lives in the
  // I-immediate. The encoder zeroes the unused field in each case.
  if (shape == EncShape::kHwBound || shape == EncShape::kHwCounti) {
    mask |= kMaskRs1;
  }
  if (shape == EncShape::kHwCount) mask |= kMaskImmI;
  t.push_back(ent(op, shape, mask,
                  base_match(kOpPulpHwloop, static_cast<u32>(f3))));
}

void add_simd(std::vector<IsaTableEntry>& t, Mnemonic op, SimdFunct7 f7,
              SimdFmt fmt, EncShape shape = EncShape::kSimdR) {
  u32 mask = kMaskOpc | kMaskF3 | kMaskF7;
  if (shape == EncShape::kSimdUnary) mask |= kMaskRs2;
  t.push_back(ent(op, shape, mask,
                  base_match(kOpPulpSimd, simd_fmt_to_funct3(fmt),
                             static_cast<u32>(f7)),
                  fmt));
}

// Mixed virtual dot products: funct3 is fixed to 0 (no format field), so
// add_simd's simd_fmt_to_funct3 path does not apply.
void add_simd_mixed(std::vector<IsaTableEntry>& t, Mnemonic op,
                    SimdFunct7 f7) {
  t.push_back(ent(op, EncShape::kSimdR, kMaskOpc | kMaskF3 | kMaskF7,
                  base_match(kOpPulpSimd, 0, static_cast<u32>(f7))));
}

constexpr SimdFmt kAllFmts[] = {SimdFmt::kB, SimdFmt::kBSc, SimdFmt::kH,
                                SimdFmt::kHSc, SimdFmt::kN, SimdFmt::kNSc,
                                SimdFmt::kC, SimdFmt::kCSc};

void add_simd_all(std::vector<IsaTableEntry>& t, Mnemonic op, SimdFunct7 f7,
                  EncShape shape = EncShape::kSimdR) {
  for (SimdFmt f : kAllFmts) add_simd(t, op, f7, f, shape);
}

std::vector<IsaTableEntry> build_table() {
  std::vector<IsaTableEntry> t;
  using M = Mnemonic;
  using S = EncShape;

  // ---- RV32I ----
  add_u(t, M::kLui, kOpLui);
  add_u(t, M::kAuipc, kOpAuipc);
  t.push_back(ent(M::kJal, S::kJ, kMaskOpc, base_match(kOpJal)));
  add_i(t, M::kJalr, kOpJalr, 0);
  add_b(t, M::kBeq, 0);
  add_b(t, M::kBne, 1);
  add_b(t, M::kPBeqimm, 2, S::kBImm5);
  add_b(t, M::kPBneimm, 3, S::kBImm5);
  add_b(t, M::kBlt, 4);
  add_b(t, M::kBge, 5);
  add_b(t, M::kBltu, 6);
  add_b(t, M::kBgeu, 7);
  add_i(t, M::kLb, kOpLoad, 0);
  add_i(t, M::kLh, kOpLoad, 1);
  add_i(t, M::kLw, kOpLoad, 2);
  add_i(t, M::kLbu, kOpLoad, 4);
  add_i(t, M::kLhu, kOpLoad, 5);
  add_s(t, M::kSb, kOpStore, 0);
  add_s(t, M::kSh, kOpStore, 1);
  add_s(t, M::kSw, kOpStore, 2);
  add_i(t, M::kAddi, kOpOpImm, 0);
  add_i(t, M::kSlti, kOpOpImm, 2);
  add_i(t, M::kSltiu, kOpOpImm, 3);
  add_i(t, M::kXori, kOpOpImm, 4);
  add_i(t, M::kOri, kOpOpImm, 6);
  add_i(t, M::kAndi, kOpOpImm, 7);
  add_shift(t, M::kSlli, 1, 0x00);
  add_shift(t, M::kSrli, 5, 0x00);
  add_shift(t, M::kSrai, 5, 0x20);
  add_r(t, M::kAdd, kOpOp, 0, 0x00);
  add_r(t, M::kSub, kOpOp, 0, 0x20);
  add_r(t, M::kSll, kOpOp, 1, 0x00);
  add_r(t, M::kSlt, kOpOp, 2, 0x00);
  add_r(t, M::kSltu, kOpOp, 3, 0x00);
  add_r(t, M::kXor, kOpOp, 4, 0x00);
  add_r(t, M::kSrl, kOpOp, 5, 0x00);
  add_r(t, M::kSra, kOpOp, 5, 0x20);
  add_r(t, M::kOr, kOpOp, 6, 0x00);
  add_r(t, M::kAnd, kOpOp, 7, 0x00);
  add_fixed(t, M::kFence, 0x0000000fu);
  add_fixed(t, M::kEcall, 0x00000073u);
  add_fixed(t, M::kEbreak, 0x00100073u);
  add_i(t, M::kCsrrw, kOpSystem, 1, S::kCsr);
  add_i(t, M::kCsrrs, kOpSystem, 2, S::kCsr);
  add_i(t, M::kCsrrc, kOpSystem, 3, S::kCsr);
  add_i(t, M::kCsrrwi, kOpSystem, 5, S::kCsrImm);
  add_i(t, M::kCsrrsi, kOpSystem, 6, S::kCsrImm);
  add_i(t, M::kCsrrci, kOpSystem, 7, S::kCsrImm);

  // ---- RV32M ----
  add_r(t, M::kMul, kOpOp, 0, 0x01);
  add_r(t, M::kMulh, kOpOp, 1, 0x01);
  add_r(t, M::kMulhsu, kOpOp, 2, 0x01);
  add_r(t, M::kMulhu, kOpOp, 3, 0x01);
  add_r(t, M::kDiv, kOpOp, 4, 0x01);
  add_r(t, M::kDivu, kOpOp, 5, 0x01);
  add_r(t, M::kRem, kOpOp, 6, 0x01);
  add_r(t, M::kRemu, kOpOp, 7, 0x01);

  // ---- XpulpV2 post-increment immediate memory ----
  add_i(t, M::kPLbPostImm, kOpPulpLoadPost, 0);
  add_i(t, M::kPLhPostImm, kOpPulpLoadPost, 1);
  add_i(t, M::kPLwPostImm, kOpPulpLoadPost, 2);
  add_i(t, M::kPLbuPostImm, kOpPulpLoadPost, 4);
  add_i(t, M::kPLhuPostImm, kOpPulpLoadPost, 5);
  add_s(t, M::kPSbPostImm, kOpPulpStorePost, 0);
  add_s(t, M::kPShPostImm, kOpPulpStorePost, 1);
  add_s(t, M::kPSwPostImm, kOpPulpStorePost, 2);

  // ---- XpulpV2 register-addressed memory ----
  add_scalar_mem(t, M::kPLbPostReg, kScalarLoadPostReg, MemSizeCode::kLb);
  add_scalar_mem(t, M::kPLhPostReg, kScalarLoadPostReg, MemSizeCode::kLh);
  add_scalar_mem(t, M::kPLwPostReg, kScalarLoadPostReg, MemSizeCode::kLw);
  add_scalar_mem(t, M::kPLbuPostReg, kScalarLoadPostReg, MemSizeCode::kLbu);
  add_scalar_mem(t, M::kPLhuPostReg, kScalarLoadPostReg, MemSizeCode::kLhu);
  add_scalar_mem(t, M::kPLbRegReg, kScalarLoadRegReg, MemSizeCode::kLb);
  add_scalar_mem(t, M::kPLhRegReg, kScalarLoadRegReg, MemSizeCode::kLh);
  add_scalar_mem(t, M::kPLwRegReg, kScalarLoadRegReg, MemSizeCode::kLw);
  add_scalar_mem(t, M::kPLbuRegReg, kScalarLoadRegReg, MemSizeCode::kLbu);
  add_scalar_mem(t, M::kPLhuRegReg, kScalarLoadRegReg, MemSizeCode::kLhu);
  add_scalar_mem(t, M::kPSbPostReg, kScalarStorePostReg, MemSizeCode::kLb);
  add_scalar_mem(t, M::kPShPostReg, kScalarStorePostReg, MemSizeCode::kLh);
  add_scalar_mem(t, M::kPSwPostReg, kScalarStorePostReg, MemSizeCode::kLw);
  add_scalar_mem(t, M::kPSbRegReg, kScalarStoreRegReg, MemSizeCode::kLb);
  add_scalar_mem(t, M::kPShRegReg, kScalarStoreRegReg, MemSizeCode::kLh);
  add_scalar_mem(t, M::kPSwRegReg, kScalarStoreRegReg, MemSizeCode::kLw);

  // ---- XpulpV2 scalar ALU ----
  add_alu(t, M::kPAbs, ScalarAluFunct7::kAbs, S::kRUnary);
  add_alu(t, M::kPMin, ScalarAluFunct7::kMin);
  add_alu(t, M::kPMinu, ScalarAluFunct7::kMinu);
  add_alu(t, M::kPMax, ScalarAluFunct7::kMax);
  add_alu(t, M::kPMaxu, ScalarAluFunct7::kMaxu);
  add_alu(t, M::kPExths, ScalarAluFunct7::kExths, S::kRUnary);
  add_alu(t, M::kPExthz, ScalarAluFunct7::kExthz, S::kRUnary);
  add_alu(t, M::kPExtbs, ScalarAluFunct7::kExtbs, S::kRUnary);
  add_alu(t, M::kPExtbz, ScalarAluFunct7::kExtbz, S::kRUnary);
  add_alu(t, M::kPCnt, ScalarAluFunct7::kCnt, S::kRUnary);
  add_alu(t, M::kPFf1, ScalarAluFunct7::kFf1, S::kRUnary);
  add_alu(t, M::kPFl1, ScalarAluFunct7::kFl1, S::kRUnary);
  add_alu(t, M::kPClb, ScalarAluFunct7::kClb, S::kRUnary);
  add_alu(t, M::kPRor, ScalarAluFunct7::kRor);
  add_alu(t, M::kPClip, ScalarAluFunct7::kClip, S::kClipImm);
  add_alu(t, M::kPClipu, ScalarAluFunct7::kClipu, S::kClipImm);
  add_alu(t, M::kPMac, ScalarAluFunct7::kMac);
  add_alu(t, M::kPMsu, ScalarAluFunct7::kMsu);

  // ---- XpulpV2 bit manipulation ----
  add_bitmanip(t, M::kPExtract, kScalarBitmanipA,
               static_cast<u32>(BitmanipA::kExtract));
  add_bitmanip(t, M::kPExtractu, kScalarBitmanipA,
               static_cast<u32>(BitmanipA::kExtractu));
  add_bitmanip(t, M::kPInsert, kScalarBitmanipA,
               static_cast<u32>(BitmanipA::kInsert));
  add_bitmanip(t, M::kPBclr, kScalarBitmanipA,
               static_cast<u32>(BitmanipA::kBclr));
  add_bitmanip(t, M::kPBset, kScalarBitmanipB,
               static_cast<u32>(BitmanipB::kBset));

  // ---- Hardware loops ----
  add_hwloop(t, M::kLpStarti, HwloopFunct3::kStarti, S::kHwBound);
  add_hwloop(t, M::kLpEndi, HwloopFunct3::kEndi, S::kHwBound);
  add_hwloop(t, M::kLpCount, HwloopFunct3::kCount, S::kHwCount);
  add_hwloop(t, M::kLpCounti, HwloopFunct3::kCounti, S::kHwCounti);
  add_hwloop(t, M::kLpSetup, HwloopFunct3::kSetup, S::kHwSetup);
  add_hwloop(t, M::kLpSetupi, HwloopFunct3::kSetupi, S::kHwSetupi);

  // ---- Packed SIMD ----
  add_simd_all(t, M::kPvAdd, SimdFunct7::kAdd);
  add_simd_all(t, M::kPvSub, SimdFunct7::kSub);
  add_simd_all(t, M::kPvAvg, SimdFunct7::kAvg);
  add_simd_all(t, M::kPvAvgu, SimdFunct7::kAvgu);
  add_simd_all(t, M::kPvMax, SimdFunct7::kMax);
  add_simd_all(t, M::kPvMaxu, SimdFunct7::kMaxu);
  add_simd_all(t, M::kPvMin, SimdFunct7::kMin);
  add_simd_all(t, M::kPvMinu, SimdFunct7::kMinu);
  add_simd_all(t, M::kPvSrl, SimdFunct7::kSrl);
  add_simd_all(t, M::kPvSra, SimdFunct7::kSra);
  add_simd_all(t, M::kPvSll, SimdFunct7::kSll);
  add_simd_all(t, M::kPvAbs, SimdFunct7::kAbs, S::kSimdUnary);
  add_simd_all(t, M::kPvAnd, SimdFunct7::kAnd);
  add_simd_all(t, M::kPvOr, SimdFunct7::kOr);
  add_simd_all(t, M::kPvXor, SimdFunct7::kXor);
  add_simd_all(t, M::kPvDotup, SimdFunct7::kDotup);
  add_simd_all(t, M::kPvDotusp, SimdFunct7::kDotusp);
  add_simd_all(t, M::kPvDotsp, SimdFunct7::kDotsp);
  add_simd_all(t, M::kPvSdotup, SimdFunct7::kSdotup);
  add_simd_all(t, M::kPvSdotusp, SimdFunct7::kSdotusp);
  add_simd_all(t, M::kPvSdotsp, SimdFunct7::kSdotsp);
  // Mixed virtual dot products: one canonical encoding per mnemonic
  // (funct3 fixed 0, no static format — the mpc CSR supplies the widths).
  add_simd_mixed(t, M::kPvMldotup, SimdFunct7::kMldotup);
  add_simd_mixed(t, M::kPvMldotusp, SimdFunct7::kMldotusp);
  add_simd_mixed(t, M::kPvMldotsp, SimdFunct7::kMldotsp);
  add_simd_mixed(t, M::kPvMlsdotup, SimdFunct7::kMlsdotup);
  add_simd_mixed(t, M::kPvMlsdotusp, SimdFunct7::kMlsdotusp);
  add_simd_mixed(t, M::kPvMlsdotsp, SimdFunct7::kMlsdotsp);
  // Element manipulation and shuffle/pack are restricted to the plain
  // byte/halfword formats; pv.qnt to the plain sub-byte formats.
  for (SimdFmt f : {SimdFmt::kB, SimdFmt::kH}) {
    add_simd(t, M::kPvElemExtract, SimdFunct7::kElemExtract, f, S::kSimdLane);
    add_simd(t, M::kPvElemExtractu, SimdFunct7::kElemExtractu, f,
             S::kSimdLane);
    add_simd(t, M::kPvElemInsert, SimdFunct7::kElemInsert, f, S::kSimdLane);
    add_simd(t, M::kPvShuffle, SimdFunct7::kShuffle, f);
  }
  add_simd(t, M::kPvPackH, SimdFunct7::kPack, SimdFmt::kH);
  add_simd(t, M::kPvQnt, SimdFunct7::kQnt, SimdFmt::kN);
  add_simd(t, M::kPvQnt, SimdFunct7::kQnt, SimdFmt::kC);

  return t;
}

}  // namespace

const std::vector<IsaTableEntry>& isa_table() {
  static const std::vector<IsaTableEntry> table = build_table();
  return table;
}

const IsaTableEntry* isa_table_lookup(Mnemonic op, SimdFmt fmt) {
  static const auto index = [] {
    std::map<std::pair<Mnemonic, SimdFmt>, const IsaTableEntry*> m;
    for (const IsaTableEntry& e : isa_table()) m.emplace(std::pair{e.op, e.fmt}, &e);
    return m;
  }();
  const auto it = index.find({op, fmt});
  return it == index.end() ? nullptr : it->second;
}

std::vector<Instr> canonical_samples(const IsaTableEntry& e) {
  // Three operand-varied samples per entry (one for fixed-word entries).
  // Register picks avoid x0-only degenerate cases; immediates exercise
  // zero, negative/maximal, and mid-range values within each field's
  // constraints.
  static constexpr u8 kRd[3] = {5, 11, 31};
  static constexpr u8 kRs1[3] = {6, 12, 1};
  static constexpr u8 kRs2[3] = {7, 13, 2};

  std::vector<Instr> out;
  const int n = e.shape == EncShape::kFixedWord ? 1 : 3;
  for (int j = 0; j < n; ++j) {
    Instr in;
    in.op = e.op;
    in.fmt = e.fmt;
    switch (e.shape) {
      case EncShape::kU:
        in.rd = kRd[j];
        in.imm = static_cast<i32>(
            static_cast<u32>(j == 0 ? 0x1000 : j == 1 ? 0xfffff000u : 0x12345000u));
        break;
      case EncShape::kJ:
        in.rd = kRd[j];
        in.imm = j == 0 ? 0 : j == 1 ? 2048 : -4096;
        break;
      case EncShape::kI:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.imm = j == 0 ? 0 : j == 1 ? -4 : 2047;
        break;
      case EncShape::kShift:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.imm = j == 0 ? 0 : j == 1 ? 5 : 31;
        break;
      case EncShape::kB:
        in.rs1 = kRs1[j];
        in.rs2 = kRs2[j];
        in.imm = j == 0 ? 8 : j == 1 ? -8 : 16;
        break;
      case EncShape::kBImm5:
        in.rs1 = kRs1[j];
        in.imm2 = static_cast<u8>(j == 0 ? 0 : j == 1 ? 31 : 5);
        in.imm = j == 0 ? 8 : j == 1 ? -8 : 16;
        break;
      case EncShape::kS:
        in.rs1 = kRs1[j];
        in.rs2 = kRs2[j];
        in.imm = j == 0 ? 0 : j == 1 ? -4 : 2047;
        break;
      case EncShape::kR:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.rs2 = kRs2[j];
        break;
      case EncShape::kRUnary:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        break;
      case EncShape::kClipImm:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.imm = j == 0 ? 0 : j == 1 ? 5 : 31;
        break;
      case EncShape::kCsr:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.imm = j == 0 ? 0x300 : j == 1 ? 0xf14 : 0x7c0;
        break;
      case EncShape::kCsrImm:
        in.rd = kRd[j];
        in.imm2 = static_cast<u8>(j == 0 ? 0 : j == 1 ? 31 : 5);
        in.imm = j == 0 ? 0x300 : j == 1 ? 0xf14 : 0x7c0;
        break;
      case EncShape::kFixedWord:
        break;
      case EncShape::kBitmanip:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        // (Is2, Is3) with Is2 + Is3 + 1 <= 32.
        in.imm = j == 0 ? 0 : j == 1 ? 8 : 31;
        in.imm2 = static_cast<u8>(j == 2 ? 0 : 7);
        break;
      case EncShape::kHwBound:
        in.imm2 = static_cast<u8>(j == 1 ? 1 : j == 2 ? 1 : 0);
        in.imm = j == 0 ? 8 : j == 1 ? -8 : 1000;
        break;
      case EncShape::kHwCount:
        in.imm2 = static_cast<u8>(j & 1);
        in.rs1 = kRs1[j];
        break;
      case EncShape::kHwCounti:
        in.imm2 = static_cast<u8>(j & 1);
        in.imm = j == 0 ? 0 : j == 1 ? 4095 : 100;
        break;
      case EncShape::kHwSetup:
        in.imm2 = static_cast<u8>(j & 1);
        in.rs1 = kRs1[j];
        in.imm = j == 0 ? 8 : j == 1 ? 60 : 1000;
        break;
      case EncShape::kHwSetupi:
        in.imm2 = static_cast<u8>(j & 1);
        in.rs1 = static_cast<u8>(j == 0 ? 1 : j == 1 ? 31 : 16);  // count
        in.imm = j == 0 ? 8 : j == 1 ? 60 : 1000;
        break;
      case EncShape::kSimdR:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.rs2 = kRs2[j];
        break;
      case EncShape::kSimdUnary:
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        break;
      case EncShape::kSimdLane: {
        const unsigned lanes = simd_elem_count(e.fmt);
        in.rd = kRd[j];
        in.rs1 = kRs1[j];
        in.imm = static_cast<i32>(j == 0 ? 0u : j == 1 ? lanes - 1 : 1u % lanes);
        break;
      }
    }
    finalize_decode(in);
    out.push_back(in);
  }
  return out;
}

}  // namespace xpulp::isa
