// Decoder for the RV32C compressed-instruction subset. RI5CY implements
// RV32IMC; our generated kernels emit 32-bit forms only, but the decoder
// accepts compressed code so hand-written or externally assembled programs
// (and the ISA tests) can use it. Each compressed form expands to the Instr
// of its 32-bit equivalent with size == 2.
#include "common/bitops.hpp"
#include "common/error.hpp"
#include "isa/decoder.hpp"

namespace xpulp::isa {

namespace {

[[noreturn]] void illegal(addr_t pc, u16 raw) {
  throw IllegalInstruction(pc, raw);
}

Instr base(Mnemonic op, u16 raw) {
  Instr in;
  in.op = op;
  in.raw = raw;
  in.size = 2;
  return in;
}

// Compressed register index (3 bits) -> x8..x15.
u8 creg(u32 v) { return static_cast<u8>(8 + (v & 7)); }

// CIW-format immediate of C.ADDI4SPN: nzuimm[5:4|9:6|2|3] at bits 12:5.
u32 imm_ciw(u16 raw) {
  return (bits(raw, 12, 11) << 4) | (bits(raw, 10, 7) << 6) |
         (bit(raw, 6) << 2) | (bit(raw, 5) << 3);
}

// CL/CS-format word offset: uimm[5:3] at 12:10, uimm[2] at 6, uimm[6] at 5.
u32 imm_clw(u16 raw) {
  return (bits(raw, 12, 10) << 3) | (bit(raw, 6) << 2) | (bit(raw, 5) << 6);
}

// CI-format signed immediate: imm[5] at 12, imm[4:0] at 6:2.
i32 imm_ci(u16 raw) {
  return sign_extend((bit(raw, 12) << 5) | bits(raw, 6, 2), 6);
}

// CJ-format jump offset.
i32 imm_cj(u16 raw) {
  const u32 v = (bit(raw, 12) << 11) | (bit(raw, 11) << 4) |
                (bits(raw, 10, 9) << 8) | (bit(raw, 8) << 10) |
                (bit(raw, 7) << 6) | (bit(raw, 6) << 7) |
                (bits(raw, 5, 3) << 1) | (bit(raw, 2) << 5);
  return sign_extend(v, 12);
}

// CB-format branch offset.
i32 imm_cb(u16 raw) {
  const u32 v = (bit(raw, 12) << 8) | (bits(raw, 11, 10) << 3) |
                (bits(raw, 6, 5) << 6) | (bits(raw, 4, 3) << 1) |
                (bit(raw, 2) << 5);
  return sign_extend(v, 9);
}

Instr quadrant0(u16 raw, addr_t pc) {
  switch (bits(raw, 15, 13)) {
    case 0b000: {  // C.ADDI4SPN
      if (imm_ciw(raw) == 0) illegal(pc, raw);
      Instr in = base(Mnemonic::kAddi, raw);
      in.rd = creg(bits(raw, 4, 2));
      in.rs1 = 2;
      in.imm = static_cast<i32>(imm_ciw(raw));
      return in;
    }
    case 0b010: {  // C.LW
      Instr in = base(Mnemonic::kLw, raw);
      in.rd = creg(bits(raw, 4, 2));
      in.rs1 = creg(bits(raw, 9, 7));
      in.imm = static_cast<i32>(imm_clw(raw));
      return in;
    }
    case 0b110: {  // C.SW
      Instr in = base(Mnemonic::kSw, raw);
      in.rs2 = creg(bits(raw, 4, 2));
      in.rs1 = creg(bits(raw, 9, 7));
      in.imm = static_cast<i32>(imm_clw(raw));
      return in;
    }
    default:
      illegal(pc, raw);
  }
}

Instr quadrant1(u16 raw, addr_t pc) {
  const u32 rd_full = bits(raw, 11, 7);
  switch (bits(raw, 15, 13)) {
    case 0b000: {  // C.ADDI / C.NOP
      Instr in = base(Mnemonic::kAddi, raw);
      in.rd = static_cast<u8>(rd_full);
      in.rs1 = static_cast<u8>(rd_full);
      in.imm = imm_ci(raw);
      return in;
    }
    case 0b001: {  // C.JAL (RV32)
      Instr in = base(Mnemonic::kJal, raw);
      in.rd = 1;
      in.imm = imm_cj(raw);
      return in;
    }
    case 0b010: {  // C.LI
      Instr in = base(Mnemonic::kAddi, raw);
      in.rd = static_cast<u8>(rd_full);
      in.rs1 = 0;
      in.imm = imm_ci(raw);
      return in;
    }
    case 0b011: {
      if (rd_full == 2) {  // C.ADDI16SP
        const u32 v = (bit(raw, 12) << 9) | (bit(raw, 6) << 4) |
                      (bit(raw, 5) << 6) | (bits(raw, 4, 3) << 7) |
                      (bit(raw, 2) << 5);
        Instr in = base(Mnemonic::kAddi, raw);
        in.rd = 2;
        in.rs1 = 2;
        in.imm = sign_extend(v, 10);
        if (in.imm == 0) illegal(pc, raw);
        return in;
      }
      // C.LUI
      const i32 imm = sign_extend((bit(raw, 12) << 17) | (bits(raw, 6, 2) << 12), 18);
      if (imm == 0) illegal(pc, raw);
      Instr in = base(Mnemonic::kLui, raw);
      in.rd = static_cast<u8>(rd_full);
      in.imm = imm;
      return in;
    }
    case 0b100: {
      const u8 rdp = creg(bits(raw, 9, 7));
      switch (bits(raw, 11, 10)) {
        case 0b00: {  // C.SRLI
          Instr in = base(Mnemonic::kSrli, raw);
          in.rd = rdp; in.rs1 = rdp;
          in.imm = static_cast<i32>(bits(raw, 6, 2));
          return in;
        }
        case 0b01: {  // C.SRAI
          Instr in = base(Mnemonic::kSrai, raw);
          in.rd = rdp; in.rs1 = rdp;
          in.imm = static_cast<i32>(bits(raw, 6, 2));
          return in;
        }
        case 0b10: {  // C.ANDI
          Instr in = base(Mnemonic::kAndi, raw);
          in.rd = rdp; in.rs1 = rdp;
          in.imm = imm_ci(raw);
          return in;
        }
        default: {  // register-register group
          if (bit(raw, 12)) illegal(pc, raw);  // RV64-only forms
          static constexpr Mnemonic kOps[4] = {Mnemonic::kSub, Mnemonic::kXor,
                                               Mnemonic::kOr, Mnemonic::kAnd};
          Instr in = base(kOps[bits(raw, 6, 5)], raw);
          in.rd = rdp; in.rs1 = rdp;
          in.rs2 = creg(bits(raw, 4, 2));
          return in;
        }
      }
    }
    case 0b101: {  // C.J
      Instr in = base(Mnemonic::kJal, raw);
      in.rd = 0;
      in.imm = imm_cj(raw);
      return in;
    }
    case 0b110:
    case 0b111: {  // C.BEQZ / C.BNEZ
      Instr in = base(bits(raw, 15, 13) == 0b110 ? Mnemonic::kBeq
                                                 : Mnemonic::kBne, raw);
      in.rs1 = creg(bits(raw, 9, 7));
      in.rs2 = 0;
      in.imm = imm_cb(raw);
      return in;
    }
    default:
      illegal(pc, raw);
  }
}

Instr quadrant2(u16 raw, addr_t pc) {
  const u32 rd_full = bits(raw, 11, 7);
  const u32 rs2_full = bits(raw, 6, 2);
  switch (bits(raw, 15, 13)) {
    case 0b000: {  // C.SLLI
      Instr in = base(Mnemonic::kSlli, raw);
      in.rd = static_cast<u8>(rd_full);
      in.rs1 = static_cast<u8>(rd_full);
      in.imm = static_cast<i32>(bits(raw, 6, 2));
      return in;
    }
    case 0b010: {  // C.LWSP
      if (rd_full == 0) illegal(pc, raw);
      Instr in = base(Mnemonic::kLw, raw);
      in.rd = static_cast<u8>(rd_full);
      in.rs1 = 2;
      in.imm = static_cast<i32>((bit(raw, 12) << 5) | (bits(raw, 6, 4) << 2) |
                                (bits(raw, 3, 2) << 6));
      return in;
    }
    case 0b100: {
      if (!bit(raw, 12)) {
        if (rs2_full == 0) {  // C.JR
          if (rd_full == 0) illegal(pc, raw);
          Instr in = base(Mnemonic::kJalr, raw);
          in.rd = 0;
          in.rs1 = static_cast<u8>(rd_full);
          return in;
        }
        // C.MV
        Instr in = base(Mnemonic::kAdd, raw);
        in.rd = static_cast<u8>(rd_full);
        in.rs1 = 0;
        in.rs2 = static_cast<u8>(rs2_full);
        return in;
      }
      if (rs2_full == 0) {
        if (rd_full == 0) return base(Mnemonic::kEbreak, raw);  // C.EBREAK
        Instr in = base(Mnemonic::kJalr, raw);                  // C.JALR
        in.rd = 1;
        in.rs1 = static_cast<u8>(rd_full);
        return in;
      }
      // C.ADD
      Instr in = base(Mnemonic::kAdd, raw);
      in.rd = static_cast<u8>(rd_full);
      in.rs1 = static_cast<u8>(rd_full);
      in.rs2 = static_cast<u8>(rs2_full);
      return in;
    }
    case 0b110: {  // C.SWSP
      Instr in = base(Mnemonic::kSw, raw);
      in.rs1 = 2;
      in.rs2 = static_cast<u8>(rs2_full);
      in.imm = static_cast<i32>((bits(raw, 12, 9) << 2) | (bits(raw, 8, 7) << 6));
      return in;
    }
    default:
      illegal(pc, raw);
  }
}

}  // namespace

Instr decode_compressed(u16 raw, addr_t pc) {
  Instr in;
  switch (raw & 0x3u) {
    case 0b00: in = quadrant0(raw, pc); break;
    case 0b01: in = quadrant1(raw, pc); break;
    case 0b10: in = quadrant2(raw, pc); break;
    default: illegal(pc, raw);
  }
  finalize_decode(in);
  return in;
}

}  // namespace xpulp::isa
