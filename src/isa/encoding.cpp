#include "isa/encoding.hpp"

#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace xpulp::isa {

namespace {

void check_range_signed(i64 v, unsigned bits, const char* what) {
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  const i64 lo = -(i64{1} << (bits - 1));
  if (v < lo || v > hi) {
    throw AsmError(std::string(what) + " immediate out of range: " +
                   std::to_string(v));
  }
}

void check_range_unsigned(i64 v, unsigned bits, const char* what) {
  const i64 hi = (i64{1} << bits) - 1;
  if (v < 0 || v > hi) {
    throw AsmError(std::string(what) + " immediate out of range: " +
                   std::to_string(v));
  }
}

void check_reg(u32 r, const char* what) {
  if (r > 31) throw AsmError(std::string(what) + " register out of range");
}

// Branch/jump byte offsets must be even (we do not generate 16-bit-aligned
// targets from compressed code in the assembler).
void check_even(i64 v, const char* what) {
  if (v & 1) throw AsmError(std::string(what) + " offset must be even");
}

// Re-interpret an unsigned 12-bit field (CSR address, lp.counti count) as
// the sign-extended value enc_i expects, so the raw bit pattern survives.
i32 as_i12(i64 v, const char* what) {
  check_range_unsigned(v, 12, what);
  return sign_extend(static_cast<u32>(v), 12);
}

}  // namespace

u32 simd_fmt_to_funct3(SimdFmt f) {
  switch (f) {
    case SimdFmt::kB: return 0;
    case SimdFmt::kBSc: return 1;
    case SimdFmt::kH: return 2;
    case SimdFmt::kHSc: return 3;
    case SimdFmt::kN: return 4;
    case SimdFmt::kNSc: return 5;
    case SimdFmt::kC: return 6;
    case SimdFmt::kCSc: return 7;
    default: throw AsmError("SIMD instruction without a format");
  }
}

SimdFmt simd_fmt_from_funct3(u32 funct3) {
  switch (funct3 & 7u) {
    case 0: return SimdFmt::kB;
    case 1: return SimdFmt::kBSc;
    case 2: return SimdFmt::kH;
    case 3: return SimdFmt::kHSc;
    case 4: return SimdFmt::kN;
    case 5: return SimdFmt::kNSc;
    case 6: return SimdFmt::kC;
    default: return SimdFmt::kCSc;
  }
}

u32 enc_r(u32 opcode, u32 funct3, u32 funct7, u32 rd, u32 rs1, u32 rs2) {
  check_reg(rd, "rd");
  check_reg(rs1, "rs1");
  check_reg(rs2, "rs2");
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}

u32 enc_i(u32 opcode, u32 funct3, u32 rd, u32 rs1, i32 imm12) {
  check_reg(rd, "rd");
  check_reg(rs1, "rs1");
  check_range_signed(imm12, 12, "I-type");
  return (static_cast<u32>(imm12 & 0xfff) << 20) | (rs1 << 15) |
         (funct3 << 12) | (rd << 7) | opcode;
}

u32 enc_s(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm12) {
  check_reg(rs1, "rs1");
  check_reg(rs2, "rs2");
  check_range_signed(imm12, 12, "S-type");
  const u32 imm = static_cast<u32>(imm12 & 0xfff);
  return (bits(imm, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
         (funct3 << 12) | (bits(imm, 4, 0) << 7) | opcode;
}

u32 enc_b(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm13) {
  check_reg(rs1, "rs1");
  check_reg(rs2, "rs2");
  check_even(imm13, "branch");
  check_range_signed(imm13, 13, "B-type");
  const u32 imm = static_cast<u32>(imm13 & 0x1fff);
  return (bit(imm, 12) << 31) | (bits(imm, 10, 5) << 25) | (rs2 << 20) |
         (rs1 << 15) | (funct3 << 12) | (bits(imm, 4, 1) << 8) |
         (bit(imm, 11) << 7) | opcode;
}

u32 enc_u(u32 opcode, u32 rd, i32 imm20_upper) {
  check_reg(rd, "rd");
  return (static_cast<u32>(imm20_upper & 0xfffff) << 12) | (rd << 7) | opcode;
}

u32 enc_j(u32 opcode, u32 rd, i32 imm21) {
  check_reg(rd, "rd");
  check_even(imm21, "jump");
  check_range_signed(imm21, 21, "J-type");
  const u32 imm = static_cast<u32>(imm21 & 0x1fffff);
  return (bit(imm, 20) << 31) | (bits(imm, 10, 1) << 21) |
         (bit(imm, 11) << 20) | (bits(imm, 19, 12) << 12) | (rd << 7) | opcode;
}

namespace {

u32 enc_scalar_mem(u32 funct3, MemSizeCode size, u32 rd, u32 rs1, u32 rs2) {
  return enc_r(kOpPulpScalar, funct3, static_cast<u32>(size), rd, rs1, rs2);
}

u32 enc_scalar_alu(ScalarAluFunct7 op, u32 rd, u32 rs1, u32 rs2) {
  return enc_r(kOpPulpScalar, kScalarAlu, static_cast<u32>(op), rd, rs1, rs2);
}

u32 enc_bitmanip(u32 funct3, u32 op2, u32 is3, u32 rd, u32 rs1, u32 is2) {
  check_range_unsigned(is3, 5, "Is3");
  check_range_unsigned(is2, 5, "Is2");
  return enc_r(kOpPulpScalar, funct3, (op2 << 5) | is3, rd, rs1, is2);
}

u32 enc_hwloop(HwloopFunct3 f3, u32 loop_idx, u32 rs1_field, i32 imm12) {
  check_range_unsigned(loop_idx, 1, "hw-loop index");
  return enc_i(kOpPulpHwloop, static_cast<u32>(f3), loop_idx, rs1_field,
               imm12);
}

u32 enc_simd(SimdFunct7 op, SimdFmt fmt, u32 rd, u32 rs1, u32 rs2) {
  return enc_r(kOpPulpSimd, simd_fmt_to_funct3(fmt), static_cast<u32>(op), rd,
               rs1, rs2);
}

// Mixed virtual dot products carry no format in the encoding (the mpc CSR
// supplies it at run time); funct3 is fixed to 0 and fmt must be kNone.
u32 enc_simd_mixed(SimdFunct7 op, SimdFmt fmt, u32 rd, u32 rs1, u32 rs2) {
  if (fmt != SimdFmt::kNone) {
    throw AsmError("mixed dot products take no static format");
  }
  return enc_r(kOpPulpSimd, 0, static_cast<u32>(op), rd, rs1, rs2);
}

i32 hwloop_offset_field(i32 byte_offset) {
  check_even(byte_offset, "hw-loop");
  return byte_offset >> 1;
}

}  // namespace

u32 encode(const Instr& in) {
  using M = Mnemonic;
  switch (in.op) {
    // ---- RV32I ----
    case M::kLui:
      return enc_u(kOpLui, in.rd, static_cast<i32>(static_cast<u32>(in.imm) >> 12));
    case M::kAuipc:
      return enc_u(kOpAuipc, in.rd, static_cast<i32>(static_cast<u32>(in.imm) >> 12));
    case M::kJal: return enc_j(kOpJal, in.rd, in.imm);
    case M::kJalr: return enc_i(kOpJalr, 0, in.rd, in.rs1, in.imm);
    case M::kBeq: return enc_b(kOpBranch, 0, in.rs1, in.rs2, in.imm);
    case M::kBne: return enc_b(kOpBranch, 1, in.rs1, in.rs2, in.imm);
    case M::kBlt: return enc_b(kOpBranch, 4, in.rs1, in.rs2, in.imm);
    case M::kBge: return enc_b(kOpBranch, 5, in.rs1, in.rs2, in.imm);
    case M::kBltu: return enc_b(kOpBranch, 6, in.rs1, in.rs2, in.imm);
    case M::kBgeu: return enc_b(kOpBranch, 7, in.rs1, in.rs2, in.imm);
    // Immediate-compare branches: the rs2 field holds a signed 5-bit
    // immediate (raw two's-complement bits live in imm2).
    case M::kPBeqimm:
      check_range_unsigned(in.imm2, 5, "p.beqimm");
      return enc_b(kOpBranch, 2, in.rs1, in.imm2, in.imm);
    case M::kPBneimm:
      check_range_unsigned(in.imm2, 5, "p.bneimm");
      return enc_b(kOpBranch, 3, in.rs1, in.imm2, in.imm);
    case M::kLb: return enc_i(kOpLoad, 0, in.rd, in.rs1, in.imm);
    case M::kLh: return enc_i(kOpLoad, 1, in.rd, in.rs1, in.imm);
    case M::kLw: return enc_i(kOpLoad, 2, in.rd, in.rs1, in.imm);
    case M::kLbu: return enc_i(kOpLoad, 4, in.rd, in.rs1, in.imm);
    case M::kLhu: return enc_i(kOpLoad, 5, in.rd, in.rs1, in.imm);
    case M::kSb: return enc_s(kOpStore, 0, in.rs1, in.rs2, in.imm);
    case M::kSh: return enc_s(kOpStore, 1, in.rs1, in.rs2, in.imm);
    case M::kSw: return enc_s(kOpStore, 2, in.rs1, in.rs2, in.imm);
    case M::kAddi: return enc_i(kOpOpImm, 0, in.rd, in.rs1, in.imm);
    case M::kSlti: return enc_i(kOpOpImm, 2, in.rd, in.rs1, in.imm);
    case M::kSltiu: return enc_i(kOpOpImm, 3, in.rd, in.rs1, in.imm);
    case M::kXori: return enc_i(kOpOpImm, 4, in.rd, in.rs1, in.imm);
    case M::kOri: return enc_i(kOpOpImm, 6, in.rd, in.rs1, in.imm);
    case M::kAndi: return enc_i(kOpOpImm, 7, in.rd, in.rs1, in.imm);
    case M::kSlli:
      check_range_unsigned(in.imm, 5, "shamt");
      return enc_i(kOpOpImm, 1, in.rd, in.rs1, in.imm);
    case M::kSrli:
      check_range_unsigned(in.imm, 5, "shamt");
      return enc_i(kOpOpImm, 5, in.rd, in.rs1, in.imm);
    case M::kSrai:
      check_range_unsigned(in.imm, 5, "shamt");
      return enc_i(kOpOpImm, 5, in.rd, in.rs1, in.imm | 0x400);
    case M::kAdd: return enc_r(kOpOp, 0, 0x00, in.rd, in.rs1, in.rs2);
    case M::kSub: return enc_r(kOpOp, 0, 0x20, in.rd, in.rs1, in.rs2);
    case M::kSll: return enc_r(kOpOp, 1, 0x00, in.rd, in.rs1, in.rs2);
    case M::kSlt: return enc_r(kOpOp, 2, 0x00, in.rd, in.rs1, in.rs2);
    case M::kSltu: return enc_r(kOpOp, 3, 0x00, in.rd, in.rs1, in.rs2);
    case M::kXor: return enc_r(kOpOp, 4, 0x00, in.rd, in.rs1, in.rs2);
    case M::kSrl: return enc_r(kOpOp, 5, 0x00, in.rd, in.rs1, in.rs2);
    case M::kSra: return enc_r(kOpOp, 5, 0x20, in.rd, in.rs1, in.rs2);
    case M::kOr: return enc_r(kOpOp, 6, 0x00, in.rd, in.rs1, in.rs2);
    case M::kAnd: return enc_r(kOpOp, 7, 0x00, in.rd, in.rs1, in.rs2);
    case M::kFence: return enc_i(kOpMiscMem, 0, 0, 0, 0);
    case M::kEcall: return enc_i(kOpSystem, 0, 0, 0, 0);
    case M::kEbreak: return enc_i(kOpSystem, 0, 0, 0, 1);
    case M::kCsrrw: return enc_i(kOpSystem, 1, in.rd, in.rs1, as_i12(in.imm, "csr"));
    case M::kCsrrs: return enc_i(kOpSystem, 2, in.rd, in.rs1, as_i12(in.imm, "csr"));
    case M::kCsrrc: return enc_i(kOpSystem, 3, in.rd, in.rs1, as_i12(in.imm, "csr"));
    case M::kCsrrwi: return enc_i(kOpSystem, 5, in.rd, in.imm2, as_i12(in.imm, "csr"));
    case M::kCsrrsi: return enc_i(kOpSystem, 6, in.rd, in.imm2, as_i12(in.imm, "csr"));
    case M::kCsrrci: return enc_i(kOpSystem, 7, in.rd, in.imm2, as_i12(in.imm, "csr"));

    // ---- RV32M ----
    case M::kMul: return enc_r(kOpOp, 0, 0x01, in.rd, in.rs1, in.rs2);
    case M::kMulh: return enc_r(kOpOp, 1, 0x01, in.rd, in.rs1, in.rs2);
    case M::kMulhsu: return enc_r(kOpOp, 2, 0x01, in.rd, in.rs1, in.rs2);
    case M::kMulhu: return enc_r(kOpOp, 3, 0x01, in.rd, in.rs1, in.rs2);
    case M::kDiv: return enc_r(kOpOp, 4, 0x01, in.rd, in.rs1, in.rs2);
    case M::kDivu: return enc_r(kOpOp, 5, 0x01, in.rd, in.rs1, in.rs2);
    case M::kRem: return enc_r(kOpOp, 6, 0x01, in.rd, in.rs1, in.rs2);
    case M::kRemu: return enc_r(kOpOp, 7, 0x01, in.rd, in.rs1, in.rs2);

    // ---- XpulpV2 memory ----
    case M::kPLbPostImm: return enc_i(kOpPulpLoadPost, 0, in.rd, in.rs1, in.imm);
    case M::kPLhPostImm: return enc_i(kOpPulpLoadPost, 1, in.rd, in.rs1, in.imm);
    case M::kPLwPostImm: return enc_i(kOpPulpLoadPost, 2, in.rd, in.rs1, in.imm);
    case M::kPLbuPostImm: return enc_i(kOpPulpLoadPost, 4, in.rd, in.rs1, in.imm);
    case M::kPLhuPostImm: return enc_i(kOpPulpLoadPost, 5, in.rd, in.rs1, in.imm);
    case M::kPSbPostImm: return enc_s(kOpPulpStorePost, 0, in.rs1, in.rs2, in.imm);
    case M::kPShPostImm: return enc_s(kOpPulpStorePost, 1, in.rs1, in.rs2, in.imm);
    case M::kPSwPostImm: return enc_s(kOpPulpStorePost, 2, in.rs1, in.rs2, in.imm);
    case M::kPLbPostReg:
      return enc_scalar_mem(kScalarLoadPostReg, MemSizeCode::kLb, in.rd, in.rs1, in.rs2);
    case M::kPLhPostReg:
      return enc_scalar_mem(kScalarLoadPostReg, MemSizeCode::kLh, in.rd, in.rs1, in.rs2);
    case M::kPLwPostReg:
      return enc_scalar_mem(kScalarLoadPostReg, MemSizeCode::kLw, in.rd, in.rs1, in.rs2);
    case M::kPLbuPostReg:
      return enc_scalar_mem(kScalarLoadPostReg, MemSizeCode::kLbu, in.rd, in.rs1, in.rs2);
    case M::kPLhuPostReg:
      return enc_scalar_mem(kScalarLoadPostReg, MemSizeCode::kLhu, in.rd, in.rs1, in.rs2);
    case M::kPLbRegReg:
      return enc_scalar_mem(kScalarLoadRegReg, MemSizeCode::kLb, in.rd, in.rs1, in.rs2);
    case M::kPLhRegReg:
      return enc_scalar_mem(kScalarLoadRegReg, MemSizeCode::kLh, in.rd, in.rs1, in.rs2);
    case M::kPLwRegReg:
      return enc_scalar_mem(kScalarLoadRegReg, MemSizeCode::kLw, in.rd, in.rs1, in.rs2);
    case M::kPLbuRegReg:
      return enc_scalar_mem(kScalarLoadRegReg, MemSizeCode::kLbu, in.rd, in.rs1, in.rs2);
    case M::kPLhuRegReg:
      return enc_scalar_mem(kScalarLoadRegReg, MemSizeCode::kLhu, in.rd, in.rs1, in.rs2);
    case M::kPSbPostReg:
      return enc_scalar_mem(kScalarStorePostReg, MemSizeCode::kLb, in.rd, in.rs1, in.rs2);
    case M::kPShPostReg:
      return enc_scalar_mem(kScalarStorePostReg, MemSizeCode::kLh, in.rd, in.rs1, in.rs2);
    case M::kPSwPostReg:
      return enc_scalar_mem(kScalarStorePostReg, MemSizeCode::kLw, in.rd, in.rs1, in.rs2);
    case M::kPSbRegReg:
      return enc_scalar_mem(kScalarStoreRegReg, MemSizeCode::kLb, in.rd, in.rs1, in.rs2);
    case M::kPShRegReg:
      return enc_scalar_mem(kScalarStoreRegReg, MemSizeCode::kLh, in.rd, in.rs1, in.rs2);
    case M::kPSwRegReg:
      return enc_scalar_mem(kScalarStoreRegReg, MemSizeCode::kLw, in.rd, in.rs1, in.rs2);

    // ---- XpulpV2 scalar ALU ----
    case M::kPAbs: return enc_scalar_alu(ScalarAluFunct7::kAbs, in.rd, in.rs1, 0);
    case M::kPMin: return enc_scalar_alu(ScalarAluFunct7::kMin, in.rd, in.rs1, in.rs2);
    case M::kPMinu: return enc_scalar_alu(ScalarAluFunct7::kMinu, in.rd, in.rs1, in.rs2);
    case M::kPMax: return enc_scalar_alu(ScalarAluFunct7::kMax, in.rd, in.rs1, in.rs2);
    case M::kPMaxu: return enc_scalar_alu(ScalarAluFunct7::kMaxu, in.rd, in.rs1, in.rs2);
    case M::kPExths: return enc_scalar_alu(ScalarAluFunct7::kExths, in.rd, in.rs1, 0);
    case M::kPExthz: return enc_scalar_alu(ScalarAluFunct7::kExthz, in.rd, in.rs1, 0);
    case M::kPExtbs: return enc_scalar_alu(ScalarAluFunct7::kExtbs, in.rd, in.rs1, 0);
    case M::kPExtbz: return enc_scalar_alu(ScalarAluFunct7::kExtbz, in.rd, in.rs1, 0);
    case M::kPCnt: return enc_scalar_alu(ScalarAluFunct7::kCnt, in.rd, in.rs1, 0);
    case M::kPFf1: return enc_scalar_alu(ScalarAluFunct7::kFf1, in.rd, in.rs1, 0);
    case M::kPFl1: return enc_scalar_alu(ScalarAluFunct7::kFl1, in.rd, in.rs1, 0);
    case M::kPClb: return enc_scalar_alu(ScalarAluFunct7::kClb, in.rd, in.rs1, 0);
    case M::kPRor: return enc_scalar_alu(ScalarAluFunct7::kRor, in.rd, in.rs1, in.rs2);
    case M::kPClip:
      check_range_unsigned(in.imm, 5, "clip");
      return enc_scalar_alu(ScalarAluFunct7::kClip, in.rd, in.rs1,
                            static_cast<u32>(in.imm));
    case M::kPClipu:
      check_range_unsigned(in.imm, 5, "clipu");
      return enc_scalar_alu(ScalarAluFunct7::kClipu, in.rd, in.rs1,
                            static_cast<u32>(in.imm));
    case M::kPMac: return enc_scalar_alu(ScalarAluFunct7::kMac, in.rd, in.rs1, in.rs2);
    case M::kPMsu: return enc_scalar_alu(ScalarAluFunct7::kMsu, in.rd, in.rs1, in.rs2);

    // ---- XpulpV2 bit manipulation ----
    case M::kPExtract:
      return enc_bitmanip(kScalarBitmanipA, static_cast<u32>(BitmanipA::kExtract),
                          in.imm2, in.rd, in.rs1, static_cast<u32>(in.imm));
    case M::kPExtractu:
      return enc_bitmanip(kScalarBitmanipA, static_cast<u32>(BitmanipA::kExtractu),
                          in.imm2, in.rd, in.rs1, static_cast<u32>(in.imm));
    case M::kPInsert:
      return enc_bitmanip(kScalarBitmanipA, static_cast<u32>(BitmanipA::kInsert),
                          in.imm2, in.rd, in.rs1, static_cast<u32>(in.imm));
    case M::kPBclr:
      return enc_bitmanip(kScalarBitmanipA, static_cast<u32>(BitmanipA::kBclr),
                          in.imm2, in.rd, in.rs1, static_cast<u32>(in.imm));
    case M::kPBset:
      return enc_bitmanip(kScalarBitmanipB, static_cast<u32>(BitmanipB::kBset),
                          in.imm2, in.rd, in.rs1, static_cast<u32>(in.imm));

    // ---- Hardware loops ----
    case M::kLpStarti:
      return enc_hwloop(HwloopFunct3::kStarti, in.imm2, 0,
                        hwloop_offset_field(in.imm));
    case M::kLpEndi:
      return enc_hwloop(HwloopFunct3::kEndi, in.imm2, 0,
                        hwloop_offset_field(in.imm));
    case M::kLpCount:
      return enc_hwloop(HwloopFunct3::kCount, in.imm2, in.rs1, 0);
    case M::kLpCounti:
      return enc_i(kOpPulpHwloop, static_cast<u32>(HwloopFunct3::kCounti),
                   in.imm2, 0, as_i12(in.imm, "lp.counti"));
    case M::kLpSetup:
      return enc_hwloop(HwloopFunct3::kSetup, in.imm2, in.rs1,
                        hwloop_offset_field(in.imm));
    case M::kLpSetupi:
      // rs1 field carries the 5-bit immediate iteration count.
      check_range_unsigned(in.rs1, 5, "lp.setupi count");
      return enc_hwloop(HwloopFunct3::kSetupi, in.imm2, in.rs1,
                        hwloop_offset_field(in.imm));

    // ---- SIMD ----
    case M::kPvAdd: return enc_simd(SimdFunct7::kAdd, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSub: return enc_simd(SimdFunct7::kSub, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvAvg: return enc_simd(SimdFunct7::kAvg, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvAvgu: return enc_simd(SimdFunct7::kAvgu, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMax: return enc_simd(SimdFunct7::kMax, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMaxu: return enc_simd(SimdFunct7::kMaxu, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMin: return enc_simd(SimdFunct7::kMin, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMinu: return enc_simd(SimdFunct7::kMinu, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSrl: return enc_simd(SimdFunct7::kSrl, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSra: return enc_simd(SimdFunct7::kSra, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSll: return enc_simd(SimdFunct7::kSll, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvAbs: return enc_simd(SimdFunct7::kAbs, in.fmt, in.rd, in.rs1, 0);
    case M::kPvAnd: return enc_simd(SimdFunct7::kAnd, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvOr: return enc_simd(SimdFunct7::kOr, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvXor: return enc_simd(SimdFunct7::kXor, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvDotup: return enc_simd(SimdFunct7::kDotup, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvDotusp: return enc_simd(SimdFunct7::kDotusp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvDotsp: return enc_simd(SimdFunct7::kDotsp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSdotup: return enc_simd(SimdFunct7::kSdotup, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSdotusp: return enc_simd(SimdFunct7::kSdotusp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvSdotsp: return enc_simd(SimdFunct7::kSdotsp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMldotup: return enc_simd_mixed(SimdFunct7::kMldotup, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMldotusp: return enc_simd_mixed(SimdFunct7::kMldotusp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMldotsp: return enc_simd_mixed(SimdFunct7::kMldotsp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMlsdotup: return enc_simd_mixed(SimdFunct7::kMlsdotup, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMlsdotusp: return enc_simd_mixed(SimdFunct7::kMlsdotusp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvMlsdotsp: return enc_simd_mixed(SimdFunct7::kMlsdotsp, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvElemExtract:
    case M::kPvElemExtractu:
    case M::kPvElemInsert: {
      if (simd_is_subbyte(in.fmt) || simd_is_scalar_rep(in.fmt)) {
        throw AsmError("element manipulation supports plain b/h formats");
      }
      const unsigned lanes = simd_elem_count(in.fmt);
      check_range_unsigned(in.imm, 5, "lane");
      if (static_cast<u32>(in.imm) >= lanes) {
        throw AsmError("lane index out of range");
      }
      const SimdFunct7 op7 = in.op == M::kPvElemExtract ? SimdFunct7::kElemExtract
                             : in.op == M::kPvElemExtractu
                                 ? SimdFunct7::kElemExtractu
                                 : SimdFunct7::kElemInsert;
      return enc_simd(op7, in.fmt, in.rd, in.rs1, static_cast<u32>(in.imm));
    }
    case M::kPvShuffle:
      if (simd_is_subbyte(in.fmt) || simd_is_scalar_rep(in.fmt)) {
        throw AsmError("pv.shuffle supports plain b/h formats");
      }
      return enc_simd(SimdFunct7::kShuffle, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvPackH:
      if (in.fmt != SimdFmt::kH) throw AsmError("pv.pack is h-format only");
      return enc_simd(SimdFunct7::kPack, in.fmt, in.rd, in.rs1, in.rs2);
    case M::kPvQnt:
      if (simd_elem_bits(in.fmt) != 4 && simd_elem_bits(in.fmt) != 2) {
        throw AsmError("pv.qnt supports only nibble/crumb formats");
      }
      if (simd_is_scalar_rep(in.fmt)) {
        throw AsmError("pv.qnt has no .sc variant");
      }
      return enc_simd(SimdFunct7::kQnt, in.fmt, in.rd, in.rs1, in.rs2);

    case M::kInvalid:
    case M::kCount:
      break;
  }
  throw AsmError("cannot encode invalid instruction");
}

}  // namespace xpulp::isa
