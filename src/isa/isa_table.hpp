// Declarative table of every canonical instruction encoding the simulator
// implements: one (mask, match) pair per mnemonic (per SIMD format for the
// packed ops). The table is the machine-checkable description of the
// encoding space documented in encoding.hpp; the auditor in src/analysis
// proves it pairwise non-overlapping and round-trip exact against the real
// encoder/decoder, so table and implementation cannot drift apart.
//
// "Canonical" means the bit pattern the encoder emits. The decoder is
// deliberately lenient in a few places (ignored rs2 bits of unary ops,
// ignored rd[4:1] of hardware loops, any funct3 under MISC-MEM); such
// words decode but do not match any table entry, which is exactly what the
// analyzer's non-canonical-encoding diagnostic keys off.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace xpulp::isa {

/// Encoding shape of a table entry: which fields are free (encodable
/// operands) and what constraints they carry. Drives canonical sample
/// generation for the round-trip audit.
enum class EncShape : u8 {
  kU,         // rd, 20-bit upper immediate
  kJ,         // rd, 21-bit even jump offset
  kI,         // rd, rs1, signed 12-bit immediate
  kShift,     // rd, rs1, 5-bit shamt (funct7 fixed)
  kB,         // rs1, rs2, 13-bit even branch offset
  kBImm5,     // rs1, raw imm5 in the rs2 field, branch offset (p.beqimm)
  kS,         // rs1, rs2, signed 12-bit immediate
  kR,         // rd, rs1, rs2
  kRUnary,    // rd, rs1 (rs2 field fixed 0)
  kClipImm,   // rd, rs1, 5-bit immediate in the rs2 field
  kCsr,       // rd, rs1, 12-bit CSR address
  kCsrImm,    // rd, uimm5 in the rs1 field, 12-bit CSR address
  kFixedWord, // no operands (ecall/ebreak/fence)
  kBitmanip,  // rd, rs1, Is2 in rs2 field, Is3 in funct7[4:0]
  kHwBound,   // lp.starti/lp.endi: loop index L, even 13-bit offset
  kHwCount,   // lp.count: L, rs1
  kHwCounti,  // lp.counti: L, unsigned 12-bit count
  kHwSetup,   // lp.setup: L, rs1, even offset
  kHwSetupi,  // lp.setupi: L, uimm5 count in the rs1 field, even offset
  kSimdR,     // rd, rs1, rs2 (format from the entry)
  kSimdUnary, // rd, rs1 (rs2 field fixed 0)
  kSimdLane,  // rd, rs1, lane index in the rs2 field (< element count)
};

struct IsaTableEntry {
  Mnemonic op = Mnemonic::kInvalid;
  SimdFmt fmt = SimdFmt::kNone;
  EncShape shape = EncShape::kR;
  u32 mask = 0;
  u32 match = 0;
};

/// The full table: RV32IM + XpulpV2 + XpulpNN, one entry per canonical
/// (mnemonic, format) encoding. Built once, in Mnemonic order.
const std::vector<IsaTableEntry>& isa_table();

/// Operand-varied sample instructions for one entry, each satisfying the
/// entry's field constraints (shift ranges, Is2+Is3+1 <= 32, lane < lane
/// count, even offsets, ...). Used by the round-trip audit and by the
/// encoder->decoder->disassembler property test.
std::vector<Instr> canonical_samples(const IsaTableEntry& e);

/// Table lookup by decoded instruction (op + fmt); nullptr if absent.
const IsaTableEntry* isa_table_lookup(Mnemonic op, SimdFmt fmt);

}  // namespace xpulp::isa
