// Disassembler: Instr -> human-readable text, used by tracing, error
// reporting and the encode/decode round-trip tests.
#pragma once

#include <string>

#include "isa/instruction.hpp"

namespace xpulp::isa {

/// ABI register name ("zero", "ra", "sp", ..., "t6").
std::string_view reg_name(unsigned r);

/// Disassemble a decoded instruction. `pc` resolves PC-relative targets of
/// branches/jumps/hardware-loop setup into absolute addresses.
std::string disassemble(const Instr& in, addr_t pc);

}  // namespace xpulp::isa
