// Binary encoding of the instruction set.
//
// Standard RV32I/M instructions use their official encodings. The PULP
// extensions occupy the RISC-V custom opcode space with a layout of our own
// design (the paper does not publish bit-level encodings; semantics follow
// Table II of the paper and the RI5CY manual). The layout is:
//
//   0x0B custom-0  I-type   post-increment immediate loads (funct3 = size)
//   0x2B custom-1  S-type   post-increment immediate stores (funct3 = size)
//   0x5B custom-2  R-type   "PULP scalar" space, funct3 = subclass:
//        000 reg-post-increment load   (funct7 = size code)
//        001 reg-reg (indexed) load    (funct7 = size code)
//        010 reg-post-increment store  (funct7 = size code, inc reg in rd)
//        011 reg-reg (indexed) store   (funct7 = size code, idx reg in rd)
//        100 scalar ALU / MAC          (funct7 = op)
//        110 bit-manipulation group A  (funct7[6:5] = op, funct7[4:0] = Is3)
//        111 bit-manipulation group B  (funct7[6:5] = op, funct7[4:0] = Is3)
//   0x7B custom-3  hardware loops, funct3 = which (loop index L in rd bit 0)
//   0x57           packed SIMD: funct3 = format (b/b.sc/h/h.sc/n/n.sc/c/c.sc),
//                  funct7 = operation (see SimdFunct7)
//
// Encoder and decoder are round-trip tested over the whole instruction set.
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace xpulp::isa {

// Major opcodes.
inline constexpr u32 kOpLui = 0x37;
inline constexpr u32 kOpAuipc = 0x17;
inline constexpr u32 kOpJal = 0x6F;
inline constexpr u32 kOpJalr = 0x67;
inline constexpr u32 kOpBranch = 0x63;
inline constexpr u32 kOpLoad = 0x03;
inline constexpr u32 kOpStore = 0x23;
inline constexpr u32 kOpOpImm = 0x13;
inline constexpr u32 kOpOp = 0x33;
inline constexpr u32 kOpMiscMem = 0x0F;
inline constexpr u32 kOpSystem = 0x73;
inline constexpr u32 kOpPulpLoadPost = 0x0B;   // custom-0
inline constexpr u32 kOpPulpStorePost = 0x2B;  // custom-1
inline constexpr u32 kOpPulpScalar = 0x5B;     // custom-2
inline constexpr u32 kOpPulpHwloop = 0x7B;     // custom-3
inline constexpr u32 kOpPulpSimd = 0x57;

// funct3 subclasses within kOpPulpScalar.
inline constexpr u32 kScalarLoadPostReg = 0b000;
inline constexpr u32 kScalarLoadRegReg = 0b001;
inline constexpr u32 kScalarStorePostReg = 0b010;
inline constexpr u32 kScalarStoreRegReg = 0b011;
inline constexpr u32 kScalarAlu = 0b100;
inline constexpr u32 kScalarBitmanipA = 0b110;
inline constexpr u32 kScalarBitmanipB = 0b111;

// Size codes for the reg-addressed load/store subclasses (funct7 value).
enum class MemSizeCode : u32 { kLb = 0, kLh = 1, kLw = 2, kLbu = 3, kLhu = 4 };

// funct7 values for the scalar-ALU subclass.
enum class ScalarAluFunct7 : u32 {
  kAbs = 0, kMin = 1, kMinu = 2, kMax = 3, kMaxu = 4,
  kExths = 5, kExthz = 6, kExtbs = 7, kExtbz = 8,
  kCnt = 9, kFf1 = 10, kFl1 = 11, kClb = 12, kRor = 13,
  kClip = 14, kClipu = 15, kMac = 16, kMsu = 17,
};

// funct7[6:5] values for the two bit-manipulation subclasses.
// Group A (funct3=110): 0 extract, 1 extractu, 2 insert, 3 bclr.
// Group B (funct3=111): 0 bset.
enum class BitmanipA : u32 { kExtract = 0, kExtractu = 1, kInsert = 2, kBclr = 3 };
enum class BitmanipB : u32 { kBset = 0 };

// funct3 values for hardware loop ops.
enum class HwloopFunct3 : u32 {
  kStarti = 0, kEndi = 1, kCount = 2, kCounti = 3, kSetup = 4, kSetupi = 5,
};

// funct7 values for SIMD ops under kOpPulpSimd.
enum class SimdFunct7 : u32 {
  kAdd = 0, kSub = 1, kAvg = 2, kAvgu = 3,
  kMax = 4, kMaxu = 5, kMin = 6, kMinu = 7,
  kSrl = 8, kSra = 9, kSll = 10, kAbs = 11,
  kAnd = 12, kOr = 13, kXor = 14,
  kDotup = 16, kDotusp = 17, kDotsp = 18,
  kSdotup = 19, kSdotusp = 20, kSdotsp = 21,
  // Element manipulation (b/h only; lane immediate in the rs2 field).
  kElemExtract = 22, kElemExtractu = 23, kElemInsert = 24,
  kShuffle = 25, kPack = 26,
  // Mixed-precision virtual dot products: operand widths come from the
  // mpc CSR, so funct3 carries no format and must be 0.
  kMldotup = 27, kMldotusp = 28, kMldotsp = 29,
  kQnt = 32,
  kMlsdotup = 33, kMlsdotusp = 34, kMlsdotsp = 35,
};

// funct3 encoding of SIMD formats.
u32 simd_fmt_to_funct3(SimdFmt f);
SimdFmt simd_fmt_from_funct3(u32 funct3);

// ---- Format packers (exposed for tests) ----
u32 enc_r(u32 opcode, u32 funct3, u32 funct7, u32 rd, u32 rs1, u32 rs2);
u32 enc_i(u32 opcode, u32 funct3, u32 rd, u32 rs1, i32 imm12);
u32 enc_s(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm12);
u32 enc_b(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm13);
u32 enc_u(u32 opcode, u32 rd, i32 imm20_upper);  // imm = value for bits 31:12
u32 enc_j(u32 opcode, u32 rd, i32 imm21);

// ---- Whole-instruction encoder ----
// Encodes a decoded Instr back into its 32-bit word. Branch/jump immediates
// are the *byte offsets* held in Instr::imm. Throws AsmError on out-of-range
// fields. This is the single source of truth used by the assembler.
u32 encode(const Instr& in);

}  // namespace xpulp::isa
