#include "isa/decoder.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "isa/encoding.hpp"

namespace xpulp::isa {

namespace {

struct Fields {
  u32 opcode, rd, funct3, rs1, rs2, funct7;
  i32 imm_i, imm_s, imm_b, imm_u, imm_j;
};

Fields split(u32 raw) {
  Fields f{};
  f.opcode = bits(raw, 6, 0);
  f.rd = bits(raw, 11, 7);
  f.funct3 = bits(raw, 14, 12);
  f.rs1 = bits(raw, 19, 15);
  f.rs2 = bits(raw, 24, 20);
  f.funct7 = bits(raw, 31, 25);
  f.imm_i = sign_extend(bits(raw, 31, 20), 12);
  f.imm_s = sign_extend((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
  f.imm_b = sign_extend((bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                            (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1),
                        13);
  f.imm_u = static_cast<i32>(raw & 0xfffff000u);
  f.imm_j = sign_extend((bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                            (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1),
                        21);
  return f;
}

Instr make(Mnemonic op, const Fields& f, u32 raw) {
  Instr in;
  in.op = op;
  in.rd = static_cast<u8>(f.rd);
  in.rs1 = static_cast<u8>(f.rs1);
  in.rs2 = static_cast<u8>(f.rs2);
  in.raw = raw;
  return in;
}

[[noreturn]] void illegal(addr_t pc, u32 raw) { throw IllegalInstruction(pc, raw); }

Instr decode_load(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m;
  switch (f.funct3) {
    case 0: m = Mnemonic::kLb; break;
    case 1: m = Mnemonic::kLh; break;
    case 2: m = Mnemonic::kLw; break;
    case 4: m = Mnemonic::kLbu; break;
    case 5: m = Mnemonic::kLhu; break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = f.imm_i;
  return in;
}

Instr decode_pulp_load_post(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m;
  switch (f.funct3) {
    case 0: m = Mnemonic::kPLbPostImm; break;
    case 1: m = Mnemonic::kPLhPostImm; break;
    case 2: m = Mnemonic::kPLwPostImm; break;
    case 4: m = Mnemonic::kPLbuPostImm; break;
    case 5: m = Mnemonic::kPLhuPostImm; break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = f.imm_i;
  return in;
}

Instr decode_store(const Fields& f, u32 raw, addr_t pc, bool post_inc) {
  Mnemonic m;
  switch (f.funct3) {
    case 0: m = post_inc ? Mnemonic::kPSbPostImm : Mnemonic::kSb; break;
    case 1: m = post_inc ? Mnemonic::kPShPostImm : Mnemonic::kSh; break;
    case 2: m = post_inc ? Mnemonic::kPSwPostImm : Mnemonic::kSw; break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = f.imm_s;
  in.rd = 0;
  return in;
}

Instr decode_op_imm(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m;
  i32 imm = f.imm_i;
  switch (f.funct3) {
    case 0: m = Mnemonic::kAddi; break;
    case 2: m = Mnemonic::kSlti; break;
    case 3: m = Mnemonic::kSltiu; break;
    case 4: m = Mnemonic::kXori; break;
    case 6: m = Mnemonic::kOri; break;
    case 7: m = Mnemonic::kAndi; break;
    case 1:
      if (f.funct7 != 0) illegal(pc, raw);
      m = Mnemonic::kSlli;
      imm = static_cast<i32>(f.rs2);
      break;
    case 5:
      if (f.funct7 == 0x00) m = Mnemonic::kSrli;
      else if (f.funct7 == 0x20) m = Mnemonic::kSrai;
      else illegal(pc, raw);
      imm = static_cast<i32>(f.rs2);
      break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = imm;
  return in;
}

Instr decode_op(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m = Mnemonic::kInvalid;
  if (f.funct7 == 0x00) {
    switch (f.funct3) {
      case 0: m = Mnemonic::kAdd; break;
      case 1: m = Mnemonic::kSll; break;
      case 2: m = Mnemonic::kSlt; break;
      case 3: m = Mnemonic::kSltu; break;
      case 4: m = Mnemonic::kXor; break;
      case 5: m = Mnemonic::kSrl; break;
      case 6: m = Mnemonic::kOr; break;
      case 7: m = Mnemonic::kAnd; break;
    }
  } else if (f.funct7 == 0x20) {
    if (f.funct3 == 0) m = Mnemonic::kSub;
    else if (f.funct3 == 5) m = Mnemonic::kSra;
  } else if (f.funct7 == 0x01) {
    switch (f.funct3) {
      case 0: m = Mnemonic::kMul; break;
      case 1: m = Mnemonic::kMulh; break;
      case 2: m = Mnemonic::kMulhsu; break;
      case 3: m = Mnemonic::kMulhu; break;
      case 4: m = Mnemonic::kDiv; break;
      case 5: m = Mnemonic::kDivu; break;
      case 6: m = Mnemonic::kRem; break;
      case 7: m = Mnemonic::kRemu; break;
    }
  }
  if (m == Mnemonic::kInvalid) illegal(pc, raw);
  return make(m, f, raw);
}

Instr decode_branch(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m;
  switch (f.funct3) {
    case 0: m = Mnemonic::kBeq; break;
    case 1: m = Mnemonic::kBne; break;
    case 2: m = Mnemonic::kPBeqimm; break;  // XpulpV2 immediate compare
    case 3: m = Mnemonic::kPBneimm; break;
    case 4: m = Mnemonic::kBlt; break;
    case 5: m = Mnemonic::kBge; break;
    case 6: m = Mnemonic::kBltu; break;
    case 7: m = Mnemonic::kBgeu; break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = f.imm_b;
  in.rd = 0;
  if (m == Mnemonic::kPBeqimm || m == Mnemonic::kPBneimm) {
    in.imm2 = static_cast<u8>(f.rs2);  // raw imm5 bits
    in.rs2 = 0;
  }
  return in;
}

Instr decode_system(const Fields& f, u32 raw, addr_t pc) {
  if (f.funct3 == 0) {
    if (raw == 0x00000073u) return make(Mnemonic::kEcall, f, raw);
    if (raw == 0x00100073u) return make(Mnemonic::kEbreak, f, raw);
    illegal(pc, raw);
  }
  Mnemonic m;
  switch (f.funct3) {
    case 1: m = Mnemonic::kCsrrw; break;
    case 2: m = Mnemonic::kCsrrs; break;
    case 3: m = Mnemonic::kCsrrc; break;
    case 5: m = Mnemonic::kCsrrwi; break;
    case 6: m = Mnemonic::kCsrrsi; break;
    case 7: m = Mnemonic::kCsrrci; break;
    default: illegal(pc, raw);
  }
  Instr in = make(m, f, raw);
  in.imm = static_cast<i32>(bits(raw, 31, 20));  // CSR address, zero-extended
  if (f.funct3 >= 5) {
    in.imm2 = static_cast<u8>(f.rs1);  // uimm5
    in.rs1 = 0;
  }
  return in;
}

Instr decode_pulp_scalar(const Fields& f, u32 raw, addr_t pc) {
  auto mem_mn = [&](u32 subclass) -> Mnemonic {
    const auto size = static_cast<MemSizeCode>(f.funct7);
    switch (subclass) {
      case kScalarLoadPostReg:
        switch (size) {
          case MemSizeCode::kLb: return Mnemonic::kPLbPostReg;
          case MemSizeCode::kLh: return Mnemonic::kPLhPostReg;
          case MemSizeCode::kLw: return Mnemonic::kPLwPostReg;
          case MemSizeCode::kLbu: return Mnemonic::kPLbuPostReg;
          case MemSizeCode::kLhu: return Mnemonic::kPLhuPostReg;
        }
        break;
      case kScalarLoadRegReg:
        switch (size) {
          case MemSizeCode::kLb: return Mnemonic::kPLbRegReg;
          case MemSizeCode::kLh: return Mnemonic::kPLhRegReg;
          case MemSizeCode::kLw: return Mnemonic::kPLwRegReg;
          case MemSizeCode::kLbu: return Mnemonic::kPLbuRegReg;
          case MemSizeCode::kLhu: return Mnemonic::kPLhuRegReg;
        }
        break;
      case kScalarStorePostReg:
        switch (size) {
          case MemSizeCode::kLb: return Mnemonic::kPSbPostReg;
          case MemSizeCode::kLh: return Mnemonic::kPShPostReg;
          case MemSizeCode::kLw: return Mnemonic::kPSwPostReg;
          default: break;
        }
        break;
      case kScalarStoreRegReg:
        switch (size) {
          case MemSizeCode::kLb: return Mnemonic::kPSbRegReg;
          case MemSizeCode::kLh: return Mnemonic::kPShRegReg;
          case MemSizeCode::kLw: return Mnemonic::kPSwRegReg;
          default: break;
        }
        break;
    }
    return Mnemonic::kInvalid;
  };

  switch (f.funct3) {
    case kScalarLoadPostReg:
    case kScalarLoadRegReg:
    case kScalarStorePostReg:
    case kScalarStoreRegReg: {
      const Mnemonic m = mem_mn(f.funct3);
      if (m == Mnemonic::kInvalid) illegal(pc, raw);
      return make(m, f, raw);
    }
    case kScalarAlu: {
      Mnemonic m;
      switch (static_cast<ScalarAluFunct7>(f.funct7)) {
        case ScalarAluFunct7::kAbs: m = Mnemonic::kPAbs; break;
        case ScalarAluFunct7::kMin: m = Mnemonic::kPMin; break;
        case ScalarAluFunct7::kMinu: m = Mnemonic::kPMinu; break;
        case ScalarAluFunct7::kMax: m = Mnemonic::kPMax; break;
        case ScalarAluFunct7::kMaxu: m = Mnemonic::kPMaxu; break;
        case ScalarAluFunct7::kExths: m = Mnemonic::kPExths; break;
        case ScalarAluFunct7::kExthz: m = Mnemonic::kPExthz; break;
        case ScalarAluFunct7::kExtbs: m = Mnemonic::kPExtbs; break;
        case ScalarAluFunct7::kExtbz: m = Mnemonic::kPExtbz; break;
        case ScalarAluFunct7::kCnt: m = Mnemonic::kPCnt; break;
        case ScalarAluFunct7::kFf1: m = Mnemonic::kPFf1; break;
        case ScalarAluFunct7::kFl1: m = Mnemonic::kPFl1; break;
        case ScalarAluFunct7::kClb: m = Mnemonic::kPClb; break;
        case ScalarAluFunct7::kRor: m = Mnemonic::kPRor; break;
        case ScalarAluFunct7::kClip: {
          Instr in = make(Mnemonic::kPClip, f, raw);
          in.imm = static_cast<i32>(f.rs2);
          in.rs2 = 0;
          return in;
        }
        case ScalarAluFunct7::kClipu: {
          Instr in = make(Mnemonic::kPClipu, f, raw);
          in.imm = static_cast<i32>(f.rs2);
          in.rs2 = 0;
          return in;
        }
        case ScalarAluFunct7::kMac: m = Mnemonic::kPMac; break;
        case ScalarAluFunct7::kMsu: m = Mnemonic::kPMsu; break;
        default: illegal(pc, raw);
      }
      return make(m, f, raw);
    }
    case kScalarBitmanipA:
    case kScalarBitmanipB: {
      const u32 op2 = f.funct7 >> 5;
      const u32 is3 = f.funct7 & 0x1f;
      Mnemonic m = Mnemonic::kInvalid;
      if (f.funct3 == kScalarBitmanipA) {
        switch (static_cast<BitmanipA>(op2)) {
          case BitmanipA::kExtract: m = Mnemonic::kPExtract; break;
          case BitmanipA::kExtractu: m = Mnemonic::kPExtractu; break;
          case BitmanipA::kInsert: m = Mnemonic::kPInsert; break;
          case BitmanipA::kBclr: m = Mnemonic::kPBclr; break;
        }
      } else if (op2 == static_cast<u32>(BitmanipB::kBset)) {
        m = Mnemonic::kPBset;
      }
      if (m == Mnemonic::kInvalid) illegal(pc, raw);
      // The field [Is2 + Is3 : Is2] must fit in 32 bits.
      if (f.rs2 + is3 + 1 > 32) illegal(pc, raw);
      Instr in = make(m, f, raw);
      in.imm = static_cast<i32>(f.rs2);  // Is2 = bit position
      in.imm2 = static_cast<u8>(is3);    // Is3 = width - 1
      in.rs2 = 0;
      return in;
    }
    default:
      illegal(pc, raw);
  }
}

Instr decode_hwloop(const Fields& f, u32 raw, addr_t pc) {
  Instr in;
  in.raw = raw;
  in.imm2 = static_cast<u8>(f.rd & 1u);  // loop index L
  in.rd = 0;
  switch (static_cast<HwloopFunct3>(f.funct3)) {
    case HwloopFunct3::kStarti:
      in.op = Mnemonic::kLpStarti;
      in.imm = f.imm_i << 1;
      return in;
    case HwloopFunct3::kEndi:
      in.op = Mnemonic::kLpEndi;
      in.imm = f.imm_i << 1;
      return in;
    case HwloopFunct3::kCount:
      in.op = Mnemonic::kLpCount;
      in.rs1 = static_cast<u8>(f.rs1);
      return in;
    case HwloopFunct3::kCounti:
      in.op = Mnemonic::kLpCounti;
      in.imm = static_cast<i32>(bits(raw, 31, 20));  // unsigned count
      return in;
    case HwloopFunct3::kSetup:
      in.op = Mnemonic::kLpSetup;
      in.rs1 = static_cast<u8>(f.rs1);
      in.imm = f.imm_i << 1;
      return in;
    case HwloopFunct3::kSetupi:
      in.op = Mnemonic::kLpSetupi;
      in.rs1 = static_cast<u8>(f.rs1);  // immediate count (uimm5)
      in.imm = f.imm_i << 1;
      return in;
    default:
      illegal(pc, raw);
  }
}

Instr decode_simd(const Fields& f, u32 raw, addr_t pc) {
  Mnemonic m;
  switch (static_cast<SimdFunct7>(f.funct7)) {
    case SimdFunct7::kAdd: m = Mnemonic::kPvAdd; break;
    case SimdFunct7::kSub: m = Mnemonic::kPvSub; break;
    case SimdFunct7::kAvg: m = Mnemonic::kPvAvg; break;
    case SimdFunct7::kAvgu: m = Mnemonic::kPvAvgu; break;
    case SimdFunct7::kMax: m = Mnemonic::kPvMax; break;
    case SimdFunct7::kMaxu: m = Mnemonic::kPvMaxu; break;
    case SimdFunct7::kMin: m = Mnemonic::kPvMin; break;
    case SimdFunct7::kMinu: m = Mnemonic::kPvMinu; break;
    case SimdFunct7::kSrl: m = Mnemonic::kPvSrl; break;
    case SimdFunct7::kSra: m = Mnemonic::kPvSra; break;
    case SimdFunct7::kSll: m = Mnemonic::kPvSll; break;
    case SimdFunct7::kAbs: m = Mnemonic::kPvAbs; break;
    case SimdFunct7::kAnd: m = Mnemonic::kPvAnd; break;
    case SimdFunct7::kOr: m = Mnemonic::kPvOr; break;
    case SimdFunct7::kXor: m = Mnemonic::kPvXor; break;
    case SimdFunct7::kDotup: m = Mnemonic::kPvDotup; break;
    case SimdFunct7::kDotusp: m = Mnemonic::kPvDotusp; break;
    case SimdFunct7::kDotsp: m = Mnemonic::kPvDotsp; break;
    case SimdFunct7::kSdotup: m = Mnemonic::kPvSdotup; break;
    case SimdFunct7::kSdotusp: m = Mnemonic::kPvSdotusp; break;
    case SimdFunct7::kSdotsp: m = Mnemonic::kPvSdotsp; break;
    case SimdFunct7::kElemExtract: m = Mnemonic::kPvElemExtract; break;
    case SimdFunct7::kElemExtractu: m = Mnemonic::kPvElemExtractu; break;
    case SimdFunct7::kElemInsert: m = Mnemonic::kPvElemInsert; break;
    case SimdFunct7::kShuffle: m = Mnemonic::kPvShuffle; break;
    case SimdFunct7::kPack: m = Mnemonic::kPvPackH; break;
    case SimdFunct7::kQnt: m = Mnemonic::kPvQnt; break;
    case SimdFunct7::kMldotup: m = Mnemonic::kPvMldotup; break;
    case SimdFunct7::kMldotusp: m = Mnemonic::kPvMldotusp; break;
    case SimdFunct7::kMldotsp: m = Mnemonic::kPvMldotsp; break;
    case SimdFunct7::kMlsdotup: m = Mnemonic::kPvMlsdotup; break;
    case SimdFunct7::kMlsdotusp: m = Mnemonic::kPvMlsdotusp; break;
    case SimdFunct7::kMlsdotsp: m = Mnemonic::kPvMlsdotsp; break;
    default: illegal(pc, raw);
  }
  if (is_mixed_dotp(m)) {
    // Mixed virtual dot products carry no format; funct3 must be zero so
    // the encoding stays a single canonical word per mnemonic.
    if (f.funct3 != 0) illegal(pc, raw);
    Instr in = make(m, f, raw);
    in.fmt = SimdFmt::kNone;
    return in;
  }
  Instr in = make(m, f, raw);
  in.fmt = simd_fmt_from_funct3(f.funct3);
  if (m == Mnemonic::kPvQnt &&
      (!simd_is_subbyte(in.fmt) || simd_is_scalar_rep(in.fmt))) {
    illegal(pc, raw);
  }
  if (is_elem_manip(m)) {
    if (simd_is_subbyte(in.fmt) || simd_is_scalar_rep(in.fmt)) {
      illegal(pc, raw);
    }
    if (m == Mnemonic::kPvPackH && in.fmt != SimdFmt::kH) illegal(pc, raw);
    if (m != Mnemonic::kPvShuffle && m != Mnemonic::kPvPackH) {
      // Lane immediate lives in the rs2 field.
      if (f.rs2 >= simd_elem_count(in.fmt)) illegal(pc, raw);
      in.imm = static_cast<i32>(f.rs2);
      in.rs2 = 0;
    }
  }
  return in;
}

// Raw 32-bit decode without the derived-field pass; decode() below
// finalizes the result.
Instr decode32(u32 raw, addr_t pc) {
  const Fields f = split(raw);
  switch (f.opcode) {
    case kOpLui: {
      Instr in = make(Mnemonic::kLui, f, raw);
      in.imm = f.imm_u;
      return in;
    }
    case kOpAuipc: {
      Instr in = make(Mnemonic::kAuipc, f, raw);
      in.imm = f.imm_u;
      return in;
    }
    case kOpJal: {
      Instr in = make(Mnemonic::kJal, f, raw);
      in.imm = f.imm_j;
      return in;
    }
    case kOpJalr: {
      if (f.funct3 != 0) illegal(pc, raw);
      Instr in = make(Mnemonic::kJalr, f, raw);
      in.imm = f.imm_i;
      return in;
    }
    case kOpBranch: return decode_branch(f, raw, pc);
    case kOpLoad: return decode_load(f, raw, pc);
    case kOpStore: return decode_store(f, raw, pc, /*post_inc=*/false);
    case kOpOpImm: return decode_op_imm(f, raw, pc);
    case kOpOp: return decode_op(f, raw, pc);
    case kOpMiscMem: return make(Mnemonic::kFence, f, raw);
    case kOpSystem: return decode_system(f, raw, pc);
    case kOpPulpLoadPost: return decode_pulp_load_post(f, raw, pc);
    case kOpPulpStorePost: return decode_store(f, raw, pc, /*post_inc=*/true);
    case kOpPulpScalar: return decode_pulp_scalar(f, raw, pc);
    case kOpPulpHwloop: return decode_hwloop(f, raw, pc);
    case kOpPulpSimd: return decode_simd(f, raw, pc);
    default:
      illegal(pc, raw);
  }
}

}  // namespace

Instr decode(u32 raw, addr_t pc) {
  if (is_compressed(raw)) return decode_compressed(static_cast<u16>(raw), pc);
  Instr in = decode32(raw, pc);
  finalize_decode(in);
  return in;
}

}  // namespace xpulp::isa
