#include "isa/disasm.hpp"

#include <array>
#include <sstream>

#include "common/bitops.hpp"

namespace xpulp::isa {

namespace {

constexpr std::array<std::string_view, 32> kRegNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

std::string_view fmt_suffix(SimdFmt f) {
  switch (f) {
    case SimdFmt::kB: return ".b";
    case SimdFmt::kBSc: return ".sc.b";
    case SimdFmt::kH: return ".h";
    case SimdFmt::kHSc: return ".sc.h";
    case SimdFmt::kN: return ".n";
    case SimdFmt::kNSc: return ".sc.n";
    case SimdFmt::kC: return ".c";
    case SimdFmt::kCSc: return ".sc.c";
    default: return "";
  }
}

std::string hex(u32 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

std::string_view reg_name(unsigned r) { return kRegNames[r & 31u]; }

std::string disassemble(const Instr& in, addr_t pc) {
  using M = Mnemonic;
  std::ostringstream os;
  const auto rd = reg_name(in.rd);
  const auto rs1 = reg_name(in.rs1);
  const auto rs2 = reg_name(in.rs2);
  const std::string name{mnemonic_name(in.op)};

  switch (in.op) {
    case M::kLui:
    case M::kAuipc:
      os << name << ' ' << rd << ", " << hex(static_cast<u32>(in.imm) >> 12);
      break;
    case M::kJal:
      os << name << ' ' << rd << ", " << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kJalr:
      os << name << ' ' << rd << ", " << in.imm << '(' << rs1 << ')';
      break;
    case M::kBeq: case M::kBne: case M::kBlt: case M::kBge:
    case M::kBltu: case M::kBgeu:
      os << name << ' ' << rs1 << ", " << rs2 << ", "
         << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kPBeqimm: case M::kPBneimm:
      os << name << ' ' << rs1 << ", " << sign_extend(in.imm2, 5) << ", "
         << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kLb: case M::kLh: case M::kLw: case M::kLbu: case M::kLhu:
      os << name << ' ' << rd << ", " << in.imm << '(' << rs1 << ')';
      break;
    case M::kSb: case M::kSh: case M::kSw:
      os << name << ' ' << rs2 << ", " << in.imm << '(' << rs1 << ')';
      break;
    case M::kPLbPostImm: case M::kPLhPostImm: case M::kPLwPostImm:
    case M::kPLbuPostImm: case M::kPLhuPostImm:
      os << name << ' ' << rd << ", " << in.imm << '(' << rs1 << "!)";
      break;
    case M::kPSbPostImm: case M::kPShPostImm: case M::kPSwPostImm:
      os << name << ' ' << rs2 << ", " << in.imm << '(' << rs1 << "!)";
      break;
    case M::kPLbPostReg: case M::kPLhPostReg: case M::kPLwPostReg:
    case M::kPLbuPostReg: case M::kPLhuPostReg:
      os << name << ' ' << rd << ", " << rs2 << '(' << rs1 << "!)";
      break;
    case M::kPLbRegReg: case M::kPLhRegReg: case M::kPLwRegReg:
    case M::kPLbuRegReg: case M::kPLhuRegReg:
      os << name << ' ' << rd << ", " << rs2 << '(' << rs1 << ')';
      break;
    case M::kPSbPostReg: case M::kPShPostReg: case M::kPSwPostReg:
      os << name << ' ' << rs2 << ", " << rd << '(' << rs1 << "!)";
      break;
    case M::kPSbRegReg: case M::kPShRegReg: case M::kPSwRegReg:
      os << name << ' ' << rs2 << ", " << rd << '(' << rs1 << ')';
      break;
    case M::kAddi: case M::kSlti: case M::kSltiu: case M::kXori:
    case M::kOri: case M::kAndi: case M::kSlli: case M::kSrli:
    case M::kSrai:
      os << name << ' ' << rd << ", " << rs1 << ", " << in.imm;
      break;
    case M::kPClip: case M::kPClipu:
      os << name << ' ' << rd << ", " << rs1 << ", " << in.imm;
      break;
    case M::kPExtract: case M::kPExtractu: case M::kPInsert:
    case M::kPBclr: case M::kPBset:
      os << name << ' ' << rd << ", " << rs1 << ", "
         << static_cast<int>(in.imm2) << ", " << in.imm;
      break;
    case M::kPAbs: case M::kPExths: case M::kPExthz: case M::kPExtbs:
    case M::kPExtbz: case M::kPCnt: case M::kPFf1: case M::kPFl1:
    case M::kPClb:
      os << name << ' ' << rd << ", " << rs1;
      break;
    case M::kFence: case M::kEcall: case M::kEbreak:
      os << name;
      break;
    case M::kCsrrw: case M::kCsrrs: case M::kCsrrc:
      os << name << ' ' << rd << ", " << hex(static_cast<u32>(in.imm)) << ", "
         << rs1;
      break;
    case M::kCsrrwi: case M::kCsrrsi: case M::kCsrrci:
      os << name << ' ' << rd << ", " << hex(static_cast<u32>(in.imm)) << ", "
         << static_cast<int>(in.imm2);
      break;
    case M::kLpStarti: case M::kLpEndi:
      os << name << " x" << static_cast<int>(in.imm2) << ", "
         << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kLpCount:
      os << name << " x" << static_cast<int>(in.imm2) << ", " << rs1;
      break;
    case M::kLpCounti:
      os << name << " x" << static_cast<int>(in.imm2) << ", " << in.imm;
      break;
    case M::kLpSetup:
      os << name << " x" << static_cast<int>(in.imm2) << ", " << rs1 << ", "
         << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kLpSetupi:
      os << name << " x" << static_cast<int>(in.imm2) << ", "
         << static_cast<int>(in.rs1) << ", "
         << hex(pc + static_cast<u32>(in.imm));
      break;
    case M::kPvQnt:
      os << name << (simd_elem_bits(in.fmt) == 4 ? ".n " : ".c ") << rd << ", "
         << rs1 << ", (" << rs2 << ')';
      break;
    case M::kPvElemExtract: case M::kPvElemExtractu: case M::kPvElemInsert:
      os << name << fmt_suffix(in.fmt) << ' ' << rd << ", " << rs1 << ", "
         << in.imm;
      break;
    default:
      if (is_simd(in.op)) {
        os << name << fmt_suffix(in.fmt) << ' ' << rd << ", " << rs1;
        if (in.op != M::kPvAbs) os << ", " << rs2;
      } else {
        // R-type scalar ops (add..and, mul.., p.min.., p.mac..)
        os << name << ' ' << rd << ", " << rs1 << ", " << rs2;
      }
      break;
  }
  return os.str();
}

}  // namespace xpulp::isa
