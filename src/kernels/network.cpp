#include "kernels/network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "qnn/ref_layers.hpp"

namespace xpulp::kernels {

namespace {

/// Threshold construction against the layer's actual input: per-channel
/// accumulator quantiles, falling back to layer-global quantiles when a
/// channel has too few spatial positions (e.g. fully-connected layers).
qnn::LayerThresholds trained_thresholds(const qnn::Tensor& input,
                                        const qnn::FilterBank& weights,
                                        const qnn::ConvSpec& spec) {
  const int levels = 1 << spec.out_bits;
  const int positions = spec.out_h() * spec.out_w();
  auto from_accs = [&](std::vector<i32>& accs) {
    std::sort(accs.begin(), accs.end());
    std::vector<i16> th(static_cast<size_t>(levels - 1));
    i32 prev = -40000;
    for (int i = 1; i < levels; ++i) {
      i32 t = accs[std::min(accs.size() - 1,
                            static_cast<size_t>(i) * accs.size() / levels)];
      if (t <= prev) t = prev + 1;
      t = std::clamp<i32>(t, -32768, 32767);
      th[static_cast<size_t>(i - 1)] = static_cast<i16>(t);
      prev = t;
    }
    return th;
  };

  std::vector<qnn::Thresholds> per_channel;
  if (positions < 2 * levels) {
    std::vector<i32> accs;
    for (int oc = 0; oc < spec.out_c; ++oc) {
      for (int oy = 0; oy < spec.out_h(); ++oy) {
        for (int ox = 0; ox < spec.out_w(); ++ox) {
          accs.push_back(qnn::conv_accumulate(input, weights, spec, oy, ox, oc));
        }
      }
    }
    const qnn::Thresholds shared(spec.out_bits, from_accs(accs));
    per_channel.assign(static_cast<size_t>(spec.out_c), shared);
  } else {
    for (int oc = 0; oc < spec.out_c; ++oc) {
      std::vector<i32> accs;
      for (int oy = 0; oy < spec.out_h(); ++oy) {
        for (int ox = 0; ox < spec.out_w(); ++ox) {
          accs.push_back(qnn::conv_accumulate(input, weights, spec, oy, ox, oc));
        }
      }
      per_channel.emplace_back(spec.out_bits, from_accs(accs));
    }
  }
  return qnn::LayerThresholds(spec.out_bits, std::move(per_channel));
}

}  // namespace

Network::Network(qnn::Shape input_shape, unsigned bits, u64 seed)
    : bits_(bits), cur_bits_(bits), seed_(seed), shape_(input_shape) {
  if (bits != 2 && bits != 4 && bits != 8) {
    throw SimError("network bits must be 2, 4 or 8");
  }
}

Network& Network::conv(int out_c, int k, int pad) {
  return conv(out_c, k, pad, LayerPrecision{cur_bits_, cur_bits_});
}

Network& Network::conv(int out_c, int k, int pad, LayerPrecision p) {
  if (p.out_bits != 2 && p.out_bits != 4 && p.out_bits != 8) {
    throw SimError("layer out_bits must be 2, 4 or 8");
  }
  if (p.w_bits != cur_bits_) {
    mixed_sel_for(cur_bits_, p.w_bits);  // throws on unsupported pair
  }
  Step s;
  s.kind = Step::Kind::kConv;
  s.spec.in_h = shape_.h;
  s.spec.in_w = shape_.w;
  s.spec.in_c = shape_.c;
  s.spec.out_c = out_c;
  s.spec.k_h = s.spec.k_w = k;
  s.spec.pad = pad;
  s.spec.in_bits = cur_bits_;
  s.spec.w_bits = p.w_bits;
  s.spec.out_bits = p.out_bits;
  s.bits = cur_bits_;
  s.seed = seed_ + plan_.size() * 977;
  s.name = "conv" + std::to_string(plan_.size());
  shape_ = {s.spec.out_h(), s.spec.out_w(), out_c};
  cur_bits_ = p.out_bits;
  plan_.push_back(std::move(s));
  return *this;
}

Network& Network::maxpool() {
  Step s;
  s.kind = Step::Kind::kMaxPool;
  s.name = "maxpool" + std::to_string(plan_.size());
  s.bits = cur_bits_;
  s.seed = 0;
  shape_ = {shape_.h / 2, shape_.w / 2, shape_.c};
  plan_.push_back(std::move(s));
  return *this;
}

Network& Network::avgpool() {
  Step s;
  s.kind = Step::Kind::kAvgPool;
  s.name = "avgpool" + std::to_string(plan_.size());
  s.bits = cur_bits_;
  s.seed = 0;
  shape_ = {shape_.h / 2, shape_.w / 2, shape_.c};
  plan_.push_back(std::move(s));
  return *this;
}

Network& Network::linear(int out_features) {
  return linear(out_features, LayerPrecision{cur_bits_, cur_bits_});
}

Network& Network::linear(int out_features, LayerPrecision p) {
  if (p.out_bits != 2 && p.out_bits != 4 && p.out_bits != 8) {
    throw SimError("layer out_bits must be 2, 4 or 8");
  }
  if (p.w_bits != cur_bits_) {
    mixed_sel_for(cur_bits_, p.w_bits);  // throws on unsupported pair
  }
  Step s;
  s.kind = Step::Kind::kLinear;
  s.spec.in_h = s.spec.in_w = 1;
  s.spec.k_h = s.spec.k_w = 1;
  s.spec.pad = 0;
  s.spec.in_c = shape_.elems();
  s.spec.out_c = out_features;
  s.spec.in_bits = cur_bits_;
  s.spec.w_bits = p.w_bits;
  s.spec.out_bits = p.out_bits;
  s.bits = cur_bits_;
  s.seed = seed_ + plan_.size() * 977;
  s.name = "linear" + std::to_string(plan_.size());
  shape_ = {1, 1, out_features};
  cur_bits_ = p.out_bits;
  plan_.push_back(std::move(s));
  return *this;
}

NetworkResult Network::run(const qnn::Tensor& input,
                           const sim::CoreConfig& cfg,
                           ConvVariant variant) const {
  NetworkResult res;
  qnn::Tensor act = input;

  for (const Step& step : plan_) {
    LayerStats st;
    st.name = step.name;
    switch (step.kind) {
      case Step::Kind::kConv:
      case Step::Kind::kLinear: {
        ConvLayerData data = ConvLayerData::random(step.spec, step.seed);
        if (step.kind == Step::Kind::kLinear) {
          qnn::Tensor flat({1, 1, act.elems()});
          flat.data() = act.data();
          data.input = flat;
        } else {
          data.input = act;
        }
        if (step.spec.out_bits != 8) {
          data.thresholds =
              trained_thresholds(data.input, data.weights, step.spec);
        }
        ConvGenOptions opts;
        opts.pixel_block = (step.spec.out_w() % 2 == 0) ? 2 : 1;
        // Mixed-precision layers always dispatch to the virtual-SIMD
        // kernel; the variant parameter only selects among uniform ones.
        const ConvVariant v = step.spec.in_bits != step.spec.w_bits
                                  ? ConvVariant::kXpulpNN_Mixed
                                  : variant;
        const ConvRunResult r = run_conv_layer(data, v, cfg, opts);
        const qnn::Tensor gold = data.golden();
        st.matched_golden = (r.output == gold);
        st.cycles = r.perf.cycles;
        st.macs = r.macs;
        st.out_shape = r.output.shape();
        act = r.output;
        break;
      }
      case Step::Kind::kMaxPool:
      case Step::Kind::kAvgPool: {
        const PoolOp op = (step.kind == Step::Kind::kMaxPool) ? PoolOp::kMax
                                                              : PoolOp::kAvg;
        const PoolRunResult r = run_pool2x2(act, step.bits, op, cfg);
        const qnn::Tensor gold = (op == PoolOp::kMax)
                                     ? qnn::maxpool2x2_ref(act)
                                     : qnn::avgpool2x2_ref(act);
        st.matched_golden = (r.output == gold);
        st.cycles = r.perf.cycles;
        st.macs = 0;
        st.out_shape = r.output.shape();
        act = r.output;
        break;
      }
    }
    res.total_cycles += st.cycles;
    res.total_macs += st.macs;
    res.all_matched = res.all_matched && st.matched_golden;
    res.layers.push_back(std::move(st));
  }
  res.output = std::move(act);
  return res;
}

}  // namespace xpulp::kernels
