// Generator for the convolution kernel programs (see conv_layer.hpp for the
// variant catalogue). The structure follows PULP-NN:
//
//   entry:  j main
//   matmul: the 4x2 matrix-multiplication subroutine — runtime loop over
//           output-channel pairs, hardware inner loop over the filter,
//           re-quantization + packed store of 4 outputs per iteration
//   main:   for every output-pixel pair (specialized at generation time,
//           baking in the zero-padding pattern): im2col into two column
//           buffers, set output pointers, call matmul. Then ecall.
//
// Register map (shared by all variants):
//   a0/a1   weight pointers (filters oc, oc+1)
//   a2/a3   im2col buffer pointers
//   a4..a7  accumulators acc00 acc01 acc10 acc11  (accXY: filter X, pixel Y)
//   s0      threshold pointer (current channel)   s1/s2  output pointers
//   s3      channel-pair loop counter             s4     inner-loop count
//   s5/s6   quantization scratch / packing fragments
//   t0..t6, s7..s11  inner-loop and unpack temporaries
#include <algorithm>
#include <cassert>
#include <functional>

#include "common/error.hpp"
#include "kernels/conv_layer.hpp"

namespace xpulp::kernels {

namespace {

namespace r = xasm::reg;
using isa::SimdFmt;
using xasm::Assembler;
using Label = Assembler::Label;

SimdFmt fmt_for_bits(unsigned bits) {
  switch (bits) {
    case 8: return SimdFmt::kB;
    case 4: return SimdFmt::kN;
    case 2: return SimdFmt::kC;
    default: throw SimError("unsupported SIMD element width");
  }
}

struct Gen {
  Assembler a;
  const qnn::ConvSpec& spec;
  ConvVariant variant;
  ConvGenOptions opts;
  ConvMemLayout lay;
  std::vector<std::pair<addr_t, addr_t>> quant_ranges;
  obs::RegionMap regions;

  Gen(const qnn::ConvSpec& s, ConvVariant v, addr_t data_base,
      const ConvGenOptions& o)
      : a(o.code_base),
        spec(s),
        variant(v),
        opts(o),
        lay(o.layout ? *o.layout
                     : ConvMemLayout::plan(s, v, data_base, o.buffer_slots)) {}

  addr_t buf0_addr() const {
    return lay.buf0 + lay.buffer_slot_stride() *
                          static_cast<u32>(opts.buffer_slot);
  }
  addr_t buf1_addr() const {
    return lay.buf1 + lay.buffer_slot_stride() *
                          static_cast<u32>(opts.buffer_slot);
  }

  bool two_pixels() const { return opts.pixel_block == 2; }

  /// Wrap the dot-product loop body in either a zero-overhead hardware
  /// loop or (ablation) a decrement-and-branch loop. The software loop
  /// borrows tp (x4) as its counter -- no kernel code touches it.
  void emit_inner_loop(const std::function<void()>& body) {
    if (opts.use_hwloops) {
      const Label end = a.new_label();
      a.lp_setup(0, r::s4, end);
      body();
      a.bind(end);
    } else {
      a.mv(r::tp, r::s4);
      const Label loop = a.here();
      body();
      a.addi(r::tp, r::tp, -1);
      a.bne(r::tp, r::zero, loop);
    }
  }

  /// Counted loop for the im2col copy/fill/unpack helpers: a hardware
  /// loop when enabled, otherwise the same tp-counted decrement-and-branch
  /// as the ablation inner loop. `count_scratch` holds the iteration count
  /// when it does not fit lp.setupi's 5-bit immediate.
  void emit_counted_loop(u32 count, u8 count_scratch,
                         const std::function<void()>& body) {
    if (opts.use_hwloops) {
      const Label end = a.new_label();
      if (count <= 31) {
        a.lp_setupi(0, count, end);
      } else {
        a.li(count_scratch, static_cast<i32>(count));
        a.lp_setup(0, count_scratch, end);
      }
      body();
      a.bind(end);
    } else {
      a.li(r::tp, static_cast<i32>(count));
      const Label loop = a.here();
      body();
      a.addi(r::tp, r::tp, -1);
      a.bne(r::tp, r::zero, loop);
    }
  }

  bool is_baseline_sub() const {
    return variant == ConvVariant::kXpulpV2_Sub ||
           variant == ConvVariant::kXpulpV2_SubShf;
  }
  bool shuffle_unpack() const {
    return variant == ConvVariant::kXpulpV2_SubShf;
  }
  bool is_8bit() const { return variant == ConvVariant::kXpulpV2_8b; }
  bool is_mixed() const { return variant == ConvVariant::kXpulpNN_Mixed; }
  /// Mixed sub-byte outputs use pv.qnt: the core has XpulpNN by
  /// construction, and the threshold staircase is orthogonal to the mixed
  /// operand formats.
  bool hw_quant() const {
    return variant == ConvVariant::kXpulpNN_HwQ ||
           (is_mixed() && out_bits() != 8);
  }

  unsigned out_bits() const { return spec.out_bits; }
  unsigned in_bits() const { return spec.in_bits; }

  /// Elements consumed per inner-loop iteration: one 32-bit word of packed
  /// weights (32 / w_bits), except mixed kernels which pace on the
  /// *activation* word (32 / in_bits lanes; the grouped weight word covers
  /// the same lanes in its low bits).
  unsigned elems_per_iter() const {
    return 32 / (is_mixed() ? spec.in_bits : spec.w_bits);
  }
  unsigned inner_iters() const {
    return (static_cast<unsigned>(spec.filter_elems()) + elems_per_iter() - 1) /
           elems_per_iter();
  }

  /// Bytes per input pixel's channel block in the packed input image.
  u32 in_pixel_bytes() const {
    return static_cast<u32>(spec.in_c) * in_bits() / 8;
  }
  /// Bytes per pixel block in the im2col buffer (baseline unpacks to 8-bit).
  u32 buf_pixel_bytes() const {
    return is_baseline_sub() ? static_cast<u32>(spec.in_c)
                             : in_pixel_bytes();
  }
  addr_t input_pixel_addr(int y, int x) const {
    return lay.input + static_cast<u32>(y * spec.in_w + x) * in_pixel_bytes();
  }
  int ch_begin() const { return std::clamp(opts.ch_begin, 0, spec.out_c); }
  int ch_end() const {
    return opts.ch_end < 0 ? spec.out_c : std::min(opts.ch_end, spec.out_c);
  }

  addr_t output_pixel_addr(int oy, int ox) const {
    return lay.output +
           static_cast<u32>((oy * spec.out_w() + ox) * spec.out_c +
                            ch_begin()) *
               out_bits() / 8;
  }

  // ---------- im2col ----------

  /// Zero `words` words at the post-incrementing destination pointer t3.
  void emit_zero_fill(u32 words) {
    if (words == 0) return;
    if (words <= 4) {
      for (u32 i = 0; i < words; ++i) a.p_sw_post(r::zero, r::t3, 4);
      return;
    }
    // Hardware-loop body must be >= 2 instructions: store two words/iter.
    emit_counted_loop(words / 2, r::t4, [&] {
      a.p_sw_post(r::zero, r::t3, 4);
      a.p_sw_post(r::zero, r::t3, 4);
    });
    if (words % 2) a.p_sw_post(r::zero, r::t3, 4);
  }

  /// Copy `words` packed words from `src_addr` to the destination pointer
  /// t3 (ext variants: buffers stay packed).
  void emit_copy(addr_t src_addr, u32 words) {
    if (words == 0) return;
    a.li(r::t0, static_cast<i32>(src_addr));
    if (words <= 2) {
      for (u32 i = 0; i < words; ++i) {
        a.p_lw_post(r::t1, r::t0, 4);
        a.p_sw_post(r::t1, r::t3, 4);
      }
      return;
    }
    emit_counted_loop(words, r::t4, [&] {
      a.p_lw_post(r::t1, r::t0, 4);
      a.p_sw_post(r::t1, r::t3, 4);
    });
  }

  /// Baseline sub-byte: copy + unpack `packed_words` words of Q-bit codes
  /// into bytes at t3 (2 or 4 output words per packed word).
  void emit_copy_unpack(addr_t src_addr, u32 packed_words) {
    if (packed_words == 0) return;
    const unsigned q = in_bits();
    const unsigned per_word = 32 / q;       // elements in a packed word
    const unsigned out_words = per_word / 4;  // byte-words produced
    a.li(r::t0, static_cast<i32>(src_addr));

    auto body = [&] {
      a.p_lw_post(r::t1, r::t0, 4);
      for (unsigned ow = 0; ow < out_words; ++ow) {
        for (unsigned j = 0; j < 4; ++j) {
          const unsigned elem = ow * 4 + j;
          // Activations are unsigned codes: zero-extending extract.
          a.p_extractu(r::t4, r::t1, q, elem * q);
          a.p_insert(r::t2, r::t4, 8, j * 8);
        }
        a.p_sw_post(r::t2, r::t3, 4);
      }
    };

    if (packed_words <= 2) {
      for (u32 i = 0; i < packed_words; ++i) body();
      return;
    }
    emit_counted_loop(packed_words, r::t5, body);
  }

  /// Emit the im2col block for output pixel (oy, ox) into buffer at
  /// `buf_addr`. Padding rows/columns are zero-filled; the pattern is baked
  /// in at generation time (positions are compile-time constants, as in a
  /// fully specialized kernel).
  void emit_im2col(int oy, int ox, addr_t buf_addr) {
    a.li(r::t3, static_cast<i32>(buf_addr));
    const u32 pix_words = buf_pixel_bytes() / 4;
    for (int ky = 0; ky < spec.k_h; ++ky) {
      const int y = oy * spec.stride - spec.pad + ky;
      const int x0 = ox * spec.stride - spec.pad;
      if (y < 0 || y >= spec.in_h) {
        emit_zero_fill(static_cast<u32>(spec.k_w) * pix_words);
        continue;
      }
      const int left = std::max(0, -x0);
      const int right = std::max(0, x0 + spec.k_w - spec.in_w);
      const int mid = spec.k_w - left - right;
      emit_zero_fill(static_cast<u32>(left) * pix_words);
      if (mid > 0) {
        const addr_t src = input_pixel_addr(y, x0 + left);
        if (is_baseline_sub()) {
          emit_copy_unpack(src,
                           static_cast<u32>(mid) * in_pixel_bytes() / 4);
        } else {
          emit_copy(src, static_cast<u32>(mid) * pix_words);
        }
      }
      emit_zero_fill(static_cast<u32>(right) * pix_words);
    }
  }

  // ---------- matmul inner loops ----------

  /// Extended-core inner loop: packed operands, sub-byte (or byte) SIMD
  /// sdot; 8 instructions per weight word, 4 accumulators (2x1 blocking:
  /// 6 instructions, 2 accumulators).
  void emit_inner_ext() {
    if (is_mixed()) {
      // Virtual mixed dot product: operand widths come from the mpc CSR
      // (written once in the prologue), so the instruction itself is
      // format-free. Same 4x2 shape as the uniform loop; one activation
      // word + one grouped weight word per filter per iteration.
      if (two_pixels()) {
        emit_inner_loop([&] {
          a.p_lw_post(r::t0, r::a0, 4);  // w0 (grouped)
          a.p_lw_post(r::t1, r::a1, 4);  // w1 (grouped)
          a.p_lw_post(r::t2, r::a2, 4);  // x0
          a.p_lw_post(r::t3, r::a3, 4);  // x1
          a.pv_mlsdotusp(r::a4, r::t2, r::t0);
          a.pv_mlsdotusp(r::a5, r::t3, r::t0);
          a.pv_mlsdotusp(r::a6, r::t2, r::t1);
          a.pv_mlsdotusp(r::a7, r::t3, r::t1);
        });
      } else {
        emit_inner_loop([&] {
          a.p_lw_post(r::t2, r::a2, 4);  // x
          a.p_lw_post(r::t0, r::a0, 4);  // w0
          a.p_lw_post(r::t1, r::a1, 4);  // w1
          a.pv_mlsdotusp(r::a4, r::t2, r::t0);
          a.pv_mlsdotusp(r::a6, r::t2, r::t1);
        });
      }
      return;
    }
    const SimdFmt f = fmt_for_bits(spec.w_bits);
    if (two_pixels()) {
      emit_inner_loop([&] {
        a.p_lw_post(r::t0, r::a0, 4);  // w0
        a.p_lw_post(r::t1, r::a1, 4);  // w1
        a.p_lw_post(r::t2, r::a2, 4);  // x0
        a.p_lw_post(r::t3, r::a3, 4);  // x1
        a.pv_sdotusp(f, r::a4, r::t2, r::t0);
        a.pv_sdotusp(f, r::a5, r::t3, r::t0);
        a.pv_sdotusp(f, r::a6, r::t2, r::t1);
        a.pv_sdotusp(f, r::a7, r::t3, r::t1);
      });
    } else {
      emit_inner_loop([&] {
        a.p_lw_post(r::t2, r::a2, 4);  // x
        a.p_lw_post(r::t0, r::a0, 4);  // w0
        a.p_lw_post(r::t1, r::a1, 4);  // w1
        a.pv_sdotusp(f, r::a4, r::t2, r::t0);
        a.pv_sdotusp(f, r::a6, r::t2, r::t1);
      });
    }
  }

  /// Unpack one packed sub-byte weight word in `src` into byte-words
  /// dst[0..n-1] using sign-extending extract + insert (the packing tax the
  /// paper eliminates). `tmp` is a scratch register.
  void emit_unpack_weights(u8 src, const std::vector<u8>& dst, u8 tmp) {
    if (shuffle_unpack()) {
      // Optimistic-baseline ablation: spread nibble pairs with pv.shuffle,
      // then sign-extend in-lane with a shift pair. Constant registers
      // (initialized once per subroutine): s8 = low-half lane selectors,
      // s9 = high-half selectors, s10 = per-lane left shifts, s11 = 4.
      for (unsigned ow = 0; ow < dst.size(); ++ow) {
        a.pv_shuffle(SimdFmt::kB, dst[ow], src, ow == 0 ? r::s8 : r::s9);
        a.pv_sll(SimdFmt::kB, dst[ow], dst[ow], r::s10);
        a.pv_sra(SimdFmt::kBSc, dst[ow], dst[ow], r::s11);
      }
      return;
    }
    const unsigned q = spec.w_bits;
    for (unsigned ow = 0; ow < dst.size(); ++ow) {
      for (unsigned j = 0; j < 4; ++j) {
        const unsigned elem = ow * 4 + j;
        a.p_extract(tmp, src, q, elem * q);      // sign-extended weight
        a.p_insert(dst[ow], tmp, 8, j * 8);
      }
    }
  }

  /// Baseline sub-byte inner loop: packed weights unpacked on the fly to
  /// byte vectors, activations already unpacked to bytes by im2col, 8-bit
  /// SIMD sdot. One iteration covers one packed weight word.
  void emit_inner_baseline() {
    const unsigned q = spec.w_bits;               // 4 or 2
    const unsigned xw = (32 / q) / 4;             // x words per iteration
    const std::vector<u8> w0 =
        (q == 4) ? std::vector<u8>{r::t1, r::t2}
                 : std::vector<u8>{r::t1, r::t2, r::s8, r::s9};
    const std::vector<u8> w1 =
        (q == 4) ? std::vector<u8>{r::t4, r::t5}
                 : std::vector<u8>{r::t4, r::t5, r::s10, r::s11};

    // Streams `xw` activation words from `xptr` and feeds the two filters'
    // accumulators for that pixel; x registers alternate to dodge the
    // load-use stall.
    auto pixel_pass = [&](u8 xptr, u8 acc_f0, u8 acc_f1) {
      for (unsigned i = 0; i < xw; ++i) {
        const u8 xr = (i % 2 == 0) ? r::t6 : r::s7;
        a.p_lw_post(xr, xptr, 4);
        if (i + 1 < xw) {
          const u8 xr2 = ((i + 1) % 2 == 0) ? r::t6 : r::s7;
          a.p_lw_post(xr2, xptr, 4);
          a.pv_sdotusp(SimdFmt::kB, acc_f0, xr, w0[i]);
          a.pv_sdotusp(SimdFmt::kB, acc_f1, xr, w1[i]);
          a.pv_sdotusp(SimdFmt::kB, acc_f0, xr2, w0[i + 1]);
          a.pv_sdotusp(SimdFmt::kB, acc_f1, xr2, w1[i + 1]);
          ++i;
        } else {
          a.pv_sdotusp(SimdFmt::kB, acc_f0, xr, w0[i]);
          a.pv_sdotusp(SimdFmt::kB, acc_f1, xr, w1[i]);
        }
      }
    };

    emit_inner_loop([&] {
      a.p_lw_post(r::t0, r::a0, 4);  // packed w0
      a.p_lw_post(r::t3, r::a1, 4);  // packed w1
      emit_unpack_weights(r::t0, w0, r::t6);
      emit_unpack_weights(r::t3, w1, r::t6);
      pixel_pass(r::a2, r::a4, r::a6);
      if (two_pixels()) pixel_pass(r::a3, r::a5, r::a7);
    });
  }

  // ---------- re-quantization ----------

  /// Software staircase: unrolled balanced binary tree (Fig. 2), one lh +
  /// one branch per level, leaf writes the code. `acc` = 32-bit
  /// pre-activation register, `dest` receives the code, tree base is
  /// s0 + base_off (static per-channel offset).
  void emit_sw_tree(u8 acc, u8 dest, i32 base_off) {
    const unsigned q = out_bits();
    const Label merge = a.new_label();
    emit_sw_tree_node(acc, dest, base_off, 0, 0, 0, q, merge);
    a.bind(merge);
  }

  void emit_sw_tree_node(u8 acc, u8 dest, i32 base_off, u32 node,
                         unsigned depth, u32 code, unsigned q, Label merge) {
    if (depth == q) {
      a.addi(dest, r::zero, static_cast<i32>(code));
      a.j(merge);
      return;
    }
    a.lh(r::t6, r::s0, base_off + static_cast<i32>(node) * 2);
    const Label left = a.new_label();
    a.blt(acc, r::t6, left);             // acc < T -> bit 0 (left child)
    emit_sw_tree_node(acc, dest, base_off, 2 * node + 2, depth + 1,
                      (code << 1) | 1, q, merge);
    a.bind(left);
    emit_sw_tree_node(acc, dest, base_off, 2 * node + 1, depth + 1,
                      (code << 1) | 0, q, merge);
  }

  /// Hardware pv.qnt of accumulators (accA = channel oc, accB = channel
  /// oc+1, same output pixel); result codes land in `dest` bits [q-1:0] and
  /// [16+q-1:16]. `thr` = threshold pointer register for channel oc.
  void emit_hw_qnt_pair(u8 accA, u8 accB, u8 dest, u8 thr) {
    a.p_exthz(r::t4, accA);
    a.slli(r::t5, accB, 16);
    a.or_(r::t4, r::t4, r::t5);
    a.pv_qnt(out_bits(), dest, r::t4, thr);
  }

  /// Begin/end markers for quantization-cycle attribution.
  void quant_begin() { quant_start_ = a.current_addr(); }
  void quant_end() {
    quant_ranges.emplace_back(quant_start_, a.current_addr());
    regions.add_range("quant", quant_start_, a.current_addr());
  }
  addr_t quant_start_ = 0;

  /// Re-quantize + store the 4 accumulators of one channel pair (4-bit and
  /// 8-bit flavors; 2-bit handled by emit_quant_store_crumb_half).
  void emit_quant_store_pair() {
    quant_begin();
    if (out_bits() == 8) {
      // out = clamp(acc >> shift, 0, 255); two bytes per pixel, sh store.
      const u32 sh = spec.requant_shift;
      a.srai(r::t4, r::a4, sh);
      a.p_clipu(r::t4, r::t4, 8);
      a.srai(r::t5, r::a6, sh);
      a.p_clipu(r::t5, r::t5, 8);
      a.p_insert(r::t4, r::t5, 8, 8);
      a.p_sh_post(r::t4, r::s1, 2);
      if (two_pixels()) {
        a.srai(r::t4, r::a5, sh);
        a.p_clipu(r::t4, r::t4, 8);
        a.srai(r::t5, r::a7, sh);
        a.p_clipu(r::t5, r::t5, 8);
        a.p_insert(r::t4, r::t5, 8, 8);
        a.p_sh_post(r::t4, r::s2, 2);
      }
    } else if (hw_quant()) {
      assert(out_bits() == 4);
      emit_hw_qnt_pair(r::a4, r::a6, r::t4, r::s0);  // pixel 0
      a.p_extractu(r::t5, r::t4, 4, 16);
      a.p_insert(r::t4, r::t5, 4, 4);                // byte q00 | q10<<4
      a.p_sb_post(r::t4, r::s1, 1);
      if (two_pixels()) {
        emit_hw_qnt_pair(r::a5, r::a7, r::t4, r::s0);  // pixel 1
        a.p_extractu(r::t5, r::t4, 4, 16);
        a.p_insert(r::t4, r::t5, 4, 4);
        a.p_sb_post(r::t4, r::s2, 1);
      }
    } else {
      assert(out_bits() == 4);
      const i32 stride = static_cast<i32>(thr_stride());
      emit_sw_tree(r::a4, r::s5, 0);       // q00 (ch oc,  pix 0)
      emit_sw_tree(r::a6, r::s6, stride);  // q10 (ch oc+1, pix 0)
      a.p_insert(r::s5, r::s6, 4, 4);
      a.p_sb_post(r::s5, r::s1, 1);
      if (two_pixels()) {
        emit_sw_tree(r::a5, r::s5, 0);
        emit_sw_tree(r::a7, r::s6, stride);
        a.p_insert(r::s5, r::s6, 4, 4);
        a.p_sb_post(r::s5, r::s2, 1);
      }
    }
    quant_end();
  }

  /// 2-bit outputs pack four channels per byte, so the channel loop body
  /// processes two pairs; `half` selects static insert positions. Pixel-0
  /// fragments accumulate in s5, pixel-1 fragments in s6; stores on the
  /// second half.
  void emit_quant_store_crumb_half(unsigned half) {
    assert(out_bits() == 2);
    quant_begin();
    const unsigned pos = half * 4;  // bit position of this pair's codes
    if (hw_quant()) {
      emit_hw_qnt_pair(r::a4, r::a6, r::t4, r::s0);
      a.p_extractu(r::t5, r::t4, 2, 16);
      a.p_insert(r::t4, r::t5, 2, 2);          // nibble q0 | q1<<2
      a.p_insert(r::s5, r::t4, 4, pos);
      if (two_pixels()) {
        emit_hw_qnt_pair(r::a5, r::a7, r::t4, r::s0);
        a.p_extractu(r::t5, r::t4, 2, 16);
        a.p_insert(r::t4, r::t5, 2, 2);
        a.p_insert(r::s6, r::t4, 4, pos);
      }
    } else {
      const i32 stride = static_cast<i32>(thr_stride());
      emit_sw_tree(r::a4, r::t4, 0);
      emit_sw_tree(r::a6, r::t5, stride);
      a.p_insert(r::t4, r::t5, 2, 2);
      a.p_insert(r::s5, r::t4, 4, pos);
      if (two_pixels()) {
        emit_sw_tree(r::a5, r::t4, 0);
        emit_sw_tree(r::a7, r::t5, stride);
        a.p_insert(r::t4, r::t5, 2, 2);
        a.p_insert(r::s6, r::t4, 4, pos);
      }
    }
    if (half == 1) {
      a.p_sb_post(r::s5, r::s1, 1);
      if (two_pixels()) a.p_sb_post(r::s6, r::s2, 1);
    }
    quant_end();
  }

  u32 thr_stride() const { return (1u << out_bits()) * 2; }

  // ---------- the matmul subroutine ----------

  void emit_acc_clear() {
    a.mv(r::a4, r::zero);
    a.mv(r::a6, r::zero);
    if (two_pixels()) {
      a.mv(r::a5, r::zero);
      a.mv(r::a7, r::zero);
    }
  }

  void emit_pair_setup() {
    a.addi(r::a1, r::a0, static_cast<i32>(lay.filter_stride));
    a.li(r::a2, static_cast<i32>(buf0_addr()));
    if (two_pixels()) a.li(r::a3, static_cast<i32>(buf1_addr()));
    emit_acc_clear();
  }

  void emit_inner() {
    if (is_baseline_sub()) {
      emit_inner_baseline();
    } else {
      emit_inner_ext();
    }
  }

  /// After the inner loop a1 points at the next pair's first filter.
  void emit_pair_advance() {
    a.mv(r::a0, r::a1);
    if (out_bits() != 8) {
      a.addi(r::s0, r::s0, static_cast<i32>(2 * thr_stride()));
    }
  }

  void emit_matmul_subroutine() {
    if (shuffle_unpack()) {
      a.li(r::s8, 0x01010000);   // byte lanes (0, 0, 1, 1)
      a.li(r::s9, 0x03030202);   // byte lanes (2, 2, 3, 3)
      a.li(r::s10, 0x00040004);  // left shifts (4, 0, 4, 0)
      a.li(r::s11, 4);           // arithmetic right shift
    }
    const addr_t wbase = opts.weights_base_override
                             ? opts.weights_base_override
                             : lay.weights +
                                   static_cast<u32>(ch_begin()) *
                                       lay.filter_stride;
    a.li(r::a0, static_cast<i32>(wbase));
    if (out_bits() != 8) {
      a.li(r::s0, static_cast<i32>(lay.thresholds +
                                   static_cast<u32>(ch_begin()) *
                                       thr_stride()));
    }
    a.li(r::s4, static_cast<i32>(inner_iters()));

    const bool crumb_out = out_bits() == 2;
    const int pairs_per_body = crumb_out ? 2 : 1;
    const int body_count = (ch_end() - ch_begin()) / (2 * pairs_per_body);
    a.li(r::s3, body_count);

    const Label loop = a.here();
    if (crumb_out) {
      emit_pair_setup();
      emit_inner();
      emit_quant_store_crumb_half(0);
      emit_pair_advance();
      emit_pair_setup();
      emit_inner();
      emit_quant_store_crumb_half(1);
      emit_pair_advance();
    } else {
      emit_pair_setup();
      emit_inner();
      emit_quant_store_pair();
      emit_pair_advance();
    }
    a.addi(r::s3, r::s3, -1);
    a.bne(r::s3, r::zero, loop);
    a.ret();
  }

  // ---------- top level ----------

  ConvKernel generate() {
    if (is_mixed()) {
      mixed_sel_for(in_bits(), spec.w_bits);  // throws on unsupported pair
      if (spec.out_bits != 8 && spec.out_bits != 4 && spec.out_bits != 2) {
        throw SimError("variant/bitwidth mismatch");
      }
    } else if (spec.in_bits != spec.w_bits) {
      throw SimError("kernels assume in_bits == w_bits (PULP-NN convention)");
    } else if (is_8bit() ? (spec.out_bits != 8 || spec.in_bits != 8)
                         : (spec.out_bits != 4 && spec.out_bits != 2)) {
      throw SimError("variant/bitwidth mismatch");
    }
    if (shuffle_unpack() && spec.w_bits != 4) {
      throw SimError("the shuffle-unpack ablation supports 4-bit only");
    }
    if ((spec.in_c * static_cast<int>(in_bits())) % 32 != 0) {
      throw SimError("input channel block must be word-aligned");
    }
    if (opts.pixel_block != 1 && opts.pixel_block != 2) {
      throw SimError("pixel_block must be 1 or 2");
    }
    if (two_pixels() && spec.out_w() % 2 != 0) {
      throw SimError("4x2 blocking requires an even output width");
    }
    const int ch_group = out_bits() == 2 ? 4 : 2;
    if (spec.out_c % ch_group != 0) {
      throw SimError("output channels must be a multiple of the pack group");
    }
    if (ch_begin() % ch_group != 0 || (ch_end() - ch_begin()) % ch_group != 0 ||
        ch_end() <= ch_begin()) {
      throw SimError("channel tile must be a non-empty multiple of the pack group");
    }

    // Phase regions for the profiler. Creation order is attribution
    // priority (later wins on overlap): the quantization staircase is
    // emitted *inside* the matmul subroutine and must attribute to
    // "quant", so "quant" is created after "matmul".
    regions.region("matmul");
    regions.region("quant");
    regions.region("im2col");

    // Mixed kernels select the virtual operand formats once at entry; the
    // CSR value then governs every pv.mlsdot* in the program.
    if (is_mixed()) {
      a.csrrwi(r::zero, isa::kMpcCsr, mixed_sel_for(in_bits(), spec.w_bits));
    }

    const Label main = a.new_label();
    a.jal(r::zero, main);  // entry: skip the subroutine

    const Label matmul = a.here();
    const addr_t matmul_lo = a.current_addr();
    emit_matmul_subroutine();
    regions.add_range("matmul", matmul_lo, a.current_addr());

    a.bind(main);
    const int step = opts.pixel_block;
    const int row_begin = std::clamp(opts.row_begin, 0, spec.out_h());
    const int row_end =
        opts.row_end < 0 ? spec.out_h() : std::min(opts.row_end, spec.out_h());
    for (int oy = row_begin; oy < row_end; ++oy) {
      for (int ox = 0; ox < spec.out_w(); ox += step) {
        addr_t im2col_lo = a.current_addr();
        emit_im2col(oy, ox, buf0_addr());
        regions.add_range("im2col", im2col_lo, a.current_addr());
        a.li(r::s1, static_cast<i32>(output_pixel_addr(oy, ox)));
        if (two_pixels()) {
          im2col_lo = a.current_addr();
          emit_im2col(oy, ox + 1, buf1_addr());
          regions.add_range("im2col", im2col_lo, a.current_addr());
          a.li(r::s2, static_cast<i32>(output_pixel_addr(oy, ox + 1)));
        }
        a.jal(r::ra, matmul);
      }
    }
    a.halt();

    xasm::Program prog = a.finish();
    if (prog.base() + prog.size_bytes() > lay.input) {
      throw SimError("generated code overlaps the data region");
    }
    if (opts.buffer_slot < 0 || opts.buffer_slot >= opts.buffer_slots) {
      throw SimError("buffer_slot out of range");
    }
    return ConvKernel{std::move(prog), lay, std::move(quant_ranges),
                      std::move(regions)};
  }
};

}  // namespace

ConvKernel generate_conv_kernel(const qnn::ConvSpec& spec, ConvVariant v,
                                addr_t data_base,
                                const ConvGenOptions& opts) {
  Gen g(spec, v, data_base, opts);
  return g.generate();
}

}  // namespace xpulp::kernels
