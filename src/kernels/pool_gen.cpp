#include "kernels/pool_gen.hpp"

#include "common/error.hpp"
#include "qnn/pack.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::kernels {

namespace {

namespace r = xasm::reg;
using isa::Mnemonic;
using isa::SimdFmt;
using xasm::Assembler;

SimdFmt fmt_for(unsigned bits) {
  switch (bits) {
    case 8: return SimdFmt::kB;
    case 4: return SimdFmt::kN;
    case 2: return SimdFmt::kC;
    default: throw SimError("unsupported pooling width");
  }
}

Mnemonic op_for(PoolOp op) {
  return op == PoolOp::kMax ? Mnemonic::kPvMaxu : Mnemonic::kPvAvgu;
}

/// Unpack word `src` (packed `bits`-wide codes) into byte-words dst[0..n-1].
void emit_unpack(Assembler& a, unsigned bits, u8 src, const std::vector<u8>& dst,
                 u8 tmp) {
  for (unsigned ow = 0; ow < dst.size(); ++ow) {
    for (unsigned j = 0; j < 4; ++j) {
      a.p_extractu(tmp, src, bits, (ow * 4 + j) * bits);
      a.p_insert(dst[ow], tmp, 8, j * 8);
    }
  }
}

/// Re-pack byte-words src[0..n-1] into `dst` as `bits`-wide codes.
void emit_repack(Assembler& a, unsigned bits, const std::vector<u8>& src,
                 u8 dst, u8 tmp) {
  for (unsigned ow = 0; ow < src.size(); ++ow) {
    for (unsigned j = 0; j < 4; ++j) {
      a.p_extractu(tmp, src[ow], bits, j * 8);  // low bits of each byte
      a.p_insert(dst, tmp, bits, (ow * 4 + j) * bits);
    }
  }
}

}  // namespace

PoolKernel generate_pool2x2_kernel(const qnn::Shape& s, unsigned bits,
                                   PoolOp op, bool native_subbyte) {
  if (s.h % 2 || s.w % 2 || (s.c * static_cast<int>(bits)) % 32 != 0) {
    throw SimError("pool2x2: bad shape for packed processing");
  }
  const u32 pix_bytes = static_cast<u32>(s.c) * bits / 8;
  const u32 pix_words = pix_bytes / 4;
  const addr_t in_base = 0x40000;
  const addr_t out_base =
      in_base + ((static_cast<u32>(s.elems()) * bits / 8 + 15) & ~15u);

  const SimdFmt f = fmt_for(bits);
  const unsigned sub_words = (32 / bits) / 4;  // byte-words per packed word

  Assembler a(0);
  auto pixel_addr = [&](int y, int x) {
    return in_base + static_cast<u32>(y * s.w + x) * pix_bytes;
  };

  a.li(r::t3, static_cast<i32>(out_base));  // output cursor (post-inc)
  for (int y = 0; y < s.h / 2; ++y) {
    for (int x = 0; x < s.w / 2; ++x) {
      for (u32 w = 0; w < pix_words; ++w) {
        const i32 off = static_cast<i32>(w * 4);
        a.li(r::t0, static_cast<i32>(pixel_addr(2 * y, 2 * x) + off));
        a.li(r::t1, static_cast<i32>(pixel_addr(2 * y, 2 * x + 1) + off));
        a.lw(r::a0, r::t0, 0);
        a.lw(r::a1, r::t1, 0);
        a.li(r::t0, static_cast<i32>(pixel_addr(2 * y + 1, 2 * x) + off));
        a.li(r::t1, static_cast<i32>(pixel_addr(2 * y + 1, 2 * x + 1) + off));
        a.lw(r::a2, r::t0, 0);
        a.lw(r::a3, r::t1, 0);
        if (native_subbyte) {
          a.pv_op(op_for(op), f, r::a0, r::a0, r::a1);
          a.pv_op(op_for(op), f, r::a2, r::a2, r::a3);
          a.pv_op(op_for(op), f, r::a0, r::a0, r::a2);
          a.p_sw_post(r::a0, r::t3, 4);
        } else {
          // Baseline: unpack all four sources to bytes, pool at 8-bit,
          // re-pack — the packing tax again.
          std::vector<u8> u0, u1, u2, u3;
          const std::vector<u8> pool{r::a4, r::a5, r::a6, r::a7,
                                     r::s0, r::s1, r::s2, r::s3,
                                     r::s4, r::s5, r::s6, r::s7,
                                     r::s8, r::s9, r::s10, r::s11};
          size_t k = 0;
          for (unsigned i = 0; i < sub_words; ++i) u0.push_back(pool[k++]);
          for (unsigned i = 0; i < sub_words; ++i) u1.push_back(pool[k++]);
          for (unsigned i = 0; i < sub_words; ++i) u2.push_back(pool[k++]);
          for (unsigned i = 0; i < sub_words; ++i) u3.push_back(pool[k++]);
          emit_unpack(a, bits, r::a0, u0, r::t4);
          emit_unpack(a, bits, r::a1, u1, r::t4);
          emit_unpack(a, bits, r::a2, u2, r::t4);
          emit_unpack(a, bits, r::a3, u3, r::t4);
          for (unsigned i = 0; i < sub_words; ++i) {
            a.pv_op(op_for(op), SimdFmt::kB, u0[i], u0[i], u1[i]);
            a.pv_op(op_for(op), SimdFmt::kB, u2[i], u2[i], u3[i]);
            a.pv_op(op_for(op), SimdFmt::kB, u0[i], u0[i], u2[i]);
          }
          emit_repack(a, bits, u0, r::t5, r::t4);
          a.p_sw_post(r::t5, r::t3, 4);
        }
      }
    }
  }
  a.halt();

  return PoolKernel{a.finish(), in_base, out_base};
}

PoolRunResult run_pool2x2(const qnn::Tensor& in, unsigned bits, PoolOp op,
                          const sim::CoreConfig& cfg) {
  const qnn::Shape s = in.shape();
  const bool native_subbyte = (bits == 8) || cfg.xpulpnn;
  PoolKernel k = generate_pool2x2_kernel(s, bits, op, native_subbyte);
  const addr_t in_base = k.in_base;
  const addr_t out_base = k.out_base;
  xasm::Program& prog = k.program;

  mem::Memory mem;
  if (prog.size_bytes() > in_base) throw SimError("pool kernel too large");
  prog.load(mem);
  mem.write_block(in_base, qnn::pack_tensor(in, bits));

  sim::Core core(mem, cfg);
  core.reset(prog.entry(), prog.base() + prog.size_bytes());
  if (core.run() != sim::HaltReason::kEcall) {
    throw SimError("pool kernel did not complete");
  }

  const qnn::Shape os{s.h / 2, s.w / 2, s.c};
  std::vector<u8> out_bytes(qnn::packed_bytes(os.elems(), bits));
  mem.read_block(out_base, out_bytes);

  PoolRunResult res;
  res.output = qnn::unpack_tensor(out_bytes, os, bits, /*is_signed=*/false);
  res.perf = core.perf();
  return res;
}

}  // namespace xpulp::kernels
