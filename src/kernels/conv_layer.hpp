// Convolution-layer kernel generation and execution on the simulated cores.
//
// Four kernel variants mirror the configurations benchmarked in the paper:
//   kXpulpV2_8b   — 8-bit kernel using XpulpV2 (runs identically on the
//                   baseline RI5CY and the extended core);
//   kXpulpV2_Sub  — 4/2-bit kernel for the *baseline* RI5CY: operands are
//                   stored packed (quantization as memory compression) but
//                   the ISA tops out at 8-bit SIMD, so weights are unpacked
//                   element-wise in the inner loop and activations are
//                   unpacked to bytes during im2col; outputs are re-packed
//                   with bit-manipulation ops; staircase quantization runs
//                   in software;
//   kXpulpNN_SwQ  — 4/2-bit kernel using the XpulpNN sub-byte SIMD dot
//                   products but software (binary-tree) quantization — the
//                   first variant of Fig. 6;
//   kXpulpNN_HwQ  — full XpulpNN kernel with pv.qnt — the second variant of
//                   Fig. 6 and the headline configuration of Figs. 7-9.
//
// The generator plays the role of the compiler: output-pixel loops are
// specialized at generation time (padding patterns are baked per position),
// the channel loop and the dot-product loop execute at run time using
// hardware loops and post-increment addressing, exactly like the PULP-NN
// matrix-multiplication inner kernel (4 accumulators = 2 filters x 2
// output pixels).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/region.hpp"
#include "qnn/ref_layers.hpp"
#include "sim/core.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::kernels {

enum class ConvVariant {
  kXpulpV2_8b,
  kXpulpV2_Sub,
  /// Ablation: like kXpulpV2_Sub but weights are unpacked with a
  /// pv.shuffle + shift sequence (3 ops per byte-vector) instead of
  /// per-element p.extract/p.insert — the best a baseline XpulpV2 kernel
  /// could plausibly do. 4-bit only.
  kXpulpV2_SubShf,
  kXpulpNN_SwQ,
  kXpulpNN_HwQ,
  /// Mixed-precision virtual-SIMD kernel: activations in_bits (8 or 4)
  /// wide, weights w_bits (4 or 2) wide, pv.mlsdotusp inner loop with the
  /// operand formats selected by the mpc CSR (written once in the kernel
  /// prologue). Weights are packed lane-aligned grouped (one word per
  /// activation word). Outputs: 8-bit scale path or 4/2-bit pv.qnt.
  kXpulpNN_Mixed,
};

/// mpc selector for an (in_bits, w_bits) pair; throws SimError if the pair
/// is not one of (8,4), (8,2), (4,2).
u32 mixed_sel_for(unsigned in_bits, unsigned w_bits);

const char* variant_name(ConvVariant v);

/// Host-side layer data (input codes, signed weights, per-channel
/// thresholds for sub-byte outputs).
struct ConvLayerData {
  qnn::ConvSpec spec;
  qnn::Tensor input;
  qnn::FilterBank weights;
  qnn::LayerThresholds thresholds;  // empty for 8-bit outputs

  /// Deterministic synthetic data with ranges chosen so sub-byte
  /// accumulators fit the 16-bit pre-activation constraint.
  static ConvLayerData random(const qnn::ConvSpec& spec, u64 seed);

  /// Golden output via the reference layers.
  qnn::Tensor golden() const;
};

/// Guest memory placement of one layer.
struct ConvMemLayout {
  addr_t code = 0;
  addr_t input = 0;
  addr_t weights = 0;
  addr_t thresholds = 0;
  addr_t buf0 = 0;  // im2col buffer, output pixel 0
  addr_t buf1 = 0;  // im2col buffer, output pixel 1
  addr_t output = 0;
  u32 filter_stride = 0;  // bytes between packed filters
  u32 buf_bytes = 0;      // size of one im2col buffer
  u32 output_bytes = 0;

  /// `buffer_slots` reserves im2col buffer pairs for that many cores.
  static ConvMemLayout plan(const qnn::ConvSpec& spec, ConvVariant v,
                            addr_t data_base, int buffer_slots = 1);

  /// Byte offset between consecutive buffer slots.
  u32 buffer_slot_stride() const { return ((buf_bytes + 15u) & ~15u) * 2; }
};

/// A generated kernel: the program plus instrumentation metadata.
struct ConvKernel {
  xasm::Program program;
  ConvMemLayout layout;
  /// PC ranges [lo, hi) of re-quantization code, for cycle attribution
  /// (Fig. 6 reports the quantization share of total cycles).
  std::vector<std::pair<addr_t, addr_t>> quant_ranges;
  /// Named phase regions ("im2col", "matmul", "quant") for the profiler;
  /// the quant ranges above are also registered here.
  obs::RegionMap regions;
};

/// Generator knobs for the ablation studies (DESIGN.md §7). Defaults
/// reproduce the PULP-NN kernel structure used in the paper.
struct ConvGenOptions {
  /// Use XpulpV2 zero-overhead hardware loops for the dot-product loop;
  /// when false, a decrement-and-branch loop quantifies their benefit.
  bool use_hwloops = true;
  /// Output pixels computed per matmul pass: 2 = the PULP-NN 4x2 blocking
  /// (2 filters x 2 pixels), 1 = a 2x1 kernel that reloads weights twice
  /// as often per output.
  int pixel_block = 2;

  // ---- multi-core partitioning (src/cluster) ----
  /// Where this core's program is placed.
  addr_t code_base = 0;
  /// Output-row slice [row_begin, row_end) this program computes; -1 =
  /// all rows.
  int row_begin = 0;
  int row_end = -1;
  /// Total im2col buffer slots reserved in the layout and the slot this
  /// program uses (one slot per core).
  int buffer_slots = 1;
  int buffer_slot = 0;

  // ---- weight streaming (src/soc µDMA double buffering) ----
  /// Output-channel tile [ch_begin, ch_end) this program computes; -1 =
  /// all channels.
  int ch_begin = 0;
  int ch_end = -1;
  /// When nonzero, the matmul reads weights from this TCDM address (a DMA
  /// tile buffer holding the tile's filters back to back) instead of the
  /// layout's resident weight region.
  addr_t weights_base_override = 0;
  /// Use a caller-provided memory layout instead of planning one (weight
  /// streaming shrinks the resident weight region to the ping-pong
  /// buffer). Must outlive the generate call.
  const ConvMemLayout* layout = nullptr;
};

/// Generate the kernel program for a layer/variant. `data_base` is where
/// the planner starts placing tensors; code is placed at address 0.
ConvKernel generate_conv_kernel(const qnn::ConvSpec& spec, ConvVariant v,
                                addr_t data_base = 0x40000,
                                const ConvGenOptions& opts = {});

/// Result of running a generated kernel on a core.
struct ConvRunResult {
  qnn::Tensor output;
  sim::PerfCounters perf;
  sim::DotpActivity activity;  // dot-product-unit switching, for the power model
  mem::MemStats mem_stats;
  cycles_t quant_cycles = 0;  // cycles attributed to re-quantization code
  u32 code_bytes = 0;
  u64 macs = 0;

  double macs_per_cycle() const {
    return perf.cycles ? static_cast<double>(macs) / static_cast<double>(perf.cycles) : 0.0;
  }
};

/// Pack and write a layer's tensors (input, weights, thresholds) into
/// guest memory at the layout's addresses and reset the memory stats.
void load_conv_data(const ConvLayerData& data, const ConvMemLayout& layout,
                    mem::Memory& mem);

/// Load data + kernel into a fresh memory image and run to completion on a
/// core with the given configuration. Throws SimError on guest faults.
ConvRunResult run_conv_layer(const ConvLayerData& data, ConvVariant v,
                             const sim::CoreConfig& cfg,
                             const ConvGenOptions& opts = {});

/// True if `v` is legal on a core configuration (sub-byte XpulpNN variants
/// need cfg.xpulpnn).
bool variant_supported(ConvVariant v, const sim::CoreConfig& cfg);

}  // namespace xpulp::kernels
