#include "kernels/gp_workload.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "xasm/assembler.hpp"

namespace xpulp::kernels {

namespace {

namespace r = xasm::reg;
constexpr addr_t kDataBase = 0x40000;
constexpr u32 kLcgMul = 1103515245u;
constexpr u32 kLcgAdd = 12345u;
constexpr u32 kFibIters = 24;

u32 host_checksum(u32 elements, u32 seed) {
  std::vector<u32> v(elements);
  u32 x = seed;
  for (auto& e : v) {
    x = x * kLcgMul + kLcgAdd;
    e = x;
  }
  std::sort(v.begin(), v.end());  // guest uses insertion sort, same result
  u32 sum = 0;
  for (const u32 e : v) sum = sum * 31u + e;
  u32 fa = 0, fb = 1;
  for (u32 i = 0; i < kFibIters; ++i) {
    const u32 fc = fa + fb;
    fa = fb;
    fb = fc;
    sum += fc;
  }
  return sum;
}

}  // namespace

GpWorkload make_gp_workload(u32 elements, u32 seed) {
  xasm::Assembler a(0);
  const addr_t result_addr = kDataBase + elements * 4 + 16;

  // ---- phase 1: LCG fill (mul/add/store) ----
  a.li(r::a0, static_cast<i32>(kDataBase));
  a.li(r::a1, static_cast<i32>(elements));
  a.li(r::t0, static_cast<i32>(seed));
  a.li(r::t3, static_cast<i32>(kLcgMul));
  a.li(r::t4, static_cast<i32>(kLcgAdd));
  a.mv(r::t2, r::a0);
  a.li(r::t1, 0);
  {
    const auto loop = a.here();
    a.mul(r::t0, r::t0, r::t3);
    a.add(r::t0, r::t0, r::t4);
    a.p_sw_post(r::t0, r::t2, 4);
    a.addi(r::t1, r::t1, 1);
    a.blt(r::t1, r::a1, loop);
  }

  // ---- phase 2: insertion sort (branch- and memory-heavy) ----
  a.li(r::t1, 1);  // i
  {
    const auto outer = a.here();
    a.slli(r::t2, r::t1, 2);
    a.add(r::t2, r::a0, r::t2);
    a.lw(r::t3, r::t2, 0);      // key = a[i]
    a.addi(r::t4, r::t1, -1);   // j
    const auto inner = a.new_label();
    const auto done = a.new_label();
    a.bind(inner);
    a.blt(r::t4, r::zero, done);
    a.slli(r::t5, r::t4, 2);
    a.add(r::t5, r::a0, r::t5);
    a.lw(r::t6, r::t5, 0);      // a[j]
    a.bgeu(r::t3, r::t6, done);
    a.sw(r::t6, r::t5, 4);      // a[j+1] = a[j]
    a.addi(r::t4, r::t4, -1);
    a.j(inner);
    a.bind(done);
    a.addi(r::t4, r::t4, 1);
    a.slli(r::t5, r::t4, 2);
    a.add(r::t5, r::a0, r::t5);
    a.sw(r::t3, r::t5, 0);      // a[j+1] = key
    a.addi(r::t1, r::t1, 1);
    a.blt(r::t1, r::a1, outer);
  }

  // ---- phase 3: polynomial checksum + Fibonacci ----
  a.li(r::s0, 0);
  a.mv(r::t2, r::a0);
  a.li(r::t1, 0);
  {
    const auto loop = a.here();
    a.p_lw_post(r::t3, r::t2, 4);
    a.slli(r::t4, r::s0, 5);
    a.sub(r::s0, r::t4, r::s0);  // s0 *= 31
    a.add(r::s0, r::s0, r::t3);
    a.addi(r::t1, r::t1, 1);
    a.blt(r::t1, r::a1, loop);
  }
  a.li(r::t5, 0);
  a.li(r::t6, 1);
  a.li(r::t1, 0);
  a.li(r::t2, static_cast<i32>(kFibIters));
  {
    const auto loop = a.here();
    a.add(r::t4, r::t5, r::t6);
    a.mv(r::t5, r::t6);
    a.mv(r::t6, r::t4);
    a.add(r::s0, r::s0, r::t4);
    a.addi(r::t1, r::t1, 1);
    a.blt(r::t1, r::t2, loop);
  }
  a.li(r::t0, static_cast<i32>(result_addr));
  a.sw(r::s0, r::t0, 0);
  a.halt();

  GpWorkload w{a.finish(), result_addr, host_checksum(elements, seed),
               elements};
  return w;
}

GpRunResult run_gp_workload(const GpWorkload& w, const sim::CoreConfig& cfg) {
  mem::Memory mem;
  w.program.load(mem);
  sim::Core core(mem, cfg);
  core.reset(w.program.entry(), w.program.base() + w.program.size_bytes());
  if (core.run() != sim::HaltReason::kEcall) {
    throw SimError("GP workload did not complete");
  }
  return GpRunResult{core.perf(), mem.load_u32(w.result_addr)};
}

}  // namespace xpulp::kernels
