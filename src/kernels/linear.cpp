#include "kernels/linear.hpp"

namespace xpulp::kernels {

LinearLayerData LinearLayerData::random(int in_features, int out_features,
                                        unsigned bits, u64 seed) {
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 1;
  spec.k_h = spec.k_w = 1;
  spec.pad = 0;
  spec.in_c = in_features;
  spec.out_c = out_features;
  spec.in_bits = spec.w_bits = spec.out_bits = bits;

  const ConvLayerData conv = ConvLayerData::random(spec, seed);
  LinearLayerData d;
  d.spec = conv.spec;
  d.input = conv.input;
  d.weights = conv.weights;
  d.thresholds = conv.thresholds;
  return d;
}

LinearLayerData LinearLayerData::random_mixed(int in_features,
                                              int out_features,
                                              unsigned in_bits,
                                              unsigned w_bits,
                                              unsigned out_bits, u64 seed) {
  mixed_sel_for(in_bits, w_bits);  // throws on unsupported pair
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 1;
  spec.k_h = spec.k_w = 1;
  spec.pad = 0;
  spec.in_c = in_features;
  spec.out_c = out_features;
  spec.in_bits = in_bits;
  spec.w_bits = w_bits;
  spec.out_bits = out_bits;

  const ConvLayerData conv = ConvLayerData::random(spec, seed);
  LinearLayerData d;
  d.spec = conv.spec;
  d.input = conv.input;
  d.weights = conv.weights;
  d.thresholds = conv.thresholds;
  return d;
}

ConvLayerData LinearLayerData::as_conv() const {
  ConvLayerData c;
  c.spec = spec;
  c.input = input;
  c.weights = weights;
  c.thresholds = thresholds;
  return c;
}

qnn::Tensor LinearLayerData::golden() const {
  if (spec.out_bits == 8) return qnn::conv2d_ref_u8(input, weights, spec);
  return qnn::linear_ref(input, weights, thresholds);
}

ConvRunResult run_linear_layer(const LinearLayerData& data, ConvVariant v,
                               const sim::CoreConfig& cfg) {
  ConvGenOptions opts;
  opts.pixel_block = 1;  // single output position
  return run_conv_layer(data.as_conv(), v, cfg, opts);
}

}  // namespace xpulp::kernels
