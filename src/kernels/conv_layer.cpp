#include "kernels/conv_layer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "qnn/pack.hpp"

namespace xpulp::kernels {

const char* variant_name(ConvVariant v) {
  switch (v) {
    case ConvVariant::kXpulpV2_8b: return "xpulpv2-8b";
    case ConvVariant::kXpulpV2_Sub: return "xpulpv2-subbyte";
    case ConvVariant::kXpulpV2_SubShf: return "xpulpv2-subbyte-shuffle";
    case ConvVariant::kXpulpNN_SwQ: return "xpulpnn-swquant";
    case ConvVariant::kXpulpNN_HwQ: return "xpulpnn-hwquant";
    case ConvVariant::kXpulpNN_Mixed: return "xpulpnn-mixed";
  }
  return "?";
}

u32 mixed_sel_for(unsigned in_bits, unsigned w_bits) {
  for (u32 sel = 0; sel < isa::kMpcSelCount; ++sel) {
    if (isa::mixed_width_a(sel) == in_bits &&
        isa::mixed_width_b(sel) == w_bits) {
      return sel;
    }
  }
  throw SimError("no mpc selector for " + std::to_string(in_bits) + "x" +
                 std::to_string(w_bits) + " operands");
}

bool variant_supported(ConvVariant v, const sim::CoreConfig& cfg) {
  switch (v) {
    case ConvVariant::kXpulpV2_8b:
    case ConvVariant::kXpulpV2_Sub:
    case ConvVariant::kXpulpV2_SubShf:
      return cfg.xpulpv2;
    case ConvVariant::kXpulpNN_SwQ:
    case ConvVariant::kXpulpNN_HwQ:
    case ConvVariant::kXpulpNN_Mixed:
      return cfg.xpulpv2 && cfg.xpulpnn;
  }
  return false;
}

namespace {

constexpr addr_t align16(addr_t a) { return (a + 15u) & ~15u; }

unsigned inner_iterations(const qnn::ConvSpec& s, ConvVariant v) {
  // Mixed kernels consume one *activation* word per iteration (the weight
  // word covers the same 32/in_bits lanes); uniform kernels consume one
  // weight word.
  const unsigned per_iter =
      32 / (v == ConvVariant::kXpulpNN_Mixed ? s.in_bits : s.w_bits);
  return (static_cast<unsigned>(s.filter_elems()) + per_iter - 1) / per_iter;
}

// Weight range per width: full two's-complement range except 4-bit, where
// we stay symmetric to keep accumulators comfortably inside int16.
std::pair<i32, i32> weight_range(unsigned bits) {
  switch (bits) {
    case 8: return {-100, 100};
    case 4: return {-7, 7};
    case 2: return {-2, 1};
    default: throw SimError("unsupported weight width");
  }
}

}  // namespace

ConvMemLayout ConvMemLayout::plan(const qnn::ConvSpec& spec, ConvVariant v,
                                  addr_t data_base, int buffer_slots) {
  ConvMemLayout l;
  l.code = 0;
  l.filter_stride =
      v == ConvVariant::kXpulpNN_Mixed
          ? qnn::packed_filter_stride_grouped(spec.filter_elems(),
                                              spec.in_bits)
          : qnn::packed_filter_stride(spec.filter_elems(), spec.w_bits);

  const unsigned iters = inner_iterations(spec, v);
  const bool unpacked_buf = (v == ConvVariant::kXpulpV2_Sub ||
                             v == ConvVariant::kXpulpV2_SubShf);
  l.buf_bytes = unpacked_buf ? iters * (32 / spec.w_bits) : iters * 4;

  addr_t cursor = align16(data_base);
  l.input = cursor;
  cursor = align16(cursor + qnn::packed_bytes(spec.in_h * spec.in_w * spec.in_c,
                                              spec.in_bits));
  l.weights = cursor;
  cursor = align16(cursor + l.filter_stride * static_cast<u32>(spec.out_c));
  l.thresholds = cursor;
  if (spec.out_bits != 8) {
    cursor = align16(cursor + (1u << spec.out_bits) * 2u *
                                  static_cast<u32>(spec.out_c));
  }
  l.buf0 = cursor;
  cursor = align16(cursor + l.buf_bytes);
  l.buf1 = cursor;
  cursor = align16(cursor + l.buf_bytes);
  // Additional slots for the remaining cores of a cluster.
  cursor += l.buffer_slot_stride() * static_cast<u32>(buffer_slots - 1);
  l.output = cursor;
  l.output_bytes = qnn::packed_bytes(
      spec.out_h() * spec.out_w() * spec.out_c, spec.out_bits);
  return l;
}

ConvLayerData ConvLayerData::random(const qnn::ConvSpec& spec, u64 seed) {
  Rng rng(seed);
  ConvLayerData d;
  d.spec = spec;

  d.input = qnn::Tensor({spec.in_h, spec.in_w, spec.in_c});
  const i32 act_max = static_cast<i32>((1u << spec.in_bits) - 1);
  for (int i = 0; i < d.input.elems(); ++i) {
    d.input.flat(i) = rng.uniform(0, act_max);
  }

  d.weights = qnn::FilterBank(spec.out_c, {spec.k_h, spec.k_w, spec.in_c});
  const auto [wlo, whi] = weight_range(spec.w_bits);
  for (auto& w : d.weights.data()) w = rng.uniform(wlo, whi);

  if (spec.out_bits == 8) {
    // Pick the requantization shift so the largest accumulator maps near
    // the top of the 8-bit output range.
    i32 max_acc = 1;
    for (int oy = 0; oy < spec.out_h(); ++oy) {
      for (int ox = 0; ox < spec.out_w(); ++ox) {
        for (int oc = 0; oc < spec.out_c; ++oc) {
          max_acc = std::max(
              max_acc, qnn::conv_accumulate(d.input, d.weights, spec, oy, ox, oc));
        }
      }
    }
    u32 shift = 0;
    while ((max_acc >> shift) > 255) ++shift;
    d.spec.requant_shift = shift;
    return d;
  }

  // Per-channel thresholds from accumulator quantiles: this is what trained
  // thresholds (absorbing bias + batchnorm) look like, and it exercises
  // every output code.
  std::vector<qnn::Thresholds> per_channel;
  per_channel.reserve(static_cast<size_t>(spec.out_c));
  const int n_pos = spec.out_h() * spec.out_w();
  const int levels = 1 << spec.out_bits;
  for (int oc = 0; oc < spec.out_c; ++oc) {
    std::vector<i32> accs(static_cast<size_t>(n_pos));
    for (int oy = 0; oy < spec.out_h(); ++oy) {
      for (int ox = 0; ox < spec.out_w(); ++ox) {
        const i32 acc =
            qnn::conv_accumulate(d.input, d.weights, spec, oy, ox, oc);
        if (acc < -32768 || acc > 32767) {
          throw SimError("accumulator exceeds 16-bit pre-activation range");
        }
        accs[static_cast<size_t>(oy * spec.out_w() + ox)] = acc;
      }
    }
    std::sort(accs.begin(), accs.end());
    std::vector<i16> th(static_cast<size_t>(levels - 1));
    i32 prev = std::numeric_limits<i32>::min();
    for (int i = 1; i < levels; ++i) {
      const size_t idx = std::min<size_t>(
          accs.size() - 1, static_cast<size_t>(i) * accs.size() / levels);
      i32 t = accs[idx];
      if (t <= prev) t = prev + 1;
      t = std::clamp<i32>(t, -32768, 32767);
      if (t <= prev) t = prev;  // saturated top: duplicates are harmless
      th[static_cast<size_t>(i - 1)] = static_cast<i16>(t);
      prev = t;
    }
    // Restore ascending order if clamping flattened the top (duplicates at
    // the extremes are tolerated by the tree walk; see thresholds tests).
    for (int i = levels - 3; i >= 0; --i) {
      if (th[static_cast<size_t>(i)] > th[static_cast<size_t>(i + 1)]) {
        th[static_cast<size_t>(i)] = th[static_cast<size_t>(i + 1)];
      }
    }
    per_channel.emplace_back(spec.out_bits, std::move(th));
  }
  d.thresholds = qnn::LayerThresholds(spec.out_bits, std::move(per_channel));
  return d;
}

namespace {

/// Shared tail of run_conv_layer: halt check, output unpack, stats.
ConvRunResult finish_conv_run(sim::Core& core, mem::Memory& mem,
                              const ConvKernel& kernel,
                              const qnn::ConvSpec& spec, ConvRunResult& res) {
  if (core.halt_reason() != sim::HaltReason::kEcall) {
    throw SimError("kernel stopped for an unexpected reason");
  }

  std::vector<u8> out_bytes(kernel.layout.output_bytes);
  mem.read_block(kernel.layout.output, out_bytes);
  res.output = qnn::unpack_tensor(
      out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
      /*is_signed=*/false);
  res.perf = core.perf();
  res.activity = core.dotp_unit().activity();
  res.mem_stats = mem.stats();
  res.code_bytes = kernel.program.size_bytes();
  res.macs = spec.macs();
  return res;
}

}  // namespace

qnn::Tensor ConvLayerData::golden() const {
  if (spec.out_bits == 8) {
    return qnn::conv2d_ref_u8(input, weights, spec);
  }
  return qnn::conv2d_ref(input, weights, thresholds, spec);
}

void load_conv_data(const ConvLayerData& data, const ConvMemLayout& layout,
                    mem::Memory& mem) {
  const qnn::ConvSpec& spec = data.spec;
  const auto in_bytes = qnn::pack_tensor(data.input, spec.in_bits);
  mem.write_block(layout.input, in_bytes);
  // Mixed-precision layers (in_bits != w_bits; only the kXpulpNN_Mixed
  // variant accepts them) store weights lane-aligned grouped so one weight
  // word covers one activation word. Uniform layers pack flat.
  const auto w_bytes =
      spec.in_bits != spec.w_bits
          ? qnn::pack_filter_bank_grouped(data.weights, spec.in_bits,
                                          spec.w_bits)
          : qnn::pack_filter_bank(data.weights, spec.w_bits);
  mem.write_block(layout.weights, w_bytes);
  if (spec.out_bits != 8) {
    const auto t_bytes = data.thresholds.serialize();
    mem.write_block(layout.thresholds, t_bytes);
  }
  mem.reset_stats();
}

ConvRunResult run_conv_layer(const ConvLayerData& data, ConvVariant v,
                             const sim::CoreConfig& cfg,
                             const ConvGenOptions& opts) {
  if (!variant_supported(v, cfg)) {
    throw SimError(std::string("variant ") + variant_name(v) +
                   " is not supported by core " + cfg.name);
  }
  const qnn::ConvSpec& spec = data.spec;
  ConvKernel kernel = generate_conv_kernel(spec, v, 0x40000, opts);

  mem::Memory mem;
  kernel.program.load(mem);
  load_conv_data(data, kernel.layout, mem);

  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  ConvRunResult res;
  const u64 max_instr = 600'000'000;

  if (kernel.quant_ranges.empty()) {
    // No quantization ranges to attribute: run untraced (zero profiling
    // overhead on the fast path).
    core.run(max_instr);
    if (core.halt_reason() == sim::HaltReason::kInstrLimit) {
      throw SimError("kernel did not terminate");
    }
    return finish_conv_run(core, mem, kernel, spec, res);
  }

  // Attribute cycles spent in re-quantization code via the profiler
  // (Fig. 6 reports the quantization share). Attribution is identical to
  // stepping manually and diffing the cycle counter around each
  // quant-range instruction: the hook fires before an instruction's
  // stalls are charged, so each counter delta covers exactly one
  // instruction.
  {
    obs::Profiler::Options popts;
    popts.track_pc = false;  // only the region split is needed here
    obs::Profiler prof(core, kernel.regions, popts);
    core.run(max_instr);
    if (core.halt_reason() == sim::HaltReason::kInstrLimit) {
      throw SimError("kernel did not terminate");
    }
    prof.finalize();
    for (const obs::RegionStat& r : prof.region_stats()) {
      if (r.name == "quant") res.quant_cycles += r.stat.cycles;
    }
  }
  return finish_conv_run(core, mem, kernel, spec, res);
}

}  // namespace xpulp::kernels
