// Sequential QNN network runner: chain convolution, pooling, and
// fully-connected layers on a simulated core, with per-layer statistics
// and bit-exact golden checking. This is the API a model-deployment flow
// would target (the per-layer structure mirrors how PULP-NN networks are
// scheduled layer by layer out of L1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernels/conv_layer.hpp"
#include "kernels/pool_gen.hpp"

namespace xpulp::kernels {

struct LayerStats {
  std::string name;
  qnn::Shape out_shape;
  cycles_t cycles = 0;
  u64 macs = 0;
  bool matched_golden = false;
};

struct NetworkResult {
  qnn::Tensor output;
  std::vector<LayerStats> layers;
  cycles_t total_cycles = 0;
  u64 total_macs = 0;
  bool all_matched = true;
};

/// Per-layer precision descriptor for mixed-precision networks (Ottavi's
/// deployment model): the layer's weight width and the width of the
/// activations it produces. The input width is whatever the previous layer
/// emitted; when it differs from `w_bits`, the layer runs on the mixed
/// virtual-SIMD kernel (kXpulpNN_Mixed) regardless of the variant passed
/// to run(), and (in_bits, w_bits) must be one of the mpc pairs.
struct LayerPrecision {
  unsigned w_bits;
  unsigned out_bits;
};

/// A feed-forward stack of quantized layers. Weights/thresholds are
/// generated per layer: random weights, thresholds at the accumulator
/// quantiles of the layer's *actual* input (what threshold training
/// produces). Build once, then run() against any core configuration.
class Network {
 public:
  /// `bits` applies to every tensor in the network (uniform quantization,
  /// as in the paper's benchmarks) until a layer overrides it with a
  /// LayerPrecision.
  Network(qnn::Shape input_shape, unsigned bits, u64 seed);

  /// Append a convolution: `out_c` filters of k x k, stride 1, `pad`,
  /// uniform at the current activation width.
  Network& conv(int out_c, int k = 3, int pad = 1);
  /// Append a convolution with an explicit per-layer precision.
  Network& conv(int out_c, int k, int pad, LayerPrecision p);
  /// Append 2x2/stride-2 max or average pooling.
  Network& maxpool();
  Network& avgpool();
  /// Append a fully-connected layer (flattens the current shape).
  Network& linear(int out_features);
  /// Append a fully-connected layer with an explicit per-layer precision.
  Network& linear(int out_features, LayerPrecision p);

  qnn::Shape output_shape() const { return shape_; }
  int layer_count() const { return static_cast<int>(plan_.size()); }
  /// Width of the activations the last appended layer produces.
  unsigned activation_bits() const { return cur_bits_; }

  /// Run the whole network on-device for `input` (unsigned codes of the
  /// declared shape). Each layer's device output is checked against the
  /// golden model of that layer; the golden pipeline continues from the
  /// device output so a single mismatch cannot cascade silently.
  NetworkResult run(const qnn::Tensor& input, const sim::CoreConfig& cfg,
                    ConvVariant variant = ConvVariant::kXpulpNN_HwQ) const;

 private:
  struct Step {
    enum class Kind { kConv, kMaxPool, kAvgPool, kLinear } kind;
    qnn::ConvSpec spec;   // conv / linear geometry (incl. per-layer widths)
    unsigned bits = 8;    // activation width at this step (pool layers)
    u64 seed;
    std::string name;
  };

  unsigned bits_;
  unsigned cur_bits_;  // activation width flowing out of the last layer
  u64 seed_;
  qnn::Shape shape_;  // evolves as layers are appended
  std::vector<Step> plan_;
};

}  // namespace xpulp::kernels
