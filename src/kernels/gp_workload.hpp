// General-purpose mixed workload used for the Table III "GP application"
// power row: a blend of loads/stores, control flow, and scalar arithmetic
// (no SIMD), verifying that the extended core runs general-purpose code in
// the same power envelope as the baseline.
#pragma once

#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::kernels {

struct GpWorkload {
  xasm::Program program;
  addr_t result_addr;   // word the program writes its checksum to
  u32 expected_checksum;
  u32 element_count;
};

/// Build the workload: seed an array with an LCG, insertion-sort it, then
/// fold a checksum over the sorted data and the Fibonacci sequence.
GpWorkload make_gp_workload(u32 elements = 96, u32 seed = 0x13579bdf);

struct GpRunResult {
  sim::PerfCounters perf;
  u32 checksum;
};

/// Run on a core configuration and return perf counters + the checksum.
GpRunResult run_gp_workload(const GpWorkload& w, const sim::CoreConfig& cfg);

}  // namespace xpulp::kernels
