// Pooling kernel generators — exercise the SIMD max/avg instructions that
// XpulpNN extends to nibble/crumb formats (paper §III-A: "SIMD maximum,
// minimum, and average instructions ... speed up the average/maximum
// pooling QNN layers").
//
// With the HWC layout, a 2x2/stride-2 pooling window reduces four packed
// channel blocks element-wise, so the whole window is processed with
// word-wide pv.maxu / pv.avgu at the native element width — one SIMD op
// per 32/Q channels. On the baseline core, sub-byte feature maps must be
// unpacked to bytes, pooled at 8-bit, and re-packed.
#pragma once

#include "qnn/tensor.hpp"
#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::kernels {

enum class PoolOp { kMax, kAvg };

struct PoolRunResult {
  qnn::Tensor output;
  sim::PerfCounters perf;
};

/// A generated pooling program plus its data-layout plan.
struct PoolKernel {
  xasm::Program program;
  addr_t in_base = 0;
  addr_t out_base = 0;
};

/// Generate (without running) the 2x2/stride-2 pooling kernel for shape
/// `s`. `native_subbyte` selects word-wide sub-byte SIMD (XpulpNN path);
/// otherwise the kernel unpacks to bytes, pools at 8-bit, and re-packs.
/// Exposed so the static analyzer (tools/xlint) can verify the generated
/// code without executing it.
PoolKernel generate_pool2x2_kernel(const qnn::Shape& s, unsigned bits,
                                   PoolOp op, bool native_subbyte);

/// Run a 2x2/stride-2 pooling layer over `in` (unsigned codes, `bits` wide,
/// H and W even, (c*bits) % 32 == 0) on a simulated core. Uses sub-byte
/// SIMD when the core supports XpulpNN, otherwise unpack/pool/repack.
PoolRunResult run_pool2x2(const qnn::Tensor& in, unsigned bits, PoolOp op,
                          const sim::CoreConfig& cfg);

}  // namespace xpulp::kernels
