// Fully-connected (linear) layer kernels — the other layer type the paper
// names ("convolution or linear layers", §III-A). A linear layer is the
// degenerate convolution with a 1x1x(in_features) input and 1x1 filters,
// so the generator reuses the matmul machinery in 2x1 blocking (a single
// output "pixel").
#pragma once

#include "kernels/conv_layer.hpp"

namespace xpulp::kernels {

struct LinearLayerData {
  qnn::ConvSpec spec;  // in_h == in_w == k_h == k_w == 1
  qnn::Tensor input;   // 1 x 1 x in_features
  qnn::FilterBank weights;
  qnn::LayerThresholds thresholds;

  /// Synthetic data; in_features * bits must be word-aligned,
  /// out_features a multiple of 2 (4 for 2-bit outputs).
  static LinearLayerData random(int in_features, int out_features,
                                unsigned bits, u64 seed);

  /// Mixed-precision synthetic data: activations `in_bits` wide, weights
  /// `w_bits` wide, outputs `out_bits` wide. (in_bits, w_bits) must be one
  /// of the mpc pairs (8,4), (8,2), (4,2); run with kXpulpNN_Mixed.
  static LinearLayerData random_mixed(int in_features, int out_features,
                                      unsigned in_bits, unsigned w_bits,
                                      unsigned out_bits, u64 seed);

  qnn::Tensor golden() const;

  /// View as convolution-layer data for the shared machinery.
  ConvLayerData as_conv() const;
};

/// Run on a simulated core; output is a 1 x 1 x out_features tensor of
/// unsigned codes, bit-exact vs golden().
ConvRunResult run_linear_layer(const LinearLayerData& data, ConvVariant v,
                               const sim::CoreConfig& cfg);

}  // namespace xpulp::kernels
