#include "armv7e/arm_core.hpp"

#include "common/bitops.hpp"

namespace xpulp::armv7e {

namespace {

i32 half(u32 v, unsigned idx) {
  return sign_extend((v >> (16 * idx)) & 0xffffu, 16);
}

u32 extend_b16(u32 v, bool ror8, bool sign) {
  if (ror8) v = rotr32(v, 8);
  const u32 b0 = v & 0xffu;
  const u32 b2 = (v >> 16) & 0xffu;
  const u32 h0 = sign ? (static_cast<u32>(sign_extend(b0, 8)) & 0xffffu) : b0;
  const u32 h1 = sign ? (static_cast<u32>(sign_extend(b2, 8)) & 0xffffu) : b2;
  return h0 | (h1 << 16);
}

}  // namespace

bool ArmCore::cond_holds(AOp op) const {
  switch (op) {
    case AOp::kB: return true;
    case AOp::kBeq: return flags_.z;
    case AOp::kBne: return !flags_.z;
    case AOp::kBlt: return flags_.n != flags_.v;
    case AOp::kBge: return flags_.n == flags_.v;
    case AOp::kBgt: return !flags_.z && flags_.n == flags_.v;
    case AOp::kBle: return flags_.z || flags_.n != flags_.v;
    case AOp::kBlo: return !flags_.c;
    case AOp::kBhs: return flags_.c;
    default: return false;
  }
}

u32 ArmCore::exec(const AInstr& in) {
  const u32 next = pc_ + 1;
  const u32 rn = regs_[in.rn & 15];
  const u32 rm = regs_[in.rm & 15];
  auto wr = [&](u32 v) { regs_[in.rd & 15] = v; };

  switch (in.op) {
    case AOp::kNop: break;
    case AOp::kMovReg: wr(rn); break;
    case AOp::kMovImm: wr(static_cast<u32>(in.imm)); break;
    case AOp::kMovTopImm:
      wr((regs_[in.rd & 15] & 0xffffu) | (static_cast<u32>(in.imm) << 16));
      break;
    case AOp::kAddReg: wr(rn + rm); break;
    case AOp::kAddImm: wr(rn + static_cast<u32>(in.imm)); break;
    case AOp::kSubReg: wr(rn - rm); break;
    case AOp::kSubImm: wr(rn - static_cast<u32>(in.imm)); break;
    case AOp::kRsbImm: wr(static_cast<u32>(in.imm) - rn); break;
    case AOp::kAndReg: wr(rn & rm); break;
    case AOp::kAndImm: wr(rn & static_cast<u32>(in.imm)); break;
    case AOp::kOrrReg: wr(rn | rm); break;
    case AOp::kOrrImm: wr(rn | static_cast<u32>(in.imm)); break;
    case AOp::kEorReg: wr(rn ^ rm); break;
    case AOp::kBicReg: wr(rn & ~rm); break;
    case AOp::kLslImm: wr(rn << (in.imm & 31)); break;
    case AOp::kLslReg: wr(rn << (rm & 31)); break;
    case AOp::kLsrImm: wr(rn >> (in.imm & 31)); break;
    case AOp::kAsrImm:
      wr(static_cast<u32>(static_cast<i32>(rn) >> (in.imm & 31)));
      break;
    case AOp::kRorImm: wr(rotr32(rn, static_cast<unsigned>(in.imm))); break;
    case AOp::kMul: wr(rn * rm); break;
    case AOp::kMla: wr(regs_[in.ra & 15] + rn * rm); break;
    // DSP MACs: products fit 32 bits (16x16); the accumulation wraps in
    // two's complement, so compute it in unsigned arithmetic (no UB).
    case AOp::kSmlad:
      wr(regs_[in.ra & 15] + static_cast<u32>(half(rn, 0) * half(rm, 0)) +
         static_cast<u32>(half(rn, 1) * half(rm, 1)));
      break;
    case AOp::kSmuad:
      wr(static_cast<u32>(half(rn, 0) * half(rm, 0)) +
         static_cast<u32>(half(rn, 1) * half(rm, 1)));
      break;
    case AOp::kSmlabb:
      wr(regs_[in.ra & 15] + static_cast<u32>(half(rn, 0) * half(rm, 0)));
      break;
    case AOp::kSxtb16: wr(extend_b16(rn, false, true)); break;
    case AOp::kSxtb16Ror8: wr(extend_b16(rn, true, true)); break;
    case AOp::kUxtb16: wr(extend_b16(rn, false, false)); break;
    case AOp::kUxtb16Ror8: wr(extend_b16(rn, true, false)); break;
    case AOp::kPkhbt: wr((rn & 0xffffu) | (rm << 16)); break;
    case AOp::kPkhtb: wr((rn & 0xffff0000u) | (rm >> 16)); break;
    case AOp::kSsat:
      wr(static_cast<u32>(sat_signed(static_cast<i32>(rn), static_cast<unsigned>(in.imm))));
      break;
    case AOp::kUsat:
      wr(sat_unsigned(static_cast<i32>(rn), static_cast<unsigned>(in.imm)));
      break;
    case AOp::kSbfx:
      wr(static_cast<u32>(sign_extend(rn >> in.imm, in.imm2)));
      break;
    case AOp::kUbfx: wr(zero_extend(rn >> in.imm, in.imm2)); break;
    case AOp::kBfi:
      wr(insert_bits(regs_[in.rd & 15], rn, static_cast<unsigned>(in.imm),
                     in.imm2));
      break;

    case AOp::kLdr: case AOp::kLdrh: case AOp::kLdrsh:
    case AOp::kLdrb: case AOp::kLdrsb: {
      const addr_t base = rn;
      const addr_t addr = in.wb ? base : base + static_cast<u32>(in.imm);
      unsigned size = 4;
      if (in.op == AOp::kLdrh || in.op == AOp::kLdrsh) size = 2;
      if (in.op == AOp::kLdrb || in.op == AOp::kLdrsb) size = 1;
      u32 v = mem_.load(addr, size);
      mem_.access_cycles(addr, size, false);
      if (in.op == AOp::kLdrsh) v = static_cast<u32>(sign_extend(v, 16));
      if (in.op == AOp::kLdrsb) v = static_cast<u32>(sign_extend(v, 8));
      wr(v);
      if (in.wb) regs_[in.rn & 15] = base + static_cast<u32>(in.imm);
      ++perf_.loads;
      break;
    }
    case AOp::kStr: case AOp::kStrh: case AOp::kStrb: {
      const addr_t base = rn;
      const addr_t addr = in.wb ? base : base + static_cast<u32>(in.imm);
      unsigned size = 4;
      if (in.op == AOp::kStrh) size = 2;
      if (in.op == AOp::kStrb) size = 1;
      mem_.store(addr, regs_[in.rd & 15], size);
      mem_.access_cycles(addr, size, true);
      if (in.wb) regs_[in.rn & 15] = base + static_cast<u32>(in.imm);
      ++perf_.stores;
      break;
    }

    case AOp::kCmpReg: case AOp::kCmpImm: {
      const u32 b = (in.op == AOp::kCmpReg) ? rm : static_cast<u32>(in.imm);
      const u32 res = rn - b;
      flags_.n = (res >> 31) != 0;
      flags_.z = res == 0;
      flags_.c = rn >= b;
      flags_.v = (((rn ^ b) & (rn ^ res)) >> 31) != 0;
      break;
    }

    case AOp::kB: case AOp::kBeq: case AOp::kBne: case AOp::kBlt:
    case AOp::kBge: case AOp::kBgt: case AOp::kBle: case AOp::kBlo:
    case AOp::kBhs:
      if (cond_holds(in.op)) return in.target;
      break;
    case AOp::kBl:
      regs_[14] = next;
      return in.target;
    case AOp::kBxLr:
      return regs_[14];
    case AOp::kHalt:
      halted_ = true;
      break;
  }
  return next;
}

unsigned ArmCore::m4_cost(const AInstr& in, bool taken) const {
  if (in.is(aflag::kLoad)) return 2;
  if (in.op == AOp::kBl || in.op == AOp::kBxLr) return 3;
  if (in.is(aflag::kBranch)) return taken ? 3 : 1;
  return 1;
}

bool ArmCore::m7_pairable(const AInstr& a, const AInstr& b) const {
  if ((a.aflags | b.aflags) & aflag::kBranch) return false;
  const bool mem_a = a.is(aflag::kLoad | aflag::kStore);
  const bool mem_b = b.is(aflag::kLoad | aflag::kStore);
  if (mem_a && mem_b) return false;
  if (a.is(aflag::kMac) && b.is(aflag::kMac)) return false;
  // RAW dependency: b reads a's destination (incl. post-index base update).
  const u8 dest = a.dest;
  const u8 wb_dest = ((mem_a && a.wb) ? a.rn : u8{255});
  auto reads = [&](u8 r) {
    if (r == 255) return false;
    if (b.rn == r || b.rm == r || b.ra == r) return true;
    // Stores read rd as data; BFI reads rd as background.
    if ((b.is(aflag::kStore) || b.op == AOp::kBfi ||
         b.op == AOp::kMovTopImm) &&
        b.rd == r) {
      return true;
    }
    return false;
  };
  if (reads(dest) || reads(wb_dest)) return false;
  // WAW on the same destination register also blocks pairing.
  if (dest != 255 && dest == b.dest) return false;
  return true;
}

void ArmCore::run(u64 max_instructions) {
  u64 executed = 0;
  while (!halted_) {
    if (pc_ >= prog_.size()) throw SimError("ARM pc out of program");
    const AInstr& in = prog_[pc_];
    const u32 prev_pc = pc_;
    const u32 next = exec(in);
    const bool taken = in.is(aflag::kBranch) && next != prev_pc + 1;
    if (taken) ++perf_.taken_branches;
    if (in.is(aflag::kMac)) ++perf_.macs;
    ++perf_.instructions;

    if (model_ == ArmModel::kCortexM4) {
      perf_.cycles += m4_cost(in, taken);
      pc_ = next;
    } else {
      // M7 dual issue: attempt to pair with the fall-through successor.
      if (!halted_ && !in.is(aflag::kBranch) && next == prev_pc + 1 &&
          next < prog_.size() && m7_pairable(in, prog_[next])) {
        const AInstr& in2 = prog_[next];
        pc_ = next;  // exec() derives the fall-through pc from pc_
        const u32 next2 = exec(in2);
        const bool taken2 = in2.is(aflag::kBranch) && next2 != next + 1;
        if (taken2) ++perf_.taken_branches;
        if (in2.is(aflag::kMac)) ++perf_.macs;
        ++perf_.instructions;
        ++perf_.dual_issued_pairs;
        perf_.cycles += 1;
        pc_ = next2;
        ++executed;
      } else {
        perf_.cycles += aop_is_branch(in.op) ? (taken ? 2 : 1) : 1;
        pc_ = next;
      }
    }
    if (++executed > max_instructions) {
      throw SimError("ARM instruction budget exceeded");
    }
  }
}

}  // namespace xpulp::armv7e
