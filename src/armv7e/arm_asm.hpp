// Tiny programmatic builder for ArmCore programs (labels resolve to
// instruction indexes at finish()).
#pragma once

#include <vector>

#include "armv7e/arm_isa.hpp"
#include "common/error.hpp"

namespace xpulp::armv7e {

class ArmAsm {
 public:
  using Label = u32;

  Label new_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }
  void bind(Label l) {
    if (labels_[l] != kUnbound) throw AsmError("arm label bound twice");
    labels_[l] = static_cast<i64>(prog_.size());
  }
  Label here() {
    const Label l = new_label();
    bind(l);
    return l;
  }

  // Data processing.
  void mov(u8 rd, u8 rn) { emit({AOp::kMovReg, rd, rn}); }
  /// Materialize a 32-bit constant; emits MOVW (+ MOVT when needed).
  void mov_imm(u8 rd, u32 v) {
    emit({AOp::kMovImm, rd, 0, 0, 0, static_cast<i32>(v & 0xffffu)});
    if (v >> 16) emit({AOp::kMovTopImm, rd, 0, 0, 0, static_cast<i32>(v >> 16)});
  }
  void add(u8 rd, u8 rn, u8 rm) { emit({AOp::kAddReg, rd, rn, rm}); }
  void add_imm(u8 rd, u8 rn, i32 imm) { emit({AOp::kAddImm, rd, rn, 0, 0, imm}); }
  void sub(u8 rd, u8 rn, u8 rm) { emit({AOp::kSubReg, rd, rn, rm}); }
  void sub_imm(u8 rd, u8 rn, i32 imm) { emit({AOp::kSubImm, rd, rn, 0, 0, imm}); }
  void and_imm(u8 rd, u8 rn, i32 imm) { emit({AOp::kAndImm, rd, rn, 0, 0, imm}); }
  void orr(u8 rd, u8 rn, u8 rm) { emit({AOp::kOrrReg, rd, rn, rm}); }
  void lsl_imm(u8 rd, u8 rn, i32 sh) { emit({AOp::kLslImm, rd, rn, 0, 0, sh}); }
  void lsr_imm(u8 rd, u8 rn, i32 sh) { emit({AOp::kLsrImm, rd, rn, 0, 0, sh}); }
  void asr_imm(u8 rd, u8 rn, i32 sh) { emit({AOp::kAsrImm, rd, rn, 0, 0, sh}); }
  void mul(u8 rd, u8 rn, u8 rm) { emit({AOp::kMul, rd, rn, rm}); }
  void mla(u8 rd, u8 rn, u8 rm, u8 ra) { emit({AOp::kMla, rd, rn, rm, ra}); }
  void smlad(u8 rd, u8 rn, u8 rm, u8 ra) { emit({AOp::kSmlad, rd, rn, rm, ra}); }
  void smuad(u8 rd, u8 rn, u8 rm) { emit({AOp::kSmuad, rd, rn, rm}); }
  void smlabb(u8 rd, u8 rn, u8 rm, u8 ra) { emit({AOp::kSmlabb, rd, rn, rm, ra}); }
  void nop() { emit({AOp::kNop}); }
  void sxtb16(u8 rd, u8 rn) { emit({AOp::kSxtb16, rd, rn}); }
  void sxtb16_ror8(u8 rd, u8 rn) { emit({AOp::kSxtb16Ror8, rd, rn}); }
  void uxtb16(u8 rd, u8 rn) { emit({AOp::kUxtb16, rd, rn}); }
  void uxtb16_ror8(u8 rd, u8 rn) { emit({AOp::kUxtb16Ror8, rd, rn}); }
  void pkhbt(u8 rd, u8 rn, u8 rm) { emit({AOp::kPkhbt, rd, rn, rm}); }
  void pkhtb(u8 rd, u8 rn, u8 rm) { emit({AOp::kPkhtb, rd, rn, rm}); }
  void ssat(u8 rd, u8 rn, u32 bits) { emit({AOp::kSsat, rd, rn, 0, 0, static_cast<i32>(bits)}); }
  void usat(u8 rd, u8 rn, u32 bits) { emit({AOp::kUsat, rd, rn, 0, 0, static_cast<i32>(bits)}); }
  void sbfx(u8 rd, u8 rn, u32 lsb, u32 width) {
    emit({AOp::kSbfx, rd, rn, 0, 0, static_cast<i32>(lsb), static_cast<u8>(width)});
  }
  void ubfx(u8 rd, u8 rn, u32 lsb, u32 width) {
    emit({AOp::kUbfx, rd, rn, 0, 0, static_cast<i32>(lsb), static_cast<u8>(width)});
  }
  void bfi(u8 rd, u8 rn, u32 lsb, u32 width) {
    emit({AOp::kBfi, rd, rn, 0, 0, static_cast<i32>(lsb), static_cast<u8>(width)});
  }

  // Memory. *_post variants post-index the base register by `imm`.
  void ldr(u8 rd, u8 rn, i32 off = 0) { emit({AOp::kLdr, rd, rn, 0, 0, off}); }
  void str(u8 rd, u8 rn, i32 off = 0) { emit({AOp::kStr, rd, rn, 0, 0, off}); }
  void strh(u8 rd, u8 rn, i32 off = 0) { emit({AOp::kStrh, rd, rn, 0, 0, off}); }
  void strb(u8 rd, u8 rn, i32 off = 0) { emit({AOp::kStrb, rd, rn, 0, 0, off}); }
  void ldr_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kLdr, rd, rn, 0, 0, inc, 0, true}); }
  void ldrh_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kLdrh, rd, rn, 0, 0, inc, 0, true}); }
  void ldrsh(u8 rd, u8 rn, i32 off = 0) { emit({AOp::kLdrsh, rd, rn, 0, 0, off}); }
  void ldrsh_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kLdrsh, rd, rn, 0, 0, inc, 0, true}); }
  void ldrb_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kLdrb, rd, rn, 0, 0, inc, 0, true}); }
  void str_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kStr, rd, rn, 0, 0, inc, 0, true}); }
  void strh_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kStrh, rd, rn, 0, 0, inc, 0, true}); }
  void strb_post(u8 rd, u8 rn, i32 inc) { emit({AOp::kStrb, rd, rn, 0, 0, inc, 0, true}); }

  // Control flow.
  void cmp(u8 rn, u8 rm) { emit({AOp::kCmpReg, 0, rn, rm}); }
  void cmp_imm(u8 rn, i32 imm) { emit({AOp::kCmpImm, 0, rn, 0, 0, imm}); }
  void b(AOp cond, Label t) { emit_branch(cond, t); }
  void b(Label t) { emit_branch(AOp::kB, t); }
  void bl(Label t) { emit_branch(AOp::kBl, t); }
  void bx_lr() { emit({AOp::kBxLr}); }
  void halt() { emit({AOp::kHalt}); }

  std::vector<AInstr> finish() {
    for (const auto& [idx, label] : fixups_) {
      if (labels_[label] == kUnbound) throw AsmError("unbound arm label");
      prog_[idx].target = static_cast<u32>(labels_[label]);
    }
    return std::move(prog_);
  }

  size_t size() const { return prog_.size(); }

 private:
  static constexpr i64 kUnbound = -1;

  void emit(AInstr in) { prog_.push_back(in); }
  void emit_branch(AOp op, Label t) {
    fixups_.emplace_back(static_cast<u32>(prog_.size()), t);
    AInstr in;
    in.op = op;
    prog_.push_back(in);
  }

  std::vector<AInstr> prog_;
  std::vector<i64> labels_;
  std::vector<std::pair<u32, Label>> fixups_;
};

}  // namespace xpulp::armv7e
