// Interpreter for the ARMv7E-M subset with Cortex-M4 and Cortex-M7 timing
// models, standing in for the paper's STM32L476 / STM32H743 boards.
//
// Timing (documented constants; Cortex-M4/M7 TRM figures):
//   M4 (single issue): ALU/DSP 1 cycle; LDR 2 (pipelined: consecutive
//     independent loads 1 extra each); STR 1 (write buffer); MUL/MLA/SMLAD
//     1; taken branch 3 (pipeline refill), not-taken 1; BL/BX 3.
//   M7 (dual issue, 6-stage): modelled as in-order pairing — two
//     consecutive instructions issue together when neither is a branch, at
//     most one touches memory, at most one is a MAC, and the second does
//     not read the first's destination. Loads satisfied in 1 cycle (DTCM),
//     taken branches cost 2 (BTB hit assumed).
#pragma once

#include <array>
#include <vector>

#include "armv7e/arm_isa.hpp"
#include "common/error.hpp"
#include "mem/memory.hpp"

namespace xpulp::armv7e {

enum class ArmModel { kCortexM4, kCortexM7 };

struct ArmPerf {
  cycles_t cycles = 0;
  u64 instructions = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 macs = 0;
  u64 taken_branches = 0;
  u64 dual_issued_pairs = 0;  // M7 only
};

class ArmCore {
 public:
  ArmCore(mem::Memory& mem, ArmModel model) : mem_(mem), model_(model) {}

  void load_program(std::vector<AInstr> prog) {
    prog_ = std::move(prog);
    for (AInstr& in : prog_) annotate(in);  // pack predicate results once
    reset();
  }

  void reset() {
    regs_.fill(0);
    regs_[13] = mem_.size();  // sp
    pc_ = 0;
    halted_ = false;
    flags_ = {};
    perf_ = ArmPerf{};
  }

  u32 reg(unsigned r) const { return regs_[r & 15]; }
  void set_reg(unsigned r, u32 v) { regs_[r & 15] = v; }
  bool halted() const { return halted_; }
  const ArmPerf& perf() const { return perf_; }
  ArmModel model() const { return model_; }

  /// Run to kHalt; throws SimError if the instruction budget is exceeded.
  void run(u64 max_instructions = 600'000'000);

 private:
  struct Flags {
    bool n = false, z = false, c = false, v = false;
  };

  /// Functionally execute one instruction; returns the next pc.
  u32 exec(const AInstr& in);
  bool cond_holds(AOp op) const;
  unsigned m4_cost(const AInstr& in, bool taken) const;
  bool m7_pairable(const AInstr& a, const AInstr& b) const;

  mem::Memory& mem_;
  ArmModel model_;
  std::vector<AInstr> prog_;
  std::array<u32, 16> regs_{};
  u32 pc_ = 0;
  bool halted_ = false;
  Flags flags_;
  ArmPerf perf_;
};

}  // namespace xpulp::armv7e
