#include "armv7e/arm_disasm.hpp"

#include <array>
#include <sstream>

namespace xpulp::armv7e {

namespace {
constexpr std::array<std::string_view, 16> kNames = {
    "r0", "r1", "r2", "r3", "r4",  "r5", "r6", "r7",
    "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};
}

std::string_view arm_reg_name(unsigned r) { return kNames[r & 15u]; }

std::string arm_disassemble(const AInstr& in) {
  std::ostringstream os;
  const auto rd = arm_reg_name(in.rd);
  const auto rn = arm_reg_name(in.rn);
  const auto rm = arm_reg_name(in.rm);
  const auto ra = arm_reg_name(in.ra);
  os << aop_name(in.op);
  switch (in.op) {
    case AOp::kNop:
    case AOp::kBxLr:
    case AOp::kHalt:
      break;
    case AOp::kMovReg:
      os << ' ' << rd << ", " << rn;
      break;
    case AOp::kMovImm:
    case AOp::kMovTopImm:
      os << ' ' << rd << ", #" << in.imm;
      break;
    case AOp::kAddImm: case AOp::kSubImm: case AOp::kRsbImm:
    case AOp::kAndImm: case AOp::kOrrImm:
    case AOp::kLslImm: case AOp::kLsrImm: case AOp::kAsrImm:
    case AOp::kRorImm:
      os << ' ' << rd << ", " << rn << ", #" << in.imm;
      break;
    case AOp::kSsat: case AOp::kUsat:
      os << ' ' << rd << ", #" << in.imm << ", " << rn;
      break;
    case AOp::kSbfx: case AOp::kUbfx: case AOp::kBfi:
      os << ' ' << rd << ", " << rn << ", #" << in.imm << ", #"
         << static_cast<int>(in.imm2);
      break;
    case AOp::kMla: case AOp::kSmlad: case AOp::kSmlabb:
      os << ' ' << rd << ", " << rn << ", " << rm << ", " << ra;
      break;
    case AOp::kSxtb16: case AOp::kSxtb16Ror8:
    case AOp::kUxtb16: case AOp::kUxtb16Ror8:
      os << ' ' << rd << ", " << rn;
      break;
    case AOp::kLdr: case AOp::kLdrh: case AOp::kLdrsh:
    case AOp::kLdrb: case AOp::kLdrsb:
    case AOp::kStr: case AOp::kStrh: case AOp::kStrb:
      if (in.wb) {
        os << ' ' << rd << ", [" << rn << "], #" << in.imm;
      } else {
        os << ' ' << rd << ", [" << rn << ", #" << in.imm << ']';
      }
      break;
    case AOp::kCmpReg:
      os << ' ' << rn << ", " << rm;
      break;
    case AOp::kCmpImm:
      os << ' ' << rn << ", #" << in.imm;
      break;
    case AOp::kB: case AOp::kBeq: case AOp::kBne: case AOp::kBlt:
    case AOp::kBge: case AOp::kBgt: case AOp::kBle: case AOp::kBlo:
    case AOp::kBhs: case AOp::kBl:
      os << " @" << in.target;
      break;
    default:  // three-register data processing
      os << ' ' << rd << ", " << rn << ", " << rm;
      break;
  }
  return os.str();
}

}  // namespace xpulp::armv7e
