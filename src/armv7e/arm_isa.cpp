#include "armv7e/arm_isa.hpp"

namespace xpulp::armv7e {

std::string_view aop_name(AOp op) {
  switch (op) {
    case AOp::kNop: return "nop";
    case AOp::kMovReg: return "mov";
    case AOp::kMovImm: return "movw";
    case AOp::kMovTopImm: return "movt";
    case AOp::kAddReg: case AOp::kAddImm: return "add";
    case AOp::kSubReg: case AOp::kSubImm: return "sub";
    case AOp::kRsbImm: return "rsb";
    case AOp::kAndReg: case AOp::kAndImm: return "and";
    case AOp::kOrrReg: case AOp::kOrrImm: return "orr";
    case AOp::kEorReg: return "eor";
    case AOp::kBicReg: return "bic";
    case AOp::kLslImm: case AOp::kLslReg: return "lsl";
    case AOp::kLsrImm: return "lsr";
    case AOp::kAsrImm: return "asr";
    case AOp::kRorImm: return "ror";
    case AOp::kMul: return "mul";
    case AOp::kMla: return "mla";
    case AOp::kSmlad: return "smlad";
    case AOp::kSmuad: return "smuad";
    case AOp::kSmlabb: return "smlabb";
    case AOp::kSxtb16: return "sxtb16";
    case AOp::kSxtb16Ror8: return "sxtb16,ror#8";
    case AOp::kUxtb16: return "uxtb16";
    case AOp::kUxtb16Ror8: return "uxtb16,ror#8";
    case AOp::kPkhbt: return "pkhbt";
    case AOp::kPkhtb: return "pkhtb";
    case AOp::kSsat: return "ssat";
    case AOp::kUsat: return "usat";
    case AOp::kSbfx: return "sbfx";
    case AOp::kUbfx: return "ubfx";
    case AOp::kBfi: return "bfi";
    case AOp::kLdr: return "ldr";
    case AOp::kLdrh: return "ldrh";
    case AOp::kLdrsh: return "ldrsh";
    case AOp::kLdrb: return "ldrb";
    case AOp::kLdrsb: return "ldrsb";
    case AOp::kStr: return "str";
    case AOp::kStrh: return "strh";
    case AOp::kStrb: return "strb";
    case AOp::kCmpReg: case AOp::kCmpImm: return "cmp";
    case AOp::kB: return "b";
    case AOp::kBeq: return "beq";
    case AOp::kBne: return "bne";
    case AOp::kBlt: return "blt";
    case AOp::kBge: return "bge";
    case AOp::kBgt: return "bgt";
    case AOp::kBle: return "ble";
    case AOp::kBlo: return "blo";
    case AOp::kBhs: return "bhs";
    case AOp::kBl: return "bl";
    case AOp::kBxLr: return "bx lr";
    case AOp::kHalt: return "halt";
  }
  return "?";
}

bool aop_is_load(AOp op) {
  switch (op) {
    case AOp::kLdr: case AOp::kLdrh: case AOp::kLdrsh:
    case AOp::kLdrb: case AOp::kLdrsb:
      return true;
    default:
      return false;
  }
}

bool aop_is_store(AOp op) {
  return op == AOp::kStr || op == AOp::kStrh || op == AOp::kStrb;
}

bool aop_is_branch(AOp op) {
  switch (op) {
    case AOp::kB: case AOp::kBeq: case AOp::kBne: case AOp::kBlt:
    case AOp::kBge: case AOp::kBgt: case AOp::kBle: case AOp::kBlo:
    case AOp::kBhs: case AOp::kBl: case AOp::kBxLr: case AOp::kHalt:
      return true;
    default:
      return false;
  }
}

bool aop_is_mac(AOp op) {
  switch (op) {
    case AOp::kMul: case AOp::kMla: case AOp::kSmlad: case AOp::kSmuad:
    case AOp::kSmlabb:
      return true;
    default:
      return false;
  }
}

u8 aop_dest(const AInstr& in) {
  if (aop_is_store(in.op) || aop_is_branch(in.op) || in.op == AOp::kCmpReg ||
      in.op == AOp::kCmpImm || in.op == AOp::kNop) {
    return 255;
  }
  return in.rd;
}

void annotate(AInstr& in) {
  in.aflags = static_cast<u8>((aop_is_load(in.op) ? aflag::kLoad : 0) |
                              (aop_is_store(in.op) ? aflag::kStore : 0) |
                              (aop_is_branch(in.op) ? aflag::kBranch : 0) |
                              (aop_is_mac(in.op) ? aflag::kMac : 0));
  in.dest = aop_dest(in);
}

}  // namespace xpulp::armv7e
