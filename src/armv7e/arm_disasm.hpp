// Disassembler for the structural ARMv7E-M instruction records.
#pragma once

#include <string>

#include "armv7e/arm_isa.hpp"

namespace xpulp::armv7e {

/// ARM register name ("r0".."r12", "sp", "lr", "pc").
std::string_view arm_reg_name(unsigned r);

/// Render one instruction; `index` resolves branch targets.
std::string arm_disassemble(const AInstr& in);

}  // namespace xpulp::armv7e
