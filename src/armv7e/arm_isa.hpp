// Structural model of the ARMv7E-M subset that CMSIS-NN convolution kernels
// use. This is a *substitution* for the paper's STM32 boards (DESIGN.md §2):
// instructions are held as decoded records (no Thumb-2 binary encoding) and
// executed by an interpreter with Cortex-M4 (single-issue) and Cortex-M7
// (dual-issue) timing models. Semantics follow the ARMv7-M ARM: SMLAD is a
// dual 16x16 MAC, SXTB16/UXTB16 extend bytes 0 and 2 (optionally after a
// rotate), PKHBT/PKHTB pack halfwords, SSAT/USAT saturate.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace xpulp::armv7e {

enum class AOp : u16 {
  kNop = 0,
  // data processing (rd, rn, rm) or (rd, rn, imm)
  kMovReg, kMovImm,     // MOVW/MOVT pairs are emitted by the builder
  kMovTopImm,           // MOVT: rd[31:16] = imm
  kAddReg, kAddImm,
  kSubReg, kSubImm,
  kRsbImm,
  kAndReg, kAndImm, kOrrReg, kOrrImm, kEorReg, kBicReg,
  kLslImm, kLslReg, kLsrImm, kAsrImm, kRorImm,
  kMul, kMla,
  // DSP extension
  kSmlad,   // rd = ra + rn.h0*rm.h0 + rn.h1*rm.h1
  kSmuad,   // rd = rn.h0*rm.h0 + rn.h1*rm.h1
  kSmlabb,  // rd = ra + rn.h0 * rm.h0
  kSxtb16, kSxtb16Ror8, kUxtb16, kUxtb16Ror8,
  kPkhbt,   // rd = (rm.h0 << 16) | rn.h0
  kPkhtb,   // rd = (rn.h1 << 16) | rm.h1
  kSsat,    // rd = signed_sat(rn, imm bits)
  kUsat,    // rd = unsigned_sat(rn, imm bits)
  kSbfx, kUbfx,  // rd = extract(rn, lsb=imm, width=imm2)
  kBfi,          // rd[lsb+w-1:lsb] = rn
  // memory: imm offset (imm), optional post-index writeback (wb)
  kLdr, kLdrh, kLdrsh, kLdrb, kLdrsb,
  kStr, kStrh, kStrb,
  // control flow: target = instruction index
  kCmpReg, kCmpImm,
  kB, kBeq, kBne, kBlt, kBge, kBgt, kBle, kBlo, kBhs,
  kBl,     // call: lr = next index
  kBxLr,   // return
  kHalt,
};

std::string_view aop_name(AOp op);

/// Packed classification flags, precomputed per instruction when a program
/// is loaded so the timing models read one byte instead of re-running the
/// aop_* predicate switches every executed instruction.
namespace aflag {
inline constexpr u8 kLoad = 1u << 0;
inline constexpr u8 kStore = 1u << 1;
inline constexpr u8 kBranch = 1u << 2;
inline constexpr u8 kMac = 1u << 3;
}  // namespace aflag

struct AInstr {
  AOp op = AOp::kNop;
  u8 rd = 0, rn = 0, rm = 0, ra = 0;
  i32 imm = 0;
  u8 imm2 = 0;      // second immediate (bitfield width)
  bool wb = false;  // post-index writeback for memory ops
  u32 target = 0;   // branch target (instruction index)

  // Derived fields filled by annotate() (ArmCore::load_program).
  u8 aflags = 0;    // aflag:: bits
  u8 dest = 255;    // register written (255 = none), == aop_dest()

  bool is(u8 f) const { return (aflags & f) != 0; }
};

bool aop_is_load(AOp op);
bool aop_is_store(AOp op);
bool aop_is_branch(AOp op);
bool aop_is_mac(AOp op);

/// Destination register written by the instruction (255 = none).
u8 aop_dest(const AInstr& in);

/// Fill the derived AInstr fields from the aop_* predicates. Idempotent;
/// defined to agree exactly with the predicate functions.
void annotate(AInstr& in);

}  // namespace xpulp::armv7e
