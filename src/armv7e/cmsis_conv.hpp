// CMSIS-NN-style quantized convolution kernels for the ARMv7E-M model —
// the paper's Fig. 8/9 comparison points (STM32L476 / Cortex-M4 and
// STM32H743 / Cortex-M7 running the "extended CMSIS-NN" of [12]).
//
// Kernel shape follows arm_convolve_HWC_q7 + arm_nn_mat_mult_kernel:
//   - im2col expands activations into an int16 (q15) column buffer
//     (CMSIS-NN convention; for sub-byte inputs this is where the unpack
//     tax is paid on ARM);
//   - the matrix multiplication computes 2 filters x 2 columns with SMLAD
//     dual-MAC instructions; 8-bit weights are stored CMSIS-interleaved
//     ([w0 w2 w1 w3]) so SXTB16 / SXTB16,ROR#8 yield matched halfword
//     pairs; sub-byte weights are unpacked per element with SBFX/PKHBT
//     since ARMv7E-M has no sub-byte SIMD;
//   - re-quantization: USAT shift for 8-bit outputs, software binary-tree
//     thresholding for sub-byte outputs, BFI-packed stores.
#pragma once

#include "armv7e/arm_core.hpp"
#include "kernels/conv_layer.hpp"

namespace xpulp::armv7e {

struct ArmConvResult {
  qnn::Tensor output;
  ArmPerf perf;
  u32 program_instrs = 0;
  u64 macs = 0;

  double macs_per_cycle() const {
    return perf.cycles ? static_cast<double>(macs) / static_cast<double>(perf.cycles)
                       : 0.0;
  }
};

/// Run the conv layer on the ARM model (any of 8/4/2-bit uniform specs).
ArmConvResult run_conv_layer_arm(const kernels::ConvLayerData& data,
                                 ArmModel model);

}  // namespace xpulp::armv7e
