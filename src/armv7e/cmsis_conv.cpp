#include "armv7e/cmsis_conv.hpp"

#include <algorithm>

#include "armv7e/arm_asm.hpp"
#include "common/error.hpp"
#include "qnn/pack.hpp"

namespace xpulp::armv7e {

namespace {

using kernels::ConvLayerData;
using qnn::ConvSpec;

// Scratch slots (a compiler would keep these on the stack): the matmul
// subroutine spills its loop-carried state here.
struct Scratch {
  addr_t lr, out0, out1, thr, oc, wp, frag0, frag1;
};

struct ArmLayout {
  addr_t input, weights, thresholds, buf0, buf1, output;
  Scratch scr;
  u32 filter_stride, buf_bytes, output_bytes;
};

constexpr addr_t align16(addr_t a) { return (a + 15u) & ~15u; }

ArmLayout plan(const ConvSpec& s, addr_t data_base) {
  ArmLayout l{};
  l.filter_stride = qnn::packed_filter_stride(s.filter_elems(), s.w_bits);
  l.buf_bytes = static_cast<u32>(s.filter_elems()) * 2;  // q15 buffer
  addr_t cur = align16(data_base);
  l.scr.lr = cur; l.scr.out0 = cur + 4; l.scr.out1 = cur + 8;
  l.scr.thr = cur + 12; l.scr.oc = cur + 16; l.scr.wp = cur + 20;
  l.scr.frag0 = cur + 24; l.scr.frag1 = cur + 28;
  cur = align16(cur + 32);
  l.input = cur;
  cur = align16(cur + qnn::packed_bytes(s.in_h * s.in_w * s.in_c, s.in_bits));
  l.weights = cur;
  cur = align16(cur + l.filter_stride * static_cast<u32>(s.out_c));
  l.thresholds = cur;
  if (s.out_bits != 8) {
    cur = align16(cur + (1u << s.out_bits) * 2u * static_cast<u32>(s.out_c));
  }
  l.buf0 = cur;
  cur = align16(cur + l.buf_bytes);
  l.buf1 = cur;
  cur = align16(cur + l.buf_bytes);
  l.output = cur;
  l.output_bytes =
      qnn::packed_bytes(s.out_h() * s.out_w() * s.out_c, s.out_bits);
  return l;
}

/// CMSIS weight interleave for the SXTB16 path: groups of four int8
/// [w0 w1 w2 w3] are stored as [w0 w2 w1 w3].
std::vector<u8> pack_weights_arm(const qnn::FilterBank& w, unsigned bits,
                                 u32 stride) {
  std::vector<u8> out(static_cast<size_t>(stride) * w.count(), 0);
  for (int f = 0; f < w.count(); ++f) {
    u8* dst = out.data() + static_cast<size_t>(f) * stride;
    if (bits == 8) {
      for (int i = 0; i + 3 < w.filter_elems(); i += 4) {
        dst[i + 0] = static_cast<u8>(w.flat(f, i + 0));
        dst[i + 1] = static_cast<u8>(w.flat(f, i + 2));
        dst[i + 2] = static_cast<u8>(w.flat(f, i + 1));
        dst[i + 3] = static_cast<u8>(w.flat(f, i + 3));
      }
    } else {
      const unsigned per_byte = 8 / bits;
      for (int i = 0; i < w.filter_elems(); ++i) {
        const u32 v = static_cast<u32>(w.flat(f, i)) & low_mask(bits);
        dst[static_cast<unsigned>(i) / per_byte] |= static_cast<u8>(
            v << ((static_cast<unsigned>(i) % per_byte) * bits));
      }
    }
  }
  return out;
}

struct ArmGen {
  ArmAsm a;
  const ConvSpec& spec;
  ArmLayout lay;

  explicit ArmGen(const ConvSpec& s) : spec(s), lay(plan(s, 0x40000)) {}

  u32 in_pixel_bytes() const {
    return static_cast<u32>(spec.in_c) * spec.in_bits / 8;
  }
  addr_t input_pixel_addr(int y, int x) const {
    return lay.input + static_cast<u32>(y * spec.in_w + x) * in_pixel_bytes();
  }
  addr_t output_pixel_addr(int oy, int ox) const {
    return lay.output +
           static_cast<u32>((oy * spec.out_w() + ox) * spec.out_c) *
               spec.out_bits / 8;
  }
  u32 thr_stride() const { return (1u << spec.out_bits) * 2; }

  // ---- im2col: expand to q15, specialized per output pixel ----

  /// dst pointer register is r1 (advances). Zero `elems` int16 slots.
  void emit_zero_q15(u32 elems) {
    if (elems == 0) return;
    a.mov_imm(7, 0);
    for (u32 i = 0; i < elems / 2; ++i) a.str_post(7, 1, 4);
    if (elems % 2) a.strh_post(7, 1, 2);
  }

  /// Copy `elems` activations starting at guest address `src` into the q15
  /// buffer at r1 (advancing), expanding from the packed input width.
  void emit_expand_copy(addr_t src, u32 elems) {
    if (elems == 0) return;
    a.mov_imm(0, src);
    if (spec.in_bits == 8) {
      // 4 elements per iteration: LDR + UXTB16 pair + PKH pair + 2 STR.
      const u32 words = elems / 4;
      const auto loop = a.here();
      a.ldr_post(7, 0, 4);
      a.uxtb16(8, 7);
      a.uxtb16_ror8(9, 7);
      a.pkhbt(10, 8, 9);   // (n0, n1)
      a.pkhtb(11, 9, 8);   // (n2, n3)
      a.str_post(10, 1, 4);
      a.str_post(11, 1, 4);
      a.cmp_imm(0, static_cast<i32>(src + words * 4));
      a.b(AOp::kBne, loop);
    } else if (spec.in_bits == 4) {
      const u32 bytes = elems / 2;
      const auto loop = a.here();
      a.ldrb_post(7, 0, 1);
      a.ubfx(8, 7, 0, 4);
      a.ubfx(9, 7, 4, 4);
      a.pkhbt(10, 8, 9);
      a.str_post(10, 1, 4);
      a.cmp_imm(0, static_cast<i32>(src + bytes));
      a.b(AOp::kBne, loop);
    } else {
      const u32 bytes = elems / 4;
      const auto loop = a.here();
      a.ldrb_post(7, 0, 1);
      a.ubfx(8, 7, 0, 2);
      a.ubfx(9, 7, 2, 2);
      a.pkhbt(10, 8, 9);
      a.str_post(10, 1, 4);
      a.ubfx(8, 7, 4, 2);
      a.ubfx(9, 7, 6, 2);
      a.pkhbt(10, 8, 9);
      a.str_post(10, 1, 4);
      a.cmp_imm(0, static_cast<i32>(src + bytes));
      a.b(AOp::kBne, loop);
    }
  }

  void emit_im2col(int oy, int ox, addr_t buf) {
    a.mov_imm(1, buf);
    const u32 pix_elems = static_cast<u32>(spec.in_c);
    for (int ky = 0; ky < spec.k_h; ++ky) {
      const int y = oy * spec.stride - spec.pad + ky;
      const int x0 = ox * spec.stride - spec.pad;
      if (y < 0 || y >= spec.in_h) {
        emit_zero_q15(static_cast<u32>(spec.k_w) * pix_elems);
        continue;
      }
      const int left = std::max(0, -x0);
      const int right = std::max(0, x0 + spec.k_w - spec.in_w);
      const int mid = spec.k_w - left - right;
      emit_zero_q15(static_cast<u32>(left) * pix_elems);
      if (mid > 0) {
        emit_expand_copy(input_pixel_addr(y, x0 + left),
                         static_cast<u32>(mid) * pix_elems);
      }
      emit_zero_q15(static_cast<u32>(right) * pix_elems);
    }
  }

  // ---- matmul inner loops ----

  /// 8-bit: SXTB16-expanded interleaved weights, 4 elements/iteration.
  void emit_inner_8b() {
    const u32 iters = static_cast<u32>(spec.filter_elems()) / 4;
    const auto loop = a.here();
    a.ldr_post(7, 0, 4);      // w0 raw (interleaved)
    a.sxtb16(8, 7);           // (w0, w1)
    a.sxtb16_ror8(9, 7);      // (w2, w3)
    a.ldr_post(10, 2, 4);     // x0 (n0, n1)
    a.ldr_post(11, 2, 4);     // x0 (n2, n3)
    a.smlad(3, 10, 8, 3);
    a.smlad(3, 11, 9, 3);
    a.ldr_post(7, 1, 4);      // w1 raw
    a.sxtb16(12, 7);
    a.sxtb16_ror8(7, 7);
    a.smlad(5, 10, 12, 5);
    a.smlad(5, 11, 7, 5);
    a.ldr_post(10, 14, 4);    // x1
    a.ldr_post(11, 14, 4);
    a.smlad(4, 10, 8, 4);
    a.smlad(4, 11, 9, 4);
    a.smlad(6, 10, 12, 6);
    a.smlad(6, 11, 7, 6);
    a.cmp_imm(2, static_cast<i32>(lay.buf0 + iters * 8));
    a.b(AOp::kBne, loop);
  }

  /// Sub-byte: weights unpacked per element pair with SBFX + PKHBT — the
  /// lack of sub-byte SIMD support that XpulpNN removes.
  void emit_inner_sub() {
    const unsigned q = spec.w_bits;
    const unsigned pairs_per_byte = 8 / q / 2;  // 1 for nibble, 2 for crumb
    const u32 total_pairs = static_cast<u32>(spec.filter_elems()) / 2;
    const auto loop = a.here();
    for (unsigned p = 0; p < pairs_per_byte; ++p) {
      if (p == 0) {
        a.ldrb_post(7, 0, 1);  // w0 byte
      }
      a.sbfx(8, 7, p * 2 * q, q);
      a.sbfx(9, 7, p * 2 * q + q, q);
      a.pkhbt(8, 8, 9);        // w0 pair
      if (p == 0) {
        a.ldrb_post(12, 1, 1);  // w1 byte
      }
      a.sbfx(9, 12, p * 2 * q, q);
      a.sbfx(10, 12, p * 2 * q + q, q);
      a.pkhbt(9, 9, 10);       // w1 pair
      a.ldr_post(10, 2, 4);    // x0 pair (q15)
      a.ldr_post(11, 14, 4);   // x1 pair
      a.smlad(3, 10, 8, 3);
      a.smlad(4, 11, 8, 4);
      a.smlad(5, 10, 9, 5);
      a.smlad(6, 11, 9, 6);
    }
    a.cmp_imm(2, static_cast<i32>(lay.buf0 + total_pairs * 4));
    a.b(AOp::kBne, loop);
  }

  // ---- re-quantization ----

  /// Software binary-tree staircase on ARM: LDRSH + CMP + Bcc per level.
  /// `acc` holds the pre-activation, `dest` receives the code; tree base is
  /// r0 + base_off.
  void emit_tree(u8 acc, u8 dest, i32 base_off) {
    const unsigned qb = spec.out_bits;
    const auto merge = a.new_label();
    emit_tree_node(acc, dest, base_off, 0, 0, 0, qb, merge);
    a.bind(merge);
  }
  void emit_tree_node(u8 acc, u8 dest, i32 base_off, u32 node, unsigned depth,
                      u32 code, unsigned qb, ArmAsm::Label merge) {
    if (depth == qb) {
      a.mov_imm(dest, code);
      a.b(merge);
      return;
    }
    a.ldrsh(7, 0, base_off + static_cast<i32>(node) * 2);
    a.cmp(acc, 7);
    const auto left = a.new_label();
    a.b(AOp::kBlt, left);
    emit_tree_node(acc, dest, base_off, 2 * node + 2, depth + 1,
                   (code << 1) | 1, qb, merge);
    a.bind(left);
    emit_tree_node(acc, dest, base_off, 2 * node + 1, depth + 1, code << 1,
                   qb, merge);
  }

  /// Re-quantize + store accumulators for one channel pair. For 2-bit
  /// outputs `half` packs two pairs per byte via the scratch fragments.
  void emit_quant_store(unsigned half) {
    if (spec.out_bits == 8) {
      a.mov_imm(12, lay.scr.out0);
      a.ldr(0, 12, 0);           // out0
      a.ldr(1, 12, 4);           // out1
      a.asr_imm(7, 3, static_cast<i32>(spec.requant_shift));
      a.usat(7, 7, 8);
      a.asr_imm(8, 5, static_cast<i32>(spec.requant_shift));
      a.usat(8, 8, 8);
      a.bfi(7, 8, 8, 8);
      a.strh_post(7, 0, 2);
      a.asr_imm(7, 4, static_cast<i32>(spec.requant_shift));
      a.usat(7, 7, 8);
      a.asr_imm(8, 6, static_cast<i32>(spec.requant_shift));
      a.usat(8, 8, 8);
      a.bfi(7, 8, 8, 8);
      a.strh_post(7, 1, 2);
      a.str(0, 12, 0);  // spill the advanced output pointers back
      a.str(1, 12, 4);
      return;
    }
    a.mov_imm(12, lay.scr.thr);
    a.ldr(0, 12, 0);  // thr pointer
    const i32 stride = static_cast<i32>(thr_stride());
    if (spec.out_bits == 4) {
      emit_tree(3, 8, 0);        // q00
      emit_tree(5, 9, stride);   // q10
      a.bfi(8, 9, 4, 4);
      emit_tree(4, 10, 0);       // q01
      emit_tree(6, 11, stride);  // q11
      a.bfi(10, 11, 4, 4);
      a.mov_imm(12, lay.scr.out0);
      a.ldr(0, 12, 0);
      a.ldr(1, 12, 4);
      a.strb_post(8, 0, 1);
      a.strb_post(10, 1, 1);
      a.str(0, 12, 0);
      a.str(1, 12, 4);
    } else {
      emit_tree(3, 8, 0);
      emit_tree(5, 9, stride);
      a.bfi(8, 9, 2, 2);         // pixel-0 pair nibble
      emit_tree(4, 10, 0);
      emit_tree(6, 11, stride);
      a.bfi(10, 11, 2, 2);       // pixel-1 pair nibble
      a.mov_imm(12, lay.scr.frag0);
      if (half == 0) {
        a.str(8, 12, 0);
        a.str(10, 12, 4);
      } else {
        a.ldr(9, 12, 0);
        a.bfi(9, 8, 4, 4);
        a.ldr(11, 12, 4);
        a.bfi(11, 10, 4, 4);
        a.mov_imm(12, lay.scr.out0);
        a.ldr(0, 12, 0);
        a.ldr(1, 12, 4);
        a.strb_post(9, 0, 1);
        a.strb_post(11, 1, 1);
        a.str(0, 12, 0);
        a.str(1, 12, 4);
      }
    }
  }

  // ---- the matmul subroutine ----

  void emit_pair_setup() {
    a.mov_imm(12, lay.scr.wp);
    a.ldr(0, 12, 0);
    a.add_imm(1, 0, static_cast<i32>(lay.filter_stride));
    a.mov_imm(2, lay.buf0);
    a.mov_imm(14, lay.buf1);
    a.mov_imm(3, 0);
    a.mov_imm(4, 0);
    a.mov_imm(5, 0);
    a.mov_imm(6, 0);
  }

  void emit_pair_advance() {
    // New weight cursor = old + 2 strides; advance threshold pointer.
    a.mov_imm(12, lay.scr.wp);
    a.ldr(7, 12, 0);
    a.add_imm(7, 7, static_cast<i32>(2 * lay.filter_stride));
    a.str(7, 12, 0);
    if (spec.out_bits != 8) {
      a.mov_imm(12, lay.scr.thr);
      a.ldr(7, 12, 0);
      a.add_imm(7, 7, static_cast<i32>(2 * thr_stride()));
      a.str(7, 12, 0);
    }
  }

  void emit_matmul_subroutine() {
    a.mov_imm(12, lay.scr.lr);
    a.str(14, 12, 0);  // save lr (r14 doubles as the x1 pointer)
    a.mov_imm(7, lay.weights);
    a.mov_imm(12, lay.scr.wp);
    a.str(7, 12, 0);
    if (spec.out_bits != 8) {
      a.mov_imm(7, lay.thresholds);
      a.mov_imm(12, lay.scr.thr);
      a.str(7, 12, 0);
    }
    const bool crumb = spec.out_bits == 2;
    const int bodies = spec.out_c / (crumb ? 4 : 2);
    a.mov_imm(7, static_cast<u32>(bodies));
    a.mov_imm(12, lay.scr.oc);
    a.str(7, 12, 0);

    const auto loop = a.here();
    emit_pair_setup();
    if (spec.w_bits == 8) emit_inner_8b(); else emit_inner_sub();
    emit_quant_store(0);
    emit_pair_advance();
    if (crumb) {
      emit_pair_setup();
      emit_inner_sub();
      emit_quant_store(1);
      emit_pair_advance();
    }
    a.mov_imm(12, lay.scr.oc);
    a.ldr(7, 12, 0);
    a.sub_imm(7, 7, 1);
    a.str(7, 12, 0);
    a.cmp_imm(7, 0);
    a.b(AOp::kBne, loop);

    a.mov_imm(12, lay.scr.lr);
    a.ldr(14, 12, 0);
    a.bx_lr();
  }

  std::vector<AInstr> generate() {
    if (spec.in_bits != spec.w_bits) throw SimError("arm: in_bits != w_bits");
    if (spec.w_bits == 8 && spec.filter_elems() % 4 != 0) {
      throw SimError("arm 8-bit kernel needs filter_elems % 4 == 0");
    }
    if (spec.filter_elems() % 2 != 0) {
      throw SimError("arm kernel needs an even filter length");
    }
    const auto main = a.new_label();
    a.b(main);
    const auto matmul = a.here();
    emit_matmul_subroutine();
    a.bind(main);
    for (int oy = 0; oy < spec.out_h(); ++oy) {
      for (int ox = 0; ox < spec.out_w(); ox += 2) {
        emit_im2col(oy, ox, lay.buf0);
        emit_im2col(oy, ox + 1, lay.buf1);
        a.mov_imm(7, output_pixel_addr(oy, ox));
        a.mov_imm(12, lay.scr.out0);
        a.str(7, 12, 0);
        a.mov_imm(7, output_pixel_addr(oy, ox + 1));
        a.str(7, 12, 4);
        a.bl(matmul);
      }
    }
    a.halt();
    return a.finish();
  }
};

}  // namespace

ArmConvResult run_conv_layer_arm(const ConvLayerData& data, ArmModel model) {
  const ConvSpec& spec = data.spec;
  ArmGen gen(spec);
  std::vector<AInstr> prog = gen.generate();

  mem::Memory mem;
  mem.write_block(gen.lay.input, qnn::pack_tensor(data.input, spec.in_bits));
  mem.write_block(gen.lay.weights,
                  pack_weights_arm(data.weights, spec.w_bits,
                                   gen.lay.filter_stride));
  if (spec.out_bits != 8) {
    mem.write_block(gen.lay.thresholds, data.thresholds.serialize());
  }

  ArmCore core(mem, model);
  core.load_program(std::move(prog));
  core.run();

  std::vector<u8> out_bytes(gen.lay.output_bytes);
  mem.read_block(gen.lay.output, out_bytes);

  ArmConvResult res;
  res.output = qnn::unpack_tensor(
      out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
      false);
  res.perf = core.perf();
  res.macs = spec.macs();
  return res;
}

}  // namespace xpulp::armv7e
