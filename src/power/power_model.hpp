// Area / power / energy model reproducing Table III and the energy
// efficiency figures (Figs. 7 and 9).
//
// Substitution note (DESIGN.md §2): the paper synthesizes and
// places-&-routes the cores in GF 22FDX and measures power with PrimeTime
// on post-layout VCD traces (TT, 0.65 V, 25 C, 250 MHz). We replace that
// flow with (a) a component area table calibrated to the paper's
// implementation results and (b) an activity-based dynamic-power model fed
// by the simulator's event and switching counters (instruction mix,
// dot-product operand toggles per region, LSU data toggles). The model's
// *structure* responds to the same design knobs the paper evaluates —
// clock gating / operand isolation on or off, SIMD element width, kernel
// mix — so the derived quantities (overhead percentages, PM savings,
// GMAC/s/W) are reproduced rather than transcribed.
#pragma once

#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "sim/core.hpp"

namespace xpulp::power {

/// Operating point used throughout the paper's evaluation.
struct OperatingPoint {
  double freq_hz = 250e6;
  double vdd = 0.65;  // TT typical corner
};

// ---------------- Area model (22FDX, worst-case corner) ----------------

struct AreaRow {
  std::string component;
  double ri5cy_um2;
  double ext_nopm_um2;
  double ext_pm_um2;
};

/// Component areas. Baseline RI5CY figures are technology calibration
/// constants; the extended-core figures are *derived* from the structural
/// model: two extra multiplier regions (8x5-bit and 16x3-bit products with
/// dedicated adder trees), the quantization unit in EX, ID-stage decode for
/// the new opcodes, LSU address path sharing, and (PM variant only) the
/// per-region operand registers and clock-gating cells.
std::vector<AreaRow> area_table();

/// Total core area in um^2 for a configuration.
double core_area(bool extended, bool power_managed);

// ---------------- Power model ----------------

struct PowerBreakdown {
  double leak_mw = 0;
  double base_mw = 0;       // pipeline, fetch, register file
  double alu_mw = 0;        // scalar + SIMD ALU
  double muldiv_mw = 0;
  double dotp_mw = 0;       // dot-product unit ops
  double dotp_toggle_mw = 0;  // operand-register switching (PM knob)
  double qnt_mw = 0;        // quantization unit (ops + isolation leak-in)
  double lsu_mw = 0;

  double core_mw() const {
    return leak_mw + base_mw + alu_mw + muldiv_mw + dotp_mw +
           dotp_toggle_mw + qnt_mw + lsu_mw;
  }
};

struct SocPower {
  PowerBreakdown core;
  double sram_mw = 0;        // memory array access energy
  double soc_static_mw = 0;  // interconnect, clock tree, peripherals
  double soc_mw() const { return core.core_mw() + sram_mw + soc_static_mw; }
};

/// Energy over a measured window, in picojoules, split into the same
/// components as PowerBreakdown/SocPower. Every component is a *linear*
/// function of the integer activity counters (plus the cycle count for the
/// time-proportional terms: leakage, base pipeline, SoC static), so two
/// windows with equal counters yield bit-identical energy — the property
/// xtel's per-region attribution reconciles against.
struct EnergyBreakdown {
  double leak_pj = 0;
  double base_pj = 0;
  double alu_pj = 0;
  double muldiv_pj = 0;
  double dotp_pj = 0;
  double dotp_toggle_pj = 0;
  double qnt_pj = 0;
  double lsu_pj = 0;
  double sram_pj = 0;
  double soc_static_pj = 0;

  double core_pj() const {
    return leak_pj + base_pj + alu_pj + muldiv_pj + dotp_pj + dotp_toggle_pj +
           qnt_pj + lsu_pj;
  }
  double soc_pj() const { return core_pj() + sram_pj + soc_static_pj; }
};

/// Energy spent over the window described by the counters. The primary
/// model: estimate_power() is defined as estimate_energy() divided by the
/// window's wall time, component by component, so power and energy can
/// never disagree.
EnergyBreakdown estimate_energy(const sim::PerfCounters& perf,
                                const sim::DotpActivity& act,
                                const mem::MemStats& mem,
                                const sim::CoreConfig& cfg,
                                const OperatingPoint& op = {});

/// Estimate average power while executing a workload whose statistics were
/// collected by the simulator. `cfg` identifies the core variant and the
/// power-management knob. For any non-empty window this equals
/// estimate_energy() / time, component by component (bit-exact — shared
/// implementation); an empty window (cycles == 0) reports the standing
/// power (leakage, base pipeline, SoC static) with zero dynamic rates.
SocPower estimate_power(const sim::PerfCounters& perf,
                        const sim::DotpActivity& act,
                        const mem::MemStats& mem, const sim::CoreConfig& cfg,
                        const OperatingPoint& op = {});

// ---------------- Derived metrics ----------------

/// Giga multiply-accumulate operations per second per watt.
double gmac_per_s_per_w(u64 macs, cycles_t cycles, double soc_mw,
                        const OperatingPoint& op = {});

/// ARM comparison platforms (Fig. 9): datasheet-derived power at the
/// paper's operating frequencies.
struct ArmPlatform {
  const char* name;
  double freq_hz;
  double power_mw;  // active power while running the kernel
};

ArmPlatform stm32l4_platform();  // Cortex-M4 @ 80 MHz
ArmPlatform stm32h7_platform();  // Cortex-M7 @ 400 MHz

}  // namespace xpulp::power
