#include "power/power_model.hpp"

namespace xpulp::power {

namespace {

// ---- Area calibration constants (um^2, 22FDX worst-case corner) ----
// Baseline RI5CY figures calibrate the technology; the extension deltas
// are the structural additions of §III-B.
constexpr double kTotalBase = 19729.9;
constexpr double kDotpBase = 5708.9;
constexpr double kIdBase = 6363.1;
constexpr double kExBase = 9500.9;  // includes the dotp unit
constexpr double kLsuBase = 518.0;

// Two extra multiplier regions (8 x 5-bit and 16 x 3-bit signed products,
// each with a dedicated adder tree; Fig. 3).
constexpr double kMult4Region = 621.0;
constexpr double kMult2Region = 425.9;
// Per-region input operand registers + clock-gating cells (PM only).
constexpr double kPmOperandRegs = 88.6;
// Quantization unit in EX (two interleaved compare/address-update paths).
constexpr double kQuantUnit = 581.3;
constexpr double kQuantUnitPmExtra = 33.9;  // operand-isolation cells
// New-opcode decode in ID; PM adds the gating-control logic.
constexpr double kIdDecode = 167.1;
constexpr double kIdPmCtrl = 147.6;
// LSU address-path sharing with the quantization unit.
constexpr double kLsuNoPm = 92.8;
constexpr double kLsuPm = 73.2;

// ---- Power calibration constants (pJ per event, 0.65 V TT) ----
// Calibrated once against the Table III measurements at 250 MHz; the
// workload-dependent inputs (rates, toggles) come from the simulator.
constexpr double kEBaseCycle = 2.56;     // fetch + pipeline + regfile
constexpr double kEBaseExtra = 0.25;     // wider EX mux on the extended core
constexpr double kEAlu = 0.60;
constexpr double kESimdAlu = 0.90;
constexpr double kEMul = 2.00;
constexpr double kEDotp[4] = {2.60, 2.30, 2.10, 2.00};  // 16/8/4/2-bit ops
// Operand switching: with power management the per-region input registers
// latch only for the region in use (cheap); without it every operand
// propagates combinationally into all four multiplier arrays.
constexpr double kEDotpToggleBit = 0.012;    // registered (PM on)
constexpr double kEUngatedToggleBit = 0.17;  // array propagation (PM off)
constexpr double kEQntCycle = 1.25;
constexpr double kELoad = 1.50;
constexpr double kEStore = 1.10;
constexpr double kELsuToggleBit = 0.030;  // qnt comparators, isolation off
constexpr double kLeakPerUm2Mw = 1.166e-6;

// SoC-level constants (PULPissimo: 512 kB SRAM, interconnect, always-on
// peripherals and clock tree).
constexpr double kESramAccess = 3.90;   // per data access or ifetch
constexpr double kSocStaticMw = 3.35;

}  // namespace

std::vector<AreaRow> area_table() {
  const double dotp_nopm = kDotpBase + kMult4Region + kMult2Region;
  const double dotp_pm = dotp_nopm + kPmOperandRegs;
  const double id_nopm = kIdBase + kIdDecode;
  const double id_pm = id_nopm + kIdPmCtrl;
  const double ex_nopm = kExBase + (dotp_nopm - kDotpBase) + kQuantUnit;
  const double ex_pm = kExBase + (dotp_pm - kDotpBase) + kQuantUnit +
                       kQuantUnitPmExtra;
  const double lsu_nopm = kLsuBase + kLsuNoPm;
  const double lsu_pm = kLsuBase + kLsuPm;
  const double total_nopm = kTotalBase + (id_nopm - kIdBase) +
                            (ex_nopm - kExBase) + (lsu_nopm - kLsuBase);
  const double total_pm = kTotalBase + (id_pm - kIdBase) +
                          (ex_pm - kExBase) + (lsu_pm - kLsuBase);
  return {
      {"Total", kTotalBase, total_nopm, total_pm},
      {"dotp-Unit", kDotpBase, dotp_nopm, dotp_pm},
      {"ID Stage", kIdBase, id_nopm, id_pm},
      {"EX Stage", kExBase, ex_nopm, ex_pm},
      {"LSU", kLsuBase, lsu_nopm, lsu_pm},
  };
}

double core_area(bool extended, bool power_managed) {
  const auto t = area_table();
  if (!extended) return t[0].ri5cy_um2;
  return power_managed ? t[0].ext_pm_um2 : t[0].ext_nopm_um2;
}

EnergyBreakdown estimate_energy(const sim::PerfCounters& perf,
                                const sim::DotpActivity& act,
                                const mem::MemStats& mem,
                                const sim::CoreConfig& cfg,
                                const OperatingPoint& op) {
  EnergyBreakdown e;
  const double cyc = static_cast<double>(perf.cycles);
  // P[mW] = E[pJ/cycle] * f[Hz] * 1e-9, so a constant-power component
  // contributes P / scale picojoules per cycle.
  const double scale = op.freq_hz * 1e-9;

  const bool ext = cfg.xpulpnn;
  // Leakage scales with area; kLeakPerUm2Mw folds in the 0.65 V TT corner.
  e.leak_pj = core_area(ext, cfg.clock_gating) * kLeakPerUm2Mw / scale * cyc;

  const double e_base = kEBaseCycle + (ext ? kEBaseExtra : 0.0);
  e.base_pj = e_base * cyc;
  e.alu_pj = kEAlu * static_cast<double>(perf.scalar_alu_ops) +
             kESimdAlu * static_cast<double>(perf.simd_alu_ops);
  e.muldiv_pj = kEMul * static_cast<double>(perf.mul_ops + perf.div_ops);

  for (unsigned i = 0; i < 4; ++i) {
    e.dotp_pj += kEDotp[i] * static_cast<double>(perf.dotp_ops[i]);
  }

  double toggles = 0;
  for (unsigned i = 0; i < 4; ++i) {
    toggles += static_cast<double>(act.operand_toggles[i]);
  }
  const double e_toggle =
      cfg.clock_gating ? kEDotpToggleBit : kEUngatedToggleBit;
  e.dotp_toggle_pj = e_toggle * toggles;

  e.qnt_pj = kEQntCycle * static_cast<double>(perf.qnt_stall_cycles);
  if (ext && !cfg.clock_gating) {
    // No operand isolation: the quantization comparators follow every load.
    e.qnt_pj += kELsuToggleBit * static_cast<double>(perf.lsu_data_toggles);
  }
  e.lsu_pj = kELoad * static_cast<double>(perf.loads) +
             kEStore * static_cast<double>(perf.stores);

  const double data_accesses = static_cast<double>(mem.loads + mem.stores);
  const double fetches = static_cast<double>(perf.instructions);
  e.sram_pj = kESramAccess * (data_accesses + fetches);
  e.soc_static_pj = kSocStaticMw / scale * cyc;
  return e;
}

SocPower estimate_power(const sim::PerfCounters& perf,
                        const sim::DotpActivity& act,
                        const mem::MemStats& mem, const sim::CoreConfig& cfg,
                        const OperatingPoint& op) {
  SocPower p;
  const bool ext = cfg.xpulpnn;
  const double scale = op.freq_hz * 1e-9;
  if (perf.cycles == 0) {
    // Empty window: report standing power, no dynamic activity to rate.
    p.core.leak_mw = core_area(ext, cfg.clock_gating) * kLeakPerUm2Mw;
    p.core.base_mw = (kEBaseCycle + (ext ? kEBaseExtra : 0.0)) * scale;
    p.soc_static_mw = kSocStaticMw;
    return p;
  }
  // Power is energy over time, component by component: the same
  // EnergyBreakdown xtel attributes per region divides down to these mW
  // figures bit-exactly (the reconciliation invariant).
  const EnergyBreakdown e = estimate_energy(perf, act, mem, cfg, op);
  const double cycles = static_cast<double>(perf.cycles);
  const auto mw = [&](double pj) { return pj / cycles * scale; };
  p.core.leak_mw = mw(e.leak_pj);
  p.core.base_mw = mw(e.base_pj);
  p.core.alu_mw = mw(e.alu_pj);
  p.core.muldiv_mw = mw(e.muldiv_pj);
  p.core.dotp_mw = mw(e.dotp_pj);
  p.core.dotp_toggle_mw = mw(e.dotp_toggle_pj);
  p.core.qnt_mw = mw(e.qnt_pj);
  p.core.lsu_mw = mw(e.lsu_pj);
  p.sram_mw = mw(e.sram_pj);
  p.soc_static_mw = mw(e.soc_static_pj);
  return p;
}

double gmac_per_s_per_w(u64 macs, cycles_t cycles, double soc_mw,
                        const OperatingPoint& op) {
  if (cycles == 0 || soc_mw <= 0) return 0;
  const double seconds = static_cast<double>(cycles) / op.freq_hz;
  const double watts = soc_mw * 1e-3;
  return static_cast<double>(macs) / seconds / watts * 1e-9;
}

ArmPlatform stm32l4_platform() {
  // STM32L476 @ 80 MHz, run mode from flash w/ ART cache, ~120 uA/MHz at
  // 1.8 V supply (datasheet-derived typical active power).
  return {"STM32L4 (Cortex-M4)", 80e6, 17.3};
}

ArmPlatform stm32h7_platform() {
  // STM32H743 @ 400 MHz, VOS1 run mode, ~280 uA/MHz at 3.3 V.
  return {"STM32H7 (Cortex-M7)", 400e6, 370.0};
}

}  // namespace xpulp::power
