#include "ckpt/fault.hpp"

#include <array>

#include "common/rng.hpp"
#include "qnn/pack.hpp"

namespace xpulp::ckpt {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTcdmBitFlip: return "tcdm_bit_flip";
    case FaultKind::kRegisterBitFlip: return "register_bit_flip";
    case FaultKind::kStallPerturb: return "stall_perturb";
    case FaultKind::kIsaDegrade: return "isa_degrade";
  }
  return "?";
}

const char* detector_name(Detector d) {
  switch (d) {
    case Detector::kNone: return "none";
    case Detector::kTrap: return "trap";
    case Detector::kWatchdog: return "watchdog";
    case Detector::kPerfInvariant: return "perf_invariant";
    case Detector::kOutputMismatch: return "output_mismatch";
    case Detector::kMemScrub: return "mem_scrub";
  }
  return "?";
}

const char* outcome_name(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kDetectedRecovered: return "detected_recovered";
    case FaultOutcome::kDetectedUnrecovered: return "detected_unrecovered";
    case FaultOutcome::kUndetected: return "undetected";
  }
  return "?";
}

namespace {

/// The campaign workload, generated once per campaign.
struct Workload {
  kernels::ConvLayerData data;
  kernels::ConvKernel kernel;
  qnn::Tensor golden;
  addr_t code_lo = 0, code_hi = 0;  // program image
  addr_t data_lo = 0, data_hi = 0;  // persistent tensors [input, buf0)
};

/// The fault-free run's observable end state — every trial is judged
/// against it.
struct ReferenceRun {
  u64 instructions = 0;
  std::vector<u8> final_image;
  std::vector<u8> output_bytes;
};

void load_workload(const Workload& wl, mem::Memory& mem) {
  wl.kernel.program.load(mem);
  kernels::load_conv_data(wl.data, wl.kernel.layout, mem);
}

void reset_core(const Workload& wl, sim::Core& core) {
  core.reset(wl.kernel.program.entry(),
             wl.kernel.program.base() + wl.kernel.program.size_bytes());
}

Workload make_workload(const CampaignConfig& cfg) {
  kernels::ConvLayerData data = kernels::ConvLayerData::random(cfg.spec, cfg.seed);
  kernels::ConvKernel kernel = kernels::generate_conv_kernel(cfg.spec, cfg.variant);
  qnn::Tensor golden = data.golden();
  Workload wl{std::move(data), std::move(kernel), std::move(golden)};
  wl.code_lo = wl.kernel.program.base();
  wl.code_hi = wl.code_lo + wl.kernel.program.size_bytes();
  wl.data_lo = wl.kernel.layout.input;
  wl.data_hi = wl.kernel.layout.buf0;
  return wl;
}

ReferenceRun make_reference(const Workload& wl, const CampaignConfig& cfg) {
  mem::Memory mem;
  sim::Core core(mem, cfg.core);
  load_workload(wl, mem);
  reset_core(wl, core);
  core.run(600'000'000);
  if (core.halt_reason() != sim::HaltReason::kEcall) {
    throw CkptError("reference run halted abnormally");
  }
  ReferenceRun ref;
  ref.instructions = core.perf().instructions;
  ref.final_image.resize(mem.size());
  mem.read_block(0, ref.final_image);
  ref.output_bytes.resize(wl.kernel.layout.output_bytes);
  mem.read_block(wl.kernel.layout.output, ref.output_bytes);

  // The campaign's ground truth must itself be correct.
  const qnn::ConvSpec& spec = wl.data.spec;
  const qnn::Tensor out = qnn::unpack_tensor(
      ref.output_bytes, {spec.out_h(), spec.out_w(), spec.out_c},
      spec.out_bits, /*is_signed=*/false);
  if (out != wl.golden) {
    throw CkptError("reference run output disagrees with golden model");
  }
  return ref;
}

void flip_tcdm_bit(mem::Memory& mem, addr_t addr, unsigned bit) {
  std::array<u8, 1> b{};
  mem.read_block(addr, b);
  b[0] ^= static_cast<u8>(1u << bit);
  mem.write_block(addr, b);
}

/// Apply the fault to a core paused at an instruction boundary.
void inject(const FaultSpec& fs, sim::Core& core, mem::Memory& mem) {
  switch (fs.kind) {
    case FaultKind::kTcdmBitFlip:
      flip_tcdm_bit(mem, fs.addr, fs.bit);
      // The flip may hit code the core has already predecoded.
      core.invalidate_decode_cache();
      break;
    case FaultKind::kRegisterBitFlip:
      core.set_reg(fs.reg, core.reg(fs.reg) ^ (1u << fs.reg_bit));
      break;
    case FaultKind::kStallPerturb: {
      sim::CoreState s = core.save_state();
      const u64 mag = static_cast<u64>(fs.cycle_delta < 0 ? -fs.cycle_delta
                                                          : fs.cycle_delta);
      if (fs.cycle_delta < 0 && s.perf.cycles < mag) {
        s.perf.cycles += mag;  // keep the counter in range, still perturbed
      } else {
        s.perf.cycles = static_cast<cycles_t>(
            static_cast<i64>(s.perf.cycles) + fs.cycle_delta);
      }
      core.restore_state(s);
      break;
    }
    case FaultKind::kIsaDegrade:
      // Sub-byte SIMD and pv.qnt disappear; XpulpV2 survives.
      core.set_isa_features(/*xpulpv2=*/true, /*xpulpnn=*/false,
                            /*hwloops=*/true);
      break;
  }
}

/// Step the core to completion (or the watchdog budget), checkpointing
/// every `ckpt_every` instructions while still before the injection point.
/// `fault` == nullptr runs plain (retry attempts). Returns the detector
/// that fired during execution, or kNone if the run ended in a clean
/// ecall.
Detector execute(sim::Core& core, mem::Memory& mem, u64 budget,
                 const FaultSpec* fault, u64 ckpt_every,
                 Snapshot* pre_fault_ckpt) {
  try {
    while (!core.halted()) {
      const u64 n = core.perf().instructions;
      if (fault != nullptr) {
        if (n == fault->at_instruction) {
          inject(*fault, core, mem);
          fault = nullptr;  // single-shot
        } else if (ckpt_every != 0 && n % ckpt_every == 0 &&
                   pre_fault_ckpt != nullptr) {
          // Only pre-injection states are valid recovery points.
          *pre_fault_ckpt = capture(core, mem);
        }
      }
      if (n >= budget) return Detector::kWatchdog;
      core.step();
    }
  } catch (const SimError&) {
    // Guest trap: memory fault, illegal instruction, …
    return Detector::kTrap;
  }
  if (core.halt_reason() != sim::HaltReason::kEcall) {
    return Detector::kWatchdog;
  }
  return Detector::kNone;
}

/// Post-completion checks, in severity order. The memory scrub compares
/// the whole final TCDM image against the fault-free run's image, so any
/// surviving bit flip — even one that never influenced the output — is
/// caught.
Detector check_end_state(const sim::Core& core, const mem::Memory& mem,
                         const Workload& wl, const ReferenceRun& ref) {
  if (!sim::perf_invariant_violation(core.perf()).empty()) {
    return Detector::kPerfInvariant;
  }
  std::vector<u8> out(wl.kernel.layout.output_bytes);
  mem.read_block(wl.kernel.layout.output, out);
  if (out != ref.output_bytes) return Detector::kOutputMismatch;
  std::vector<u8> image(mem.size());
  mem.read_block(0, image);
  if (image != ref.final_image) return Detector::kMemScrub;
  return Detector::kNone;
}

/// IsaDegrade recovery: the hardware stays degraded, so rerunning the
/// XpulpNN kernel is futile. Regenerate the layer with a variant the
/// degraded ISA still supports and check it against the golden model.
bool run_fallback(const Workload& wl, const CampaignConfig& cfg) {
  sim::CoreConfig degraded = cfg.core;
  degraded.xpulpnn = false;
  const kernels::ConvVariant fallback =
      cfg.spec.out_bits == 8 ? kernels::ConvVariant::kXpulpV2_8b
                             : kernels::ConvVariant::kXpulpV2_Sub;
  try {
    const kernels::ConvRunResult res =
        kernels::run_conv_layer(wl.data, fallback, degraded);
    return res.output == wl.golden;
  } catch (const SimError&) {
    return false;
  }
}

FaultRecord run_trial(const Workload& wl, const ReferenceRun& ref,
                      const CampaignConfig& cfg, const FaultSpec& fs) {
  mem::Memory mem;
  sim::Core core(mem, cfg.core);
  load_workload(wl, mem);
  reset_core(wl, core);

  FaultRecord rec;
  rec.spec = fs;
  const u64 budget = 4 * ref.instructions + 10'000;

  // Recovery point: the freshly loaded state, refined by periodic
  // checkpoints up to the injection point during the first attempt.
  Snapshot ckpt = capture(core, mem);

  Detector det = execute(core, mem, budget, &fs, cfg.ckpt_every, &ckpt);
  if (det == Detector::kNone) det = check_end_state(core, mem, wl, ref);
  if (det == Detector::kNone) {
    rec.outcome = FaultOutcome::kMasked;
    return rec;
  }
  rec.detector = det;

  if (fs.kind == FaultKind::kIsaDegrade) {
    // Restoring a checkpoint cannot undo a hardware degradation; retries
    // would trap on the same missing instructions. Graceful degradation
    // instead: fall back to an XpulpV2 kernel variant, if allowed.
    if (cfg.fallback_isa && run_fallback(wl, cfg)) {
      rec.used_fallback = true;
      rec.outcome = FaultOutcome::kDetectedRecovered;
    } else {
      rec.outcome = FaultOutcome::kDetectedUnrecovered;
    }
    return rec;
  }

  for (int attempt = 1; attempt <= cfg.max_retries; ++attempt) {
    rec.retries_used = attempt;
    apply(ckpt, core, mem);
    if (fs.kind == FaultKind::kTcdmBitFlip && fs.persistent) {
      // Stuck-at cell: the restore rewrote the byte, the defect reasserts.
      flip_tcdm_bit(mem, fs.addr, fs.bit);
      core.invalidate_decode_cache();
    }
    det = execute(core, mem, budget, nullptr, 0, nullptr);
    if (det == Detector::kNone) det = check_end_state(core, mem, wl, ref);
    if (det == Detector::kNone) {
      rec.outcome = FaultOutcome::kDetectedRecovered;
      return rec;
    }
  }
  rec.outcome = FaultOutcome::kDetectedUnrecovered;
  return rec;
}

/// Derive trial `i`'s fault from the campaign seed. Every random draw
/// happens unconditionally in a fixed order so the sequence of specs is a
/// pure function of (seed, i) regardless of kind mix.
FaultSpec make_fault(const CampaignConfig& cfg, const Workload& wl,
                     const ReferenceRun& ref, int i) {
  Rng rng(cfg.seed ^ (0x9e3779b97f4a7c15ull * static_cast<u64>(i + 1)));
  FaultSpec fs;
  fs.kind = cfg.kinds[rng.next_u64() % cfg.kinds.size()];
  // Not the very first or last instruction: the fault lands strictly
  // inside the run so checkpoints and detection both have room.
  fs.at_instruction = 1 + rng.next_u64() % (ref.instructions - 2);

  // TCDM target: a persistent region, weighted by size (code image or the
  // packed tensors). Flips there survive to the final-image scrub.
  const u64 code_len = wl.code_hi - wl.code_lo;
  const u64 data_len = wl.data_hi - wl.data_lo;
  const u64 off = rng.next_u64() % (code_len + data_len);
  fs.addr = off < code_len ? wl.code_lo + static_cast<addr_t>(off)
                           : wl.data_lo + static_cast<addr_t>(off - code_len);
  fs.bit = static_cast<unsigned>(rng.next_u64() % 8);
  fs.persistent = (rng.next_u64() & 0xff) < cfg.persistent_chance;

  fs.reg = 1 + static_cast<unsigned>(rng.next_u64() % 31);
  fs.reg_bit = static_cast<unsigned>(rng.next_u64() % 32);

  const i64 mag = 1 + static_cast<i64>(rng.next_u64() % 1000);
  fs.cycle_delta = (rng.next_u64() & 1) ? mag : -mag;
  return fs;
}

}  // namespace

u64 CampaignReport::fingerprint() const {
  // FNV-1a over the discriminating fields of every record, in order.
  u64 h = 0xcbf29ce484222325ull;
  const auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const FaultRecord& r : records) {
    mix(static_cast<u64>(r.spec.kind));
    mix(r.spec.at_instruction);
    mix(r.spec.addr);
    mix(r.spec.bit);
    mix(r.spec.persistent ? 1 : 0);
    mix(r.spec.reg);
    mix(r.spec.reg_bit);
    mix(static_cast<u64>(r.spec.cycle_delta));
    mix(static_cast<u64>(r.outcome));
    mix(static_cast<u64>(r.detector));
    mix(static_cast<u64>(r.retries_used));
    mix(r.used_fallback ? 1 : 0);
  }
  return h;
}

void CampaignReport::publish(obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.counter(p + ".injected", static_cast<u64>(injected));
  reg.counter(p + ".masked", static_cast<u64>(masked));
  reg.counter(p + ".detected", static_cast<u64>(detected));
  reg.counter(p + ".recovered", static_cast<u64>(recovered));
  reg.counter(p + ".unrecovered", static_cast<u64>(unrecovered));
  reg.counter(p + ".undetected", static_cast<u64>(undetected));
  reg.gauge(p + ".detection_rate", detection_rate());
  reg.gauge(p + ".recovery_rate", recovery_rate());
  reg.counter(p + ".reference_instructions", reference_instructions);

  u64 by_detector[6] = {};
  u64 by_kind[4] = {};
  u64 fallbacks = 0;
  for (const FaultRecord& r : records) {
    by_detector[static_cast<size_t>(r.detector)] += 1;
    by_kind[static_cast<size_t>(r.spec.kind)] += 1;
    if (r.used_fallback) fallbacks += 1;
  }
  for (int d = 1; d < 6; ++d) {
    reg.counter(p + ".detector." + detector_name(static_cast<Detector>(d)),
                by_detector[d]);
  }
  for (int k = 0; k < 4; ++k) {
    reg.counter(p + ".kind." + fault_kind_name(static_cast<FaultKind>(k)),
                by_kind[static_cast<size_t>(k)]);
  }
  reg.counter(p + ".fallback_recoveries", fallbacks);
  reg.counter(p + ".fingerprint", fingerprint());
}

CampaignReport run_campaign(const CampaignConfig& cfg) {
  if (cfg.kinds.empty()) throw CkptError("campaign needs at least one kind");
  if (cfg.num_faults < 0) throw CkptError("negative fault count");
  if (!kernels::variant_supported(cfg.variant, cfg.core)) {
    throw CkptError("campaign variant unsupported by core config");
  }

  const Workload wl = make_workload(cfg);
  const ReferenceRun ref = make_reference(wl, cfg);
  if (ref.instructions < 3) throw CkptError("workload too short to inject");

  CampaignReport rep;
  rep.reference_instructions = ref.instructions;
  rep.records.reserve(static_cast<size_t>(cfg.num_faults));

  for (int i = 0; i < cfg.num_faults; ++i) {
    const FaultSpec fs = make_fault(cfg, wl, ref, i);
    rep.records.push_back(run_trial(wl, ref, cfg, fs));
    const FaultRecord& r = rep.records.back();
    rep.injected += 1;
    switch (r.outcome) {
      case FaultOutcome::kMasked: rep.masked += 1; break;
      case FaultOutcome::kDetectedRecovered:
        rep.detected += 1;
        rep.recovered += 1;
        break;
      case FaultOutcome::kDetectedUnrecovered:
        rep.detected += 1;
        rep.unrecovered += 1;
        break;
      case FaultOutcome::kUndetected: rep.undetected += 1; break;
    }
  }
  return rep;
}

}  // namespace xpulp::ckpt
