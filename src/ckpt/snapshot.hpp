// Exact, versioned snapshot/restore of full simulation state.
//
// A Snapshot captures everything a Core (or a whole Cluster) plus its
// Memory need to resume bit-identically: architectural registers, hwloop
// state, performance counters, dot-product-unit activity latches, the TCDM
// byte image, MemStats and the contention-injector phase, and — for
// clusters — every core's state plus the bank arbiter's booking tables.
// Host-side wiring (decode caches, access hooks, tracing sinks) is
// deliberately excluded: caches are invalidated on restore and hooks are
// reattached by whoever owns them.
//
// The binary format (DESIGN.md §11) is a tagged-section container:
//
//   u32 magic   'XCKP' (0x504b4358 little-endian)
//   u16 version (kFormatVersion)
//   u16 flags   (bit 0: snapshot contains cluster scheduling state)
//   sections    repeated { u32 tag; u64 length; u8 payload[length] }
//               tags: 'META', 'CORE' (one per core, in core order),
//               'MEM ', 'CLUS' (arbiter bookings; cluster snapshots only)
//   u32 crc32   over every preceding byte (IEEE 802.3 polynomial)
//
// Readers reject bad magic, unknown versions, truncated or oversized
// sections, missing mandatory sections and checksum mismatches with a
// CkptError describing the defect. Unknown *tags* are skipped so newer
// writers can add sections without breaking older readers of the same
// major version.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"

namespace xpulp::ckpt {

/// Raised on any malformed, truncated or inconsistent checkpoint image,
/// and on applying a snapshot to a mismatched target (wrong memory size,
/// wrong core count).
class CkptError : public SimError {
 public:
  explicit CkptError(const std::string& what) : SimError("ckpt: " + what) {}
};

inline constexpr u32 kMagic = 0x504b4358;  // "XCKP" little-endian
inline constexpr u16 kFormatVersion = 2;  // v2: mpc CSR + mixed dotp counters

/// Serializable memory state: the full byte image plus the timing-relevant
/// bookkeeping (stats, contention phase). The access hook is host wiring
/// and not part of the snapshot.
struct MemSnapshot {
  std::vector<u8> bytes;
  mem::MemStats stats;
  u64 access_counter = 0;
  u32 contention_period = 0;
};

/// A complete simulation snapshot. Single-core snapshots have one entry in
/// `cores` and no `arbiter`; cluster snapshots carry one entry per core (in
/// core order — core perf.cycles are the scheduler's local clocks) plus the
/// arbiter booking tables.
struct Snapshot {
  std::vector<sim::CoreState> cores;
  MemSnapshot mem;
  std::optional<cluster::BankArbiterState> arbiter;

  bool is_cluster() const { return arbiter.has_value(); }
};

// ---- Capture / apply ----

/// Snapshot a single core and its memory at an instruction boundary.
Snapshot capture(const sim::Core& core, const mem::Memory& mem);

/// Snapshot a whole cluster (all cores, shared memory, arbiter bookings).
Snapshot capture(const cluster::Cluster& cl);

/// Restore a single-core snapshot. The memory image is applied first, then
/// the core state; the core's decode cache is invalidated. Throws CkptError
/// if the snapshot is a cluster snapshot, has no core, or the memory sizes
/// differ.
void apply(const Snapshot& s, sim::Core& core, mem::Memory& mem);

/// Restore a cluster snapshot into a (possibly live) cluster. Core count,
/// bank count and memory size must match. Decode caches are invalidated
/// after the memory image is applied.
void apply(const Snapshot& s, cluster::Cluster& cl);

// ---- Binary serialization ----

std::vector<u8> serialize(const Snapshot& s);
Snapshot deserialize(std::span<const u8> bytes);

/// File convenience wrappers; throw CkptError on I/O failure.
void save_file(const Snapshot& s, const std::string& path);
Snapshot load_file(const std::string& path);

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320), the trailer checksum.
/// Exposed for tests that hand-corrupt images.
u32 crc32(std::span<const u8> bytes);

}  // namespace xpulp::ckpt
