#include "ckpt/snapshot.hpp"

#include <array>
#include <cstring>
#include <fstream>

namespace xpulp::ckpt {

namespace {

// Section tags, little-endian ASCII.
constexpr u32 kTagMeta = 0x4154454d;  // "META"
constexpr u32 kTagCore = 0x45524f43;  // "CORE"
constexpr u32 kTagMem = 0x204d454d;   // "MEM "
constexpr u32 kTagClus = 0x53554c43;  // "CLUS"

constexpr u16 kFlagCluster = 1u << 0;

// ---- Little-endian byte stream primitives ----

class Writer {
 public:
  void u8v(u8 v) { buf_.push_back(v); }
  void u16v(u16 v) { put(v); }
  void u32v(u32 v) { put(v); }
  void u64v(u64 v) { put(v); }
  void bytes(std::span<const u8> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Begin a tagged section; returns the patch position for its length.
  size_t begin_section(u32 tag) {
    u32v(tag);
    const size_t pos = buf_.size();
    u64v(0);  // length placeholder
    return pos;
  }
  void end_section(size_t pos) {
    const u64 len = buf_.size() - (pos + 8);
    std::memcpy(&buf_[pos], &len, 8);
  }

  std::vector<u8> take() && { return std::move(buf_); }
  const std::vector<u8>& data() const { return buf_; }

 private:
  template <typename T>
  void put(T v) {
    u8 tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));  // host is little-endian (RV32 sim)
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<u8> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const u8> b) : buf_(b) {}

  u8 u8v() { return take<u8>(); }
  u16 u16v() { return take<u16>(); }
  u32 u32v() { return take<u32>(); }
  u64 u64v() { return take<u64>(); }
  void bytes(std::span<u8> out) {
    need(out.size());
    std::memcpy(out.data(), buf_.data() + pos_, out.size());
    pos_ += out.size();
  }

  size_t remaining() const { return buf_.size() - pos_; }
  size_t pos() const { return pos_; }
  void skip(size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  template <typename T>
  T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(size_t n) const {
    if (buf_.size() - pos_ < n) throw CkptError("truncated checkpoint image");
  }

  std::span<const u8> buf_;
  size_t pos_ = 0;
};

// ---- Struct codecs ----

void write_core(Writer& w, const sim::CoreState& s) {
  for (u32 r : s.regs) w.u32v(r);
  w.u32v(s.pc);
  for (addr_t a : s.hwl_start) w.u32v(a);
  for (addr_t a : s.hwl_end) w.u32v(a);
  for (u32 c : s.hwl_count) w.u32v(c);
  w.u8v(s.last_load_rd);
  w.u32v(s.last_load_data);
  w.u8v(static_cast<u8>(s.halt));
  w.u32v(s.mscratch);
  w.u32v(s.mpc);

  const sim::PerfCounters& p = s.perf;
  w.u64v(p.cycles);
  w.u64v(p.instructions);
  w.u64v(p.taken_branches);
  w.u64v(p.not_taken_branches);
  w.u64v(p.jumps);
  w.u64v(p.branch_stall_cycles);
  w.u64v(p.load_use_stall_cycles);
  w.u64v(p.mem_stall_cycles);
  w.u64v(p.mul_div_stall_cycles);
  w.u64v(p.hwloop_backedges);
  w.u64v(p.loads);
  w.u64v(p.stores);
  w.u64v(p.scalar_alu_ops);
  w.u64v(p.mul_ops);
  w.u64v(p.div_ops);
  w.u64v(p.simd_alu_ops);
  w.u64v(p.qnt_ops);
  w.u64v(p.qnt_stall_cycles);
  w.u64v(p.csr_ops);
  w.u64v(p.sys_ops);
  w.u64v(p.mac_ops);
  for (u64 v : p.dotp_ops) w.u64v(v);
  for (u64 v : p.mixed_dotp_ops) w.u64v(v);
  w.u64v(p.lsu_data_toggles);

  const sim::DotpState& d = s.dotp;
  for (u64 v : d.activity.operand_toggles) w.u64v(v);
  for (u64 v : d.activity.ops) w.u64v(v);
  for (u32 v : d.last_a) w.u32v(v);
  for (u32 v : d.last_b) w.u32v(v);
}

sim::CoreState read_core(Reader& r) {
  sim::CoreState s;
  for (u32& reg : s.regs) reg = r.u32v();
  s.pc = r.u32v();
  for (addr_t& a : s.hwl_start) a = r.u32v();
  for (addr_t& a : s.hwl_end) a = r.u32v();
  for (u32& c : s.hwl_count) c = r.u32v();
  s.last_load_rd = r.u8v();
  s.last_load_data = r.u32v();
  const u8 halt = r.u8v();
  if (halt > static_cast<u8>(sim::HaltReason::kInstrLimit)) {
    throw CkptError("invalid halt reason in core section");
  }
  s.halt = static_cast<sim::HaltReason>(halt);
  s.mscratch = r.u32v();
  s.mpc = r.u32v();

  sim::PerfCounters& p = s.perf;
  p.cycles = r.u64v();
  p.instructions = r.u64v();
  p.taken_branches = r.u64v();
  p.not_taken_branches = r.u64v();
  p.jumps = r.u64v();
  p.branch_stall_cycles = r.u64v();
  p.load_use_stall_cycles = r.u64v();
  p.mem_stall_cycles = r.u64v();
  p.mul_div_stall_cycles = r.u64v();
  p.hwloop_backedges = r.u64v();
  p.loads = r.u64v();
  p.stores = r.u64v();
  p.scalar_alu_ops = r.u64v();
  p.mul_ops = r.u64v();
  p.div_ops = r.u64v();
  p.simd_alu_ops = r.u64v();
  p.qnt_ops = r.u64v();
  p.qnt_stall_cycles = r.u64v();
  p.csr_ops = r.u64v();
  p.sys_ops = r.u64v();
  p.mac_ops = r.u64v();
  for (u64& v : p.dotp_ops) v = r.u64v();
  for (u64& v : p.mixed_dotp_ops) v = r.u64v();
  p.lsu_data_toggles = r.u64v();

  sim::DotpState& d = s.dotp;
  for (u64& v : d.activity.operand_toggles) v = r.u64v();
  for (u64& v : d.activity.ops) v = r.u64v();
  for (u32& v : d.last_a) v = r.u32v();
  for (u32& v : d.last_b) v = r.u32v();
  return s;
}

void write_mem(Writer& w, const MemSnapshot& m) {
  w.u64v(m.stats.loads);
  w.u64v(m.stats.stores);
  w.u64v(m.stats.load_bytes);
  w.u64v(m.stats.store_bytes);
  w.u64v(m.stats.misaligned_accesses);
  w.u64v(m.stats.contention_stalls);
  w.u64v(m.access_counter);
  w.u32v(m.contention_period);
  w.u64v(m.bytes.size());
  w.bytes(m.bytes);
}

MemSnapshot read_mem(Reader& r) {
  MemSnapshot m;
  m.stats.loads = r.u64v();
  m.stats.stores = r.u64v();
  m.stats.load_bytes = r.u64v();
  m.stats.store_bytes = r.u64v();
  m.stats.misaligned_accesses = r.u64v();
  m.stats.contention_stalls = r.u64v();
  m.access_counter = r.u64v();
  m.contention_period = r.u32v();
  const u64 n = r.u64v();
  if (n > r.remaining()) throw CkptError("memory image length exceeds section");
  m.bytes.resize(static_cast<size_t>(n));
  r.bytes(m.bytes);
  return m;
}

void write_arbiter(Writer& w, const cluster::BankArbiterState& a) {
  if (a.last_cycle.size() != a.last_core.size()) {
    throw CkptError("inconsistent arbiter state");
  }
  w.u32v(static_cast<u32>(a.last_cycle.size()));
  for (cycles_t c : a.last_cycle) w.u64v(c);
  for (int c : a.last_core) w.u32v(static_cast<u32>(c));
  w.u64v(a.conflicts);
  w.u64v(a.accesses);
}

cluster::BankArbiterState read_arbiter(Reader& r) {
  cluster::BankArbiterState a;
  const u32 banks = r.u32v();
  if (static_cast<u64>(banks) * 12 > r.remaining()) {
    throw CkptError("arbiter bank count exceeds section");
  }
  a.last_cycle.resize(banks);
  a.last_core.resize(banks);
  for (cycles_t& c : a.last_cycle) c = r.u64v();
  for (int& c : a.last_core) c = static_cast<int>(r.u32v());
  a.conflicts = r.u64v();
  a.accesses = r.u64v();
  return a;
}

}  // namespace

// ---- CRC-32 (IEEE 802.3, reflected) ----

u32 crc32(std::span<const u8> bytes) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xffffffffu;
  for (u8 b : bytes) crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

// ---- Capture / apply ----

Snapshot capture(const sim::Core& core, const mem::Memory& mem) {
  Snapshot s;
  s.cores.push_back(core.save_state());
  s.mem.bytes.resize(mem.size());
  mem.read_block(0, s.mem.bytes);
  s.mem.stats = mem.stats();
  s.mem.access_counter = mem.access_counter();
  s.mem.contention_period = mem.contention_period();
  return s;
}

Snapshot capture(const cluster::Cluster& cl) {
  Snapshot s;
  const cluster::ClusterState cs = cl.save_state();
  s.cores = cs.cores;
  s.arbiter = cs.arbiter;
  const mem::Memory& mem = cl.memory();
  s.mem.bytes.resize(mem.size());
  mem.read_block(0, s.mem.bytes);
  s.mem.stats = mem.stats();
  s.mem.access_counter = mem.access_counter();
  s.mem.contention_period = mem.contention_period();
  return s;
}

namespace {

void apply_mem(const MemSnapshot& m, mem::Memory& mem) {
  if (m.bytes.size() != mem.size()) {
    throw CkptError("snapshot memory size (" + std::to_string(m.bytes.size()) +
                    ") does not match target (" + std::to_string(mem.size()) +
                    ")");
  }
  mem.write_block(0, m.bytes);
  mem.set_stats(m.stats);
  mem.set_access_counter(m.access_counter);
  mem.set_contention_period(m.contention_period);
}

}  // namespace

void apply(const Snapshot& s, sim::Core& core, mem::Memory& mem) {
  if (s.is_cluster()) {
    throw CkptError("cluster snapshot applied to a single core");
  }
  if (s.cores.size() != 1) {
    throw CkptError("single-core snapshot must hold exactly one core");
  }
  apply_mem(s.mem, mem);
  core.restore_state(s.cores[0]);
  core.invalidate_decode_cache();
}

void apply(const Snapshot& s, cluster::Cluster& cl) {
  if (!s.is_cluster()) {
    throw CkptError("single-core snapshot applied to a cluster");
  }
  apply_mem(s.mem, cl.memory());
  // restore_state validates core/bank counts and invalidates decode caches
  // (required: the code image may have changed underneath the cores).
  cl.restore_state(cluster::ClusterState{s.cores, *s.arbiter});
}

// ---- Serialization ----

std::vector<u8> serialize(const Snapshot& s) {
  if (s.cores.empty()) throw CkptError("cannot serialize an empty snapshot");
  Writer w;
  w.u32v(kMagic);
  w.u16v(kFormatVersion);
  w.u16v(s.is_cluster() ? kFlagCluster : 0);

  size_t sec = w.begin_section(kTagMeta);
  w.u32v(static_cast<u32>(s.cores.size()));
  w.u64v(s.mem.bytes.size());
  w.end_section(sec);

  for (const sim::CoreState& c : s.cores) {
    sec = w.begin_section(kTagCore);
    write_core(w, c);
    w.end_section(sec);
  }

  sec = w.begin_section(kTagMem);
  write_mem(w, s.mem);
  w.end_section(sec);

  if (s.is_cluster()) {
    sec = w.begin_section(kTagClus);
    write_arbiter(w, *s.arbiter);
    w.end_section(sec);
  }

  const u32 crc = crc32(w.data());
  w.u32v(crc);
  return std::move(w).take();
}

Snapshot deserialize(std::span<const u8> bytes) {
  if (bytes.size() < 12) throw CkptError("image too small for header");
  // Checksum trailer covers everything before it.
  u32 stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  const auto body = bytes.first(bytes.size() - 4);
  if (crc32(body) != stored_crc) throw CkptError("checksum mismatch");

  Reader r(body);
  if (r.u32v() != kMagic) throw CkptError("bad magic (not a checkpoint)");
  const u16 version = r.u16v();
  if (version != kFormatVersion) {
    throw CkptError("unsupported format version " + std::to_string(version));
  }
  const u16 flags = r.u16v();

  Snapshot s;
  bool have_meta = false, have_mem = false, have_clus = false;
  u32 meta_cores = 0;

  while (r.remaining() > 0) {
    const u32 tag = r.u32v();
    const u64 len = r.u64v();
    if (len > r.remaining()) throw CkptError("section length exceeds image");
    const size_t end = r.pos() + static_cast<size_t>(len);

    switch (tag) {
      case kTagMeta:
        meta_cores = r.u32v();
        (void)r.u64v();  // declared memory size; MEM section is authoritative
        have_meta = true;
        break;
      case kTagCore:
        s.cores.push_back(read_core(r));
        break;
      case kTagMem:
        s.mem = read_mem(r);
        have_mem = true;
        break;
      case kTagClus:
        s.arbiter = read_arbiter(r);
        have_clus = true;
        break;
      default:
        // Unknown section from a newer writer of the same version line:
        // skip it. Mandatory structure is enforced below.
        break;
    }
    if (r.pos() > end) throw CkptError("section payload overran its length");
    r.skip(end - r.pos());
  }

  if (!have_meta) throw CkptError("missing META section");
  if (!have_mem) throw CkptError("missing MEM section");
  if (s.cores.empty()) throw CkptError("missing CORE section");
  if (s.cores.size() != meta_cores) {
    throw CkptError("core count disagrees with META");
  }
  const bool flag_cluster = (flags & kFlagCluster) != 0;
  if (flag_cluster != have_clus) {
    throw CkptError("cluster flag disagrees with CLUS section presence");
  }
  return s;
}

void save_file(const Snapshot& s, const std::string& path) {
  const std::vector<u8> bytes = serialize(s);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw CkptError("cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw CkptError("short write to " + path);
}

Snapshot load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw CkptError("cannot open " + path);
  const std::streamsize n = f.tellg();
  f.seekg(0);
  std::vector<u8> bytes(static_cast<size_t>(n));
  f.read(reinterpret_cast<char*>(bytes.data()), n);
  if (!f) throw CkptError("short read from " + path);
  return deserialize(bytes);
}

}  // namespace xpulp::ckpt
