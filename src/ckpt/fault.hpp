// Deterministic fault-injection campaigns over the conv kernels, built on
// the snapshot/restore machinery (DESIGN.md §11).
//
// A campaign runs N seeded trials of one conv layer. Each trial injects a
// single fault at a random instruction index:
//
//   TcdmBitFlip     flip one bit of a *persistent* TCDM region (code,
//                   input, weights or thresholds — regions the kernel
//                   never rewrites, so an unrecovered flip is always
//                   visible in the final image). Transient flips model
//                   SEUs; persistent ones model stuck-at cells that
//                   reassert after every restore.
//   RegisterBitFlip flip one bit of one architectural register. May be
//                   masked (dead register) — counted as kNoEffect.
//   StallPerturb    perturb the cycle counter, modeling a stall-model
//                   glitch. Caught by perf_invariant_violation().
//   IsaDegrade      drop the core's ISA to XpulpV2 mid-run, modeling a
//                   partial functional-unit failure. The degradation
//                   survives restores; recovery requires falling back to
//                   an XpulpV2 kernel variant.
//
// Detection stacks five independent checks, reported as the *first* one
// that fired: guest trap, watchdog (instruction budget), PerfCounters
// invariant, output-vs-reference mismatch, and a final full-memory scrub
// against the fault-free run's final image. The scrub guarantees 100%
// detection for TCDM flips in persistent regions: either the run diverged
// observably or the flipped bit is still there.
//
// Recovery restores the last checkpoint taken *before* the injection
// point and re-runs. Transient faults are not re-applied and the retry
// reconverges to the reference image (verified, not assumed). Persistent
// faults reassert and exhaust the retry budget. IsaDegrade recovers by
// regenerating the layer with a degraded-ISA-compatible variant
// (graceful degradation), when the policy allows it.
//
// Everything is derived from CampaignConfig::seed through splitmix64 —
// identical configs produce identical reports (fingerprint()), which the
// CI smoke campaign and the determinism tests rely on.
#pragma once

#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/registry.hpp"
#include "qnn/ref_layers.hpp"
#include "sim/core.hpp"

namespace xpulp::ckpt {

enum class FaultKind {
  kTcdmBitFlip,
  kRegisterBitFlip,
  kStallPerturb,
  kIsaDegrade,
};
const char* fault_kind_name(FaultKind k);

enum class Detector {
  kNone,
  kTrap,            // guest fault (memory fault, illegal instruction)
  kWatchdog,        // instruction budget exceeded / abnormal halt
  kPerfInvariant,   // perf_invariant_violation() non-empty
  kOutputMismatch,  // packed output differs from the fault-free run
  kMemScrub,        // final TCDM image differs from the fault-free run
};
const char* detector_name(Detector d);

enum class FaultOutcome {
  /// Fault injected but the run finished bit-identical to the fault-free
  /// run (architecturally masked). Possible for register flips only.
  kMasked,
  kDetectedRecovered,
  kDetectedUnrecovered,
  /// Output wrong yet nothing fired — an escape. The smoke campaign
  /// asserts this never happens.
  kUndetected,
};
const char* outcome_name(FaultOutcome o);

/// One concrete fault, fully determined by the campaign seed.
struct FaultSpec {
  FaultKind kind = FaultKind::kTcdmBitFlip;
  /// Inject immediately before the instruction with this retire index.
  u64 at_instruction = 0;

  // kTcdmBitFlip
  addr_t addr = 0;
  unsigned bit = 0;  // 0..7 within the byte
  /// Stuck-at cell: the flip reasserts after every restore.
  bool persistent = false;

  // kRegisterBitFlip
  unsigned reg = 0;      // 1..31 (x0 is hardwired)
  unsigned reg_bit = 0;  // 0..31

  // kStallPerturb
  i64 cycle_delta = 0;
};

struct CampaignConfig {
  u64 seed = 1;
  int num_faults = 100;
  /// Restore-and-retry attempts per detected fault.
  int max_retries = 2;
  /// Instructions between checkpoints (the last checkpoint at or before
  /// the injection point is the recovery point).
  u64 ckpt_every = 5000;
  /// Allow IsaDegrade recovery via an XpulpV2 fallback kernel.
  bool fallback_isa = true;
  /// Probability (x/256) that a TCDM flip is persistent (stuck-at).
  unsigned persistent_chance = 64;
  std::vector<FaultKind> kinds = {FaultKind::kTcdmBitFlip};

  // Workload: one conv layer, run to completion each trial.
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(4);
  kernels::ConvVariant variant = kernels::ConvVariant::kXpulpNN_HwQ;
  sim::CoreConfig core = sim::CoreConfig::extended();
};

struct FaultRecord {
  FaultSpec spec;
  FaultOutcome outcome = FaultOutcome::kMasked;
  Detector detector = Detector::kNone;
  int retries_used = 0;
  bool used_fallback = false;
  std::string note;
};

struct CampaignReport {
  std::vector<FaultRecord> records;

  // Aggregates (filled by run_campaign).
  int injected = 0;
  int masked = 0;
  int detected = 0;
  int recovered = 0;
  int unrecovered = 0;
  int undetected = 0;

  /// Instructions the fault-free reference run retires.
  u64 reference_instructions = 0;

  double detection_rate() const {
    const int effective = injected - masked;
    return effective ? static_cast<double>(detected) / effective : 1.0;
  }
  double recovery_rate() const {
    return detected ? static_cast<double>(recovered) / detected : 1.0;
  }

  /// Order-sensitive hash of every record (kind, site, outcome, detector,
  /// retries). Two runs of the same config must produce equal
  /// fingerprints — the determinism gate in tests and CI.
  u64 fingerprint() const;

  /// Publish aggregates plus per-detector counts under `prefix`.
  void publish(obs::Registry& reg, std::string_view prefix) const;
};

/// Run a full campaign. Deterministic: no wall-clock, no global state.
CampaignReport run_campaign(const CampaignConfig& cfg);

}  // namespace xpulp::ckpt
