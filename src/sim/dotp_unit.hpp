// Functional + activity model of the RI5CY/XpulpNN dot-product unit
// (paper Fig. 3).
//
// The hardware has four multiplier "regions" (16-, 8-, 4-, 2-bit), each with
// its own adder tree so the sub-byte paths do not lengthen the critical
// path. The paper adds input registers per region and clock-gates the
// regions not involved in the current operation ("Pow. Manag." in
// Table III); without gating, every operand change toggles all four
// regions. We model exactly that: per-region operand registers whose
// Hamming-distance toggles are accumulated, with a switch selecting whether
// unused regions see new operands. The toggle counters feed the
// activity-based power model that reproduces Table III / Figs. 7 and 9.
#pragma once

#include <array>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace xpulp::sim {

/// Index of a multiplier region by SIMD element width.
enum class DotpRegion : unsigned { k16 = 0, k8 = 1, k4 = 2, k2 = 3 };

DotpRegion region_for(isa::SimdFmt fmt);

/// Region a mixed dot product (mpc selector 0/1/2) occupies: the wide
/// (activation) operand width picks the multiplier array.
DotpRegion mixed_region(u32 sel);

struct DotpActivity {
  /// Operand-register bit toggles per region (both operands summed).
  std::array<u64, 4> operand_toggles{};
  /// Dot-product operations executed per region.
  std::array<u64, 4> ops{};
};

/// Complete serializable unit state: the activity counters plus the
/// per-region operand registers they are diffed against. Snapshot/restore
/// must carry the latches too, or the first dot product after a restore
/// would observe different Hamming toggles than the uninterrupted run.
struct DotpState {
  DotpActivity activity{};
  std::array<u32, 4> last_a{};
  std::array<u32, 4> last_b{};
};

class DotpUnit {
 public:
  /// `clock_gating` mirrors the paper's power-management knob: when false,
  /// operands propagate to (and toggle) every region on each operation.
  explicit DotpUnit(bool clock_gating = true) : clock_gating_(clock_gating) {}

  /// Element-wise SIMD op (pv.add/sub/avg/min/max/shift/abs/logic).
  /// `a` = rs1 vector, `b` = rs2 vector (or scalar-replicated source).
  u32 alu_op(isa::Mnemonic op, isa::SimdFmt fmt, u32 a, u32 b) const;

  /// Dot-product family. `acc` is the rd accumulator for sdot variants
  /// (ignored for plain dot). Updates the activity counters.
  i32 dotp(isa::Mnemonic op, isa::SimdFmt fmt, u32 a, u32 b, i32 acc);

  /// Without clock gating the EX-stage operand bus reaches every multiplier
  /// region on *every* instruction — the core calls this once per executed
  /// instruction when power management is off, and the resulting toggle
  /// counts are what the "No Pow. Manag." column of Table III pays for.
  void broadcast_operands(u32 a, u32 b);

  /// Reference dot product used by tests: widen each element and
  /// multiply-accumulate in 64-bit, truncated to 32.
  static i32 dotp_reference(isa::Mnemonic op, isa::SimdFmt fmt, u32 a, u32 b,
                            i32 acc);

  /// Mixed-operand reference (pv.mldot*/pv.mlsdot*): widths come from the
  /// mpc selector; rs2 packs 32/WA weights of WB bits in its low lanes.
  /// Throws SimError on the reserved selector (3).
  static i32 dotp_reference_mixed(isa::Mnemonic op, u32 sel, u32 a, u32 b,
                                  i32 acc);

  /// Mixed dot product with activity tracking against the wide region.
  i32 dotp_mixed(isa::Mnemonic op, u32 sel, u32 a, u32 b, i32 acc);

  /// Fast-path bookkeeping, bit-identical to what dotp() records: latch the
  /// raw operands into the selected region (when gated) and count the op.
  /// The caller computes the arithmetic itself through its decode-
  /// specialized kernels (see Core::exec_simd_dotp_fast).
  void note_dotp(unsigned region, u32 a, u32 b) {
    if (clock_gating_) {
      activity_.operand_toggles[region] +=
          hamming_distance(last_a_[region], a) +
          hamming_distance(last_b_[region], b);
      last_a_[region] = a;
      last_b_[region] = b;
    }
    activity_.ops[region] += 1;
  }

  const DotpActivity& activity() const { return activity_; }
  void reset_activity() { activity_ = DotpActivity{}; }

  // Superblock burst support: the fused loop keeps one region's operand
  // latches in host registers for a whole burst and batch-applies the
  // accumulated toggles and op count at burst exit — bit-identical to the
  // same sequence of note_dotp() calls.
  u32 latch_a(unsigned region) const { return last_a_[region]; }
  u32 latch_b(unsigned region) const { return last_b_[region]; }
  void set_latches(unsigned region, u32 a, u32 b) {
    last_a_[region] = a;
    last_b_[region] = b;
  }
  void add_activity(unsigned region, u64 toggles, u64 ops) {
    activity_.operand_toggles[region] += toggles;
    activity_.ops[region] += ops;
  }

  DotpState state() const { return DotpState{activity_, last_a_, last_b_}; }
  void restore(const DotpState& s) {
    activity_ = s.activity;
    last_a_ = s.last_a;
    last_b_ = s.last_b;
  }
  bool clock_gating() const { return clock_gating_; }
  void set_clock_gating(bool on) { clock_gating_ = on; }

 private:
  void track(DotpRegion region, u32 a, u32 b);

  bool clock_gating_;
  DotpActivity activity_{};
  std::array<u32, 4> last_a_{};
  std::array<u32, 4> last_b_{};
};

/// Extract element `i` of vector `v` in format `fmt`, sign- or
/// zero-extended to 32 bits. Exposed for tests and the ARM model.
i32 simd_extract(u32 v, isa::SimdFmt fmt, unsigned i, bool sign);

/// Insert the low bits of `e` as element `i` of `v`.
u32 simd_insert(u32 v, isa::SimdFmt fmt, unsigned i, u32 e);

/// Scalar-replication source: for `.sc` formats the scalar is element 0 of
/// rs2 replicated over all lanes; otherwise rs2 is used as-is.
u32 simd_operand_b(u32 rs2, isa::SimdFmt fmt);

}  // namespace xpulp::sim
