// Superblock engine: detection, compilation, fused execution and
// invalidation (DESIGN.md §12). These are Core member functions — the
// fused loop is an alternative inner loop of the same core, touching the
// same architectural state as step_fast(), never a separate machine.
//
// Bit-exactness contract (enforced by the three-way differential tests):
// every exit from a fused burst — normal completion, budget exhaustion,
// self-modifying-store bail, memory fault — leaves registers, pc,
// hardware-loop state, last-load tracking, PerfCounters and MemStats
// exactly as if the interpreter had stepped each instruction.
#include "sim/superblock.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "sim/dotp_lanes.hpp"

#if defined(__SSE4_1__)
#define XPULP_SB_HOST_SIMD 1
#include <immintrin.h>
#endif

namespace xpulp::sim {

using isa::Instr;
using isa::Mnemonic;
namespace iflag = isa::iflag;

namespace {

u8 load_dest(const SbOp& o) {
  return (o.flags & iflag::kIsLoad) ? o.rd : u8{0};
}

bool reads_reg(const SbOp& o, u8 r) {
  return ((o.flags & iflag::kReadsRs1) && o.rs1 == r) ||
         ((o.flags & iflag::kReadsRs2) && o.rs2 == r) ||
         ((o.flags & iflag::kReadsRd) && o.rd == r);
}

/// dst += d * k. Every PerfCounters field is linear in the number of
/// iterations, so a whole burst's static accounting is one scaled add
/// instead of one add per iteration.
void add_scaled(PerfCounters& dst, const PerfCounters& d, u64 k) {
  dst.cycles += d.cycles * k;
  dst.instructions += d.instructions * k;
  dst.taken_branches += d.taken_branches * k;
  dst.not_taken_branches += d.not_taken_branches * k;
  dst.jumps += d.jumps * k;
  dst.branch_stall_cycles += d.branch_stall_cycles * k;
  dst.load_use_stall_cycles += d.load_use_stall_cycles * k;
  dst.mem_stall_cycles += d.mem_stall_cycles * k;
  dst.mul_div_stall_cycles += d.mul_div_stall_cycles * k;
  dst.hwloop_backedges += d.hwloop_backedges * k;
  dst.loads += d.loads * k;
  dst.stores += d.stores * k;
  dst.scalar_alu_ops += d.scalar_alu_ops * k;
  dst.mul_ops += d.mul_ops * k;
  dst.div_ops += d.div_ops * k;
  dst.simd_alu_ops += d.simd_alu_ops * k;
  dst.qnt_ops += d.qnt_ops * k;
  dst.qnt_stall_cycles += d.qnt_stall_cycles * k;
  dst.csr_ops += d.csr_ops * k;
  dst.sys_ops += d.sys_ops * k;
  dst.mac_ops += d.mac_ops * k;
  for (unsigned i = 0; i < d.dotp_ops.size(); ++i) {
    dst.dotp_ops[i] += d.dotp_ops[i] * k;
  }
  for (unsigned i = 0; i < d.mixed_dotp_ops.size(); ++i) {
    dst.mixed_dotp_ops[i] += d.mixed_dotp_ops[i] * k;
  }
  dst.lsu_data_toggles += d.lsu_data_toggles * k;
}

void add_counters(PerfCounters& dst, const PerfCounters& d) {
  add_scaled(dst, d, 1);
}

/// Static per-op accounting, batched into the per-iteration delta (and the
/// repair prefixes). Must mirror the fused op bodies in sb_execute():
/// fully-inlined kinds batch their class counter here; kAluImm/kAluReg/
/// kHandler ops run the existing exec helpers, which charge class counters
/// and static stalls (mulh latency, qnt compare cycles) eagerly, so only
/// the base cycle/instruction and intra-block hazard are batched for them.
void op_static_delta(const SbOp& o, PerfCounters& d, mem::MemStats& m) {
  d.instructions += 1;
  d.cycles += 1 + o.hazard;
  d.load_use_stall_cycles += o.hazard;
  switch (o.kind) {
    case SbKind::kConst:
    case SbKind::kAddImm:
      d.scalar_alu_ops += 1;
      break;
    case SbKind::kMac:
      d.scalar_alu_ops += 1;
      d.mul_ops += 1;
      d.mac_ops += 1;
      break;
    case SbKind::kMem:
      if (o.flags & iflag::kIsStore) {
        d.stores += 1;
        m.stores += 1;
        m.store_bytes += o.aux;
      } else {
        d.loads += 1;
        m.loads += 1;
        m.load_bytes += o.aux;
      }
      break;
    case SbKind::kDotp:
      d.dotp_ops[o.aux] += 1;
      // Mixed dots carry their baked mpc selector in imm; the per-selector
      // breakdown rides alongside the region counter above.
      if (o.flags & iflag::kDotMixed) {
        d.mixed_dotp_ops[static_cast<unsigned>(o.imm)] += 1;
      }
      break;
    default:
      break;
  }
}

#ifdef XPULP_SB_HOST_SIMD
/// Host-SIMD dot kernels for the two hot SIMD widths (bytes and nibbles),
/// bit-identical to dotp_lanes<W, false>: widen every lane to 16 bits with
/// its operand's signedness, multiply-accumulate pairs into 32-bit lanes
/// (a sum of <=8 products of 16-bit values cannot overflow 32 bits — this
/// is why pmaddwd is used and not the saturating pmaddubsw), and fold.
/// Lane sums wrap mod 2^32 exactly like the scalar kernel's u32 adds.

inline i32 host_dot8(u32 a, u32 b, u32 sum, bool sa, bool sb) {
  const __m128i va = _mm_cvtsi32_si128(static_cast<int>(a));
  const __m128i vb = _mm_cvtsi32_si128(static_cast<int>(b));
  const __m128i wa = sa ? _mm_cvtepi8_epi16(va) : _mm_cvtepu8_epi16(va);
  const __m128i wb = sb ? _mm_cvtepi8_epi16(vb) : _mm_cvtepu8_epi16(vb);
  const u64 q =
      static_cast<u64>(_mm_cvtsi128_si64(_mm_madd_epi16(wa, wb)));
  return static_cast<i32>(sum + static_cast<u32>(q) +
                          static_cast<u32>(q >> 32));
}

inline i32 host_dot4(u32 a, u32 b, u32 sum, bool sa, bool sb) {
  // Spread the eight nibbles into eight bytes (even nibbles in the low
  // half, odd in the high — lane order is irrelevant to a dot product as
  // long as both operands use the same one), then sign-extend
  // nibble-in-byte via the (x ^ 8) - 8 identity where signed.
  const auto expand = [](u32 v) {
    const u64 lo = v & 0x0F0F0F0Fu;
    const u64 hi = (static_cast<u64>(v) >> 4) & 0x0F0F0F0Fu;
    return _mm_cvtsi64_si128(static_cast<long long>(lo | hi << 32));
  };
  const __m128i k8 = _mm_set1_epi8(8);
  __m128i va = expand(a);
  __m128i vb = expand(b);
  if (sa) va = _mm_sub_epi8(_mm_xor_si128(va, k8), k8);
  if (sb) vb = _mm_sub_epi8(_mm_xor_si128(vb, k8), k8);
  const __m128i wa = sa ? _mm_cvtepi8_epi16(va) : _mm_cvtepu8_epi16(va);
  const __m128i wb = sb ? _mm_cvtepi8_epi16(vb) : _mm_cvtepu8_epi16(vb);
  __m128i p = _mm_madd_epi16(wa, wb);
  p = _mm_add_epi32(p, _mm_shuffle_epi32(p, 0xEE));
  const u64 q = static_cast<u64>(_mm_cvtsi128_si64(p));
  return static_cast<i32>(sum + static_cast<u32>(q) +
                          static_cast<u32>(q >> 32));
}

/// Raw lane-0 replication turning a .sc operand into a full vector. Lane
/// extension happens inside the kernels, so replicating the unextended
/// bits is exactly the dotp_lanes<W, true> semantics.
inline u32 rep8(u32 b) { return (b & 0xFFu) * 0x01010101u; }
inline u32 rep4(u32 b) { return (b & 0xFu) * 0x11111111u; }

/// Nibbles of `v` spread into eight bytes (even nibbles in the low four,
/// odd in the high four) for the kConvInner nibble kernel.
inline u64 spread4(u32 v) {
  return (v & 0x0F0F0F0Fu) |
         ((static_cast<u64>(v) >> 4) & 0x0F0F0F0F) << 32;
}

/// Recognize the 2x2-blocked MatMul inner body (SbShape::kConvInner):
///   ops[0..3]  post-increment word loads (any registers, any order);
///   ops[4..7]  same-format byte/nibble dot products over two activation
///              words x two weight words, one accumulator each.
/// The structural requirements are exactly what makes the batched
/// macro-op handler equivalent to executing the four dots in sequence:
/// identical format/sign flags, the 2x2 operand pattern, and destination
/// registers that are distinct and never read as dot operands (loads need
/// no constraints — the handler sequences them like the generic loop).
/// The nibble kernel multiplies via pmaddubsw, so its first operand must
/// be unsigned; signed-by-signed nibble blocks stay on the generic path.
bool matches_conv_inner(const SuperblockPlan& p) {
  if (!p.is_hwloop || p.ops.size() != 8) return false;
  for (size_t k = 0; k < 4; ++k) {
    const SbOp& o = p.ops[k];
    if (o.kind != SbKind::kMem) return false;
    const u16 f = o.flags;
    if ((f & iflag::kIsStore) || !(f & iflag::kMemPostInc) ||
        (f & iflag::kMemRegOff) || o.aux != 4) {
      return false;
    }
  }
  const SbOp& d0 = p.ops[4];
  if (d0.fmt != isa::SimdFmt::kB && d0.fmt != isa::SimdFmt::kN) return false;
  if (d0.fmt == isa::SimdFmt::kN && (d0.flags & iflag::kDotSignedA)) {
    return false;
  }
  constexpr u16 kDotMask =
      iflag::kDotAccum | iflag::kDotSignedA | iflag::kDotSignedB;
  for (size_t k = 4; k < 8; ++k) {
    const SbOp& o = p.ops[k];
    if (o.kind != SbKind::kDotp || o.fmt != d0.fmt) return false;
    if ((o.flags & kDotMask) != (d0.flags & kDotMask)) return false;
  }
  if (p.ops[4].rs1 != p.ops[6].rs1 || p.ops[5].rs1 != p.ops[7].rs1) {
    return false;
  }
  if (p.ops[4].rs2 != p.ops[5].rs2 || p.ops[6].rs2 != p.ops[7].rs2) {
    return false;
  }
  for (size_t k = 4; k < 8; ++k) {
    const u8 rd = p.ops[k].rd;
    if (rd == 0) return false;
    for (size_t j = 4; j < 8; ++j) {
      if (j != k && p.ops[j].rd == rd) return false;
      if (p.ops[j].rs1 == rd || p.ops[j].rs2 == rd) return false;
    }
  }
  return true;
}
#endif  // XPULP_SB_HOST_SIMD

bool is_conditional_branch(Mnemonic op) {
  using M = Mnemonic;
  switch (op) {
    case M::kBeq: case M::kBne: case M::kBlt: case M::kBge:
    case M::kBltu: case M::kBgeu: case M::kPBeqimm: case M::kPBneimm:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Core::sb_note_backedge(addr_t branch_pc, addr_t target) {
  SbHeatEntry& e = sb_heat_[(branch_pc >> 1) & (kSbHeatSize - 1)];
  if (e.pc != branch_pc) {
    e.pc = branch_pc;
    e.count = 1;
    return;
  }
  if (++e.count >= kSbHeatThreshold) {
    e.count = 0;
    sb_candidate_ = target;
    sb_candidate_branch_ = branch_pc;
  }
}

SuperblockPlan* Core::sb_find(addr_t start) {
  // Linear scan: a program has a handful of hot loops, not hundreds.
  for (const auto& p : sb_plans_) {
    if (p->start == start) return p.get();
  }
  return nullptr;
}

void Core::sb_recompute_extent() {
  sb_lo_ = ~addr_t{0};
  sb_hi_ = 0;
  for (const auto& p : sb_plans_) {
    sb_lo_ = std::min(sb_lo_, p->start);
    sb_hi_ = std::max(sb_hi_, p->end);
  }
  if (sb_plans_.empty()) sb_lo_ = sb_hi_ = 0;
}

void Core::sb_invalidate_range(addr_t a, unsigned size) {
  const u64 sa = a;
  const u64 se = sa + size;
  bool changed = false;
  for (auto it = sb_plans_.begin(); it != sb_plans_.end();) {
    SuperblockPlan& p = **it;
    if (se > p.start && sa < p.end) {
      sb_stats_.invalidations += 1;
      changed = true;
      if (&p == sb_active_) {
        // The fused loop is executing this plan right now (self-modifying
        // store): the storage can't be freed under it. Flag it — the burst
        // bails at the next op boundary and sb_exit() evicts it.
        sb_active_dirty_ = true;
        p.dead = true;
        ++it;
      } else {
        it = sb_plans_.erase(it);
      }
    } else {
      ++it;
    }
  }
  for (auto it = sb_rejects_.begin(); it != sb_rejects_.end();) {
    // The patched region may compile now; forget the rejection.
    if (se > it->first && sa < it->second) {
      it = sb_rejects_.erase(it);
    } else {
      ++it;
    }
  }
  if (changed) sb_recompute_extent();
}

void Core::sb_evict_mixed_plans() {
  // A value-changing write to the precision-status CSR (or a checkpoint
  // restore with a different mpc) invalidates every plan that baked the
  // old selector into its fused dot bodies. CSR ops never compile into a
  // block, so this cannot fire from inside a burst executing the plan —
  // but restore paths could in principle; mirror sb_invalidate_range's
  // live-plan handling for safety.
  bool changed = false;
  for (auto it = sb_plans_.begin(); it != sb_plans_.end();) {
    SuperblockPlan& p = **it;
    if (p.uses_mixed) {
      sb_stats_.invalidations += 1;
      sb_stats_.mpc_evictions += 1;
      changed = true;
      if (&p == sb_active_) {
        sb_active_dirty_ = true;
        p.dead = true;
        ++it;
      } else {
        it = sb_plans_.erase(it);
      }
    } else {
      ++it;
    }
  }
  if (changed) sb_recompute_extent();
}

void Core::sb_clear() {
  sb_plans_.clear();
  sb_rejects_.clear();
  sb_heat_.fill({});
  sb_candidate_ = kNoSbCandidate;
  sb_candidate_branch_ = 0;
  sb_active_ = nullptr;
  sb_active_dirty_ = false;
  sb_lo_ = sb_hi_ = 0;
}

SuperblockPlan* Core::sb_compile(addr_t start, addr_t branch_pc) {
  // Block bounds from the trigger: a hardware loop whose start register
  // equals `start` gives exact bounds; otherwise the heat counter recorded
  // the backward branch that targets `start`.
  const bool is_hwloop = branch_pc == 0;
  addr_t end = 0;  // one past the last *body* byte
  if (is_hwloop) {
    for (unsigned l = 0; l < 2; ++l) {
      if (hwl_count_[l] > 0 && hwl_start_[l] == start) {
        end = hwl_end_[l];
        break;
      }
    }
  } else {
    end = branch_pc;
  }

  const auto reject = [&]() -> SuperblockPlan* {
    sb_stats_.compile_rejects += 1;
    if (sb_rejects_.size() >= 64) sb_rejects_.clear();  // bounded memory
    sb_rejects_.emplace_back(start, std::max(end, start) + 4);
    return nullptr;
  };

  if (end < start || end - start > 4 * kSbMaxOps) return reject();

  auto plan = std::make_unique<SuperblockPlan>();
  plan->start = start;
  plan->is_hwloop = is_hwloop;

  u8 prev_load_rd = 0;  // op[0]'s entry hazard is dynamic, not static
  try {
    for (addr_t pc = start; pc < end;) {
      // Copy: fetch_decode returns a reference into the decode cache,
      // which later fetches may reallocate.
      const Instr in = fetch_decode(pc);
      if (pc + in.size > end) return reject();  // straddles the boundary
      if (in.flags & feature_guard_) return reject();  // would trap
      if (plan->ops.size() >= kSbMaxOps) return reject();

      SbOp o{};
      o.rd = in.rd;
      o.rs1 = in.rs1;
      o.rs2 = in.rs2;
      o.flags = in.flags;
      o.fmt = in.fmt;
      o.cls = in.cls;
      o.op = in.op;
      o.imm = in.imm;
      using C = isa::ExecClass;
      switch (in.cls) {
        case C::kLui:
          o.kind = SbKind::kConst;
          break;
        case C::kAuipc:
          o.kind = SbKind::kConst;
          o.imm = static_cast<i32>(pc + static_cast<u32>(in.imm));
          break;
        case C::kAluImm:
          o.kind = in.op == Mnemonic::kAddi ? SbKind::kAddImm : SbKind::kAluImm;
          break;
        case C::kAluReg:
          o.kind = SbKind::kAluReg;
          break;
        case C::kMem:
          o.kind = SbKind::kMem;
          o.aux = in.mem_size;
          break;
        case C::kSimdDotp:
          o.kind = SbKind::kDotp;
          if (in.flags & iflag::kDotMixed) {
            // Virtual SIMD: the operand formats live in the precision-
            // status CSR. Bake the current selector into the plan (imm is
            // unused by dot ops); any later mpc write evicts the plan. The
            // reserved selector would trap, so it never compiles.
            if (mpc_ >= isa::kMpcSelCount) return reject();
            o.aux = static_cast<u8>(mixed_region(mpc_));
            o.imm = static_cast<i32>(mpc_);
            plan->uses_mixed = true;
            plan->baked_mpc = static_cast<u8>(mpc_);
          } else {
            o.aux = static_cast<u8>(region_for(in.fmt));
          }
          break;
        case C::kPulpScalar:
          if (in.op == Mnemonic::kPMac || in.op == Mnemonic::kPMsu) {
            o.kind = SbKind::kMac;
            o.aux = in.op == Mnemonic::kPMsu;
          } else if (in.op == Mnemonic::kPInsert ||
                     in.op == Mnemonic::kPBclr || in.op == Mnemonic::kPBset) {
            // Illegal bit-field shapes trap with the faulting pc. Width
            // legality is a static property of the immediates, so verify
            // it here and keep compiled blocks IllegalInstruction-free
            // instead of repairing a stale pc at run time.
            const unsigned width = static_cast<unsigned>(in.imm2) + 1;
            const unsigned pos = static_cast<unsigned>(in.imm);
            if (pos + width > 32) return reject();
            o.kind = SbKind::kHandler;
          } else {
            o.kind = SbKind::kHandler;
          }
          break;
        case C::kMulDiv:
        case C::kSimdAlu:
        case C::kSimdElem:
        case C::kSimdQnt:
          o.kind = SbKind::kHandler;
          break;
        default:
          // Control flow, hwloop setup, CSR (reads live cycle counters),
          // fence/ecall/ebreak, illegal: never fused.
          return reject();
      }

      if (prev_load_rd != 0 && reads_reg(o, prev_load_rd)) {
        o.hazard = static_cast<u8>(timing_.load_use_penalty);
      }
      prev_load_rd = load_dest(o);

      plan->op_pc.push_back(pc);
      plan->ops.push_back(o);
      plan->instrs.push_back(in);
      pc += in.size;
    }

    if (!is_hwloop) {
      const Instr in = fetch_decode(branch_pc);
      if (!is_conditional_branch(in.op)) return reject();
      if (in.flags & feature_guard_) return reject();
      if (branch_pc + static_cast<u32>(in.imm) != start) return reject();
      SbOp b{};
      b.kind = SbKind::kBranch;
      b.op = in.op;
      b.rs1 = in.rs1;
      b.rs2 = in.rs2;
      b.flags = in.flags;
      if (in.op == Mnemonic::kPBeqimm || in.op == Mnemonic::kPBneimm) {
        b.imm = static_cast<i32>(sign_extend(in.imm2, 5));
      }
      if (prev_load_rd != 0 && reads_reg(b, prev_load_rd)) {
        b.hazard = static_cast<u8>(timing_.load_use_penalty);
      }
      plan->branch = b;
      plan->end = branch_pc + in.size;
      plan->op_pc.push_back(branch_pc);
    } else {
      if (plan->ops.empty()) return reject();
      plan->end = end;
      plan->op_pc.push_back(end);
    }
  } catch (...) {
    // Decode walked off mapped memory; the interpreter will fault at the
    // precise instruction if execution ever reaches it.
    return reject();
  }

  // Single-region dot-product blocks let the fused loop keep that region's
  // operand latches in host registers for the whole burst (0xff = none or
  // mixed; the per-op note_dotp path handles those).
  {
    u8 dr = 0xff;
    bool mixed = false;
    for (const SbOp& o : plan->ops) {
      if (o.kind != SbKind::kDotp) continue;
      if (dr == 0xff) {
        dr = o.aux;
      } else if (dr != o.aux) {
        mixed = true;
      }
    }
    plan->dotp_region = mixed ? u8{0xff} : dr;
  }
#ifdef XPULP_SB_HOST_SIMD
  if (matches_conv_inner(*plan)) plan->shape = SbShape::kConvInner;
#endif

  // Worst-case dynamic cycles per iteration in slim memory mode, for the
  // sampled-burst arming check. Conservative per class: a memory op can
  // pay the misaligned penalty, a divide the maximal significant-bit
  // latency, a quantization op its threshold walk plus fetch stalls.
  {
    u64 dyn = 0;
    for (const SbOp& o : plan->ops) {
      switch (o.cls) {
        case isa::ExecClass::kMem: dyn += 2; break;
        case isa::ExecClass::kMulDiv: dyn += 40; break;
        case isa::ExecClass::kSimdQnt: dyn += 64; break;
        default: break;
      }
    }
    plan->max_dyn_iter = dyn;
  }

  // Batched static accounting: per-op prefixes for mid-iteration repair,
  // plus the full-iteration deltas the fused loop applies.
  const size_t n = plan->ops.size();
  plan->perf_prefix.resize(n + 1);
  plan->mem_prefix.resize(n + 1);
  PerfCounters pacc{};
  mem::MemStats macc{};
  for (size_t i = 0; i < n; ++i) {
    plan->perf_prefix[i] = pacc;
    plan->mem_prefix[i] = macc;
    op_static_delta(plan->ops[i], pacc, macc);
  }
  plan->perf_prefix[n] = pacc;
  plan->mem_prefix[n] = macc;
  plan->iter_mem = macc;
  if (is_hwloop) {
    plan->iter_perf = pacc;
    // All but the final iteration charge a hardware-loop backedge; the
    // burst exit subtracts the final one when the count is exhausted.
    plan->iter_perf.hwloop_backedges = 1;
    plan->exit_perf = pacc;  // unused: hwloop exits need no extra delta
    plan->exit_last_load_rd = load_dest(plan->ops[n - 1]);
    if (plan->exit_last_load_rd != 0 &&
        reads_reg(plan->ops[0], plan->exit_last_load_rd)) {
      plan->wrap_hazard = static_cast<u8>(timing_.load_use_penalty);
    }
  } else {
    const SbOp& b = plan->branch;
    PerfCounters taken = pacc;
    taken.instructions += 1;
    taken.cycles += 1 + b.hazard + timing_.taken_branch_penalty;
    taken.load_use_stall_cycles += b.hazard;
    taken.branch_stall_cycles += timing_.taken_branch_penalty;
    taken.taken_branches += 1;
    PerfCounters fall = pacc;
    fall.instructions += 1;
    fall.cycles += 1 + b.hazard;
    fall.load_use_stall_cycles += b.hazard;
    fall.not_taken_branches += 1;
    plan->iter_perf = taken;
    plan->exit_perf = fall;
    // The op before op[0] on later iterations is the branch — never a
    // load — so both wrap_hazard and the exit last-load slot stay 0.
  }

  sb_stats_.blocks_compiled += 1;
  sb_plans_.push_back(std::move(plan));
  SuperblockPlan* out = sb_plans_.back().get();
  sb_recompute_extent();
  return out;
}

u64 Core::superblock_enter(addr_t start, addr_t branch_pc, u64 budget) {
  // The ungated config broadcasts EX-stage operands per instruction (a
  // power-model effect the batched loop can't reproduce), and reference
  // dispatch / tracing want the plain interpreters.
  if (!cfg_.superblock || !cfg_.clock_gating) return 0;
  SuperblockPlan* plan = sb_find(start);
  if (plan == nullptr) {
    for (const auto& r : sb_rejects_) {
      if (r.first == start) return 0;
    }
    plan = sb_compile(start, branch_pc);
    if (plan == nullptr) return 0;
  }
  return sb_execute(*plan, budget);
}

void Core::sb_exit(SuperblockPlan& plan) {
  sb_active_ = nullptr;
  if (plan.dead) {
    for (auto it = sb_plans_.begin(); it != sb_plans_.end(); ++it) {
      if (it->get() == &plan) {
        sb_plans_.erase(it);
        break;
      }
    }
    sb_recompute_extent();
  }
  sb_active_dirty_ = false;
}

u64 Core::sb_execute(SuperblockPlan& plan, u64 budget) {
  // Sampled bursts pay per-iteration (and, near the deadline, per-op)
  // boundary checks; unsampled bursts compile to the pre-xtel loop. A
  // cluster burst horizon (burst_due_, set by run_burst) rides the same
  // deadline mechanism — whichever comes first is the effective due.
  const cycles_t due = std::min(sample_due_, burst_due_);
  return due != kNoSampleDue ? sb_execute_impl<true>(plan, budget)
                             : sb_execute_impl<false>(plan, budget);
}

template <bool Sampled>
u64 Core::sb_execute_impl(SuperblockPlan& plan, u64 budget) {
  const size_t n = plan.ops.size();
  const u64 per_iter = n + (plan.is_hwloop ? 0 : 1);

  // Mixed-format plans bake the precision-status selector into their dot
  // ops. mpc writes evict them, so a mismatch here should be unreachable —
  // but a stale plan misfusing silently would be a correctness bug, so
  // reject defensively and let the interpreter (and a recompile) take over.
  if (plan.uses_mixed && plan.baked_mpc != mpc_) [[unlikely]] {
    sb_stats_.entry_rejects += 1;
    return 0;
  }

  // Entry guards: the cached plan is keyed by its start address; verify
  // the *current* machine state still matches the structure it was
  // compiled for, else fall back to the interpreter for this visit.
  int l = -1;
  if (plan.is_hwloop) {
    if (hwl_start_[0] == plan.start && hwl_end_[0] == plan.end &&
        hwl_count_[0] > 0) {
      l = 0;
    } else if (hwl_start_[1] == plan.start && hwl_end_[1] == plan.end &&
               hwl_count_[1] > 0) {
      l = 1;
    } else {
      sb_stats_.entry_rejects += 1;
      return 0;
    }
    // The other loop must not claim an instruction boundary inside the
    // block: the interpreter services L0 before L1 at every boundary, so
    // a shared end address is only safe when we fused L0.
    const unsigned o = 1 - static_cast<unsigned>(l);
    if (hwl_count_[o] != 0) {
      const addr_t oe = hwl_end_[o];
      if ((oe > plan.start && oe < plan.end) || (oe == plan.end && l != 0)) {
        sb_stats_.entry_rejects += 1;
        return 0;
      }
    }
  } else if (hwl_active_) {
    // A live hardware loop could take a backedge at any boundary inside
    // the block; the plan has no hwloop checks compiled in.
    sb_stats_.entry_rejects += 1;
    return 0;
  }

  u64 iters = budget / per_iter;
  u64 count_entry = 0;
  if (plan.is_hwloop) {
    count_entry = hwl_count_[l];
    iters = std::min<u64>(iters, count_entry);
  }
  if (iters == 0) return 0;  // budget smaller than one iteration

  sb_stats_.entries += 1;
  sb_active_ = &plan;
  sb_active_dirty_ = false;

  // op[0]'s load-use hazard against the live entry context (first
  // iteration only; afterwards it wraps around statically).
  const SbOp* const ops = plan.ops.data();
  unsigned hz0 = 0;
  if (last_load_rd_ != 0) {
    const SbOp& first = n != 0 ? ops[0] : plan.branch;
    if (reads_reg(first, last_load_rd_)) hz0 = timing_.load_use_penalty;
  }

  // Burst-local hoisting. None of the ops a plan can contain reach these
  // core members except the inlined kMem/kDotp bodies below (kMem never
  // compiles to kHandler, note_dotp is only called from the dotp fast
  // path, and broadcast_operands only runs ungated — excluded at entry),
  // so they can live in host registers for the whole burst and be flushed
  // once at every exit:
  //   - the LSU data latch and its toggle count;
  //   - the operand latches of the block's single dot-product region.
  // The memory model's dynamic stall sources are loop-invariant too: with
  // no hook and no contention injector, an aligned in-bounds access costs
  // zero stalls and nothing else in access_stalls() can fire.
  const u32 msize = mem_.size();
  // A burst sink restores slim eligibility under an access hook: the
  // cluster's burst phase installs a hook that only logs and returns zero
  // stalls, so the slim path's "aligned in-bounds accesses are stall-free"
  // invariant (and max_dyn_iter's dynamic bound) hold again — the slim
  // fast path then appends each access directly to the sink with the same
  // exact coordinates the hook latches would have carried, skipping the
  // per-access std::function dispatch entirely.
  const bool sink_log = burst_sink_ != nullptr;
  const bool mem_slim =
      (!mem_.has_access_hook() || sink_log) &&
      mem_.contention_period() == 0;
  // With an access hook installed (cluster runs) the slim path is off, so
  // every access flows through access_stalls()/the handler's access_cycles.
  // Latch the exact reference coordinates (pc, instruction-start cycle,
  // access cycle) the hook reads via access_pc()/access_start()/
  // access_cycle() — the same prefix arithmetic as the repair tables, plus
  // the op's own hazard, which the step paths charge before the access.
  const bool latch = mem_.has_access_hook();

  // Sampling: the run loop fires at instruction boundaries before entering
  // a burst, so cycles < due here. The true cycle count at any boundary
  // inside the burst is perf_.cycles (entry value + eager dynamic charges)
  // + done * iter_cycles (batched statics of completed iterations)
  // + the current iteration's static prefix — exactly the repair-table
  // arithmetic, so a deadline crossing is detected at the same boundary
  // the interpreter would sample at. An iteration whose worst-case end
  // cannot reach the deadline ("unarmed") runs at full fused speed; with
  // an access hook or contention injector the dynamic bound does not hold
  // and every iteration is armed.
  const cycles_t due =
      Sampled ? std::min(sample_due_, burst_due_) : kNoSampleDue;
  // Attribution of deadline flushes: a strictly-earlier burst horizon is
  // the binding deadline (burst_flushes); otherwise the sampler is.
  const bool burst_bound = Sampled && burst_due_ < sample_due_;
  const u64 c_iter = plan.iter_perf.cycles;
  const u64 max_dyn = mem_slim ? plan.max_dyn_iter : (~u64{0} >> 1);
  u32 lld = last_load_data_;
  u64 toggles = 0;
  const unsigned dr = plan.dotp_region;
  const bool hoist_dotp = dr != 0xff && dotp_.clock_gating();
  u32 dla = 0, dlb = 0;
  u64 dtog = 0, dops = 0;
  if (hoist_dotp) {
    dla = dotp_.latch_a(dr);
    dlb = dotp_.latch_b(dr);
  }
  const auto flush = [&]() {
    last_load_data_ = lld;
    perf_.lsu_data_toggles += toggles;
    if (hoist_dotp) {
      dotp_.set_latches(dr, dla, dlb);
      dotp_.add_activity(dr, dtog, dops);
    }
  };

#ifdef XPULP_SB_HOST_SIMD
  // The kConvInner macro-op handler needs the slim memory path (an access
  // hook or contention injector must observe every access in order) and
  // the hoisted dot latches; otherwise the generic op loop serves.
  const bool use_conv =
      plan.shape == SbShape::kConvInner && mem_slim && hoist_dotp;
  u8 cx0 = 0, cx1 = 0, cw0 = 0, cw1 = 0;
  bool conv_bytes = false, conv_sa = false, conv_sb = false,
       conv_acc = false;
  if (use_conv) {
    cx0 = ops[4].rs1;
    cx1 = ops[5].rs1;
    cw0 = ops[4].rs2;
    cw1 = ops[6].rs2;
    conv_bytes = ops[4].fmt == isa::SimdFmt::kB;
    conv_sa = (ops[4].flags & iflag::kDotSignedA) != 0;
    conv_sb = (ops[4].flags & iflag::kDotSignedB) != 0;
    conv_acc = (ops[4].flags & iflag::kDotAccum) != 0;
  }
#endif

  // The static accounting of completed iterations is applied ONCE at burst
  // exit, scaled by `done` (it is linear in the iteration count); only
  // dynamic effects (memory stalls, toggles, handler-internal latencies)
  // touch the counters inside the loop. Same for the hardware-loop count
  // register. Every exit path below — completion, budget, SMC bail, trap —
  // therefore finishes with the batched add before leaving.
  u64 done = 0;      // completed iterations (incl. a final not-taken one)
  u64 retired = 0;   // instructions retired by this burst
  size_t i = 0;      // op cursor, read by the trap-repair path
  bool fell_through = false;  // branch plans: exited via the not-taken side
  bool exhausted = false;     // hwloop plans: final iteration retired
  try {
    for (;;) {
      // Per-iteration guards, checked at the block-start boundary: a
      // store from a previous iteration hit this block, or a trace hook
      // attached mid-burst (possible only via a handler side effect —
      // cheap to check, so check it anyway).
      if (done != 0 && (sb_active_dirty_ || trace_)) [[unlikely]] {
        pc_ = plan.start;
        last_load_rd_ = plan.is_hwloop ? plan.exit_last_load_rd : 0;
        break;
      }
      if constexpr (Sampled) {
        // Iteration-start boundary: the previous iteration's final op or
        // backedge crossed the deadline. Identical repair to the dirty
        // bail above — the run loop fires the sample at this boundary.
        if (done != 0 && perf_.cycles + done * c_iter >= due) [[unlikely]] {
          pc_ = plan.start;
          last_load_rd_ = plan.is_hwloop ? plan.exit_last_load_rd : 0;
          (burst_bound ? sb_stats_.burst_flushes : sb_stats_.sample_flushes) +=
              1;
          break;
        }
      }
      const unsigned hz = done == 0 ? hz0 : plan.wrap_hazard;
      if (hz != 0) {
        perf_.cycles += hz;
        perf_.load_use_stall_cycles += hz;
      }

      // Armed: this iteration's worst case can reach the deadline, so run
      // the generic loop with per-op boundary checks instead of the
      // macro-op path (whose intermediate boundaries are not visible).
      bool armed = false;
      if constexpr (Sampled) {
        armed = perf_.cycles + done * c_iter + c_iter + max_dyn >= due;
      }
      bool sample_break = false;

      size_t completed = n;
#ifdef XPULP_SB_HOST_SIMD
      if (use_conv && !armed) {
        // Loads first, sequenced exactly like the generic loop (`i` stays
        // the op cursor so a faulting load repairs identically).
        for (i = 0; i < 4; ++i) {
          const SbOp& o = ops[i];
          const u32 base = regs_[o.rs1];
          if (!((base & 3u) == 0 &&
                static_cast<u64>(base) + 4 <= msize)) [[unlikely]] {
            if (latch) {
              hook_pc_ = plan.op_pc[i];
              hook_start_ = perf_.cycles + done * c_iter +
                            plan.perf_prefix[i].cycles - (i == 0 ? hz : 0);
              hook_cycle_ = hook_start_ + (i == 0 ? hz : o.hazard);
            }
            const unsigned stalls = mem_.access_stalls(base, 4, false);
            if (stalls != 0) {
              perf_.cycles += stalls;
              perf_.mem_stall_cycles += stalls;
            }
          } else if (sink_log) {
            const cycles_t s = perf_.cycles + done * c_iter +
                               plan.perf_prefix[i].cycles -
                               (i == 0 ? hz : 0);
            burst_sink_->push_back(
                {s, plan.op_pc[i], base,
                 static_cast<u16>(i == 0 ? hz : o.hazard), 4, 0});
          }
          const u32 v = mem_.load_unchecked(base, 4);
          toggles += hamming_distance(lld, v);
          lld = v;
          set_reg(o.rd, v);
          set_reg(o.rs1, base + static_cast<u32>(o.imm));
        }
        // All four dots in two SIMD multiply-accumulate steps over the
        // 2x2 operand block; nothing past the loads can fault.
        const u32 x0 = regs_[cx0];
        const u32 x1 = regs_[cx1];
        const u32 w0 = regs_[cw0];
        const u32 w1 = regs_[cw1];
        __m128i s;  // [x0.w0, x1.w0, x0.w1, x1.w1]
        if (conv_bytes) {
          const __m128i va = _mm_cvtsi64_si128(static_cast<long long>(
              static_cast<u64>(x0) | static_cast<u64>(x1) << 32));
          const __m128i vb0 = _mm_cvtsi64_si128(static_cast<long long>(
              static_cast<u64>(w0) | static_cast<u64>(w0) << 32));
          const __m128i vb1 = _mm_cvtsi64_si128(static_cast<long long>(
              static_cast<u64>(w1) | static_cast<u64>(w1) << 32));
          const __m128i wa =
              conv_sa ? _mm_cvtepi8_epi16(va) : _mm_cvtepu8_epi16(va);
          const __m128i wb0 =
              conv_sb ? _mm_cvtepi8_epi16(vb0) : _mm_cvtepu8_epi16(vb0);
          const __m128i wb1 =
              conv_sb ? _mm_cvtepi8_epi16(vb1) : _mm_cvtepu8_epi16(vb1);
          s = _mm_hadd_epi32(_mm_madd_epi16(wa, wb0),
                             _mm_madd_epi16(wa, wb1));
        } else {
          // Nibbles: unsigned-first pmaddubsw (compile-time guaranteed),
          // pair sums <= 2*15*15 so the s16 saturation is unreachable.
          const __m128i a16 = _mm_set_epi64x(
              static_cast<long long>(spread4(x1)),
              static_cast<long long>(spread4(x0)));
          __m128i b0 = _mm_set1_epi64x(static_cast<long long>(spread4(w0)));
          __m128i b1 = _mm_set1_epi64x(static_cast<long long>(spread4(w1)));
          if (conv_sb) {
            const __m128i k8 = _mm_set1_epi8(8);
            b0 = _mm_sub_epi8(_mm_xor_si128(b0, k8), k8);
            b1 = _mm_sub_epi8(_mm_xor_si128(b1, k8), k8);
          }
          const __m128i ones = _mm_set1_epi16(1);
          s = _mm_hadd_epi32(
              _mm_madd_epi16(_mm_maddubs_epi16(a16, b0), ones),
              _mm_madd_epi16(_mm_maddubs_epi16(a16, b1), ones));
        }
        alignas(16) i32 d[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(d), s);
        for (unsigned k = 0; k < 4; ++k) {
          const SbOp& o = ops[4 + k];
          const u32 acc = conv_acc ? regs_[o.rd] : 0;
          set_reg(o.rd, acc + static_cast<u32>(d[k]));
        }
        // The dot-latch sequence x0,x1,x0,x1 / w0,w0,w1,w1 folds to four
        // Hamming distances (two of the b-side steps are zero).
        dtog += hamming_distance(dla, x0) + 3 * hamming_distance(x0, x1) +
                hamming_distance(dlb, w0) + hamming_distance(w0, w1);
        dla = x1;
        dlb = w1;
        dops += 4;
      } else
#endif
      for (i = 0; i < n; ++i) {
        const SbOp& o = ops[i];
        switch (o.kind) {
          case SbKind::kConst:
            set_reg(o.rd, static_cast<u32>(o.imm));
            break;
          case SbKind::kAddImm:
            set_reg(o.rd, regs_[o.rs1] + static_cast<u32>(o.imm));
            break;
          case SbKind::kAluImm:
            alu_body(plan.instrs[i], static_cast<u32>(o.imm));
            break;
          case SbKind::kAluReg:
            alu_body(plan.instrs[i], regs_[o.rs2]);
            break;
          case SbKind::kMac: {
            const u32 prod = regs_[o.rs1] * regs_[o.rs2];
            set_reg(o.rd, o.aux ? regs_[o.rd] - prod : regs_[o.rd] + prod);
            break;
          }
          case SbKind::kMem: {
            const u16 f = o.flags;
            const bool store = (f & iflag::kIsStore) != 0;
            const u32 base = regs_[o.rs1];
            const u32 off = (f & iflag::kMemRegOff)
                                ? regs_[store ? o.rd : o.rs2]
                                : static_cast<u32>(o.imm);
            const addr_t addr =
                (f & iflag::kMemPostInc) ? base : base + off;
            // Aligned in-bounds accesses are stall-free in slim mode;
            // everything else (misaligned, out-of-range, hook, contention)
            // takes the full accounting/trapping path.
            if (!(mem_slim && (addr & (o.aux - 1u)) == 0 &&
                  static_cast<u64>(addr) + o.aux <= msize)) [[unlikely]] {
              if (latch) {
                hook_pc_ = plan.op_pc[i];
                hook_start_ = perf_.cycles + done * c_iter +
                              plan.perf_prefix[i].cycles - (i == 0 ? hz : 0);
                hook_cycle_ = hook_start_ + (i == 0 ? hz : o.hazard);
              }
              const unsigned stalls = mem_.access_stalls(addr, o.aux, store);
              if (stalls != 0) {
                perf_.cycles += stalls;
                perf_.mem_stall_cycles += stalls;
              }
            } else if (sink_log) {
              // Slim fast path under deferred arbitration: log directly
              // with the exact hook coordinates (misaligned/out-of-range
              // accesses took the access_stalls branch, whose hook call
              // appends to the same log — program order is preserved).
              const cycles_t s = perf_.cycles + done * c_iter +
                                 plan.perf_prefix[i].cycles -
                                 (i == 0 ? hz : 0);
              burst_sink_->push_back(
                  {s, plan.op_pc[i], addr,
                   static_cast<u16>(i == 0 ? hz : o.hazard),
                   static_cast<u8>(o.aux), static_cast<u8>(store)});
            }
            if (store) {
              mem_.store_unchecked(addr, regs_[o.rs2], o.aux);
              icache_invalidate(addr, o.aux);
            } else {
              u32 v = mem_.load_unchecked(addr, o.aux);
              if (f & iflag::kLoadSigned) {
                v = static_cast<u32>(sign_extend(v, o.aux * 8));
              }
              toggles += hamming_distance(lld, v);
              lld = v;
              set_reg(o.rd, v);
            }
            if (f & iflag::kMemPostInc) set_reg(o.rs1, base + off);
            if (store && sb_active_dirty_) [[unlikely]] {
              // Self-modifying store into this very block: stop at the
              // boundary after the store, before any stale decode runs.
              completed = i + 1;
              break;
            }
            break;
          }
          case SbKind::kDotp: {
            const u32 a = regs_[o.rs1];
            const u32 b = regs_[o.rs2];
            const u16 f = o.flags;
            const bool sa = (f & iflag::kDotSignedA) != 0;
            const bool sb = (f & iflag::kDotSignedB) != 0;
            const u32 acc = (f & iflag::kDotAccum) ? regs_[o.rd] : 0;
            i32 r = 0;
            if (f & iflag::kDotMixed) {
              // Baked selector (entry guard proved it still equals mpc_).
              r = dotp_lanes_mixed_sel(static_cast<u32>(o.imm), a, b, acc,
                                       sa, sb);
            } else
            switch (o.fmt) {
              case isa::SimdFmt::kH: r = dotp_lanes<16, false>(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kHSc: r = dotp_lanes<16, true>(a, b, acc, sa, sb); break;
#ifdef XPULP_SB_HOST_SIMD
              case isa::SimdFmt::kB: r = host_dot8(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kBSc: r = host_dot8(a, rep8(b), acc, sa, sb); break;
              case isa::SimdFmt::kN: r = host_dot4(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kNSc: r = host_dot4(a, rep4(b), acc, sa, sb); break;
#else
              case isa::SimdFmt::kB: r = dotp_lanes<8, false>(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kBSc: r = dotp_lanes<8, true>(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kN: r = dotp_lanes<4, false>(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kNSc: r = dotp_lanes<4, true>(a, b, acc, sa, sb); break;
#endif
              case isa::SimdFmt::kC: r = dotp_lanes<2, false>(a, b, acc, sa, sb); break;
              case isa::SimdFmt::kCSc: r = dotp_lanes<2, true>(a, b, acc, sa, sb); break;
              default: break;  // unreachable: validated at compile time
            }
            if (hoist_dotp) {
              dtog += hamming_distance(dla, a) + hamming_distance(dlb, b);
              dla = a;
              dlb = b;
              dops += 1;
            } else {
              dotp_.note_dotp(o.aux, a, b);
            }
            set_reg(o.rd, static_cast<u32>(r));
            break;
          }
          case SbKind::kHandler:
            // A handler can reach the access hook (pv.qnt threshold
            // fetches); its accesses all issue at the instruction's start
            // plus its hazard, before any latency is charged.
            if (latch) [[unlikely]] {
              hook_pc_ = plan.op_pc[i];
              hook_start_ = perf_.cycles + done * c_iter +
                            plan.perf_prefix[i].cycles - (i == 0 ? hz : 0);
              hook_cycle_ = hook_start_ + (i == 0 ? hz : o.hazard);
            }
            (this->*kExecTable[static_cast<size_t>(o.cls)])(plan.instrs[i]);
            break;
          case SbKind::kBranch:
            break;  // unreachable: the terminal branch is not in ops
        }
        if constexpr (Sampled) {
          // Boundary after op i: armed iterations check every one against
          // the deadline (an SMC bail this op takes precedence — its
          // boundary is the same and the repair identical).
          if (armed && completed == n &&
              perf_.cycles + done * c_iter +
                      plan.perf_prefix[i + 1].cycles >= due) [[unlikely]] {
            if (i + 1 < n) {
              completed = i + 1;
              sample_break = true;
            } else if (!plan.is_hwloop) {
              // Pre-branch boundary: the interpreter samples before
              // executing the branch; bail below instead of branching.
              sample_break = true;
            }
            // hwloop with i + 1 == n: that boundary is the backedge
            // target, which the next iteration-start check (or the run
            // loop after a normal exit) observes with identical state.
          }
        }
        if (completed != n) break;
      }

      if (completed != n) [[unlikely]] {
        // Mid-iteration SMC or sample-deadline bail at an exact boundary:
        // batched statics for the completed ops (the iteration-entry
        // hazard was charged eagerly above), pc at the next op, last-load
        // tracking from the op before it.
        add_counters(perf_, plan.perf_prefix[completed]);
        mem_.add_counts(plan.mem_prefix[completed]);
        pc_ = plan.op_pc[completed];
        last_load_rd_ = load_dest(ops[completed - 1]);
        retired += completed;
        if (sample_break) {
          (burst_bound ? sb_stats_.burst_flushes : sb_stats_.sample_flushes) +=
              1;
        } else {
          sb_stats_.smc_bails += 1;
        }
        break;
      }

      if (plan.is_hwloop) {
        retired += n;
        done += 1;
        if (done == iters) {
          exhausted = done == count_entry;
          pc_ = exhausted ? plan.end : plan.start;
          last_load_rd_ = plan.exit_last_load_rd;
          break;
        }
      } else {
        if (sb_active_dirty_ || sample_break) [[unlikely]] {
          // A store in this iteration hit the block with the terminal
          // branch's bytes covered by the invalidation too — or the
          // sampling deadline landed on the pre-branch boundary. Bail at
          // the branch boundary so it re-runs interpreted (from fresh
          // decode / after the sample fires).
          add_counters(perf_, plan.perf_prefix[n]);
          mem_.add_counts(plan.mem_prefix[n]);
          pc_ = plan.op_pc[n];
          if (n != 0) last_load_rd_ = load_dest(ops[n - 1]);
          retired += n;
          if (sb_active_dirty_) {
            sb_stats_.smc_bails += 1;
          } else {
            (burst_bound ? sb_stats_.burst_flushes
                         : sb_stats_.sample_flushes) += 1;
          }
          break;
        }
        const SbOp& b = plan.branch;
        const u32 a = regs_[b.rs1];
        const u32 b2 = regs_[b.rs2];
        bool taken = false;
        switch (b.op) {
          case Mnemonic::kBeq: taken = a == b2; break;
          case Mnemonic::kBne: taken = a != b2; break;
          case Mnemonic::kBlt:
            taken = static_cast<i32>(a) < static_cast<i32>(b2);
            break;
          case Mnemonic::kBge:
            taken = static_cast<i32>(a) >= static_cast<i32>(b2);
            break;
          case Mnemonic::kBltu: taken = a < b2; break;
          case Mnemonic::kBgeu: taken = a >= b2; break;
          case Mnemonic::kPBeqimm: taken = static_cast<i32>(a) == b.imm; break;
          case Mnemonic::kPBneimm: taken = static_cast<i32>(a) != b.imm; break;
          default: break;  // unreachable: validated at compile time
        }
        retired += per_iter;
        done += 1;
        last_load_rd_ = 0;  // the branch is always the last instruction
        if (!taken) {
          fell_through = true;
          pc_ = plan.end;
          break;
        }
        if (done == iters) {
          pc_ = plan.start;
          break;
        }
      }
    }
  } catch (...) {
    // op[i] trapped mid-iteration. Only memory faults can reach a compiled
    // block (IllegalInstruction is statically excluded at compile time),
    // and MemoryFault carries the address, not the pc — but repair the pc
    // anyway so the machine state equals the interpreter's at the faulting
    // instruction: batched statics for the `done` whole iterations (all
    // taken, for branch plans) and the completed ops of this one, the
    // faulting op's own hazard (the step paths charge it before
    // executing), pc at the op, last-load tracking from its predecessor.
    flush();
    add_scaled(perf_, plan.iter_perf, done);
    mem_.add_counts(plan.iter_mem, done);
    if (plan.is_hwloop) hwl_count_[l] -= static_cast<u32>(done);
    add_counters(perf_, plan.perf_prefix[i]);
    mem_.add_counts(plan.mem_prefix[i]);
    if (i > 0) {
      const unsigned hzf = ops[i].hazard;
      if (hzf != 0) {
        perf_.cycles += hzf;
        perf_.load_use_stall_cycles += hzf;
      }
      last_load_rd_ = load_dest(ops[i - 1]);
    } else if (done > 0) {
      last_load_rd_ = plan.is_hwloop ? plan.exit_last_load_rd : 0;
    }  // else: entry value, untouched by the burst, is already correct
    pc_ = plan.op_pc[i];
    sb_stats_.trap_bails += 1;
    sb_stats_.fused_iterations += done;
    sb_stats_.fused_instructions += retired + i;
    sb_exit(plan);
    throw;
  }

  // Batched static accounting of the completed iterations.
  flush();
  add_scaled(perf_, plan.iter_perf, done - (fell_through ? 1 : 0));
  if (fell_through) add_counters(perf_, plan.exit_perf);
  mem_.add_counts(plan.iter_mem, done);
  if (plan.is_hwloop) {
    hwl_count_[l] -= static_cast<u32>(done);
    if (exhausted) {
      // The final iteration falls through instead of taking the backedge.
      perf_.hwloop_backedges -= 1;
      update_hwl_active();
    }
  }
  sb_stats_.fused_iterations += done;
  sb_stats_.fused_instructions += retired;
  sb_exit(plan);
  return retired;
}

}  // namespace xpulp::sim
