#include "sim/core.hpp"

#include <limits>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "isa/decoder.hpp"

namespace xpulp::sim {

using isa::Instr;
using isa::Mnemonic;

Core::Core(mem::Memory& mem, CoreConfig cfg)
    : mem_(mem), cfg_(std::move(cfg)), dotp_(cfg_.clock_gating) {}

void Core::reset(addr_t pc) {
  regs_.fill(0);
  // Stack pointer at the top of SRAM by convention; programs may override.
  regs_[2] = mem_.size();
  pc_ = pc;
  next_pc_ = pc;
  hwl_start_.fill(0);
  hwl_end_.fill(0);
  hwl_count_.fill(0);
  last_load_rd_ = 0;
  halt_ = HaltReason::kRunning;
  icache_.clear();
  icache_valid_.clear();
}

const Instr& Core::fetch_decode(addr_t pc) {
  const u32 idx = pc >> 1;
  if (idx >= icache_valid_.size()) {
    const u32 new_size = std::max<u32>(idx + 1, 4096);
    icache_.resize(new_size);
    icache_valid_.resize(new_size, 0);
  }
  if (!icache_valid_[idx]) {
    // Instruction fetch: 16-bit parcels; a 32-bit fetch at the end of
    // memory must not fault if the instruction is compressed.
    const u16 low = mem_.load_u16(pc);
    u32 raw = low;
    if (!isa::is_compressed(low)) raw |= static_cast<u32>(mem_.load_u16(pc + 2)) << 16;
    icache_[idx] = isa::decode(raw, pc);
    icache_valid_[idx] = 1;
  }
  return icache_[idx];
}

void Core::require(bool cond, const Instr& in) {
  if (!cond) throw IllegalInstruction(pc_, in.raw);
}

bool Core::step() {
  if (halted()) return false;
  const Instr& in = fetch_decode(pc_);
  if (trace_) trace_(pc_, in);

  // Load-use hazard: the previous instruction was a load and we consume its
  // destination register now.
  if (last_load_rd_ != 0) {
    const bool hazard = (isa::reads_rs1(in) && in.rs1 == last_load_rd_) ||
                        (isa::reads_rs2(in) && in.rs2 == last_load_rd_) ||
                        (isa::reads_rd(in) && in.rd == last_load_rd_);
    if (hazard) {
      perf_.cycles += timing_.load_use_penalty;
      perf_.load_use_stall_cycles += timing_.load_use_penalty;
    }
  }

  next_pc_ = pc_ + in.size;
  redirect_ = false;
  // Without clock gating the EX-stage operand bus toggles every multiplier
  // region on every instruction (the power-management knob of Table III).
  if (!cfg_.clock_gating) {
    dotp_.broadcast_operands(reg(in.rs1), reg(in.rs2));
  }
  execute(in);

  perf_.instructions += 1;
  perf_.cycles += 1;

  last_load_rd_ = isa::is_load(in.op) ? in.rd : 0;

  // Hardware-loop back-edges (zero overhead). Only on fall-through paths;
  // inner loop L0 has priority over L1.
  if (!redirect_ && cfg_.hwloops) {
    const addr_t after = pc_ + in.size;
    for (unsigned l = 0; l < 2; ++l) {
      if (after == hwl_end_[l] && hwl_count_[l] > 0) {
        if (hwl_count_[l] > 1) {
          hwl_count_[l] -= 1;
          next_pc_ = hwl_start_[l];
          perf_.hwloop_backedges += 1;
        } else {
          hwl_count_[l] = 0;  // final iteration: fall through
        }
        break;
      }
    }
  }

  pc_ = next_pc_;
  return !halted();
}

HaltReason Core::run(u64 max_instructions) {
  const u64 limit = perf_.instructions + max_instructions;
  while (!halted()) {
    step();
    if (perf_.instructions >= limit) {
      halt_ = HaltReason::kInstrLimit;
      break;
    }
  }
  return halt_;
}

void Core::execute(const Instr& in) {
  using M = Mnemonic;
  switch (in.op) {
    case M::kLui:
      set_reg(in.rd, static_cast<u32>(in.imm));
      perf_.scalar_alu_ops += 1;
      break;
    case M::kAuipc:
      set_reg(in.rd, pc_ + static_cast<u32>(in.imm));
      perf_.scalar_alu_ops += 1;
      break;
    case M::kJal: case M::kJalr:
    case M::kBeq: case M::kBne: case M::kBlt: case M::kBge:
    case M::kBltu: case M::kBgeu:
    case M::kPBeqimm: case M::kPBneimm:
      exec_branch_jump(in);
      break;
    case M::kAddi: case M::kSlti: case M::kSltiu: case M::kXori:
    case M::kOri: case M::kAndi: case M::kSlli: case M::kSrli:
    case M::kSrai:
    case M::kAdd: case M::kSub: case M::kSll: case M::kSlt:
    case M::kSltu: case M::kXor: case M::kSrl: case M::kSra:
    case M::kOr: case M::kAnd:
      exec_alu(in);
      break;
    case M::kMul: case M::kMulh: case M::kMulhsu: case M::kMulhu:
    case M::kDiv: case M::kDivu: case M::kRem: case M::kRemu:
      exec_muldiv(in);
      break;
    case M::kFence:
      break;  // single hart, no-op
    case M::kEcall:
      halt_ = HaltReason::kEcall;
      break;
    case M::kEbreak:
      halt_ = HaltReason::kEbreak;
      break;
    case M::kCsrrw: case M::kCsrrs: case M::kCsrrc:
    case M::kCsrrwi: case M::kCsrrsi: case M::kCsrrci:
      exec_csr_system(in);
      break;
    case M::kLpStarti: case M::kLpEndi: case M::kLpCount:
    case M::kLpCounti: case M::kLpSetup: case M::kLpSetupi:
      require(cfg_.xpulpv2 && cfg_.hwloops, in);
      exec_hwloop(in);
      break;
    case M::kPAbs: case M::kPMin: case M::kPMinu: case M::kPMax:
    case M::kPMaxu: case M::kPExths: case M::kPExthz: case M::kPExtbs:
    case M::kPExtbz: case M::kPCnt: case M::kPFf1: case M::kPFl1:
    case M::kPClb: case M::kPRor: case M::kPClip: case M::kPClipu:
    case M::kPMac: case M::kPMsu:
    case M::kPExtract: case M::kPExtractu: case M::kPInsert:
    case M::kPBclr: case M::kPBset:
      require(cfg_.xpulpv2, in);
      exec_pulp_scalar(in);
      break;
    default:
      if (isa::is_load(in.op) || isa::is_store(in.op)) {
        // All non-base-ISA addressing modes belong to XpulpV2.
        if (in.op != M::kLb && in.op != M::kLh && in.op != M::kLw &&
            in.op != M::kLbu && in.op != M::kLhu && in.op != M::kSb &&
            in.op != M::kSh && in.op != M::kSw) {
          require(cfg_.xpulpv2, in);
        }
        exec_mem(in);
      } else if (isa::is_simd(in.op)) {
        require(cfg_.xpulpv2, in);
        if (isa::simd_is_subbyte(in.fmt) || in.op == M::kPvQnt) {
          require(cfg_.xpulpnn, in);
        }
        exec_simd(in);
      } else {
        throw IllegalInstruction(pc_, in.raw);
      }
      break;
  }
}

void Core::exec_alu(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const bool immediate =
      in.op == M::kAddi || in.op == M::kSlti || in.op == M::kSltiu ||
      in.op == M::kXori || in.op == M::kOri || in.op == M::kAndi ||
      in.op == M::kSlli || in.op == M::kSrli || in.op == M::kSrai;
  const u32 b = immediate ? static_cast<u32>(in.imm) : reg(in.rs2);
  u32 r = 0;
  switch (in.op) {
    case M::kAddi: case M::kAdd: r = a + b; break;
    case M::kSub: r = a - b; break;
    case M::kSlti: case M::kSlt:
      r = (static_cast<i32>(a) < static_cast<i32>(b)) ? 1 : 0;
      break;
    case M::kSltiu: case M::kSltu: r = (a < b) ? 1 : 0; break;
    case M::kXori: case M::kXor: r = a ^ b; break;
    case M::kOri: case M::kOr: r = a | b; break;
    case M::kAndi: case M::kAnd: r = a & b; break;
    case M::kSlli: case M::kSll: r = a << (b & 31); break;
    case M::kSrli: case M::kSrl: r = a >> (b & 31); break;
    case M::kSrai: case M::kSra:
      r = static_cast<u32>(static_cast<i32>(a) >> (b & 31));
      break;
    default: break;
  }
  set_reg(in.rd, r);
  perf_.scalar_alu_ops += 1;
}

void Core::exec_muldiv(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 r = 0;
  switch (in.op) {
    case M::kMul:
      r = a * b;
      perf_.mul_ops += 1;
      break;
    case M::kMulh:
      r = static_cast<u32>((static_cast<i64>(sa) * sb) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kMulhsu:
      r = static_cast<u32>((static_cast<i64>(sa) * static_cast<u64>(b)) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kMulhu:
      r = static_cast<u32>((static_cast<u64>(a) * b) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kDiv:
      if (b == 0) {
        r = ~0u;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r = static_cast<u32>(sa);
      } else {
        r = static_cast<u32>(sa / sb);
      }
      goto div_timing;
    case M::kDivu:
      r = (b == 0) ? ~0u : a / b;
      goto div_timing;
    case M::kRem:
      if (b == 0) {
        r = a;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r = 0;
      } else {
        r = static_cast<u32>(sa % sb);
      }
      goto div_timing;
    case M::kRemu:
      r = (b == 0) ? a : a % b;
      goto div_timing;
    default:
      break;
  }
  set_reg(in.rd, r);
  return;

div_timing:
  set_reg(in.rd, r);
  perf_.div_ops += 1;
  {
    const unsigned c = timing_.div_cycles(a);
    perf_.cycles += c - 1;
    perf_.mul_div_stall_cycles += c - 1;
  }
}

void Core::exec_branch_jump(const Instr& in) {
  using M = Mnemonic;
  if (in.op == M::kJal) {
    set_reg(in.rd, pc_ + in.size);
    next_pc_ = pc_ + static_cast<u32>(in.imm);
    redirect_ = true;
    perf_.jumps += 1;
    perf_.cycles += timing_.jump_penalty;
    perf_.branch_stall_cycles += timing_.jump_penalty;
    return;
  }
  if (in.op == M::kJalr) {
    const u32 target = (reg(in.rs1) + static_cast<u32>(in.imm)) & ~1u;
    set_reg(in.rd, pc_ + in.size);
    next_pc_ = target;
    redirect_ = true;
    perf_.jumps += 1;
    perf_.cycles += timing_.jump_penalty;
    perf_.branch_stall_cycles += timing_.jump_penalty;
    return;
  }
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  bool taken = false;
  switch (in.op) {
    case M::kBeq: taken = a == b; break;
    case M::kBne: taken = a != b; break;
    case M::kPBeqimm:
      require(cfg_.xpulpv2, in);
      taken = static_cast<i32>(a) == sign_extend(in.imm2, 5);
      break;
    case M::kPBneimm:
      require(cfg_.xpulpv2, in);
      taken = static_cast<i32>(a) != sign_extend(in.imm2, 5);
      break;
    case M::kBlt: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
    case M::kBge: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
    case M::kBltu: taken = a < b; break;
    case M::kBgeu: taken = a >= b; break;
    default: break;
  }
  if (taken) {
    next_pc_ = pc_ + static_cast<u32>(in.imm);
    redirect_ = true;
    perf_.taken_branches += 1;
    perf_.cycles += timing_.taken_branch_penalty;
    perf_.branch_stall_cycles += timing_.taken_branch_penalty;
  } else {
    perf_.not_taken_branches += 1;
  }
}

void Core::exec_mem(const Instr& in) {
  using M = Mnemonic;
  const unsigned size = isa::mem_access_size(in.op);
  const bool store = isa::is_store(in.op);
  addr_t addr = 0;
  u32 new_base = 0;
  bool update_base = false;

  switch (in.op) {
    // Plain RV32I loads/stores and immediate post-increment forms.
    case M::kLb: case M::kLh: case M::kLw: case M::kLbu: case M::kLhu:
    case M::kSb: case M::kSh: case M::kSw:
      addr = reg(in.rs1) + static_cast<u32>(in.imm);
      break;
    case M::kPLbPostImm: case M::kPLhPostImm: case M::kPLwPostImm:
    case M::kPLbuPostImm: case M::kPLhuPostImm:
    case M::kPSbPostImm: case M::kPShPostImm: case M::kPSwPostImm:
      addr = reg(in.rs1);
      new_base = addr + static_cast<u32>(in.imm);
      update_base = true;
      break;
    // Register post-increment: increment in rs2 (loads) or rd field (stores).
    case M::kPLbPostReg: case M::kPLhPostReg: case M::kPLwPostReg:
    case M::kPLbuPostReg: case M::kPLhuPostReg:
      addr = reg(in.rs1);
      new_base = addr + reg(in.rs2);
      update_base = true;
      break;
    case M::kPSbPostReg: case M::kPShPostReg: case M::kPSwPostReg:
      addr = reg(in.rs1);
      new_base = addr + reg(in.rd);
      update_base = true;
      break;
    // Register-offset (indexed) addressing: offset in rs2 / rd field.
    case M::kPLbRegReg: case M::kPLhRegReg: case M::kPLwRegReg:
    case M::kPLbuRegReg: case M::kPLhuRegReg:
      addr = reg(in.rs1) + reg(in.rs2);
      break;
    case M::kPSbRegReg: case M::kPShRegReg: case M::kPSwRegReg:
      addr = reg(in.rs1) + reg(in.rd);
      break;
    default:
      throw IllegalInstruction(pc_, in.raw);
  }

  const unsigned stalls = mem_.access_cycles(addr, size, store);
  perf_.cycles += stalls;
  perf_.mem_stall_cycles += stalls;

  if (store) {
    mem_.store(addr, reg(in.rs2), size);
    perf_.stores += 1;
  } else {
    u32 v = mem_.load(addr, size);
    if (isa::load_is_signed(in.op)) {
      v = static_cast<u32>(sign_extend(v, size * 8));
    }
    perf_.lsu_data_toggles += hamming_distance(last_load_data_, v);
    last_load_data_ = v;
    set_reg(in.rd, v);
    perf_.loads += 1;
  }
  if (update_base) set_reg(in.rs1, new_base);
}

void Core::exec_pulp_scalar(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 r = 0;
  switch (in.op) {
    case M::kPAbs: r = static_cast<u32>(sa < 0 ? -sa : sa); break;
    case M::kPMin: r = static_cast<u32>(sa < sb ? sa : sb); break;
    case M::kPMinu: r = a < b ? a : b; break;
    case M::kPMax: r = static_cast<u32>(sa > sb ? sa : sb); break;
    case M::kPMaxu: r = a > b ? a : b; break;
    case M::kPExths: r = static_cast<u32>(sign_extend(a, 16)); break;
    case M::kPExthz: r = a & 0xffffu; break;
    case M::kPExtbs: r = static_cast<u32>(sign_extend(a, 8)); break;
    case M::kPExtbz: r = a & 0xffu; break;
    case M::kPCnt: r = popcount32(a); break;
    case M::kPFf1: r = find_first_one(a); break;
    case M::kPFl1: r = find_last_one(a); break;
    case M::kPClb: r = count_leading_redundant_sign(a); break;
    case M::kPRor: r = rotr32(a, b); break;
    case M::kPClip: {
      // p.clip rd, rs1, I: clamp to [-2^(I-1), 2^(I-1)-1] (I==0 acts as 1).
      const unsigned i = static_cast<unsigned>(in.imm);
      r = static_cast<u32>(sat_signed(sa, i == 0 ? 1 : i));
      break;
    }
    case M::kPClipu: {
      // p.clipu rd, rs1, I: clamp to [0, 2^I - 1] (I==0 acts as 1).
      const unsigned i = static_cast<unsigned>(in.imm);
      r = sat_unsigned(sa, i == 0 ? 1 : i);
      break;
    }
    case M::kPMac:
      r = reg(in.rd) + a * b;
      perf_.mul_ops += 1;
      break;
    case M::kPMsu:
      r = reg(in.rd) - a * b;
      perf_.mul_ops += 1;
      break;
    case M::kPExtract: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      r = static_cast<u32>(sign_extend(a >> pos, width));
      break;
    }
    case M::kPExtractu: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      r = zero_extend(a >> pos, width);
      break;
    }
    case M::kPInsert: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = insert_bits(reg(in.rd), a, pos, width);
      break;
    }
    case M::kPBclr: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = a & ~(low_mask(width) << pos);
      break;
    }
    case M::kPBset: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = a | (low_mask(width) << pos);
      break;
    }
    default:
      throw IllegalInstruction(pc_, in.raw);
  }
  set_reg(in.rd, r);
  perf_.scalar_alu_ops += 1;
}

void Core::exec_hwloop(const Instr& in) {
  using M = Mnemonic;
  const unsigned l = in.imm2 & 1u;
  switch (in.op) {
    case M::kLpStarti:
      hwl_start_[l] = pc_ + static_cast<u32>(in.imm);
      break;
    case M::kLpEndi:
      hwl_end_[l] = pc_ + static_cast<u32>(in.imm);
      break;
    case M::kLpCount:
      hwl_count_[l] = reg(in.rs1);
      break;
    case M::kLpCounti:
      hwl_count_[l] = static_cast<u32>(in.imm);
      break;
    case M::kLpSetup:
      hwl_start_[l] = pc_ + in.size;
      hwl_end_[l] = pc_ + static_cast<u32>(in.imm);
      hwl_count_[l] = reg(in.rs1);
      break;
    case M::kLpSetupi:
      hwl_start_[l] = pc_ + in.size;
      hwl_end_[l] = pc_ + static_cast<u32>(in.imm);
      hwl_count_[l] = in.rs1;  // 5-bit immediate count
      break;
    default:
      throw IllegalInstruction(pc_, in.raw);
  }
  perf_.scalar_alu_ops += 1;
}

void Core::exec_simd(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);

  if (in.op == M::kPvQnt) {
    const unsigned q_bits = isa::simd_elem_bits(in.fmt);
    const QuantResult res = qnt_.execute(mem_, a, b, q_bits);
    set_reg(in.rd, res.rd);
    perf_.qnt_ops += 1;
    // Base cycle is charged in step(); the remainder stalls the pipeline.
    perf_.cycles += res.cycles - 1;
    perf_.qnt_stall_cycles += res.cycles - 1;
    return;
  }

  if (isa::is_dotp(in.op)) {
    const i32 acc = static_cast<i32>(reg(in.rd));
    const i32 r = dotp_.dotp(in.op, in.fmt, a, b, acc);
    set_reg(in.rd, static_cast<u32>(r));
    perf_.dotp_ops[static_cast<unsigned>(region_for(in.fmt))] += 1;
    return;
  }

  if (isa::is_elem_manip(in.op)) {
    const unsigned lanes = isa::simd_elem_count(in.fmt);
    const unsigned lane = static_cast<unsigned>(in.imm) & (lanes - 1);
    u32 r = 0;
    switch (in.op) {
      case M::kPvElemExtract:
        r = static_cast<u32>(simd_extract(a, in.fmt, lane, /*sign=*/true));
        break;
      case M::kPvElemExtractu:
        r = static_cast<u32>(simd_extract(a, in.fmt, lane, /*sign=*/false));
        break;
      case M::kPvElemInsert:
        r = simd_insert(reg(in.rd), in.fmt, lane, a);
        break;
      case M::kPvShuffle: {
        for (unsigned i = 0; i < lanes; ++i) {
          const unsigned src =
              static_cast<unsigned>(simd_extract(b, in.fmt, i, false)) &
              (lanes - 1);
          r = simd_insert(
              r, in.fmt, i,
              static_cast<u32>(simd_extract(a, in.fmt, src, false)));
        }
        break;
      }
      case M::kPvPackH:
        r = (a << 16) | (b & 0xffffu);
        break;
      default:
        throw IllegalInstruction(pc_, in.raw);
    }
    set_reg(in.rd, r);
    perf_.simd_alu_ops += 1;
    return;
  }

  set_reg(in.rd, dotp_.alu_op(in.op, in.fmt, a, b));
  perf_.simd_alu_ops += 1;
}

u32 Core::csr_read(u32 addr) const {
  switch (addr) {
    case 0xB00: case 0xC00: return static_cast<u32>(perf_.cycles);
    case 0xB80: case 0xC80: return static_cast<u32>(perf_.cycles >> 32);
    case 0xB02: case 0xC02: return static_cast<u32>(perf_.instructions);
    case 0xB82: case 0xC82: return static_cast<u32>(perf_.instructions >> 32);
    case 0xF14: return 0;  // mhartid
    case 0x340: return mscratch_;
    default: return 0;
  }
}

void Core::exec_csr_system(const Instr& in) {
  using M = Mnemonic;
  const u32 csr = static_cast<u32>(in.imm);
  const u32 old = csr_read(csr);
  const u32 operand = (in.op == M::kCsrrwi || in.op == M::kCsrrsi ||
                       in.op == M::kCsrrci)
                          ? in.imm2
                          : reg(in.rs1);
  u32 nv = old;
  switch (in.op) {
    case M::kCsrrw: case M::kCsrrwi: nv = operand; break;
    case M::kCsrrs: case M::kCsrrsi: nv = old | operand; break;
    case M::kCsrrc: case M::kCsrrci: nv = old & ~operand; break;
    default: break;
  }
  if (csr == 0x340) mscratch_ = nv;  // other CSRs are read-only here
  set_reg(in.rd, old);
  perf_.csr_ops += 1;
}

}  // namespace xpulp::sim
