#include "sim/core.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "sim/dotp_lanes.hpp"
#include "sim/superblock.hpp"

namespace xpulp::sim {

using isa::Instr;
using isa::Mnemonic;
namespace iflag = isa::iflag;

bool superblock_default() {
  static const bool enabled = [] {
    const char* e = std::getenv("XPULP_SUPERBLOCK");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return enabled;
}

std::string perf_invariant_violation(const PerfCounters& p) {
  const auto diag = [](const char* what, u64 lhs, u64 rhs) {
    return std::string(what) + ": " + std::to_string(lhs) +
           " != " + std::to_string(rhs);
  };
  const u64 stalls = perf_stall_cycles(p);
  if (p.cycles != p.instructions + stalls) {
    return diag("cycles != instructions + stall cycles", p.cycles,
                p.instructions + stalls);
  }
  if (p.mac_ops > p.mul_ops || p.mac_ops > p.scalar_alu_ops) {
    return diag("mac_ops exceeds its parent class counters", p.mac_ops,
                std::min(p.mul_ops, p.scalar_alu_ops));
  }
  const u64 classes = perf_class_ops(p);
  if (classes != p.instructions) {
    return diag("class counters don't sum to instructions", classes,
                p.instructions);
  }
  const u64 branches = p.taken_branches + p.not_taken_branches;
  if (p.hwloop_backedges > p.cycles || branches + p.jumps > p.instructions) {
    return "control-flow counters exceed run totals";
  }
  return {};
}

Core::Core(mem::Memory& mem, CoreConfig cfg)
    : mem_(mem), cfg_(std::move(cfg)), dotp_(cfg_.clock_gating) {
  ref_dispatch_ = cfg_.reference_dispatch;
  feature_guard_ =
      static_cast<u16>((cfg_.xpulpv2 ? 0 : iflag::kNeedXpulpV2) |
                       (cfg_.xpulpnn ? 0 : iflag::kNeedXpulpNN) |
                       (cfg_.hwloops ? 0 : iflag::kNeedHwloops));
}

Core::~Core() = default;

void Core::set_superblock(bool on) {
  cfg_.superblock = on;
  if (!on) {
    sb_candidate_ = kNoSbCandidate;
    sb_candidate_branch_ = 0;
  }
}

void Core::reset(addr_t pc, addr_t code_end) {
  regs_.fill(0);
  // Stack pointer at the top of SRAM by convention; programs may override.
  regs_[2] = mem_.size();
  pc_ = pc;
  next_pc_ = pc;
  hwl_start_.fill(0);
  hwl_end_.fill(0);
  hwl_count_.fill(0);
  hwl_active_ = false;
  last_load_rd_ = 0;
  halt_ = HaltReason::kRunning;
  mpc_ = 0;
  icache_.clear();
  icache_valid_.clear();
  decode_gen_ += 1;
  sb_clear();
  sb_stats_ = SuperblockStats{};
  if (code_end != 0) {
    // Pre-size the decode cache to the loaded image so the run loop never
    // pays a resize, and stores beyond the code range cost one compare.
    const u32 parcels = static_cast<u32>(
        std::min<u64>((static_cast<u64>(code_end) + 1) >> 1,
                      (static_cast<u64>(mem_.size()) + 1) >> 1));
    icache_.resize(parcels);
    icache_valid_.assign(parcels, 0);
  }
  if (pre_run_gate_ && code_end > pc) {
    pre_run_gate_(mem_, pc, code_end);
  }
}

const Instr& Core::fetch_decode(addr_t pc) {
  const u32 idx = pc >> 1;
  if (idx < icache_valid_.size() && icache_valid_[idx]) return icache_[idx];

  // Cold path. Fetch the parcels first so a wild pc faults before the
  // cache allocates anything: 16-bit parcels; a 32-bit fetch at the end of
  // memory must not fault if the instruction is compressed.
  const u16 low = mem_.load_u16(pc);
  u32 raw = low;
  if (!isa::is_compressed(low)) raw |= static_cast<u32>(mem_.load_u16(pc + 2)) << 16;

  if (idx >= icache_valid_.size()) {
    // Geometric growth; the old resize-to-idx+1 policy re-copied the whole
    // cache on every miss past the end (O(n^2) in fetched code size).
    const u32 cap = (mem_.size() + 1) >> 1;  // every in-bounds pc fits
    u32 new_size = std::max<u32>(4096, static_cast<u32>(icache_valid_.size()) * 2);
    new_size = std::min(std::max(new_size, idx + 1), cap);
    icache_.resize(new_size);
    icache_valid_.resize(new_size, 0);
  }
  icache_[idx] = isa::decode(raw, pc);
  icache_valid_[idx] = 1;
  return icache_[idx];
}

void Core::icache_invalidate(addr_t a, unsigned size) {
  // Superblock coherence rides the same store path: two compares when any
  // plan exists, a slow-path walk only on actual overlap.
  if (!sb_plans_.empty() && static_cast<u64>(a) + size > sb_lo_ &&
      a < sb_hi_) [[unlikely]] {
    sb_invalidate_range(a, size);
  }
  const u32 limit = static_cast<u32>(icache_valid_.size());
  if (limit == 0) return;
  // A 32-bit instruction starting one parcel below the store covers the
  // stored parcel too.
  const u32 first = a >> 1;
  const u32 lo = first == 0 ? 0 : first - 1;
  if (lo >= limit) return;
  const u32 hi = std::min((a + size - 1) >> 1, limit - 1);
  for (u32 i = lo; i <= hi; ++i) icache_valid_[i] = 0;
}

void Core::require(bool cond, const Instr& in) {
  if (!cond) throw IllegalInstruction(pc_, in.raw);
}

void Core::invalidate_decode_cache() {
  std::fill(icache_valid_.begin(), icache_valid_.end(), 0);
  decode_gen_ += 1;
  sb_stats_.invalidations += sb_plans_.size();
  sb_clear();
}

void Core::set_isa_features(bool xpulpv2, bool xpulpnn, bool hwloops) {
  cfg_.xpulpv2 = xpulpv2;
  cfg_.xpulpnn = xpulpnn;
  cfg_.hwloops = hwloops;
  // Eligibility (feature guards) baked into compiled plans changed.
  sb_clear();
  feature_guard_ =
      static_cast<u16>((xpulpv2 ? 0 : iflag::kNeedXpulpV2) |
                       (xpulpnn ? 0 : iflag::kNeedXpulpNN) |
                       (hwloops ? 0 : iflag::kNeedHwloops));
}

CoreState Core::save_state() const {
  CoreState s;
  s.regs = regs_;
  s.pc = pc_;
  s.hwl_start = hwl_start_;
  s.hwl_end = hwl_end_;
  s.hwl_count = hwl_count_;
  s.last_load_rd = last_load_rd_;
  s.last_load_data = last_load_data_;
  s.halt = halt_;
  s.mscratch = mscratch_;
  s.mpc = mpc_;
  s.perf = perf_;
  s.dotp = dotp_.state();
  return s;
}

void Core::restore_state(const CoreState& s) {
  regs_ = s.regs;
  pc_ = s.pc;
  // next_pc_/redirect_ only live inside a step; a boundary snapshot
  // resumes with the restored pc.
  next_pc_ = s.pc;
  redirect_ = false;
  hwl_start_ = s.hwl_start;
  hwl_end_ = s.hwl_end;
  hwl_count_ = s.hwl_count;
  update_hwl_active();
  last_load_rd_ = s.last_load_rd;
  last_load_data_ = s.last_load_data;
  halt_ = s.halt;
  mscratch_ = s.mscratch;
  // Plans that baked the pre-restore mpc selector into fused mixed dot
  // ops would misfuse under the restored value.
  if (mpc_ != s.mpc) sb_evict_mixed_plans();
  mpc_ = s.mpc;
  perf_ = s.perf;
  dotp_.restore(s.dotp);
  // Compiled plans stay valid as long as the code bytes do (same contract
  // as the decode cache: callers invalidate when memory was restored), but
  // a pending fuse candidate refers to the pre-restore control flow.
  sb_candidate_ = kNoSbCandidate;
  sb_candidate_branch_ = 0;
}

void Core::set_sampler(SampleFn fn, cycles_t interval_cycles) {
  if (fn && interval_cycles != 0) {
    sampler_ = std::move(fn);
    sample_interval_ = interval_cycles;
    sample_due_ = (perf_.cycles / interval_cycles + 1) * interval_cycles;
  } else {
    sampler_ = {};
    sample_interval_ = 0;
    sample_due_ = kNoSampleDue;
  }
}

void Core::sample_fire() {
  // Advance first: the deadline lands on the next interval multiple past
  // the cycle count *at the fired boundary*, so a long-stalling instruction
  // that crosses several intervals yields one sample (the interpreter and
  // the burst repair path agree on this by construction).
  sample_due_ = (perf_.cycles / sample_interval_ + 1) * sample_interval_;
  sampler_();
}

bool Core::step() {
  bool alive;
  if (ref_dispatch_) {
    alive = step_reference();
  } else {
    alive = trace_ ? step_fast<true>() : step_fast<false>();
  }
  if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
  return alive;
}

template <bool Traced>
bool Core::step_fast() {
  if (halted()) return false;
  const Instr& in = fetch_decode_fast(pc_);
  if constexpr (Traced) {
    // Detach-on-false: the callback must not reassign trace_ itself (that
    // would destroy the std::function mid-call); the core drops it here,
    // after the call has returned.
    if (!trace_(pc_, in)) trace_ = {};
  }
  const u16 f = in.flags;
  // Instruction-start cycle, before any stall is charged: the event-driven
  // cluster scheduler's pick key for this instruction (access_start()).
  step_start_ = perf_.cycles;

  // Load-use hazard: the previous instruction was a load and we consume its
  // destination register now.
  if (last_load_rd_ != 0) {
    const bool hazard = ((f & iflag::kReadsRs1) && in.rs1 == last_load_rd_) ||
                        ((f & iflag::kReadsRs2) && in.rs2 == last_load_rd_) ||
                        ((f & iflag::kReadsRd) && in.rd == last_load_rd_);
    if (hazard) {
      perf_.cycles += timing_.load_use_penalty;
      perf_.load_use_stall_cycles += timing_.load_use_penalty;
    }
  }

  next_pc_ = pc_ + in.size;
  redirect_ = false;
  // Without clock gating the EX-stage operand bus toggles every multiplier
  // region on every instruction (the power-management knob of Table III).
  if (!cfg_.clock_gating) {
    dotp_.broadcast_operands(reg(in.rs1), reg(in.rs2));
  }
  if (f & feature_guard_) throw IllegalInstruction(pc_, in.raw);
  // Direct calls for the two classes that dominate QNN kernels (loads/
  // stores and dot products) let the compiler inline them here; everything
  // else goes through the handler table's indirect call.
  if (in.cls == isa::ExecClass::kMem) {
    exec_mem(in);
  } else if (in.cls == isa::ExecClass::kSimdDotp) {
    exec_simd_dotp_fast(in);
  } else {
    (this->*kExecTable[static_cast<size_t>(in.cls)])(in);
  }

  perf_.instructions += 1;
  perf_.cycles += 1;

  last_load_rd_ = (f & iflag::kIsLoad) ? in.rd : 0;

  if (!redirect_ && hwl_active_) {
    // Inline filter: most loop-body instructions are not at a loop end, so
    // skip the out-of-line backedge handler on the common path.
    const addr_t after = pc_ + in.size;
    if (after == hwl_end_[0] || after == hwl_end_[1]) hwloop_backedge(after);
  }

  pc_ = next_pc_;
  return !halted();
}

bool Core::step_reference() {
  if (halted()) return false;
  const Instr& in = fetch_decode(pc_);
  if (trace_ && !trace_(pc_, in)) trace_ = {};
  step_start_ = perf_.cycles;

  if (last_load_rd_ != 0) {
    const bool hazard = (isa::reads_rs1(in) && in.rs1 == last_load_rd_) ||
                        (isa::reads_rs2(in) && in.rs2 == last_load_rd_) ||
                        (isa::reads_rd(in) && in.rd == last_load_rd_);
    if (hazard) {
      perf_.cycles += timing_.load_use_penalty;
      perf_.load_use_stall_cycles += timing_.load_use_penalty;
    }
  }

  next_pc_ = pc_ + in.size;
  redirect_ = false;
  if (!cfg_.clock_gating) {
    dotp_.broadcast_operands(reg(in.rs1), reg(in.rs2));
  }
  execute_reference(in);

  perf_.instructions += 1;
  perf_.cycles += 1;

  last_load_rd_ = isa::is_load(in.op) ? in.rd : 0;

  if (!redirect_ && cfg_.hwloops) hwloop_backedge(pc_ + in.size);

  pc_ = next_pc_;
  return !halted();
}

void Core::hwloop_backedge(addr_t after) {
  // Hardware-loop back-edges (zero overhead). Only on fall-through paths;
  // inner loop L0 has priority over L1.
  for (unsigned l = 0; l < 2; ++l) {
    if (after == hwl_end_[l] && hwl_count_[l] > 0) {
      if (hwl_count_[l] > 1) {
        hwl_count_[l] -= 1;
        next_pc_ = hwl_start_[l];
        perf_.hwloop_backedges += 1;
        if (cfg_.superblock && !ref_dispatch_) {
          // The loop body is hot by definition; try to fuse the remaining
          // iterations at the next instruction boundary.
          sb_candidate_ = hwl_start_[l];
          sb_candidate_branch_ = 0;
        }
      } else {
        hwl_count_[l] = 0;  // final iteration: fall through
        update_hwl_active();
      }
      break;
    }
  }
}

HaltReason Core::run(u64 max_instructions) {
  if (ref_dispatch_) {
    // Legacy loop shape: dynamic trace check inside step_reference and the
    // limit read back from the perf counters every iteration. The sampling
    // deadline compare is unreachable without a sampler (kNoSampleDue).
    const u64 limit = perf_.instructions + max_instructions;
    while (!halted()) {
      step_reference();
      if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
      if (perf_.instructions >= limit) {
        halt_ = HaltReason::kInstrLimit;
        break;
      }
    }
    return halt_;
  }
  if (sampler_) {
    return trace_ ? run_fast<true, true>(max_instructions)
                  : run_fast<false, true>(max_instructions);
  }
  return trace_ ? run_fast<true, false>(max_instructions)
                : run_fast<false, false>(max_instructions);
}

template <bool Traced, bool Sampled>
HaltReason Core::run_fast(u64 max_instructions) {
  u64 executed = 0;
  while (!halted()) {
    step_fast<Traced>();
    ++executed;
    if constexpr (Sampled) {
      // At an exact instruction boundary, before any fused burst starts —
      // so a burst always enters with cycles < sample_due_.
      if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
    }
    if constexpr (!Traced) {
      // Superblock entry: the step above announced a hot block starting at
      // the next pc (hwloop setup/backedge, hot backward branch). A burst
      // retires whole iterations and never overshoots the remaining
      // budget, so the kInstrLimit semantics below stay exact. Candidates
      // are only ever set when cfg_.superblock is on, so the common path
      // pays one compare. Traced runs never fuse: the per-instruction
      // hook is the reason to interpret.
      if (sb_candidate_ != kNoSbCandidate) [[unlikely]] {
        const addr_t cand = sb_candidate_;
        const addr_t cand_branch = sb_candidate_branch_;
        sb_candidate_ = kNoSbCandidate;
        sb_candidate_branch_ = 0;
        if (executed < max_instructions && cand == pc_ && !halted()) {
          executed +=
              superblock_enter(cand, cand_branch, max_instructions - executed);
          if constexpr (Sampled) {
            // The burst may have repaired to a boundary that crossed the
            // deadline (sample_flushes); fire there, not an instruction
            // later.
            if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
          }
        }
      }
    }
    if (executed >= max_instructions) {
      halt_ = HaltReason::kInstrLimit;
      break;
    }
    if constexpr (Traced) {
      // The hook detached itself (returned false): finish the run on the
      // trace-free loop so the rest of the instructions pay no overhead.
      if (!trace_) return run_fast<false, Sampled>(max_instructions - executed);
    }
  }
  return halt_;
}

u64 Core::run_steps(u64 n) {
  u64 executed = 0;
  while (executed < n && !halted()) {
    step();
    ++executed;
    if (sb_candidate_ != kNoSbCandidate) {
      const addr_t cand = sb_candidate_;
      const addr_t cand_branch = sb_candidate_branch_;
      sb_candidate_ = kNoSbCandidate;
      sb_candidate_branch_ = 0;
      if (!ref_dispatch_ && !trace_ && executed < n && cand == pc_ &&
          !halted()) {
        executed += superblock_enter(cand, cand_branch, n - executed);
        // step() fires samples itself; a burst that repaired to a crossed
        // deadline needs the same boundary-exact fire here.
        if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
      }
    }
  }
  return executed;
}

u64 Core::run_burst(cycles_t horizon, u64 max_instructions) {
  // Bounded burst for the cluster scheduler: full-speed dispatch until the
  // first instruction boundary at or past `horizon`. The horizon is
  // published through burst_due_ so fused superblock bursts stop at the
  // same boundary a per-instruction run would (armed single-step plus the
  // prefix repair tables — see sb_execute_impl). The burst_due_ reset must
  // survive guest faults: a dangling horizon would silently truncate every
  // later superblock burst.
  u64 executed = 0;
  burst_due_ = horizon;
  try {
    while (perf_.cycles < horizon && executed < max_instructions &&
           !halted()) {
      if (ref_dispatch_) {
        step_reference();
      } else if (trace_) [[unlikely]] {
        step_fast<true>();
      } else {
        step_fast<false>();
      }
      ++executed;
      if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
      if (sb_candidate_ != kNoSbCandidate) [[unlikely]] {
        const addr_t cand = sb_candidate_;
        const addr_t cand_branch = sb_candidate_branch_;
        sb_candidate_ = kNoSbCandidate;
        sb_candidate_branch_ = 0;
        if (!ref_dispatch_ && !trace_ && executed < max_instructions &&
            cand == pc_ && !halted() && perf_.cycles < horizon) {
          executed +=
              superblock_enter(cand, cand_branch, max_instructions - executed);
          if (perf_.cycles >= sample_due_) [[unlikely]] sample_fire();
        }
      }
    }
  } catch (...) {
    burst_due_ = kNoSampleDue;
    throw;
  }
  burst_due_ = kNoSampleDue;
  return executed;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

const std::array<Core::ExecFn, static_cast<size_t>(isa::ExecClass::kCount)>
    Core::kExecTable = {
        &Core::exec_illegal,      // kIllegal
        &Core::exec_lui,          // kLui
        &Core::exec_auipc,        // kAuipc
        &Core::exec_branch_jump,  // kBranchJump
        &Core::exec_alu_imm,      // kAluImm
        &Core::exec_alu_reg,      // kAluReg
        &Core::exec_muldiv,       // kMulDiv
        &Core::exec_mem,          // kMem
        &Core::exec_fence,        // kFence
        &Core::exec_ecall,        // kEcall
        &Core::exec_ebreak,       // kEbreak
        &Core::exec_csr_system,   // kCsr
        &Core::exec_hwloop,       // kHwloop
        &Core::exec_pulp_scalar,  // kPulpScalar
        &Core::exec_simd_alu,     // kSimdAlu
        &Core::exec_simd_dotp_fast,  // kSimdDotp
        &Core::exec_simd_elem,    // kSimdElem
        &Core::exec_simd_qnt,     // kSimdQnt
};

// The pre-optimization interpreter, kept verbatim as the semantic
// reference: switch on mnemonic, feature require() chains recomputed per
// executed instruction.
void Core::execute_reference(const Instr& in) {
  using M = Mnemonic;
  switch (in.op) {
    case M::kLui:
      exec_lui(in);
      break;
    case M::kAuipc:
      exec_auipc(in);
      break;
    case M::kJal: case M::kJalr:
    case M::kBeq: case M::kBne: case M::kBlt: case M::kBge:
    case M::kBltu: case M::kBgeu:
    case M::kPBeqimm: case M::kPBneimm:
      exec_branch_jump(in);
      break;
    case M::kAddi: case M::kSlti: case M::kSltiu: case M::kXori:
    case M::kOri: case M::kAndi: case M::kSlli: case M::kSrli:
    case M::kSrai:
    case M::kAdd: case M::kSub: case M::kSll: case M::kSlt:
    case M::kSltu: case M::kXor: case M::kSrl: case M::kSra:
    case M::kOr: case M::kAnd:
      exec_alu(in);
      break;
    case M::kMul: case M::kMulh: case M::kMulhsu: case M::kMulhu:
    case M::kDiv: case M::kDivu: case M::kRem: case M::kRemu:
      exec_muldiv(in);
      break;
    case M::kFence:
      exec_fence(in);
      break;
    case M::kEcall:
      exec_ecall(in);
      break;
    case M::kEbreak:
      exec_ebreak(in);
      break;
    case M::kCsrrw: case M::kCsrrs: case M::kCsrrc:
    case M::kCsrrwi: case M::kCsrrsi: case M::kCsrrci:
      exec_csr_system(in);
      break;
    case M::kLpStarti: case M::kLpEndi: case M::kLpCount:
    case M::kLpCounti: case M::kLpSetup: case M::kLpSetupi:
      require(cfg_.xpulpv2 && cfg_.hwloops, in);
      exec_hwloop(in);
      break;
    case M::kPAbs: case M::kPMin: case M::kPMinu: case M::kPMax:
    case M::kPMaxu: case M::kPExths: case M::kPExthz: case M::kPExtbs:
    case M::kPExtbz: case M::kPCnt: case M::kPFf1: case M::kPFl1:
    case M::kPClb: case M::kPRor: case M::kPClip: case M::kPClipu:
    case M::kPMac: case M::kPMsu:
    case M::kPExtract: case M::kPExtractu: case M::kPInsert:
    case M::kPBclr: case M::kPBset:
      require(cfg_.xpulpv2, in);
      exec_pulp_scalar(in);
      break;
    default:
      if (isa::is_load(in.op) || isa::is_store(in.op)) {
        // All non-base-ISA addressing modes belong to XpulpV2.
        if (in.op != M::kLb && in.op != M::kLh && in.op != M::kLw &&
            in.op != M::kLbu && in.op != M::kLhu && in.op != M::kSb &&
            in.op != M::kSh && in.op != M::kSw) {
          require(cfg_.xpulpv2, in);
        }
        exec_mem_reference(in);
      } else if (isa::is_simd(in.op)) {
        require(cfg_.xpulpv2, in);
        if (isa::simd_is_subbyte(in.fmt) || in.op == M::kPvQnt ||
            isa::is_mixed_dotp(in.op)) {
          require(cfg_.xpulpnn, in);
        }
        exec_simd(in);
      } else {
        throw IllegalInstruction(pc_, in.raw);
      }
      break;
  }
}

// ---------------------------------------------------------------------------
// Handlers (shared by both dispatch modes)
// ---------------------------------------------------------------------------

void Core::exec_illegal(const Instr& in) {
  throw IllegalInstruction(pc_, in.raw);
}

void Core::exec_lui(const Instr& in) {
  set_reg(in.rd, static_cast<u32>(in.imm));
  perf_.scalar_alu_ops += 1;
}

void Core::exec_auipc(const Instr& in) {
  set_reg(in.rd, pc_ + static_cast<u32>(in.imm));
  perf_.scalar_alu_ops += 1;
}

void Core::exec_fence(const Instr&) {  // single hart: ordering is a no-op
  perf_.sys_ops += 1;
}

void Core::exec_ecall(const Instr&) {
  halt_ = HaltReason::kEcall;
  perf_.sys_ops += 1;
}

void Core::exec_ebreak(const Instr&) {
  halt_ = HaltReason::kEbreak;
  perf_.sys_ops += 1;
}

void Core::alu_body(const Instr& in, u32 b) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  u32 r = 0;
  switch (in.op) {
    case M::kAddi: case M::kAdd: r = a + b; break;
    case M::kSub: r = a - b; break;
    case M::kSlti: case M::kSlt:
      r = (static_cast<i32>(a) < static_cast<i32>(b)) ? 1 : 0;
      break;
    case M::kSltiu: case M::kSltu: r = (a < b) ? 1 : 0; break;
    case M::kXori: case M::kXor: r = a ^ b; break;
    case M::kOri: case M::kOr: r = a | b; break;
    case M::kAndi: case M::kAnd: r = a & b; break;
    case M::kSlli: case M::kSll: r = a << (b & 31); break;
    case M::kSrli: case M::kSrl: r = a >> (b & 31); break;
    case M::kSrai: case M::kSra:
      r = static_cast<u32>(static_cast<i32>(a) >> (b & 31));
      break;
    default: break;
  }
  set_reg(in.rd, r);
  perf_.scalar_alu_ops += 1;
}

void Core::exec_alu_imm(const Instr& in) {
  alu_body(in, static_cast<u32>(in.imm));
}

void Core::exec_alu_reg(const Instr& in) { alu_body(in, reg(in.rs2)); }

void Core::exec_alu(const Instr& in) {
  using M = Mnemonic;
  const bool immediate =
      in.op == M::kAddi || in.op == M::kSlti || in.op == M::kSltiu ||
      in.op == M::kXori || in.op == M::kOri || in.op == M::kAndi ||
      in.op == M::kSlli || in.op == M::kSrli || in.op == M::kSrai;
  alu_body(in, immediate ? static_cast<u32>(in.imm) : reg(in.rs2));
}

void Core::exec_muldiv(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 r = 0;
  switch (in.op) {
    case M::kMul:
      r = a * b;
      perf_.mul_ops += 1;
      break;
    case M::kMulh:
      r = static_cast<u32>((static_cast<i64>(sa) * sb) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kMulhsu:
      r = static_cast<u32>((static_cast<i64>(sa) * static_cast<u64>(b)) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kMulhu:
      r = static_cast<u32>((static_cast<u64>(a) * b) >> 32);
      perf_.mul_ops += 1;
      perf_.cycles += timing_.mulh_cycles - 1;
      perf_.mul_div_stall_cycles += timing_.mulh_cycles - 1;
      break;
    case M::kDiv:
      if (b == 0) {
        r = ~0u;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r = static_cast<u32>(sa);
      } else {
        r = static_cast<u32>(sa / sb);
      }
      goto div_timing;
    case M::kDivu:
      r = (b == 0) ? ~0u : a / b;
      goto div_timing;
    case M::kRem:
      if (b == 0) {
        r = a;
      } else if (sa == std::numeric_limits<i32>::min() && sb == -1) {
        r = 0;
      } else {
        r = static_cast<u32>(sa % sb);
      }
      goto div_timing;
    case M::kRemu:
      r = (b == 0) ? a : a % b;
      goto div_timing;
    default:
      break;
  }
  set_reg(in.rd, r);
  return;

div_timing:
  set_reg(in.rd, r);
  perf_.div_ops += 1;
  {
    const unsigned c = timing_.div_cycles(a);
    perf_.cycles += c - 1;
    perf_.mul_div_stall_cycles += c - 1;
  }
}

void Core::exec_branch_jump(const Instr& in) {
  using M = Mnemonic;
  if (in.op == M::kJal) {
    set_reg(in.rd, pc_ + in.size);
    next_pc_ = pc_ + static_cast<u32>(in.imm);
    redirect_ = true;
    perf_.jumps += 1;
    perf_.cycles += timing_.jump_penalty;
    perf_.branch_stall_cycles += timing_.jump_penalty;
    return;
  }
  if (in.op == M::kJalr) {
    const u32 target = (reg(in.rs1) + static_cast<u32>(in.imm)) & ~1u;
    set_reg(in.rd, pc_ + in.size);
    next_pc_ = target;
    redirect_ = true;
    perf_.jumps += 1;
    perf_.cycles += timing_.jump_penalty;
    perf_.branch_stall_cycles += timing_.jump_penalty;
    return;
  }
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  bool taken = false;
  switch (in.op) {
    case M::kBeq: taken = a == b; break;
    case M::kBne: taken = a != b; break;
    case M::kPBeqimm:
      require(cfg_.xpulpv2, in);
      taken = static_cast<i32>(a) == sign_extend(in.imm2, 5);
      break;
    case M::kPBneimm:
      require(cfg_.xpulpv2, in);
      taken = static_cast<i32>(a) != sign_extend(in.imm2, 5);
      break;
    case M::kBlt: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
    case M::kBge: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
    case M::kBltu: taken = a < b; break;
    case M::kBgeu: taken = a >= b; break;
    default: break;
  }
  if (taken) {
    next_pc_ = pc_ + static_cast<u32>(in.imm);
    redirect_ = true;
    perf_.taken_branches += 1;
    perf_.cycles += timing_.taken_branch_penalty;
    perf_.branch_stall_cycles += timing_.taken_branch_penalty;
    if (in.imm < 0 && cfg_.superblock && !ref_dispatch_) {
      sb_note_backedge(pc_, next_pc_);
    }
  } else {
    perf_.not_taken_branches += 1;
  }
}

void Core::mem_body(const Instr& in, unsigned size, bool store, bool sext) {
  using M = Mnemonic;
  addr_t addr = 0;
  u32 new_base = 0;
  bool update_base = false;

  switch (in.op) {
    // Plain RV32I loads/stores and immediate post-increment forms.
    case M::kLb: case M::kLh: case M::kLw: case M::kLbu: case M::kLhu:
    case M::kSb: case M::kSh: case M::kSw:
      addr = reg(in.rs1) + static_cast<u32>(in.imm);
      break;
    case M::kPLbPostImm: case M::kPLhPostImm: case M::kPLwPostImm:
    case M::kPLbuPostImm: case M::kPLhuPostImm:
    case M::kPSbPostImm: case M::kPShPostImm: case M::kPSwPostImm:
      addr = reg(in.rs1);
      new_base = addr + static_cast<u32>(in.imm);
      update_base = true;
      break;
    // Register post-increment: increment in rs2 (loads) or rd field (stores).
    case M::kPLbPostReg: case M::kPLhPostReg: case M::kPLwPostReg:
    case M::kPLbuPostReg: case M::kPLhuPostReg:
      addr = reg(in.rs1);
      new_base = addr + reg(in.rs2);
      update_base = true;
      break;
    case M::kPSbPostReg: case M::kPShPostReg: case M::kPSwPostReg:
      addr = reg(in.rs1);
      new_base = addr + reg(in.rd);
      update_base = true;
      break;
    // Register-offset (indexed) addressing: offset in rs2 / rd field.
    case M::kPLbRegReg: case M::kPLhRegReg: case M::kPLwRegReg:
    case M::kPLbuRegReg: case M::kPLhuRegReg:
      addr = reg(in.rs1) + reg(in.rs2);
      break;
    case M::kPSbRegReg: case M::kPShRegReg: case M::kPSwRegReg:
      addr = reg(in.rs1) + reg(in.rd);
      break;
    default:
      throw IllegalInstruction(pc_, in.raw);
  }

  const unsigned stalls = mem_.access_cycles(addr, size, store);
  perf_.cycles += stalls;
  perf_.mem_stall_cycles += stalls;

  if (store) {
    mem_.store(addr, reg(in.rs2), size);
    // Decode-cache coherence: a store into already-decoded instruction
    // memory must not keep executing the stale decode.
    icache_invalidate(addr, size);
    perf_.stores += 1;
  } else {
    u32 v = mem_.load(addr, size);
    if (sext) {
      v = static_cast<u32>(sign_extend(v, size * 8));
    }
    perf_.lsu_data_toggles += hamming_distance(last_load_data_, v);
    last_load_data_ = v;
    set_reg(in.rd, v);
    perf_.loads += 1;
  }
  if (update_base) set_reg(in.rs1, new_base);
}

void Core::exec_mem(const Instr& in) {
  // Fast path: addressing mode comes packed in the decode flags, so no
  // mnemonic switch runs here (compare mem_body, the reference shape).
  const u16 f = in.flags;
  const bool store = (f & iflag::kIsStore) != 0;
  const u32 base = reg(in.rs1);
  const u32 off = (f & iflag::kMemRegOff) ? reg(store ? in.rd : in.rs2)
                                          : static_cast<u32>(in.imm);
  const bool post = (f & iflag::kMemPostInc) != 0;
  const addr_t addr = post ? base : base + off;
  const unsigned size = in.mem_size;

  const unsigned stalls = mem_.access_cycles(addr, size, store);
  perf_.cycles += stalls;
  perf_.mem_stall_cycles += stalls;

  if (store) {
    mem_.store(addr, reg(in.rs2), size);
    icache_invalidate(addr, size);
    perf_.stores += 1;
  } else {
    u32 v = mem_.load(addr, size);
    if (f & iflag::kLoadSigned) {
      v = static_cast<u32>(sign_extend(v, size * 8));
    }
    perf_.lsu_data_toggles += hamming_distance(last_load_data_, v);
    last_load_data_ = v;
    set_reg(in.rd, v);
    perf_.loads += 1;
  }
  if (post) set_reg(in.rs1, base + off);
}

void Core::exec_mem_reference(const Instr& in) {
  mem_body(in, isa::mem_access_size(in.op), isa::is_store(in.op),
           isa::load_is_signed(in.op));
}

void Core::exec_pulp_scalar(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 r = 0;
  switch (in.op) {
    case M::kPAbs: r = static_cast<u32>(sa < 0 ? -sa : sa); break;
    case M::kPMin: r = static_cast<u32>(sa < sb ? sa : sb); break;
    case M::kPMinu: r = a < b ? a : b; break;
    case M::kPMax: r = static_cast<u32>(sa > sb ? sa : sb); break;
    case M::kPMaxu: r = a > b ? a : b; break;
    case M::kPExths: r = static_cast<u32>(sign_extend(a, 16)); break;
    case M::kPExthz: r = a & 0xffffu; break;
    case M::kPExtbs: r = static_cast<u32>(sign_extend(a, 8)); break;
    case M::kPExtbz: r = a & 0xffu; break;
    case M::kPCnt: r = popcount32(a); break;
    case M::kPFf1: r = find_first_one(a); break;
    case M::kPFl1: r = find_last_one(a); break;
    case M::kPClb: r = count_leading_redundant_sign(a); break;
    case M::kPRor: r = rotr32(a, b); break;
    case M::kPClip: {
      // p.clip rd, rs1, I: clamp to [-2^(I-1), 2^(I-1)-1] (I==0 acts as 1).
      const unsigned i = static_cast<unsigned>(in.imm);
      r = static_cast<u32>(sat_signed(sa, i == 0 ? 1 : i));
      break;
    }
    case M::kPClipu: {
      // p.clipu rd, rs1, I: clamp to [0, 2^I - 1] (I==0 acts as 1).
      const unsigned i = static_cast<unsigned>(in.imm);
      r = sat_unsigned(sa, i == 0 ? 1 : i);
      break;
    }
    case M::kPMac:
      r = reg(in.rd) + a * b;
      perf_.mul_ops += 1;
      perf_.mac_ops += 1;
      break;
    case M::kPMsu:
      r = reg(in.rd) - a * b;
      perf_.mul_ops += 1;
      perf_.mac_ops += 1;
      break;
    case M::kPExtract: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      r = static_cast<u32>(sign_extend(a >> pos, width));
      break;
    }
    case M::kPExtractu: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      r = zero_extend(a >> pos, width);
      break;
    }
    case M::kPInsert: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = insert_bits(reg(in.rd), a, pos, width);
      break;
    }
    case M::kPBclr: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = a & ~(low_mask(width) << pos);
      break;
    }
    case M::kPBset: {
      const unsigned width = static_cast<unsigned>(in.imm2) + 1;
      const unsigned pos = static_cast<unsigned>(in.imm);
      if (pos + width > 32) throw IllegalInstruction(pc_, in.raw);
      r = a | (low_mask(width) << pos);
      break;
    }
    default:
      throw IllegalInstruction(pc_, in.raw);
  }
  set_reg(in.rd, r);
  perf_.scalar_alu_ops += 1;
}

void Core::exec_hwloop(const Instr& in) {
  using M = Mnemonic;
  const unsigned l = in.imm2 & 1u;
  switch (in.op) {
    case M::kLpStarti:
      hwl_start_[l] = pc_ + static_cast<u32>(in.imm);
      break;
    case M::kLpEndi:
      hwl_end_[l] = pc_ + static_cast<u32>(in.imm);
      break;
    case M::kLpCount:
      hwl_count_[l] = reg(in.rs1);
      break;
    case M::kLpCounti:
      hwl_count_[l] = static_cast<u32>(in.imm);
      break;
    case M::kLpSetup:
    case M::kLpSetupi:
      hwl_start_[l] = pc_ + in.size;
      hwl_end_[l] = pc_ + static_cast<u32>(in.imm);
      // lp_setupi carries a 5-bit immediate count in the rs1 field.
      hwl_count_[l] = in.op == M::kLpSetup ? reg(in.rs1) : in.rs1;
      if (cfg_.superblock && !ref_dispatch_ && hwl_count_[l] > 1) {
        // The next instruction is the loop start: fuse the whole loop from
        // iteration one instead of waiting for the first backedge.
        sb_candidate_ = hwl_start_[l];
        sb_candidate_branch_ = 0;
      }
      break;
    default:
      throw IllegalInstruction(pc_, in.raw);
  }
  update_hwl_active();
  perf_.scalar_alu_ops += 1;
}

void Core::exec_simd(const Instr& in) {
  if (in.op == Mnemonic::kPvQnt) {
    exec_simd_qnt(in);
    return;
  }
  if (isa::is_dotp(in.op)) {
    exec_simd_dotp(in);
    return;
  }
  if (isa::is_elem_manip(in.op)) {
    exec_simd_elem(in);
    return;
  }
  exec_simd_alu(in);
}

void Core::exec_simd_qnt(const Instr& in) {
  const unsigned q_bits = isa::simd_elem_bits(in.fmt);
  const QuantResult res = qnt_.execute(mem_, reg(in.rs1), reg(in.rs2), q_bits);
  set_reg(in.rd, res.rd);
  perf_.qnt_ops += 1;
  // Base cycle is charged in step(); the remainder of the unit's fixed
  // latency (2*Q compare cycles) stalls the pipeline as a qnt stall, while
  // stalls raised by the threshold fetches themselves (misaligned trees,
  // contention) are memory stalls — the same cause they would carry on the
  // LSU path. Charging them to qnt_stall_cycles would inflate the unit
  // latency past the paper's 9-cycle nibble / 5-cycle crumb figures.
  perf_.cycles += res.cycles - 1 + res.mem_stalls;
  perf_.qnt_stall_cycles += res.cycles - 1;
  perf_.mem_stall_cycles += res.mem_stalls;
}

void Core::exec_simd_dotp(const Instr& in) {
  const i32 acc = static_cast<i32>(reg(in.rd));
  if (isa::is_mixed_dotp(in.op)) {
    // Virtual SIMD: the operand formats come from the precision-status CSR,
    // not the encoding. The reserved selector makes the op illegal.
    if (mpc_ >= isa::kMpcSelCount) throw IllegalInstruction(pc_, in.raw);
    const i32 r = dotp_.dotp_mixed(in.op, mpc_, reg(in.rs1), reg(in.rs2), acc);
    set_reg(in.rd, static_cast<u32>(r));
    perf_.dotp_ops[static_cast<unsigned>(mixed_region(mpc_))] += 1;
    perf_.mixed_dotp_ops[mpc_] += 1;
    return;
  }
  const i32 r = dotp_.dotp(in.op, in.fmt, reg(in.rs1), reg(in.rs2), acc);
  set_reg(in.rd, static_cast<u32>(r));
  perf_.dotp_ops[static_cast<unsigned>(region_for(in.fmt))] += 1;
}

// The decode-specialized dot-product kernel lives in sim/dotp_lanes.hpp,
// shared with the superblock fused loop.
void Core::exec_simd_dotp_fast(const Instr& in) {
  using isa::SimdFmt;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const u16 f = in.flags;
  const bool sa = (f & iflag::kDotSignedA) != 0;
  const bool sb = (f & iflag::kDotSignedB) != 0;
  const u32 acc = (f & iflag::kDotAccum) ? reg(in.rd) : 0;
  if (f & iflag::kDotMixed) {
    if (mpc_ >= isa::kMpcSelCount) throw IllegalInstruction(pc_, in.raw);
    const i32 rm = dotp_lanes_mixed_sel(mpc_, a, b, acc, sa, sb);
    const unsigned region = static_cast<unsigned>(mixed_region(mpc_));
    dotp_.note_dotp(region, a, b);
    set_reg(in.rd, static_cast<u32>(rm));
    perf_.dotp_ops[region] += 1;
    perf_.mixed_dotp_ops[mpc_] += 1;
    return;
  }
  i32 r = 0;
  unsigned region = 0;  // DotpRegion numbering: 16-bit first, then narrower
  switch (in.fmt) {
    case SimdFmt::kH: r = dotp_lanes<16, false>(a, b, acc, sa, sb); region = 0; break;
    case SimdFmt::kHSc: r = dotp_lanes<16, true>(a, b, acc, sa, sb); region = 0; break;
    case SimdFmt::kB: r = dotp_lanes<8, false>(a, b, acc, sa, sb); region = 1; break;
    case SimdFmt::kBSc: r = dotp_lanes<8, true>(a, b, acc, sa, sb); region = 1; break;
    case SimdFmt::kN: r = dotp_lanes<4, false>(a, b, acc, sa, sb); region = 2; break;
    case SimdFmt::kNSc: r = dotp_lanes<4, true>(a, b, acc, sa, sb); region = 2; break;
    case SimdFmt::kC: r = dotp_lanes<2, false>(a, b, acc, sa, sb); region = 3; break;
    case SimdFmt::kCSc: r = dotp_lanes<2, true>(a, b, acc, sa, sb); region = 3; break;
    default: throw IllegalInstruction(pc_, in.raw);
  }
  dotp_.note_dotp(region, a, b);
  set_reg(in.rd, static_cast<u32>(r));
  perf_.dotp_ops[region] += 1;
}

void Core::exec_simd_elem(const Instr& in) {
  using M = Mnemonic;
  const u32 a = reg(in.rs1);
  const u32 b = reg(in.rs2);
  const unsigned lanes = isa::simd_elem_count(in.fmt);
  const unsigned lane = static_cast<unsigned>(in.imm) & (lanes - 1);
  u32 r = 0;
  switch (in.op) {
    case M::kPvElemExtract:
      r = static_cast<u32>(simd_extract(a, in.fmt, lane, /*sign=*/true));
      break;
    case M::kPvElemExtractu:
      r = static_cast<u32>(simd_extract(a, in.fmt, lane, /*sign=*/false));
      break;
    case M::kPvElemInsert:
      r = simd_insert(reg(in.rd), in.fmt, lane, a);
      break;
    case M::kPvShuffle: {
      for (unsigned i = 0; i < lanes; ++i) {
        const unsigned src =
            static_cast<unsigned>(simd_extract(b, in.fmt, i, false)) &
            (lanes - 1);
        r = simd_insert(
            r, in.fmt, i,
            static_cast<u32>(simd_extract(a, in.fmt, src, false)));
      }
      break;
    }
    case M::kPvPackH:
      r = (a << 16) | (b & 0xffffu);
      break;
    default:
      throw IllegalInstruction(pc_, in.raw);
  }
  set_reg(in.rd, r);
  perf_.simd_alu_ops += 1;
}

void Core::exec_simd_alu(const Instr& in) {
  set_reg(in.rd, dotp_.alu_op(in.op, in.fmt, reg(in.rs1), reg(in.rs2)));
  perf_.simd_alu_ops += 1;
}

u32 Core::csr_read(u32 addr) const {
  switch (addr) {
    case 0xB00: case 0xC00: return static_cast<u32>(perf_.cycles);
    case 0xB80: case 0xC80: return static_cast<u32>(perf_.cycles >> 32);
    case 0xB02: case 0xC02: return static_cast<u32>(perf_.instructions);
    case 0xB82: case 0xC82: return static_cast<u32>(perf_.instructions >> 32);
    case 0xF14: return 0;  // mhartid
    case 0x340: return mscratch_;
    case isa::kMpcCsr: return mpc_;
    default: return 0;
  }
}

void Core::exec_csr_system(const Instr& in) {
  using M = Mnemonic;
  const u32 csr = static_cast<u32>(in.imm);
  const u32 old = csr_read(csr);
  const u32 operand = (in.op == M::kCsrrwi || in.op == M::kCsrrsi ||
                       in.op == M::kCsrrci)
                          ? in.imm2
                          : reg(in.rs1);
  u32 nv = old;
  switch (in.op) {
    case M::kCsrrw: case M::kCsrrwi: nv = operand; break;
    case M::kCsrrs: case M::kCsrrsi: nv = old | operand; break;
    case M::kCsrrc: case M::kCsrrci: nv = old & ~operand; break;
    default: break;
  }
  if (csr == 0x340) {
    mscratch_ = nv;
  } else if (csr == isa::kMpcCsr) {
    // WARL: only the low two selector bits are writable. Superblock plans
    // bake the selector into their fused dot-product bodies, so a value
    // change must evict them — they would otherwise misfuse silently.
    const u32 warl = nv & 3u;
    if (warl != mpc_) {
      sb_evict_mixed_plans();
      mpc_ = warl;
    }
  }  // other CSRs are read-only here
  set_reg(in.rd, old);
  perf_.csr_ops += 1;
}

}  // namespace xpulp::sim
