// RI5CY timing model (documented constants).
//
// RI5CY is a 4-stage, in-order, single-issue pipeline. The cycle costs below
// follow the RI5CY user manual and the paper:
//   - base CPI 1 for ALU/SIMD/store instructions (the LSU overlaps aligned
//     single-cycle TCDM accesses);
//   - jumps (jal/jalr) redirect fetch from ID: +1 penalty cycle;
//   - taken branches resolve in EX: +2 penalty cycles; not-taken: +0;
//   - a load followed by an instruction consuming the loaded register
//     stalls 1 cycle (load-use hazard);
//   - hardware-loop back-edges are zero overhead;
//   - mul is single cycle, mulh/mulhsu/mulhu take 5 cycles, div/rem use a
//     serial divider (3 cycles + one per significant dividend bit);
//   - pv.qnt is multi-cycle: 1 + 2*Q cycles (9 for nibble, 5 for crumb),
//     during which the core pipeline is stalled (paper §III-B2);
//   - misaligned data accesses add 1 cycle (two SRAM transactions).
#pragma once

#include "common/types.hpp"

namespace xpulp::sim {

struct TimingModel {
  unsigned jump_penalty = 1;
  unsigned taken_branch_penalty = 2;
  unsigned load_use_penalty = 1;
  unsigned mulh_cycles = 5;
  unsigned div_base_cycles = 3;

  /// Serial divider latency for a given dividend (RI5CY-style early-out).
  unsigned div_cycles(u32 dividend) const {
    unsigned significant = 32;
    for (unsigned i = 0; i < 32; ++i) {
      if (dividend >> 31) break;
      dividend <<= 1;
      --significant;
    }
    return div_base_cycles + significant;
  }
};

}  // namespace xpulp::sim
