// Instruction-trace writer: attach to a Core to stream one disassembled
// line per executed instruction (pc, raw word, mnemonic, cumulative
// cycles). Useful for debugging generated kernels.
#pragma once

#include <iomanip>
#include <ostream>

#include "isa/disasm.hpp"
#include "sim/core.hpp"

namespace xpulp::sim {

class TraceWriter {
 public:
  /// Attach to `core`; lines go to `os` until the writer is destroyed or
  /// detach() is called. `limit` stops tracing after that many
  /// instructions (0 = unlimited); hitting it detaches the hook, so the
  /// rest of the run executes on the trace-free loop at full speed.
  TraceWriter(Core& core, std::ostream& os, u64 limit = 0)
      : core_(core), os_(os), limit_(limit) {
    core_.set_trace(
        [this](addr_t pc, const isa::Instr& in) { return line(pc, in); });
  }

  ~TraceWriter() { detach(); }

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void detach() { core_.set_trace({}); }

  u64 lines_written() const { return count_; }

 private:
  bool line(addr_t pc, const isa::Instr& in) {
    ++count_;
    os_ << std::hex << std::setw(8) << std::setfill('0') << pc << ":  "
        << std::setw(8) << in.raw << "  " << std::dec
        << isa::disassemble(in, pc) << "  [cyc " << core_.perf().cycles
        << "]\n";
    // false once the limit is reached: the core drops the hook and the
    // remaining instructions run untraced.
    return limit_ == 0 || count_ < limit_;
  }

  Core& core_;
  std::ostream& os_;
  u64 limit_;
  u64 count_ = 0;
};

}  // namespace xpulp::sim
