#include "sim/dotp_unit.hpp"

#include <cassert>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace xpulp::sim {

using isa::Mnemonic;
using isa::SimdFmt;

DotpRegion region_for(SimdFmt fmt) {
  switch (isa::simd_elem_bits(fmt)) {
    case 16: return DotpRegion::k16;
    case 8: return DotpRegion::k8;
    case 4: return DotpRegion::k4;
    default: return DotpRegion::k2;
  }
}

i32 simd_extract(u32 v, SimdFmt fmt, unsigned i, bool sign) {
  const unsigned w = isa::simd_elem_bits(fmt);
  assert(i < isa::simd_elem_count(fmt));
  const u32 raw = bits(v, i * w + w - 1, i * w);
  return sign ? sign_extend(raw, w) : static_cast<i32>(raw);
}

u32 simd_insert(u32 v, SimdFmt fmt, unsigned i, u32 e) {
  const unsigned w = isa::simd_elem_bits(fmt);
  assert(i < isa::simd_elem_count(fmt));
  return insert_bits(v, e & low_mask(w), i * w, w);
}

u32 simd_operand_b(u32 rs2, SimdFmt fmt) {
  if (!isa::simd_is_scalar_rep(fmt)) return rs2;
  const unsigned w = isa::simd_elem_bits(fmt);
  const unsigned n = isa::simd_elem_count(fmt);
  const u32 scalar = rs2 & low_mask(w);
  u32 out = 0;
  for (unsigned i = 0; i < n; ++i) out |= scalar << (i * w);
  return out;
}

namespace {

bool op_is_signed(Mnemonic op) {
  switch (op) {
    case Mnemonic::kPvAvgu:
    case Mnemonic::kPvMaxu:
    case Mnemonic::kPvMinu:
    case Mnemonic::kPvSrl:
      return false;
    default:
      return true;
  }
}

i32 elem_op(Mnemonic op, i32 a, i32 b, unsigned w) {
  switch (op) {
    case Mnemonic::kPvAdd: return a + b;
    case Mnemonic::kPvSub: return a - b;
    // avg: (a+b)>>1, arithmetic for signed variant, logical for unsigned.
    case Mnemonic::kPvAvg: return (a + b) >> 1;
    case Mnemonic::kPvAvgu:
      return static_cast<i32>((static_cast<u32>(a) + static_cast<u32>(b)) >> 1);
    case Mnemonic::kPvMax: case Mnemonic::kPvMaxu: return a > b ? a : b;
    case Mnemonic::kPvMin: case Mnemonic::kPvMinu: return a < b ? a : b;
    case Mnemonic::kPvSrl:
      return static_cast<i32>(static_cast<u32>(a) >>
                              (static_cast<u32>(b) & (w - 1)));
    case Mnemonic::kPvSra: return a >> (static_cast<u32>(b) & (w - 1));
    case Mnemonic::kPvSll:
      return static_cast<i32>(static_cast<u32>(a)
                              << (static_cast<u32>(b) & (w - 1)));
    case Mnemonic::kPvAbs: return a < 0 ? -a : a;
    case Mnemonic::kPvAnd: return a & b;
    case Mnemonic::kPvOr: return a | b;
    case Mnemonic::kPvXor: return a ^ b;
    default:
      throw SimError("not an element-wise SIMD op");
  }
}

// Signedness of the two dot-product operands: {a_signed, b_signed}.
struct DotSign {
  bool a;
  bool b;
};

DotSign dot_sign(Mnemonic op) {
  switch (op) {
    case Mnemonic::kPvDotup: case Mnemonic::kPvSdotup:
    case Mnemonic::kPvMldotup: case Mnemonic::kPvMlsdotup:
      return {false, false};
    case Mnemonic::kPvDotusp: case Mnemonic::kPvSdotusp:
    case Mnemonic::kPvMldotusp: case Mnemonic::kPvMlsdotusp:
      return {false, true};
    case Mnemonic::kPvDotsp: case Mnemonic::kPvSdotsp:
    case Mnemonic::kPvMldotsp: case Mnemonic::kPvMlsdotsp:
      return {true, true};
    default:
      throw SimError("not a dot-product op");
  }
}

bool dot_accumulates(Mnemonic op) {
  return op == Mnemonic::kPvSdotup || op == Mnemonic::kPvSdotusp ||
         op == Mnemonic::kPvSdotsp || op == Mnemonic::kPvMlsdotup ||
         op == Mnemonic::kPvMlsdotusp || op == Mnemonic::kPvMlsdotsp;
}

}  // namespace

u32 DotpUnit::alu_op(Mnemonic op, SimdFmt fmt, u32 a, u32 b) const {
  const unsigned w = isa::simd_elem_bits(fmt);
  const unsigned n = isa::simd_elem_count(fmt);
  const bool sign = op_is_signed(op);
  const u32 vb = simd_operand_b(b, fmt);
  u32 out = 0;
  for (unsigned i = 0; i < n; ++i) {
    const i32 ea = simd_extract(a, fmt, i, sign);
    const i32 eb = simd_extract(vb, fmt, i, sign);
    out = simd_insert(out, fmt, i, static_cast<u32>(elem_op(op, ea, eb, w)));
  }
  return out;
}

i32 DotpUnit::dotp_reference(Mnemonic op, SimdFmt fmt, u32 a, u32 b, i32 acc) {
  const unsigned n = isa::simd_elem_count(fmt);
  const DotSign s = dot_sign(op);
  const u32 vb = simd_operand_b(b, fmt);
  i64 sum = dot_accumulates(op) ? acc : 0;
  for (unsigned i = 0; i < n; ++i) {
    sum += static_cast<i64>(simd_extract(a, fmt, i, s.a)) *
           static_cast<i64>(simd_extract(vb, fmt, i, s.b));
  }
  return static_cast<i32>(sum);  // 32-bit accumulator, truncating
}

DotpRegion mixed_region(u32 sel) {
  // The wide (activation) operand drives the multiplier array, so a mixed
  // op occupies the region of its activation width: 8x4/8x2 run on the
  // 8-bit region, 4x2 on the 4-bit region.
  return isa::mixed_width_a(sel) == 8 ? DotpRegion::k8 : DotpRegion::k4;
}

i32 DotpUnit::dotp_reference_mixed(Mnemonic op, u32 sel, u32 a, u32 b,
                                   i32 acc) {
  if (sel >= isa::kMpcSelCount) throw SimError("reserved mpc selector");
  const unsigned wa = isa::mixed_width_a(sel);
  const unsigned wb = isa::mixed_width_b(sel);
  const DotSign s = dot_sign(op);
  i64 sum = dot_accumulates(op) ? acc : 0;
  for (unsigned i = 0; i < 32 / wa; ++i) {
    const u32 ra = bits(a, i * wa + wa - 1, i * wa);
    const u32 rb = bits(b, i * wb + wb - 1, i * wb);
    const i64 ea = s.a ? sign_extend(ra, wa) : static_cast<i32>(ra);
    const i64 eb = s.b ? sign_extend(rb, wb) : static_cast<i32>(rb);
    sum += ea * eb;
  }
  return static_cast<i32>(sum);  // 32-bit accumulator, truncating
}

i32 DotpUnit::dotp_mixed(Mnemonic op, u32 sel, u32 a, u32 b, i32 acc) {
  const DotpRegion r = mixed_region(sel);
  if (clock_gating_) track(r, a, b);
  activity_.ops[static_cast<unsigned>(r)] += 1;
  return dotp_reference_mixed(op, sel, a, b, acc);
}

i32 DotpUnit::dotp(Mnemonic op, SimdFmt fmt, u32 a, u32 b, i32 acc) {
  // With gating the selected region's input registers latch the operands
  // here; without gating the core's per-instruction broadcast_operands()
  // already accounted for the toggles of all regions.
  if (clock_gating_) track(region_for(fmt), a, b);
  activity_.ops[static_cast<unsigned>(region_for(fmt))] += 1;
  return dotp_reference(op, fmt, a, b, acc);
}

void DotpUnit::broadcast_operands(u32 a, u32 b) {
  for (unsigned i = 0; i < 4; ++i) {
    activity_.operand_toggles[i] +=
        hamming_distance(last_a_[i], a) + hamming_distance(last_b_[i], b);
    last_a_[i] = a;
    last_b_[i] = b;
  }
}

void DotpUnit::track(DotpRegion region, u32 a, u32 b) {
  // Only the selected region's operand registers are clocked.
  const auto r = static_cast<unsigned>(region);
  activity_.operand_toggles[r] +=
      hamming_distance(last_a_[r], a) + hamming_distance(last_b_[r], b);
  last_a_[r] = a;
  last_b_[r] = b;
}

}  // namespace xpulp::sim
