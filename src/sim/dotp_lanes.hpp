// Decode-specialized dot-product kernel shared by the fast interpreter path
// (core.cpp) and the superblock fused loop (superblock.cpp). With the lane
// width a template parameter the loop fully unrolls (and vectorizes for the
// sub-byte formats); DotpUnit::dotp_reference keeps both width and count as
// runtime values and pays a function call plus bit-slicing per lane.
//
// Bit-identical to dotp_reference: that routine widens to 64 bits and
// truncates the final sum to 32, which equals mod-2^32 (u32 wraparound)
// multiply-accumulate — so everything stays in 32-bit registers here.
#pragma once

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace xpulp::sim {

template <unsigned W, bool ScalarRep>
inline i32 dotp_lanes(u32 a, u32 b, u32 sum, bool sa, bool sb) {
  if constexpr (ScalarRep) {
    b = (b & low_mask(W)) * (~0u / low_mask(W));  // replicate over all lanes
  }
  for (unsigned i = 0; i < 32 / W; ++i) {
    const u32 ra = (a >> (i * W)) & low_mask(W);
    const u32 rb = (b >> (i * W)) & low_mask(W);
    const u32 ea = sa ? static_cast<u32>(sign_extend(ra, W)) : ra;
    const u32 eb = sb ? static_cast<u32>(sign_extend(rb, W)) : rb;
    sum += ea * eb;
  }
  return static_cast<i32>(sum);
}

/// Mixed-operand dot product (pv.mldot*/pv.mlsdot*): rs1 carries 32/WA
/// activations of WA bits; rs2 packs the same 32/WA weights of WB bits in
/// its low (32/WA)*WB bits (upper bits ignored, matching the hardware's
/// lane-aligned weight feed). Same mod-2^32 accumulate as dotp_lanes.
template <unsigned WA, unsigned WB>
inline i32 dotp_lanes_mixed(u32 a, u32 b, u32 sum, bool sa, bool sb) {
  for (unsigned i = 0; i < 32 / WA; ++i) {
    const u32 ra = (a >> (i * WA)) & low_mask(WA);
    const u32 rb = (b >> (i * WB)) & low_mask(WB);
    const u32 ea = sa ? static_cast<u32>(sign_extend(ra, WA)) : ra;
    const u32 eb = sb ? static_cast<u32>(sign_extend(rb, WB)) : rb;
    sum += ea * eb;
  }
  return static_cast<i32>(sum);
}

/// Runtime-selector dispatch over the three mpc configurations
/// (0: 8x4, 1: 8x2, 2: 4x2). The caller must have rejected sel == 3.
inline i32 dotp_lanes_mixed_sel(u32 sel, u32 a, u32 b, u32 sum, bool sa,
                                bool sb) {
  switch (sel) {
    case 0: return dotp_lanes_mixed<8, 4>(a, b, sum, sa, sb);
    case 1: return dotp_lanes_mixed<8, 2>(a, b, sum, sa, sb);
    default: return dotp_lanes_mixed<4, 2>(a, b, sum, sa, sb);
  }
}

}  // namespace xpulp::sim
