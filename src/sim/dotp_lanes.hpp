// Decode-specialized dot-product kernel shared by the fast interpreter path
// (core.cpp) and the superblock fused loop (superblock.cpp). With the lane
// width a template parameter the loop fully unrolls (and vectorizes for the
// sub-byte formats); DotpUnit::dotp_reference keeps both width and count as
// runtime values and pays a function call plus bit-slicing per lane.
//
// Bit-identical to dotp_reference: that routine widens to 64 bits and
// truncates the final sum to 32, which equals mod-2^32 (u32 wraparound)
// multiply-accumulate — so everything stays in 32-bit registers here.
#pragma once

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace xpulp::sim {

template <unsigned W, bool ScalarRep>
inline i32 dotp_lanes(u32 a, u32 b, u32 sum, bool sa, bool sb) {
  if constexpr (ScalarRep) {
    b = (b & low_mask(W)) * (~0u / low_mask(W));  // replicate over all lanes
  }
  for (unsigned i = 0; i < 32 / W; ++i) {
    const u32 ra = (a >> (i * W)) & low_mask(W);
    const u32 rb = (b >> (i * W)) & low_mask(W);
    const u32 ea = sa ? static_cast<u32>(sign_extend(ra, W)) : ra;
    const u32 eb = sb ? static_cast<u32>(sign_extend(rb, W)) : rb;
    sum += ea * eb;
  }
  return static_cast<i32>(sum);
}

}  // namespace xpulp::sim
