#include "sim/quant_unit.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace xpulp::sim {

u32 QuantUnit::quantize_one(const mem::Memory& mem, addr_t tree, i16 x,
                            unsigned q_bits) {
  assert(q_bits == 4 || q_bits == 2);
  // Eytzinger walk: node k has children 2k+1 / 2k+2; going right means
  // "x is >= threshold", contributing a 1 bit (Fig. 2 of the paper).
  u32 idx = 0;
  u32 code = 0;
  for (unsigned level = 0; level < q_bits; ++level) {
    const i16 t = static_cast<i16>(mem.load_u16(tree + idx * 2));
    const u32 b = (x >= t) ? 1u : 0u;
    code = (code << 1) | b;
    idx = 2 * idx + 1 + b;
  }
  return code;
}

QuantResult QuantUnit::execute(mem::Memory& mem, u32 rs1, addr_t rs2,
                               unsigned q_bits) {
  assert(q_bits == 4 || q_bits == 2);
  const i16 act0 = static_cast<i16>(rs1 & 0xffffu);
  const i16 act1 = static_cast<i16>(rs1 >> 16);
  const addr_t tree0 = rs2;
  const addr_t tree1 = rs2 + tree_stride_bytes(q_bits);

  QuantResult res{};
  // Functional result.
  const u32 q0 = quantize_one(mem, tree0, act0, q_bits);
  const u32 q1 = quantize_one(mem, tree1, act1, q_bits);
  res.rd = (q1 << 16) | q0;

  // Timing: init cycle to fetch the first threshold, then the two
  // activations' compare/address-update phases interleave through the
  // pipelined unit — 2 cycles per level (paper: 9 cycles nibble, 5 crumb).
  res.cycles = 1 + 2 * q_bits;
  res.mem_loads = 2 * q_bits;

  // Account the threshold fetches on the memory port; misaligned trees add
  // stall cycles exactly like LSU accesses. Those are memory stalls, kept
  // separate from the unit's fixed latency so the core can attribute each
  // to its own stall cause.
  u32 idx0 = 0, idx1 = 0;
  for (unsigned level = 0; level < q_bits; ++level) {
    res.mem_stalls += mem.access_cycles(tree0 + idx0 * 2, 2, /*is_store=*/false);
    res.mem_stalls += mem.access_cycles(tree1 + idx1 * 2, 2, /*is_store=*/false);
    const u32 b0 = (act0 >= static_cast<i16>(mem.load_u16(tree0 + idx0 * 2))) ? 1u : 0u;
    const u32 b1 = (act1 >= static_cast<i16>(mem.load_u16(tree1 + idx1 * 2))) ? 1u : 0u;
    idx0 = 2 * idx0 + 1 + b0;
    idx1 = 2 * idx1 + 1 + b1;
  }
  return res;
}

}  // namespace xpulp::sim
