// Hardware quantization unit (paper §III-B2, Fig. 4).
//
// `pv.qnt.{n,c} rD, rs1, (rs2)` quantizes the two 16-bit pre-activations
// packed in rs1 through a thresholding-based staircase function. Thresholds
// are pre-trained, stored in memory as a breadth-first (Eytzinger) balanced
// binary tree of 2^Q - 1 int16 values padded to 2^Q slots; the tree for the
// second activation sits at a hard-wired fixed offset (one tree stride) past
// rs2. The unit walks Q levels, one 16-bit comparison per level, pipelining
// the compare and address-update phases of the two activations in an
// interleaved fashion. Latency: 1 init cycle + 2*Q compare cycles = 9 cycles
// for nibble, 5 for crumb, matching the paper; the core pipeline stalls for
// the duration. The only extra memory stalls come from misaligned trees.
#pragma once

#include "common/types.hpp"
#include "mem/memory.hpp"

namespace xpulp::sim {

struct QuantResult {
  u32 rd;            // quantized codes: bits [Q-1:0] and [16+Q-1:16]
  /// Architectural unit latency: 1 init + 2*Q compare cycles (9 for
  /// nibble, 5 for crumb — the paper's figures). Excludes memory stalls.
  unsigned cycles;
  /// Extra stall cycles from the threshold fetches (misaligned trees,
  /// injected contention). The core charges these to mem_stall_cycles, not
  /// qnt_stall_cycles, so the per-cause stall partition matches the
  /// paper's fixed 9/5-cycle unit latency.
  unsigned mem_stalls;
  unsigned mem_loads;
};

class QuantUnit {
 public:
  /// Tree stride in bytes for a Q-bit output: 2^Q int16 slots.
  static constexpr u32 tree_stride_bytes(unsigned q_bits) {
    return (1u << q_bits) * 2;
  }

  /// Execute pv.qnt for `q_bits` in {4, 2}. `rs1` holds act0 in [15:0] and
  /// act1 in [31:16] (each a signed 16-bit value); `rs2` is the address of
  /// act0's threshold tree.
  QuantResult execute(mem::Memory& mem, u32 rs1, addr_t rs2, unsigned q_bits);

  /// Reference staircase used by tests and by the golden QNN layers:
  /// the quantized code is the number of sorted thresholds <= x.
  /// `tree` points to the Eytzinger-ordered threshold array.
  static u32 quantize_one(const mem::Memory& mem, addr_t tree, i16 x,
                          unsigned q_bits);
};

}  // namespace xpulp::sim
