// Cycle-approximate model of the RI5CY core with the XpulpV2 and XpulpNN
// extensions. Two configurations reproduce the paper's platforms:
//   - baseline RI5CY: CoreConfig::ri5cy()       (XpulpV2, no sub-byte SIMD)
//   - extended core:  CoreConfig::extended()    (XpulpV2 + XpulpNN)
// The `clock_gating` knob models the power-management design of §III-B
// (input operand registers + clock gating in the dot-product unit, operand
// isolation in the quantization unit); it changes the activity statistics
// consumed by the power model, not functional behaviour or cycle counts.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/dotp_unit.hpp"
#include "sim/quant_unit.hpp"
#include "sim/timing.hpp"

namespace xpulp::sim {

struct SuperblockPlan;  // sim/superblock.hpp (host-side compiled blocks)

/// Default of CoreConfig::superblock: false, flipped by the environment
/// variable XPULP_SUPERBLOCK=1 so CI can rerun whole suites with the
/// superblock engine active without threading a flag through every driver.
bool superblock_default();

struct CoreConfig {
  bool xpulpv2 = true;    // hardware loops, post-inc LSU, 8/16-bit SIMD, MAC
  bool xpulpnn = true;    // nibble/crumb SIMD + pv.qnt
  bool hwloops = true;    // can be disabled separately for ablations
  bool clock_gating = true;
  /// Use the legacy switch-on-mnemonic interpreter instead of the
  /// predecoded handler-table fast path. Functionally and cycle-wise
  /// identical (enforced by the differential dispatch test); kept as the
  /// reference implementation and as the baseline of the host-throughput
  /// bench.
  bool reference_dispatch = false;
  /// Trace-compiled superblock execution of hot loop bodies on top of the
  /// fast path (DESIGN.md §12): bit-identical state and PerfCounters,
  /// enforced by the three-way differential dispatch test. Requires the
  /// fast dispatch path and clock gating (the ungated operand-broadcast
  /// model is inherently per-instruction); the engine simply stays cold
  /// when either is off.
  bool superblock = superblock_default();
  std::string name = "xpulpnn";

  static CoreConfig extended() { return CoreConfig{}; }

  static CoreConfig ri5cy() {
    CoreConfig c;
    c.xpulpnn = false;
    c.name = "ri5cy";
    return c;
  }
};

struct PerfCounters {
  cycles_t cycles = 0;
  u64 instructions = 0;

  u64 taken_branches = 0;
  u64 not_taken_branches = 0;
  u64 jumps = 0;
  u64 branch_stall_cycles = 0;
  u64 load_use_stall_cycles = 0;
  u64 mem_stall_cycles = 0;
  u64 mul_div_stall_cycles = 0;
  u64 hwloop_backedges = 0;

  u64 loads = 0;
  u64 stores = 0;
  u64 scalar_alu_ops = 0;
  u64 mul_ops = 0;
  u64 div_ops = 0;
  u64 simd_alu_ops = 0;
  u64 qnt_ops = 0;
  u64 qnt_stall_cycles = 0;
  u64 csr_ops = 0;
  /// fence / ecall / ebreak retires.
  u64 sys_ops = 0;
  /// p.mac / p.msu retires. These also count in both mul_ops (they use the
  /// multiplier) and scalar_alu_ops (they retire through the scalar ALU
  /// path), so class sums subtract mac_ops once to avoid double counting.
  u64 mac_ops = 0;

  /// Dot-product ops by multiplier region {16, 8, 4, 2}-bit.
  std::array<u64, 4> dotp_ops{};

  /// Mixed virtual dot products by mpc selector {8x4, 8x2, 4x2}.
  /// Reporting breakdown only: each mixed op also counts in dotp_ops of
  /// the region its wide operand drives, which is what perf_class_ops and
  /// the cycle invariants consume.
  std::array<u64, 3> mixed_dotp_ops{};

  /// Hamming toggles of successive load data words on the LSU result bus.
  /// The quantization unit's comparators hang off this bus; with operand
  /// isolation disabled (no power management) they switch with every load.
  u64 lsu_data_toggles = 0;
};

/// Sum of the per-cause stall counters.
inline u64 perf_stall_cycles(const PerfCounters& p) {
  return p.branch_stall_cycles + p.load_use_stall_cycles +
         p.mem_stall_cycles + p.mul_div_stall_cycles + p.qnt_stall_cycles;
}

/// Sum of the instruction-class counters. Every retired instruction
/// increments exactly one of these (p.mac/p.msu count in both mul_ops and
/// scalar_alu_ops, hence the mac_ops correction).
inline u64 perf_class_ops(const PerfCounters& p) {
  u64 dotp = 0;
  for (u64 d : p.dotp_ops) dotp += d;
  return p.taken_branches + p.not_taken_branches + p.jumps + p.loads +
         p.stores + p.scalar_alu_ops + (p.mul_ops - p.mac_ops) + p.div_ops +
         p.simd_alu_ops + dotp + p.qnt_ops + p.csr_ops + p.sys_ops;
}

/// Accounting self-check for a run that ended cleanly (no mid-instruction
/// fault): every cycle is either an instruction's base cycle or attributed
/// to exactly one stall cause, and every instruction to exactly one class.
/// Returns an empty string when the invariants hold, else a diagnostic.
std::string perf_invariant_violation(const PerfCounters& p);

/// Coverage/fallback counters of the superblock engine (host-side only,
/// not part of CoreState). `fused_instructions / perf.instructions` is the
/// hit rate; the bail counters attribute every fallback to its cause.
struct SuperblockStats {
  u64 blocks_compiled = 0;
  u64 compile_rejects = 0;   // regions that failed static eligibility
  u64 entries = 0;           // fused bursts entered
  u64 entry_rejects = 0;     // guard failures at entry (interpreter ran)
  u64 fused_iterations = 0;  // whole loop iterations retired fused
  u64 fused_instructions = 0;
  u64 smc_bails = 0;   // self-modifying store hit the live block
  u64 trap_bails = 0;  // memory fault repaired to an exact boundary
  u64 invalidations = 0;  // plans evicted by stores / cache flushes
  /// Plans evicted because a write to the mpc CSR changed the selector
  /// their fused mixed dot ops had baked in (demote-and-recompile, never
  /// silently misfuse).
  u64 mpc_evictions = 0;
  /// Bursts repaired to an exact instruction boundary because the cycle
  /// counter crossed a sampling deadline mid-burst (xtel). Uses the same
  /// prefix-delta repair tables as smc_bails, so the surfaced counters are
  /// bit-identical to the interpreter's at that boundary.
  u64 sample_flushes = 0;
  /// Bursts repaired to an exact instruction boundary because the cycle
  /// counter reached a cluster burst horizon (run_burst). Same repair
  /// mechanism as sample_flushes; counted separately so burst-scheduling
  /// stats don't pollute telemetry flush counts.
  u64 burst_flushes = 0;
};

enum class HaltReason { kRunning, kEcall, kEbreak, kInstrLimit };

/// One data access recorded for deferred arbitration (cluster burst
/// scheduling): the exact coordinates the access hook would have observed —
/// the issuing instruction's pc and start cycle (the event-driven
/// scheduler's pick key) and the access's own cycle — all in the core's
/// pre-merge local clock, plus the access itself.
/// The access cycle is stored as its offset from `start` — the reference
/// charges arbiter stalls at the issuing instruction's end, so an access
/// never issues more than one instruction's own latency past its start
/// (hazards plus handler-internal charges, far below 2^16). Keeping the
/// record at 24 bytes matters: burst logs are written and re-read by the
/// millions, and their cache footprint is the dominant host cost of the
/// cluster burst scheduler.
struct BurstAccess {
  cycles_t start;
  addr_t pc;
  addr_t addr;
  u16 cycle_delta;
  u8 size;
  u8 is_store;
};

/// Complete architectural + accounting state of a Core at an instruction
/// boundary: everything needed to resume execution bit-identically (checked
/// by the differential snapshot tests on both dispatch paths). The decode
/// cache is deliberately absent — it is a host-side optimization that is
/// rebuilt on demand and must be invalidated whenever memory is restored
/// underneath the core.
struct CoreState {
  std::array<u32, 32> regs{};
  addr_t pc = 0;
  std::array<addr_t, 2> hwl_start{};
  std::array<addr_t, 2> hwl_end{};
  std::array<u32, 2> hwl_count{};
  u8 last_load_rd = 0;
  u32 last_load_data = 0;
  HaltReason halt = HaltReason::kRunning;
  u32 mscratch = 0;
  /// Precision-status CSR (mpc, 0x7C1): operand-format selector of the
  /// mixed virtual dot products. WARL, low two bits.
  u32 mpc = 0;
  PerfCounters perf;
  DotpState dotp;
};

class Core {
 public:
  Core(mem::Memory& mem, CoreConfig cfg = CoreConfig::extended());
  ~Core();  // out of line: SuperblockPlan is incomplete here

  /// Reset architectural state and start executing at `pc`. Clears the
  /// decode cache (call after loading a new program image). When
  /// `code_end` (one past the last code byte) is nonzero the decode cache
  /// is pre-sized to cover [0, code_end) so the hot loop never resizes.
  void reset(addr_t pc, addr_t code_end = 0);

  u32 reg(unsigned r) const { return regs_[r & 31]; }
  void set_reg(unsigned r, u32 v) {
    if ((r & 31) != 0) regs_[r & 31] = v;
  }

  addr_t pc() const { return pc_; }
  bool halted() const { return halt_ != HaltReason::kRunning; }
  HaltReason halt_reason() const { return halt_; }

  /// Execute one instruction. Returns false once halted.
  bool step();

  /// Run until ecall/ebreak or the instruction limit; returns the reason.
  HaltReason run(u64 max_instructions = 400'000'000);

  /// Execute up to `n` instructions (stopping early on halt) and return
  /// how many retired. Unlike run(), reaching `n` does not set the
  /// kInstrLimit halt reason — the core pauses at an exact instruction
  /// boundary, which is what checkpoint tooling needs to position
  /// snapshots at precise indices while the superblock engine is active
  /// (a fused burst never overshoots the remaining budget).
  u64 run_steps(u64 n);

  /// Execute until the first instruction boundary whose cycle count is at
  /// or past `horizon` (the final instruction may overshoot by its own
  /// latency), the core halts, or `max_instructions` retired; returns how
  /// many retired. Runs at full dispatch speed — fast path plus superblock
  /// bursts, which honor the horizon through the same due-threshold
  /// mechanism as the sampler (SuperblockStats::burst_flushes) — so the
  /// cluster burst scheduler can drain a core to a cycle horizon without
  /// dropping to per-instruction stepping. Never sets kInstrLimit.
  u64 run_burst(cycles_t horizon, u64 max_instructions);

  const PerfCounters& perf() const { return perf_; }
  void reset_perf() { perf_ = PerfCounters{}; }

  const CoreConfig& config() const { return cfg_; }
  mem::Memory& memory() { return mem_; }
  DotpUnit& dotp_unit() { return dotp_; }
  const DotpUnit& dotp_unit() const { return dotp_; }
  const TimingModel& timing() const { return timing_; }

  /// Optional per-instruction trace hook (pc, decoded instruction), invoked
  /// at the start of each instruction, before its stalls and effects are
  /// charged. Return true to stay attached; returning false detaches the
  /// hook after the call returns (the traced run loop then drops back to
  /// the zero-overhead untraced loop). Never reassign the hook from inside
  /// the callback — the core owns that transition.
  using TraceFn = std::function<bool(addr_t, const isa::Instr&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  bool has_trace() const { return static_cast<bool>(trace_); }

  /// Optional telemetry sampling hook (obs::Sampler): invoked at the first
  /// instruction boundary where the cycle counter has reached the next
  /// multiple of `interval_cycles`, on every dispatch path — reference,
  /// fast, and superblock bursts (which repair to the exact boundary, see
  /// SuperblockStats::sample_flushes) — so all three produce identical
  /// sample series. Unlike the trace hook it does not keep the superblock
  /// engine cold. Detached cost contract: run() dispatches to a loop
  /// without the deadline compare, so no-sampler runs are bit-identical in
  /// host cost to a build without the hook (guarded by
  /// bench_sim_throughput --guard-sampler). Attach/detach only at an
  /// instruction boundary outside run().
  using SampleFn = std::function<void()>;
  void set_sampler(SampleFn fn, cycles_t interval_cycles);
  bool has_sampler() const { return static_cast<bool>(sampler_); }
  cycles_t sample_interval() const { return sample_interval_; }
  /// First instruction boundary cycle at which the sampler will fire next
  /// (~0 when no sampler is attached). The cluster burst scheduler bounds
  /// burst horizons away from this so samples fire on the exact reference
  /// boundary.
  cycles_t next_sample_due() const { return sample_due_; }

  /// Exact reference-interleaving coordinates of the data access currently
  /// flowing through the memory access hook: the pc of the accessing
  /// instruction, the cycle at which that instruction started (the
  /// event-driven scheduler's pick key), and the cycle at which the access
  /// reaches the interconnect. Valid only from inside an access hook. On
  /// the interpreter paths these are live core state; inside a fused
  /// superblock burst they come from a per-op latch that folds in the
  /// batched static cycle deltas, so the values are bit-identical to what
  /// the interpreter would have reported for the same access.
  addr_t access_pc() const { return sb_active_ != nullptr ? hook_pc_ : pc_; }
  cycles_t access_start() const {
    return sb_active_ != nullptr ? hook_start_ : step_start_;
  }
  cycles_t access_cycle() const {
    return sb_active_ != nullptr ? hook_cycle_ : perf_.cycles;
  }

  /// Deferred-arbitration support (cluster burst scheduling): charge `n`
  /// interconnect stall cycles exactly as an access hook returning them at
  /// access time would have (cycles + mem_stall_cycles; the shared
  /// MemStats side is Memory::add_contention_stalls). Only valid at an
  /// instruction boundary.
  void charge_deferred_stalls(u64 n) {
    perf_.cycles += n;
    perf_.mem_stall_cycles += n;
  }

  /// Direct-log sink for deferred arbitration: while set, the superblock
  /// slim path appends each aligned in-bounds data access here — with the
  /// same exact coordinates the hook latches would report — instead of
  /// routing it through the memory access hook, and treats the hook as
  /// stall-free for its per-iteration dynamic bound. Only meaningful when
  /// the installed access hook itself logs-and-returns-zero (the cluster's
  /// burst phase); accesses outside the slim fast path (interpreter steps,
  /// misaligned, handler-internal) still flow through that hook, appending
  /// to the same vector in program order.
  void set_burst_sink(std::vector<BurstAccess>* sink) { burst_sink_ = sink; }

  /// Optional pre-run gate: invoked by reset(pc, code_end) with the loaded
  /// memory and the code extent [pc, code_end) whenever code_end is
  /// nonzero, *before* any instruction executes. The static analyzer
  /// (analysis::make_pre_run_gate) installs itself here; a gate vetoes the
  /// run by throwing.
  using PreRunGate =
      std::function<void(const mem::Memory&, addr_t entry, addr_t code_end)>;
  void set_pre_run_gate(PreRunGate g) { pre_run_gate_ = std::move(g); }

  /// Switch between the handler-table fast path and the legacy reference
  /// switch interpreter at runtime (differential tests flip this).
  void set_reference_dispatch(bool on) { ref_dispatch_ = on; }
  bool reference_dispatch() const { return ref_dispatch_; }

  /// Enable/disable superblock execution at runtime (differential tests
  /// and benches flip this like set_reference_dispatch). Compiled plans
  /// are kept — disabling only stops new bursts from being entered.
  void set_superblock(bool on);
  bool superblock_enabled() const { return cfg_.superblock; }

  const SuperblockStats& superblock_stats() const { return sb_stats_; }
  void reset_superblock_stats() { sb_stats_ = SuperblockStats{}; }

  // ---- Snapshot/restore (src/ckpt) ----

  /// Capture the full architectural + accounting state. Only meaningful at
  /// an instruction boundary (between step() calls / after run() returns).
  CoreState save_state() const;

  /// Restore a previously captured state. Does not touch the decode cache:
  /// call invalidate_decode_cache() as well whenever the backing memory
  /// was restored or mutated from the host side.
  void restore_state(const CoreState& s);

  /// Drop every cached decode (host-side corruption of instruction memory,
  /// memory restore). Bumps the decode generation.
  void invalidate_decode_cache();

  /// Number of whole-cache invalidations (reset/restore/host pokes) this
  /// core has seen — diagnostic for checkpoint/fault reports.
  u64 decode_generation() const { return decode_gen_; }

  /// Degrade (or re-enable) ISA tiers at run time — the fault-injection
  /// model of a failing XpulpNN/XpulpV2 functional unit, and the hook the
  /// recovery path uses to fall back to a lower-tier kernel. Takes effect
  /// from the next executed instruction on both dispatch paths.
  void set_isa_features(bool xpulpv2, bool xpulpnn, bool hwloops);

 private:
  const isa::Instr& fetch_decode(addr_t pc);

  /// Fast-path fetch: the decode-cache hit test inlines into step_fast();
  /// only misses go through the out-of-line fetch_decode(). The reference
  /// path keeps calling fetch_decode() directly, preserving the pre-PR
  /// per-step call.
  const isa::Instr& fetch_decode_fast(addr_t pc) {
    const u32 idx = pc >> 1;
    if (idx < icache_valid_.size() && icache_valid_[idx]) [[likely]] {
      return icache_[idx];
    }
    return fetch_decode(pc);
  }

  /// Fast path: one instruction via the predecoded handler table, reading
  /// the packed Instr flags. `Traced` is a compile-time knob so untraced
  /// runs pay zero trace overhead.
  template <bool Traced>
  bool step_fast();
  /// `Sampled` compiles the sampling-deadline compare into the loop; the
  /// no-sampler instantiation is byte-identical to the pre-xtel loop.
  template <bool Traced, bool Sampled>
  HaltReason run_fast(u64 max_instructions);

  /// Advance the sampling deadline past the current cycle count, then
  /// invoke the hook. Out of line: the run loops only pay the compare.
  void sample_fire();

  /// Reference path: the pre-optimization interpreter, byte-for-byte —
  /// mnemonic switch dispatch plus per-step isa:: predicate calls.
  bool step_reference();
  void execute_reference(const isa::Instr& in);

  /// Hardware-loop back-edge check after a fall-through instruction ending
  /// at `after`; shared by both step paths.
  void hwloop_backedge(addr_t after);

  // Execution helpers (defined in core.cpp). The semantic bodies are
  // shared between the reference switch and the handler table, so both
  // dispatch modes run identical semantics/timing; only classification
  // work differs (decode-time for the fast path, per-step for reference).
  void exec_lui(const isa::Instr& in);
  void exec_auipc(const isa::Instr& in);
  void alu_body(const isa::Instr& in, u32 b);
  void exec_alu(const isa::Instr& in);      // reference: imm-vs-reg chain
  void exec_alu_imm(const isa::Instr& in);  // fast: class-resolved
  void exec_alu_reg(const isa::Instr& in);
  void mem_body(const isa::Instr& in, unsigned size, bool store, bool sext);
  void exec_mem(const isa::Instr& in);            // fast: packed flags
  void exec_mem_reference(const isa::Instr& in);  // reference: isa:: calls
  void exec_branch_jump(const isa::Instr& in);
  void exec_muldiv(const isa::Instr& in);
  void exec_pulp_scalar(const isa::Instr& in);
  void exec_hwloop(const isa::Instr& in);
  void exec_simd(const isa::Instr& in);  // reference: predicate chain
  void exec_simd_alu(const isa::Instr& in);
  void exec_simd_dotp(const isa::Instr& in);
  void exec_simd_dotp_fast(const isa::Instr& in);  // decode-specialized lanes
  void exec_simd_elem(const isa::Instr& in);
  void exec_simd_qnt(const isa::Instr& in);
  void exec_csr_system(const isa::Instr& in);
  void exec_fence(const isa::Instr& in);
  void exec_ecall(const isa::Instr& in);
  void exec_ebreak(const isa::Instr& in);
  void exec_illegal(const isa::Instr& in);

  using ExecFn = void (Core::*)(const isa::Instr&);
  static const std::array<ExecFn,
                          static_cast<size_t>(isa::ExecClass::kCount)>
      kExecTable;

  u32 csr_read(u32 addr) const;

  void require(bool cond, const isa::Instr& in);

  /// Decode-cache coherence: drop cached decodes covering a stored-to
  /// range (self-modifying code support). Also evicts (or dirties, when
  /// live) overlapping superblock plans — one invalidation path for both
  /// caches.
  void icache_invalidate(addr_t a, unsigned size);

  // ---- Superblock engine (sim/superblock.cpp) ----

  /// Compile-if-needed and run a fused burst at `start` with at most
  /// `budget` instructions; returns how many retired (0 = fall back to
  /// the interpreter). `branch_pc` is nonzero for backward-branch
  /// candidates (the recorded backedge), zero for hardware-loop ones.
  u64 superblock_enter(addr_t start, addr_t branch_pc, u64 budget);
  SuperblockPlan* sb_find(addr_t start);
  SuperblockPlan* sb_compile(addr_t start, addr_t branch_pc);
  u64 sb_execute(SuperblockPlan& plan, u64 budget);
  /// `Sampled` arms per-iteration/per-op sampling-deadline checks that
  /// repair the burst to an exact boundary via the plan's prefix tables.
  template <bool Sampled>
  u64 sb_execute_impl(SuperblockPlan& plan, u64 budget);
  void sb_exit(SuperblockPlan& plan);
  /// Heat counter for taken backward conditional branches; promotes the
  /// target to a superblock candidate past the threshold.
  void sb_note_backedge(addr_t branch_pc, addr_t target);
  void sb_invalidate_range(addr_t a, unsigned size);
  void sb_recompute_extent();
  /// Evict plans whose fused mixed dot ops baked a now-stale mpc selector
  /// (called on every value-changing mpc write).
  void sb_evict_mixed_plans();
  /// Drop every plan, reject record, heat entry and pending candidate
  /// (reset, decode-cache flush, ISA feature change).
  void sb_clear();

  void update_hwl_active() {
    hwl_active_ = hwl_count_[0] != 0 || hwl_count_[1] != 0;
  }

  mem::Memory& mem_;
  CoreConfig cfg_;
  TimingModel timing_;
  DotpUnit dotp_;
  QuantUnit qnt_;

  std::array<u32, 32> regs_{};
  addr_t pc_ = 0;
  addr_t next_pc_ = 0;
  bool redirect_ = false;  // set by taken branches/jumps during execute()

  // Hardware loop register file: two nested loops, L0 innermost.
  std::array<addr_t, 2> hwl_start_{};
  std::array<addr_t, 2> hwl_end_{};
  std::array<u32, 2> hwl_count_{};

  u8 last_load_rd_ = 0;  // destination of the previous load (0 = none)
  u32 last_load_data_ = 0;
  HaltReason halt_ = HaltReason::kRunning;
  u32 mscratch_ = 0;
  /// Precision-status CSR (mpc, 0x7C1). Writes evict superblock plans
  /// that baked the old selector into their fused dot ops.
  u32 mpc_ = 0;

  /// True while either hardware loop has a nonzero count, so the fast
  /// step skips the back-edge comparison entirely outside loops.
  bool hwl_active_ = false;

  bool ref_dispatch_ = false;
  /// iflag:: feature bits *not* provided by this config; decoded flags
  /// ANDed against it replace the per-step require() chains.
  u16 feature_guard_ = 0;

  PerfCounters perf_;
  TraceFn trace_;
  PreRunGate pre_run_gate_;

  /// Sampling hook state. kNoSampleDue makes the `cycles >= sample_due_`
  /// deadline compare unreachable when no sampler is attached (the cycle
  /// counter cannot reach ~0), so runtime-checked paths (step(), the
  /// reference loop) need no second branch on sampler_.
  static constexpr cycles_t kNoSampleDue = ~cycles_t{0};
  SampleFn sampler_;
  cycles_t sample_interval_ = 0;
  cycles_t sample_due_ = kNoSampleDue;

  /// Cluster burst horizon, set only while run_burst() is live. Fused
  /// superblock bursts treat min(sample_due_, burst_due_) as the effective
  /// deadline, so both repair to exact boundaries through one mechanism.
  cycles_t burst_due_ = kNoSampleDue;

  std::vector<BurstAccess>* burst_sink_ = nullptr;
  /// Access-coordinate latches (see access_pc/access_start/access_cycle).
  /// step_start_ is written once per interpreted instruction; the hook_*
  /// trio only inside fused superblock bursts, per op that can reach the
  /// access hook.
  cycles_t step_start_ = 0;
  addr_t hook_pc_ = 0;
  cycles_t hook_start_ = 0;
  cycles_t hook_cycle_ = 0;

  // Direct-mapped decode cache indexed by pc >> 1.
  std::vector<isa::Instr> icache_;
  std::vector<u8> icache_valid_;
  u64 decode_gen_ = 0;

  // ---- Superblock engine state (host-side, never serialized) ----
  static constexpr addr_t kNoSbCandidate = ~addr_t{0};
  static constexpr unsigned kSbHeatSize = 64;  // direct-mapped, power of 2
  static constexpr unsigned kSbHeatThreshold = 16;
  static constexpr size_t kSbMaxOps = 128;

  struct SbHeatEntry {
    addr_t pc = 0;
    u16 count = 0;
  };

  /// Block start the run loop should try to fuse at the next instruction
  /// boundary (set by hwloop setup/backedges and hot backward branches).
  addr_t sb_candidate_ = kNoSbCandidate;
  addr_t sb_candidate_branch_ = 0;  // backedge pc for branch candidates
  std::vector<std::unique_ptr<SuperblockPlan>> sb_plans_;
  /// Regions that failed static eligibility, so hot-but-uncompilable
  /// loops don't re-walk the block on every backedge. Range-keyed: a
  /// store into the region clears the record (the patched code may now
  /// compile).
  std::vector<std::pair<addr_t, addr_t>> sb_rejects_;
  addr_t sb_lo_ = 0, sb_hi_ = 0;  // union extent of plans (store filter)
  SuperblockPlan* sb_active_ = nullptr;  // plan a burst is executing now
  bool sb_active_dirty_ = false;  // live plan was stored into (SMC bail)
  std::array<SbHeatEntry, kSbHeatSize> sb_heat_{};
  SuperblockStats sb_stats_;
};

}  // namespace xpulp::sim
