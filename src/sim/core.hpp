// Cycle-approximate model of the RI5CY core with the XpulpV2 and XpulpNN
// extensions. Two configurations reproduce the paper's platforms:
//   - baseline RI5CY: CoreConfig::ri5cy()       (XpulpV2, no sub-byte SIMD)
//   - extended core:  CoreConfig::extended()    (XpulpV2 + XpulpNN)
// The `clock_gating` knob models the power-management design of §III-B
// (input operand registers + clock gating in the dot-product unit, operand
// isolation in the quantization unit); it changes the activity statistics
// consumed by the power model, not functional behaviour or cycle counts.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/dotp_unit.hpp"
#include "sim/quant_unit.hpp"
#include "sim/timing.hpp"

namespace xpulp::sim {

struct CoreConfig {
  bool xpulpv2 = true;    // hardware loops, post-inc LSU, 8/16-bit SIMD, MAC
  bool xpulpnn = true;    // nibble/crumb SIMD + pv.qnt
  bool hwloops = true;    // can be disabled separately for ablations
  bool clock_gating = true;
  std::string name = "xpulpnn";

  static CoreConfig extended() { return CoreConfig{}; }

  static CoreConfig ri5cy() {
    CoreConfig c;
    c.xpulpnn = false;
    c.name = "ri5cy";
    return c;
  }
};

struct PerfCounters {
  cycles_t cycles = 0;
  u64 instructions = 0;

  u64 taken_branches = 0;
  u64 not_taken_branches = 0;
  u64 jumps = 0;
  u64 branch_stall_cycles = 0;
  u64 load_use_stall_cycles = 0;
  u64 mem_stall_cycles = 0;
  u64 mul_div_stall_cycles = 0;
  u64 hwloop_backedges = 0;

  u64 loads = 0;
  u64 stores = 0;
  u64 scalar_alu_ops = 0;
  u64 mul_ops = 0;
  u64 div_ops = 0;
  u64 simd_alu_ops = 0;
  u64 qnt_ops = 0;
  u64 qnt_stall_cycles = 0;
  u64 csr_ops = 0;

  /// Dot-product ops by multiplier region {16, 8, 4, 2}-bit.
  std::array<u64, 4> dotp_ops{};

  /// Hamming toggles of successive load data words on the LSU result bus.
  /// The quantization unit's comparators hang off this bus; with operand
  /// isolation disabled (no power management) they switch with every load.
  u64 lsu_data_toggles = 0;
};

enum class HaltReason { kRunning, kEcall, kEbreak, kInstrLimit };

class Core {
 public:
  Core(mem::Memory& mem, CoreConfig cfg = CoreConfig::extended());

  /// Reset architectural state and start executing at `pc`. Clears the
  /// decode cache (call after loading a new program image).
  void reset(addr_t pc);

  u32 reg(unsigned r) const { return regs_[r & 31]; }
  void set_reg(unsigned r, u32 v) {
    if ((r & 31) != 0) regs_[r & 31] = v;
  }

  addr_t pc() const { return pc_; }
  bool halted() const { return halt_ != HaltReason::kRunning; }
  HaltReason halt_reason() const { return halt_; }

  /// Execute one instruction. Returns false once halted.
  bool step();

  /// Run until ecall/ebreak or the instruction limit; returns the reason.
  HaltReason run(u64 max_instructions = 400'000'000);

  const PerfCounters& perf() const { return perf_; }
  void reset_perf() { perf_ = PerfCounters{}; }

  const CoreConfig& config() const { return cfg_; }
  mem::Memory& memory() { return mem_; }
  DotpUnit& dotp_unit() { return dotp_; }
  const DotpUnit& dotp_unit() const { return dotp_; }
  const TimingModel& timing() const { return timing_; }

  /// Optional per-instruction trace hook (pc, decoded instruction).
  using TraceFn = std::function<void(addr_t, const isa::Instr&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  const isa::Instr& fetch_decode(addr_t pc);
  void execute(const isa::Instr& in);

  // Execution helpers (defined in core.cpp).
  void exec_alu(const isa::Instr& in);
  void exec_mem(const isa::Instr& in);
  void exec_branch_jump(const isa::Instr& in);
  void exec_muldiv(const isa::Instr& in);
  void exec_pulp_scalar(const isa::Instr& in);
  void exec_hwloop(const isa::Instr& in);
  void exec_simd(const isa::Instr& in);
  void exec_csr_system(const isa::Instr& in);

  u32 csr_read(u32 addr) const;

  void require(bool cond, const isa::Instr& in);

  mem::Memory& mem_;
  CoreConfig cfg_;
  TimingModel timing_;
  DotpUnit dotp_;
  QuantUnit qnt_;

  std::array<u32, 32> regs_{};
  addr_t pc_ = 0;
  addr_t next_pc_ = 0;
  bool redirect_ = false;  // set by taken branches/jumps during execute()

  // Hardware loop register file: two nested loops, L0 innermost.
  std::array<addr_t, 2> hwl_start_{};
  std::array<addr_t, 2> hwl_end_{};
  std::array<u32, 2> hwl_count_{};

  u8 last_load_rd_ = 0;  // destination of the previous load (0 = none)
  u32 last_load_data_ = 0;
  HaltReason halt_ = HaltReason::kRunning;
  u32 mscratch_ = 0;

  PerfCounters perf_;
  TraceFn trace_;

  // Direct-mapped decode cache indexed by pc >> 1.
  std::vector<isa::Instr> icache_;
  std::vector<u8> icache_valid_;
};

}  // namespace xpulp::sim
