// Trace-compiled superblock execution (DESIGN.md §12).
//
// The fast interpreter still pays per-instruction dispatch, hazard checks
// and counter updates inside the tiny hardware-loop bodies that dominate
// the paper's kernels (2 loads + 4 pv.sdot per MatMul inner iteration). A
// superblock "compiles" such a hot straight-line region into a flat
// SuperblockPlan — decoded operands pinned in a compact op array, one
// fused C++ loop executing whole iterations, and the static part of the
// PerfCounters/MemStats accounting applied as one batched per-iteration
// delta. Dynamic effects (memory stalls, load-data toggles, division
// latency, dot-product activity, self-modifying-store invalidation) stay
// eager so every exit lands on a bit-exact instruction boundary.
//
// Detection, compilation, execution and invalidation live in
// superblock.cpp as Core member functions; this header only defines the
// plan layout so core.hpp can hold the cache by forward declaration.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"

namespace xpulp::sim {

/// How the fused loop executes one op. Fully-inlined kinds batch their
/// class counter in the static per-iteration delta; the remaining kinds
/// call the existing exec helpers, which charge class counters (and any
/// static stalls such as mulh latency) eagerly.
enum class SbKind : u8 {
  kConst,    // lui / auipc: value precomputed at compile time
  kAddImm,   // addi
  kAluImm,   // other immediate ALU ops via alu_body
  kAluReg,   // register ALU ops via alu_body
  kMac,      // p.mac / p.msu
  kMem,      // every load/store addressing mode, flags-driven
  kDotp,     // pv.dotp/sdot families via the dotp_lanes kernel
  kHandler,  // muldiv / pulp-scalar / simd-alu / simd-elem / pv.qnt
  kBranch,   // terminal conditional branch (backward-branch plans only)
};

/// Recognized whole-iteration shapes. kConvInner is the 2x2-blocked
/// MatMul inner body every conv kernel in this repo emits (4 post-inc
/// word loads feeding 4 accumulate-dots over 2 activation x 2 weight
/// words); sb_execute runs it through a hand-fused macro-op handler that
/// expands each operand word once and computes all four dot products in
/// two SIMD multiply-accumulate steps.
enum class SbShape : u8 {
  kGeneric = 0,
  kConvInner,
};

struct SbOp {
  SbKind kind = SbKind::kHandler;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  /// kMem: access size in bytes. kDotp: multiplier region (DotpRegion
  /// numbering). kMac: 1 for p.msu.
  u8 aux = 0;
  /// Static load-use stall cycles against the previous op in the block
  /// (op[0]'s hazard against the entry context is dynamic, see
  /// SuperblockPlan::wrap_hazard).
  u8 hazard = 0;
  u16 flags = 0;  // iflag:: bits from the decode
  isa::SimdFmt fmt = isa::SimdFmt::kNone;
  isa::ExecClass cls = isa::ExecClass::kIllegal;
  isa::Mnemonic op{};
  /// Immediate operand; kConst: the precomputed result value; kBranch
  /// p.beqimm/p.bneimm: the sign-extended compare immediate.
  i32 imm = 0;
};

/// A compiled superblock: one hot straight-line region plus everything the
/// fused loop needs to retire whole iterations without touching the
/// decoder or the handler table. Host-side state only — never serialized;
/// checkpoints restore into an empty cache and recompile lazily.
struct SuperblockPlan {
  addr_t start = 0;  // first instruction of the block
  addr_t end = 0;    // one past the last code byte (= bail-out boundary)
  bool is_hwloop = true;
  /// Invalidated by a store while the fused loop was executing this plan;
  /// evicted at burst exit (the storage can't be freed mid-burst).
  bool dead = false;

  std::vector<SbOp> ops;           // straight-line body, no control flow
  std::vector<isa::Instr> instrs;  // parallel cold mirror for kHandler ops
  /// ops.size()+1 entries: the pc of each op, then the boundary after the
  /// body (hwloop: the loop end; branch plans: the branch pc).
  std::vector<addr_t> op_pc;
  SbOp branch{};  // branch plans: the terminal conditional branch

  /// prefix[i] = batched static deltas of ops [0, i) — the repair applied
  /// when a memory fault or self-modifying store exits mid-iteration.
  std::vector<PerfCounters> perf_prefix;
  std::vector<mem::MemStats> mem_prefix;
  PerfCounters iter_perf;  // one full iteration (hwloop body / branch taken)
  PerfCounters exit_perf;  // branch plans: final, not-taken iteration
  mem::MemStats iter_mem;

  /// Load-use stall of op[0] against the block's last op — static for
  /// every iteration after the first (the first checks the live
  /// last-load register at entry).
  u8 wrap_hazard = 0;
  /// Multiplier region shared by every kDotp op in the block, 0xff when
  /// none or mixed. A single-region block lets the fused loop keep that
  /// region's operand latches in host registers for the whole burst.
  u8 dotp_region = 0xff;
  /// Whole-iteration specialization selected at compile time.
  SbShape shape = SbShape::kGeneric;
  /// The plan contains mixed dot products (pv.mldot*/pv.mlsdot*) whose
  /// operand formats were baked from the precision-status CSR at compile
  /// time. Any value-changing mpc write evicts such plans; the entry guard
  /// additionally rejects on a live-value mismatch so a stale plan can
  /// never silently misfuse.
  bool uses_mixed = false;
  u8 baked_mpc = 0;
  /// last_load_rd_ after a completed iteration (loads feed the hazard
  /// check of whatever the interpreter executes next).
  u8 exit_last_load_rd = 0;

  /// Upper bound on the *dynamic* cycles one iteration can add in slim
  /// memory mode (no access hook, no contention injector): misaligned
  /// access penalties, divide latency, quantization threshold walks.
  /// Sampled bursts use it to prove an iteration cannot cross the
  /// sampling deadline and skip the per-op boundary checks (an
  /// over-estimate only costs a checked iteration, never a missed
  /// sample).
  u64 max_dyn_iter = 0;
};

}  // namespace xpulp::sim
