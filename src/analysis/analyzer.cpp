#include "analysis/analyzer.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "sim/quant_unit.hpp"

namespace xpulp::analysis {

namespace {

using isa::Mnemonic;
namespace iflag = isa::iflag;

std::string hex(addr_t a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

std::string loop_desc(const HwLoop& l) {
  std::ostringstream os;
  os << "hardware loop L" << l.index << " [" << hex(l.start) << ", "
     << hex(l.end) << ")";
  return os.str();
}

/// Collector with per-kind/address dedup so loops in the image do not
/// flood the report with one copy of the same finding per iteration path.
class Diags {
 public:
  explicit Diags(std::vector<Diagnostic>& out) : out_(out) {}

  void add(DiagKind kind, Severity sev, addr_t addr, std::string msg) {
    for (const Diagnostic& d : out_) {
      if (d.kind == kind && d.addr == addr) return;
    }
    out_.push_back({kind, sev, addr, std::move(msg)});
  }

 private:
  std::vector<Diagnostic>& out_;
};

void check_canonical(const CodeImage& image, Diags& diags) {
  for (const DecodedInstr& d : image.instrs()) {
    if (d.illegal || d.in.size != 4) continue;  // compressed forms re-encode wide
    u32 reencoded = 0;
    bool encodable = true;
    try {
      reencoded = isa::encode(d.in);
    } catch (const AsmError&) {
      encodable = false;
    }
    if (!encodable || reencoded != d.in.raw) {
      std::ostringstream os;
      os << std::string(isa::mnemonic_name(d.in.op))
         << " sets reserved/ignored bits: word " << hex(d.in.raw)
         << ", canonical " << (encodable ? hex(reencoded) : "form unknown");
      diags.add(DiagKind::kNonCanonicalEncoding, Severity::kWarning, d.addr,
                os.str());
    }
  }
}

void check_features(const CodeImage& image, const Cfg& cfg,
                    const AnalyzerOptions& opt, Diags& diags) {
  for (size_t i = 0; i < image.instrs().size(); ++i) {
    const DecodedInstr& d = image.instrs()[i];
    if (d.illegal || !cfg.is_reachable(static_cast<int>(i))) continue;
    const char* missing = nullptr;
    if (d.in.has(iflag::kNeedXpulpV2) && !opt.xpulpv2) missing = "XpulpV2";
    else if (d.in.has(iflag::kNeedXpulpNN) && !opt.xpulpnn) missing = "XpulpNN";
    else if (d.in.has(iflag::kNeedHwloops) && !opt.hwloops) {
      missing = "hardware loops";
    }
    if (missing) {
      diags.add(DiagKind::kMissingIsaFeature, Severity::kError, d.addr,
                std::string(isa::mnemonic_name(d.in.op)) + " requires " +
                    missing + ", absent on the target core");
    }
  }
}

void check_unreachable(const CodeImage& image, const Cfg& cfg, Diags& diags) {
  // Coalesce consecutive unreachable instructions into one finding.
  const auto& instrs = image.instrs();
  size_t i = 0;
  while (i < instrs.size()) {
    if (instrs[i].illegal || cfg.is_reachable(static_cast<int>(i))) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j + 1 < instrs.size() && !instrs[j + 1].illegal &&
           !cfg.is_reachable(static_cast<int>(j + 1))) {
      ++j;
    }
    std::ostringstream os;
    os << (j - i + 1) << " instruction(s) unreachable from the entry point";
    diags.add(DiagKind::kUnreachableCode, Severity::kWarning, instrs[i].addr,
              os.str());
    i = j + 1;
  }
}

void check_hwloops(const CodeImage& image, const Cfg& cfg, Diags& diags) {
  const auto& loops = cfg.hwloops();
  for (const HwLoop& l : loops) {
    const int s = image.index_of(l.start);
    const int e = l.end == image.end() ? static_cast<int>(image.instrs().size())
                                       : image.index_of(l.end);
    if (l.start >= l.end || s < 0 || e < 0) {
      diags.add(DiagKind::kHwloopBadNesting, Severity::kError, l.setup_addr,
                loop_desc(l) + " has an empty, inverted or misaligned range");
      continue;
    }

    // Minimum body length: RI5CY requires at least two instructions
    // between start and end (the generators' documented convention).
    if (e - s < 2) {
      diags.add(DiagKind::kHwloopBodyTooShort, Severity::kError, l.setup_addr,
                loop_desc(l) + " body has " + std::to_string(e - s) +
                    " instruction(s); the hardware requires >= 2");
    }

    // No control flow crossing the body boundary, and the body must not
    // end in a control-flow instruction (the back edge fires only on
    // fall-through past the end address).
    for (int i = s; i < e; ++i) {
      const DecodedInstr& d = image.instrs()[static_cast<size_t>(i)];
      if (d.illegal || !is_control_flow(d.in)) continue;
      if (d.in.op == Mnemonic::kJalr) {
        diags.add(DiagKind::kHwloopBranchInBody, Severity::kError, d.addr,
                  "indirect jump inside " + loop_desc(l));
        continue;
      }
      const addr_t target = d.addr + static_cast<u32>(d.in.imm);
      const bool leaves = target < l.start || target >= l.end;
      if (d.in.op == Mnemonic::kJal && d.in.rd != 0) {
        diags.add(DiagKind::kHwloopBranchInBody, Severity::kError, d.addr,
                  "call inside " + loop_desc(l));
      } else if (leaves) {
        diags.add(DiagKind::kHwloopBranchInBody, Severity::kError, d.addr,
                  "branch/jump out of " + loop_desc(l) + " to " + hex(target));
      }
      if (d.addr + d.in.size == l.end) {
        diags.add(DiagKind::kHwloopEndsInControlFlow, Severity::kError, d.addr,
                  loop_desc(l) + " ends in a control-flow instruction; the "
                                 "back edge fires on fall-through only");
      }
    }

    // Branches into the body from outside (entering anywhere but the
    // start skips iterations unpredictably).
    for (size_t i = 0; i < image.instrs().size(); ++i) {
      const DecodedInstr& d = image.instrs()[i];
      if (d.illegal) continue;
      if (d.addr >= l.start && d.addr < l.end) continue;
      if (d.in.op != Mnemonic::kJal && !isa::is_branch(d.in.op)) continue;
      const addr_t target = d.addr + static_cast<u32>(d.in.imm);
      if (target > l.start && target < l.end) {
        diags.add(DiagKind::kHwloopBranchInBody, Severity::kError, d.addr,
                  "branch/jump into the middle of " + loop_desc(l));
      }
    }
  }

  // Nesting: overlapping loops must be properly nested with distinct
  // indices, the inner one on L0.
  for (size_t a = 0; a < loops.size(); ++a) {
    for (size_t b = a + 1; b < loops.size(); ++b) {
      const HwLoop& x = loops[a];
      const HwLoop& y = loops[b];
      if (x.start >= x.end || y.start >= y.end) continue;
      const bool overlap = x.start < y.end && y.start < x.end;
      if (!overlap) continue;
      const bool x_in_y = x.start >= y.start && x.end <= y.end;
      const bool y_in_x = y.start >= x.start && y.end <= x.end;
      if (!x_in_y && !y_in_x) {
        diags.add(DiagKind::kHwloopBadNesting, Severity::kError, y.setup_addr,
                  loop_desc(y) + " partially overlaps " + loop_desc(x));
      } else if (x.index == y.index) {
        diags.add(DiagKind::kHwloopBadNesting, Severity::kError, y.setup_addr,
                  "nested hardware loops share index L" +
                      std::to_string(x.index));
      } else {
        const HwLoop& inner = x_in_y ? x : y;
        if (inner.index != 0) {
          diags.add(DiagKind::kHwloopBadNesting, Severity::kError,
                    inner.setup_addr,
                    "inner " + loop_desc(inner) + " must use L0 (L0 is the "
                                                  "innermost loop on RI5CY)");
        }
      }
    }
  }
}

void check_dataflow(const CodeImage& image, const Cfg& cfg,
                    const std::vector<RegState>& states,
                    const AnalyzerOptions& opt, Diags& diags) {
  for (size_t i = 0; i < image.instrs().size(); ++i) {
    const DecodedInstr& d = image.instrs()[i];
    if (d.illegal || !cfg.is_reachable(static_cast<int>(i))) continue;
    const RegState& st = states[i];
    if (!st.feasible) continue;
    const isa::Instr& in = d.in;

    if (opt.check_uninit_read) {
      u32 reads = 0;
      if (in.has(iflag::kReadsRs1)) reads |= 1u << in.rs1;
      if (in.has(iflag::kReadsRs2)) reads |= 1u << in.rs2;
      // p.insert / pv.insert read rd only to merge bits into it; the
      // generators deliberately build packed words in fresh registers
      // (every bit gets inserted), so insert counts as a definition.
      if (in.has(iflag::kReadsRd) && in.op != Mnemonic::kPInsert &&
          in.op != Mnemonic::kPvElemInsert) {
        reads |= 1u << in.rd;
      }
      u32 uninit = reads & ~st.init & ~1u;
      while (uninit) {
        const unsigned r = static_cast<unsigned>(__builtin_ctz(uninit));
        uninit &= uninit - 1;
        diags.add(DiagKind::kUninitRead, Severity::kError, d.addr,
                  std::string(isa::mnemonic_name(in.op)) + " reads " +
                      std::string(isa::reg_name(static_cast<u8>(r))) +
                      ", which no path has written");
      }
    }

    if (opt.check_memory && opt.mem_size != 0 && in.mem_size != 0) {
      // Effective address when statically known. Post-increment forms
      // address through the unmodified base; reg-reg forms add an index
      // register (rs2 for loads, the rd field for stores).
      bool known = false;
      u32 ea = 0;
      if (in.has(iflag::kMemPostInc)) {
        known = st.is_known(in.rs1);
        ea = st.value(in.rs1);
      } else if (in.has(iflag::kMemRegOff)) {
        const unsigned idx = in.has(iflag::kIsStore) ? in.rd : in.rs2;
        known = st.is_known(in.rs1) && st.is_known(idx);
        ea = st.value(in.rs1) + st.value(idx);
      } else {
        known = st.is_known(in.rs1);
        ea = st.value(in.rs1) + static_cast<u32>(in.imm);
      }
      if (known) {
        const u64 end = static_cast<u64>(ea) + in.mem_size;
        if (end > opt.mem_size && ea < opt.mem_size) {
          // Misaligned access straddling the end of the SRAM: the first
          // split transaction is in bounds, the second traps. Runtime
          // raises the fault before charging stats or stalls (the PR 4
          // fix); statically it gets its own kind so a straddle is
          // distinguishable from a fully out-of-range address.
          diags.add(DiagKind::kMisalignedStraddle, Severity::kError, d.addr,
                    std::string(isa::mnemonic_name(in.op)) + " at " +
                        hex(ea) + " straddles the " +
                        std::to_string(opt.mem_size / 1024) +
                        " kB TCDM boundary misaligned (traps mid-access at "
                        "runtime)");
        } else if (end > opt.mem_size) {
          diags.add(DiagKind::kTcdmOutOfBounds, Severity::kError, d.addr,
                    std::string(isa::mnemonic_name(in.op)) + " accesses " +
                        hex(ea) + ", past the " +
                        std::to_string(opt.mem_size / 1024) + " kB TCDM");
        } else if (ea % in.mem_size != 0) {
          diags.add(DiagKind::kMisalignedAccess, Severity::kWarning, d.addr,
                    std::string(isa::mnemonic_name(in.op)) + " accesses " +
                        hex(ea) + ", misaligned for size " +
                        std::to_string(in.mem_size) +
                        " (one stall cycle per access)");
        }
      }
    }

    if (opt.check_simd_conventions) {
      if (in.has(iflag::kDotAccum) &&
          (in.rd == in.rs1 || in.rd == in.rs2)) {
        diags.add(DiagKind::kDotpAccumOverlap, Severity::kWarning, d.addr,
                  std::string(isa::mnemonic_name(in.op)) + " accumulator " +
                      std::string(isa::reg_name(in.rd)) +
                      " doubles as a vector operand");
      }
      if (in.op == Mnemonic::kPvQnt) {
        const unsigned q = isa::simd_elem_bits(in.fmt);
        const u32 stride = sim::QuantUnit::tree_stride_bytes(q);
        if (st.is_known(in.rs2)) {
          const u32 ptr = st.value(in.rs2);
          if (ptr % 2 != 0) {
            diags.add(DiagKind::kQntThresholdSetup, Severity::kError, d.addr,
                      "pv.qnt threshold tree at " + hex(ptr) +
                          " is not 16-bit aligned");
          } else if (static_cast<u64>(ptr) + 2ull * stride > opt.mem_size) {
            diags.add(DiagKind::kQntThresholdSetup, Severity::kError, d.addr,
                      "pv.qnt threshold trees at " + hex(ptr) +
                          " extend past the TCDM");
          }
        }
      }
    }

    if (cfg.falls_off_end(static_cast<int>(i))) {
      diags.add(DiagKind::kFallOffEnd, Severity::kError, d.addr,
                "execution can fall off the end of the code image");
    }
  }
}

/// Legality of CSR-state-dependent operands: the operand widths of the
/// mixed dot products are not in the encoding — they come from the mpc
/// CSR at execution time. A forward may-analysis propagates the set of
/// mpc states that can reach each instruction (explicit constants 0..3,
/// "written from an unbounded runtime value", "reset default, never
/// written") across the same CFG the dataflow pass uses; csrrs/csrrc
/// with a statically-known operand are mapped through the read-modify-
/// write per possible old value. Each reachable mixed dot is then judged
/// against its incoming set.
void check_mixed_mpc(const CodeImage& image, const Cfg& cfg, addr_t entry,
                     const std::vector<RegState>& states, Diags& diags) {
  const auto& instrs = image.instrs();
  bool any_mixed = false;
  for (const DecodedInstr& d : instrs) {
    if (!d.illegal && d.in.has(iflag::kDotMixed)) {
      any_mixed = true;
      break;
    }
  }
  if (!any_mixed) return;

  enum : u8 {
    kVal0 = 1, kVal1 = 2, kVal2 = 4, kVal3 = 8,  // explicitly written consts
    kDynamic = 16,  // written from a value the dataflow cannot bound
    kDefault = 32,  // reset value (selector 0) with no write on the path
  };
  const auto val_bit = [](u32 v) { return static_cast<u8>(1u << (v & 3u)); };

  const int entry_idx = image.index_of(entry);
  if (entry_idx < 0) return;
  std::vector<u8> state(instrs.size(), 0);
  state[static_cast<size_t>(entry_idx)] = kDefault;
  std::vector<int> work{entry_idx};
  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    const DecodedInstr& d = instrs[static_cast<size_t>(i)];
    u8 out = state[static_cast<size_t>(i)];
    if (!d.illegal) {
      const isa::Instr& in = d.in;
      const bool imm_form = in.op == Mnemonic::kCsrrwi ||
                            in.op == Mnemonic::kCsrrsi ||
                            in.op == Mnemonic::kCsrrci;
      const bool reg_form = in.op == Mnemonic::kCsrrw ||
                            in.op == Mnemonic::kCsrrs ||
                            in.op == Mnemonic::kCsrrc;
      if ((imm_form || reg_form) && static_cast<u32>(in.imm) == isa::kMpcCsr) {
        const RegState& st = states[static_cast<size_t>(i)];
        bool known = imm_form;
        u32 v = in.imm2;
        if (reg_form) {
          if (in.rs1 == 0) {
            known = true;
            v = 0;
          } else if (st.feasible && st.is_known(in.rs1)) {
            known = true;
            v = st.value(in.rs1);
          }
        }
        const bool write = in.op == Mnemonic::kCsrrw ||
                           in.op == Mnemonic::kCsrrwi;
        const bool set = in.op == Mnemonic::kCsrrs ||
                         in.op == Mnemonic::kCsrrsi;
        if (write) {
          // WARL keeps the low 2 bits of whatever is written.
          out = known ? val_bit(v) : static_cast<u8>(kDynamic);
        } else if (known && (v & 3u) == 0) {
          // csrrs/csrrc touching no selector bit: a pure read.
        } else if (!known || (out & kDynamic)) {
          out = kDynamic;
        } else {
          u8 mapped = 0;
          for (u32 old = 0; old < 4; ++old) {
            const bool possible = (out & val_bit(old)) != 0 ||
                                  (old == 0 && (out & kDefault) != 0);
            if (!possible) continue;
            mapped |= val_bit(set ? (old | v) : (old & ~v));
          }
          out = mapped;
        }
      }
    }
    for (const int s : cfg.successors()[static_cast<size_t>(i)]) {
      const u8 merged = static_cast<u8>(state[static_cast<size_t>(s)] | out);
      if (merged != state[static_cast<size_t>(s)]) {
        state[static_cast<size_t>(s)] = merged;
        work.push_back(s);
      }
    }
  }

  for (size_t i = 0; i < instrs.size(); ++i) {
    const DecodedInstr& d = instrs[i];
    if (d.illegal || !d.in.has(iflag::kDotMixed)) continue;
    if (!cfg.is_reachable(static_cast<int>(i))) continue;
    const u8 s = state[i];
    const std::string name(isa::mnemonic_name(d.in.op));
    if (s & kVal3) {
      diags.add(DiagKind::kMixedMpcState, Severity::kError, d.addr,
                name + " is reachable with the reserved mpc selector 3 "
                       "(IllegalInstruction at runtime)");
    } else if (s & kDynamic) {
      diags.add(DiagKind::kMixedMpcState, Severity::kWarning, d.addr,
                name + " operand widths depend on an mpc value written from "
                       "a register the dataflow cannot bound");
    } else if (s & kDefault) {
      diags.add(DiagKind::kMixedMpcState, Severity::kWarning, d.addr,
                name + " has no dominating mpc write; it relies on the reset "
                       "selector (8x4)");
    }
  }
}

}  // namespace

u32 AnalyzerOptions::abi_entry_mask() {
  u32 m = 1;                        // x0
  for (u8 r : {1, 2, 3, 4}) m |= 1u << r;       // ra/sp/gp/tp
  for (u8 r = 10; r <= 17; ++r) m |= 1u << r;   // a0-a7
  return m;
}

AnalyzerOptions AnalyzerOptions::for_core(const sim::CoreConfig& cfg) {
  AnalyzerOptions o;
  o.xpulpv2 = cfg.xpulpv2;
  o.xpulpnn = cfg.xpulpnn;
  o.hwloops = cfg.hwloops;
  return o;
}

AnalysisReport ProgramAnalyzer::analyze(const xasm::Program& prog) const {
  std::vector<u8> bytes(prog.size_bytes());
  for (u32 i = 0; i < prog.size_words(); ++i) {
    const u32 w = prog.words()[i];
    bytes[i * 4 + 0] = static_cast<u8>(w);
    bytes[i * 4 + 1] = static_cast<u8>(w >> 8);
    bytes[i * 4 + 2] = static_cast<u8>(w >> 16);
    bytes[i * 4 + 3] = static_cast<u8>(w >> 24);
  }
  return analyze(prog.base(), bytes, prog.entry());
}

AnalysisReport ProgramAnalyzer::analyze(addr_t base,
                                        const std::vector<u8>& bytes,
                                        addr_t entry) const {
  AnalysisReport report;
  Diags diags(report.diags);

  CodeImage image(base, bytes, report.diags);
  report.instr_count = image.instrs().size();

  check_canonical(image, diags);

  Cfg cfg(image, entry, report.diags);
  report.hwloop_count = cfg.hwloops().size();
  if (image.index_of(entry) < 0) {
    diags.add(DiagKind::kBadJumpTarget, Severity::kError, entry,
              "entry point is not an instruction boundary of the image");
    return report;
  }
  report.reachable_count = static_cast<size_t>(std::count(
      cfg.reachable().begin(), cfg.reachable().end(), true));

  check_features(image, cfg, opt_, diags);
  check_unreachable(image, cfg, diags);
  if (opt_.check_hwloops) check_hwloops(image, cfg, diags);

  RegState entry_state;
  entry_state.init = opt_.assume_initialized | 1u;
  entry_state.known = 1;
  const std::vector<RegState> states =
      solve_dataflow(image, cfg, entry, entry_state);
  check_dataflow(image, cfg, states, opt_, diags);
  if (opt_.check_simd_conventions) {
    check_mixed_mpc(image, cfg, entry, states, diags);
  }

  return report;
}

sim::Core::PreRunGate make_pre_run_gate(AnalyzerOptions opt) {
  return [opt](const mem::Memory& mem, addr_t entry, addr_t code_end) {
    if (code_end <= entry) return;
    std::vector<u8> bytes(code_end - entry);
    mem.read_block(entry, bytes);
    AnalysisReport report =
        ProgramAnalyzer(opt).analyze(entry, bytes, entry);
    if (!report.has_errors()) return;
    std::string msg = "pre-run analysis failed: ";
    size_t errors = 0;
    for (const Diagnostic& d : report.diags) {
      if (d.severity != Severity::kError) continue;
      if (errors++ == 0) msg += d.to_string();
    }
    if (errors > 1) {
      msg += " (+" + std::to_string(errors - 1) + " more)";
    }
    throw AnalysisError(std::move(msg), std::move(report));
  };
}

}  // namespace xpulp::analysis
