#include "analysis/kernel_sweep.hpp"

#include "kernels/conv_layer.hpp"
#include "kernels/linear.hpp"
#include "kernels/pool_gen.hpp"
#include "qnn/ref_layers.hpp"

namespace xpulp::analysis {

namespace {

using kernels::ConvVariant;

qnn::ConvSpec small_spec(unsigned bits) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

AnalyzerOptions options_for(bool xpulpnn, bool hwloops = true) {
  AnalyzerOptions o;
  o.xpulpnn = xpulpnn;
  o.hwloops = hwloops;
  // Core::reset() initializes sp; everything else must be written by the
  // generated code before use.
  o.assume_initialized = 1u | (1u << 2);
  return o;
}

void add_conv(std::vector<KernelCheck>& out, const qnn::ConvSpec& spec,
              ConvVariant v, const std::string& name,
              const AnalyzerOptions& opt,
              const kernels::ConvGenOptions& gen = {}) {
  const kernels::ConvKernel k = kernels::generate_conv_kernel(spec, v, 0x40000, gen);
  out.push_back({name, ProgramAnalyzer(opt).analyze(k.program)});
}

}  // namespace

std::vector<KernelCheck> analyze_paper_kernels() {
  std::vector<KernelCheck> out;

  // ---- convolution variants, both ISAs ----
  // The XpulpV2 variants must verify against a core *without* XpulpNN:
  // this proves the baseline kernels never lean on sub-byte SIMD.
  add_conv(out, small_spec(8), ConvVariant::kXpulpV2_8b, "conv/xpulpv2_8b",
           options_for(/*xpulpnn=*/false));
  for (const unsigned bits : {4u, 2u}) {
    add_conv(out, small_spec(bits), ConvVariant::kXpulpV2_Sub,
             "conv/xpulpv2_sub/" + std::to_string(bits) + "b",
             options_for(/*xpulpnn=*/false));
    add_conv(out, small_spec(bits), ConvVariant::kXpulpNN_SwQ,
             "conv/xpulpnn_swq/" + std::to_string(bits) + "b",
             options_for(/*xpulpnn=*/true));
    add_conv(out, small_spec(bits), ConvVariant::kXpulpNN_HwQ,
             "conv/xpulpnn_hwq/" + std::to_string(bits) + "b",
             options_for(/*xpulpnn=*/true));
  }
  add_conv(out, small_spec(4), ConvVariant::kXpulpV2_SubShf,
           "conv/xpulpv2_subshf/4b", options_for(/*xpulpnn=*/false));

  // The paper's benchmark layer (16x16x32 -> 64), headline variant.
  add_conv(out, qnn::ConvSpec::paper_layer(4), ConvVariant::kXpulpNN_HwQ,
           "conv/xpulpnn_hwq/paper_layer_4b", options_for(/*xpulpnn=*/true));

  // Mixed-precision virtual-SIMD kernels: one per mpc operand pair. The
  // analyzer's mixed-mpc rule must see the generated csrrwi prologue
  // dominating every pv.mlsdot, so these also verify clean.
  for (const auto& [a, w] : {std::pair{8u, 4u}, {8u, 2u}, {4u, 2u}}) {
    qnn::ConvSpec mixed = small_spec(8);
    mixed.in_c = a == 8 ? 16 : 24;  // keep in_c * in_bits word-aligned
    mixed.in_bits = a;
    mixed.w_bits = w;
    mixed.out_bits = 8;
    add_conv(out, mixed, ConvVariant::kXpulpNN_Mixed,
             "conv/xpulpnn_mixed/a" + std::to_string(a) + "w" +
                 std::to_string(w),
             options_for(/*xpulpnn=*/true));
  }

  // Hardware-loop ablation: the generated kernel must contain no hwloop
  // instructions at all, so it verifies on a core without them.
  {
    kernels::ConvGenOptions gen;
    gen.use_hwloops = false;
    add_conv(out, small_spec(4), ConvVariant::kXpulpNN_HwQ,
             "conv/xpulpnn_hwq/4b_no_hwloops",
             options_for(/*xpulpnn=*/true, /*hwloops=*/false), gen);
  }

  // ---- pooling, native sub-byte vs unpack/pool/repack ----
  const qnn::Shape pool_shape{4, 4, 16};
  for (const auto op : {kernels::PoolOp::kMax, kernels::PoolOp::kAvg}) {
    const char* opn = op == kernels::PoolOp::kMax ? "max" : "avg";
    for (const unsigned bits : {8u, 4u, 2u}) {
      const kernels::PoolKernel nat = kernels::generate_pool2x2_kernel(
          pool_shape, bits, op, /*native_subbyte=*/true);
      out.push_back({"pool/" + std::string(opn) + "/native/" +
                         std::to_string(bits) + "b",
                     ProgramAnalyzer(options_for(bits != 8)).analyze(nat.program)});
      if (bits != 8) {
        const kernels::PoolKernel base = kernels::generate_pool2x2_kernel(
            pool_shape, bits, op, /*native_subbyte=*/false);
        out.push_back({"pool/" + std::string(opn) + "/baseline/" +
                           std::to_string(bits) + "b",
                       ProgramAnalyzer(options_for(false)).analyze(base.program)});
      }
    }
  }

  // ---- linear layers (1x1 "convolution", 2x1 blocking) ----
  {
    kernels::ConvGenOptions gen;
    gen.pixel_block = 1;
    qnn::ConvSpec lin;
    lin.in_h = lin.in_w = lin.k_h = lin.k_w = 1;
    lin.pad = 0;
    lin.in_c = 64;
    lin.out_c = 8;
    lin.in_bits = lin.w_bits = lin.out_bits = 8;
    add_conv(out, lin, ConvVariant::kXpulpV2_8b, "linear/xpulpv2_8b",
             options_for(false), gen);
    for (const unsigned bits : {4u, 2u}) {
      lin.in_bits = lin.w_bits = lin.out_bits = bits;
      add_conv(out, lin, ConvVariant::kXpulpV2_Sub,
               "linear/xpulpv2_sub/" + std::to_string(bits) + "b",
               options_for(false), gen);
      add_conv(out, lin, ConvVariant::kXpulpNN_HwQ,
               "linear/xpulpnn_hwq/" + std::to_string(bits) + "b",
               options_for(true), gen);
    }
  }

  return out;
}

}  // namespace xpulp::analysis
