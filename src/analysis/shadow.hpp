// xrace dynamic phase: shadow-memory conflict detection.
//
// A per-byte shadow map records, for every TCDM byte, the last core that
// wrote it (with pc and local cycle) and the set of cores that read it
// since. Fed from the cluster's access observer — which fires under the
// event-driven scheduler's exact cross-core cycle ordering — it flags
// real conflicts as they happen: a store over another core's live write
// is a write-write race, a load of another core's write (or a store over
// another core's reads) is a write-read race, each reported at the exact
// pc pair and cycle. The dynamic findings validate the static phase
// (src/analysis/race.hpp): every observed conflict must correspond to a
// statically reported conflict or an unprovable access. DESIGN.md §13.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/race.hpp"
#include "cluster/cluster.hpp"

namespace xpulp::analysis {

/// One observed conflict: access `a` happened first (in the scheduler's
/// exact ordering), `b` collided with it on `addr`.
struct ShadowConflict {
  DiagKind kind = DiagKind::kCrossCoreWriteWrite;
  int core_a = 0;
  int core_b = 0;
  addr_t pc_a = 0;
  addr_t pc_b = 0;
  cycles_t cycle_a = 0;
  cycles_t cycle_b = 0;  // the cycle the conflict was detected at
  addr_t addr = 0;       // first conflicting byte
  std::string to_string() const;
};

struct ShadowStats {
  u64 accesses = 0;
  u64 bytes_tracked = 0;  // distinct bytes touched this epoch
  size_t conflicts = 0;
  size_t ww = 0;
  size_t rw = 0;
};

/// Byte-granular shadow map. Conflicts are deduplicated by
/// (kind, pc_a, pc_b), keeping the earliest occurrence; the detector
/// assumes no cross-core synchronization (true for the generated
/// kernels: cores run independently to completion), so any cross-core
/// same-byte pair with a store is a race.
class ShadowMemory {
 public:
  ShadowMemory() = default;

  /// Record one access; grows the map on demand.
  void record(int core, cycles_t cycle, addr_t pc, addr_t addr,
              unsigned size, bool is_store);

  /// Forget all recorded state (lazy: cells invalidate on next touch) but
  /// keep accumulated conflicts and stats. Call between runs that reuse
  /// the shadow.
  void new_epoch() { ++epoch_; bytes_tracked_ = 0; }

  const std::vector<ShadowConflict>& conflicts() const { return conflicts_; }
  ShadowStats stats() const;
  bool clean() const { return conflicts_.empty(); }
  std::string to_string() const;

 private:
  struct Cell {
    u64 epoch = 0;
    u64 readers = 0;  // bitmask of cores that read since the last write
    int writer = -1;
    addr_t writer_pc = 0;
    cycles_t writer_cycle = 0;
    int reader = -1;  // most recent reader (for read-then-write reports)
    addr_t reader_pc = 0;
    cycles_t reader_cycle = 0;
  };
  Cell& cell_at(addr_t a);

  std::vector<Cell> cells_;
  std::vector<ShadowConflict> conflicts_;
  u64 epoch_ = 1;
  u64 accesses_ = 0;
  u64 bytes_tracked_ = 0;
};

/// Wire a shadow map into a cluster's access observer. The shadow must
/// outlive the cluster's runs.
void attach_shadow(cluster::Cluster& cl, ShadowMemory& shadow);

/// Cross-validate the two phases: every dynamically observed conflict
/// must be explained by the static report — its pc pair appears in a
/// static conflict, or one of its pcs is a statically unprovable access.
/// Returns false (and explains into `why`) when the dynamic phase caught
/// something the static phase missed.
bool validate_against_shadow(const RaceReport& static_report,
                             const ShadowMemory& shadow,
                             std::string* why = nullptr);

/// Publish shadow stats under `prefix` (e.g. "sim.race.shadow").
void add_shadow_stats(obs::Registry& reg, const std::string& prefix,
                      const ShadowMemory& shadow);

}  // namespace xpulp::analysis
