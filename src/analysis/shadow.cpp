#include "analysis/shadow.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/registry.hpp"

namespace xpulp::analysis {

namespace {

std::string hex(addr_t a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

}  // namespace

std::string ShadowConflict::to_string() const {
  std::ostringstream os;
  os << (kind == DiagKind::kCrossCoreWriteWrite ? "write-write"
                                                : "write-read")
     << " @" << hex(addr) << ": core" << core_a << " pc=" << hex(pc_a)
     << " cycle=" << cycle_a << " then core" << core_b
     << " pc=" << hex(pc_b) << " cycle=" << cycle_b;
  return os.str();
}

ShadowMemory::Cell& ShadowMemory::cell_at(addr_t a) {
  if (a >= cells_.size()) cells_.resize(static_cast<size_t>(a) + 1);
  Cell& c = cells_[a];
  if (c.epoch != epoch_) {
    c = Cell{};
    c.epoch = epoch_;
  }
  return c;
}

void ShadowMemory::record(int core, cycles_t cycle, addr_t pc, addr_t addr,
                          unsigned size, bool is_store) {
  ++accesses_;
  // Dedup by pc pair: a racing store in a loop collides on thousands of
  // bytes; one finding per instruction pair, earliest occurrence kept
  // (accesses arrive in exact scheduler order, so first seen = earliest).
  auto emit = [&](ShadowConflict c) {
    for (const ShadowConflict& e : conflicts_) {
      if (e.kind == c.kind && e.pc_a == c.pc_a && e.pc_b == c.pc_b) return;
    }
    conflicts_.push_back(c);
  };

  for (unsigned i = 0; i < size; ++i) {
    Cell& c = cell_at(addr + i);
    const bool fresh = c.writer < 0 && c.readers == 0;
    if (fresh) ++bytes_tracked_;
    if (is_store) {
      if (c.writer >= 0 && c.writer != core) {
        emit({DiagKind::kCrossCoreWriteWrite, c.writer, core, c.writer_pc,
              pc, c.writer_cycle, cycle, addr + i});
      }
      if ((c.readers & ~(1ull << core)) != 0 && c.reader >= 0) {
        // Read-then-write: report the most recent reader. When the
        // writer itself read last, its pc stands in for the foreign
        // reader's — the write-then-read direction below still pins the
        // exact foreign pc on that core's next load.
        emit({DiagKind::kCrossCoreReadWrite, c.reader, core, c.reader_pc,
              pc, c.reader_cycle, cycle, addr + i});
      }
      c.writer = core;
      c.writer_pc = pc;
      c.writer_cycle = cycle;
      c.readers = 0;
      c.reader = -1;
    } else {
      if (c.writer >= 0 && c.writer != core) {
        emit({DiagKind::kCrossCoreReadWrite, c.writer, core, c.writer_pc,
              pc, c.writer_cycle, cycle, addr + i});
      }
      c.readers |= 1ull << core;
      c.reader = core;
      c.reader_pc = pc;
      c.reader_cycle = cycle;
    }
  }
}

ShadowStats ShadowMemory::stats() const {
  ShadowStats s;
  s.accesses = accesses_;
  s.bytes_tracked = bytes_tracked_;
  s.conflicts = conflicts_.size();
  for (const ShadowConflict& c : conflicts_) {
    (c.kind == DiagKind::kCrossCoreWriteWrite ? s.ww : s.rw) += 1;
  }
  return s;
}

std::string ShadowMemory::to_string() const {
  const ShadowStats s = stats();
  std::ostringstream os;
  os << "shadow: accesses=" << s.accesses << " bytes=" << s.bytes_tracked
     << " conflicts=" << s.conflicts << " (ww " << s.ww << ", rw " << s.rw
     << ")" << (clean() ? " [clean]" : " [RACY]") << "\n";
  for (const ShadowConflict& c : conflicts_) os << "  " << c.to_string() << "\n";
  return os.str();
}

void attach_shadow(cluster::Cluster& cl, ShadowMemory& shadow) {
  cl.set_access_observer([&shadow](int core, cycles_t cycle, addr_t pc,
                                   addr_t addr, unsigned size, bool is_store,
                                   unsigned /*conflict_stalls*/) {
    shadow.record(core, cycle, pc, addr, size, is_store);
  });
}

bool validate_against_shadow(const RaceReport& static_report,
                             const ShadowMemory& shadow, std::string* why) {
  // The static phase over-approximates, so static findings without a
  // dynamic witness are fine (one interleaving was observed, not all).
  // The reverse — an observed conflict the static phase did not predict —
  // is a soundness failure.
  std::set<std::pair<addr_t, addr_t>> static_pairs;
  for (const RaceConflict& c : static_report.conflicts) {
    static_pairs.insert({std::min(c.pc_a, c.pc_b), std::max(c.pc_a, c.pc_b)});
  }
  std::set<addr_t> unprovable_pcs;
  for (const auto& [core, acc] : static_report.unprovable) {
    unprovable_pcs.insert(acc.pc);
  }
  for (const ShadowConflict& c : shadow.conflicts()) {
    const bool predicted =
        static_pairs.count(
            {std::min(c.pc_a, c.pc_b), std::max(c.pc_a, c.pc_b)}) != 0 ||
        unprovable_pcs.count(c.pc_a) != 0 || unprovable_pcs.count(c.pc_b) != 0;
    if (!predicted) {
      if (why != nullptr) {
        *why = "dynamic conflict not predicted statically: " + c.to_string();
      }
      return false;
    }
  }
  return true;
}

void add_shadow_stats(obs::Registry& reg, const std::string& prefix,
                      const ShadowMemory& shadow) {
  const ShadowStats s = shadow.stats();
  reg.counter(prefix + ".accesses", s.accesses);
  reg.counter(prefix + ".bytes", s.bytes_tracked);
  reg.counter(prefix + ".conflicts", s.conflicts);
  reg.counter(prefix + ".ww", s.ww);
  reg.counter(prefix + ".rw", s.rw);
  reg.flag(prefix + ".clean", shadow.clean());
}

}  // namespace xpulp::analysis
