#include "analysis/race.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/analyzer.hpp"
#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "kernels/pool_gen.hpp"
#include "obs/registry.hpp"
#include "qnn/ref_layers.hpp"

namespace xpulp::analysis {

namespace {

std::string hex(addr_t a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

// Floor/ceil division for positive divisors and signed numerators (the
// dense-vs-strided element range computation crosses zero near the start
// of the dense interval).
i64 floor_div(i64 a, i64 b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }
i64 ceil_div(i64 a, i64 b) { return floor_div(a + b - 1, b); }

/// An access is "dense" when its footprint is one contiguous byte
/// interval: a single element, or a progression whose stride does not
/// exceed the element size.
bool is_dense(const StridedAccess& a) {
  return a.addr.is_const() || a.addr.stride <= a.size;
}

/// Does the strided access `s` (stride > size, >= 2 elements) place any
/// element overlapping the dense byte interval [dlo, dhi)? Exact.
bool strided_hits_dense(const StridedAccess& s, i64 dlo, i64 dhi) {
  const i64 st = s.addr.stride;
  const i64 n = static_cast<i64>(s.addr.count());
  // Element k starts at s.lo + k*st and occupies s.size bytes; it
  // overlaps [dlo, dhi) iff start < dhi and start + size > dlo.
  i64 kmin = ceil_div(dlo - static_cast<i64>(s.size) + 1 -
                          static_cast<i64>(s.addr.lo),
                      st);
  i64 kmax = floor_div(dhi - 1 - static_cast<i64>(s.addr.lo), st);
  kmin = std::max<i64>(kmin, 0);
  kmax = std::min<i64>(kmax, n - 1);
  return kmin <= kmax;
}

}  // namespace

bool accesses_overlap(const StridedAccess& a, const StridedAccess& b,
                      AddrRange* overlap) {
  if (!a.addr.is_bounded() || !b.addr.is_bounded()) return false;
  // Bounding-interval prefilter; also the reported overlap interval.
  const addr_t lo = std::max(a.first(), b.first());
  const addr_t hi = std::min(a.last_end(), b.last_end());
  if (lo >= hi) return false;

  bool hit;
  const bool da = is_dense(a);
  const bool db = is_dense(b);
  if (da && db) {
    hit = true;  // two overlapping contiguous intervals
  } else if (da) {
    hit = strided_hits_dense(b, a.first(), a.last_end());
  } else if (db) {
    hit = strided_hits_dense(a, b.first(), b.last_end());
  } else {
    // Strided vs strided: compare phases modulo g = gcd of the strides.
    // Within the overlapping window, a's elements sit at phase 0 (mod g,
    // relative to a.lo) and b's at phase d0; bytes collide only if one
    // progression's element can reach into the other's phase slot. Sound
    // (never misses a collision), may over-approximate near interval
    // edges where the progressions stop interleaving.
    const u32 g = std::gcd(a.addr.stride, b.addr.stride);
    const i64 diff = static_cast<i64>(b.addr.lo) - static_cast<i64>(a.addr.lo);
    const u32 d0 = static_cast<u32>(((diff % g) + g) % g);
    hit = d0 < a.size || g - d0 < b.size;
  }
  if (hit && overlap != nullptr) *overlap = {lo, hi};
  return hit;
}

std::string RaceConflict::to_string() const {
  std::ostringstream os;
  if (core_b < 0) {
    os << "read-only violation: core" << core_a << " pc=" << hex(pc_a)
       << " writes into declared read-only range, overlap ["
       << hex(overlap.begin) << ", " << hex(overlap.end) << ")";
    return os.str();
  }
  os << (kind == DiagKind::kCrossCoreWriteWrite ? "write-write"
                                                : "write-read")
     << ": core" << core_a << " store pc=" << hex(pc_a) << " x core"
     << core_b << " pc=" << hex(pc_b) << ", overlap [" << hex(overlap.begin)
     << ", " << hex(overlap.end) << ")";
  return os.str();
}

AnalysisReport RaceReport::to_report() const {
  AnalysisReport rep;
  for (const Footprint& fp : footprints) rep.instr_count += fp.instr_count;
  rep.reachable_count = rep.instr_count;
  for (const RaceConflict& c : conflicts) {
    rep.diags.push_back(
        {c.kind, Severity::kError, c.pc_a, c.to_string()});
  }
  for (const auto& [core, acc] : unprovable) {
    rep.diags.push_back({DiagKind::kUnprovableFootprint, Severity::kWarning,
                         acc.pc,
                         "core" + std::to_string(core) +
                             ": address not bounded for " + acc.to_string()});
  }
  return rep;
}

std::string RaceReport::to_string() const {
  std::ostringstream os;
  size_t accesses = 0;
  for (const Footprint& fp : footprints) accesses += fp.accesses.size();
  os << "xrace: cores=" << footprints.size() << " accesses=" << accesses
     << " conflicts=" << conflicts.size()
     << " unprovable=" << unprovable.size()
     << (clean() ? " [clean]" : " [RACY]") << "\n";
  for (const RaceConflict& c : conflicts) os << "  " << c.to_string() << "\n";
  for (const auto& [core, acc] : unprovable) {
    os << "  unprovable: core" << core << " " << acc.to_string() << "\n";
  }
  return os.str();
}

RaceReport analyze_races(const std::vector<xasm::Program>& programs,
                         const RaceOptions& opt) {
  RaceReport rep;
  const FootprintAnalyzer fa(opt.footprint);
  for (const xasm::Program& p : programs) rep.footprints.push_back(fa.analyze(p));

  const int n = static_cast<int>(programs.size());
  for (int c = 0; c < n; ++c) {
    for (const StridedAccess& acc : rep.footprints[static_cast<size_t>(c)].accesses) {
      if (!acc.addr.is_bounded()) rep.unprovable.emplace_back(c, acc);
    }
  }

  // Dedup: one conflict per (kind, pc, pc) pair — a strided store overlaps
  // a strided load at every iteration, which is one finding, not
  // thousands.
  std::set<std::tuple<int, addr_t, addr_t>> seen;
  auto emit = [&](RaceConflict c) {
    if (rep.conflicts.size() >= opt.max_conflicts) return;
    if (seen.insert({static_cast<int>(c.kind), c.pc_a, c.pc_b}).second) {
      rep.conflicts.push_back(std::move(c));
    }
  };
  auto in_read_only = [&](const StridedAccess& a) {
    for (const AddrRange& r : opt.read_only) {
      if (r.contains(a.first(), a.last_end())) return true;
    }
    return false;
  };

  // Writes into declared read-only ranges: conflicts against the
  // declaration itself, regardless of core count.
  for (int c = 0; c < n; ++c) {
    for (const StridedAccess& acc : rep.footprints[static_cast<size_t>(c)].accesses) {
      if (!acc.is_store || !acc.addr.is_bounded()) continue;
      for (const AddrRange& r : opt.read_only) {
        StridedAccess ro;
        ro.is_store = false;
        ro.size = 1;
        ro.addr = AVal::range(r.begin, r.end - 1, 1);
        AddrRange ov;
        if (accesses_overlap(acc, ro, &ov)) {
          emit({DiagKind::kCrossCoreReadWrite, c, -1, acc.pc, 0, ov});
        }
      }
    }
  }

  // Pairwise cross-core disjointness. Read-read pairs can never conflict,
  // so shared read-only tensors are naturally silent; the read_only option
  // additionally suppresses write-read findings for reads it covers (the
  // write side is already flagged above as a declaration violation).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (const StridedAccess& a : rep.footprints[static_cast<size_t>(i)].accesses) {
        if (!a.addr.is_bounded()) continue;
        for (const StridedAccess& b : rep.footprints[static_cast<size_t>(j)].accesses) {
          if (!b.addr.is_bounded()) continue;
          if (!a.is_store && !b.is_store) continue;
          AddrRange ov;
          if (!accesses_overlap(a, b, &ov)) continue;
          if (a.is_store && b.is_store) {
            emit({DiagKind::kCrossCoreWriteWrite, i, j, a.pc, b.pc, ov});
          } else {
            const StridedAccess& st = a.is_store ? a : b;
            const StridedAccess& ld = a.is_store ? b : a;
            if (in_read_only(ld)) continue;
            emit({DiagKind::kCrossCoreReadWrite, a.is_store ? i : j,
                  a.is_store ? j : i, st.pc, ld.pc, ov});
          }
        }
      }
    }
  }
  return rep;
}

std::function<void(const std::vector<xasm::Program>&)> make_race_gate(
    RaceOptions opt) {
  return [opt = std::move(opt)](const std::vector<xasm::Program>& programs) {
    const RaceReport rep = analyze_races(programs, opt);
    // A single-core load has no cross-core ordering to prove, so
    // unprovable footprints are tolerated there; with multiple cores an
    // unbounded access defeats the disjointness proof and must block.
    const bool bad =
        !rep.conflicts.empty() ||
        (programs.size() > 1 && !rep.unprovable.empty());
    if (bad) {
      std::ostringstream os;
      os << "xrace gate: " << rep.conflicts.size() << " conflict(s), "
         << rep.unprovable.size() << " unprovable footprint(s) across "
         << programs.size() << " core(s)";
      throw AnalysisError(os.str(), rep.to_report());
    }
  };
}

namespace {

using kernels::ConvGenOptions;
using kernels::ConvKernel;
using kernels::ConvVariant;

qnn::ConvSpec small_spec(unsigned bits) {
  qnn::ConvSpec s;
  s.in_h = s.in_w = 6;
  s.in_c = 16;
  s.out_c = 8;
  s.in_bits = s.w_bits = s.out_bits = bits;
  return s;
}

std::vector<xasm::Program> kernel_programs(const std::vector<ConvKernel>& ks) {
  std::vector<xasm::Program> ps;
  for (const ConvKernel& k : ks) ps.push_back(k.program);
  return ps;
}

/// Channel-tiled linear deployment: every core computes the full pixel
/// set over its own output-channel slice (disjoint packed output bytes as
/// long as the slice respects the pack group), private im2col slot, code
/// at c * 16 kB — the dual of make_parallel_conv_kernels' row split.
std::vector<xasm::Program> make_parallel_linear_programs(
    const qnn::ConvSpec& spec, ConvVariant v, int num_cores) {
  std::vector<xasm::Program> ps;
  const int share = spec.out_c / num_cores;
  for (int c = 0; c < num_cores; ++c) {
    ConvGenOptions o;
    o.pixel_block = 1;
    o.code_base = static_cast<addr_t>(c) * 0x4000;
    o.ch_begin = c * share;
    o.ch_end = (c + 1) * share;
    o.buffer_slots = num_cores;
    o.buffer_slot = c;
    ps.push_back(kernels::generate_conv_kernel(spec, v, 0x40000, o).program);
  }
  return ps;
}

void add_conv_checks(std::vector<RaceCheck>& out, const qnn::ConvSpec& spec,
                     ConvVariant v, const std::string& name,
                     const std::vector<int>& core_counts,
                     const ConvGenOptions& base = {}) {
  for (const int cores : core_counts) {
    // A core with an empty row slice generates a trivial program; skip
    // deployments with more cores than output rows.
    if (cores > spec.out_h()) continue;
    const auto ks = cluster::make_parallel_conv_kernels(spec, v, cores, base);
    out.push_back({name, cores, analyze_races(kernel_programs(ks))});
  }
}

}  // namespace

std::vector<RaceCheck> analyze_parallel_kernels(
    const std::vector<int>& core_counts) {
  std::vector<RaceCheck> out;

  // ---- convolution variants, row-partitioned ----
  add_conv_checks(out, small_spec(8), ConvVariant::kXpulpV2_8b,
                  "conv/xpulpv2_8b", core_counts);
  for (const unsigned bits : {4u, 2u}) {
    const std::string b = std::to_string(bits) + "b";
    add_conv_checks(out, small_spec(bits), ConvVariant::kXpulpV2_Sub,
                    "conv/xpulpv2_sub/" + b, core_counts);
    add_conv_checks(out, small_spec(bits), ConvVariant::kXpulpNN_SwQ,
                    "conv/xpulpnn_swq/" + b, core_counts);
    add_conv_checks(out, small_spec(bits), ConvVariant::kXpulpNN_HwQ,
                    "conv/xpulpnn_hwq/" + b, core_counts);
  }
  add_conv_checks(out, small_spec(4), ConvVariant::kXpulpV2_SubShf,
                  "conv/xpulpv2_subshf/4b", core_counts);
  add_conv_checks(out, qnn::ConvSpec::paper_layer(4), ConvVariant::kXpulpNN_HwQ,
                  "conv/xpulpnn_hwq/paper_layer_4b", core_counts);
  {
    // Branch-loop ablation: exercises the counted decrement-and-branch
    // summarization path instead of hardware-loop trip counts.
    ConvGenOptions gen;
    gen.use_hwloops = false;
    add_conv_checks(out, small_spec(4), ConvVariant::kXpulpNN_HwQ,
                    "conv/xpulpnn_hwq/4b_no_hwloops", core_counts, gen);
  }

  // ---- linear layers, channel-tiled ----
  {
    qnn::ConvSpec lin;
    lin.in_h = lin.in_w = lin.k_h = lin.k_w = 1;
    lin.pad = 0;
    lin.in_c = 64;
    lin.out_c = 32;
    for (const unsigned bits : {8u, 4u, 2u}) {
      lin.in_bits = lin.w_bits = lin.out_bits = bits;
      const ConvVariant v =
          bits == 8 ? ConvVariant::kXpulpV2_8b : ConvVariant::kXpulpNN_HwQ;
      const std::string name = bits == 8 ? "linear/xpulpv2_8b"
                                         : "linear/xpulpnn_hwq/" +
                                               std::to_string(bits) + "b";
      for (const int cores : core_counts) {
        if (lin.out_c % cores != 0) continue;
        // Pack-group constraint: a 2-bit output tile must cover >= 4
        // channels per core.
        if (lin.out_c / cores < (bits == 2 ? 4 : 2)) continue;
        out.push_back({name, cores,
                       analyze_races(
                           make_parallel_linear_programs(lin, v, cores))});
      }
    }
  }

  // ---- pooling (single core: the generator has no partitioning) ----
  const qnn::Shape pool_shape{4, 4, 16};
  for (const auto op : {kernels::PoolOp::kMax, kernels::PoolOp::kAvg}) {
    const char* opn = op == kernels::PoolOp::kMax ? "max" : "avg";
    for (const unsigned bits : {8u, 4u, 2u}) {
      const kernels::PoolKernel nat = kernels::generate_pool2x2_kernel(
          pool_shape, bits, op, /*native_subbyte=*/true);
      out.push_back({"pool/" + std::string(opn) + "/native/" +
                         std::to_string(bits) + "b",
                     1, analyze_races({nat.program})});
      if (bits != 8) {
        const kernels::PoolKernel base = kernels::generate_pool2x2_kernel(
            pool_shape, bits, op, /*native_subbyte=*/false);
        out.push_back({"pool/" + std::string(opn) + "/baseline/" +
                           std::to_string(bits) + "b",
                       1, analyze_races({base.program})});
      }
    }
  }
  return out;
}

void add_race_stats(obs::Registry& reg, const std::string& prefix,
                    const RaceReport& report) {
  size_t accesses = 0, loops = 0, unsummarized = 0;
  for (const Footprint& fp : report.footprints) {
    accesses += fp.accesses.size();
    loops += fp.loop_count;
    unsummarized += fp.unsummarized;
  }
  size_t ww = 0, rw = 0;
  for (const RaceConflict& c : report.conflicts) {
    (c.kind == DiagKind::kCrossCoreWriteWrite ? ww : rw) += 1;
  }
  reg.counter(prefix + ".cores", report.footprints.size());
  reg.counter(prefix + ".accesses", accesses);
  reg.counter(prefix + ".loops", loops);
  reg.counter(prefix + ".unsummarized", unsummarized);
  reg.counter(prefix + ".conflicts", report.conflicts.size());
  reg.counter(prefix + ".ww", ww);
  reg.counter(prefix + ".rw", rw);
  reg.counter(prefix + ".unprovable", report.unprovable.size());
  reg.flag(prefix + ".clean", report.clean());
}

}  // namespace xpulp::analysis
