// Encoding-space auditor: machine-checks the declarative ISA table in
// src/isa/isa_table.hpp against the real encoder/decoder/disassembler.
//
//   - audit_table_disjoint(): every (mask, match) pair is pairwise
//     non-overlapping — no word can match two table entries;
//   - audit_table_roundtrip(): operand-varied canonical samples of every
//     entry encode to a word matching the entry's (mask, match), decode
//     back to the same mnemonic/operands, re-encode bit-identically, and
//     disassemble to non-empty text;
//   - audit_compressed_space(): exhaustive sweep of all 3 * 2^14 16-bit
//     parcels — every parcel either raises IllegalInstruction or expands
//     to a 32-bit instruction whose re-encoding decodes equivalently;
//   - illegal_encoding_bank(): generated 32-bit words adjacent to legal
//     encodings (reserved funct fields, bad size codes, out-of-range lane
//     or bit-field operands, unused major opcodes) that must all raise
//     IllegalInstruction; audit_illegal_bank() proves they do.
//
// audit_isa_encoding_space() runs everything; xlint --audit and the
// test suite both call it.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace xpulp::analysis {

struct AuditResult {
  std::vector<std::string> failures;
  size_t checked = 0;  // pairs / samples / words examined

  bool ok() const { return failures.empty(); }
  void merge(const AuditResult& o);
};

AuditResult audit_table_disjoint();
AuditResult audit_table_roundtrip();
AuditResult audit_compressed_space();

/// 32-bit words that must not decode, each one mutation away from a legal
/// encoding. Exported so tests can also feed them through a live core.
std::vector<u32> illegal_encoding_bank();

/// 16-bit parcels that must not decode as compressed instructions.
std::vector<u16> illegal_compressed_bank();

AuditResult audit_illegal_bank();

/// All of the above.
AuditResult audit_isa_encoding_space();

}  // namespace xpulp::analysis
