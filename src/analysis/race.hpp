// xrace static phase: cross-core TCDM footprint disjointness.
//
// Each core's program is reduced to its read/write footprint (strided byte
// ranges, src/analysis/footprint.hpp); footprints are then checked
// pairwise across cores. Overlapping write/write footprints are silent
// lost updates on the shared TCDM; write/read overlaps are order-dependent
// values. Declared read-only ranges (weights, input activations,
// thresholds) additionally assert that no core writes them. Accesses whose
// addresses the interval/stride domain cannot bound are reported as
// kUnprovableFootprint — the check refuses to claim safety it cannot
// prove. The dynamic twin (src/analysis/shadow.hpp) validates these
// reports against observed accesses. DESIGN.md §13.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/footprint.hpp"
#include "xasm/program.hpp"

namespace xpulp::obs {
class Registry;
}

namespace xpulp::analysis {

/// Half-open byte range [begin, end).
struct AddrRange {
  addr_t begin = 0;
  addr_t end = 0;
  bool contains(addr_t lo, addr_t hi) const {  // [lo, hi) fully inside
    return lo >= begin && hi <= end;
  }
};

struct RaceOptions {
  FootprintOptions footprint;
  /// Shared ranges declared read-only: reads may overlap freely across
  /// cores there (that is their purpose), but any write into one is a
  /// conflict against the declaration.
  std::vector<AddrRange> read_only;
  /// Cap on reported conflicts (deduplicated by pc pair first).
  size_t max_conflicts = 64;
};

/// One cross-core conflict. core_b == -1 marks a write into a declared
/// read-only range (pc_b is unused then).
struct RaceConflict {
  DiagKind kind = DiagKind::kCrossCoreWriteWrite;
  int core_a = 0;
  int core_b = 0;
  addr_t pc_a = 0;
  addr_t pc_b = 0;
  AddrRange overlap;  // overlapping byte interval (bounding)
  std::string to_string() const;
};

struct RaceReport {
  std::vector<Footprint> footprints;  // per core, index = core id
  std::vector<RaceConflict> conflicts;
  /// Accesses the interval/stride domain could not bound: (core, access).
  std::vector<std::pair<int, StridedAccess>> unprovable;

  bool clean() const { return conflicts.empty() && unprovable.empty(); }
  /// Diagnostics form for gates and the CLI (addr = pc of the first
  /// access of each finding).
  AnalysisReport to_report() const;
  std::string to_string() const;
};

/// Do two strided accesses touch a common byte? Exact for dense/dense and
/// dense/strided pairs; strided/strided pairs use a sound gcd-phase test
/// (may over-approximate near interval edges). Top addresses are handled
/// by the caller (kUnprovableFootprint), not here.
bool accesses_overlap(const StridedAccess& a, const StridedAccess& b,
                      AddrRange* overlap);

/// Static cross-core race check: one program per core.
RaceReport analyze_races(const std::vector<xasm::Program>& programs,
                         const RaceOptions& opt = {});

/// Cluster pre-load gate adapter (structurally matches
/// cluster::Cluster::PreLoadGate): throws AnalysisError when the program
/// set has cross-core conflicts or — for multi-core sets — unprovable
/// footprints.
std::function<void(const std::vector<xasm::Program>&)> make_race_gate(
    RaceOptions opt = {});

/// One parallel kernel configuration checked by the sweep.
struct RaceCheck {
  std::string name;
  int cores = 1;
  RaceReport report;
};

/// Race-check the generated paper kernels in their parallel deployments:
/// conv variants x bit widths row-partitioned at 1/2/4/8 cores, linear
/// layers channel-tiled at 1/2/4/8 cores, pooling at 1 core (it has no
/// partitioning support). Every report is expected clean.
std::vector<RaceCheck> analyze_parallel_kernels(
    const std::vector<int>& core_counts = {1, 2, 4, 8});

/// Publish a report as metrics under `prefix` (e.g. "sim.race"):
/// .conflicts, .ww, .rw, .unprovable, .accesses, .cores, .clean.
void add_race_stats(obs::Registry& reg, const std::string& prefix,
                    const RaceReport& report);

}  // namespace xpulp::analysis
