#include "analysis/footprint.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <numeric>
#include <sstream>

#include "analysis/cfg.hpp"
#include "sim/quant_unit.hpp"

namespace xpulp::analysis {
namespace {

using isa::Mnemonic;
namespace iflag = isa::iflag;

constexpr u64 kWordSpan = 1ull << 32;

u32 gcd_u32(u32 a, u32 b) { return std::gcd(a, b); }

}  // namespace

// ---------------------------------------------------------------------------
// AVal lattice
// ---------------------------------------------------------------------------

AVal AVal::range(u32 lo, u32 hi, u32 stride) {
  if (lo == hi || stride == 0) return constant(lo);
  // Snap hi onto the progression so (hi - lo) is always a stride multiple.
  const u32 span = hi - lo;
  return {kRange, lo, lo + span / stride * stride, stride};
}

u64 AVal::count() const {
  switch (kind) {
    case kConst: return 1;
    case kRange: return static_cast<u64>(hi - lo) / stride + 1;
    default: return 0;
  }
}

bool AVal::operator==(const AVal& o) const {
  if (kind != o.kind) return false;
  if (kind == kConst) return lo == o.lo;
  if (kind == kRange) return lo == o.lo && hi == o.hi && stride == o.stride;
  return true;  // kBottom / kTop carry no payload
}

std::string AVal::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case kBottom: os << "bot"; break;
    case kTop: os << "top"; break;
    case kConst: os << "0x" << std::hex << lo; break;
    case kRange:
      os << "0x" << std::hex << lo << "..0x" << hi << std::dec << " step "
         << stride;
      break;
  }
  return os.str();
}

AVal aval_join(const AVal& a, const AVal& b) {
  if (a.kind == AVal::kBottom) return b;
  if (b.kind == AVal::kBottom) return a;
  if (a.kind == AVal::kTop || b.kind == AVal::kTop) return AVal::top();
  const u32 lo = std::min(a.lo, b.lo);
  const u32 hi = std::max(a.hi, b.hi);
  if (lo == hi) return AVal::constant(lo);
  u32 g = gcd_u32(a.stride, b.stride);
  g = gcd_u32(g, a.lo > b.lo ? a.lo - b.lo : b.lo - a.lo);
  if (g == 0) g = hi - lo;
  return AVal::range(lo, hi, g);
}

AVal aval_add(const AVal& a, const AVal& b) {
  if (a.kind == AVal::kBottom || b.kind == AVal::kBottom)
    return AVal::bottom();
  if (a.kind == AVal::kTop || b.kind == AVal::kTop) return AVal::top();
  if (a.is_const() && b.is_const()) return AVal::constant(a.lo + b.lo);
  // Range + const: interpret the constant as a signed displacement, so the
  // ubiquitous `addi rc, rc, -1` shifts the interval down instead of
  // smearing it across the wrapped address space.
  const AVal& r = a.is_const() ? b : a;
  if (a.is_const() || b.is_const()) {
    const i64 d = static_cast<i32>(a.is_const() ? a.lo : b.lo);
    const i64 lo = static_cast<i64>(r.lo) + d;
    const i64 hi = static_cast<i64>(r.hi) + d;
    if (lo < 0 || hi >= static_cast<i64>(kWordSpan)) return AVal::top();
    return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi), r.stride);
  }
  const u64 lo = static_cast<u64>(a.lo) + b.lo;
  const u64 hi = static_cast<u64>(a.hi) + b.hi;
  if (hi >= kWordSpan) return AVal::top();
  return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi),
                     gcd_u32(a.stride, b.stride));
}

AVal aval_sub(const AVal& a, const AVal& b) {
  if (a.kind == AVal::kBottom || b.kind == AVal::kBottom)
    return AVal::bottom();
  if (a.kind == AVal::kTop || b.kind == AVal::kTop) return AVal::top();
  if (a.is_const() && b.is_const()) return AVal::constant(a.lo - b.lo);
  if (b.is_const()) return aval_add(a, AVal::constant(0u - b.lo));
  const i64 lo = static_cast<i64>(a.lo) - b.hi;
  const i64 hi = static_cast<i64>(a.hi) - b.lo;
  if (lo < 0 || hi >= static_cast<i64>(kWordSpan)) return AVal::top();
  return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi),
                     gcd_u32(a.stride, b.stride));
}

AVal aval_shl(const AVal& a, unsigned sh) {
  sh &= 31;
  if (!a.is_bounded()) return a;
  const u64 hi = static_cast<u64>(a.hi) << sh;
  if (hi >= kWordSpan) {
    // Constants keep the hardware's wrapping semantics; ranges go to Top
    // rather than model a wrapped progression.
    if (a.is_const()) return AVal::constant(a.lo << sh);
    return AVal::top();
  }
  return AVal::range(a.lo << sh, static_cast<u32>(hi), a.stride << sh);
}

std::string StridedAccess::to_string() const {
  std::ostringstream os;
  os << (is_store ? "W" : "R") << size << " @0x" << std::hex << pc << std::dec
     << " " << addr.to_string();
  return os.str();
}

size_t Footprint::unprovable() const {
  size_t n = 0;
  for (const StridedAccess& a : accesses) n += a.addr.kind == AVal::kTop;
  return n;
}

size_t Footprint::reads() const {
  size_t n = 0;
  for (const StridedAccess& a : accesses) n += !a.is_store;
  return n;
}

size_t Footprint::writes() const {
  size_t n = 0;
  for (const StridedAccess& a : accesses) n += a.is_store;
  return n;
}

// ---------------------------------------------------------------------------
// Abstract state and transfer
// ---------------------------------------------------------------------------

namespace {

struct AbsState {
  bool feasible = false;
  std::array<AVal, 32> r{};

  static AbsState entry() {
    AbsState s;
    s.feasible = true;
    for (AVal& v : s.r) v = AVal::top();
    s.r[0] = AVal::constant(0);
    return s;
  }
  const AVal& get(unsigned reg) const { return r[reg & 31]; }
};

/// Join `o` into `s`; returns true if `s` changed. With `widen`, any
/// register that would change jumps straight to Top (termination valve for
/// cycles that are not summarizable loops, e.g. merged call/return webs).
bool join_state(AbsState& s, const AbsState& o, bool widen = false) {
  if (!o.feasible) return false;
  if (!s.feasible) {
    s = o;
    return true;
  }
  bool changed = false;
  for (unsigned i = 1; i < 32; ++i) {
    const AVal j = aval_join(s.r[i], o.r[i]);
    if (j != s.r[i]) {
      s.r[i] = widen ? AVal::top() : j;
      changed = true;
    }
  }
  return changed;
}

AbsState abs_transfer(const AbsState& s, const isa::Instr& in, addr_t addr) {
  AbsState o = s;
  o.feasible = true;
  const auto set = [&o](unsigned reg, const AVal& v) {
    if (reg != 0) o.r[reg] = v;
  };

  // Post-increment addressing writes the stepped base back to rs1 (the
  // increment register of the store forms lives in the rd field).
  if (in.has(iflag::kMemPostInc)) {
    if (in.has(iflag::kMemRegOff)) {
      const unsigned inc = in.has(iflag::kIsStore) ? in.rd : in.rs2;
      set(in.rs1, aval_add(s.get(in.rs1), s.get(inc)));
    } else {
      set(in.rs1, aval_add(s.get(in.rs1),
                           AVal::constant(static_cast<u32>(in.imm))));
    }
  }

  if (!in.has(iflag::kWritesRd)) return o;
  const unsigned rd = in.rd;
  if (in.has(iflag::kIsLoad)) {
    set(rd, AVal::top());
    return o;
  }
  const u32 imm = static_cast<u32>(in.imm);
  switch (in.op) {
    case Mnemonic::kLui: set(rd, AVal::constant(imm)); break;
    case Mnemonic::kAuipc: set(rd, AVal::constant(addr + imm)); break;
    case Mnemonic::kJal:
    case Mnemonic::kJalr: set(rd, AVal::constant(addr + in.size)); break;
    case Mnemonic::kAddi:
      set(rd, aval_add(s.get(in.rs1), AVal::constant(imm)));
      break;
    case Mnemonic::kAdd:
      set(rd, aval_add(s.get(in.rs1), s.get(in.rs2)));
      break;
    case Mnemonic::kSub:
      set(rd, aval_sub(s.get(in.rs1), s.get(in.rs2)));
      break;
    case Mnemonic::kSlli:
      set(rd, aval_shl(s.get(in.rs1), imm));
      break;
    case Mnemonic::kXori:
    case Mnemonic::kOri:
    case Mnemonic::kAndi:
    case Mnemonic::kSrli:
    case Mnemonic::kSrai: {
      // Bitwise/shift-right ops stay precise on constants only.
      const AVal& v = s.get(in.rs1);
      if (v.is_const()) {
        u32 x = v.lo;
        switch (in.op) {
          case Mnemonic::kXori: x ^= imm; break;
          case Mnemonic::kOri: x |= imm; break;
          case Mnemonic::kAndi: x &= imm; break;
          case Mnemonic::kSrli: x >>= (imm & 31); break;
          default: x = static_cast<u32>(static_cast<i32>(x) >> (imm & 31));
        }
        set(rd, AVal::constant(x));
      } else {
        set(rd, AVal::top());
      }
      break;
    }
    default:
      set(rd, AVal::top());
      break;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Loop forest
// ---------------------------------------------------------------------------

struct Loop {
  addr_t begin = 0;  // header address
  addr_t end = 0;    // one past the last body instruction
  int header = -1;   // instruction indices
  int latch = -1;
  bool is_hw = false;
  std::vector<addr_t> setup_addrs;  // hw: lp.setup/count sites
  unsigned counter_reg = 0;         // branch loops: the `bne rc, x0` reg
  bool counted = false;             // branch loop matches the counted idiom
  int parent = -1;
  bool dissolved = false;

  // Summarization state.
  AbsState entry_acc;   // join of all states flowing in from outside
  AbsState summarized;  // entry the current summary was computed from
  bool has_summary = false;

  bool contains(addr_t a) const { return a >= begin && a < end; }
};

/// Per-register behaviour across one loop iteration.
enum class RegMode : u8 { kInvariant, kShift, kReset, kTop };

struct ExitFlow {
  int from;  // body node the edge leaves
  int node;  // target outside the loop
  AbsState state;
};

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

class Solver {
 public:
  Solver(const CodeImage& image, const Cfg& cfg, const FootprintOptions& opt)
      : image_(image), cfg_(cfg), opt_(opt), n_(image.instrs().size()) {
    in_.resize(n_);
    visits_.resize(n_, 0);
  }

  void run(addr_t entry);
  Footprint extract() const;

 private:
  void build_loops(addr_t entry);
  void solve_region(int loop_id, int entry_node, const AbsState& entry_state,
                    bool skip_back_edges, std::vector<ExitFlow>* exits);
  void summarize_loop(int loop_id, std::vector<ExitFlow>* exits);
  void reset_body(const Loop& lp, bool clear_visits);
  bool hw_trip_count(const Loop& lp, u64* t) const;
  int loop_at(addr_t a, int within) const;

  const CodeImage& image_;
  const Cfg& cfg_;
  FootprintOptions opt_;
  size_t n_;
  std::vector<AbsState> in_;
  std::vector<u32> visits_;
  std::vector<Loop> loops_;
  std::vector<int> header_loop_;  // instr index -> loop id (or -1)
  size_t unsummarized_ = 0;
};

/// Innermost live loop containing `a`, restricted to strict descendants of
/// `within` (-1 = no restriction). Returns -1 if none.
int Solver::loop_at(addr_t a, int within) const {
  int best = -1;
  for (size_t i = 0; i < loops_.size(); ++i) {
    const Loop& lp = loops_[i];
    if (lp.dissolved || !lp.contains(a)) continue;
    if (static_cast<int>(i) == within) continue;
    if (within >= 0) {
      const Loop& w = loops_[static_cast<size_t>(within)];
      if (!(lp.begin >= w.begin && lp.end <= w.end)) continue;
    }
    if (best < 0 || (lp.begin >= loops_[static_cast<size_t>(best)].begin &&
                     lp.end <= loops_[static_cast<size_t>(best)].end)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void Solver::build_loops(addr_t entry) {
  const auto& instrs = image_.instrs();

  // Hardware loops from the CFG's setup scan (merging re-armed bodies).
  for (const HwLoop& h : cfg_.hwloops()) {
    bool merged = false;
    for (Loop& lp : loops_) {
      if (lp.is_hw && lp.begin == h.start && lp.end == h.end) {
        lp.setup_addrs.push_back(h.setup_addr);
        merged = true;
        break;
      }
    }
    if (merged) continue;
    Loop lp;
    lp.begin = h.start;
    lp.end = h.end;
    lp.is_hw = true;
    lp.setup_addrs.push_back(h.setup_addr);
    loops_.push_back(std::move(lp));
  }

  // Branch loops: backward conditional branches. The decrement-and-
  // `bne rc, x0` idiom gets a trip count; other shapes still become loop
  // regions and fall back to widening summaries.
  for (size_t i = 0; i < instrs.size(); ++i) {
    const DecodedInstr& d = instrs[i];
    if (d.illegal || !isa::is_branch(d.in.op)) continue;
    const addr_t target = d.addr + static_cast<u32>(d.in.imm);
    if (target > d.addr || image_.index_of(target) < 0) continue;
    Loop lp;
    lp.begin = target;
    lp.end = d.addr + d.in.size;
    lp.latch = static_cast<int>(i);
    lp.counted = d.in.op == Mnemonic::kBne && d.in.rs2 == 0;
    lp.counter_reg = d.in.rs1;
    bool dup = false;
    for (const Loop& e : loops_) {
      if (e.begin == lp.begin && e.end == lp.end) dup = true;
    }
    if (!dup) loops_.push_back(std::move(lp));
  }

  // Resolve indices; dissolve anything malformed.
  for (Loop& lp : loops_) {
    lp.header = image_.index_of(lp.begin);
    if (lp.header < 0 || lp.begin >= lp.end) {
      lp.dissolved = true;
      continue;
    }
    if (lp.latch < 0) {
      // Hardware loop: the unique instruction whose fall-through is `end`.
      for (size_t i = 0; i < instrs.size(); ++i) {
        if (!instrs[i].illegal &&
            instrs[i].addr + instrs[i].in.size == lp.end &&
            lp.contains(instrs[i].addr)) {
          lp.latch = static_cast<int>(i);
        }
      }
      if (lp.latch < 0) lp.dissolved = true;
    }
  }

  // Proper nesting: partial overlaps and shared headers dissolve both
  // parties (the parent region's widening valve still covers the cycle).
  for (size_t a = 0; a < loops_.size(); ++a) {
    for (size_t b = a + 1; b < loops_.size(); ++b) {
      Loop& x = loops_[a];
      Loop& y = loops_[b];
      if (x.dissolved || y.dissolved) continue;
      if (x.end <= y.begin || y.end <= x.begin) continue;  // disjoint
      const bool x_in_y = x.begin >= y.begin && x.end <= y.end;
      const bool y_in_x = y.begin >= x.begin && y.end <= x.end;
      if ((!x_in_y && !y_in_x) || x.begin == y.begin) {
        x.dissolved = true;
        y.dissolved = true;
      }
    }
  }

  // Every edge from outside a loop must enter at its header, and the
  // program entry must not start mid-body.
  const int entry_idx = image_.index_of(entry);
  for (Loop& lp : loops_) {
    if (lp.dissolved) continue;
    if (entry_idx >= 0 &&
        lp.contains(instrs[static_cast<size_t>(entry_idx)].addr) &&
        entry_idx != lp.header) {
      lp.dissolved = true;
      continue;
    }
    for (size_t i = 0; i < n_ && !lp.dissolved; ++i) {
      if (instrs[i].illegal || lp.contains(instrs[i].addr)) continue;
      for (const int s : cfg_.successors()[i]) {
        const addr_t sa = instrs[static_cast<size_t>(s)].addr;
        if (lp.contains(sa) && s != lp.header) lp.dissolved = true;
      }
    }
  }

  // Immediate parent: the smallest live loop strictly containing this one.
  for (size_t i = 0; i < loops_.size(); ++i) {
    Loop& lp = loops_[i];
    if (lp.dissolved) continue;
    for (size_t j = 0; j < loops_.size(); ++j) {
      if (i == j || loops_[j].dissolved) continue;
      const Loop& c = loops_[j];
      if (!(c.begin <= lp.begin && lp.end <= c.end)) continue;
      if (lp.parent < 0 ||
          (c.begin >= loops_[static_cast<size_t>(lp.parent)].begin &&
           c.end <= loops_[static_cast<size_t>(lp.parent)].end)) {
        lp.parent = static_cast<int>(j);
      }
    }
  }

  header_loop_.assign(n_, -1);
  for (size_t i = 0; i < loops_.size(); ++i) {
    if (!loops_[i].dissolved) {
      header_loop_[static_cast<size_t>(loops_[i].header)] =
          static_cast<int>(i);
    }
  }
}

/// Evaluate a hardware loop's trip count from its setup sites' in-states.
bool Solver::hw_trip_count(const Loop& lp, u64* t) const {
  bool have = false;
  u64 count = 0;
  for (const addr_t sa : lp.setup_addrs) {
    const int idx = image_.index_of(sa);
    if (idx < 0) return false;
    const AbsState& st = in_[static_cast<size_t>(idx)];
    if (!st.feasible) continue;  // dead setup site
    const isa::Instr& in = image_.instrs()[static_cast<size_t>(idx)].in;
    u64 c = 0;
    switch (in.op) {
      case Mnemonic::kLpSetupi: c = in.rs1; break;  // imm5 in the rs1 field
      case Mnemonic::kLpCounti: c = static_cast<u32>(in.imm); break;
      case Mnemonic::kLpSetup:
      case Mnemonic::kLpCount: {
        const AVal& v = st.get(in.rs1);
        if (!v.is_const()) return false;
        c = v.lo;
        break;
      }
      default: return false;
    }
    if (have && c != count) return false;  // ambiguous re-arming
    have = true;
    count = c;
  }
  if (!have || count == 0) return false;
  *t = count;
  return true;
}

void Solver::reset_body(const Loop& lp, bool clear_visits) {
  const auto& instrs = image_.instrs();
  for (size_t i = 0; i < n_; ++i) {
    if (!lp.contains(instrs[i].addr)) continue;
    in_[i] = AbsState{};
    if (clear_visits) visits_[i] = 0;
    const int hl = header_loop_[i];
    if (hl >= 0 && loops_[static_cast<size_t>(hl)].header ==
                       static_cast<int>(i) &&
        loops_[static_cast<size_t>(hl)].begin != lp.begin) {
      Loop& c = loops_[static_cast<size_t>(hl)];
      c.entry_acc = AbsState{};
      c.has_summary = false;
    }
  }
}

void Solver::solve_region(int loop_id, int entry_node,
                          const AbsState& entry_state, bool skip_back_edges,
                          std::vector<ExitFlow>* exits) {
  const auto& instrs = image_.instrs();
  const Loop* cur =
      loop_id >= 0 ? &loops_[static_cast<size_t>(loop_id)] : nullptr;

  std::deque<int> work;
  std::vector<bool> queued(n_, false);
  const auto push = [&](int i) {
    if (!queued[static_cast<size_t>(i)]) {
      queued[static_cast<size_t>(i)] = true;
      work.push_back(i);
    }
  };

  const auto route = [&](int from, int s, const AbsState& st) {
    const addr_t sa = instrs[static_cast<size_t>(s)].addr;
    if (cur != nullptr) {
      if (skip_back_edges && s == cur->header) return;  // loop back edge
      if (!cur->contains(sa)) {
        if (exits != nullptr) exits->push_back({from, s, st});
        return;
      }
    }
    const int inner = loop_at(sa, loop_id);
    if (inner >= 0) {
      // Climb to the direct child of this region; validated entry edges
      // land on its header only.
      int top = inner;
      while (loops_[static_cast<size_t>(top)].parent != loop_id &&
             loops_[static_cast<size_t>(top)].parent >= 0) {
        top = loops_[static_cast<size_t>(top)].parent;
      }
      Loop& direct = loops_[static_cast<size_t>(top)];
      if (s == direct.header) {
        if (join_state(direct.entry_acc, st)) push(s);
        return;
      }
      // Defensive: an unexpected mid-body edge degrades to a plain node
      // join (the widening valve keeps it terminating).
    }
    ++visits_[static_cast<size_t>(s)];
    const bool widen = visits_[static_cast<size_t>(s)] > opt_.max_passes;
    if (join_state(in_[static_cast<size_t>(s)], st, widen)) push(s);
  };

  // Seed the entry.
  const int entry_hl = header_loop_[static_cast<size_t>(entry_node)];
  if (entry_hl >= 0 && entry_hl != loop_id) {
    join_state(loops_[static_cast<size_t>(entry_hl)].entry_acc, entry_state);
    push(entry_node);
  } else {
    join_state(in_[static_cast<size_t>(entry_node)], entry_state);
    push(entry_node);
  }

  while (!work.empty()) {
    const int i = work.front();
    work.pop_front();
    queued[static_cast<size_t>(i)] = false;
    const int hl = header_loop_[static_cast<size_t>(i)];
    if (hl >= 0 && hl != loop_id) {
      // Child loop super-node: (re)summarize when its entry grew.
      Loop& c = loops_[static_cast<size_t>(hl)];
      if (!c.entry_acc.feasible) continue;
      if (c.has_summary) {
        AbsState probe = c.summarized;
        if (!join_state(probe, c.entry_acc)) continue;  // nothing new
      }
      std::vector<ExitFlow> child_exits;
      summarize_loop(hl, &child_exits);
      for (const ExitFlow& f : child_exits) route(f.from, f.node, f.state);
      continue;
    }
    const DecodedInstr& d = instrs[static_cast<size_t>(i)];
    if (d.illegal || !in_[static_cast<size_t>(i)].feasible) continue;
    const AbsState out =
        abs_transfer(in_[static_cast<size_t>(i)], d.in, d.addr);
    for (const int s : cfg_.successors()[static_cast<size_t>(i)]) {
      route(i, s, out);
    }
  }
}

void Solver::summarize_loop(int loop_id, std::vector<ExitFlow>* exits) {
  Loop& lp = loops_[static_cast<size_t>(loop_id)];
  const auto& instrs = image_.instrs();
  lp.summarized = lp.entry_acc;
  lp.has_summary = true;
  const AbsState s0 = lp.entry_acc;

  const auto body_solve = [&](const AbsState& header_state,
                              std::vector<ExitFlow>* flows) {
    reset_body(lp, /*clear_visits=*/true);
    solve_region(loop_id, lp.header, header_state, /*skip_back_edges=*/true,
                 flows);
  };

  const auto latch_out = [&]() -> AbsState {
    const AbsState& li = in_[static_cast<size_t>(lp.latch)];
    if (!li.feasible) return AbsState{};
    const DecodedInstr& d = instrs[static_cast<size_t>(lp.latch)];
    return abs_transfer(li, d.in, d.addr);
  };

  // Pass 1: one abstract iteration from the raw entry state.
  std::vector<ExitFlow> scratch;
  body_solve(s0, &scratch);
  const AbsState s1 = latch_out();

  // Trip count.
  u64 t = 0;
  bool have_t = false;
  if (s1.feasible) {
    if (lp.is_hw) {
      have_t = hw_trip_count(lp, &t);
    } else if (lp.counted) {
      // Counted branch loop: entry value N, per-iteration step -d (from
      // one abstract iteration), trips N/d when the division is exact.
      const AVal& c0 = s0.get(lp.counter_reg);
      const AVal& c1 = s1.get(lp.counter_reg);
      if (c0.is_const() && c1.is_const() && c0.lo != 0) {
        const i64 step = static_cast<i32>(c1.lo - c0.lo);
        if (step < 0 && c0.lo % static_cast<u64>(-step) == 0) {
          t = c0.lo / static_cast<u64>(-step);
          have_t = true;
        }
      }
    }
  }

  if (!have_t) {
    // Fallback: iterate the body with its back edge until the widening
    // valve converges. Sound (monotone to Top), imprecise.
    ++unsummarized_;
    reset_body(lp, /*clear_visits=*/true);
    std::vector<ExitFlow> flows;
    solve_region(loop_id, lp.header, s0, /*skip_back_edges=*/false, &flows);
    if (exits != nullptr) {
      for (ExitFlow& f : flows) exits->push_back(std::move(f));
    }
    return;
  }

  // Classify each register's one-iteration behaviour, then widen the
  // header to the exact iteration envelope {S0 + k*step, 0 <= k < T}.
  std::array<RegMode, 32> mode{};
  std::array<i64, 32> step{};
  step.fill(0);
  mode.fill(RegMode::kInvariant);
  AbsState h = s0;
  const auto widen_shift = [&](const AVal& v0, i64 d, u64 trips) -> AVal {
    const i64 total = d * (static_cast<i64>(trips) - 1);
    const i64 lo = static_cast<i64>(v0.lo) + std::min<i64>(0, total);
    const i64 hi = static_cast<i64>(v0.hi) + std::max<i64>(0, total);
    if (lo < 0 || hi >= static_cast<i64>(kWordSpan)) return AVal::top();
    const u32 g = gcd_u32(v0.stride, static_cast<u32>(d < 0 ? -d : d));
    return AVal::range(static_cast<u32>(lo), static_cast<u32>(hi),
                       g == 0 ? 1 : g);
  };
  const auto shift_of = [](const AVal& a, const AVal& b, i64* d) {
    if (!a.is_bounded() || !b.is_bounded()) return false;
    if (a.kind != b.kind || a.stride != b.stride) return false;
    const i64 dlo = static_cast<i64>(b.lo) - a.lo;
    if (dlo != static_cast<i64>(b.hi) - a.hi) return false;
    *d = dlo;
    return true;
  };
  for (unsigned r = 1; r < 32; ++r) {
    const AVal& v0 = s0.get(r);
    const AVal& v1 = s1.get(r);
    i64 d = 0;
    if (v1 == v0) {
      mode[r] = RegMode::kInvariant;
    } else if (shift_of(v0, v1, &d) && d != 0) {
      mode[r] = RegMode::kShift;
      step[r] = d;
      h.r[r] = widen_shift(v0, d, t);
      if (h.r[r].kind == AVal::kTop) mode[r] = RegMode::kTop;
    } else {
      mode[r] = RegMode::kReset;
      h.r[r] = aval_join(v0, v1);
      if (h.r[r].kind == AVal::kTop) mode[r] = RegMode::kTop;
    }
  }

  // Verification re-solve: prove the affine assumptions against the
  // widened header, demoting registers that fail until stable.
  AbsState s1v;
  for (unsigned round = 0;; ++round) {
    body_solve(h, &scratch);
    s1v = latch_out();
    if (!s1v.feasible) break;  // body no longer reaches the latch
    bool ok = true;
    for (unsigned r = 1; r < 32; ++r) {
      const AVal& got = s1v.get(r);
      switch (mode[r]) {
        case RegMode::kInvariant:
          if (got != h.r[r]) {
            mode[r] = RegMode::kReset;
            h.r[r] = aval_join(h.r[r], got);
            ok = false;
          }
          break;
        case RegMode::kShift: {
          // The body must advance the whole envelope by exactly `step`:
          // transfers are affine-or-Top, so equality on a multi-point
          // range certifies a uniform r += step along every path.
          const AVal want = aval_add(
              h.r[r],
              AVal::constant(static_cast<u32>(static_cast<u64>(step[r]))));
          if (got != want) {
            mode[r] = RegMode::kReset;
            h.r[r] = aval_join(h.r[r], got);
            ok = false;
          }
          break;
        }
        case RegMode::kReset:
          if (aval_join(h.r[r], got) != h.r[r]) {
            h.r[r] = aval_join(h.r[r], got);
            ok = false;
          }
          break;
        case RegMode::kTop:
          break;
      }
      if (h.r[r].kind == AVal::kTop) mode[r] = RegMode::kTop;
    }
    if (ok) break;
    if (round >= 8) {
      for (unsigned r = 1; r < 32; ++r) {
        if (mode[r] != RegMode::kInvariant) {
          mode[r] = RegMode::kTop;
          h.r[r] = AVal::top();
        }
      }
      body_solve(h, &scratch);
      s1v = latch_out();
      break;
    }
  }

  // Exit state on the latch fall-through: shifted registers take their
  // exact post-loop value S0 + T*step (the loop runs exactly T times).
  AbsState e = s1v;
  if (e.feasible) {
    for (unsigned r = 1; r < 32; ++r) {
      switch (mode[r]) {
        case RegMode::kInvariant: e.r[r] = s0.get(r); break;
        case RegMode::kShift: {
          const AVal& v0 = s0.get(r);
          const i64 total = step[r] * static_cast<i64>(t);
          const i64 lo = static_cast<i64>(v0.lo) + total;
          const i64 hi = static_cast<i64>(v0.hi) + total;
          if (lo < 0 || hi >= static_cast<i64>(kWordSpan)) {
            e.r[r] = AVal::top();
          } else {
            e.r[r] = AVal::range(static_cast<u32>(lo), static_cast<u32>(hi),
                                 v0.stride);
          }
          break;
        }
        default: break;  // kReset keeps s1v, kTop is already Top
      }
    }
  }

  // Final pass records the converged body in-states (used by extraction)
  // and collects break edges; the latch fall-through edge carries E
  // instead of the latch's raw out-state.
  std::vector<ExitFlow> flows;
  body_solve(h, &flows);
  const int fall = image_.index_of(lp.end);
  if (exits != nullptr) {
    for (ExitFlow& f : flows) {
      if (f.from == lp.latch && f.node == fall) continue;  // replaced by E
      exits->push_back(std::move(f));
    }
    if (e.feasible && fall >= 0) exits->push_back({lp.latch, fall, e});
  }
}

void Solver::run(addr_t entry) {
  build_loops(entry);
  const int e = image_.index_of(entry);
  if (e < 0) return;
  solve_region(-1, e, AbsState::entry(), /*skip_back_edges=*/false, nullptr);
}

Footprint Solver::extract() const {
  Footprint fp;
  fp.instr_count = n_;
  for (const Loop& lp : loops_) fp.loop_count += !lp.dissolved;
  fp.unsummarized = unsummarized_;
  for (size_t i = 0; i < n_; ++i) {
    const DecodedInstr& d = image_.instrs()[i];
    const AbsState& st = in_[i];
    if (d.illegal || !st.feasible) continue;
    const isa::Instr& in = d.in;
    if (in.mem_size > 0) {
      AVal ea;
      if (in.has(iflag::kMemPostInc)) {
        ea = st.get(in.rs1);  // post-inc addresses with the unmodified base
      } else if (in.has(iflag::kMemRegOff)) {
        const unsigned off = in.has(iflag::kIsStore) ? in.rd : in.rs2;
        ea = aval_add(st.get(in.rs1), st.get(off));
      } else {
        ea = aval_add(st.get(in.rs1),
                      AVal::constant(static_cast<u32>(in.imm)));
      }
      fp.accesses.push_back(
          {d.addr, in.has(iflag::kIsStore), in.mem_size, ea});
    } else if (in.op == Mnemonic::kPvQnt && opt_.model_qnt_reads) {
      // pv.qnt walks two threshold trees of `stride` bytes each at rs2.
      const unsigned q = isa::simd_elem_bits(in.fmt);
      const u32 stride = sim::QuantUnit::tree_stride_bytes(q);
      fp.accesses.push_back({d.addr, false, 2 * stride, st.get(in.rs2)});
    }
  }
  return fp;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Footprint FootprintAnalyzer::analyze(addr_t base, const std::vector<u8>& bytes,
                                     addr_t entry) const {
  std::vector<Diagnostic> scratch;  // decode diags are xlint's business
  const CodeImage image(base, bytes, scratch);
  const Cfg cfg(image, entry, scratch);
  Solver solver(image, cfg, opt_);
  solver.run(entry);
  return solver.extract();
}

Footprint FootprintAnalyzer::analyze(const xasm::Program& prog) const {
  std::vector<u8> bytes(prog.size_bytes());
  for (u32 i = 0; i < prog.size_words(); ++i) {
    const u32 w = prog.words()[i];
    bytes[i * 4 + 0] = static_cast<u8>(w);
    bytes[i * 4 + 1] = static_cast<u8>(w >> 8);
    bytes[i * 4 + 2] = static_cast<u8>(w >> 16);
    bytes[i * 4 + 3] = static_cast<u8>(w >> 24);
  }
  return analyze(prog.base(), bytes, prog.entry());
}

}  // namespace xpulp::analysis
