#include "analysis/cfg.hpp"

#include <array>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace xpulp::analysis {

namespace {

std::string hex(addr_t a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

}  // namespace

bool is_control_flow(const isa::Instr& in) {
  return isa::is_branch(in.op) || in.op == isa::Mnemonic::kJal ||
         in.op == isa::Mnemonic::kJalr;
}

bool is_terminator(const isa::Instr& in) {
  return in.op == isa::Mnemonic::kJal || in.op == isa::Mnemonic::kJalr ||
         in.op == isa::Mnemonic::kEcall || in.op == isa::Mnemonic::kEbreak;
}

CodeImage::CodeImage(addr_t base, const std::vector<u8>& bytes,
                     std::vector<Diagnostic>& diags)
    : base_(base), end_(base + static_cast<u32>(bytes.size())) {
  addr_t a = base;
  while (a < end_) {
    const size_t off = a - base;
    const u16 lo = static_cast<u16>(
        bytes[off] | (off + 1 < bytes.size() ? bytes[off + 1] << 8 : 0));
    const bool compressed = (lo & 3u) != 3u;
    DecodedInstr d;
    d.addr = a;
    unsigned advance;
    if (!compressed && off + 4 > bytes.size()) {
      d.illegal = true;
      advance = static_cast<unsigned>(bytes.size() - off);
      diags.push_back({DiagKind::kIllegalEncoding, Severity::kError, a,
                       "truncated instruction at end of image"});
    } else {
      u32 raw = lo;
      if (!compressed) {
        raw |= static_cast<u32>(bytes[off + 2]) << 16;
        raw |= static_cast<u32>(bytes[off + 3]) << 24;
      }
      try {
        d.in = isa::decode(raw, a);
        advance = d.in.size;
      } catch (const IllegalInstruction&) {
        d.illegal = true;
        advance = compressed ? 2 : 4;
        std::ostringstream os;
        os << "word 0x" << std::hex << raw << " does not decode";
        diags.push_back(
            {DiagKind::kIllegalEncoding, Severity::kError, a, os.str()});
      }
    }
    index_.emplace(a, static_cast<int>(instrs_.size()));
    instrs_.push_back(d);
    a += advance;
  }
}

int CodeImage::index_of(addr_t addr) const {
  const auto it = index_.find(addr);
  return it == index_.end() ? -1 : it->second;
}

Cfg::Cfg(const CodeImage& image, addr_t entry,
         std::vector<Diagnostic>& diags) {
  const size_t n = image.instrs().size();
  succ_.assign(n, {});
  reachable_.assign(n, false);
  falls_off_.assign(n, false);
  collect_hwloops(image, diags);
  wire_edges(image, diags);
  mark_reachable(image, entry);
}

void Cfg::collect_hwloops(const CodeImage& image,
                          std::vector<Diagnostic>& diags) {
  // Linear scan: the repo's generators (and RI5CY programming practice)
  // place the setup instructions directly before the loop, so program
  // order is the right approximation for matching starti/endi to count.
  std::array<std::optional<addr_t>, 2> pend_start{};
  std::array<std::optional<addr_t>, 2> pend_end{};
  using M = isa::Mnemonic;
  for (const DecodedInstr& d : image.instrs()) {
    if (d.illegal) continue;
    const unsigned l = d.in.imm2 & 1u;
    switch (d.in.op) {
      case M::kLpStarti:
        pend_start[l] = d.addr + static_cast<u32>(d.in.imm);
        break;
      case M::kLpEndi:
        pend_end[l] = d.addr + static_cast<u32>(d.in.imm);
        break;
      case M::kLpSetup:
      case M::kLpSetupi:
        loops_.push_back(
            {l, d.addr, d.addr + 4, d.addr + static_cast<u32>(d.in.imm)});
        break;
      case M::kLpCount:
      case M::kLpCounti:
        if (pend_start[l] && pend_end[l]) {
          loops_.push_back({l, d.addr, *pend_start[l], *pend_end[l]});
        } else {
          diags.push_back({DiagKind::kHwloopSetupOrder, Severity::kError,
                           d.addr,
                           std::string(isa::mnemonic_name(d.in.op)) +
                               " for loop " + std::to_string(l) +
                               " before lp.starti/lp.endi set its bounds"});
        }
        break;
      default:
        break;
    }
  }
}

void Cfg::wire_edges(const CodeImage& image, std::vector<Diagnostic>& diags) {
  const auto& instrs = image.instrs();
  std::vector<int> ret_sites;
  std::vector<int> call_fallthrough_idx;  // -1 = falls past the image end
  std::vector<int> call_sites;

  auto target_index = [&](const DecodedInstr& d, addr_t target) -> int {
    const int t = image.index_of(target);
    if (t < 0) {
      diags.push_back({DiagKind::kBadJumpTarget, Severity::kError, d.addr,
                       "control transfer to " + hex(target) +
                           (target >= image.base() && target < image.end()
                                ? " (mid-instruction)"
                                : " (outside the code image)")});
    }
    return t;
  };

  for (size_t i = 0; i < instrs.size(); ++i) {
    const DecodedInstr& d = instrs[i];
    if (d.illegal) continue;  // traps; no successors
    const isa::Instr& in = d.in;
    auto& out = succ_[i];

    // Fall-through edge (also fires the hardware-loop back edge below).
    addr_t ft = 0;
    if (!is_terminator(in)) {
      ft = d.addr + in.size;
      if (ft >= image.end()) {
        falls_off_[i] = true;
      } else {
        out.push_back(image.index_of(ft));
      }
    }

    if (in.op == isa::Mnemonic::kJal) {
      const addr_t target = d.addr + static_cast<u32>(in.imm);
      const int t = target_index(d, target);
      if (t >= 0) out.push_back(t);
      if (in.rd != 0) {
        // Call: the fall-through is reached through the callee's ret.
        call_sites.push_back(static_cast<int>(i));
        const addr_t after = d.addr + in.size;
        call_fallthrough_idx.push_back(
            after >= image.end() ? -1 : image.index_of(after));
      }
    } else if (in.op == isa::Mnemonic::kJalr) {
      if (in.rd == 0 && in.rs1 == 1 && in.imm == 0) {
        ret_sites.push_back(static_cast<int>(i));
      }
      // Any other jalr is an indirect jump with no static successors.
    } else if (isa::is_branch(in.op)) {
      const addr_t target = d.addr + static_cast<u32>(in.imm);
      const int t = target_index(d, target);
      if (t >= 0) out.push_back(t);
    }

    // Hardware-loop back edge: fall-through onto a loop's end address
    // re-enters the body at its start while the iteration count is > 0.
    if (ft != 0 || falls_off_[i]) {
      const addr_t after = d.addr + in.size;
      for (const HwLoop& loop : loops_) {
        if (after != loop.end || loop.start >= loop.end) continue;
        const int s = image.index_of(loop.start);
        if (s >= 0) out.push_back(s);
      }
    }
  }

  // Merged-context return edges: every ret may resume after any call.
  for (const int r : ret_sites) {
    for (size_t c = 0; c < call_sites.size(); ++c) {
      if (call_fallthrough_idx[c] >= 0) {
        succ_[static_cast<size_t>(r)].push_back(call_fallthrough_idx[c]);
      } else {
        falls_off_[static_cast<size_t>(call_sites[c])] = true;
      }
    }
  }
}

void Cfg::mark_reachable(const CodeImage& image, addr_t entry) {
  const int e = image.index_of(entry);
  if (e < 0) return;
  std::vector<int> work{e};
  reachable_[static_cast<size_t>(e)] = true;
  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    for (const int s : succ_[static_cast<size_t>(i)]) {
      if (!reachable_[static_cast<size_t>(s)]) {
        reachable_[static_cast<size_t>(s)] = true;
        work.push_back(s);
      }
    }
  }
}

}  // namespace xpulp::analysis
