// ProgramAnalyzer: the xlint entry point. Statically verifies an assembled
// RV32IMC + XpulpV2 + XpulpNN program image before it runs:
//   - full decode sweep (illegal words, reserved-field/non-canonical forms,
//     unreachable code);
//   - CFG + dataflow (reads of never-written registers, static TCDM
//     bounds/alignment of li-addressed accesses);
//   - RI5CY hardware-loop legality and XpulpNN operand conventions
//     (dot-product accumulator reuse, pv.qnt threshold-tree setup).
// DESIGN.md §9 documents the rule set and its sources.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/error.hpp"
#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::analysis {

struct AnalyzerOptions {
  /// TCDM size used for static bounds checks (0 disables them).
  u32 mem_size = mem::Memory::kDefaultSize;

  // ISA features of the target core; instructions needing an absent
  // feature are diagnosed instead of trapping at runtime.
  bool xpulpv2 = true;
  bool xpulpnn = true;
  bool hwloops = true;

  /// Registers assumed live-in at the entry point (bitmask; x0 is always
  /// initialized). Standalone kernels start from a cold register file, so
  /// the default assumes nothing; abi_entry_mask() models a function
  /// called under the RISC-V calling convention.
  u32 assume_initialized = 1;

  bool check_uninit_read = true;
  bool check_memory = true;
  bool check_hwloops = true;
  bool check_simd_conventions = true;

  /// sp/gp/tp/ra plus the a0-a7 argument registers.
  static u32 abi_entry_mask();

  /// Mirror a core configuration's ISA feature set.
  static AnalyzerOptions for_core(const sim::CoreConfig& cfg);
};

class ProgramAnalyzer {
 public:
  explicit ProgramAnalyzer(AnalyzerOptions opt = {}) : opt_(opt) {}

  /// Analyze an assembled program (entry == base for Assembler output).
  AnalysisReport analyze(const xasm::Program& prog) const;

  /// Analyze raw image bytes loaded at `base`, entering at `entry`.
  AnalysisReport analyze(addr_t base, const std::vector<u8>& bytes,
                         addr_t entry) const;

  const AnalyzerOptions& options() const { return opt_; }

 private:
  AnalyzerOptions opt_;
};

/// Thrown by the pre-run gate when analysis finds errors.
class AnalysisError : public SimError {
 public:
  AnalysisError(std::string message, AnalysisReport report)
      : SimError(std::move(message)), report_(std::move(report)) {}
  const AnalysisReport& report() const { return report_; }

 private:
  AnalysisReport report_;
};

/// Build a Core/Cluster pre-run gate: on every reset with a known code
/// extent it re-analyzes the loaded image [entry, code_end) and throws
/// AnalysisError if any error-severity diagnostic is found.
sim::Core::PreRunGate make_pre_run_gate(AnalyzerOptions opt);

}  // namespace xpulp::analysis
