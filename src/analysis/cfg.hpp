// Decode sweep + control-flow graph over an assembled code image.
//
// The sweep walks [base, end) instruction by instruction (stepping by the
// decoded size, so RV32C code is handled), recording illegal words as
// diagnostics instead of throwing. The CFG is built at instruction
// granularity with:
//   - fall-through and branch/jump edges;
//   - call edges for jal with a link register, and merged-context return
//     edges from every `ret` (jalr x0, ra) back to every call site's
//     fall-through — the standard conservative interprocedural CFG;
//   - hardware-loop back edges from any instruction whose fall-through
//     address equals a loop's end address (RI5CY fires the back edge on
//     fall-through only).
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "isa/instruction.hpp"

namespace xpulp::analysis {

struct DecodedInstr {
  addr_t addr = 0;
  isa::Instr in;
  bool illegal = false;  // word failed to decode; `in` is invalid
};

/// One hardware loop discovered by the linear setup scan.
struct HwLoop {
  unsigned index = 0;      // L: 0 (inner) or 1 (outer)
  addr_t setup_addr = 0;   // the lp.setup/lp.count that armed the loop
  addr_t start = 0;
  addr_t end = 0;          // one past the last body instruction
};

class CodeImage {
 public:
  /// Decode-sweep `bytes` as the image of [base, base + bytes.size()).
  /// Illegal words become DecodedInstr{illegal} entries (advancing by the
  /// apparent instruction size) plus kIllegalEncoding diagnostics in
  /// `diags`.
  CodeImage(addr_t base, const std::vector<u8>& bytes,
            std::vector<Diagnostic>& diags);

  addr_t base() const { return base_; }
  addr_t end() const { return end_; }
  const std::vector<DecodedInstr>& instrs() const { return instrs_; }

  /// Index of the instruction at `addr`; -1 if `addr` is not an
  /// instruction boundary of the image.
  int index_of(addr_t addr) const;

 private:
  addr_t base_;
  addr_t end_;
  std::vector<DecodedInstr> instrs_;
  std::unordered_map<addr_t, int> index_;
};

class Cfg {
 public:
  /// Build the CFG for `image` with entry point `entry`. Emits
  /// kBadJumpTarget and kHwloopSetupOrder diagnostics discovered while
  /// wiring edges.
  Cfg(const CodeImage& image, addr_t entry, std::vector<Diagnostic>& diags);

  const std::vector<std::vector<int>>& successors() const { return succ_; }
  const std::vector<bool>& reachable() const { return reachable_; }
  bool is_reachable(int idx) const { return reachable_[static_cast<size_t>(idx)]; }
  const std::vector<HwLoop>& hwloops() const { return loops_; }

  /// True if instruction `idx` can fall through past the end of the image.
  bool falls_off_end(int idx) const { return falls_off_[static_cast<size_t>(idx)]; }

 private:
  void collect_hwloops(const CodeImage& image, std::vector<Diagnostic>& diags);
  void wire_edges(const CodeImage& image, std::vector<Diagnostic>& diags);
  void mark_reachable(const CodeImage& image, addr_t entry);

  std::vector<std::vector<int>> succ_;
  std::vector<bool> reachable_;
  std::vector<bool> falls_off_;
  std::vector<HwLoop> loops_;
};

/// True for instructions that redirect control flow (branches and jumps;
/// not ecall/ebreak, which halt this core).
bool is_control_flow(const isa::Instr& in);

/// True for instructions that never fall through to the next address.
bool is_terminator(const isa::Instr& in);

}  // namespace xpulp::analysis
