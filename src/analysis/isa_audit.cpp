#include "analysis/isa_audit.hpp"

#include <sstream>

#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/instruction.hpp"
#include "isa/isa_table.hpp"

namespace xpulp::analysis {

namespace {

using isa::Instr;
using isa::IsaTableEntry;
using isa::Mnemonic;
namespace iflag = isa::iflag;

std::string hex32(u32 w) {
  std::ostringstream os;
  os << "0x" << std::hex << w;
  return os.str();
}

std::string entry_name(const IsaTableEntry& e) {
  std::string n{isa::mnemonic_name(e.op)};
  if (e.fmt != isa::SimdFmt::kNone) {
    static constexpr const char* kSuffix[] = {"",      ".b",    ".sc.b",
                                              ".h",    ".sc.h", ".n",
                                              ".sc.n", ".c",    ".sc.c"};
    n += kSuffix[static_cast<unsigned>(e.fmt)];
  }
  return n;
}

/// Compare the operand fields two decodes agree on, consulting the
/// expected instruction's flags: a field is only architecturally
/// meaningful when the instruction reads or writes it (e.g. the raw rs2
/// field of `ebreak` is bit 20 of the fixed word, not an operand).
std::string compare_operands(const Instr& want, const Instr& got) {
  std::ostringstream os;
  if ((want.has(iflag::kWritesRd) || want.has(iflag::kReadsRd)) &&
      want.rd != got.rd) {
    os << " rd " << +want.rd << " != " << +got.rd;
  }
  if (want.has(iflag::kReadsRs1) && want.rs1 != got.rs1) {
    os << " rs1 " << +want.rs1 << " != " << +got.rs1;
  }
  if (want.has(iflag::kReadsRs2) && want.rs2 != got.rs2) {
    os << " rs2 " << +want.rs2 << " != " << +got.rs2;
  }
  return os.str();
}

}  // namespace

void AuditResult::merge(const AuditResult& o) {
  failures.insert(failures.end(), o.failures.begin(), o.failures.end());
  checked += o.checked;
}

AuditResult audit_table_disjoint() {
  AuditResult r;
  const auto& table = isa::isa_table();
  for (size_t a = 0; a < table.size(); ++a) {
    for (size_t b = a + 1; b < table.size(); ++b) {
      ++r.checked;
      // Two fixed patterns overlap iff they agree on every bit both
      // masks constrain.
      const u32 both = table[a].mask & table[b].mask;
      if (((table[a].match ^ table[b].match) & both) == 0) {
        r.failures.push_back("entries " + entry_name(table[a]) + " and " +
                             entry_name(table[b]) +
                             " overlap: no constrained bit separates them");
      }
    }
  }
  return r;
}

AuditResult audit_table_roundtrip() {
  AuditResult r;
  constexpr addr_t kPc = 0x1000;
  for (const IsaTableEntry& e : isa::isa_table()) {
    for (const Instr& sample : isa::canonical_samples(e)) {
      ++r.checked;
      const std::string name = entry_name(e);
      u32 w = 0;
      try {
        w = isa::encode(sample);
      } catch (const AsmError& err) {
        r.failures.push_back(name + ": sample does not encode: " + err.what());
        continue;
      }
      if ((w & e.mask) != e.match) {
        r.failures.push_back(name + ": encoded word " + hex32(w) +
                             " does not satisfy the entry's (mask, match)");
        continue;
      }
      Instr d;
      try {
        d = isa::decode(w, kPc);
      } catch (const IllegalInstruction&) {
        r.failures.push_back(name + ": encoded word " + hex32(w) +
                             " does not decode");
        continue;
      }
      if (d.op != sample.op || d.fmt != sample.fmt) {
        r.failures.push_back(name + ": word " + hex32(w) +
                             " decodes to a different mnemonic/format");
        continue;
      }
      const std::string fields = compare_operands(sample, d);
      if (!fields.empty()) {
        r.failures.push_back(name + ": operand mismatch after decode:" +
                             fields);
      }
      if (d.imm != sample.imm || d.imm2 != sample.imm2) {
        r.failures.push_back(name + ": immediate mismatch after decode (" +
                             std::to_string(sample.imm) + "/" +
                             std::to_string(sample.imm2) + " vs " +
                             std::to_string(d.imm) + "/" +
                             std::to_string(d.imm2) + ")");
      }
      u32 w2 = 0;
      try {
        w2 = isa::encode(d);
      } catch (const AsmError& err) {
        r.failures.push_back(name + ": decoded form does not re-encode: " +
                             err.what());
        continue;
      }
      if (w2 != w) {
        r.failures.push_back(name + ": re-encode not bit-identical (" +
                             hex32(w) + " vs " + hex32(w2) + ")");
      }
      if (isa::disassemble(d, kPc).empty()) {
        r.failures.push_back(name + ": disassembles to empty text");
      }
      // A canonical word must match exactly one table entry — its own.
      const IsaTableEntry* found = isa::isa_table_lookup(d.op, d.fmt);
      if (found == nullptr) {
        r.failures.push_back(name + ": decode is absent from the table");
      }
    }
  }
  return r;
}

AuditResult audit_compressed_space() {
  AuditResult r;
  constexpr addr_t kPc = 0x1000;
  for (u32 v = 0; v <= 0xffffu; ++v) {
    if ((v & 3u) == 3u) continue;  // 32-bit parcel, not RVC space
    ++r.checked;
    Instr d;
    try {
      d = isa::decode_compressed(static_cast<u16>(v), kPc);
    } catch (const IllegalInstruction&) {
      continue;  // rejecting is a valid answer; legality is spot-checked
                 // by the positive expansion tests
    }
    const std::string name = "parcel " + hex32(v);
    if (d.size != 2) {
      r.failures.push_back(name + ": expansion has size " +
                           std::to_string(d.size));
      continue;
    }
    // The expansion must be expressible as a canonical 32-bit
    // instruction that decodes back to the same operation.
    u32 w = 0;
    try {
      w = isa::encode(d);
    } catch (const AsmError& err) {
      r.failures.push_back(name + ": expansion does not encode: " +
                           err.what());
      continue;
    }
    Instr d32;
    try {
      d32 = isa::decode(w, kPc);
    } catch (const IllegalInstruction&) {
      r.failures.push_back(name + ": expansion word " + hex32(w) +
                           " does not decode");
      continue;
    }
    if (d32.op != d.op || d32.fmt != d.fmt) {
      r.failures.push_back(name + ": expansion and 32-bit decode disagree "
                                  "on the mnemonic");
      continue;
    }
    std::string fields = compare_operands(d, d32);
    if (!fields.empty()) {
      r.failures.push_back(name + ": operand mismatch vs 32-bit decode:" +
                           fields);
    }
    // ecall/ebreak keep raw field bits in the decoded record; their
    // immediates are not operands.
    if (d.op != Mnemonic::kEcall && d.op != Mnemonic::kEbreak &&
        (d32.imm != d.imm || d32.imm2 != d.imm2)) {
      r.failures.push_back(name + ": immediate mismatch vs 32-bit decode");
    }
  }
  return r;
}

std::vector<u32> illegal_encoding_bank() {
  std::vector<u32> bank;
  const auto word = [&bank](u32 opcode, u32 funct3 = 0, u32 funct7 = 0,
                            u32 rs2 = 0) {
    bank.push_back(opcode | (funct3 << 12) | (rs2 << 20) | (funct7 << 25));
  };

  // Major opcodes this core does not implement (F/D, AMO, RV64 spaces...).
  for (const u32 opc : {0x07u, 0x1bu, 0x27u, 0x2fu, 0x3bu, 0x47u, 0x4bu,
                        0x53u, 0x6bu, 0x77u, 0x7fu}) {
    word(opc);
  }

  // Reserved funct3 of the load/store spaces (standard and post-inc).
  for (const u32 f3 : {3u, 6u, 7u}) word(isa::kOpLoad, f3);
  for (const u32 f3 : {3u, 6u, 7u}) word(isa::kOpPulpLoadPost, f3);
  for (const u32 f3 : {3u, 5u, 7u}) word(isa::kOpStore, f3);
  for (const u32 f3 : {3u, 4u}) word(isa::kOpPulpStorePost, f3);

  // OP-IMM: shifts with nonzero/unknown funct7.
  word(isa::kOpOpImm, 1, 0x01);  // slli, funct7 != 0
  word(isa::kOpOpImm, 1, 0x20);
  word(isa::kOpOpImm, 5, 0x10);  // sr?i, funct7 not 0x00/0x20

  // OP: funct7 outside {0x00, 0x01, 0x20}, and 0x20 with a funct3 that
  // has no sub/sra assignment.
  word(isa::kOpOp, 0, 0x05);
  word(isa::kOpOp, 7, 0x20);
  word(isa::kOpOp, 1, 0x20);

  // JALR with a reserved funct3.
  word(isa::kOpJalr, 2);

  // SYSTEM: funct3 0 words other than ecall/ebreak; reserved funct3 4.
  word(isa::kOpSystem, 0, 0, 2);       // imm = 2 (uret slot, unsupported)
  bank.push_back(0x00000073u | (1u << 7));  // ecall with rd != 0
  word(isa::kOpSystem, 4);

  // PULP scalar space: reserved funct3, bad size codes, reserved ALU
  // funct7, bit-manipulation fields.
  word(isa::kOpPulpScalar, 5);
  word(isa::kOpPulpScalar, isa::kScalarLoadPostReg, 5);    // size code 5
  word(isa::kOpPulpScalar, isa::kScalarLoadRegReg, 0x7f);
  word(isa::kOpPulpScalar, isa::kScalarStorePostReg, 3);   // no p.sbu store
  word(isa::kOpPulpScalar, isa::kScalarStoreRegReg, 4);
  word(isa::kOpPulpScalar, isa::kScalarAlu, 18);           // past kMsu
  word(isa::kOpPulpScalar, isa::kScalarAlu, 0x7f);
  // p.extract with Is2 + Is3 + 1 > 32 (field runs past bit 31).
  word(isa::kOpPulpScalar, isa::kScalarBitmanipA, 31, 8);
  // Bit-manipulation group B op2 != 0 (only bset is assigned).
  word(isa::kOpPulpScalar, isa::kScalarBitmanipB, 1u << 5);

  // Hardware loops: reserved funct3.
  word(isa::kOpPulpHwloop, 6);
  word(isa::kOpPulpHwloop, 7);

  // SIMD: funct7 holes and per-op format restrictions.
  for (const u32 f7 : {15u, 30u, 31u, 36u, 0x7fu}) word(isa::kOpPulpSimd, 0, f7);
  // Mixed virtual dots carry no static format: any nonzero funct3 is a
  // reserved form, for every member of the family.
  for (const u32 f7 : {27u, 28u, 29u, 33u, 34u, 35u}) {
    word(isa::kOpPulpSimd, 1, f7);
    word(isa::kOpPulpSimd, 6, f7);
  }
  constexpr u32 kQnt = static_cast<u32>(isa::SimdFunct7::kQnt);
  word(isa::kOpPulpSimd, 0, kQnt);  // pv.qnt.b: not a sub-byte format
  word(isa::kOpPulpSimd, 5, kQnt);  // pv.qnt.n.sc: no scalar replication
  constexpr u32 kElem = static_cast<u32>(isa::SimdFunct7::kElemExtract);
  word(isa::kOpPulpSimd, 4, kElem);  // pv.extract.n: b/h only
  word(isa::kOpPulpSimd, 1, kElem);  // pv.extract.b.sc
  word(isa::kOpPulpSimd, 0, kElem, 4);  // pv.extract.b lane 4 of 4
  word(isa::kOpPulpSimd, 2, kElem, 2);  // pv.extract.h lane 2 of 2
  constexpr u32 kPack = static_cast<u32>(isa::SimdFunct7::kPack);
  word(isa::kOpPulpSimd, 0, kPack);  // pv.pack.b: h only
  constexpr u32 kShuffle = static_cast<u32>(isa::SimdFunct7::kShuffle);
  word(isa::kOpPulpSimd, 4, kShuffle);  // pv.shuffle.n: b/h only

  return bank;
}

std::vector<u16> illegal_compressed_bank() {
  return {
      0x0000,  // all-zero parcel (defined illegal by the RVC spec)
      0x8000,  // quadrant 0 funct3 100 (reserved)
      0x6101,  // c.addi16sp with imm = 0 (reserved)
      0x6001,  // c.lui x0-adjacent form with imm = 0
      0x9c01,  // quadrant 1 RV64-only arithmetic (c.subw space)
      0x4002,  // c.lwsp with rd = x0 (reserved)
      0x8002,  // c.jr with rs1 = x0 (reserved)
  };
}

AuditResult audit_illegal_bank() {
  AuditResult r;
  constexpr addr_t kPc = 0x1000;
  for (const u32 w : illegal_encoding_bank()) {
    ++r.checked;
    try {
      const Instr d = isa::decode(w, kPc);
      r.failures.push_back("illegal word " + hex32(w) +
                           " unexpectedly decodes as " +
                           std::string(isa::mnemonic_name(d.op)));
    } catch (const IllegalInstruction&) {
    }
  }
  for (const u16 v : illegal_compressed_bank()) {
    ++r.checked;
    try {
      const Instr d = isa::decode_compressed(v, kPc);
      r.failures.push_back("illegal parcel " + hex32(v) +
                           " unexpectedly decodes as " +
                           std::string(isa::mnemonic_name(d.op)));
    } catch (const IllegalInstruction&) {
    }
  }
  return r;
}

AuditResult audit_isa_encoding_space() {
  AuditResult r;
  r.merge(audit_table_disjoint());
  r.merge(audit_table_roundtrip());
  r.merge(audit_compressed_space());
  r.merge(audit_illegal_bank());
  return r;
}

}  // namespace xpulp::analysis
