// Static TCDM footprint analysis (the xrace static phase).
//
// Extends the xlint const-prop dataflow with a strided-interval abstract
// domain for address expressions: a register holds either a compile-time
// constant, a strided interval {lo, lo+stride, ..., hi} (affine induction
// through hardware loops, counted decrement-and-branch loops and
// post-increment addressing), or Top. Loops are summarized exactly:
//   - trip counts come from lp.setup/lp.count operands (evaluated in the
//     abstract state at the setup instruction) or, for counted branch
//     loops (`bne rc, x0` back edges), from the counter's entry value and
//     per-iteration step;
//   - per-register per-iteration deltas are detected from one abstract
//     pass over the body, the header state is widened to the exact
//     iteration envelope {S0 + k*delta, 0 <= k < T}, and a verification
//     re-solve proves the affine assumption (registers that fail demote
//     to reset mode or Top, so the result is sound by construction);
//   - loop exits carry the exact final value S0 + T*delta, so post-loop
//     pointers stay constants instead of smearing across the sweep.
//
// The output is the program's read/write footprint: one strided byte
// range per reachable memory access (pv.qnt threshold walks included),
// with Top addresses marked unprovable. src/analysis/race.{hpp,cpp}
// checks per-core footprints for pairwise disjointness. DESIGN.md §13.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/memory.hpp"
#include "xasm/program.hpp"

namespace xpulp::analysis {

/// Strided-interval abstract value: Bottom (no value), a single constant,
/// a finite arithmetic progression {lo + k*stride <= hi}, or Top.
struct AVal {
  enum Kind : u8 { kBottom, kConst, kRange, kTop };
  Kind kind = kBottom;
  u32 lo = 0;
  u32 hi = 0;      // inclusive; == lo for kConst
  u32 stride = 0;  // > 0 for kRange; (hi - lo) % stride == 0

  static AVal bottom() { return {}; }
  static AVal top() { return {kTop, 0, 0, 0}; }
  static AVal constant(u32 c) { return {kConst, c, c, 0}; }
  /// Normalizing range constructor (collapses to kConst when lo == hi).
  static AVal range(u32 lo, u32 hi, u32 stride);

  bool is_const() const { return kind == kConst; }
  bool is_bounded() const { return kind == kConst || kind == kRange; }
  /// Number of distinct values (1 for kConst; 0 for kBottom/kTop).
  u64 count() const;
  bool operator==(const AVal& o) const;
  bool operator!=(const AVal& o) const { return !(*this == o); }
  std::string to_string() const;
};

/// Least upper bound.
AVal aval_join(const AVal& a, const AVal& b);
/// Abstract +, - and constant-multiply (Top on u32 overflow of the hull).
AVal aval_add(const AVal& a, const AVal& b);
AVal aval_sub(const AVal& a, const AVal& b);
AVal aval_shl(const AVal& a, unsigned sh);

/// One strided memory range touched by one (reachable) instruction.
struct StridedAccess {
  addr_t pc = 0;
  bool is_store = false;
  unsigned size = 0;  // bytes per element access
  AVal addr;          // kTop => unprovable footprint
  /// First/one-past-last byte possibly touched (valid when addr bounded).
  addr_t first() const { return addr.lo; }
  addr_t last_end() const { return addr.hi + size; }
  std::string to_string() const;
};

/// A program's full footprint: every reachable memory access with its
/// strided byte range.
struct Footprint {
  std::vector<StridedAccess> accesses;
  size_t instr_count = 0;
  size_t loop_count = 0;       // summarized loops (hardware + branch)
  size_t unsummarized = 0;     // loops that fell back to Top summaries

  size_t unprovable() const;
  size_t reads() const;
  size_t writes() const;
};

struct FootprintOptions {
  /// Maximum solver passes before bailing to Top (safety valve; the
  /// generated kernels converge in far fewer).
  unsigned max_passes = 512;
  /// Treat pv.qnt as a read of its two threshold trees (2 * stride bytes
  /// at rs2), matching the quantization unit's memory traffic.
  bool model_qnt_reads = true;
};

class FootprintAnalyzer {
 public:
  explicit FootprintAnalyzer(FootprintOptions opt = {}) : opt_(opt) {}

  Footprint analyze(const xasm::Program& prog) const;
  Footprint analyze(addr_t base, const std::vector<u8>& bytes,
                    addr_t entry) const;

 private:
  FootprintOptions opt_;
};

}  // namespace xpulp::analysis
