// Forward dataflow over the instruction-granularity CFG: a product of
//   - must-initialized registers (intersection at joins) backing the
//     read-of-never-written-register diagnostic, and
//   - constant propagation (join of unequal constants -> unknown) backing
//     the static TCDM bounds/alignment and pv.qnt threshold checks.
// Loop-carried post-increment pointers naturally join to unknown after one
// back-edge pass, so address checks only fire where the address really is
// static (li-addressed accesses, setup code).
#pragma once

#include <array>
#include <vector>

#include "analysis/cfg.hpp"
#include "isa/instruction.hpp"

namespace xpulp::analysis {

struct RegState {
  u32 init = 1;    // bit r: register r definitely written (x0 always)
  u32 known = 1;   // bit r: register r holds the compile-time constant val[r]
  std::array<u32, 32> val{};
  bool feasible = false;  // some path reaches this point

  bool is_init(unsigned r) const { return (init >> (r & 31)) & 1u; }
  bool is_known(unsigned r) const { return (known >> (r & 31)) & 1u; }
  u32 value(unsigned r) const { return val[r & 31]; }
};

/// Meet `o` into `s`; returns true if `s` changed.
bool join(RegState& s, const RegState& o);

/// Abstract transfer of one instruction at `addr` (needed for auipc).
RegState transfer(const RegState& s, const isa::Instr& in, addr_t addr);

/// Fixpoint of the product analysis over `cfg` starting from `entry_state`
/// at the entry instruction. Returns the IN state of every instruction
/// (infeasible for instructions never reached).
std::vector<RegState> solve_dataflow(const CodeImage& image, const Cfg& cfg,
                                     addr_t entry, RegState entry_state);

}  // namespace xpulp::analysis
