#include "analysis/diagnostics.hpp"

#include <sstream>

namespace xpulp::analysis {

const char* diag_kind_name(DiagKind k) {
  switch (k) {
    case DiagKind::kIllegalEncoding: return "illegal-encoding";
    case DiagKind::kNonCanonicalEncoding: return "non-canonical-encoding";
    case DiagKind::kUnreachableCode: return "unreachable-code";
    case DiagKind::kBadJumpTarget: return "bad-jump-target";
    case DiagKind::kMissingIsaFeature: return "missing-isa-feature";
    case DiagKind::kUninitRead: return "uninit-read";
    case DiagKind::kTcdmOutOfBounds: return "tcdm-out-of-bounds";
    case DiagKind::kMisalignedAccess: return "misaligned-access";
    case DiagKind::kHwloopBodyTooShort: return "hwloop-body-too-short";
    case DiagKind::kHwloopBranchInBody: return "hwloop-branch-in-body";
    case DiagKind::kHwloopBadNesting: return "hwloop-bad-nesting";
    case DiagKind::kHwloopSetupOrder: return "hwloop-setup-order";
    case DiagKind::kHwloopEndsInControlFlow: return "hwloop-ends-in-control-flow";
    case DiagKind::kDotpAccumOverlap: return "dotp-accum-overlap";
    case DiagKind::kQntThresholdSetup: return "qnt-threshold-setup";
    case DiagKind::kFallOffEnd: return "fall-off-end";
    case DiagKind::kMisalignedStraddle: return "misaligned-straddle";
    case DiagKind::kCrossCoreWriteWrite: return "cross-core-write-write";
    case DiagKind::kCrossCoreReadWrite: return "cross-core-read-write";
    case DiagKind::kUnprovableFootprint: return "unprovable-footprint";
    case DiagKind::kMixedMpcState: return "mixed-mpc-state";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "error" : "warning") << " ["
     << diag_kind_name(kind) << "] at 0x" << std::hex << addr << std::dec
     << ": " << message;
  return os.str();
}

bool AnalysisReport::has_errors() const {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t AnalysisReport::count(DiagKind k) const {
  size_t n = 0;
  for (const Diagnostic& d : diags) n += d.kind == k;
  return n;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags) os << d.to_string() << "\n";
  os << instr_count << " instructions, " << reachable_count << " reachable, "
     << hwloop_count << " hardware loops, " << diags.size()
     << " diagnostics\n";
  return os.str();
}

}  // namespace xpulp::analysis
