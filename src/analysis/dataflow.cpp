#include "analysis/dataflow.hpp"

#include <deque>

namespace xpulp::analysis {

using isa::Mnemonic;
namespace iflag = isa::iflag;

bool join(RegState& s, const RegState& o) {
  if (!o.feasible) return false;
  if (!s.feasible) {
    s = o;
    return true;
  }
  bool changed = false;
  const u32 ninit = s.init & o.init;
  if (ninit != s.init) {
    s.init = ninit;
    changed = true;
  }
  u32 nknown = s.known & o.known;
  for (unsigned r = 1; r < 32; ++r) {
    if ((nknown >> r & 1u) && s.val[r] != o.val[r]) nknown &= ~(1u << r);
  }
  if (nknown != s.known) {
    s.known = nknown;
    changed = true;
  }
  return changed;
}

RegState transfer(const RegState& s, const isa::Instr& in, addr_t addr) {
  RegState o = s;
  o.feasible = true;
  const auto set_unknown = [&o](unsigned r) {
    if (r == 0) return;
    o.init |= 1u << r;
    o.known &= ~(1u << r);
  };
  const auto set_const = [&o](unsigned r, u32 v) {
    if (r == 0) return;
    o.init |= 1u << r;
    o.known |= 1u << r;
    o.val[r] = v;
  };

  // Post-increment addressing writes the stepped base back to rs1. The
  // increment register of the store forms lives in the rd field.
  if (in.has(iflag::kMemPostInc)) {
    const unsigned base = in.rs1;
    if (in.has(iflag::kMemRegOff)) {
      const unsigned inc = in.has(iflag::kIsStore) ? in.rd : in.rs2;
      if (s.is_known(base) && s.is_known(inc)) {
        set_const(base, s.value(base) + s.value(inc));
      } else {
        set_unknown(base);
      }
    } else if (s.is_known(base)) {
      set_const(base, s.value(base) + static_cast<u32>(in.imm));
    } else {
      set_unknown(base);
    }
  }

  if (!in.has(iflag::kWritesRd)) return o;
  const unsigned rd = in.rd;
  const u32 imm = static_cast<u32>(in.imm);
  switch (in.op) {
    case Mnemonic::kLui: set_const(rd, imm); break;
    case Mnemonic::kAuipc: set_const(rd, addr + imm); break;
    case Mnemonic::kJal:
    case Mnemonic::kJalr: set_const(rd, addr + in.size); break;
    case Mnemonic::kAddi:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) + imm);
      else set_unknown(rd);
      break;
    case Mnemonic::kXori:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) ^ imm);
      else set_unknown(rd);
      break;
    case Mnemonic::kOri:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) | imm);
      else set_unknown(rd);
      break;
    case Mnemonic::kAndi:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) & imm);
      else set_unknown(rd);
      break;
    case Mnemonic::kSlli:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) << (imm & 31));
      else set_unknown(rd);
      break;
    case Mnemonic::kSrli:
      if (s.is_known(in.rs1)) set_const(rd, s.value(in.rs1) >> (imm & 31));
      else set_unknown(rd);
      break;
    case Mnemonic::kAdd:
      if (s.is_known(in.rs1) && s.is_known(in.rs2)) {
        set_const(rd, s.value(in.rs1) + s.value(in.rs2));
      } else {
        set_unknown(rd);
      }
      break;
    case Mnemonic::kSub:
      if (s.is_known(in.rs1) && s.is_known(in.rs2)) {
        set_const(rd, s.value(in.rs1) - s.value(in.rs2));
      } else {
        set_unknown(rd);
      }
      break;
    default:
      set_unknown(rd);
      break;
  }
  return o;
}

std::vector<RegState> solve_dataflow(const CodeImage& image, const Cfg& cfg,
                                     addr_t entry, RegState entry_state) {
  const size_t n = image.instrs().size();
  std::vector<RegState> in_states(n);
  const int e = image.index_of(entry);
  if (e < 0) return in_states;

  entry_state.feasible = true;
  in_states[static_cast<size_t>(e)] = entry_state;

  std::deque<int> work{e};
  std::vector<bool> queued(n, false);
  queued[static_cast<size_t>(e)] = true;
  while (!work.empty()) {
    const int i = work.front();
    work.pop_front();
    queued[static_cast<size_t>(i)] = false;
    const DecodedInstr& d = image.instrs()[static_cast<size_t>(i)];
    if (d.illegal) continue;
    const RegState out = transfer(in_states[static_cast<size_t>(i)], d.in, d.addr);
    for (const int s : cfg.successors()[static_cast<size_t>(i)]) {
      if (join(in_states[static_cast<size_t>(s)], out) && !queued[static_cast<size_t>(s)]) {
        queued[static_cast<size_t>(s)] = true;
        work.push_back(s);
      }
    }
  }
  return in_states;
}

}  // namespace xpulp::analysis
