// Diagnostic records produced by the static program analyzer (xlint).
// Each diagnostic carries a machine-readable kind (tests key off it), a
// severity, the program address it anchors to, and a human message.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace xpulp::analysis {

enum class DiagKind : u8 {
  /// A word in the code image does not decode (would trap at runtime).
  kIllegalEncoding,
  /// Decodes, but re-encoding the decoded form yields different bits:
  /// the word sets fields the hardware ignores (reserved-field lint).
  kNonCanonicalEncoding,
  /// Instruction can never execute (not reachable from the entry point).
  kUnreachableCode,
  /// Branch/jump target outside the code image or not on an instruction
  /// boundary.
  kBadJumpTarget,
  /// Instruction requires an ISA extension the target core lacks.
  kMissingIsaFeature,
  /// A register is read on some path before any instruction writes it.
  kUninitRead,
  /// Statically-known data address falls outside TCDM.
  kTcdmOutOfBounds,
  /// Statically-known data address is misaligned for the access size
  /// (legal, but costs a stall cycle per access on RI5CY's LSU).
  kMisalignedAccess,
  /// Hardware-loop body shorter than the 2-instruction minimum.
  kHwloopBodyTooShort,
  /// Branch or jump crossing a hardware-loop body boundary.
  kHwloopBranchInBody,
  /// Hardware loops overlap without proper nesting, reuse a loop index,
  /// have an empty/inverted range, or nest with L0 outside L1.
  kHwloopBadNesting,
  /// lp.count/lp.counti issued before the loop's start/end are set.
  kHwloopSetupOrder,
  /// The last instruction of a hardware-loop body is a control-flow
  /// instruction (the back-edge only fires on fall-through).
  kHwloopEndsInControlFlow,
  /// Dot-product accumulator (rd of pv.sdot*) doubles as a vector operand.
  kDotpAccumOverlap,
  /// pv.qnt threshold pointer misaligned or trees out of TCDM bounds.
  kQntThresholdSetup,
  /// Execution can fall off the end of the code image.
  kFallOffEnd,
  /// Statically-known misaligned access straddling the end of the TCDM:
  /// the first SRAM transaction is in bounds, the second is not, so the
  /// access traps at runtime before any byte moves (the static mirror of
  /// the runtime trap-before-accounting fix).
  kMisalignedStraddle,
  /// xrace: two cores' write footprints overlap (silent lost updates).
  kCrossCoreWriteWrite,
  /// xrace: one core's write footprint overlaps another core's read
  /// footprint outside the declared read-only shared ranges.
  kCrossCoreReadWrite,
  /// xrace: an access's address could not be bounded by the interval/
  /// stride domain, so footprint disjointness is unprovable for it.
  kUnprovableFootprint,
  /// A mixed-format dot product (pv.mldot*/pv.mlsdot*) whose operand
  /// widths come from the mpc CSR can execute in a state xlint cannot
  /// prove legal: reachable with the reserved selector (error — traps at
  /// runtime), after a write of an unbounded runtime value, or with no
  /// dominating mpc write at all (relying on the reset default).
  kMixedMpcState,
};

enum class Severity : u8 { kWarning, kError };

const char* diag_kind_name(DiagKind k);

struct Diagnostic {
  DiagKind kind;
  Severity severity;
  addr_t addr;
  std::string message;

  std::string to_string() const;
};

struct AnalysisReport {
  std::vector<Diagnostic> diags;
  size_t instr_count = 0;
  size_t reachable_count = 0;
  size_t hwloop_count = 0;

  bool clean() const { return diags.empty(); }
  bool has_errors() const;
  size_t count(DiagKind k) const;
  std::string to_string() const;
};

}  // namespace xpulp::analysis
