// Static verification sweep over every paper kernel the generators can
// produce: conv variants (XpulpV2 8-bit, packed sub-byte baseline,
// shuffle-unpack ablation, XpulpNN software-/hardware-quantization),
// pooling (native sub-byte and unpack/repack), and linear layers — each
// analyzed against the ISA feature set of the core it targets. Used by
// `xlint --kernels` and the test harness; a kernel-generator bug that
// emits an illegal encoding, an uninitialized register read, or a
// malformed hardware loop shows up here before any simulation runs.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace xpulp::analysis {

struct KernelCheck {
  std::string name;        // e.g. "conv/xpulpnn_hwq/4b"
  AnalysisReport report;
};

/// Generate and analyze the full kernel matrix. Every entry's report is
/// expected clean (no diagnostics at all, warnings included).
std::vector<KernelCheck> analyze_paper_kernels();

}  // namespace xpulp::analysis
