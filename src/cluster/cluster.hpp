// Multi-core PULP cluster model — the scaling path the paper's conclusion
// points to (the XpulpNN core was subsequently integrated into 8-core PULP
// clusters; PULP-NN reports near-linear kernel scaling on such clusters).
//
// N XpulpNN cores share one L1 TCDM through a logarithmic interconnect with
// word-interleaved banks (PULP convention: 2 banks per core). The model:
//   - cores execute event-driven, always advancing the core with the
//     smallest local cycle count, so cross-core cycle ordering is exact;
//   - each data access claims its bank for the issuing cycle; when another
//     core holds the bank in the same cycle the access retries one cycle
//     later (round-robin arbitration), which is exactly one stall cycle
//     per conflict in RI5CY's blocking LSU;
//   - instruction fetches are served by per-core prefetch buffers
//     (PULP cluster I$) and do not touch the interconnect.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"

#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::cluster {

struct ClusterConfig {
  int num_cores = 8;
  u32 banks_per_core = 2;  // PULP TCDM banking factor
  sim::CoreConfig core = sim::CoreConfig::extended();
};

struct ClusterStats {
  cycles_t makespan = 0;           // cycles until the last core halted
  std::vector<cycles_t> core_cycles;
  u64 bank_conflicts = 0;
  u64 data_accesses = 0;

  double conflict_rate() const {
    return data_accesses ? static_cast<double>(bank_conflicts) /
                               static_cast<double>(data_accesses)
                         : 0.0;
  }
};

/// Serializable arbiter state: per-bank booking tables plus the cumulative
/// counters (src/ckpt carries this inside a cluster snapshot).
struct BankArbiterState {
  std::vector<cycles_t> last_cycle;
  std::vector<int> last_core;
  u64 conflicts = 0;
  u64 accesses = 0;
};

/// Word-interleaved TCDM bank arbiter.
class BankArbiter {
 public:
  explicit BankArbiter(u32 banks) : banks_(banks), last_cycle_(banks, ~0ull),
                                    last_core_(banks, -1) {}

  /// Core `core` accesses `addr` at its local `cycle`; returns stall
  /// cycles (0 or 1) and books the bank.
  unsigned access(int core, cycles_t cycle, addr_t addr) {
    ++accesses_;
    const u32 b = (addr >> 2) % banks_;
    if (last_cycle_[b] == cycle && last_core_[b] != core) {
      // Bank busy this cycle: retry next cycle.
      ++conflicts_;
      last_cycle_[b] = cycle + 1;
      last_core_[b] = core;
      return 1;
    }
    if (last_cycle_[b] == ~0ull || last_cycle_[b] < cycle ||
        last_core_[b] == core) {
      last_cycle_[b] = cycle;
      last_core_[b] = core;
      return 0;
    }
    // Bank already booked past this cycle (cascaded conflict).
    ++conflicts_;
    const unsigned stall = static_cast<unsigned>(last_cycle_[b] + 1 - cycle);
    last_cycle_[b] += 1;
    last_core_[b] = core;
    return stall;
  }

  u64 conflicts() const { return conflicts_; }
  u64 accesses() const { return accesses_; }

  /// Forget every bank booking (cumulative counters stay). Cores restart
  /// from local cycle 0 on a reload; stale bookings from a previous run
  /// would otherwise read as far-future reservations and charge absurd
  /// cascaded-conflict stalls.
  void reset_booking() {
    std::fill(last_cycle_.begin(), last_cycle_.end(), ~0ull);
    std::fill(last_core_.begin(), last_core_.end(), -1);
  }

  BankArbiterState state() const {
    return BankArbiterState{last_cycle_, last_core_, conflicts_, accesses_};
  }
  void restore(const BankArbiterState& s) {
    if (s.last_cycle.size() != banks_ || s.last_core.size() != banks_) {
      throw SimError("bank arbiter state does not match bank count");
    }
    last_cycle_ = s.last_cycle;
    last_core_ = s.last_core;
    conflicts_ = s.conflicts;
    accesses_ = s.accesses;
  }

 private:
  u32 banks_;
  std::vector<cycles_t> last_cycle_;
  std::vector<int> last_core_;
  u64 conflicts_ = 0;
  u64 accesses_ = 0;
};

/// Serializable cluster scheduling state: every core's architectural state
/// (whose perf.cycles are the scheduler's local clocks) plus the arbiter's
/// bank bookings. The shared memory is captured separately by src/ckpt.
struct ClusterState {
  std::vector<sim::CoreState> cores;
  BankArbiterState arbiter;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {});

  int num_cores() const { return static_cast<int>(cores_.size()); }
  mem::Memory& memory() { return mem_; }
  const mem::Memory& memory() const { return mem_; }
  sim::Core& core(int i) { return *cores_[static_cast<size_t>(i)]; }
  const sim::Core& core(int i) const { return *cores_[static_cast<size_t>(i)]; }
  const ClusterConfig& config() const { return cfg_; }

  /// Load one program per core (programs may live at distinct code bases
  /// in the shared memory) and reset every core to its entry point.
  void load(const std::vector<xasm::Program>& programs);

  /// Install a pre-run gate on every core (see sim::Core::PreRunGate);
  /// load() then verifies each per-core program before any of them runs.
  /// Call before load().
  void set_pre_run_gate(const sim::Core::PreRunGate& gate) {
    for (auto& c : cores_) c->set_pre_run_gate(gate);
  }

  /// Whole-cluster gate over the full program set, called by load() before
  /// anything is written to memory. Unlike the per-core pre-run gate this
  /// sees every core's program at once — xrace's static cross-core
  /// footprint check plugs in here (analysis::make_race_gate). Throwing
  /// aborts the load with no state mutated.
  using PreLoadGate = std::function<void(const std::vector<xasm::Program>&)>;
  void set_pre_load_gate(PreLoadGate gate) {
    pre_load_gate_ = std::move(gate);
  }

  /// Observer for every data access made while the cluster runs, invoked
  /// under the event-driven scheduler's exact cycle ordering: issuing core,
  /// its local cycle, the pc of the accessing instruction, the address,
  /// access size in bytes, direction, and the stall cycles the bank
  /// arbiter charged (nonzero exactly when the arbiter counted a
  /// conflict, so summing `conflict_stalls != 0` reproduces
  /// BankArbiter::conflicts() exactly — xtel's bank heatmap relies on
  /// this). xrace's shadow-memory phase plugs in here. Call before
  /// run()/begin_run().
  using AccessObserver = std::function<void(int core, cycles_t cycle,
                                            addr_t pc, addr_t addr,
                                            unsigned size, bool is_store,
                                            unsigned conflict_stalls)>;
  void set_access_observer(AccessObserver obs) {
    observer_ = std::move(obs);
  }

  /// Run event-driven until every core executed its ecall. Throws on any
  /// abnormal halt or if the instruction budget is exceeded. The arbiter
  /// access hook is uninstalled on every exit path (including guest
  /// faults), and a Cluster instance is fully re-runnable: load() again and
  /// run() again, with per-run counters starting fresh.
  ClusterStats run(u64 max_total_instructions = 2'000'000'000);

  // ---- Incremental stepping (checkpointing, fault injection) ----
  // run() is begin_run(); while (step_once()) ...; end_run(); plus budget
  // and halt-reason policy. External drivers use the pieces directly to
  // pause at arbitrary points, snapshot, restore and resume.

  /// Install the bank-arbiter access hook. Idempotent.
  void begin_run();
  /// Uninstall the hook and clear the active-core latch. Idempotent.
  void end_run();
  /// Schedule and execute one instruction on the core with the smallest
  /// local cycle count. Returns false once every core has halted. Only
  /// valid between begin_run() and end_run().
  bool step_once();

  /// Aggregate per-core cycle stats plus arbiter deltas against the given
  /// baselines (pass 0,0 for cumulative totals). Unlike run(), does not
  /// require cores to have halted via ecall.
  ClusterStats stats_since(u64 base_conflicts, u64 base_accesses) const;

  // ---- Snapshot/restore (src/ckpt) ----

  ClusterState save_state() const;
  /// Restore scheduling state into this (possibly live) cluster; core
  /// count and bank count must match. Decode caches are invalidated —
  /// callers restoring the shared memory must do that first.
  void restore_state(const ClusterState& s);

 private:
  ClusterConfig cfg_;
  mem::Memory mem_;
  std::vector<std::unique_ptr<sim::Core>> cores_;
  BankArbiter arbiter_;

  // Core currently stepping inside run(). One persistent access hook reads
  // these instead of run() rebuilding a std::function closure every step.
  sim::Core* active_core_ = nullptr;
  int active_core_id_ = -1;

  PreLoadGate pre_load_gate_;
  AccessObserver observer_;
};

}  // namespace xpulp::cluster
