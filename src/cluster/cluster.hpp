// Multi-core PULP cluster model — the scaling path the paper's conclusion
// points to (the XpulpNN core was subsequently integrated into 8-core PULP
// clusters; PULP-NN reports near-linear kernel scaling on such clusters).
//
// N XpulpNN cores share one L1 TCDM through a logarithmic interconnect with
// word-interleaved banks (PULP convention: 2 banks per core). The model:
//   - cores execute event-driven, always advancing the core with the
//     smallest local cycle count, so cross-core cycle ordering is exact;
//   - each data access claims its bank for the issuing cycle; when another
//     core holds the bank in the same cycle the access retries one cycle
//     later (round-robin arbitration), which is exactly one stall cycle
//     per conflict in RI5CY's blocking LSU;
//   - instruction fetches are served by per-core prefetch buffers
//     (PULP cluster I$) and do not touch the interconnect.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"

#include "mem/memory.hpp"
#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::cluster {

/// Scheduling policy of Cluster::run()/run_steps().
///  - kReference: interleave one instruction at a time, always stepping the
///    core with the smallest (local clock, core index) — the event-driven
///    reference whose cross-core ordering every other mode is measured
///    against.
///  - kBurst: deferred-arbitration burst scheduling (DESIGN.md §15). Cores
///    execute bounded bursts at full dispatch speed (fast path +
///    superblocks) while their TCDM accesses are logged instead of
///    arbitrated; a merge then replays the log through the bank arbiter in
///    provably-reference order and folds the resulting stalls back into
///    the cores' counters. Bit-identical to kReference for race-free
///    programs (xrace's pre-load gate is the safety precondition; programs
///    that read the cycle CSR, traced cores, or a contention injector
///    demote the run to kReference automatically).
enum class SchedulerMode { kReference, kBurst };

struct ClusterConfig {
  int num_cores = 8;
  u32 banks_per_core = 2;  // PULP TCDM banking factor
  sim::CoreConfig core = sim::CoreConfig::extended();
  SchedulerMode scheduler = SchedulerMode::kReference;
  /// Burst scheduling epoch width in cycles: each epoch advances every
  /// core to a common cycle horizon `min local clock + burst_horizon`
  /// before replaying the deferred accesses. Purely a host-performance
  /// knob — exactness never depends on it.
  u32 burst_horizon = 1536;
};

/// Host-side counters of the burst scheduler (zeroed by load()).
struct ClusterBurstStats {
  u64 epochs = 0;             // burst rounds completed
  u64 bursts = 0;             // per-core run_burst() calls
  u64 burst_instructions = 0; // instructions retired inside bursts
  u64 reference_instructions = 0;  // retired on reference segments
  u64 replayed_accesses = 0;  // accesses replayed through the merge
  u64 deferred_stall_cycles = 0;  // arbiter stalls assigned by the merge
  u64 fallback_runs = 0;      // whole runs demoted to reference scheduling
  double host_burst_seconds = 0;  // host time inside core bursts (phase 1)
  double host_merge_seconds = 0;  // host time replaying logs (phase 2)
};

struct ClusterStats {
  cycles_t makespan = 0;           // cycles until the last core halted
  std::vector<cycles_t> core_cycles;
  u64 bank_conflicts = 0;
  u64 data_accesses = 0;

  double conflict_rate() const {
    return data_accesses ? static_cast<double>(bank_conflicts) /
                               static_cast<double>(data_accesses)
                         : 0.0;
  }
};

/// Serializable arbiter state: per-bank booking tables plus the cumulative
/// counters (src/ckpt carries this inside a cluster snapshot).
struct BankArbiterState {
  std::vector<cycles_t> last_cycle;
  std::vector<int> last_core;
  u64 conflicts = 0;
  u64 accesses = 0;
};

/// Word-interleaved TCDM bank arbiter.
class BankArbiter {
 public:
  explicit BankArbiter(u32 banks)
      : banks_(banks),
        // Power-of-two bank counts (every PULP configuration: cores x
        // banking factor) select the bank with a mask; the modulo below
        // is a per-access integer divide, which the burst merge replays
        // millions of times.
        bank_mask_((banks & (banks - 1)) == 0 ? banks - 1 : 0),
        last_cycle_(banks, ~0ull),
        last_core_(banks, -1) {}

  /// Core `core` accesses `addr` at its local `cycle`; returns stall
  /// cycles (0 or 1) and books the bank.
  unsigned access(int core, cycles_t cycle, addr_t addr) {
    ++accesses_;
    const u32 w = addr >> 2;
    const u32 b = bank_mask_ != 0 || banks_ == 1 ? (w & bank_mask_)
                                                 : w % banks_;
    if (last_cycle_[b] == cycle && last_core_[b] != core) {
      // Bank busy this cycle: retry next cycle.
      ++conflicts_;
      last_cycle_[b] = cycle + 1;
      last_core_[b] = core;
      return 1;
    }
    if (last_cycle_[b] == ~0ull || last_cycle_[b] < cycle ||
        last_core_[b] == core) {
      last_cycle_[b] = cycle;
      last_core_[b] = core;
      return 0;
    }
    // Bank already booked past this cycle (cascaded conflict).
    ++conflicts_;
    const unsigned stall = static_cast<unsigned>(last_cycle_[b] + 1 - cycle);
    last_cycle_[b] += 1;
    last_core_[b] = core;
    return stall;
  }

  u64 conflicts() const { return conflicts_; }
  u64 accesses() const { return accesses_; }

  /// Forget every bank booking (cumulative counters stay). Cores restart
  /// from local cycle 0 on a reload; stale bookings from a previous run
  /// would otherwise read as far-future reservations and charge absurd
  /// cascaded-conflict stalls.
  void reset_booking() {
    std::fill(last_cycle_.begin(), last_cycle_.end(), ~0ull);
    std::fill(last_core_.begin(), last_core_.end(), -1);
  }

  BankArbiterState state() const {
    return BankArbiterState{last_cycle_, last_core_, conflicts_, accesses_};
  }
  void restore(const BankArbiterState& s) {
    if (s.last_cycle.size() != banks_ || s.last_core.size() != banks_) {
      throw SimError("bank arbiter state does not match bank count");
    }
    last_cycle_ = s.last_cycle;
    last_core_ = s.last_core;
    conflicts_ = s.conflicts;
    accesses_ = s.accesses;
  }

 private:
  u32 banks_;
  u32 bank_mask_;
  std::vector<cycles_t> last_cycle_;
  std::vector<int> last_core_;
  u64 conflicts_ = 0;
  u64 accesses_ = 0;
};

/// Serializable cluster scheduling state: every core's architectural state
/// (whose perf.cycles are the scheduler's local clocks) plus the arbiter's
/// bank bookings. The shared memory is captured separately by src/ckpt.
struct ClusterState {
  std::vector<sim::CoreState> cores;
  BankArbiterState arbiter;
};

/// Binary min-heap of (clock, core) pairs ordered lexicographically —
/// smallest clock first, ties broken by the smaller core index, which is
/// exactly the reference scheduler's first-lowest-index argmin. Replaces
/// the O(N) per-step scan in step_once() with O(log N) sift operations.
/// Keys are packed as (clock << 6) | core so the comparison is a single
/// u64 compare; clocks stay far below 2^58 under the 2e9-instruction
/// budget.
class MinClockHeap {
 public:
  static u64 key(cycles_t clock, int core) {
    return (clock << 6) | static_cast<u64>(core);
  }
  static cycles_t clock_of(u64 k) { return k >> 6; }
  static int core_of(u64 k) { return static_cast<int>(k & 63); }

  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  u64 top() const { return heap_[0]; }

  void push(u64 k) {
    heap_.push_back(k);
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t p = (i - 1) / 2;
      if (heap_[p] <= heap_[i]) break;
      std::swap(heap_[p], heap_[i]);
      i = p;
    }
  }

  void pop_top() {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down();
  }

  /// Replace the top element's clock (its core just stepped and advanced)
  /// and restore the heap property. The common per-step operation: one
  /// sift-down instead of pop+push.
  void update_top(u64 k) {
    heap_[0] = k;
    sift_down();
  }

 private:
  void sift_down() {
    size_t i = 0;
    const size_t n = heap_.size();
    while (true) {
      const size_t l = 2 * i + 1;
      const size_t r = l + 1;
      size_t m = i;
      if (l < n && heap_[l] < heap_[m]) m = l;
      if (r < n && heap_[r] < heap_[m]) m = r;
      if (m == i) return;
      std::swap(heap_[i], heap_[m]);
      i = m;
    }
  }

  std::vector<u64> heap_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {});

  int num_cores() const { return static_cast<int>(cores_.size()); }
  mem::Memory& memory() { return mem_; }
  const mem::Memory& memory() const { return mem_; }
  sim::Core& core(int i) { return *cores_[static_cast<size_t>(i)]; }
  const sim::Core& core(int i) const { return *cores_[static_cast<size_t>(i)]; }
  const ClusterConfig& config() const { return cfg_; }

  /// Load one program per core (programs may live at distinct code bases
  /// in the shared memory) and reset every core to its entry point.
  void load(const std::vector<xasm::Program>& programs);

  /// Install a pre-run gate on every core (see sim::Core::PreRunGate);
  /// load() then verifies each per-core program before any of them runs.
  /// Call before load().
  void set_pre_run_gate(const sim::Core::PreRunGate& gate) {
    for (auto& c : cores_) c->set_pre_run_gate(gate);
  }

  /// Whole-cluster gate over the full program set, called by load() before
  /// anything is written to memory. Unlike the per-core pre-run gate this
  /// sees every core's program at once — xrace's static cross-core
  /// footprint check plugs in here (analysis::make_race_gate). Throwing
  /// aborts the load with no state mutated.
  using PreLoadGate = std::function<void(const std::vector<xasm::Program>&)>;
  void set_pre_load_gate(PreLoadGate gate) {
    pre_load_gate_ = std::move(gate);
  }

  /// Observer for every data access made while the cluster runs, invoked
  /// under the event-driven scheduler's exact cycle ordering: issuing core,
  /// its local cycle, the pc of the accessing instruction, the address,
  /// access size in bytes, direction, and the stall cycles the bank
  /// arbiter charged (nonzero exactly when the arbiter counted a
  /// conflict, so summing `conflict_stalls != 0` reproduces
  /// BankArbiter::conflicts() exactly — xtel's bank heatmap relies on
  /// this). xrace's shadow-memory phase plugs in here. Call before
  /// run()/begin_run().
  using AccessObserver = std::function<void(int core, cycles_t cycle,
                                            addr_t pc, addr_t addr,
                                            unsigned size, bool is_store,
                                            unsigned conflict_stalls)>;
  void set_access_observer(AccessObserver obs) {
    observer_ = std::move(obs);
  }

  /// Run event-driven until every core executed its ecall. Throws on any
  /// abnormal halt or if the instruction budget is exceeded. The arbiter
  /// access hook is uninstalled on every exit path (including guest
  /// faults), and a Cluster instance is fully re-runnable: load() again and
  /// run() again, with per-run counters starting fresh.
  ///
  /// Under SchedulerMode::kBurst the budget stays exact: the run throws
  /// at precisely the same total retired-instruction index as the
  /// reference scheduler would, and the state at the trap matches the
  /// reference state at that index.
  ClusterStats run(u64 max_total_instructions = 2'000'000'000);

  /// Execute exactly `n` scheduler steps (total instructions across all
  /// cores, in reference interleaving order), or fewer if every core
  /// halts first. Returns the number actually executed. Under burst
  /// scheduling the stopping state is bit-identical to a reference run
  /// paused at the same index — mid-burst checkpoints are exact. Must be
  /// bracketed by begin_run()/end_run() like step_once(); guest faults
  /// propagate with the hook still installed (call end_run() to clean
  /// up), matching the step_once() contract.
  u64 run_steps(u64 n);

  /// Select the scheduling policy for subsequent run()/run_steps() calls.
  /// Burst scheduling silently demotes to reference when the loaded
  /// programs read the cycle CSR, a core has a trace hook, or memory has
  /// a contention injector (see ClusterBurstStats::fallback_runs).
  void set_scheduler(SchedulerMode m) { cfg_.scheduler = m; }
  SchedulerMode scheduler() const { return cfg_.scheduler; }

  const ClusterBurstStats& burst_stats() const { return burst_stats_; }

  // ---- Incremental stepping (checkpointing, fault injection) ----
  // run() is begin_run(); while (step_once()) ...; end_run(); plus budget
  // and halt-reason policy. External drivers use the pieces directly to
  // pause at arbitrary points, snapshot, restore and resume.

  /// Install the bank-arbiter access hook. Idempotent.
  void begin_run();
  /// Uninstall the hook and clear the active-core latch. Idempotent.
  void end_run();
  /// Schedule and execute one instruction on the core with the smallest
  /// local cycle count. Returns false once every core has halted. Only
  /// valid between begin_run() and end_run().
  bool step_once();

  /// Aggregate per-core cycle stats plus arbiter deltas against the given
  /// baselines (pass 0,0 for cumulative totals). Unlike run(), does not
  /// require cores to have halted via ecall.
  ClusterStats stats_since(u64 base_conflicts, u64 base_accesses) const;

  // ---- Snapshot/restore (src/ckpt) ----

  ClusterState save_state() const;
  /// Restore scheduling state into this (possibly live) cluster; core
  /// count and bank count must match. Decode caches are invalidated —
  /// callers restoring the shared memory must do that first.
  void restore_state(const ClusterState& s);

 private:
  // One deferred TCDM access, logged during a burst and replayed through
  // the bank arbiter by the merge. `start` is the issuing instruction's
  // start cycle (the scheduler's pick key for that instruction), `cycle`
  // the local cycle at which the access itself issues; both are pre-merge
  // coordinates — the merge adds the lane's pending stall offset. The
  // record type is shared with sim::Core so the superblock engine's slim
  // fast path can append to the lane log directly (set_burst_sink) without
  // a per-access std::function dispatch; interpreter and slow-path
  // accesses reach the same log through the logging hook, preserving
  // program order within each lane.
  using LaneEntry = sim::BurstAccess;

  // Per-core deferred-access log plus the stall bookkeeping that keeps
  // `true local clock = perf.cycles + (assigned - folded)` an invariant:
  // `assigned` counts every arbiter stall the merge charged this lane,
  // `folded` the part already added to the core's counters. Folding only
  // happens when the lane is drained (head == log.size()), because
  // advancing perf.cycles while logged accesses still await replay would
  // corrupt their merge keys.
  //
  // `cur_start`/`cur_offset` latch the stall offset once per instruction:
  // the reference charges hook stalls at the end of the issuing
  // instruction, so two accesses of the same instruction (pv.qnt's pair
  // of threshold fetches) issue at the same cycle — a stall assigned to
  // the first must not shift the second. Raw start cycles are strictly
  // increasing within a lane (instructions cost at least one cycle, and
  // folding only raises later starts), so `start != cur_start` detects a
  // new instruction exactly.
  struct BurstLane {
    std::vector<LaneEntry> log;
    size_t head = 0;
    u64 assigned = 0;
    u64 folded = 0;
    cycles_t cur_start = ~0ull;
    u64 cur_offset = 0;

    bool drained() const { return head == log.size(); }
    u64 pending_stalls() const { return assigned - folded; }
  };

  // ---- Burst engine (cluster.cpp) ----
  u64 drive(u64 target);
  u64 drive_reference(u64 target);
  u64 drive_burst(u64 target);
  u64 reference_segment(u64 max_steps, u64 budget);
  void pop_ready();
  void merge_epoch();
  void pop_entry(int core);
  void fold_lane(int core);
  bool burst_eligible() const;
  cycles_t true_clock(int core) const;

  ClusterConfig cfg_;
  mem::Memory mem_;
  std::vector<std::unique_ptr<sim::Core>> cores_;
  BankArbiter arbiter_;

  // Core currently stepping inside run(). One persistent access hook reads
  // these instead of run() rebuilding a std::function closure every step.
  sim::Core* active_core_ = nullptr;
  int active_core_id_ = -1;

  PreLoadGate pre_load_gate_;
  AccessObserver observer_;

  // ---- Burst scheduling state ----
  std::vector<BurstLane> lanes_;
  u64 lanes_pending_ = 0;       // logged-but-unreplayed entries, all lanes
  // While true, the shared access hook logs instead of arbitrating (burst
  // phase 1); reference scheduling and reference segments run with it
  // false and arbitrate at access time.
  bool logging_ = false;
  bool programs_use_cycle_csr_ = false;  // set by load()'s opcode scan
  ClusterBurstStats burst_stats_;
};

}  // namespace xpulp::cluster
