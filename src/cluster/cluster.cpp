#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xpulp::cluster {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      arbiter_(static_cast<u32>(cfg.num_cores) * cfg.banks_per_core) {
  if (cfg_.num_cores < 1 || cfg_.num_cores > 64) {
    throw SimError("cluster size out of range");
  }
  for (int i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<sim::Core>(mem_, cfg_.core));
  }
}

void Cluster::load(const std::vector<xasm::Program>& programs) {
  if (programs.size() != cores_.size()) {
    throw SimError("need exactly one program per core");
  }
  if (pre_load_gate_) pre_load_gate_(programs);
  for (size_t i = 0; i < programs.size(); ++i) {
    programs[i].load(mem_);
  }
  for (size_t i = 0; i < programs.size(); ++i) {
    cores_[i]->reset(programs[i].entry(),
                     programs[i].base() + programs[i].size_bytes());
  }
  // A reloaded cluster starts a fresh run: local clocks back to zero and
  // no bank bookings carried over. Leaving either in place leaks the
  // previous run's cycle state into the scheduler (stale perf.cycles pick
  // the wrong core; stale bookings charge far-future cascaded-conflict
  // stalls against cores restarting at cycle 0).
  for (auto& c : cores_) c->reset_perf();
  arbiter_.reset_booking();
  mem_.reset_stats();
}

void Cluster::begin_run() {
  // Route the stepping core's data accesses through the bank arbiter at
  // its current local cycle. Installed once per run; the scheduling loop
  // only updates active_core_/active_core_id_ instead of building a new
  // std::function closure per step.
  mem_.set_access_hook([this](addr_t a, unsigned size, bool is_store) {
    const cycles_t cycle = active_core_->perf().cycles;
    // Arbitrate first so the observer sees the stall the access was
    // charged (the arbiter books the bank either way).
    const unsigned stalls = arbiter_.access(active_core_id_, cycle, a);
    if (observer_) {
      observer_(active_core_id_, cycle, active_core_->pc(), a, size,
                is_store, stalls);
    }
    return stalls;
  });
}

void Cluster::end_run() {
  mem_.set_access_hook({});
  active_core_ = nullptr;
  active_core_id_ = -1;
}

bool Cluster::step_once() {
  // Pick the non-halted core with the smallest local time.
  sim::Core* next = nullptr;
  int next_id = -1;
  for (size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->halted()) continue;
    if (next == nullptr || cores_[i]->perf().cycles < next->perf().cycles) {
      next = cores_[i].get();
      next_id = static_cast<int>(i);
    }
  }
  if (next == nullptr) return false;  // all halted

  active_core_ = next;
  active_core_id_ = next_id;
  next->step();
  return true;
}

ClusterStats Cluster::stats_since(u64 base_conflicts,
                                  u64 base_accesses) const {
  ClusterStats stats;
  for (const auto& c : cores_) {
    stats.core_cycles.push_back(c->perf().cycles);
    stats.makespan = std::max(stats.makespan, c->perf().cycles);
  }
  stats.bank_conflicts = arbiter_.conflicts() - base_conflicts;
  stats.data_accesses = arbiter_.accesses() - base_accesses;
  return stats;
}

ClusterState Cluster::save_state() const {
  ClusterState s;
  s.cores.reserve(cores_.size());
  for (const auto& c : cores_) s.cores.push_back(c->save_state());
  s.arbiter = arbiter_.state();
  return s;
}

void Cluster::restore_state(const ClusterState& s) {
  if (s.cores.size() != cores_.size()) {
    throw SimError("cluster state does not match core count");
  }
  arbiter_.restore(s.arbiter);  // validates bank count before any mutation
  for (size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->restore_state(s.cores[i]);
    cores_[i]->invalidate_decode_cache();
  }
}

ClusterStats Cluster::run(u64 max_total_instructions) {
  u64 executed = 0;
  const u64 base_conflicts = arbiter_.conflicts();
  const u64 base_accesses = arbiter_.accesses();

  begin_run();
  // The hook must come down on *every* exit path: a guest fault escaping
  // step_once() would otherwise leave the arbiter hook (and its dangling
  // active-core latch) installed on the shared memory.
  try {
    while (step_once()) {
      if (++executed > max_total_instructions) {
        throw SimError("cluster instruction budget exceeded");
      }
    }
  } catch (...) {
    end_run();
    throw;
  }
  end_run();

  for (const auto& c : cores_) {
    if (c->halt_reason() != sim::HaltReason::kEcall) {
      throw SimError("a cluster core halted abnormally");
    }
  }
  return stats_since(base_conflicts, base_accesses);
}

}  // namespace xpulp::cluster
