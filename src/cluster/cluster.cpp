#include "cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace xpulp::cluster {

namespace {

// Burst-scheduler tuning. kSampleMargin is the folded-cycle gap a sampled
// core keeps between its burst horizon and its next sample deadline; it
// must exceed kBurstOvershoot plus the arbiter stalls the core can pick up
// in one epoch, so that sample fires only ever happen on fully-folded
// reference steps (fold_lane trips a SimError if the margin was not
// enough). kBurstOvershoot bounds how far past its horizon a burst can
// run: the longest single instruction or armed superblock op (divide ~35
// cycles, fused ops <= 64) with generous headroom.
constexpr cycles_t kSampleMargin = 2048;
constexpr cycles_t kBurstOvershoot = 256;
// Reference-segment chunk (in scheduler steps, times num_cores) used when
// an epoch could not burst every core — enough to carry a sampler-blocked
// core across its deadline.
constexpr u64 kRefChunk = 512;
constexpr u64 kInfKey = ~0ull;
constexpr cycles_t kNoClock = ~0ull;

double host_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Conservative scan for reads of the cycle CSR (cycle/cycleh and their
/// machine-mode aliases mcycle/mcycleh). A program that observes its own
/// cycle counter would see deferred (not yet folded) stall cycles mid-
/// burst, so such programs run under reference scheduling. The scan
/// decodes a candidate 32-bit word at every halfword offset — compressed
/// instructions make the stream 2-byte aligned — which can only
/// over-match (data or misaligned views that look like CSR reads demote
/// the run; never the reverse). instret reads are timing-independent
/// (both schedulers retire the identical per-core instruction sequence)
/// and stay eligible.
bool reads_cycle_csr(const xasm::Program& p) {
  const auto words = p.words();
  const u8* bytes = reinterpret_cast<const u8*>(words.data());
  const size_t nb = words.size() * 4;
  for (size_t off = 0; off + 4 <= nb; off += 2) {
    u32 raw;
    std::memcpy(&raw, bytes + off, 4);
    if ((raw & 0x7f) != 0x73) continue;        // SYSTEM major opcode
    if (((raw >> 12) & 0x7) == 0) continue;    // ecall/ebreak/mret, not CSR
    const u32 csr = raw >> 20;
    if (csr == 0xB00 || csr == 0xB80 || csr == 0xC00 || csr == 0xC80) {
      return true;
    }
  }
  return false;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      arbiter_(static_cast<u32>(cfg.num_cores) * cfg.banks_per_core) {
  if (cfg_.num_cores < 1 || cfg_.num_cores > 64) {
    throw SimError("cluster size out of range");
  }
  for (int i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<sim::Core>(mem_, cfg_.core));
  }
  lanes_.resize(static_cast<size_t>(cfg_.num_cores));
}

void Cluster::load(const std::vector<xasm::Program>& programs) {
  if (programs.size() != cores_.size()) {
    throw SimError("need exactly one program per core");
  }
  if (pre_load_gate_) pre_load_gate_(programs);
  for (size_t i = 0; i < programs.size(); ++i) {
    programs[i].load(mem_);
  }
  for (size_t i = 0; i < programs.size(); ++i) {
    cores_[i]->reset(programs[i].entry(),
                     programs[i].base() + programs[i].size_bytes());
  }
  // A reloaded cluster starts a fresh run: local clocks back to zero and
  // no bank bookings carried over. Leaving either in place leaks the
  // previous run's cycle state into the scheduler (stale perf.cycles pick
  // the wrong core; stale bookings charge far-future cascaded-conflict
  // stalls against cores restarting at cycle 0).
  for (auto& c : cores_) c->reset_perf();
  arbiter_.reset_booking();
  mem_.reset_stats();
  // Fresh run: no deferred accesses carried over, burst counters zeroed,
  // and the cycle-CSR eligibility scan redone for the new program set.
  for (auto& l : lanes_) l = BurstLane{};
  lanes_pending_ = 0;
  burst_stats_ = ClusterBurstStats{};
  programs_use_cycle_csr_ = false;
  for (const auto& p : programs) {
    if (reads_cycle_csr(p)) {
      programs_use_cycle_csr_ = true;
      break;
    }
  }
}

void Cluster::begin_run() {
  // Route the stepping core's data accesses through the bank arbiter at
  // its current local cycle. Installed once per run; the scheduling loop
  // only updates active_core_/active_core_id_ instead of building a new
  // std::function closure per step.
  mem_.set_access_hook([this](addr_t a, unsigned size,
                              bool is_store) -> unsigned {
    if (logging_) [[unlikely]] {
      // Burst phase 1: defer arbitration. Record the access in the
      // issuing core's lane — instruction start clock (the scheduler's
      // pick key), issue cycle and pc in the core's pre-merge local
      // coordinates (the superblock engine latches exact per-op values
      // when a hook is installed; the interpreter reports live ones) —
      // and charge nothing. merge_replay() later runs the entries
      // through the arbiter in provably-reference order and assigns the
      // stalls to the lane.
      // (The superblock slim path appends to the same per-lane log
      // directly through the core's burst sink; lanes_pending_ is
      // recomputed from the log sizes when the phase ends, so neither
      // path tracks it incrementally here.)
      BurstLane& lane = lanes_[static_cast<size_t>(active_core_id_)];
      const cycles_t start = active_core_->access_start();
      const cycles_t delta = active_core_->access_cycle() - start;
      if (delta > 0xffff) [[unlikely]] {
        throw SimError("internal: access issued >2^16 cycles into its "
                       "instruction; burst log delta overflow");
      }
      lane.log.push_back({start, active_core_->access_pc(), a,
                          static_cast<u16>(delta), static_cast<u8>(size),
                          static_cast<u8>(is_store)});
      return 0;
    }
    const cycles_t cycle = active_core_->perf().cycles;
    // Arbitrate first so the observer sees the stall the access was
    // charged (the arbiter books the bank either way).
    const unsigned stalls = arbiter_.access(active_core_id_, cycle, a);
    if (observer_) {
      observer_(active_core_id_, cycle, active_core_->pc(), a, size,
                is_store, stalls);
    }
    return stalls;
  });
}

void Cluster::end_run() {
  mem_.set_access_hook({});
  active_core_ = nullptr;
  active_core_id_ = -1;
  logging_ = false;
}

bool Cluster::step_once() {
  // Pick the non-halted core with the smallest local time.
  sim::Core* next = nullptr;
  int next_id = -1;
  for (size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->halted()) continue;
    if (next == nullptr || cores_[i]->perf().cycles < next->perf().cycles) {
      next = cores_[i].get();
      next_id = static_cast<int>(i);
    }
  }
  if (next == nullptr) return false;  // all halted

  active_core_ = next;
  active_core_id_ = next_id;
  next->step();
  return true;
}

// ---------------------------------------------------------------------------
// Burst scheduling (DESIGN.md §15)
//
// The reference scheduler calls the bank arbiter once per access, ordered by
// (issuing instruction's start clock, core index, within-core program
// order). Burst mode reproduces that exact call sequence without stepping
// per instruction: cores run bounded bursts at full dispatch speed while
// their accesses are only logged, then a k-way merge replays the logs
// through the arbiter in that same lexicographic order. Stalls the merge
// assigns are kept as a per-lane offset (`assigned - folded`) and folded
// into the core's counters only once its lane is drained, preserving the
// invariant `true local clock = perf.cycles + pending_stalls`.
// ---------------------------------------------------------------------------

cycles_t Cluster::true_clock(int core) const {
  return cores_[static_cast<size_t>(core)]->perf().cycles +
         lanes_[static_cast<size_t>(core)].pending_stalls();
}

bool Cluster::burst_eligible() const {
  if (programs_use_cycle_csr_) return false;
  if (mem_.contention_period() != 0) return false;
  for (const auto& c : cores_) {
    if (c->has_trace()) return false;
  }
  return true;
}

void Cluster::fold_lane(int core) {
  BurstLane& lane = lanes_[static_cast<size_t>(core)];
  if (!lane.drained()) {
    throw SimError("internal: folding an undrained burst lane");
  }
  lane.log.clear();
  lane.head = 0;
  const u64 pend = lane.pending_stalls();
  if (pend == 0) return;
  sim::Core& c = *cores_[static_cast<size_t>(core)];
  c.charge_deferred_stalls(pend);
  mem_.add_contention_stalls(pend);
  lane.folded = lane.assigned;
  // Sample fires must land on fully-folded boundaries (reference
  // segments); the burst horizon clamp keeps sampled cores kSampleMargin
  // folded cycles short of their deadline so the stalls folded here can
  // never carry them across it. If the program's conflict density defeats
  // the margin, fail loudly rather than emit a late sample.
  if (c.has_sampler() && c.perf().cycles >= c.next_sample_due()) {
    throw SimError(
        "burst scheduling overshot a sample boundary; lower burst_horizon "
        "or raise the sample interval");
  }
}

void Cluster::pop_entry(int core) {
  BurstLane& lane = lanes_[static_cast<size_t>(core)];
  const LaneEntry& e = lane.log[lane.head];
  if (e.start != lane.cur_start) {
    // New instruction: latch its stall offset. The reference charges hook
    // stalls at the issuing instruction's end, so accesses of one
    // instruction share a cycle base; stalls assigned below shift only
    // later instructions.
    lane.cur_start = e.start;
    lane.cur_offset = lane.pending_stalls();
  }
  const cycles_t cycle = e.start + e.cycle_delta + lane.cur_offset;
  const unsigned stalls = arbiter_.access(core, cycle, e.addr);
  if (observer_) {
    observer_(core, cycle, e.pc, e.addr, e.size, e.is_store != 0, stalls);
  }
  lane.assigned += stalls;
  lane.head += 1;
  --lanes_pending_;
  burst_stats_.replayed_accesses += 1;
  burst_stats_.deferred_stall_cycles += stalls;
  if (lane.drained()) fold_lane(core);
}

void Cluster::pop_ready() {
  // Replay every logged access whose merge key lexicographically precedes
  // the frontier — the smallest (true clock, core) over live cores, i.e.
  // the earliest point at which a *new* access could still be issued. The
  // frontier is recomputed every iteration: stalls assigned by a pop raise
  // that lane's remaining keys and its true clock in lockstep, so a stale
  // frontier could strand entries that are in fact ready.
  while (lanes_pending_ != 0) {
    u64 frontier = kInfKey;
    for (size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i]->halted()) continue;
      frontier = std::min(
          frontier, MinClockHeap::key(true_clock(static_cast<int>(i)),
                                      static_cast<int>(i)));
    }
    u64 best = kInfKey;
    int best_core = -1;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      const BurstLane& lane = lanes_[i];
      if (lane.head == lane.log.size()) continue;
      const LaneEntry& e = lane.log[lane.head];
      const u64 off = e.start == lane.cur_start ? lane.cur_offset
                                                : lane.pending_stalls();
      const u64 k = MinClockHeap::key(e.start + off, static_cast<int>(i));
      if (k < best) {
        best = k;
        best_core = static_cast<int>(i);
      }
    }
    if (best >= frontier) return;
    pop_entry(best_core);
  }
}

void Cluster::merge_epoch() {
  // Epoch-granularity replay, the hot merge path of drive_burst. Unlike
  // pop_ready() the frontier is computed ONCE: stalls assigned while
  // popping only ever RAISE true clocks, so a frontier that goes stale is
  // conservatively low — the merge under-pops and the leftover entries
  // simply roll into the next epoch (or the closing reference segment,
  // which uses the exact dynamic pop_ready). Per-lane head keys are
  // cached and only the popped lane's key is recomputed, making a pop
  // O(num_cores) over a contiguous u64 array instead of two full
  // true-clock/log scans.
  u64 frontier = kInfKey;
  for (size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->halted()) continue;
    frontier = std::min(
        frontier, MinClockHeap::key(true_clock(static_cast<int>(i)),
                                    static_cast<int>(i)));
  }
  u64 keys[64];
  const size_t n = lanes_.size();
  const auto head_key = [&](size_t i) -> u64 {
    const BurstLane& lane = lanes_[i];
    if (lane.head == lane.log.size()) return kInfKey;
    const LaneEntry& e = lane.log[lane.head];
    const u64 off = e.start == lane.cur_start ? lane.cur_offset
                                              : lane.pending_stalls();
    return MinClockHeap::key(e.start + off, static_cast<int>(i));
  };
  for (size_t i = 0; i < n; ++i) keys[i] = head_key(i);
  // Inlined pop loop (pop_entry's body, minus the per-pop stat stores,
  // which accumulate in locals): this runs once per logged access of the
  // entire simulation, and a function call plus four counter stores per
  // pop are measurable against the ~15ns budget.
  const bool observe = static_cast<bool>(observer_);
  u64 popped = 0;
  u64 stall_sum = 0;
  for (;;) {
    u64 best = keys[0];
    size_t bi = 0;
    for (size_t i = 1; i < n; ++i) {
      if (keys[i] < best) {
        best = keys[i];
        bi = i;
      }
    }
    if (best >= frontier) break;
    BurstLane& lane = lanes_[bi];
    const LaneEntry& e = lane.log[lane.head];
    if (e.start != lane.cur_start) {
      lane.cur_start = e.start;
      lane.cur_offset = lane.pending_stalls();
    }
    const cycles_t cycle = e.start + e.cycle_delta + lane.cur_offset;
    const unsigned stalls =
        arbiter_.access(static_cast<int>(bi), cycle, e.addr);
    if (observe) [[unlikely]] {
      observer_(static_cast<int>(bi), cycle, e.pc, e.addr, e.size,
                e.is_store != 0, stalls);
    }
    lane.assigned += stalls;
    lane.head += 1;
    stall_sum += stalls;
    ++popped;
    if (lane.head == lane.log.size()) {
      fold_lane(static_cast<int>(bi));
      keys[bi] = kInfKey;
    } else {
      keys[bi] = head_key(bi);
    }
  }
  lanes_pending_ -= popped;
  burst_stats_.replayed_accesses += popped;
  burst_stats_.deferred_stall_cycles += stall_sum;
}

u64 Cluster::reference_segment(u64 max_steps, u64 budget) {
  // Exact reference stepping interleaved with replay of still-pending
  // burst accesses. Every iteration pops all accesses ordered before the
  // frontier core's next instruction, folds that core's (now drained)
  // lane so its counters are true, then steps it through the arbitrating
  // hook — the global arbiter call sequence stays in lexicographic order
  // throughout. Used for sample deadlines, the band-closing tail of a
  // burst run, and the final drain (all cores halted makes the frontier
  // infinite, so pop_ready flushes every lane).
  u64 executed = 0;
  const u64 limit = std::min(max_steps, budget);
  while (executed < limit) {
    pop_ready();
    u64 frontier = kInfKey;
    for (size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i]->halted()) continue;
      frontier = std::min(
          frontier, MinClockHeap::key(true_clock(static_cast<int>(i)),
                                      static_cast<int>(i)));
    }
    if (frontier == kInfKey) break;  // all halted (lanes flushed)
    const int id = MinClockHeap::core_of(frontier);
    // All of this core's logged accesses order strictly before its next
    // instruction, so pop_ready drained its lane; folding makes
    // perf.cycles the true clock before the step issues real accesses.
    fold_lane(id);
    active_core_ = cores_[static_cast<size_t>(id)].get();
    active_core_id_ = id;
    active_core_->step();
    ++executed;
  }
  burst_stats_.reference_instructions += executed;
  return executed;
}

u64 Cluster::drive_burst(u64 target) {
  const u64 n_cores = cores_.size();
  const cycles_t delta = cfg_.burst_horizon != 0 ? cfg_.burst_horizon : 1;
  // Band-closing slack: one epoch retires at most num_cores *
  // (burst_horizon + overshoot) instructions (every instruction costs at
  // least one cycle), and closing the band afterwards costs at most the
  // same again, so stopping the epoch loop this many steps short of the
  // target guarantees the tail reference segment reaches the exact target
  // index with every lane drained — the stopping state is bit-identical
  // to a reference run paused there.
  const u64 slack = 2 * n_cores * (delta + kBurstOvershoot);
  u64 executed = 0;
  // Give every core a direct sink into its lane log so the superblock
  // engine's slim fast path can log accesses without the hook's
  // std::function dispatch (and, crucially, stay slim-eligible at all:
  // has_access_hook() alone would force the armed slow path). The sink
  // must come down on every exit — a stale pointer would dangle into a
  // cleared lane on the next load().
  for (size_t i = 0; i < n_cores; ++i) {
    cores_[i]->set_burst_sink(&lanes_[i].log);
  }
  const auto clear_sinks = [&] {
    for (auto& c : cores_) c->set_burst_sink(nullptr);
  };
  try {
  while (executed + slack < target) {
    cycles_t min_true = kNoClock;
    for (size_t i = 0; i < n_cores; ++i) {
      if (cores_[i]->halted()) continue;
      min_true = std::min(min_true, true_clock(static_cast<int>(i)));
    }
    if (min_true == kNoClock) break;  // all halted
    cycles_t horizon = min_true + delta;
    // Sample boundaries must be crossed on reference steps with every
    // lane advanced in exact global key order: a Sample diffs the
    // *shared* TCDM stats, so if any other core had already burst past
    // the boundary cycle, the window would see accesses the reference
    // scheduler orders after it. Clamp every core's horizon a margin
    // short of the earliest sampled deadline (fold_lane's tripwire
    // guards the margin); the reference segment below then carries the
    // whole cluster across the boundary in reference order.
    for (size_t i = 0; i < n_cores; ++i) {
      const sim::Core& c = *cores_[i];
      if (c.halted() || !c.has_sampler()) continue;
      const cycles_t due = c.next_sample_due();
      horizon = std::min(horizon,
                         due > kSampleMargin ? due - kSampleMargin : 0);
    }

    // Phase 1: burst every live core to the horizon, logging accesses.
    const double t0 = host_now();
    const u64 before = executed;
    bool any_skipped = false;
    logging_ = true;
    for (size_t i = 0; i < n_cores; ++i) {
      sim::Core& c = *cores_[i];
      if (c.halted()) continue;
      const u64 pend = lanes_[i].pending_stalls();
      const cycles_t hz = horizon;
      if (hz <= c.perf().cycles + pend) {
        any_skipped = true;
        continue;
      }
      active_core_ = &c;
      active_core_id_ = static_cast<int>(i);
      // The horizon is a true-clock bound; the core compares its folded
      // cycle counter, so subtract the lane's pending offset.
      const u64 n = c.run_burst(hz - pend, target - executed);
      executed += n;
      burst_stats_.bursts += 1;
      burst_stats_.burst_instructions += n;
    }
    logging_ = false;
    // Sink pushes bypass the hook, so the pending count is reconciled
    // from the per-lane logs once per epoch instead of per access.
    lanes_pending_ = 0;
    for (const auto& l : lanes_) lanes_pending_ += l.log.size() - l.head;

    // Phase 2: replay everything ordered before the new frontier.
    const double t1 = host_now();
    merge_epoch();
    burst_stats_.host_burst_seconds += t1 - t0;
    burst_stats_.host_merge_seconds += host_now() - t1;
    burst_stats_.epochs += 1;

    // A sampler-blocked core only advances on reference steps; a chunk of
    // them also guarantees forward progress if no core had burst room.
    if (any_skipped || executed == before) {
      executed += reference_segment(n_cores * kRefChunk, target - executed);
    }
  }
  // Close the band: the remaining steps run on the replay-aware reference
  // scheduler, which drains every lane as the frontier passes it.
  executed += reference_segment(~0ull, target - executed);
  if (lanes_pending_ != 0) {
    throw SimError("internal: burst band failed to close");
  }
  } catch (...) {
    clear_sinks();
    throw;
  }
  clear_sinks();
  return executed;
}

u64 Cluster::drive_reference(u64 target) {
  // Small clusters: cached-key argmin over a contiguous array. The scan
  // is branch-predictable and touches one cache line, which beats the
  // heap's data-dependent sift until the core count grows well past
  // hardware cluster sizes (measured on the paper deployment: the scan
  // is ~25% faster at 8 cores). Keys pack (clock, core) exactly like the
  // heap so the pick order is identical.
  if (cores_.size() <= 16) {
    u64 keys[16];
    size_t live = 0;
    for (size_t i = 0; i < cores_.size(); ++i) {
      keys[i] = cores_[i]->halted()
                    ? ~0ull
                    : MinClockHeap::key(cores_[i]->perf().cycles,
                                        static_cast<int>(i));
      if (keys[i] != ~0ull) ++live;
    }
    u64 executed = 0;
    while (executed < target && live != 0) {
      u64 best = keys[0];
      size_t bi = 0;
      for (size_t i = 1; i < cores_.size(); ++i) {
        if (keys[i] < best) {
          best = keys[i];
          bi = i;
        }
      }
      sim::Core& c = *cores_[bi];
      active_core_ = &c;
      active_core_id_ = static_cast<int>(bi);
      c.step();
      ++executed;
      if (c.halted()) {
        keys[bi] = ~0ull;
        --live;
      } else {
        keys[bi] = MinClockHeap::key(c.perf().cycles,
                                     static_cast<int>(bi));
      }
    }
    return executed;
  }
  // Large clusters: O(log N) pick via the min-heap. The key packs
  // (local clock, core index), so the top is exactly the argmin
  // step_once() computes — smallest clock, ties to the lowest index.
  MinClockHeap heap;
  for (size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->halted()) continue;
    heap.push(MinClockHeap::key(cores_[i]->perf().cycles,
                                static_cast<int>(i)));
  }
  u64 executed = 0;
  while (executed < target && !heap.empty()) {
    const int id = MinClockHeap::core_of(heap.top());
    sim::Core& c = *cores_[static_cast<size_t>(id)];
    active_core_ = &c;
    active_core_id_ = id;
    c.step();
    ++executed;
    if (c.halted()) {
      heap.pop_top();
    } else {
      heap.update_top(MinClockHeap::key(c.perf().cycles, id));
    }
  }
  return executed;
}

u64 Cluster::drive(u64 target) {
  if (cfg_.scheduler == SchedulerMode::kBurst) {
    if (burst_eligible()) return drive_burst(target);
    burst_stats_.fallback_runs += 1;
  }
  return drive_reference(target);
}

u64 Cluster::run_steps(u64 n) { return drive(n); }

ClusterStats Cluster::stats_since(u64 base_conflicts,
                                  u64 base_accesses) const {
  ClusterStats stats;
  for (const auto& c : cores_) {
    stats.core_cycles.push_back(c->perf().cycles);
    stats.makespan = std::max(stats.makespan, c->perf().cycles);
  }
  stats.bank_conflicts = arbiter_.conflicts() - base_conflicts;
  stats.data_accesses = arbiter_.accesses() - base_accesses;
  return stats;
}

ClusterState Cluster::save_state() const {
  ClusterState s;
  s.cores.reserve(cores_.size());
  for (const auto& c : cores_) s.cores.push_back(c->save_state());
  s.arbiter = arbiter_.state();
  return s;
}

void Cluster::restore_state(const ClusterState& s) {
  if (s.cores.size() != cores_.size()) {
    throw SimError("cluster state does not match core count");
  }
  arbiter_.restore(s.arbiter);  // validates bank count before any mutation
  for (size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->restore_state(s.cores[i]);
    cores_[i]->invalidate_decode_cache();
  }
  // Burst lanes are always drained at the public stopping points a
  // snapshot can capture, so there is no deferred state to restore — but
  // the per-lane merge latches (cur_start in particular) assume raw start
  // cycles only ever increase, which restoring to an earlier point
  // violates. Reset them outright.
  for (auto& l : lanes_) l = BurstLane{};
  lanes_pending_ = 0;
}

ClusterStats Cluster::run(u64 max_total_instructions) {
  const u64 base_conflicts = arbiter_.conflicts();
  const u64 base_accesses = arbiter_.accesses();

  begin_run();
  // The hook must come down on *every* exit path: a guest fault escaping
  // a step would otherwise leave the arbiter hook (and its dangling
  // active-core latch) installed on the shared memory.
  u64 executed = 0;
  try {
    // Asking the driver for budget+1 steps reproduces the historical
    // `while (step_once()) if (++executed > max) throw;` semantics
    // exactly: a run needing more than the budget executes precisely
    // max+1 instructions — reaching the same state the reference loop
    // trapped in — and then throws. Under burst scheduling drive()
    // guarantees that stopping state is bit-identical to the reference
    // scheduler paused at the same index.
    executed = drive(max_total_instructions + 1);
    if (executed > max_total_instructions) {
      throw SimError("cluster instruction budget exceeded");
    }
  } catch (...) {
    end_run();
    throw;
  }
  end_run();

  for (const auto& c : cores_) {
    if (c->halt_reason() != sim::HaltReason::kEcall) {
      throw SimError("a cluster core halted abnormally");
    }
  }
  return stats_since(base_conflicts, base_accesses);
}

}  // namespace xpulp::cluster
