#include "cluster/parallel_conv.hpp"

#include "common/error.hpp"
#include "qnn/pack.hpp"

namespace xpulp::cluster {

using kernels::ConvGenOptions;
using kernels::ConvKernel;
using kernels::ConvLayerData;
using kernels::ConvMemLayout;
using kernels::ConvVariant;

namespace {

/// Per-core code region: kernels with runtime channel loops are a few kB
/// per output row; 16 kB per core leaves ample margin and lets up to 16
/// cores fit below the 256 kB data base. The generator still checks each
/// program against the data region.
constexpr addr_t kCodeRegion = 0x4000;
constexpr addr_t kDataBase = 0x40000;

}  // namespace

std::vector<ConvKernel> make_parallel_conv_kernels(const qnn::ConvSpec& spec,
                                                   ConvVariant v,
                                                   int num_cores,
                                                   const ConvGenOptions& base) {
  if (static_cast<u32>(num_cores) * kCodeRegion > kDataBase) {
    throw SimError("too many cores for the code region layout");
  }
  std::vector<ConvKernel> kernels;
  const int rows = spec.out_h();
  int row = 0;
  for (int c = 0; c < num_cores; ++c) {
    const int share = rows / num_cores + (c < rows % num_cores ? 1 : 0);
    ConvGenOptions o = base;
    o.code_base = static_cast<addr_t>(c) * kCodeRegion;
    o.row_begin = row;
    o.row_end = row + share;
    o.buffer_slots = num_cores;
    o.buffer_slot = c;
    row += share;
    kernels.push_back(kernels::generate_conv_kernel(spec, v, kDataBase, o));
  }
  return kernels;
}

ParallelConvResult run_parallel_conv(const ConvLayerData& data,
                                     ConvVariant v, const ClusterConfig& cfg,
                                     const ClusterInstrument& instrument,
                                     const ClusterInstrument& after_run) {
  const qnn::ConvSpec& spec = data.spec;

  // Generate one program per core over its row slice. The kernels stay
  // alive so the instrument hook can read their region maps.
  std::vector<ConvKernel> kernels =
      make_parallel_conv_kernels(spec, v, cfg.num_cores);
  std::vector<xasm::Program> programs;
  ConvMemLayout layout{};
  for (const ConvKernel& k : kernels) {
    layout = k.layout;
    programs.push_back(k.program);
  }

  Cluster cluster(cfg);
  mem::Memory& mem = cluster.memory();
  mem.write_block(layout.input, qnn::pack_tensor(data.input, spec.in_bits));
  mem.write_block(layout.weights,
                  qnn::pack_filter_bank(data.weights, spec.w_bits));
  if (spec.out_bits != 8) {
    mem.write_block(layout.thresholds, data.thresholds.serialize());
  }
  cluster.load(programs);
  if (instrument) instrument(cluster, kernels);

  ParallelConvResult res;
  res.stats = cluster.run();
  res.macs = spec.macs();
  if (after_run) after_run(cluster, kernels);

  std::vector<u8> out_bytes(layout.output_bytes);
  mem.read_block(layout.output, out_bytes);
  res.output = qnn::unpack_tensor(
      out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
      /*is_signed=*/false);
  return res;
}

}  // namespace xpulp::cluster
