// Row-partitioned parallel convolution on the cluster: each core runs the
// PULP-NN kernel over a disjoint slice of output rows, with a private
// im2col buffer slot; input, weights, thresholds, and the output tensor
// live once in the shared TCDM.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "kernels/conv_layer.hpp"

namespace xpulp::cluster {

struct ParallelConvResult {
  qnn::Tensor output;
  ClusterStats stats;
  u64 macs = 0;

  double macs_per_cycle() const {
    return stats.makespan ? static_cast<double>(macs) /
                                static_cast<double>(stats.makespan)
                          : 0.0;
  }
};

/// Observability hook: `instrument` is invoked after the programs are
/// loaded and the cores reset, immediately before the cluster runs.
/// kernels[i] is core i's generated kernel (with its region map); attach
/// per-core profilers or trace hooks through cluster.core(i). `after_run`
/// fires right after the run completes, while the cluster and its cores
/// are still alive — finalize profilers there, NOT after the call returns
/// (the cluster is destroyed with the stack frame).
using ClusterInstrument = std::function<void(
    Cluster&, const std::vector<kernels::ConvKernel>& kernels)>;

/// Generate the per-core programs for a row-partitioned layer: core c's
/// code at c * 16 kB, shared tensors planned from 0x40000, rows split in
/// contiguous slices (remainder rows to the first cores), one private
/// im2col buffer slot per core. run_parallel_conv, the xrace kernel sweep,
/// and the tests all plan through here so they analyze exactly the
/// programs that run. `base` seeds non-partitioning generator knobs
/// (pixel_block, use_hwloops, ...); its partitioning fields are
/// overwritten per core.
std::vector<kernels::ConvKernel> make_parallel_conv_kernels(
    const qnn::ConvSpec& spec, kernels::ConvVariant v, int num_cores,
    const kernels::ConvGenOptions& base = {});

/// Run the layer across `cfg.num_cores` cores. Rows are distributed in
/// contiguous slices (remainder rows go to the first cores). Output is
/// read back from shared memory and must be checked by the caller against
/// ConvLayerData::golden().
ParallelConvResult run_parallel_conv(const kernels::ConvLayerData& data,
                                     kernels::ConvVariant v,
                                     const ClusterConfig& cfg,
                                     const ClusterInstrument& instrument = {},
                                     const ClusterInstrument& after_run = {});

}  // namespace xpulp::cluster
