#include "qnn/thresholds.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace xpulp::qnn {

namespace {

// In-order traversal of the implicit tree assigns sorted values so that a
// standard BST walk (go right when x >= node) counts thresholds <= x.
void fill_eytzinger(const std::vector<i16>& sorted, std::vector<i16>& out,
                    size_t node, size_t& next) {
  if (node >= sorted.size()) return;
  fill_eytzinger(sorted, out, 2 * node + 1, next);
  out[node] = sorted[next++];
  fill_eytzinger(sorted, out, 2 * node + 2, next);
}

}  // namespace

Thresholds::Thresholds(unsigned q_bits, std::vector<i16> sorted)
    : q_bits_(q_bits), sorted_(std::move(sorted)) {
  if (q_bits_ < 1 || q_bits_ > 8) {
    throw std::invalid_argument("q_bits must be in [1, 8]");
  }
  const size_t n = (size_t{1} << q_bits_) - 1;
  if (sorted_.size() != n) {
    throw std::invalid_argument("need 2^Q - 1 thresholds");
  }
  if (!std::is_sorted(sorted_.begin(), sorted_.end())) {
    throw std::invalid_argument("thresholds must be ascending");
  }
  eytzinger_.assign(n + 1, std::numeric_limits<i16>::max());
  size_t next = 0;
  fill_eytzinger(sorted_, eytzinger_, 0, next);
  assert(next == n);
}

Thresholds Thresholds::uniform(unsigned q_bits, i32 step, i32 offset) {
  assert(step > 0);
  const int n = (1 << q_bits) - 1;
  std::vector<i16> s(static_cast<size_t>(n));
  // Thresholds at offset + step*(i - n/2): a centered uniform staircase.
  for (int i = 0; i < n; ++i) {
    const i32 t = offset + step * (i - n / 2);
    s[static_cast<size_t>(i)] = static_cast<i16>(
        std::clamp<i32>(t, std::numeric_limits<i16>::min(),
                        std::numeric_limits<i16>::max()));
  }
  return Thresholds(q_bits, std::move(s));
}

Thresholds Thresholds::random(Rng& rng, unsigned q_bits, i16 lo, i16 hi) {
  const int n = (1 << q_bits) - 1;
  std::vector<i16> s(static_cast<size_t>(n));
  // Draw n distinct values then sort: strict monotonicity keeps the
  // hardware walk and the linear count in exact agreement at boundaries.
  for (int attempt = 0;; ++attempt) {
    for (auto& v : s) v = static_cast<i16>(rng.uniform(lo, hi));
    std::sort(s.begin(), s.end());
    if (std::adjacent_find(s.begin(), s.end()) == s.end()) break;
    if (attempt > 64) {  // tiny range: fall back to forced distinct values
      for (int i = 0; i < n; ++i) {
        s[static_cast<size_t>(i)] = static_cast<i16>(lo + i);
      }
      break;
    }
  }
  return Thresholds(q_bits, std::move(s));
}

u32 Thresholds::quantize(i32 x) const {
  u32 code = 0;
  for (const i16 t : sorted_) {
    if (x >= t) ++code;
  }
  return code;
}

LayerThresholds::LayerThresholds(unsigned q_bits,
                                 std::vector<Thresholds> per_channel)
    : q_bits_(q_bits), per_channel_(std::move(per_channel)) {
  for (const auto& t : per_channel_) {
    if (t.q_bits() != q_bits_) {
      throw std::invalid_argument("mixed q_bits in LayerThresholds");
    }
  }
}

LayerThresholds LayerThresholds::random(Rng& rng, unsigned q_bits,
                                        int channels, i16 lo, i16 hi) {
  std::vector<Thresholds> per;
  per.reserve(static_cast<size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    per.push_back(Thresholds::random(rng, q_bits, lo, hi));
  }
  return LayerThresholds(q_bits, std::move(per));
}

std::vector<u8> LayerThresholds::serialize() const {
  const u32 stride = stride_bytes();
  std::vector<u8> out(static_cast<size_t>(stride) * per_channel_.size(), 0);
  for (size_t c = 0; c < per_channel_.size(); ++c) {
    const auto& tree = per_channel_[c].eytzinger();
    for (size_t i = 0; i < tree.size(); ++i) {
      const u16 v = static_cast<u16>(tree[i]);
      out[c * stride + i * 2] = static_cast<u8>(v & 0xff);
      out[c * stride + i * 2 + 1] = static_cast<u8>(v >> 8);
    }
  }
  return out;
}

}  // namespace xpulp::qnn
