// Thresholding-based (staircase) quantization, paper §II-2 and Fig. 2.
//
// A Q-bit output needs 2^Q - 1 per-channel thresholds, which absorb bias
// and batch normalization. The quantized code of a 16-bit pre-activation x
// is the number of thresholds <= x (a staircase function). The optimal
// implementation is a balanced binary search; the hardware quantization
// unit and the software kernels both store the thresholds in breadth-first
// (Eytzinger) order, one comparison per tree level, MSB-first code
// construction.
//
// Memory layout per channel: 2^Q int16 slots (the 2^Q-1 tree nodes in BFS
// order, padded with one unused slot so the per-channel stride is a power
// of two) — this stride is the "hard-wired fixed offset" that lets pv.qnt
// derive the second activation's tree address.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace xpulp::qnn {

class Thresholds {
 public:
  /// Build from sorted thresholds (size must be 2^q_bits - 1, ascending).
  Thresholds(unsigned q_bits, std::vector<i16> sorted);

  /// Uniform quantizer: thresholds at step boundaries around zero-ish
  /// range; `step` > 0, `offset` shifts the staircase.
  static Thresholds uniform(unsigned q_bits, i32 step, i32 offset = 0);

  /// Random strictly-monotone thresholds within [lo, hi] for tests.
  static Thresholds random(Rng& rng, unsigned q_bits, i16 lo, i16 hi);

  unsigned q_bits() const { return q_bits_; }
  u32 levels() const { return 1u << q_bits_; }

  const std::vector<i16>& sorted() const { return sorted_; }
  /// BFS (Eytzinger) order, padded to 2^Q entries (last slot INT16_MAX).
  const std::vector<i16>& eytzinger() const { return eytzinger_; }

  /// Per-channel stride in bytes of the packed tree (2^Q int16 slots).
  u32 stride_bytes() const { return levels() * 2; }

  /// Reference staircase: code = #{ sorted_i <= x }.
  u32 quantize(i32 x) const;

 private:
  unsigned q_bits_;
  std::vector<i16> sorted_;
  std::vector<i16> eytzinger_;
};

/// Per-output-channel threshold sets for a layer, plus serialization to the
/// guest memory layout consumed by pv.qnt and the software tree kernels.
class LayerThresholds {
 public:
  LayerThresholds() = default;
  LayerThresholds(unsigned q_bits, std::vector<Thresholds> per_channel);

  static LayerThresholds random(Rng& rng, unsigned q_bits, int channels,
                                i16 lo, i16 hi);

  unsigned q_bits() const { return q_bits_; }
  int channels() const { return static_cast<int>(per_channel_.size()); }
  const Thresholds& channel(int c) const {
    return per_channel_[static_cast<size_t>(c)];
  }
  u32 stride_bytes() const {
    return per_channel_.empty() ? 0 : per_channel_[0].stride_bytes();
  }

  /// Serialized guest image: channel c's Eytzinger tree at offset
  /// c * stride_bytes(), little-endian int16.
  std::vector<u8> serialize() const;

 private:
  unsigned q_bits_ = 0;
  std::vector<Thresholds> per_channel_;
};

}  // namespace xpulp::qnn
