#include "qnn/pack.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace xpulp::qnn {

std::vector<u8> pack_values(std::span<const i32> values, unsigned bits) {
  assert(bits == 1 || bits == 2 || bits == 4 || bits == 8);
  std::vector<u8> out(packed_bytes(static_cast<int>(values.size()), bits), 0);
  const unsigned per_byte = 8 / bits;
  for (size_t i = 0; i < values.size(); ++i) {
    const u32 v = static_cast<u32>(values[i]) & low_mask(bits);
    out[i / per_byte] |= static_cast<u8>(v << ((i % per_byte) * bits));
  }
  return out;
}

std::vector<i32> unpack_values(std::span<const u8> bytes, int count,
                               unsigned bits, bool is_signed) {
  assert(bits == 1 || bits == 2 || bits == 4 || bits == 8);
  std::vector<i32> out(static_cast<size_t>(count), 0);
  const unsigned per_byte = 8 / bits;
  for (int i = 0; i < count; ++i) {
    const size_t byte = static_cast<size_t>(i) / per_byte;
    assert(byte < bytes.size());
    const u32 raw =
        (bytes[byte] >> ((static_cast<unsigned>(i) % per_byte) * bits)) &
        low_mask(bits);
    out[static_cast<size_t>(i)] =
        is_signed ? sign_extend(raw, bits) : static_cast<i32>(raw);
  }
  return out;
}

std::vector<u8> pack_tensor(const Tensor& t, unsigned bits) {
  return pack_values(t.data(), bits);
}

Tensor unpack_tensor(std::span<const u8> bytes, Shape shape, unsigned bits,
                     bool is_signed) {
  Tensor t(shape);
  t.data() = unpack_values(bytes, shape.elems(), bits, is_signed);
  return t;
}

std::vector<u8> pack_filter_bank(const FilterBank& f, unsigned bits) {
  const u32 stride = packed_filter_stride(f.filter_elems(), bits);
  std::vector<u8> out(static_cast<size_t>(stride) * f.count(), 0);
  for (int i = 0; i < f.count(); ++i) {
    std::span<const i32> filt{f.data().data() +
                                  static_cast<size_t>(i) * f.filter_elems(),
                              static_cast<size_t>(f.filter_elems())};
    const std::vector<u8> packed = pack_values(filt, bits);
    std::copy(packed.begin(), packed.end(),
              out.begin() + static_cast<size_t>(i) * stride);
  }
  return out;
}

std::vector<u8> pack_values_grouped(std::span<const i32> values,
                                    unsigned group, unsigned bits) {
  assert(bits == 1 || bits == 2 || bits == 4 || bits == 8);
  assert(group != 0 && group * bits <= 32);
  const size_t words = (values.size() + group - 1) / group;
  std::vector<u8> out(words * 4, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const u32 v = static_cast<u32>(values[i]) & low_mask(bits);
    const size_t word = i / group;
    const unsigned lane = static_cast<unsigned>(i % group);
    const unsigned bit = lane * bits;
    // Little-endian within the word, same as the flat packing; power-of-two
    // widths never straddle a byte boundary.
    out[word * 4 + bit / 8] |= static_cast<u8>(v << (bit % 8));
  }
  return out;
}

std::vector<i32> unpack_values_grouped(std::span<const u8> bytes, int count,
                                       unsigned group, unsigned bits,
                                       bool is_signed) {
  assert(bits == 1 || bits == 2 || bits == 4 || bits == 8);
  assert(group != 0 && group * bits <= 32);
  std::vector<i32> out(static_cast<size_t>(count), 0);
  for (int i = 0; i < count; ++i) {
    const size_t word = static_cast<size_t>(i) / group;
    const unsigned lane = static_cast<unsigned>(i) % group;
    const unsigned bit = lane * bits;
    assert(word * 4 + bit / 8 < bytes.size());
    const u32 raw =
        (bytes[word * 4 + bit / 8] >> (bit % 8)) & low_mask(bits);
    out[static_cast<size_t>(i)] =
        is_signed ? sign_extend(raw, bits) : static_cast<i32>(raw);
  }
  return out;
}

std::vector<u8> pack_filter_bank_grouped(const FilterBank& f, unsigned wa,
                                         unsigned wb) {
  const u32 stride = packed_filter_stride_grouped(f.filter_elems(), wa);
  std::vector<u8> out(static_cast<size_t>(stride) * f.count(), 0);
  for (int i = 0; i < f.count(); ++i) {
    std::span<const i32> filt{f.data().data() +
                                  static_cast<size_t>(i) * f.filter_elems(),
                              static_cast<size_t>(f.filter_elems())};
    const std::vector<u8> packed = pack_values_grouped(filt, 32 / wa, wb);
    std::copy(packed.begin(), packed.end(),
              out.begin() + static_cast<size_t>(i) * stride);
  }
  return out;
}

}  // namespace xpulp::qnn
