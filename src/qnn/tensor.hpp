// Host-side integer tensor used as the golden-model data type.
//
// Activations are unsigned quantization *codes* (0 .. 2^Q - 1), weights are
// signed two's-complement values — matching the PULP-NN convention where
// convolution kernels use pv.(s)dotusp (unsigned activation x signed
// weight). Layout is HWC (channel-minor), the layout PULP-NN and CMSIS-NN
// use for feature maps.
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace xpulp::qnn {

struct Shape {
  int h = 1;
  int w = 1;
  int c = 1;

  int elems() const { return h * w * c; }
  bool operator==(const Shape&) const = default;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape s) : shape_(s), data_(static_cast<size_t>(s.elems()), 0) {}

  const Shape& shape() const { return shape_; }
  int elems() const { return shape_.elems(); }

  i32& at(int y, int x, int c) { return data_[index(y, x, c)]; }
  i32 at(int y, int x, int c) const { return data_[index(y, x, c)]; }

  i32& flat(int i) {
    assert(i >= 0 && i < elems());
    return data_[static_cast<size_t>(i)];
  }
  i32 flat(int i) const {
    assert(i >= 0 && i < elems());
    return data_[static_cast<size_t>(i)];
  }

  const std::vector<i32>& data() const { return data_; }
  std::vector<i32>& data() { return data_; }

  bool operator==(const Tensor&) const = default;

 private:
  size_t index(int y, int x, int c) const {
    assert(y >= 0 && y < shape_.h && x >= 0 && x < shape_.w && c >= 0 &&
           c < shape_.c);
    return static_cast<size_t>((y * shape_.w + x) * shape_.c + c);
  }

  Shape shape_;
  std::vector<i32> data_;
};

/// A set of convolution filters: `count` filters of shape kh x kw x c each,
/// stored filter-major with HWC inside a filter — the exact order the
/// kernels stream weights in.
class FilterBank {
 public:
  FilterBank() = default;
  FilterBank(int count, Shape filter_shape)
      : count_(count),
        fshape_(filter_shape),
        data_(static_cast<size_t>(count) * filter_shape.elems(), 0) {}

  int count() const { return count_; }
  const Shape& filter_shape() const { return fshape_; }
  int filter_elems() const { return fshape_.elems(); }

  i32& at(int f, int ky, int kx, int c) { return data_[index(f, ky, kx, c)]; }
  i32 at(int f, int ky, int kx, int c) const { return data_[index(f, ky, kx, c)]; }

  /// Flat view of filter `f` in stream order.
  i32 flat(int f, int i) const {
    assert(f >= 0 && f < count_ && i >= 0 && i < filter_elems());
    return data_[static_cast<size_t>(f) * filter_elems() + i];
  }
  i32& flat(int f, int i) {
    assert(f >= 0 && f < count_ && i >= 0 && i < filter_elems());
    return data_[static_cast<size_t>(f) * filter_elems() + i];
  }

  const std::vector<i32>& data() const { return data_; }
  std::vector<i32>& data() { return data_; }

 private:
  size_t index(int f, int ky, int kx, int c) const {
    assert(f >= 0 && f < count_);
    return static_cast<size_t>(f) * fshape_.elems() +
           static_cast<size_t>((ky * fshape_.w + kx) * fshape_.c + c);
  }

  int count_ = 0;
  Shape fshape_;
  std::vector<i32> data_;
};

}  // namespace xpulp::qnn
