// Sub-byte packing/unpacking between host tensors and the guest byte
// layout.
//
// Elements are packed little-endian within a byte: element i of a byte
// occupies bits [i*Q + Q - 1 : i*Q]. This matches the lane order of the
// simulator's SIMD formats, so a 32-bit load of packed data yields a vector
// whose lane k is element k in memory order.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "qnn/tensor.hpp"

namespace xpulp::qnn {

/// Number of bytes needed for `elems` elements of `bits` width (1 <= bits
/// <= 8, power of two). Rounded up to whole bytes.
constexpr u32 packed_bytes(int elems, unsigned bits) {
  return static_cast<u32>((static_cast<u64>(elems) * bits + 7) / 8);
}

/// Pack a flat list of values. Signed values are masked to `bits`
/// (two's complement); the caller guarantees range.
std::vector<u8> pack_values(std::span<const i32> values, unsigned bits);

/// Unpack `count` values; `is_signed` selects sign- vs zero-extension.
std::vector<i32> unpack_values(std::span<const u8> bytes, int count,
                               unsigned bits, bool is_signed);

/// Pack a tensor in HWC stream order.
std::vector<u8> pack_tensor(const Tensor& t, unsigned bits);

/// Unpack into a tensor of the given shape.
Tensor unpack_tensor(std::span<const u8> bytes, Shape shape, unsigned bits,
                     bool is_signed);

/// Pack a filter bank filter-major; each filter's stream is padded to a
/// 4-byte boundary so kernels can walk filters with word loads.
std::vector<u8> pack_filter_bank(const FilterBank& f, unsigned bits);

/// Stride in bytes between consecutive packed filters (word-aligned).
constexpr u32 packed_filter_stride(int filter_elems, unsigned bits) {
  return (packed_bytes(filter_elems, bits) + 3u) & ~3u;
}

/// Lane-aligned grouped packing for the mixed virtual dot products
/// (pv.mldot*/pv.mlsdot*): values are packed `group` per 32-bit word, each
/// value `bits` wide in the word's low group*bits bits, upper bits zero.
/// Lane i of word w holds element w*group + i, matching the lane order the
/// mixed dot product reads from rs2 when rs1 carries `group` activations.
/// Requires group * bits <= 32.
std::vector<u8> pack_values_grouped(std::span<const i32> values,
                                    unsigned group, unsigned bits);

/// Inverse of pack_values_grouped (tests and reference layers).
std::vector<i32> unpack_values_grouped(std::span<const u8> bytes, int count,
                                       unsigned group, unsigned bits,
                                       bool is_signed);

/// Grouped filter-bank packing: each filter's stream is grouped for an
/// activation width of `wa` bits (32/wa weights per word, `wb` bits each).
/// Filters start on word boundaries by construction.
std::vector<u8> pack_filter_bank_grouped(const FilterBank& f, unsigned wa,
                                         unsigned wb);

/// Stride in bytes between consecutive grouped packed filters: one word
/// per 32/wa weights.
constexpr u32 packed_filter_stride_grouped(int filter_elems, unsigned wa) {
  const u32 per_word = 32 / wa;
  return ((static_cast<u32>(filter_elems) + per_word - 1) / per_word) * 4u;
}

}  // namespace xpulp::qnn
