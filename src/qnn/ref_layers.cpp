#include "qnn/ref_layers.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xpulp::qnn {

std::vector<i32> im2col_ref(const Tensor& in, const ConvSpec& s, int oy,
                            int ox) {
  std::vector<i32> col(static_cast<size_t>(s.filter_elems()), 0);
  size_t i = 0;
  for (int ky = 0; ky < s.k_h; ++ky) {
    for (int kx = 0; kx < s.k_w; ++kx) {
      const int y = oy * s.stride - s.pad + ky;
      const int x = ox * s.stride - s.pad + kx;
      for (int c = 0; c < s.in_c; ++c, ++i) {
        if (y >= 0 && y < s.in_h && x >= 0 && x < s.in_w) {
          col[i] = in.at(y, x, c);
        }
      }
    }
  }
  return col;
}

i32 conv_accumulate(const Tensor& in, const FilterBank& w, const ConvSpec& s,
                    int oy, int ox, int oc) {
  i32 acc = 0;
  int i = 0;
  for (int ky = 0; ky < s.k_h; ++ky) {
    for (int kx = 0; kx < s.k_w; ++kx) {
      const int y = oy * s.stride - s.pad + ky;
      const int x = ox * s.stride - s.pad + kx;
      for (int c = 0; c < s.in_c; ++c, ++i) {
        if (y >= 0 && y < s.in_h && x >= 0 && x < s.in_w) {
          acc += in.at(y, x, c) * w.flat(oc, i);
        }
      }
    }
  }
  return acc;
}

Tensor conv2d_ref(const Tensor& in, const FilterBank& w,
                  const LayerThresholds& th, const ConvSpec& s) {
  assert(in.shape().h == s.in_h && in.shape().w == s.in_w &&
         in.shape().c == s.in_c);
  assert(w.count() == s.out_c && w.filter_elems() == s.filter_elems());
  if (th.channels() != s.out_c || th.q_bits() != s.out_bits) {
    throw std::invalid_argument("threshold set does not match layer");
  }
  Tensor out({s.out_h(), s.out_w(), s.out_c});
  for (int oy = 0; oy < s.out_h(); ++oy) {
    for (int ox = 0; ox < s.out_w(); ++ox) {
      for (int oc = 0; oc < s.out_c; ++oc) {
        const i32 acc = conv_accumulate(in, w, s, oy, ox, oc);
        // The hardware quantization unit consumes 16-bit pre-activations;
        // data generators must keep accumulators in range.
        assert(acc >= -32768 && acc <= 32767);
        out.at(oy, ox, oc) = static_cast<i32>(th.channel(oc).quantize(acc));
      }
    }
  }
  return out;
}

Tensor conv2d_ref_u8(const Tensor& in, const FilterBank& w,
                     const ConvSpec& s) {
  Tensor out({s.out_h(), s.out_w(), s.out_c});
  for (int oy = 0; oy < s.out_h(); ++oy) {
    for (int ox = 0; ox < s.out_w(); ++ox) {
      for (int oc = 0; oc < s.out_c; ++oc) {
        const i32 acc = conv_accumulate(in, w, s, oy, ox, oc);
        const i32 scaled = acc >> s.requant_shift;
        out.at(oy, ox, oc) = std::clamp<i32>(scaled, 0, 255);
      }
    }
  }
  return out;
}

Tensor linear_ref(const Tensor& in, const FilterBank& w,
                  const LayerThresholds& th) {
  assert(in.shape().h == 1 && in.shape().w == 1);
  assert(w.filter_elems() == in.shape().c);
  Tensor out({1, 1, w.count()});
  for (int f = 0; f < w.count(); ++f) {
    i32 acc = 0;
    for (int i = 0; i < w.filter_elems(); ++i) {
      acc += in.flat(i) * w.flat(f, i);
    }
    assert(acc >= -32768 && acc <= 32767);
    out.at(0, 0, f) = static_cast<i32>(th.channel(f).quantize(acc));
  }
  return out;
}

Tensor maxpool2x2_ref(const Tensor& in) {
  const Shape s = in.shape();
  assert(s.h % 2 == 0 && s.w % 2 == 0);
  Tensor out({s.h / 2, s.w / 2, s.c});
  for (int y = 0; y < s.h / 2; ++y) {
    for (int x = 0; x < s.w / 2; ++x) {
      for (int c = 0; c < s.c; ++c) {
        const i32 m = std::max(
            std::max(in.at(2 * y, 2 * x, c), in.at(2 * y, 2 * x + 1, c)),
            std::max(in.at(2 * y + 1, 2 * x, c), in.at(2 * y + 1, 2 * x + 1, c)));
        out.at(y, x, c) = m;
      }
    }
  }
  return out;
}

Tensor avgpool2x2_ref(const Tensor& in) {
  const Shape s = in.shape();
  assert(s.h % 2 == 0 && s.w % 2 == 0);
  Tensor out({s.h / 2, s.w / 2, s.c});
  for (int y = 0; y < s.h / 2; ++y) {
    for (int x = 0; x < s.w / 2; ++x) {
      for (int c = 0; c < s.c; ++c) {
        // Cascaded averaging, exactly as a pv.avgu-based kernel computes it
        // (horizontal pair averages, then the vertical average of those).
        const i32 top = (in.at(2 * y, 2 * x, c) + in.at(2 * y, 2 * x + 1, c)) >> 1;
        const i32 bot =
            (in.at(2 * y + 1, 2 * x, c) + in.at(2 * y + 1, 2 * x + 1, c)) >> 1;
        out.at(y, x, c) = (top + bot) >> 1;
      }
    }
  }
  return out;
}

Tensor relu_ref(const Tensor& in) {
  Tensor out(in.shape());
  for (int i = 0; i < in.elems(); ++i) {
    out.flat(i) = std::max<i32>(in.flat(i), 0);
  }
  return out;
}

}  // namespace xpulp::qnn
