// Golden reference implementations of the QNN layers (host-side, bit-exact
// specification for the generated kernels).
//
// Conventions (shared with src/kernels):
//   - activations: unsigned codes, `in_bits` wide;
//   - weights: signed two's complement, `w_bits` wide;
//   - convolution accumulates act * weight in 32 bits; for sub-byte outputs
//     the accumulator must fit in int16 (the quantization unit consumes
//     16-bit pre-activations) — the reference asserts this;
//   - sub-byte outputs re-quantize through per-channel staircase
//     thresholds; 8-bit outputs use the PULP-NN scale path
//     out = clamp((acc + bias) >> shift, 0, 255).
#pragma once

#include "qnn/tensor.hpp"
#include "qnn/thresholds.hpp"

namespace xpulp::qnn {

struct ConvSpec {
  int in_h = 16;
  int in_w = 16;
  int in_c = 32;
  int out_c = 64;
  int k_h = 3;
  int k_w = 3;
  int stride = 1;
  int pad = 1;

  unsigned in_bits = 8;   // activation code width
  unsigned w_bits = 8;    // weight width
  unsigned out_bits = 8;  // output code width

  u32 requant_shift = 8;  // 8-bit output path only

  int out_h() const { return (in_h + 2 * pad - k_h) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - k_w) / stride + 1; }
  int filter_elems() const { return k_h * k_w * in_c; }
  /// Multiply-accumulate count of the whole layer.
  u64 macs() const {
    return static_cast<u64>(out_h()) * out_w() * out_c * filter_elems();
  }

  /// The layer the paper benchmarks: 16x16x32 input, 64 3x3x32 filters.
  static ConvSpec paper_layer(unsigned bits) {
    ConvSpec s;
    s.in_bits = s.w_bits = s.out_bits = bits;
    return s;
  }
};

/// 32-bit pre-activation (accumulator) of one output element.
i32 conv_accumulate(const Tensor& in, const FilterBank& w, const ConvSpec& s,
                    int oy, int ox, int oc);

/// Full conv layer with staircase re-quantization (out_bits in {2, 4}).
Tensor conv2d_ref(const Tensor& in, const FilterBank& w,
                  const LayerThresholds& th, const ConvSpec& s);

/// Full conv layer with the 8-bit scale/clamp re-quantization.
Tensor conv2d_ref_u8(const Tensor& in, const FilterBank& w,
                     const ConvSpec& s);

/// Fully-connected layer: in is flattened (1 x 1 x N); weights are `count`
/// filters of shape 1 x 1 x N. Staircase re-quantization.
Tensor linear_ref(const Tensor& in, const FilterBank& w,
                  const LayerThresholds& th);

/// 2x2 max pooling (stride 2) on codes.
Tensor maxpool2x2_ref(const Tensor& in);

/// 2x2 average pooling (stride 2), cascaded pairwise averages (pv.avgu
/// semantics): ((a+b)>>1 + (c+d)>>1) >> 1.
Tensor avgpool2x2_ref(const Tensor& in);

/// ReLU on signed codes (used by tests of pv.max.sc-based kernels).
Tensor relu_ref(const Tensor& in);

/// The im2col column for output pixel (oy, ox): k_h*k_w*in_c activation
/// codes in kernel-stream order, zero-padded at borders.
std::vector<i32> im2col_ref(const Tensor& in, const ConvSpec& s, int oy,
                            int ox);

}  // namespace xpulp::qnn
