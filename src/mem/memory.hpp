// TCDM (tightly-coupled data memory) model of the PULPissimo SoC.
//
// PULPissimo places 512 kB of SRAM one cycle away from the core; both
// instruction fetches and data accesses hit the same memory. The model is a
// flat byte array with bounds checking plus stall accounting:
//   - naturally aligned data accesses complete in the background of the
//     executing instruction (no extra cycles — RI5CY's LSU overlaps them);
//   - misaligned accesses are split into two transactions and cost one
//     extra cycle (the only memory-stall source the paper mentions for the
//     quantization unit);
//   - an optional contention injector models interconnect conflicts for
//     stress tests.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace xpulp::mem {

struct MemStats {
  u64 loads = 0;
  u64 stores = 0;
  u64 load_bytes = 0;
  u64 store_bytes = 0;
  u64 misaligned_accesses = 0;
  u64 contention_stalls = 0;
};

class Memory {
 public:
  /// PULPissimo SRAM size used throughout the paper's experiments.
  static constexpr u32 kDefaultSize = 512 * 1024;

  explicit Memory(u32 size = kDefaultSize) : data_(size, 0) {}

  u32 size() const { return static_cast<u32>(data_.size()); }

  // ---- Typed guest accessors (bounds-checked, little-endian) ----

  u8 load_u8(addr_t a) const {
    check(a, 1, false);
    return data_[a];
  }

  u16 load_u16(addr_t a) const {
    check(a, 2, false);
    u16 v;
    std::memcpy(&v, &data_[a], 2);
    return v;
  }

  u32 load_u32(addr_t a) const {
    check(a, 4, false);
    u32 v;
    std::memcpy(&v, &data_[a], 4);
    return v;
  }

  void store_u8(addr_t a, u8 v) {
    check(a, 1, true);
    data_[a] = v;
  }

  void store_u16(addr_t a, u16 v) {
    check(a, 2, true);
    std::memcpy(&data_[a], &v, 2);
  }

  void store_u32(addr_t a, u32 v) {
    check(a, 4, true);
    std::memcpy(&data_[a], &v, 4);
  }

  /// Generic load of `size` in {1,2,4} bytes, zero-extended.
  u32 load(addr_t a, unsigned size) const {
    switch (size) {
      case 1: return load_u8(a);
      case 2: return load_u16(a);
      default: return load_u32(a);
    }
  }

  void store(addr_t a, u32 v, unsigned size) {
    switch (size) {
      case 1: store_u8(a, static_cast<u8>(v)); break;
      case 2: store_u16(a, static_cast<u16>(v)); break;
      default: store_u32(a, v); break;
    }
  }

  // ---- Bulk host-side access (loader, kernel drivers, tests) ----

  void write_block(addr_t a, std::span<const u8> bytes) {
    check(a, static_cast<unsigned>(bytes.size()), true);
    std::memcpy(&data_[a], bytes.data(), bytes.size());
  }

  void read_block(addr_t a, std::span<u8> bytes) const {
    check(a, static_cast<unsigned>(bytes.size()), false);
    std::memcpy(bytes.data(), &data_[a], bytes.size());
  }

  void fill(addr_t a, u8 value, u32 len) {
    check(a, len, true);
    std::memset(&data_[a], value, len);
  }

  /// Timing hook called by the core's LSU for every data access. Returns the
  /// number of *extra* stall cycles the access costs and updates statistics.
  ///
  /// The bounds check runs before any accounting: an access that (even
  /// partially) falls outside the SRAM must trap without charging stats or
  /// stall cycles. This covers the misaligned-access split — a word access
  /// at size-2 is two SRAM transactions whose second half is out of range —
  /// which previously counted a load, a misalignment and a stall cycle
  /// before the data path raised the fault, leaving MemStats and the core's
  /// PerfCounters inconsistent on the trapping path.
  unsigned access_cycles(addr_t a, unsigned size, bool is_store) {
    check(a, size, is_store);
    if (is_store) {
      ++stats_.stores;
      stats_.store_bytes += size;
    } else {
      ++stats_.loads;
      stats_.load_bytes += size;
    }
    unsigned stalls = 0;
    if (!is_aligned(a, size)) {
      ++stats_.misaligned_accesses;
      stalls += 1;  // split into two SRAM transactions
    }
    if (contention_period_ != 0 &&
        ++access_counter_ % contention_period_ == 0) {
      ++stats_.contention_stalls;
      stalls += 1;
    }
    if (access_hook_) {
      const unsigned extra = access_hook_(a, size, is_store);
      stats_.contention_stalls += extra;
      stalls += extra;
    }
    return stalls;
  }

  /// Superblock fast path: the bounds/alignment/contention part of
  /// access_cycles() without the per-access load/store count bookkeeping,
  /// which the fused loop batches per iteration through add_counts(). The
  /// contention phase still advances per access, so stall injection stays
  /// bit-identical across dispatch modes, and the bounds check still runs
  /// before any accounting (trap-exact, like access_cycles).
  unsigned access_stalls(addr_t a, unsigned size, bool is_store) {
    check(a, size, is_store);
    unsigned stalls = 0;
    if (!is_aligned(a, size)) {
      ++stats_.misaligned_accesses;
      stalls += 1;
    }
    if (contention_period_ != 0 &&
        ++access_counter_ % contention_period_ == 0) {
      ++stats_.contention_stalls;
      stalls += 1;
    }
    if (access_hook_) {
      const unsigned extra = access_hook_(a, size, is_store);
      stats_.contention_stalls += extra;
      stalls += extra;
    }
    return stalls;
  }

  /// Batched count update for accesses already performed through
  /// access_stalls(): `k` iterations worth of the per-iteration delta `d`.
  /// Only the load/store count and byte fields of `d` are meaningful
  /// (stall fields were charged eagerly).
  void add_counts(const MemStats& d, u64 k = 1) {
    stats_.loads += d.loads * k;
    stats_.stores += d.stores * k;
    stats_.load_bytes += d.load_bytes * k;
    stats_.store_bytes += d.store_bytes * k;
  }

  /// Unchecked accessors for callers that already bounds-checked the
  /// access this cycle (the superblock fused loop, straight after
  /// access_stalls() on the same address/size).
  u32 load_unchecked(addr_t a, unsigned size) const {
    switch (size) {
      case 1: return data_[a];
      case 2: {
        u16 v;
        std::memcpy(&v, &data_[a], 2);
        return v;
      }
      default: {
        u32 v;
        std::memcpy(&v, &data_[a], 4);
        return v;
      }
    }
  }

  void store_unchecked(addr_t a, u32 v, unsigned size) {
    switch (size) {
      case 1: data_[a] = static_cast<u8>(v); break;
      case 2: {
        const u16 h = static_cast<u16>(v);
        std::memcpy(&data_[a], &h, 2);
        break;
      }
      default: std::memcpy(&data_[a], &v, 4); break;
    }
  }

  /// Inject one interconnect-contention stall every `period` data accesses
  /// (0 disables; used by stress tests to validate stall bookkeeping).
  void set_contention_period(u32 period) { contention_period_ = period; }

  /// External interconnect model (e.g. the cluster's banked TCDM): called
  /// on every data access, returns extra stall cycles. The cluster
  /// scheduler swaps the hook per core before stepping it.
  using AccessHook = std::function<unsigned(addr_t, unsigned, bool)>;
  void set_access_hook(AccessHook hook) { access_hook_ = std::move(hook); }
  bool has_access_hook() const { return static_cast<bool>(access_hook_); }

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

  /// Deferred-arbitration support (cluster burst scheduling): account
  /// interconnect stall cycles that an access hook would have returned at
  /// access time had arbitration not been deferred. Keeps
  /// contention_stalls bit-identical to a hook-at-access-time run.
  void add_contention_stalls(u64 n) { stats_.contention_stalls += n; }

  // ---- Snapshot/restore support (src/ckpt) ----
  // The serializable timing-relevant state beyond the byte array: statistics
  // and the contention phase. The access hook is host wiring, not simulation
  // state, and is deliberately excluded — reattach it after restore.

  void set_stats(const MemStats& s) { stats_ = s; }
  u64 access_counter() const { return access_counter_; }
  void set_access_counter(u64 c) { access_counter_ = c; }
  u32 contention_period() const { return contention_period_; }

 private:
  void check(addr_t a, unsigned size, bool is_store) const {
    // Overflow-safe: addresses are 32-bit, sizes small.
    if (size == 0) return;
    const u64 end = static_cast<u64>(a) + size;
    if (end > data_.size()) throw MemoryFault(a, size, is_store);
  }

  std::vector<u8> data_;
  MemStats stats_;
  u32 contention_period_ = 0;
  u64 access_counter_ = 0;
  AccessHook access_hook_;
};

}  // namespace xpulp::mem
