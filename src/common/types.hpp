// Fundamental fixed-width aliases used across the simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace xpulp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A guest (simulated) memory address. 32-bit, as on PULPissimo.
using addr_t = u32;

/// Simulated clock cycles.
using cycles_t = u64;

}  // namespace xpulp
