// Deterministic PRNG used to generate synthetic weights/activations and
// property-test inputs. A fixed algorithm (xoshiro-style splitmix64) keeps
// every experiment reproducible across platforms, unlike std::mt19937
// distributions whose mapping is implementation-defined.
#pragma once

#include "common/types.hpp"

namespace xpulp {

class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  /// Next 64 random bits (splitmix64).
  u64 next_u64() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [lo, hi] inclusive.
  i32 uniform(i32 lo, i32 hi) {
    const u64 span = static_cast<u64>(static_cast<i64>(hi) - lo) + 1;
    return static_cast<i32>(lo + static_cast<i64>(next_u64() % span));
  }

  /// Random signed value fitting `bits` bits (two's complement range).
  i32 signed_bits(unsigned bits) {
    const i32 hi = (1 << (bits - 1)) - 1;
    const i32 lo = -(1 << (bits - 1));
    return uniform(lo, hi);
  }

  /// Random unsigned value fitting `bits` bits.
  u32 unsigned_bits(unsigned bits) {
    return static_cast<u32>(uniform(0, static_cast<i32>((1u << bits) - 1)));
  }

 private:
  u64 state_;
};

}  // namespace xpulp
