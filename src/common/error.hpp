// Error types for the simulator stack. Guest-visible faults (bad memory
// access, illegal instruction) are reported as exceptions carrying enough
// context to diagnose generated kernels.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace xpulp {

/// Base class for all simulator errors.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when the guest touches memory outside the mapped SRAM.
class MemoryFault : public SimError {
 public:
  MemoryFault(addr_t addr, unsigned size, bool is_store)
      : SimError(std::string("memory fault: ") + (is_store ? "store" : "load") +
                 " of " + std::to_string(size) + " bytes at 0x" + hex(addr)),
        addr_(addr),
        size_(size),
        is_store_(is_store) {}

  addr_t addr() const { return addr_; }
  unsigned size() const { return size_; }
  bool is_store() const { return is_store_; }

 private:
  static std::string hex(u32 v) {
    static const char* d = "0123456789abcdef";
    std::string s(8, '0');
    for (int i = 7; i >= 0; --i, v >>= 4) s[static_cast<size_t>(i)] = d[v & 0xf];
    return s;
  }

  addr_t addr_;
  unsigned size_;
  bool is_store_;
};

/// Raised when the decoder meets an encoding it does not implement.
class IllegalInstruction : public SimError {
 public:
  IllegalInstruction(addr_t pc, u32 raw)
      : SimError("illegal instruction 0x" + to_hex(raw) + " at pc 0x" + to_hex(pc)),
        pc_(pc),
        raw_(raw) {}

  addr_t pc() const { return pc_; }
  u32 raw() const { return raw_; }

 private:
  static std::string to_hex(u32 v) {
    static const char* d = "0123456789abcdef";
    std::string s(8, '0');
    for (int i = 7; i >= 0; --i, v >>= 4) s[static_cast<size_t>(i)] = d[v & 0xf];
    return s;
  }

  addr_t pc_;
  u32 raw_;
};

/// Raised by the assembler for malformed programs (unbound labels,
/// out-of-range immediates, misnested hardware loops).
class AsmError : public SimError {
 public:
  explicit AsmError(const std::string& what) : SimError("asm: " + what) {}
};

}  // namespace xpulp
