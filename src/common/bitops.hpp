// Bit-level helpers shared by the ISA layer, the simulator and the QNN
// packing code. All operations are well-defined for the full input range
// (no UB shifts, explicit two's-complement semantics).
#pragma once

#include <bit>
#include <cassert>
#include <limits>

#include "common/types.hpp"

namespace xpulp {

/// Extract bits [hi:lo] (inclusive) of `v`, right-aligned.
constexpr u32 bits(u32 v, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < 32);
  const unsigned width = hi - lo + 1;
  const u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (v >> lo) & mask;
}

/// Extract a single bit.
constexpr u32 bit(u32 v, unsigned pos) {
  assert(pos < 32);
  return (v >> pos) & 1u;
}

/// A mask with `width` low bits set. width in [0, 32].
constexpr u32 low_mask(unsigned width) {
  assert(width <= 32);
  return (width >= 32) ? ~0u : ((1u << width) - 1u);
}

/// Sign-extend the low `width` bits of `v` to a full 32-bit signed value.
constexpr i32 sign_extend(u32 v, unsigned width) {
  assert(width >= 1 && width <= 32);
  if (width == 32) return static_cast<i32>(v);
  const u32 m = 1u << (width - 1);
  const u32 x = v & low_mask(width);
  return static_cast<i32>((x ^ m) - m);
}

/// Zero-extend the low `width` bits of `v`.
constexpr u32 zero_extend(u32 v, unsigned width) {
  assert(width >= 1 && width <= 32);
  return v & low_mask(width);
}

/// Insert `field` (low `width` bits) into `v` at bit position `lo`.
constexpr u32 insert_bits(u32 v, u32 field, unsigned lo, unsigned width) {
  assert(lo < 32 && width >= 1 && lo + width <= 32);
  const u32 m = low_mask(width) << lo;
  return (v & ~m) | ((field << lo) & m);
}

/// Signed saturation of `v` into `width` bits (two's complement range).
constexpr i32 sat_signed(i64 v, unsigned width) {
  assert(width >= 1 && width <= 32);
  const i64 hi = (i64{1} << (width - 1)) - 1;
  const i64 lo = -(i64{1} << (width - 1));
  if (v > hi) return static_cast<i32>(hi);
  if (v < lo) return static_cast<i32>(lo);
  return static_cast<i32>(v);
}

/// Unsigned saturation of `v` into `width` bits.
constexpr u32 sat_unsigned(i64 v, unsigned width) {
  assert(width >= 1 && width <= 32);
  const i64 hi = (i64{1} << width) - 1;
  if (v > hi) return static_cast<u32>(hi);
  if (v < 0) return 0;
  return static_cast<u32>(v);
}

/// Rotate right by `amt` (amt taken mod 32).
constexpr u32 rotr32(u32 v, unsigned amt) {
  amt &= 31u;
  if (amt == 0) return v;
  return (v >> amt) | (v << (32u - amt));
}

/// Count of set bits.
constexpr unsigned popcount32(u32 v) { return static_cast<unsigned>(std::popcount(v)); }

/// Index of least-significant set bit, or 32 if none (RI5CY p.ff1 semantics).
constexpr unsigned find_first_one(u32 v) {
  return v == 0 ? 32u : static_cast<unsigned>(std::countr_zero(v));
}

/// Index of most-significant set bit, or 32 if none (RI5CY p.fl1 semantics).
constexpr unsigned find_last_one(u32 v) {
  return v == 0 ? 32u : static_cast<unsigned>(31 - std::countl_zero(v));
}

/// Count leading redundant sign bits minus one (RI5CY p.clb: count leading
/// bits equal to the sign bit, excluding the sign bit itself; 0 for v==0).
constexpr unsigned count_leading_redundant_sign(u32 v) {
  if (v == 0) return 0;
  const u32 x = (v >> 31) ? ~v : v;
  if (x == 0) return 31;  // all bits equal to sign
  return static_cast<unsigned>(std::countl_zero(x)) - 1;
}

/// Number of bit toggles between two consecutive values on a bus — used by
/// the activity-based power model.
constexpr unsigned hamming_distance(u32 a, u32 b) { return popcount32(a ^ b); }

/// True if `addr` is naturally aligned for an access of `size` bytes.
constexpr bool is_aligned(addr_t addr, unsigned size) {
  assert(size == 1 || size == 2 || size == 4);
  return (addr & (size - 1)) == 0;
}

}  // namespace xpulp
