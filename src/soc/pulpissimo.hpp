// PULPissimo SoC wrapper: one RI5CY-class core + 512 kB of single-cycle
// SRAM + the paper's 250 MHz / 0.65 V operating point. Bundles program
// loading, execution, and perf/power reporting for examples and benches.
#pragma once

#include <memory>

#include "mem/memory.hpp"
#include "power/power_model.hpp"
#include "sim/core.hpp"
#include "xasm/program.hpp"

namespace xpulp::soc {

class Pulpissimo {
 public:
  explicit Pulpissimo(sim::CoreConfig cfg = sim::CoreConfig::extended(),
                      power::OperatingPoint op = {})
      : mem_(std::make_unique<mem::Memory>()),
        core_(std::make_unique<sim::Core>(*mem_, std::move(cfg))),
        op_(op) {}

  mem::Memory& memory() { return *mem_; }
  sim::Core& core() { return *core_; }
  const power::OperatingPoint& operating_point() const { return op_; }

  /// Load a program image and reset the core to its entry point.
  void load(const xasm::Program& prog) {
    prog.load(*mem_);
    core_->reset(prog.entry(), prog.base() + prog.size_bytes());
    mem_->reset_stats();
  }

  /// Run to completion (ecall). Throws SimError on abnormal halt.
  sim::HaltReason run(u64 max_instructions = 600'000'000) {
    return core_->run(max_instructions);
  }

  /// Wall-clock seconds at the SoC frequency for the cycles executed.
  double seconds() const {
    return static_cast<double>(core_->perf().cycles) / op_.freq_hz;
  }

  /// Average power estimate for everything executed since load().
  power::SocPower power() const {
    return power::estimate_power(core_->perf(), core_->dotp_unit().activity(),
                                 mem_->stats(), core_->config(), op_);
  }

  /// Energy in microjoules for the executed workload.
  double energy_uj() const { return power().soc_mw() * 1e-3 * seconds() * 1e6; }

 private:
  std::unique_ptr<mem::Memory> mem_;
  std::unique_ptr<sim::Core> core_;
  power::OperatingPoint op_;
};

}  // namespace xpulp::soc
