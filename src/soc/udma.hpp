// PULPissimo µDMA model.
//
// PULPissimo's µDMA moves data between peripherals / external L2 memory and
// the TCDM autonomously, letting the core compute while the next tile of
// data streams in (Fig. 5 of the paper shows the µDMA subsystem). The model
// is a copy engine with a fixed programming overhead and a sustained
// bandwidth in bytes per cycle; transfers execute functionally at enqueue
// time while the returned duration is used by the double-buffering driver
// to account overlap analytically.
#pragma once

#include "common/types.hpp"
#include "mem/memory.hpp"

namespace xpulp::soc {

class Udma {
 public:
  /// `bytes_per_cycle` is the sustained interconnect bandwidth (PULPissimo:
  /// one 32-bit word per cycle); `setup_cycles` covers the configuration
  /// writes to the channel registers.
  Udma(mem::Memory& l2, mem::Memory& tcdm, u32 bytes_per_cycle = 4,
       cycles_t setup_cycles = 16)
      : l2_(l2),
        tcdm_(tcdm),
        bytes_per_cycle_(bytes_per_cycle ? bytes_per_cycle : 1),
        setup_cycles_(setup_cycles) {}

  cycles_t transfer_cycles(u32 len) const {
    return setup_cycles_ + (len + bytes_per_cycle_ - 1) / bytes_per_cycle_;
  }

  /// Copy `len` bytes from L2 `src` into TCDM `dst`; returns the modelled
  /// transfer duration in cycles.
  cycles_t copy_in(addr_t src, addr_t dst, u32 len) {
    std::vector<u8> buf(len);
    l2_.read_block(src, buf);
    tcdm_.write_block(dst, buf);
    total_bytes_ += len;
    ++transfers_;
    return transfer_cycles(len);
  }

  u64 total_bytes() const { return total_bytes_; }
  u64 transfers() const { return transfers_; }

 private:
  mem::Memory& l2_;
  mem::Memory& tcdm_;
  u32 bytes_per_cycle_;
  cycles_t setup_cycles_;
  u64 total_bytes_ = 0;
  u64 transfers_ = 0;
};

}  // namespace xpulp::soc
