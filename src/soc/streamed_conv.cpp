#include "soc/streamed_conv.hpp"

#include "common/error.hpp"
#include "qnn/pack.hpp"

namespace xpulp::soc {

using kernels::ConvGenOptions;
using kernels::ConvKernel;
using kernels::ConvLayerData;
using kernels::ConvMemLayout;
using kernels::ConvVariant;

StreamedConvResult run_conv_streamed(const ConvLayerData& data,
                                     ConvVariant v, const sim::CoreConfig& cfg,
                                     int tile_channels, bool double_buffered,
                                     u32 dma_bytes_per_cycle,
                                     obs::Timeline* timeline) {
  const qnn::ConvSpec& spec = data.spec;
  if (tile_channels <= 0 || spec.out_c % tile_channels != 0) {
    throw SimError("tile_channels must divide out_c");
  }
  const int tiles = spec.out_c / tile_channels;
  constexpr addr_t kCodeRegion = 0x6000;
  constexpr addr_t kDataBase = 0x40000;
  if (static_cast<u32>(tiles) * kCodeRegion > kDataBase) {
    throw SimError("too many tiles for the code region layout");
  }

  // Compact layout: unlike the resident plan, the TCDM only holds the
  // ping-pong tile buffers -- the full weight image stays in L2. This is
  // what makes layers whose weights exceed the 512 kB TCDM runnable.
  ConvMemLayout layout = ConvMemLayout::plan(spec, v, kDataBase);
  const u32 tile_bytes = static_cast<u32>(tile_channels) * layout.filter_stride;
  {
    const u32 resident = layout.filter_stride * static_cast<u32>(spec.out_c);
    const u32 pingpong = 2 * tile_bytes;
    const u32 saved = (resident - pingpong + 15u) & ~15u;
    if (pingpong < resident) {
      layout.thresholds -= saved;
      layout.buf0 -= saved;
      layout.buf1 -= saved;
      layout.output -= saved;
    }
  }
  const addr_t buf[2] = {layout.weights, layout.weights + tile_bytes};
  if (layout.output + layout.output_bytes > mem::Memory::kDefaultSize) {
    throw SimError("layer does not fit the TCDM even when streamed");
  }

  // Generate one program per tile, reading weights from its buffer.
  std::vector<ConvKernel> programs;
  for (int t = 0; t < tiles; ++t) {
    ConvGenOptions o;
    o.code_base = static_cast<addr_t>(t) * kCodeRegion;
    o.ch_begin = t * tile_channels;
    o.ch_end = (t + 1) * tile_channels;
    o.weights_base_override = buf[t % 2];
    o.layout = &layout;
    o.pixel_block = (spec.out_w() % 2 == 0) ? 2 : 1;
    programs.push_back(kernels::generate_conv_kernel(spec, v, kDataBase, o));
  }

  // External L2 holds the full packed weight image.
  const auto w_bytes = qnn::pack_filter_bank(data.weights, spec.w_bits);
  mem::Memory l2(static_cast<u32>((w_bytes.size() + 0xfffu) & ~0xfffu));
  l2.write_block(0, w_bytes);

  mem::Memory tcdm;
  tcdm.write_block(layout.input, qnn::pack_tensor(data.input, spec.in_bits));
  if (spec.out_bits != 8) {
    tcdm.write_block(layout.thresholds, data.thresholds.serialize());
  }
  for (const auto& k : programs) k.program.load(tcdm);

  Udma dma(l2, tcdm, dma_bytes_per_cycle);
  sim::Core core(tcdm, cfg);

  StreamedConvResult res;
  res.tiles = tiles;
  res.macs = spec.macs();

  std::vector<cycles_t> compute(static_cast<size_t>(tiles), 0);
  std::vector<cycles_t> dma_dur(static_cast<size_t>(tiles), 0);
  std::vector<u64> tile_instrs(static_cast<size_t>(tiles), 0);
  for (int t = 0; t < tiles; ++t) {
    // Functionally: transfer tile t, then run its program. (With double
    // buffering the transfer of tile t overlaps tile t-1's compute; the
    // ping-pong buffers make the functional order equivalent.)
    dma_dur[static_cast<size_t>(t)] =
        dma.copy_in(static_cast<u32>(t * tile_channels) * layout.filter_stride,
                    buf[t % 2], tile_bytes);
    const cycles_t before = core.perf().cycles;
    const u64 instrs_before = core.perf().instructions;
    const xasm::Program& tp = programs[static_cast<size_t>(t)].program;
    core.reset(tp.entry(), tp.base() + tp.size_bytes());
    if (core.run() != sim::HaltReason::kEcall) {
      throw SimError("streamed tile did not complete");
    }
    compute[static_cast<size_t>(t)] = core.perf().cycles - before;
    tile_instrs[static_cast<size_t>(t)] =
        core.perf().instructions - instrs_before;
  }

  for (int t = 0; t < tiles; ++t) {
    res.compute_cycles += compute[static_cast<size_t>(t)];
    res.dma_cycles += dma_dur[static_cast<size_t>(t)];
  }
  res.perf = core.perf();
  res.dotp = core.dotp_unit().activity();
  res.tcdm_stats = tcdm.stats();
  if (double_buffered) {
    // Prologue loads tile 0; tile t's compute overlaps tile t+1's DMA.
    res.makespan = dma_dur[0];
    for (int t = 0; t < tiles; ++t) {
      const cycles_t next_dma =
          (t + 1 < tiles) ? dma_dur[static_cast<size_t>(t + 1)] : 0;
      res.makespan += std::max(compute[static_cast<size_t>(t)], next_dma);
    }
  } else {
    res.makespan = res.compute_cycles + res.dma_cycles;
  }

  if (timeline) {
    // Replay the modelled schedule onto the timeline: compute slices on
    // track 0, µDMA windows on track 1. Window starts follow the same
    // arithmetic as the makespan above.
    timeline->set_track_name(0, "core0");
    timeline->set_track_name(1, "udma");
    const auto dma_window = [&](int t, u64 start) {
      obs::Event e;
      e.kind = obs::EventKind::kDmaWindow;
      e.track = 1;
      e.ts = start;
      e.dur = dma_dur[static_cast<size_t>(t)];
      e.value = tile_bytes;
      e.name = timeline->intern("weights tile " + std::to_string(t));
      timeline->record(e);
    };
    const auto compute_slice = [&](int t, u64 start) {
      obs::Event e;
      e.kind = obs::EventKind::kInstrBlock;
      e.track = 0;
      e.ts = start;
      e.dur = compute[static_cast<size_t>(t)];
      e.value = static_cast<u32>(tile_instrs[static_cast<size_t>(t)]);
      e.name = timeline->intern("compute tile " + std::to_string(t));
      timeline->record(e);
    };
    // Busy-fraction counter tracks, one point per schedule slot: what
    // share of the slot each engine spent working (1.0 = fully hidden).
    const u16 compute_busy = timeline->intern("soc/compute_busy");
    const u16 dma_busy = timeline->intern("soc/dma_busy");
    const auto busy_point = [&](u16 name, u8 track, u64 start, cycles_t used,
                                cycles_t slot) {
      obs::CounterPoint p;
      p.ts = start;
      p.value = slot ? static_cast<double>(used) / static_cast<double>(slot)
                     : 0.0;
      p.name = name;
      p.track = track;
      timeline->record_counter(p);
    };
    if (double_buffered) {
      dma_window(0, 0);
      busy_point(compute_busy, 0, 0, 0, dma_dur[0]);
      busy_point(dma_busy, 1, 0, dma_dur[0], dma_dur[0]);
      u64 start = dma_dur[0];
      for (int t = 0; t < tiles; ++t) {
        compute_slice(t, start);
        cycles_t next_dma = 0;
        if (t + 1 < tiles) {
          next_dma = dma_dur[static_cast<size_t>(t + 1)];
          dma_window(t + 1, start);
        }
        const cycles_t slot =
            std::max(compute[static_cast<size_t>(t)], next_dma);
        busy_point(compute_busy, 0, start, compute[static_cast<size_t>(t)],
                   slot);
        busy_point(dma_busy, 1, start, next_dma, slot);
        start += slot;
      }
    } else {
      u64 start = 0;
      for (int t = 0; t < tiles; ++t) {
        dma_window(t, start);
        busy_point(compute_busy, 0, start, 0, dma_dur[static_cast<size_t>(t)]);
        busy_point(dma_busy, 1, start, dma_dur[static_cast<size_t>(t)],
                   dma_dur[static_cast<size_t>(t)]);
        start += dma_dur[static_cast<size_t>(t)];
        compute_slice(t, start);
        busy_point(compute_busy, 0, start, compute[static_cast<size_t>(t)],
                   compute[static_cast<size_t>(t)]);
        busy_point(dma_busy, 1, start, 0, compute[static_cast<size_t>(t)]);
        start += compute[static_cast<size_t>(t)];
      }
    }
  }

  std::vector<u8> out_bytes(layout.output_bytes);
  tcdm.read_block(layout.output, out_bytes);
  res.output = qnn::unpack_tensor(
      out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
      /*is_signed=*/false);
  return res;
}

}  // namespace xpulp::soc
