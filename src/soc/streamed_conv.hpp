// Double-buffered weight streaming: run a convolution layer whose weights
// live in external L2, µDMA-ing one output-channel tile of filters at a
// time into a TCDM ping-pong buffer while the core computes the previous
// tile. This is the standard PULP execution scheme for layers that exceed
// L1, and an extension the paper's SoC (Fig. 5: µDMA + TCDM) enables.
#pragma once

#include "kernels/conv_layer.hpp"
#include "obs/timeline.hpp"
#include "soc/udma.hpp"

namespace xpulp::soc {

struct StreamedConvResult {
  qnn::Tensor output;
  cycles_t compute_cycles = 0;  // sum of per-tile kernel cycles
  cycles_t dma_cycles = 0;      // sum of per-tile transfer durations
  /// Compute-core activity over all tiles, for power/energy estimation
  /// (power::estimate_power / estimate_energy take these directly).
  sim::PerfCounters perf;
  sim::DotpActivity dotp;
  mem::MemStats tcdm_stats;
  /// Modelled makespan: serial DMA+compute without double buffering, or
  /// prologue + per-tile max(compute, next DMA) with it.
  cycles_t makespan = 0;
  int tiles = 0;
  u64 macs = 0;

  /// Fraction of DMA time hidden behind compute.
  double overlap_efficiency() const {
    const cycles_t serial = compute_cycles + dma_cycles;
    return serial ? 1.0 - static_cast<double>(makespan) /
                              static_cast<double>(serial)
                  : 0.0;
  }
};

/// Run the layer with `tile_channels` output channels per DMA tile
/// (must divide out_c and respect the packing group). When
/// `double_buffered` is false the DMA and compute serialize (single
/// buffer), quantifying what the ping-pong scheme buys.
///
/// When `timeline` is non-null, the modelled schedule is recorded on two
/// lanes — per-tile compute slices on track 0 ("core0") and µDMA transfer
/// windows on track 1 ("udma") — using the same makespan arithmetic the
/// result reports, so overlap (or its absence) is visible in Perfetto.
/// Each schedule slot additionally emits "soc/compute_busy" and
/// "soc/dma_busy" counter-track points (busy fraction of the slot, 0..1),
/// the streamed path's sampled-telemetry view (xtel, DESIGN.md §14).
StreamedConvResult run_conv_streamed(const kernels::ConvLayerData& data,
                                     kernels::ConvVariant v,
                                     const sim::CoreConfig& cfg,
                                     int tile_channels,
                                     bool double_buffered = true,
                                     u32 dma_bytes_per_cycle = 4,
                                     obs::Timeline* timeline = nullptr);

}  // namespace xpulp::soc
