#include "xasm/text_asm.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <vector>

#include "isa/disasm.hpp"

namespace xpulp::xasm {

namespace {

using isa::Mnemonic;
using isa::SimdFmt;

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

/// Split the operand field on top-level commas (parentheses kept intact).
std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  size_t start = 0;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  const auto last = trim(s.substr(start));
  if (!last.empty()) out.push_back(last);
  return out;
}

std::optional<i64> parse_int(std::string_view tok) {
  tok = trim(tok);
  bool neg = false;
  if (!tok.empty() && (tok.front() == '-' || tok.front() == '+')) {
    neg = tok.front() == '-';
    tok.remove_prefix(1);
  }
  if (tok.empty()) return std::nullopt;
  int bases = 10;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    tok.remove_prefix(2);
    bases = 16;
  }
  u64 v = 0;
  const auto [p, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v, bases);
  if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
  const i64 sv = static_cast<i64>(v);
  return neg ? -sv : sv;
}

struct Ctx {
  Assembler& a;
  unsigned line;
  std::map<std::string, Assembler::Label, std::less<>>& labels;

  [[noreturn]] void fail(const std::string& what) const {
    throw TextAsmError(line, what);
  }

  u8 reg(std::string_view tok) const {
    try {
      return parse_register(tok);
    } catch (const AsmError& e) {
      fail(e.what());
    }
  }

  i32 imm(std::string_view tok) const {
    const auto v = parse_int(tok);
    if (!v) fail("expected an integer, got '" + std::string(tok) + "'");
    return static_cast<i32>(*v);
  }

  /// Branch/jump/loop target: a named label (forward references allowed).
  Assembler::Label target(std::string_view tok) {
    if (parse_int(tok)) {
      fail("numeric branch targets are not supported; use a label");
    }
    const std::string key(tok);
    auto it = labels.find(key);
    if (it == labels.end()) {
      it = labels.emplace(key, a.new_label()).first;
    }
    return it->second;
  }

  /// Memory operand "imm(reg)" or "imm(reg!)"; returns {reg, imm, postinc}.
  struct MemOp {
    u8 base;
    i32 offset;
    bool post_increment;
  };
  MemOp mem(std::string_view tok) const {
    const size_t open = tok.find('(');
    const size_t close = tok.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      fail("expected 'imm(reg)' memory operand, got '" + std::string(tok) + "'");
    }
    std::string_view inner = trim(tok.substr(open + 1, close - open - 1));
    bool post = false;
    if (!inner.empty() && inner.back() == '!') {
      post = true;
      inner = trim(inner.substr(0, inner.size() - 1));
    }
    const std::string_view off = trim(tok.substr(0, open));
    return {reg(inner), off.empty() ? 0 : imm(off), post};
  }
};

/// SIMD format suffix: ".b", ".sc.b", ".h", ".n", ".c", ...
std::optional<SimdFmt> parse_fmt_suffix(std::string_view suffix) {
  if (suffix == ".b") return SimdFmt::kB;
  if (suffix == ".sc.b") return SimdFmt::kBSc;
  if (suffix == ".h") return SimdFmt::kH;
  if (suffix == ".sc.h") return SimdFmt::kHSc;
  if (suffix == ".n") return SimdFmt::kN;
  if (suffix == ".sc.n") return SimdFmt::kNSc;
  if (suffix == ".c") return SimdFmt::kC;
  if (suffix == ".sc.c") return SimdFmt::kCSc;
  return std::nullopt;
}

std::optional<Mnemonic> parse_pv_op(std::string_view name) {
  static const std::map<std::string_view, Mnemonic> kOps = {
      {"add", Mnemonic::kPvAdd},       {"sub", Mnemonic::kPvSub},
      {"avg", Mnemonic::kPvAvg},       {"avgu", Mnemonic::kPvAvgu},
      {"max", Mnemonic::kPvMax},       {"maxu", Mnemonic::kPvMaxu},
      {"min", Mnemonic::kPvMin},       {"minu", Mnemonic::kPvMinu},
      {"srl", Mnemonic::kPvSrl},       {"sra", Mnemonic::kPvSra},
      {"sll", Mnemonic::kPvSll},       {"abs", Mnemonic::kPvAbs},
      {"and", Mnemonic::kPvAnd},       {"or", Mnemonic::kPvOr},
      {"xor", Mnemonic::kPvXor},       {"dotup", Mnemonic::kPvDotup},
      {"dotusp", Mnemonic::kPvDotusp}, {"dotsp", Mnemonic::kPvDotsp},
      {"sdotup", Mnemonic::kPvSdotup}, {"sdotusp", Mnemonic::kPvSdotusp},
      {"sdotsp", Mnemonic::kPvSdotsp},
  };
  const auto it = kOps.find(name);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

void emit_instruction(Ctx& c, std::string_view mnem_raw,
                      const std::vector<std::string_view>& ops) {
  Assembler& a = c.a;
  const std::string m = lower(mnem_raw);
  auto need = [&](size_t n) {
    if (ops.size() != n) {
      c.fail("'" + m + "' expects " + std::to_string(n) + " operands, got " +
             std::to_string(ops.size()));
    }
  };

  // ---- pseudo-instructions ----
  if (m == "nop") { need(0); a.nop(); return; }
  if (m == "ecall" || m == "halt") { need(0); a.ecall(); return; }
  if (m == "ebreak") { need(0); a.ebreak(); return; }
  if (m == "fence") { need(0); a.nop(); return; }  // single hart
  if (m == "ret") { need(0); a.ret(); return; }
  if (m == "li") { need(2); a.li(c.reg(ops[0]), c.imm(ops[1])); return; }
  if (m == "mv") { need(2); a.mv(c.reg(ops[0]), c.reg(ops[1])); return; }
  if (m == "j") { need(1); a.j(c.target(ops[0])); return; }

  // ---- register-register ALU / mul-div / pulp scalar ----
  using RRR = void (Assembler::*)(u8, u8, u8);
  static const std::map<std::string, RRR> kRRR = {
      {"add", &Assembler::add},       {"sub", &Assembler::sub},
      {"sll", &Assembler::sll},       {"slt", &Assembler::slt},
      {"sltu", &Assembler::sltu},     {"xor", &Assembler::xor_},
      {"srl", &Assembler::srl},       {"sra", &Assembler::sra},
      {"or", &Assembler::or_},        {"and", &Assembler::and_},
      {"mul", &Assembler::mul},       {"mulh", &Assembler::mulh},
      {"mulhu", &Assembler::mulhu},   {"div", &Assembler::div},
      {"divu", &Assembler::divu},     {"rem", &Assembler::rem},
      {"remu", &Assembler::remu},     {"p.min", &Assembler::p_min},
      {"p.minu", &Assembler::p_minu}, {"p.max", &Assembler::p_max},
      {"p.maxu", &Assembler::p_maxu}, {"p.ror", &Assembler::p_ror},
      {"p.mac", &Assembler::p_mac},   {"p.msu", &Assembler::p_msu},
  };
  if (const auto it = kRRR.find(m); it != kRRR.end()) {
    need(3);
    (a.*it->second)(c.reg(ops[0]), c.reg(ops[1]), c.reg(ops[2]));
    return;
  }

  // ---- unary pulp scalar ----
  using RR = void (Assembler::*)(u8, u8);
  static const std::map<std::string, RR> kRR = {
      {"p.abs", &Assembler::p_abs},     {"p.exths", &Assembler::p_exths},
      {"p.exthz", &Assembler::p_exthz}, {"p.extbs", &Assembler::p_extbs},
      {"p.extbz", &Assembler::p_extbz}, {"p.cnt", &Assembler::p_cnt},
      {"p.ff1", &Assembler::p_ff1},     {"p.fl1", &Assembler::p_fl1},
      {"p.clb", &Assembler::p_clb},
  };
  if (const auto it = kRR.find(m); it != kRR.end()) {
    need(2);
    (a.*it->second)(c.reg(ops[0]), c.reg(ops[1]));
    return;
  }

  // ---- immediate ALU ----
  using RRI = void (Assembler::*)(u8, u8, i32);
  static const std::map<std::string, RRI> kRRI = {
      {"addi", &Assembler::addi},   {"slti", &Assembler::slti},
      {"sltiu", &Assembler::sltiu}, {"xori", &Assembler::xori},
      {"ori", &Assembler::ori},     {"andi", &Assembler::andi},
  };
  if (const auto it = kRRI.find(m); it != kRRI.end()) {
    need(3);
    (a.*it->second)(c.reg(ops[0]), c.reg(ops[1]), c.imm(ops[2]));
    return;
  }
  if (m == "slli") { need(3); a.slli(c.reg(ops[0]), c.reg(ops[1]), static_cast<u32>(c.imm(ops[2]))); return; }
  if (m == "srli") { need(3); a.srli(c.reg(ops[0]), c.reg(ops[1]), static_cast<u32>(c.imm(ops[2]))); return; }
  if (m == "srai") { need(3); a.srai(c.reg(ops[0]), c.reg(ops[1]), static_cast<u32>(c.imm(ops[2]))); return; }
  if (m == "p.clip") { need(3); a.p_clip(c.reg(ops[0]), c.reg(ops[1]), static_cast<u32>(c.imm(ops[2]))); return; }
  if (m == "p.clipu") { need(3); a.p_clipu(c.reg(ops[0]), c.reg(ops[1]), static_cast<u32>(c.imm(ops[2]))); return; }
  if (m == "lui") {
    need(2);
    a.lui(c.reg(ops[0]), static_cast<u32>(c.imm(ops[1])) << 12);
    return;
  }
  if (m == "auipc") {
    need(2);
    a.auipc(c.reg(ops[0]), static_cast<u32>(c.imm(ops[1])) << 12);
    return;
  }
  if (m == "csrrs") {
    need(3);
    a.csrrs(c.reg(ops[0]), static_cast<u32>(c.imm(ops[1])), c.reg(ops[2]));
    return;
  }
  if (m == "csrrw") {
    need(3);
    a.csrrw(c.reg(ops[0]), static_cast<u32>(c.imm(ops[1])), c.reg(ops[2]));
    return;
  }
  if (m == "csrrwi") {
    need(3);
    a.csrrwi(c.reg(ops[0]), static_cast<u32>(c.imm(ops[1])),
             static_cast<u32>(c.imm(ops[2])));
    return;
  }

  // ---- bit manipulation: p.extract rd, rs1, Is3, Is2 ----
  if (m == "p.extract" || m == "p.extractu" || m == "p.insert" ||
      m == "p.bclr" || m == "p.bset") {
    need(4);
    const u32 is3 = static_cast<u32>(c.imm(ops[2]));
    const u32 is2 = static_cast<u32>(c.imm(ops[3]));
    const u32 width = is3 + 1;
    if (m == "p.extract") a.p_extract(c.reg(ops[0]), c.reg(ops[1]), width, is2);
    else if (m == "p.extractu") a.p_extractu(c.reg(ops[0]), c.reg(ops[1]), width, is2);
    else if (m == "p.insert") a.p_insert(c.reg(ops[0]), c.reg(ops[1]), width, is2);
    else if (m == "p.bclr") a.p_bclr(c.reg(ops[0]), c.reg(ops[1]), width, is2);
    else a.p_bset(c.reg(ops[0]), c.reg(ops[1]), width, is2);
    return;
  }

  // ---- branches ----
  using BR = void (Assembler::*)(u8, u8, Assembler::Label);
  static const std::map<std::string, BR> kBranches = {
      {"beq", &Assembler::beq},   {"bne", &Assembler::bne},
      {"blt", &Assembler::blt},   {"bge", &Assembler::bge},
      {"bltu", &Assembler::bltu}, {"bgeu", &Assembler::bgeu},
  };
  if (const auto it = kBranches.find(m); it != kBranches.end()) {
    need(3);
    (a.*it->second)(c.reg(ops[0]), c.reg(ops[1]), c.target(ops[2]));
    return;
  }
  if (m == "p.beqimm" || m == "p.bneimm") {
    need(3);
    if (m == "p.beqimm") {
      a.p_beqimm(c.reg(ops[0]), c.imm(ops[1]), c.target(ops[2]));
    } else {
      a.p_bneimm(c.reg(ops[0]), c.imm(ops[1]), c.target(ops[2]));
    }
    return;
  }
  if (m == "jal") {
    need(2);
    a.jal(c.reg(ops[0]), c.target(ops[1]));
    return;
  }
  if (m == "jalr") {
    need(2);
    const auto mo = c.mem(ops[1]);
    a.jalr(c.reg(ops[0]), mo.base, mo.offset);
    return;
  }

  // ---- loads / stores (plain and post-increment) ----
  static const std::map<std::string, int> kLoads = {
      {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 3}, {"lhu", 4},
      {"p.lb!", 5}, {"p.lh!", 6}, {"p.lw!", 7}, {"p.lbu!", 8}, {"p.lhu!", 9}};
  if (const auto it = kLoads.find(m); it != kLoads.end()) {
    need(2);
    const u8 rd = c.reg(ops[0]);
    const auto mo = c.mem(ops[1]);
    switch (it->second) {
      case 0: a.lb(rd, mo.base, mo.offset); break;
      case 1: a.lh(rd, mo.base, mo.offset); break;
      case 2: a.lw(rd, mo.base, mo.offset); break;
      case 3: a.lbu(rd, mo.base, mo.offset); break;
      case 4: a.lhu(rd, mo.base, mo.offset); break;
      case 5: a.p_lb_post(rd, mo.base, mo.offset); break;
      case 6: a.p_lh_post(rd, mo.base, mo.offset); break;
      case 7: a.p_lw_post(rd, mo.base, mo.offset); break;
      case 8: a.p_lbu_post(rd, mo.base, mo.offset); break;
      case 9: a.p_lhu_post(rd, mo.base, mo.offset); break;
    }
    return;
  }
  static const std::map<std::string, int> kStores = {
      {"sb", 0}, {"sh", 1}, {"sw", 2},
      {"p.sb!", 3}, {"p.sh!", 4}, {"p.sw!", 5}};
  if (const auto it = kStores.find(m); it != kStores.end()) {
    need(2);
    const u8 data = c.reg(ops[0]);
    const auto mo = c.mem(ops[1]);
    switch (it->second) {
      case 0: a.sb(data, mo.base, mo.offset); break;
      case 1: a.sh(data, mo.base, mo.offset); break;
      case 2: a.sw(data, mo.base, mo.offset); break;
      case 3: a.p_sb_post(data, mo.base, mo.offset); break;
      case 4: a.p_sh_post(data, mo.base, mo.offset); break;
      case 5: a.p_sw_post(data, mo.base, mo.offset); break;
    }
    return;
  }

  // ---- hardware loops: the loop index is "x0" / "x1" or 0 / 1 ----
  auto loop_idx = [&](std::string_view tok) -> unsigned {
    std::string t = lower(tok);
    if (t == "x0" || t == "0") return 0;
    if (t == "x1" || t == "1") return 1;
    c.fail("hardware-loop index must be 0 or 1");
  };
  if (m == "lp.setupi") {
    need(3);
    a.lp_setupi(loop_idx(ops[0]), static_cast<u32>(c.imm(ops[1])),
                c.target(ops[2]));
    return;
  }
  if (m == "lp.setup") {
    need(3);
    a.lp_setup(loop_idx(ops[0]), c.reg(ops[1]), c.target(ops[2]));
    return;
  }
  if (m == "lp.starti") { need(2); a.lp_starti(loop_idx(ops[0]), c.target(ops[1])); return; }
  if (m == "lp.endi") { need(2); a.lp_endi(loop_idx(ops[0]), c.target(ops[1])); return; }
  if (m == "lp.count") { need(2); a.lp_count(loop_idx(ops[0]), c.reg(ops[1])); return; }
  if (m == "lp.counti") {
    need(2);
    a.lp_counti(loop_idx(ops[0]), static_cast<u32>(c.imm(ops[1])));
    return;
  }

  // ---- packed SIMD: pv.<op>[.sc].{b,h,n,c} ----
  if (m.rfind("pv.qnt", 0) == 0) {
    need(3);
    const unsigned q = (m == "pv.qnt.n") ? 4 : (m == "pv.qnt.c") ? 2 : 0;
    if (q == 0) c.fail("pv.qnt needs a .n or .c suffix");
    // Third operand printed as "(reg)" by the disassembler.
    std::string_view rs2 = trim(ops[2]);
    if (!rs2.empty() && rs2.front() == '(' && rs2.back() == ')') {
      rs2 = trim(rs2.substr(1, rs2.size() - 2));
    }
    a.pv_qnt(q, c.reg(ops[0]), c.reg(ops[1]), c.reg(rs2));
    return;
  }
  // Element manipulation: "pv.extract.b rd, rs1, lane" etc.
  if (m == "pv.extract.b" || m == "pv.extract.h" || m == "pv.extractu.b" ||
      m == "pv.extractu.h" || m == "pv.insert.b" || m == "pv.insert.h") {
    need(3);
    const SimdFmt f = (m.back() == 'b') ? SimdFmt::kB : SimdFmt::kH;
    const u32 lane = static_cast<u32>(c.imm(ops[2]));
    if (m.rfind("pv.extractu", 0) == 0) {
      a.pv_extractu(f, c.reg(ops[0]), c.reg(ops[1]), lane);
    } else if (m.rfind("pv.extract", 0) == 0) {
      a.pv_extract(f, c.reg(ops[0]), c.reg(ops[1]), lane);
    } else {
      a.pv_insert(f, c.reg(ops[0]), c.reg(ops[1]), lane);
    }
    return;
  }
  if (m == "pv.shuffle.b" || m == "pv.shuffle.h") {
    need(3);
    a.pv_shuffle(m.back() == 'b' ? SimdFmt::kB : SimdFmt::kH, c.reg(ops[0]),
                 c.reg(ops[1]), c.reg(ops[2]));
    return;
  }
  if (m == "pv.pack.h") {
    need(3);
    a.pv_pack_h(c.reg(ops[0]), c.reg(ops[1]), c.reg(ops[2]));
    return;
  }
  // Mixed virtual dot products carry no format suffix (widths come from
  // the mpc CSR at run time).
  {
    static const std::map<std::string, Mnemonic> kMixed = {
        {"pv.mldotup", Mnemonic::kPvMldotup},
        {"pv.mldotusp", Mnemonic::kPvMldotusp},
        {"pv.mldotsp", Mnemonic::kPvMldotsp},
        {"pv.mlsdotup", Mnemonic::kPvMlsdotup},
        {"pv.mlsdotusp", Mnemonic::kPvMlsdotusp},
        {"pv.mlsdotsp", Mnemonic::kPvMlsdotsp},
    };
    if (const auto it = kMixed.find(m); it != kMixed.end()) {
      need(3);
      a.pv_op(it->second, SimdFmt::kNone, c.reg(ops[0]), c.reg(ops[1]),
              c.reg(ops[2]));
      return;
    }
  }
  if (m.rfind("pv.", 0) == 0) {
    // Find the format suffix: the last 1 or 2 dot-components.
    for (const size_t cut : {m.rfind(".sc."), m.rfind('.')}) {
      if (cut == std::string::npos || cut < 3) continue;
      const auto fmt = parse_fmt_suffix(std::string_view(m).substr(cut));
      if (!fmt) continue;
      const auto op = parse_pv_op(std::string_view(m).substr(3, cut - 3));
      if (!op) break;
      if (*op == Mnemonic::kPvAbs) {
        need(2);
        a.pv_abs(*fmt, c.reg(ops[0]), c.reg(ops[1]));
      } else {
        need(3);
        a.pv_op(*op, *fmt, c.reg(ops[0]), c.reg(ops[1]), c.reg(ops[2]));
      }
      return;
    }
    c.fail("unknown SIMD instruction '" + m + "'");
  }

  c.fail("unknown mnemonic '" + m + "'");
}

}  // namespace

u8 parse_register(std::string_view token) {
  const std::string t = lower(trim(token));
  for (unsigned i = 0; i < 32; ++i) {
    if (t == isa::reg_name(i)) return static_cast<u8>(i);
  }
  if (t.size() >= 2 && t[0] == 'x') {
    const auto v = parse_int(t.substr(1));
    if (v && *v >= 0 && *v <= 31) return static_cast<u8>(*v);
  }
  if (t == "fp") return 8;  // frame-pointer alias for s0
  throw AsmError("unknown register '" + std::string(token) + "'");
}

Program assemble_text(std::string_view source, addr_t base) {
  Assembler a(base);
  std::map<std::string, Assembler::Label, std::less<>> labels;

  unsigned line_no = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    const size_t nl = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, nl == std::string_view::npos ? source.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments.
    for (const auto marker : {std::string_view("#"), std::string_view("//")}) {
      const size_t at = line.find(marker);
      if (at != std::string_view::npos) line = line.substr(0, at);
    }
    line = trim(line);
    if (line.empty()) continue;

    Ctx ctx{a, line_no, labels};

    // Leading labels ("name:"), possibly followed by an instruction.
    while (true) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view name = trim(line.substr(0, colon));
      if (name.empty() ||
          name.find_first_of(" \t(),") != std::string_view::npos) {
        break;  // a ':' inside an operand, not a label
      }
      const std::string key(name);
      auto it = labels.find(key);
      if (it == labels.end()) {
        it = labels.emplace(key, a.new_label()).first;
      }
      try {
        a.bind(it->second);
      } catch (const AsmError& e) {
        ctx.fail(e.what());
      }
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Mnemonic = first whitespace-delimited token.
    const size_t sp = line.find_first_of(" \t");
    const std::string_view mnem =
        sp == std::string_view::npos ? line : line.substr(0, sp);
    const std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));
    try {
      emit_instruction(ctx, mnem, split_operands(rest));
    } catch (const TextAsmError&) {
      throw;
    } catch (const AsmError& e) {
      ctx.fail(e.what());
    }
  }
  return a.finish();
}

}  // namespace xpulp::xasm
