// A loadable program image: a contiguous block of 32-bit instruction words
// plus an entry point. Produced by the Assembler, consumed by the SoC
// loader and directly by tests.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "mem/memory.hpp"

namespace xpulp::xasm {

class Program {
 public:
  Program(addr_t base, std::vector<u32> words)
      : base_(base), words_(std::move(words)) {}

  addr_t base() const { return base_; }
  addr_t entry() const { return base_; }
  u32 size_bytes() const { return static_cast<u32>(words_.size() * 4); }
  u32 size_words() const { return static_cast<u32>(words_.size()); }
  std::span<const u32> words() const { return words_; }

  /// Copy the image into guest memory at its base address.
  void load(mem::Memory& mem) const {
    for (u32 i = 0; i < words_.size(); ++i) {
      mem.store_u32(base_ + i * 4, words_[i]);
    }
  }

 private:
  addr_t base_;
  std::vector<u32> words_;
};

}  // namespace xpulp::xasm
