// Text-based assembler front end.
//
// Accepts one instruction or label per line, `#` / `//` comments, ABI or
// xN register names, decimal/hex immediates, and named labels for
// branch/jump/hardware-loop targets (forward references allowed). The
// accepted operand syntax matches the disassembler's output for every
// instruction whose operands are registers/immediates, so
// assemble(disassemble(word)) round-trips for the non-control-flow ISA;
// branch targets must be labels.
//
//   loop:
//     p.lw!      t1, 4(a0!)        # post-increment load
//     pv.sdotusp.n a4, t1, t2
//     addi       s3, s3, -1
//     bne        s3, zero, loop
//     ecall
#pragma once

#include <string_view>

#include "xasm/assembler.hpp"

namespace xpulp::xasm {

/// Syntax or semantic errors carry the 1-based source line.
class TextAsmError : public AsmError {
 public:
  TextAsmError(unsigned line, const std::string& what)
      : AsmError("line " + std::to_string(line) + ": " + what), line_(line) {}
  unsigned line() const { return line_; }

 private:
  unsigned line_;
};

/// Assemble a whole source buffer into a program image based at `base`.
Program assemble_text(std::string_view source, addr_t base = 0);

/// Parse a register name ("a0", "x10", "zero", ...); returns 0..31.
/// Throws AsmError for unknown names.
u8 parse_register(std::string_view token);

}  // namespace xpulp::xasm
