// Programmatic assembler for the RI5CY/XpulpNN instruction set.
//
// Kernels in this repository are *generated* (the host plays the role of
// the compiler): a generator calls one method per instruction, uses labels
// for control flow, and finish() resolves fixups and encodes the binary
// image. This mirrors how the paper's kernels were produced (C with
// builtins lowering to the new instructions) while keeping the whole
// toolchain in-repo.
//
// Conventions:
//   - all emitted instructions are 32-bit (no compressed forms);
//   - branch/jump targets are labels; immediates are byte offsets computed
//     at finish() time;
//   - hardware loops: lp_setup*(l, count, end_label) marks the next
//     instruction as the loop start; bind the end label *after* the last
//     body instruction.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "xasm/program.hpp"

namespace xpulp::xasm {

/// ABI register numbers for readable generator code.
namespace reg {
inline constexpr u8 zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
inline constexpr u8 t0 = 5, t1 = 6, t2 = 7;
inline constexpr u8 s0 = 8, s1 = 9;
inline constexpr u8 a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                    a6 = 16, a7 = 17;
inline constexpr u8 s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                    s8 = 24, s9 = 25, s10 = 26, s11 = 27;
inline constexpr u8 t3 = 28, t4 = 29, t5 = 30, t6 = 31;
}  // namespace reg

class Assembler {
 public:
  using Label = u32;

  explicit Assembler(addr_t base = 0) : base_(base) {
    if (base % 4 != 0) throw AsmError("program base must be word-aligned");
  }

  // ---- Labels ----
  Label new_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }
  void bind(Label l);
  /// Convenience: create a label bound at the current position.
  Label here() {
    const Label l = new_label();
    bind(l);
    return l;
  }
  addr_t current_addr() const {
    return base_ + static_cast<u32>(instrs_.size()) * 4;
  }

  // ---- RV32I ----
  void lui(u8 rd, u32 imm_value);   // imm_value: full value, low 12 bits == 0
  void auipc(u8 rd, u32 imm_value);
  void jal(u8 rd, Label target);
  void jalr(u8 rd, u8 rs1, i32 imm);
  void beq(u8 rs1, u8 rs2, Label t);
  void bne(u8 rs1, u8 rs2, Label t);
  void blt(u8 rs1, u8 rs2, Label t);
  void bge(u8 rs1, u8 rs2, Label t);
  void bltu(u8 rs1, u8 rs2, Label t);
  void bgeu(u8 rs1, u8 rs2, Label t);
  void lb(u8 rd, u8 rs1, i32 imm);
  void lh(u8 rd, u8 rs1, i32 imm);
  void lw(u8 rd, u8 rs1, i32 imm);
  void lbu(u8 rd, u8 rs1, i32 imm);
  void lhu(u8 rd, u8 rs1, i32 imm);
  void sb(u8 rs2, u8 rs1, i32 imm);
  void sh(u8 rs2, u8 rs1, i32 imm);
  void sw(u8 rs2, u8 rs1, i32 imm);
  void addi(u8 rd, u8 rs1, i32 imm);
  void slti(u8 rd, u8 rs1, i32 imm);
  void sltiu(u8 rd, u8 rs1, i32 imm);
  void xori(u8 rd, u8 rs1, i32 imm);
  void ori(u8 rd, u8 rs1, i32 imm);
  void andi(u8 rd, u8 rs1, i32 imm);
  void slli(u8 rd, u8 rs1, u32 shamt);
  void srli(u8 rd, u8 rs1, u32 shamt);
  void srai(u8 rd, u8 rs1, u32 shamt);
  void add(u8 rd, u8 rs1, u8 rs2);
  void sub(u8 rd, u8 rs1, u8 rs2);
  void sll(u8 rd, u8 rs1, u8 rs2);
  void slt(u8 rd, u8 rs1, u8 rs2);
  void sltu(u8 rd, u8 rs1, u8 rs2);
  void xor_(u8 rd, u8 rs1, u8 rs2);
  void srl(u8 rd, u8 rs1, u8 rs2);
  void sra(u8 rd, u8 rs1, u8 rs2);
  void or_(u8 rd, u8 rs1, u8 rs2);
  void and_(u8 rd, u8 rs1, u8 rs2);
  void ecall();
  void ebreak();
  void csrrs(u8 rd, u32 csr, u8 rs1);
  void csrrw(u8 rd, u32 csr, u8 rs1);
  void csrrwi(u8 rd, u32 csr, u32 uimm5);

  // ---- RV32M ----
  void mul(u8 rd, u8 rs1, u8 rs2);
  void mulh(u8 rd, u8 rs1, u8 rs2);
  void mulhu(u8 rd, u8 rs1, u8 rs2);
  void div(u8 rd, u8 rs1, u8 rs2);
  void divu(u8 rd, u8 rs1, u8 rs2);
  void rem(u8 rd, u8 rs1, u8 rs2);
  void remu(u8 rd, u8 rs1, u8 rs2);

  // ---- Pseudo-instructions ----
  void nop() { addi(0, 0, 0); }
  void mv(u8 rd, u8 rs1) { addi(rd, rs1, 0); }
  void li(u8 rd, i32 value);  // lui+addi as needed
  void j(Label t) { jal(0, t); }
  void ret() { jalr(0, reg::ra, 0); }
  void halt() { ecall(); }

  // ---- XpulpV2: post-increment / indexed memory ----
  void p_lb_post(u8 rd, u8 base, i32 inc);
  void p_lh_post(u8 rd, u8 base, i32 inc);
  void p_lw_post(u8 rd, u8 base, i32 inc);
  void p_lbu_post(u8 rd, u8 base, i32 inc);
  void p_lhu_post(u8 rd, u8 base, i32 inc);
  void p_sb_post(u8 data, u8 base, i32 inc);
  void p_sh_post(u8 data, u8 base, i32 inc);
  void p_sw_post(u8 data, u8 base, i32 inc);
  void p_lw_post_r(u8 rd, u8 base, u8 inc);
  void p_lw_rr(u8 rd, u8 base, u8 idx);
  void p_sw_post_r(u8 data, u8 base, u8 inc);
  void p_sw_rr(u8 data, u8 base, u8 idx);

  // ---- XpulpV2: scalar ALU / bit manipulation ----
  void p_abs(u8 rd, u8 rs1);
  void p_min(u8 rd, u8 rs1, u8 rs2);
  void p_minu(u8 rd, u8 rs1, u8 rs2);
  void p_max(u8 rd, u8 rs1, u8 rs2);
  void p_maxu(u8 rd, u8 rs1, u8 rs2);
  void p_exths(u8 rd, u8 rs1);
  void p_exthz(u8 rd, u8 rs1);
  void p_extbs(u8 rd, u8 rs1);
  void p_extbz(u8 rd, u8 rs1);
  void p_cnt(u8 rd, u8 rs1);
  void p_ff1(u8 rd, u8 rs1);
  void p_fl1(u8 rd, u8 rs1);
  void p_clb(u8 rd, u8 rs1);
  void p_ror(u8 rd, u8 rs1, u8 rs2);
  void p_clip(u8 rd, u8 rs1, u32 bits);
  void p_clipu(u8 rd, u8 rs1, u32 bits);
  void p_mac(u8 rd, u8 rs1, u8 rs2);
  void p_msu(u8 rd, u8 rs1, u8 rs2);
  void p_extract(u8 rd, u8 rs1, u32 width, u32 pos);    // sign-extending
  void p_extractu(u8 rd, u8 rs1, u32 width, u32 pos);   // zero-extending
  void p_insert(u8 rd, u8 rs1, u32 width, u32 pos);
  void p_bclr(u8 rd, u8 rs1, u32 width, u32 pos);
  void p_bset(u8 rd, u8 rs1, u32 width, u32 pos);

  // ---- XpulpV2: hardware loops ----
  /// lp_setup: count from a register; the loop body starts at the next
  /// emitted instruction and ends just before `end` is bound.
  void lp_setup(unsigned l, u8 count_reg, Label end);
  void lp_setupi(unsigned l, u32 count_imm5, Label end);
  void lp_starti(unsigned l, Label start);
  void lp_endi(unsigned l, Label end);
  void lp_count(unsigned l, u8 count_reg);
  void lp_counti(unsigned l, u32 count);

  // ---- Packed SIMD (formats: b/h are XpulpV2; n/c are XpulpNN) ----
  void pv_op(isa::Mnemonic op, isa::SimdFmt fmt, u8 rd, u8 rs1, u8 rs2);
  void pv_add(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvAdd, f, rd, rs1, rs2); }
  void pv_sub(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSub, f, rd, rs1, rs2); }
  void pv_avg(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvAvg, f, rd, rs1, rs2); }
  void pv_avgu(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvAvgu, f, rd, rs1, rs2); }
  void pv_max(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMax, f, rd, rs1, rs2); }
  void pv_maxu(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMaxu, f, rd, rs1, rs2); }
  void pv_min(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMin, f, rd, rs1, rs2); }
  void pv_minu(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMinu, f, rd, rs1, rs2); }
  void pv_srl(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSrl, f, rd, rs1, rs2); }
  void pv_sra(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSra, f, rd, rs1, rs2); }
  void pv_sll(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSll, f, rd, rs1, rs2); }
  void pv_abs(isa::SimdFmt f, u8 rd, u8 rs1) { pv_op(isa::Mnemonic::kPvAbs, f, rd, rs1, 0); }
  void pv_and(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvAnd, f, rd, rs1, rs2); }
  void pv_or(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvOr, f, rd, rs1, rs2); }
  void pv_xor(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvXor, f, rd, rs1, rs2); }
  void pv_dotup(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvDotup, f, rd, rs1, rs2); }
  void pv_dotusp(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvDotusp, f, rd, rs1, rs2); }
  void pv_dotsp(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvDotsp, f, rd, rs1, rs2); }
  void pv_sdotup(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSdotup, f, rd, rs1, rs2); }
  void pv_sdotusp(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSdotusp, f, rd, rs1, rs2); }
  void pv_sdotsp(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvSdotsp, f, rd, rs1, rs2); }
  /// Mixed virtual dot products (XpulpNN successor, Ottavi et al.): no
  /// static format — operand widths come from the mpc CSR at run time.
  void pv_mldotup(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMldotup, isa::SimdFmt::kNone, rd, rs1, rs2); }
  void pv_mldotusp(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMldotusp, isa::SimdFmt::kNone, rd, rs1, rs2); }
  void pv_mldotsp(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMldotsp, isa::SimdFmt::kNone, rd, rs1, rs2); }
  void pv_mlsdotup(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMlsdotup, isa::SimdFmt::kNone, rd, rs1, rs2); }
  void pv_mlsdotusp(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMlsdotusp, isa::SimdFmt::kNone, rd, rs1, rs2); }
  void pv_mlsdotsp(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvMlsdotsp, isa::SimdFmt::kNone, rd, rs1, rs2); }
  /// Element manipulation (b/h formats).
  void pv_extract(isa::SimdFmt f, u8 rd, u8 rs1, u32 lane);
  void pv_extractu(isa::SimdFmt f, u8 rd, u8 rs1, u32 lane);
  void pv_insert(isa::SimdFmt f, u8 rd, u8 rs1, u32 lane);
  void pv_shuffle(isa::SimdFmt f, u8 rd, u8 rs1, u8 rs2);
  void pv_pack_h(u8 rd, u8 rs1, u8 rs2) { pv_op(isa::Mnemonic::kPvPackH, isa::SimdFmt::kH, rd, rs1, rs2); }

  /// Immediate-compare branches (imm5 in [-16, 15]).
  void p_beqimm(u8 rs1, i32 imm5, Label t);
  void p_bneimm(u8 rs1, i32 imm5, Label t);

  /// pv.qnt.{n,c}: q_bits in {4, 2}.
  void pv_qnt(unsigned q_bits, u8 rd, u8 rs1, u8 rs2);

  // ---- Finalization ----
  u32 instruction_count() const { return static_cast<u32>(instrs_.size()); }
  Program finish();

 private:
  static constexpr i64 kUnbound = -1;

  enum class FixKind { kBranch, kJal, kHwloopEnd, kHwloopStart };
  struct Fixup {
    u32 index;  // instruction index whose imm needs the label offset
    Label label;
    FixKind kind;
  };

  void emit(isa::Instr in) { instrs_.push_back(in); }
  void emit_fixup(isa::Instr in, Label l, FixKind kind) {
    fixups_.push_back({static_cast<u32>(instrs_.size()), l, kind});
    instrs_.push_back(in);
  }
  isa::Instr mk(isa::Mnemonic op, u8 rd, u8 rs1, u8 rs2, i32 imm = 0,
                u8 imm2 = 0) const;
  void branch(isa::Mnemonic op, u8 rs1, u8 rs2, Label t);
  void mem_i(isa::Mnemonic op, u8 rd_or_data, u8 base, i32 imm, bool store);
  void bitmanip(isa::Mnemonic op, u8 rd, u8 rs1, u32 width, u32 pos);

  addr_t base_;
  std::vector<isa::Instr> instrs_;
  std::vector<i64> labels_;  // bound byte address or kUnbound
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace xpulp::xasm
