#include "xasm/assembler.hpp"

#include "common/bitops.hpp"
#include "isa/encoding.hpp"

namespace xpulp::xasm {

using isa::Instr;
using isa::Mnemonic;
using isa::SimdFmt;

Instr Assembler::mk(Mnemonic op, u8 rd, u8 rs1, u8 rs2, i32 imm,
                    u8 imm2) const {
  Instr in;
  in.op = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  in.imm2 = imm2;
  return in;
}

void Assembler::bind(Label l) {
  if (l >= labels_.size()) throw AsmError("unknown label");
  if (labels_[l] != kUnbound) throw AsmError("label bound twice");
  labels_[l] = current_addr();
}

// ---- RV32I ----

void Assembler::lui(u8 rd, u32 imm_value) {
  if (imm_value & 0xfffu) throw AsmError("lui immediate has low bits set");
  emit(mk(Mnemonic::kLui, rd, 0, 0, static_cast<i32>(imm_value)));
}

void Assembler::auipc(u8 rd, u32 imm_value) {
  emit(mk(Mnemonic::kAuipc, rd, 0, 0, static_cast<i32>(imm_value)));
}

void Assembler::jal(u8 rd, Label target) {
  emit_fixup(mk(Mnemonic::kJal, rd, 0, 0), target, FixKind::kJal);
}

void Assembler::jalr(u8 rd, u8 rs1, i32 imm) {
  emit(mk(Mnemonic::kJalr, rd, rs1, 0, imm));
}

void Assembler::branch(Mnemonic op, u8 rs1, u8 rs2, Label t) {
  emit_fixup(mk(op, 0, rs1, rs2), t, FixKind::kBranch);
}

void Assembler::beq(u8 a, u8 b, Label t) { branch(Mnemonic::kBeq, a, b, t); }
void Assembler::bne(u8 a, u8 b, Label t) { branch(Mnemonic::kBne, a, b, t); }
void Assembler::blt(u8 a, u8 b, Label t) { branch(Mnemonic::kBlt, a, b, t); }
void Assembler::bge(u8 a, u8 b, Label t) { branch(Mnemonic::kBge, a, b, t); }
void Assembler::bltu(u8 a, u8 b, Label t) { branch(Mnemonic::kBltu, a, b, t); }
void Assembler::bgeu(u8 a, u8 b, Label t) { branch(Mnemonic::kBgeu, a, b, t); }

void Assembler::mem_i(Mnemonic op, u8 rd_or_data, u8 base, i32 imm,
                      bool store) {
  if (store) {
    emit(mk(op, 0, base, rd_or_data, imm));
  } else {
    emit(mk(op, rd_or_data, base, 0, imm));
  }
}

void Assembler::lb(u8 rd, u8 rs1, i32 imm) { mem_i(Mnemonic::kLb, rd, rs1, imm, false); }
void Assembler::lh(u8 rd, u8 rs1, i32 imm) { mem_i(Mnemonic::kLh, rd, rs1, imm, false); }
void Assembler::lw(u8 rd, u8 rs1, i32 imm) { mem_i(Mnemonic::kLw, rd, rs1, imm, false); }
void Assembler::lbu(u8 rd, u8 rs1, i32 imm) { mem_i(Mnemonic::kLbu, rd, rs1, imm, false); }
void Assembler::lhu(u8 rd, u8 rs1, i32 imm) { mem_i(Mnemonic::kLhu, rd, rs1, imm, false); }
void Assembler::sb(u8 rs2, u8 rs1, i32 imm) { mem_i(Mnemonic::kSb, rs2, rs1, imm, true); }
void Assembler::sh(u8 rs2, u8 rs1, i32 imm) { mem_i(Mnemonic::kSh, rs2, rs1, imm, true); }
void Assembler::sw(u8 rs2, u8 rs1, i32 imm) { mem_i(Mnemonic::kSw, rs2, rs1, imm, true); }

void Assembler::addi(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kAddi, rd, rs1, 0, imm)); }
void Assembler::slti(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kSlti, rd, rs1, 0, imm)); }
void Assembler::sltiu(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kSltiu, rd, rs1, 0, imm)); }
void Assembler::xori(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kXori, rd, rs1, 0, imm)); }
void Assembler::ori(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kOri, rd, rs1, 0, imm)); }
void Assembler::andi(u8 rd, u8 rs1, i32 imm) { emit(mk(Mnemonic::kAndi, rd, rs1, 0, imm)); }
void Assembler::slli(u8 rd, u8 rs1, u32 shamt) { emit(mk(Mnemonic::kSlli, rd, rs1, 0, static_cast<i32>(shamt))); }
void Assembler::srli(u8 rd, u8 rs1, u32 shamt) { emit(mk(Mnemonic::kSrli, rd, rs1, 0, static_cast<i32>(shamt))); }
void Assembler::srai(u8 rd, u8 rs1, u32 shamt) { emit(mk(Mnemonic::kSrai, rd, rs1, 0, static_cast<i32>(shamt))); }

void Assembler::add(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kAdd, rd, rs1, rs2)); }
void Assembler::sub(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSub, rd, rs1, rs2)); }
void Assembler::sll(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSll, rd, rs1, rs2)); }
void Assembler::slt(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSlt, rd, rs1, rs2)); }
void Assembler::sltu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSltu, rd, rs1, rs2)); }
void Assembler::xor_(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kXor, rd, rs1, rs2)); }
void Assembler::srl(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSrl, rd, rs1, rs2)); }
void Assembler::sra(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kSra, rd, rs1, rs2)); }
void Assembler::or_(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kOr, rd, rs1, rs2)); }
void Assembler::and_(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kAnd, rd, rs1, rs2)); }
void Assembler::ecall() { emit(mk(Mnemonic::kEcall, 0, 0, 0)); }
void Assembler::ebreak() { emit(mk(Mnemonic::kEbreak, 0, 0, 0)); }
void Assembler::csrrs(u8 rd, u32 csr, u8 rs1) {
  emit(mk(Mnemonic::kCsrrs, rd, rs1, 0, static_cast<i32>(csr)));
}
void Assembler::csrrw(u8 rd, u32 csr, u8 rs1) {
  emit(mk(Mnemonic::kCsrrw, rd, rs1, 0, static_cast<i32>(csr)));
}
void Assembler::csrrwi(u8 rd, u32 csr, u32 uimm5) {
  if (uimm5 > 31) throw AsmError("csrrwi immediate out of range");
  emit(mk(Mnemonic::kCsrrwi, rd, 0, 0, static_cast<i32>(csr),
          static_cast<u8>(uimm5)));
}

void Assembler::mul(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kMul, rd, rs1, rs2)); }
void Assembler::mulh(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kMulh, rd, rs1, rs2)); }
void Assembler::mulhu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kMulhu, rd, rs1, rs2)); }
void Assembler::div(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kDiv, rd, rs1, rs2)); }
void Assembler::divu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kDivu, rd, rs1, rs2)); }
void Assembler::rem(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kRem, rd, rs1, rs2)); }
void Assembler::remu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kRemu, rd, rs1, rs2)); }

void Assembler::li(u8 rd, i32 value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, 0, value);
    return;
  }
  // lui + addi with carry correction: addi sign-extends its 12-bit operand.
  u32 hi = static_cast<u32>(value) & 0xfffff000u;
  const i32 lo = sign_extend(static_cast<u32>(value) & 0xfffu, 12);
  if (lo < 0) hi += 0x1000u;
  emit(mk(Mnemonic::kLui, rd, 0, 0, static_cast<i32>(hi)));
  if (lo != 0) addi(rd, rd, lo);
}

// ---- XpulpV2 memory ----

void Assembler::p_lb_post(u8 rd, u8 base, i32 inc) { emit(mk(Mnemonic::kPLbPostImm, rd, base, 0, inc)); }
void Assembler::p_lh_post(u8 rd, u8 base, i32 inc) { emit(mk(Mnemonic::kPLhPostImm, rd, base, 0, inc)); }
void Assembler::p_lw_post(u8 rd, u8 base, i32 inc) { emit(mk(Mnemonic::kPLwPostImm, rd, base, 0, inc)); }
void Assembler::p_lbu_post(u8 rd, u8 base, i32 inc) { emit(mk(Mnemonic::kPLbuPostImm, rd, base, 0, inc)); }
void Assembler::p_lhu_post(u8 rd, u8 base, i32 inc) { emit(mk(Mnemonic::kPLhuPostImm, rd, base, 0, inc)); }
void Assembler::p_sb_post(u8 data, u8 base, i32 inc) { emit(mk(Mnemonic::kPSbPostImm, 0, base, data, inc)); }
void Assembler::p_sh_post(u8 data, u8 base, i32 inc) { emit(mk(Mnemonic::kPShPostImm, 0, base, data, inc)); }
void Assembler::p_sw_post(u8 data, u8 base, i32 inc) { emit(mk(Mnemonic::kPSwPostImm, 0, base, data, inc)); }
void Assembler::p_lw_post_r(u8 rd, u8 base, u8 inc) { emit(mk(Mnemonic::kPLwPostReg, rd, base, inc)); }
void Assembler::p_lw_rr(u8 rd, u8 base, u8 idx) { emit(mk(Mnemonic::kPLwRegReg, rd, base, idx)); }
void Assembler::p_sw_post_r(u8 data, u8 base, u8 inc) { emit(mk(Mnemonic::kPSwPostReg, inc, base, data)); }
void Assembler::p_sw_rr(u8 data, u8 base, u8 idx) { emit(mk(Mnemonic::kPSwRegReg, idx, base, data)); }

// ---- XpulpV2 scalar ----

void Assembler::p_abs(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPAbs, rd, rs1, 0)); }
void Assembler::p_min(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMin, rd, rs1, rs2)); }
void Assembler::p_minu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMinu, rd, rs1, rs2)); }
void Assembler::p_max(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMax, rd, rs1, rs2)); }
void Assembler::p_maxu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMaxu, rd, rs1, rs2)); }
void Assembler::p_exths(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPExths, rd, rs1, 0)); }
void Assembler::p_exthz(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPExthz, rd, rs1, 0)); }
void Assembler::p_extbs(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPExtbs, rd, rs1, 0)); }
void Assembler::p_extbz(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPExtbz, rd, rs1, 0)); }
void Assembler::p_cnt(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPCnt, rd, rs1, 0)); }
void Assembler::p_ff1(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPFf1, rd, rs1, 0)); }
void Assembler::p_fl1(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPFl1, rd, rs1, 0)); }
void Assembler::p_clb(u8 rd, u8 rs1) { emit(mk(Mnemonic::kPClb, rd, rs1, 0)); }
void Assembler::p_ror(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPRor, rd, rs1, rs2)); }
void Assembler::p_clip(u8 rd, u8 rs1, u32 bits) { emit(mk(Mnemonic::kPClip, rd, rs1, 0, static_cast<i32>(bits))); }
void Assembler::p_clipu(u8 rd, u8 rs1, u32 bits) { emit(mk(Mnemonic::kPClipu, rd, rs1, 0, static_cast<i32>(bits))); }
void Assembler::p_mac(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMac, rd, rs1, rs2)); }
void Assembler::p_msu(u8 rd, u8 rs1, u8 rs2) { emit(mk(Mnemonic::kPMsu, rd, rs1, rs2)); }

void Assembler::bitmanip(Mnemonic op, u8 rd, u8 rs1, u32 width, u32 pos) {
  if (width == 0 || width > 32 || pos >= 32 || pos + width > 32) {
    throw AsmError("bit-manipulation field out of range");
  }
  emit(mk(op, rd, rs1, 0, static_cast<i32>(pos), static_cast<u8>(width - 1)));
}

void Assembler::p_extract(u8 rd, u8 rs1, u32 width, u32 pos) { bitmanip(Mnemonic::kPExtract, rd, rs1, width, pos); }
void Assembler::p_extractu(u8 rd, u8 rs1, u32 width, u32 pos) { bitmanip(Mnemonic::kPExtractu, rd, rs1, width, pos); }
void Assembler::p_insert(u8 rd, u8 rs1, u32 width, u32 pos) { bitmanip(Mnemonic::kPInsert, rd, rs1, width, pos); }
void Assembler::p_bclr(u8 rd, u8 rs1, u32 width, u32 pos) { bitmanip(Mnemonic::kPBclr, rd, rs1, width, pos); }
void Assembler::p_bset(u8 rd, u8 rs1, u32 width, u32 pos) { bitmanip(Mnemonic::kPBset, rd, rs1, width, pos); }

// ---- Hardware loops ----

void Assembler::lp_setup(unsigned l, u8 count_reg, Label end) {
  emit_fixup(mk(Mnemonic::kLpSetup, 0, count_reg, 0, 0, static_cast<u8>(l)),
             end, FixKind::kHwloopEnd);
}

void Assembler::lp_setupi(unsigned l, u32 count_imm5, Label end) {
  if (count_imm5 > 31) throw AsmError("lp.setupi count exceeds 5 bits");
  emit_fixup(mk(Mnemonic::kLpSetupi, 0, static_cast<u8>(count_imm5), 0, 0,
                static_cast<u8>(l)),
             end, FixKind::kHwloopEnd);
}

void Assembler::lp_starti(unsigned l, Label start) {
  emit_fixup(mk(Mnemonic::kLpStarti, 0, 0, 0, 0, static_cast<u8>(l)), start,
             FixKind::kHwloopStart);
}

void Assembler::lp_endi(unsigned l, Label end) {
  emit_fixup(mk(Mnemonic::kLpEndi, 0, 0, 0, 0, static_cast<u8>(l)), end,
             FixKind::kHwloopEnd);
}

void Assembler::lp_count(unsigned l, u8 count_reg) {
  emit(mk(Mnemonic::kLpCount, 0, count_reg, 0, 0, static_cast<u8>(l)));
}

void Assembler::lp_counti(unsigned l, u32 count) {
  emit(mk(Mnemonic::kLpCounti, 0, 0, 0, static_cast<i32>(count),
          static_cast<u8>(l)));
}

// ---- SIMD ----

void Assembler::pv_op(Mnemonic op, SimdFmt fmt, u8 rd, u8 rs1, u8 rs2) {
  Instr in = mk(op, rd, rs1, rs2);
  in.fmt = fmt;
  emit(in);
}

namespace {

void check_elem_operands(SimdFmt f, u32 lane) {
  if (isa::simd_is_subbyte(f) || isa::simd_is_scalar_rep(f)) {
    throw AsmError("element manipulation supports plain b/h formats");
  }
  if (lane >= isa::simd_elem_count(f)) throw AsmError("lane index out of range");
}

}  // namespace

void Assembler::pv_extract(SimdFmt f, u8 rd, u8 rs1, u32 lane) {
  check_elem_operands(f, lane);
  Instr in = mk(Mnemonic::kPvElemExtract, rd, rs1, 0, static_cast<i32>(lane));
  in.fmt = f;
  emit(in);
}

void Assembler::pv_extractu(SimdFmt f, u8 rd, u8 rs1, u32 lane) {
  check_elem_operands(f, lane);
  Instr in = mk(Mnemonic::kPvElemExtractu, rd, rs1, 0, static_cast<i32>(lane));
  in.fmt = f;
  emit(in);
}

void Assembler::pv_insert(SimdFmt f, u8 rd, u8 rs1, u32 lane) {
  check_elem_operands(f, lane);
  Instr in = mk(Mnemonic::kPvElemInsert, rd, rs1, 0, static_cast<i32>(lane));
  in.fmt = f;
  emit(in);
}

void Assembler::pv_shuffle(SimdFmt f, u8 rd, u8 rs1, u8 rs2) {
  if (isa::simd_is_subbyte(f) || isa::simd_is_scalar_rep(f)) {
    throw AsmError("pv.shuffle supports plain b/h formats");
  }
  pv_op(Mnemonic::kPvShuffle, f, rd, rs1, rs2);
}

void Assembler::p_beqimm(u8 rs1, i32 imm5, Label t) {
  if (imm5 < -16 || imm5 > 15) throw AsmError("p.beqimm immediate out of range");
  emit_fixup(mk(Mnemonic::kPBeqimm, 0, rs1, 0, 0,
                static_cast<u8>(imm5 & 0x1f)),
             t, FixKind::kBranch);
}

void Assembler::p_bneimm(u8 rs1, i32 imm5, Label t) {
  if (imm5 < -16 || imm5 > 15) throw AsmError("p.bneimm immediate out of range");
  emit_fixup(mk(Mnemonic::kPBneimm, 0, rs1, 0, 0,
                static_cast<u8>(imm5 & 0x1f)),
             t, FixKind::kBranch);
}

void Assembler::pv_qnt(unsigned q_bits, u8 rd, u8 rs1, u8 rs2) {
  if (q_bits != 4 && q_bits != 2) throw AsmError("pv.qnt needs q_bits 4 or 2");
  pv_op(Mnemonic::kPvQnt, q_bits == 4 ? SimdFmt::kN : SimdFmt::kC, rd, rs1,
        rs2);
}

// ---- Finalization ----

Program Assembler::finish() {
  if (finished_) throw AsmError("finish() called twice");
  finished_ = true;

  for (const Fixup& f : fixups_) {
    if (f.label >= labels_.size() || labels_[f.label] == kUnbound) {
      throw AsmError("unbound label referenced at instruction " +
                     std::to_string(f.index));
    }
    const i64 target = labels_[f.label];
    const i64 pc = base_ + static_cast<i64>(f.index) * 4;
    const i64 offset = target - pc;
    instrs_[f.index].imm = static_cast<i32>(offset);
  }

  std::vector<u32> words;
  words.reserve(instrs_.size());
  for (const Instr& in : instrs_) words.push_back(isa::encode(in));
  return Program(base_, std::move(words));
}

}  // namespace xpulp::xasm
