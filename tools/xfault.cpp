// xfault: deterministic fault-injection and recovery campaigns over the
// generated QNN kernels (DESIGN.md §11).
//
// Runs a seeded campaign of single-fault trials against one conv layer:
// each trial snapshots the simulation periodically, injects one fault
// (TCDM bit flip, register bit flip, stall-model perturbation or ISA
// degradation) at a random instruction, detects the fault through the
// stacked detectors (trap, watchdog, PerfCounters invariant, output
// mismatch, final-memory scrub) and recovers by restore-and-retry or by
// graceful degradation to an XpulpV2 kernel variant. Prints a per-outcome
// summary and optionally the full metrics registry as JSON; exit status
// reflects the --min-detected / --min-recovered gates so CI can assert
// campaign quality directly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/fault.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/registry.hpp"
#include "qnn/ref_layers.hpp"

namespace {

using namespace xpulp;
using kernels::ConvVariant;

struct Args {
  int inject = 100;        // trials
  u64 seed = 1;
  int retry = 2;           // restore-and-retry attempts per detected fault
  bool fallback_isa = true;
  u64 ckpt_every = 5000;   // instructions between checkpoints
  unsigned bits = 4;
  ConvVariant variant = ConvVariant::kXpulpNN_HwQ;
  std::vector<ckpt::FaultKind> kinds;  // empty = tcdm only
  unsigned persistent_chance = 64;     // x/256 stuck-at probability
  bool small = false;
  std::string json_path;
  double min_detected = -1.0;   // gate on detection_rate when >= 0
  double min_recovered = -1.0;  // gate on recovery_rate when >= 0
};

void usage() {
  std::puts(
      "usage: xfault [options]\n"
      "  --inject N         number of fault trials (default 100)\n"
      "  --seed S           campaign seed; same seed => same report\n"
      "  --retry N          restore-and-retry attempts per detected fault\n"
      "                     (default 2)\n"
      "  --no-fallback-isa  disable XpulpV2 fallback recovery for ISA\n"
      "                     degradation faults\n"
      "  --ckpt-every N     instructions between checkpoints (default 5000)\n"
      "  --bits N           layer width: 8, 4, 2 (default 4)\n"
      "  --variant V        8b | sub | subshf | swq | hwq (default hwq)\n"
      "  --kinds LIST       comma list of tcdm,reg,stall,isa (default tcdm)\n"
      "  --persistent N     stuck-at probability, N/256 (default 64)\n"
      "  --small            use a small 6x6x16->8 layer\n"
      "  --json FILE        write the metrics registry as JSON\n"
      "  --min-detected R   exit 1 unless detection rate >= R (0..1)\n"
      "  --min-recovered R  exit 1 unless recovery rate >= R (0..1)");
}

bool parse_variant(const char* s, ConvVariant& v) {
  if (!std::strcmp(s, "8b")) v = ConvVariant::kXpulpV2_8b;
  else if (!std::strcmp(s, "sub")) v = ConvVariant::kXpulpV2_Sub;
  else if (!std::strcmp(s, "subshf")) v = ConvVariant::kXpulpV2_SubShf;
  else if (!std::strcmp(s, "swq")) v = ConvVariant::kXpulpNN_SwQ;
  else if (!std::strcmp(s, "hwq")) v = ConvVariant::kXpulpNN_HwQ;
  else return false;
  return true;
}

bool parse_kinds(const char* s, std::vector<ckpt::FaultKind>& kinds) {
  std::string item;
  for (const char* p = s;; ++p) {
    if (*p != ',' && *p != '\0') {
      item += *p;
      continue;
    }
    if (item == "tcdm") kinds.push_back(ckpt::FaultKind::kTcdmBitFlip);
    else if (item == "reg") kinds.push_back(ckpt::FaultKind::kRegisterBitFlip);
    else if (item == "stall") kinds.push_back(ckpt::FaultKind::kStallPerturb);
    else if (item == "isa") kinds.push_back(ckpt::FaultKind::kIsaDegrade);
    else return false;
    item.clear();
    if (*p == '\0') return !kinds.empty();
  }
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xfault: %s needs a value\n", opt.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (opt == "--help" || opt == "-h") {
      usage();
      std::exit(0);
    } else if (opt == "--inject") {
      const char* v = need_value();
      if (!v) return false;
      a.inject = std::atoi(v);
    } else if (opt == "--seed") {
      const char* v = need_value();
      if (!v) return false;
      a.seed = std::strtoull(v, nullptr, 0);
    } else if (opt == "--retry") {
      const char* v = need_value();
      if (!v) return false;
      a.retry = std::atoi(v);
    } else if (opt == "--no-fallback-isa") {
      a.fallback_isa = false;
    } else if (opt == "--fallback-isa") {
      a.fallback_isa = true;  // the default; accepted for explicit scripts
    } else if (opt == "--ckpt-every") {
      const char* v = need_value();
      if (!v) return false;
      a.ckpt_every = std::strtoull(v, nullptr, 0);
    } else if (opt == "--bits") {
      const char* v = need_value();
      if (!v) return false;
      a.bits = static_cast<unsigned>(std::atoi(v));
    } else if (opt == "--variant") {
      const char* v = need_value();
      if (!v || !parse_variant(v, a.variant)) return false;
    } else if (opt == "--kinds") {
      const char* v = need_value();
      if (!v || !parse_kinds(v, a.kinds)) return false;
    } else if (opt == "--persistent") {
      const char* v = need_value();
      if (!v) return false;
      a.persistent_chance = static_cast<unsigned>(std::atoi(v));
    } else if (opt == "--small") {
      a.small = true;
    } else if (opt == "--json") {
      const char* v = need_value();
      if (!v) return false;
      a.json_path = v;
    } else if (opt == "--min-detected") {
      const char* v = need_value();
      if (!v) return false;
      a.min_detected = std::atof(v);
    } else if (opt == "--min-recovered") {
      const char* v = need_value();
      if (!v) return false;
      a.min_recovered = std::atof(v);
    } else {
      std::fprintf(stderr, "xfault: unknown option %s\n", opt.c_str());
      return false;
    }
  }
  return true;
}

void print_report(const ckpt::CampaignReport& rep) {
  std::printf("campaign: %d faults into a %llu-instruction run\n",
              rep.injected,
              static_cast<unsigned long long>(rep.reference_instructions));
  std::printf("  detected    %4d  (%.1f%% of effective faults)\n",
              rep.detected, 100.0 * rep.detection_rate());
  std::printf("  recovered   %4d  (%.1f%% of detected)\n", rep.recovered,
              100.0 * rep.recovery_rate());
  std::printf("  unrecovered %4d\n", rep.unrecovered);
  std::printf("  masked      %4d\n", rep.masked);
  std::printf("  undetected  %4d\n", rep.undetected);

  u64 by_detector[6] = {};
  for (const ckpt::FaultRecord& r : rep.records) {
    by_detector[static_cast<size_t>(r.detector)] += 1;
  }
  std::printf("first detector:");
  for (int d = 1; d < 6; ++d) {
    if (by_detector[d] == 0) continue;
    std::printf("  %s=%llu",
                ckpt::detector_name(static_cast<ckpt::Detector>(d)),
                static_cast<unsigned long long>(by_detector[d]));
  }
  std::printf("\nfingerprint: %016llx\n",
              static_cast<unsigned long long>(rep.fingerprint()));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }

  ckpt::CampaignConfig cfg;
  cfg.seed = args.seed;
  cfg.num_faults = args.inject;
  cfg.max_retries = args.retry;
  cfg.ckpt_every = args.ckpt_every;
  cfg.fallback_isa = args.fallback_isa;
  cfg.persistent_chance = args.persistent_chance;
  if (!args.kinds.empty()) cfg.kinds = args.kinds;
  cfg.spec = qnn::ConvSpec::paper_layer(args.bits);
  if (args.small) {
    cfg.spec.in_h = cfg.spec.in_w = 6;
    cfg.spec.in_c = 16;
    cfg.spec.out_c = 8;
  }
  cfg.variant = args.variant;

  try {
    const ckpt::CampaignReport rep = ckpt::run_campaign(cfg);
    print_report(rep);

    if (!args.json_path.empty()) {
      obs::Registry reg;
      reg.text("campaign.variant", kernels::variant_name(cfg.variant));
      reg.counter("campaign.seed", cfg.seed);
      reg.counter("campaign.bits", args.bits);
      rep.publish(reg, "campaign");
      if (!reg.save_json(args.json_path)) {
        std::fprintf(stderr, "xfault: cannot write %s\n",
                     args.json_path.c_str());
        return 2;
      }
    }

    int rc = 0;
    if (args.min_detected >= 0.0 && rep.detection_rate() < args.min_detected) {
      std::fprintf(stderr, "xfault: detection rate %.3f below gate %.3f\n",
                   rep.detection_rate(), args.min_detected);
      rc = 1;
    }
    if (args.min_recovered >= 0.0 && rep.recovery_rate() < args.min_recovered) {
      std::fprintf(stderr, "xfault: recovery rate %.3f below gate %.3f\n",
                   rep.recovery_rate(), args.min_recovered);
      rc = 1;
    }
    return rc;
  } catch (const SimError& e) {
    std::fprintf(stderr, "xfault: %s\n", e.what());
    return 2;
  }
}
