// xtel: time-series telemetry for the paper's generated QNN kernels.
//
// Runs a convolution layer (any variant / bit width / dispatch mode) with
// the obs::Sampler attached and reports the sampled counter series — IPC,
// stall mix, MACs/cycle, superblock fused fraction, modeled mW — as
// Perfetto counter tracks, CSV, and registry metrics. The sampled series
// is dispatch-mode independent: reference, fast and superblock runs fire
// at identical cycle boundaries with identical counters (the superblock
// engine repairs mid-burst to the exact boundary, counted as
// sim.superblock.sample_flushes).
//
// A second, traced pass attributes the power model's energy over the
// kernel's regions with obs::EnergyProfiler and checks the exact
// reconciliation invariant (see DESIGN.md §14); --folded exports the
// energy flamegraph.
//
// --cores N samples every core of a parallel cluster run (one counter
// track set per core) and bins TCDM traffic into the per-bank heatmap,
// whose conflict totals must equal the bank arbiter's counters exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/parallel_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/energy.hpp"
#include "obs/heatmap.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "power/power_model.hpp"
#include "qnn/pack.hpp"
#include "qnn/ref_layers.hpp"

namespace {

using namespace xpulp;
using kernels::ConvVariant;

struct Args {
  unsigned bits = 4;
  ConvVariant variant = ConvVariant::kXpulpNN_HwQ;
  bool ri5cy_core = false;
  std::string mode = "fast";  // reference | fast | superblock
  bool small = false;
  bool check = true;
  bool energy = true;  // run the traced energy-attribution pass
  int cores = 1;
  std::string scheduler = "burst";  // cluster mode: reference | burst
  u64 interval = 4096;
  u64 capacity = 1u << 16;
  std::string trace_path;
  std::string samples_path;      // sample-series CSV
  std::string heatmap_path;      // bank heatmap JSON (cluster mode)
  std::string heatmap_csv_path;  // bank heatmap CSV (cluster mode)
  std::string folded_path;       // energy flamegraph stacks
  std::string json_path;
  std::string csv_path;
};

void usage() {
  std::puts(
      "usage: xtel [options]\n"
      "  --bits N           activation/weight/output width: 8, 4, 2 "
      "(default 4)\n"
      "  --variant V        8b | sub | subshf | swq | hwq (default hwq)\n"
      "  --core C           ri5cy | xpulpnn (default xpulpnn)\n"
      "  --mode M           reference | fast | superblock (default fast)\n"
      "  --interval N       sample interval in cycles (default 4096)\n"
      "  --capacity N       retained sample windows (default 65536)\n"
      "  --small            run a small 6x6x16->8 layer instead of the\n"
      "                     paper's 16x16x32->64 layer\n"
      "  --cores N          sample an N-core cluster run + TCDM heatmap\n"
      "  --scheduler S      cluster scheduler: reference | burst (default\n"
      "                     burst; --check also runs the other scheduler\n"
      "                     and asserts byte-identical telemetry)\n"
      "  --trace FILE       write Perfetto trace with counter tracks\n"
      "  --samples FILE     write the sample series as CSV\n"
      "  --heatmap FILE     write the TCDM bank heatmap as JSON\n"
      "  --heatmap-csv FILE write the TCDM bank heatmap as CSV\n"
      "  --folded FILE      write collapsed energy-flamegraph stacks\n"
      "  --json FILE        write the metrics registry as JSON\n"
      "  --csv FILE         write the metrics registry as CSV\n"
      "  --no-energy        skip the traced energy-attribution pass\n"
      "  --no-check         skip golden-output and reconciliation checks");
}

bool parse_variant(const char* s, ConvVariant& v) {
  if (!std::strcmp(s, "8b")) v = ConvVariant::kXpulpV2_8b;
  else if (!std::strcmp(s, "sub")) v = ConvVariant::kXpulpV2_Sub;
  else if (!std::strcmp(s, "subshf")) v = ConvVariant::kXpulpV2_SubShf;
  else if (!std::strcmp(s, "swq")) v = ConvVariant::kXpulpNN_SwQ;
  else if (!std::strcmp(s, "hwq")) v = ConvVariant::kXpulpNN_HwQ;
  else return false;
  return true;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xtel: %s needs a value\n", opt.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const auto path_opt = [&](std::string& dst) {
      const char* v = need_value();
      if (!v) return false;
      dst = v;
      return true;
    };
    if (opt == "--help" || opt == "-h") {
      usage();
      std::exit(0);
    } else if (opt == "--bits") {
      const char* v = need_value();
      if (!v) return false;
      a.bits = static_cast<unsigned>(std::atoi(v));
    } else if (opt == "--variant") {
      const char* v = need_value();
      if (!v || !parse_variant(v, a.variant)) return false;
    } else if (opt == "--core") {
      const char* v = need_value();
      if (!v) return false;
      if (!std::strcmp(v, "ri5cy")) a.ri5cy_core = true;
      else if (std::strcmp(v, "xpulpnn")) return false;
    } else if (opt == "--mode") {
      const char* v = need_value();
      if (!v) return false;
      a.mode = v;
      if (a.mode != "reference" && a.mode != "fast" &&
          a.mode != "superblock") {
        return false;
      }
    } else if (opt == "--interval") {
      const char* v = need_value();
      if (!v) return false;
      a.interval = static_cast<u64>(std::atoll(v));
    } else if (opt == "--capacity") {
      const char* v = need_value();
      if (!v) return false;
      a.capacity = static_cast<u64>(std::atoll(v));
    } else if (opt == "--small") {
      a.small = true;
    } else if (opt == "--check") {
      a.check = true;
    } else if (opt == "--no-check") {
      a.check = false;
    } else if (opt == "--no-energy") {
      a.energy = false;
    } else if (opt == "--cores") {
      const char* v = need_value();
      if (!v) return false;
      a.cores = std::atoi(v);
    } else if (opt == "--scheduler") {
      const char* v = need_value();
      if (!v) return false;
      a.scheduler = v;
      if (a.scheduler != "reference" && a.scheduler != "burst") return false;
    } else if (opt == "--trace") {
      if (!path_opt(a.trace_path)) return false;
    } else if (opt == "--samples") {
      if (!path_opt(a.samples_path)) return false;
    } else if (opt == "--heatmap") {
      if (!path_opt(a.heatmap_path)) return false;
    } else if (opt == "--heatmap-csv") {
      if (!path_opt(a.heatmap_csv_path)) return false;
    } else if (opt == "--folded") {
      if (!path_opt(a.folded_path)) return false;
    } else if (opt == "--json") {
      if (!path_opt(a.json_path)) return false;
    } else if (opt == "--csv") {
      if (!path_opt(a.csv_path)) return false;
    } else {
      std::fprintf(stderr, "xtel: unknown option %s\n", opt.c_str());
      return false;
    }
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& body,
                     const char* what) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "xtel: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  f << body;
  std::printf("wrote %s: %s\n", what, path.c_str());
  return true;
}

void print_series_summary(const obs::Sampler& sampler,
                          const sim::CoreConfig& cfg) {
  const auto samples = sampler.samples();
  std::printf("sample windows: %llu recorded, %llu dropped (interval %llu "
              "cycles)\n",
              static_cast<unsigned long long>(sampler.recorded()),
              static_cast<unsigned long long>(sampler.dropped()),
              static_cast<unsigned long long>(sampler.interval()));
  if (samples.empty()) return;
  double ipc_min = 1e30, ipc_max = 0, macs_peak = 0, mw_peak = 0;
  for (const obs::Sample& s : samples) {
    const obs::SampleMetrics m = obs::Sampler::derive(s, cfg);
    if (s.perf.cycles == 0) continue;
    ipc_min = std::min(ipc_min, m.ipc);
    ipc_max = std::max(ipc_max, m.ipc);
    macs_peak = std::max(macs_peak, m.macs_per_cycle);
    mw_peak = std::max(mw_peak, m.soc_mw);
  }
  std::printf("  IPC %.3f..%.3f  peak MACs/cycle %.3f  peak SoC %.2f mW\n",
              ipc_min, ipc_max, macs_peak, mw_peak);
}

int run_single(const Args& args, const qnn::ConvSpec& spec,
               const kernels::ConvLayerData& data, sim::CoreConfig cfg,
               obs::Registry& reg, std::unique_ptr<obs::Timeline>& timeline) {
  kernels::ConvKernel kernel =
      kernels::generate_conv_kernel(spec, args.variant, 0x40000);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);

  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  obs::Sampler::Options sopts;
  sopts.interval_cycles = args.interval;
  sopts.capacity = args.capacity;
  sopts.track_prefix = "core0";
  if (timeline) {
    sopts.timeline = timeline.get();
    timeline->set_track_name(0, "core0");
  }
  obs::Sampler sampler(core, sopts);
  core.run(600'000'000);
  sampler.finalize();

  if (core.halt_reason() != sim::HaltReason::kEcall) {
    std::fprintf(stderr, "xtel: kernel did not run to completion\n");
    return 1;
  }

  bool ok = true;
  if (args.check) {
    std::vector<u8> out_bytes(kernel.layout.output_bytes);
    mem.read_block(kernel.layout.output, out_bytes);
    const qnn::Tensor out = qnn::unpack_tensor(
        out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
        /*is_signed=*/false);
    if (!(out == data.golden())) {
      std::fprintf(stderr, "xtel: output does not match the golden model\n");
      ok = false;
    }
    const std::string inv = sim::perf_invariant_violation(core.perf());
    if (!inv.empty()) {
      std::fprintf(stderr, "xtel: perf invariant violated: %s\n", inv.c_str());
      ok = false;
    }
  }

  const sim::PerfCounters& perf = core.perf();
  std::printf("\n== %s, %u-bit, %dx%dx%d -> %d (%s dispatch) ==\n",
              kernels::variant_name(args.variant), args.bits, spec.in_h,
              spec.in_w, spec.in_c, spec.out_c, args.mode.c_str());
  std::printf("cycles %llu  instructions %llu\n",
              static_cast<unsigned long long>(perf.cycles),
              static_cast<unsigned long long>(perf.instructions));
  print_series_summary(sampler, cfg);
  if (args.mode == "superblock") {
    const sim::SuperblockStats& sb = core.superblock_stats();
    std::printf("  superblock: %llu fused instructions, %llu sample "
                "flushes\n",
                static_cast<unsigned long long>(sb.fused_instructions),
                static_cast<unsigned long long>(sb.sample_flushes));
    obs::add_superblock_stats(reg, "sim.superblock", sb, perf.instructions);
  }

  // Registry: workload identity, counters, series summary, power.
  reg.text("workload.kernel", kernels::variant_name(args.variant));
  reg.counter("workload.bits", args.bits);
  reg.text("workload.core", cfg.name);
  reg.text("workload.dispatch", args.mode);
  reg.counter("workload.macs", spec.macs());
  reg.flag("workload.output_ok", ok);
  obs::add_perf_counters(reg, "perf", perf);
  obs::add_mem_stats(reg, "mem", mem.stats());
  sampler.add_to_registry(reg, "xtel.samples");
  const power::SocPower pw = power::estimate_power(
      perf, core.dotp_unit().activity(), mem.stats(), cfg);
  obs::add_soc_power(reg, "sim.power", pw);
  reg.gauge("power.gmac_per_s_per_w",
            power::gmac_per_s_per_w(spec.macs(), perf.cycles, pw.soc_mw()));

  if (!args.samples_path.empty()) {
    std::ostringstream os;
    sampler.write_csv(os);
    write_text_file(args.samples_path, os.str(), "sample series CSV");
  }

  if (args.energy) {
    // Energy attribution needs the trace hook (which keeps the superblock
    // engine cold), so it runs as a second pass on a fresh core. Its
    // counters must land exactly on the sampled run's — every dispatch
    // path is bit-identical.
    mem::Memory emem;
    kernel.program.load(emem);
    kernels::load_conv_data(data, kernel.layout, emem);
    sim::Core ecore(emem, cfg);
    ecore.reset(kernel.program.entry(),
                kernel.program.base() + kernel.program.size_bytes());
    obs::EnergyProfiler eprof(ecore, kernel.regions);
    ecore.run(600'000'000);
    eprof.finalize();

    if (args.check) {
      if (ecore.perf().cycles != perf.cycles ||
          ecore.perf().instructions != perf.instructions) {
        std::fprintf(stderr,
                     "xtel: energy pass diverged from the sampled run "
                     "(cycles %llu vs %llu)\n",
                     static_cast<unsigned long long>(ecore.perf().cycles),
                     static_cast<unsigned long long>(perf.cycles));
        ok = false;
      }
      const std::string rec = eprof.reconciliation_violation();
      if (!rec.empty()) {
        std::fprintf(stderr, "xtel: energy reconciliation failed: %s\n",
                     rec.c_str());
        ok = false;
      }
    }

    std::printf("\nper-region energy attribution:\n");
    std::printf("  %-12s %14s %14s %12s\n", "region", "soc_pj", "core_pj",
                "cycles");
    const double total_pj = eprof.total().energy.soc_pj();
    for (const obs::RegionEnergy& r : eprof.region_energies()) {
      if (r.cell.perf.instructions == 0) continue;
      std::printf("  %-12s %14.1f %14.1f %12llu\n", r.name.c_str(),
                  r.cell.energy.soc_pj(), r.cell.energy.core_pj(),
                  static_cast<unsigned long long>(r.cell.perf.cycles));
    }
    std::printf("  %-12s %14.1f %14.1f %12llu  -> %s\n", "total", total_pj,
                eprof.total().energy.core_pj(),
                static_cast<unsigned long long>(eprof.total().perf.cycles),
                eprof.reconciliation_violation().empty() ? "reconciled"
                                                         : "MISMATCH");
    eprof.add_to_registry(reg, "energy");
    reg.flag("energy.reconciled", eprof.reconciliation_violation().empty());
    if (!args.folded_path.empty()) {
      write_text_file(args.folded_path, eprof.collapsed_stacks("core0"),
                      "energy flamegraph stacks");
    }
  }
  return ok ? 0 : 1;
}

/// One cluster run under a given scheduler with the full telemetry stack
/// attached. Samplers outlive the cluster; only their recorded series is
/// touched afterwards.
struct ClusterPass {
  cluster::ParallelConvResult res;
  std::unique_ptr<obs::BankHeatmap> heatmap;
  std::vector<std::unique_ptr<obs::Sampler>> samplers;
  cluster::ClusterBurstStats burst;
};

ClusterPass run_cluster_pass(const Args& args, const kernels::ConvLayerData& data,
                             const sim::CoreConfig& cfg,
                             cluster::SchedulerMode sched,
                             obs::Timeline* timeline) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = args.cores;
  ccfg.core = cfg;
  ccfg.scheduler = sched;
  const u32 banks = static_cast<u32>(args.cores) * ccfg.banks_per_core;

  obs::BankHeatmap::Options hopts;
  hopts.window_cycles = args.interval;
  ClusterPass pass;
  pass.heatmap =
      std::make_unique<obs::BankHeatmap>(banks, args.cores, hopts);

  const auto instrument = [&](cluster::Cluster& cl,
                              const std::vector<kernels::ConvKernel>&) {
    obs::BankHeatmap& heatmap = *pass.heatmap;
    cl.set_access_observer([&heatmap](int c, cycles_t cycle, addr_t,
                                      addr_t addr, unsigned, bool,
                                      unsigned stalls) {
      heatmap.observe(c, cycle, addr, stalls);
    });
    for (int c = 0; c < cl.num_cores(); ++c) {
      obs::Sampler::Options sopts;
      sopts.interval_cycles = args.interval;
      sopts.capacity = args.capacity;
      sopts.track = static_cast<u8>(c);
      sopts.track_prefix = "core" + std::to_string(c);
      sopts.mem_stats = &cl.memory().stats();  // shared TCDM
      if (timeline) {
        sopts.timeline = timeline;
        timeline->set_track_name(static_cast<u8>(c),
                                 "core" + std::to_string(c));
      }
      pass.samplers.push_back(
          std::make_unique<obs::Sampler>(cl.core(c), sopts));
    }
  };

  pass.res = cluster::run_parallel_conv(
      data, args.variant, ccfg, instrument,
      [&](cluster::Cluster& cl, const std::vector<kernels::ConvKernel>&) {
        for (auto& s : pass.samplers) s->finalize();
        pass.burst = cl.burst_stats();
      });
  return pass;
}

std::string heatmap_json(const obs::BankHeatmap& h) {
  std::ostringstream os;
  h.write_json(os);
  return os.str();
}

/// Architectural sample fields must be scheduler-exact; `sb` is a host
/// superblock-engine diagnostic and is excluded by design.
bool sample_series_match(const obs::Sampler& a, const obs::Sampler& b) {
  const auto sa = a.samples();
  const auto sb = b.samples();
  if (sa.size() != sb.size()) return false;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].ts_cycles != sb[i].ts_cycles ||
        std::memcmp(&sa[i].perf, &sb[i].perf, sizeof sa[i].perf) != 0 ||
        std::memcmp(&sa[i].mem, &sb[i].mem, sizeof sa[i].mem) != 0 ||
        std::memcmp(&sa[i].dotp, &sb[i].dotp, sizeof sa[i].dotp) != 0) {
      return false;
    }
  }
  return true;
}

int run_cluster(const Args& args, const qnn::ConvSpec& /*spec*/,
                const kernels::ConvLayerData& data,
                const sim::CoreConfig& cfg, obs::Registry& reg,
                std::unique_ptr<obs::Timeline>& timeline) {
  const bool burst_primary = args.scheduler == "burst";
  const cluster::SchedulerMode primary_mode =
      burst_primary ? cluster::SchedulerMode::kBurst
                    : cluster::SchedulerMode::kReference;
  ClusterPass pass =
      run_cluster_pass(args, data, cfg, primary_mode, timeline.get());
  const cluster::ParallelConvResult& res = pass.res;
  obs::BankHeatmap& heatmap = *pass.heatmap;
  std::vector<std::unique_ptr<obs::Sampler>>& samplers = pass.samplers;

  bool ok = true;
  if (args.check && !(res.output == data.golden())) {
    std::fprintf(stderr, "xtel: cluster output does not match golden\n");
    ok = false;
  }
  if (args.check) {
    // Scheduler parity: the burst engine must be telemetry-invisible.
    // Re-run under the other scheduler and require byte-identical bank
    // heatmaps and per-core sampled counter tracks.
    const cluster::SchedulerMode other_mode =
        burst_primary ? cluster::SchedulerMode::kReference
                      : cluster::SchedulerMode::kBurst;
    const ClusterPass other =
        run_cluster_pass(args, data, cfg, other_mode, nullptr);
    bool parity = heatmap_json(heatmap) == heatmap_json(*other.heatmap) &&
                  res.stats.makespan == other.res.stats.makespan &&
                  res.stats.bank_conflicts == other.res.stats.bank_conflicts &&
                  res.stats.data_accesses == other.res.stats.data_accesses &&
                  res.output == other.res.output;
    for (int c = 0; parity && c < args.cores; ++c) {
      parity = sample_series_match(*samplers[static_cast<size_t>(c)],
                                   *other.samplers[static_cast<size_t>(c)]);
    }
    if (!parity) {
      std::fprintf(stderr,
                   "xtel: telemetry differs between burst and reference "
                   "cluster scheduling\n");
      ok = false;
    }
    reg.flag("xtel.scheduler_parity", parity);
  }
  if (args.check && (heatmap.total_conflicts() != res.stats.bank_conflicts ||
                     heatmap.total_accesses() != res.stats.data_accesses)) {
    std::fprintf(stderr,
                 "xtel: heatmap totals do not match the bank arbiter "
                 "(conflicts %llu vs %llu, accesses %llu vs %llu)\n",
                 static_cast<unsigned long long>(heatmap.total_conflicts()),
                 static_cast<unsigned long long>(res.stats.bank_conflicts),
                 static_cast<unsigned long long>(heatmap.total_accesses()),
                 static_cast<unsigned long long>(res.stats.data_accesses));
    ok = false;
  }

  std::printf("\n== %s, %u-bit on %d cores ==\n",
              kernels::variant_name(args.variant), args.bits, args.cores);
  std::printf("makespan %llu cycles  bank conflicts %llu (%.3f%% of %llu "
              "accesses)\n",
              static_cast<unsigned long long>(res.stats.makespan),
              static_cast<unsigned long long>(res.stats.bank_conflicts),
              100.0 * res.stats.conflict_rate(),
              static_cast<unsigned long long>(res.stats.data_accesses));
  for (int c = 0; c < args.cores; ++c) {
    std::printf("core %d: ", c);
    print_series_summary(*samplers[static_cast<size_t>(c)], cfg);
    samplers[static_cast<size_t>(c)]->add_to_registry(
        reg, "cores.core" + std::to_string(c) + ".samples");
  }

  reg.text("workload.kernel", kernels::variant_name(args.variant));
  reg.counter("workload.bits", args.bits);
  reg.counter("workload.cores", static_cast<u64>(args.cores));
  reg.flag("workload.output_ok", ok);
  reg.counter("cluster.makespan", res.stats.makespan);
  reg.counter("cluster.bank_conflicts", res.stats.bank_conflicts);
  reg.counter("cluster.data_accesses", res.stats.data_accesses);
  reg.text("cluster.scheduler", args.scheduler);
  if (burst_primary) {
    reg.counter("cluster.burst.epochs", pass.burst.epochs);
    reg.counter("cluster.burst.bursts", pass.burst.bursts);
    reg.counter("cluster.burst.burst_instructions",
                pass.burst.burst_instructions);
    reg.counter("cluster.burst.reference_instructions",
                pass.burst.reference_instructions);
    reg.counter("cluster.burst.replayed_accesses",
                pass.burst.replayed_accesses);
    reg.counter("cluster.burst.fallback_runs", pass.burst.fallback_runs);
  }
  heatmap.add_to_registry(reg, "xtel.heatmap");
  reg.flag("xtel.heatmap.reconciled",
           heatmap.total_conflicts() == res.stats.bank_conflicts);

  if (timeline) heatmap.add_to_timeline(*timeline);
  if (!args.heatmap_path.empty()) {
    std::ostringstream os;
    heatmap.write_json(os);
    write_text_file(args.heatmap_path, os.str(), "bank heatmap JSON");
  }
  if (!args.heatmap_csv_path.empty()) {
    std::ostringstream os;
    heatmap.write_csv(os);
    write_text_file(args.heatmap_csv_path, os.str(), "bank heatmap CSV");
  }
  if (!args.samples_path.empty()) {
    std::ostringstream os;
    for (int c = 0; c < args.cores; ++c) {
      os << "# core " << c << "\n";
      samplers[static_cast<size_t>(c)]->write_csv(os);
    }
    write_text_file(args.samples_path, os.str(), "sample series CSV");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.bits != 8 && args.bits != 4 && args.bits != 2) {
    std::fprintf(stderr, "xtel: --bits must be 8, 4 or 2\n");
    return 2;
  }
  if (args.interval == 0) {
    std::fprintf(stderr, "xtel: --interval must be nonzero\n");
    return 2;
  }

  sim::CoreConfig cfg =
      args.ri5cy_core ? sim::CoreConfig::ri5cy() : sim::CoreConfig::extended();
  cfg.reference_dispatch = (args.mode == "reference");
  cfg.superblock = (args.mode == "superblock");

  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(args.bits);
  if (args.small) {
    spec.in_h = spec.in_w = 6;
    spec.in_c = 16;
    spec.out_c = 8;
  }

  try {
    if (!kernels::variant_supported(args.variant, cfg)) {
      std::fprintf(stderr, "xtel: variant %s is not supported on core %s\n",
                   kernels::variant_name(args.variant), cfg.name.c_str());
      return 2;
    }
    const auto data = kernels::ConvLayerData::random(spec, /*seed=*/7);
    // random() calibrates spec.requant_shift for 8-bit outputs; generate
    // the kernel from the calibrated spec (see run_conv_layer).
    spec = data.spec;

    std::unique_ptr<obs::Timeline> timeline;
    if (!args.trace_path.empty()) {
      timeline = std::make_unique<obs::Timeline>();
    }

    obs::Registry reg;
    const int rc =
        args.cores > 1
            ? run_cluster(args, spec, data, cfg, reg, timeline)
            : run_single(args, spec, data, cfg, reg, timeline);

    if (timeline) {
      std::ofstream f(args.trace_path);
      if (!f) {
        std::fprintf(stderr, "xtel: cannot write trace to %s\n",
                     args.trace_path.c_str());
        return 1;
      }
      timeline->write_chrome_json(f);
      std::printf(
          "wrote Perfetto trace: %s (%llu counter points, %llu dropped)\n",
          args.trace_path.c_str(),
          static_cast<unsigned long long>(timeline->counters_recorded()),
          static_cast<unsigned long long>(timeline->counters_dropped()));
    }
    if (!args.json_path.empty() && reg.save_json(args.json_path)) {
      std::printf("wrote metrics JSON: %s\n", args.json_path.c_str());
    }
    if (!args.csv_path.empty() && reg.save_csv(args.csv_path)) {
      std::printf("wrote metrics CSV: %s\n", args.csv_path.c_str());
    }
    return rc;
  } catch (const SimError& e) {
    std::fprintf(stderr, "xtel: %s\n", e.what());
    return 1;
  }
}
