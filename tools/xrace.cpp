// xrace — cross-core TCDM race analyzer for the parallel XpulpNN kernels.
//
// Two phases over the same deployments:
//   --static     prove per-core footprints pairwise disjoint (strided-
//                interval abstraction, src/analysis/footprint.hpp)
//   --shadow     run the deployment on the cluster with a byte-granular
//                shadow memory attached and flag real conflicts at their
//                exact pc pair and cycle, then cross-validate: every
//                observed conflict must have been predicted statically
//
//   xrace --static --kernels      sweep every parallel kernel deployment
//                                 (conv row-partitioned, linear channel-
//                                 tiled, pooling) at 1/2/4/8 cores
//   xrace --shadow                shadow one 4-bit XpulpNN-HwQ parallel
//                                 conv run (the paper's headline variant)
//
// Options:
//   --cores N    restrict the static sweep / shadow run to N cores
//   --json FILE  write metrics (sim.race.* / per-config) as JSON
//
// Exit status: 0 clean, 1 conflicts/unprovable/validation failure,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/shadow.hpp"
#include "cluster/parallel_conv.hpp"
#include "common/error.hpp"
#include "obs/registry.hpp"

namespace {

using namespace xpulp;

int usage() {
  std::cerr << "usage: xrace (--static [--kernels] | --shadow) "
               "[--cores N] [--json FILE]\n";
  return 2;
}

std::string metric_key(std::string name) {
  for (char& c : name) {
    if (c == '/' || c == '.') c = '_';
  }
  return name;
}

int run_static(const std::vector<int>& core_counts, obs::Registry& reg) {
  int dirty = 0;
  const auto checks = analysis::analyze_parallel_kernels(core_counts);
  for (const analysis::RaceCheck& c : checks) {
    size_t accesses = 0;
    for (const auto& fp : c.report.footprints) accesses += fp.accesses.size();
    const std::string key = "xrace.static." + metric_key(c.name) + ".c" +
                            std::to_string(c.cores);
    analysis::add_race_stats(reg, key, c.report);
    if (c.report.clean()) {
      std::printf("  OK    %-40s cores=%d  (%zu accesses, %zu unprovable)\n",
                  c.name.c_str(), c.cores, accesses,
                  c.report.unprovable.size());
    } else {
      ++dirty;
      std::printf("  FAIL  %-40s cores=%d\n", c.name.c_str(), c.cores);
      std::cout << c.report.to_string();
    }
  }
  std::printf("%zu/%zu parallel deployments prove race-free\n",
              checks.size() - static_cast<size_t>(dirty), checks.size());
  reg.counter("xrace.static.configs", checks.size());
  reg.counter("xrace.static.dirty", static_cast<u64>(dirty));
  return dirty ? 1 : 0;
}

int run_shadow(int cores, obs::Registry& reg) {
  qnn::ConvSpec spec;
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  spec.in_bits = spec.w_bits = spec.out_bits = 4;
  const auto v = kernels::ConvVariant::kXpulpNN_HwQ;

  // Static prediction for the exact programs the cluster will run.
  const auto ks = cluster::make_parallel_conv_kernels(spec, v, cores);
  std::vector<xasm::Program> programs;
  for (const auto& k : ks) programs.push_back(k.program);
  const analysis::RaceReport srep = analysis::analyze_races(programs);

  const auto data = kernels::ConvLayerData::random(spec, 0x5eed);
  analysis::ShadowMemory shadow;
  cluster::ClusterConfig cfg;
  cfg.num_cores = cores;
  const auto res = cluster::run_parallel_conv(
      data, v, cfg, [&shadow](cluster::Cluster& cl, const auto&) {
        analysis::attach_shadow(cl, shadow);
      });
  const bool output_ok = res.output.data() == data.golden().data();

  std::string why;
  const bool validated = analysis::validate_against_shadow(srep, shadow, &why);
  std::cout << "shadow run: conv/xpulpnn_hwq/4b cores=" << cores << "\n"
            << "  " << shadow.to_string()
            << "  static: " << srep.conflicts.size() << " conflicts, "
            << srep.unprovable.size() << " unprovable\n"
            << "  output vs golden: " << (output_ok ? "match" : "MISMATCH")
            << "\n  cross-validation: " << (validated ? "ok" : why) << "\n";

  analysis::add_race_stats(reg, "sim.race", srep);
  analysis::add_shadow_stats(reg, "sim.race.shadow", shadow);
  reg.flag("sim.race.shadow.validated", validated);
  reg.flag("sim.race.output_match", output_ok);
  return shadow.clean() && validated && output_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_static = false;
  bool do_shadow = false;
  bool kernels = false;
  int cores = 0;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--static") {
      do_static = true;
    } else if (arg == "--shadow") {
      do_shadow = true;
    } else if (arg == "--kernels") {
      kernels = true;
    } else if (arg == "--cores") {
      const char* v = next();
      if (!v) return usage();
      cores = std::atoi(v);
      if (cores < 1 || cores > 64) return usage();
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else {
      return usage();
    }
  }
  if (!do_static && !do_shadow) return usage();
  if (do_static && !kernels) {
    // File-mode static analysis is not wired up; the sweep is the product.
    std::cerr << "xrace: --static requires --kernels\n";
    return usage();
  }

  obs::Registry reg;
  int rc = 0;
  try {
    if (do_static) {
      const std::vector<int> counts =
          cores ? std::vector<int>{cores} : std::vector<int>{1, 2, 4, 8};
      rc |= run_static(counts, reg);
    }
    if (do_shadow) rc |= run_shadow(cores ? cores : 4, reg);
  } catch (const SimError& e) {
    std::cerr << "xrace: " << e.what() << '\n';
    return 1;
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << reg.json() << '\n';
    } else if (!reg.save_json(json_path)) {
      std::cerr << "xrace: cannot write " << json_path << '\n';
      return 2;
    }
  }
  return rc;
}
