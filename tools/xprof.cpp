// xprof: cycle-attribution profiler for the paper's generated QNN kernels.
//
// Generates a convolution kernel (any variant / bit width), runs it on the
// simulated core with the obs::Profiler attached, verifies the output
// against the golden model, and reports where the cycles went:
//   - a per-region table (im2col / matmul / quant / other) whose cycle
//     totals reconcile exactly with PerfCounters.cycles (the paper's
//     Fig. 6 breakdown, but for any kernel);
//   - per-mnemonic and per-pc hotspot tables with stall breakdowns;
//   - optional exports: Chrome/Perfetto trace.json, collapsed flamegraph
//     stacks, and the full metrics registry as JSON/CSV.
// --cores N profiles a parallel cluster run with one timeline lane and one
// region table per core.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/parallel_conv.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "qnn/pack.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/energy.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "power/power_model.hpp"
#include "qnn/ref_layers.hpp"

namespace {

using namespace xpulp;
using kernels::ConvVariant;

struct Args {
  unsigned bits = 4;
  ConvVariant variant = ConvVariant::kXpulpNN_HwQ;
  bool ri5cy_core = false;
  bool reference_dispatch = false;
  bool superblock = false;  // untraced second pass with fusion coverage
  bool hwloops = true;
  bool small = false;       // small layer for smoke tests
  bool check = true;        // verify output + reconciliation, exit 1 on fail
  int cores = 1;            // >1: cluster mode
  int top = 10;
  u32 block = 64;
  std::string trace_path;   // Chrome/Perfetto trace.json
  std::string folded_path;  // collapsed stacks
  std::string json_path;    // registry JSON
  std::string csv_path;     // registry CSV
};

void usage() {
  std::puts(
      "usage: xprof [options]\n"
      "  --bits N           activation/weight/output width: 8, 4, 2 "
      "(default 4)\n"
      "  --variant V        8b | sub | subshf | swq | hwq (default hwq)\n"
      "  --core C           ri5cy | xpulpnn (default xpulpnn)\n"
      "  --reference        use the legacy reference dispatch loop\n"
      "  --superblock       rerun untraced with the superblock engine and\n"
      "                     report fusion coverage (sim.superblock.* "
      "metrics)\n"
      "  --no-hwloops       generate without hardware loops\n"
      "  --small            profile a small 6x6x16->8 layer instead of the\n"
      "                     paper's 16x16x32->64 layer\n"
      "  --cores N          profile an N-core cluster run (per-core lanes)\n"
      "  --top N            hotspot rows to print (default 10)\n"
      "  --block N          instructions per timeline block slice "
      "(default 64)\n"
      "  --trace FILE       write Chrome/Perfetto trace JSON\n"
      "  --folded FILE      write collapsed flamegraph stacks\n"
      "  --json FILE        write the metrics registry as JSON\n"
      "  --csv FILE         write the metrics registry as CSV\n"
      "  --no-check         skip golden-output and reconciliation checks");
}

bool parse_variant(const char* s, ConvVariant& v) {
  if (!std::strcmp(s, "8b")) v = ConvVariant::kXpulpV2_8b;
  else if (!std::strcmp(s, "sub")) v = ConvVariant::kXpulpV2_Sub;
  else if (!std::strcmp(s, "subshf")) v = ConvVariant::kXpulpV2_SubShf;
  else if (!std::strcmp(s, "swq")) v = ConvVariant::kXpulpNN_SwQ;
  else if (!std::strcmp(s, "hwq")) v = ConvVariant::kXpulpNN_HwQ;
  else return false;
  return true;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xprof: %s needs a value\n", opt.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (opt == "--help" || opt == "-h") {
      usage();
      std::exit(0);
    } else if (opt == "--bits") {
      const char* v = need_value();
      if (!v) return false;
      a.bits = static_cast<unsigned>(std::atoi(v));
    } else if (opt == "--variant") {
      const char* v = need_value();
      if (!v || !parse_variant(v, a.variant)) return false;
    } else if (opt == "--core") {
      const char* v = need_value();
      if (!v) return false;
      if (!std::strcmp(v, "ri5cy")) a.ri5cy_core = true;
      else if (std::strcmp(v, "xpulpnn")) return false;
    } else if (opt == "--reference") {
      a.reference_dispatch = true;
    } else if (opt == "--superblock") {
      a.superblock = true;
    } else if (opt == "--no-hwloops") {
      a.hwloops = false;
    } else if (opt == "--small") {
      a.small = true;
    } else if (opt == "--check") {
      a.check = true;  // the default; accepted for explicit CI invocations
    } else if (opt == "--no-check") {
      a.check = false;
    } else if (opt == "--cores") {
      const char* v = need_value();
      if (!v) return false;
      a.cores = std::atoi(v);
    } else if (opt == "--top") {
      const char* v = need_value();
      if (!v) return false;
      a.top = std::atoi(v);
    } else if (opt == "--block") {
      const char* v = need_value();
      if (!v) return false;
      a.block = static_cast<u32>(std::atoi(v));
    } else if (opt == "--trace") {
      const char* v = need_value();
      if (!v) return false;
      a.trace_path = v;
    } else if (opt == "--folded") {
      const char* v = need_value();
      if (!v) return false;
      a.folded_path = v;
    } else if (opt == "--json") {
      const char* v = need_value();
      if (!v) return false;
      a.json_path = v;
    } else if (opt == "--csv") {
      const char* v = need_value();
      if (!v) return false;
      a.csv_path = v;
    } else {
      std::fprintf(stderr, "xprof: unknown option %s\n", opt.c_str());
      return false;
    }
  }
  return true;
}

double pct(u64 part, u64 whole) {
  return whole ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
               : 0.0;
}

void print_site_row(const char* name, const obs::SiteStat& s, u64 total_cycles) {
  std::printf("  %-12s %12llu %6.2f%% %12llu %10llu %8llu %8llu %8llu %8llu\n",
              name, static_cast<unsigned long long>(s.cycles),
              pct(s.cycles, total_cycles),
              static_cast<unsigned long long>(s.instructions),
              static_cast<unsigned long long>(s.stalls.branch),
              static_cast<unsigned long long>(s.stalls.load_use),
              static_cast<unsigned long long>(s.stalls.mem),
              static_cast<unsigned long long>(s.stalls.mul_div),
              static_cast<unsigned long long>(s.stalls.qnt));
}

void print_region_table(const obs::Profiler& prof, u64 perf_cycles) {
  std::printf(
      "  %-12s %12s %7s %12s %10s %8s %8s %8s %8s\n", "region", "cycles",
      "share", "instrs", "br-stall", "ld-use", "mem", "muldiv", "qnt");
  u64 region_sum = 0;
  for (const obs::RegionStat& r : prof.region_stats()) {
    region_sum += r.stat.cycles;
    if (r.stat.instructions == 0 && r.stat.cycles == 0) continue;
    print_site_row(r.name.c_str(), r.stat, perf_cycles);
  }
  print_site_row("total", prof.total(), perf_cycles);
  std::printf("  region cycle sum: %llu, PerfCounters.cycles: %llu -> %s\n",
              static_cast<unsigned long long>(region_sum),
              static_cast<unsigned long long>(perf_cycles),
              region_sum == perf_cycles ? "reconciled" : "MISMATCH");
}

void print_mnemonic_table(const obs::Profiler& prof, int top) {
  struct Row {
    isa::Mnemonic op;
    obs::SiteStat s;
  };
  std::vector<Row> rows;
  const auto& by_op = prof.by_mnemonic();
  for (size_t m = 0; m < by_op.size(); ++m) {
    if (by_op[m].instructions == 0) continue;
    rows.push_back({static_cast<isa::Mnemonic>(m), by_op[m]});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.s.cycles > b.s.cycles;
  });
  if (rows.size() > static_cast<size_t>(top)) {
    rows.resize(static_cast<size_t>(top));
  }
  std::printf("  %-14s %12s %7s %12s %10s\n", "mnemonic", "cycles", "share",
              "instrs", "stalls");
  const u64 total = prof.total().cycles;
  for (const Row& r : rows) {
    std::printf("  %-14s %12llu %6.2f%% %12llu %10llu\n",
                std::string(isa::mnemonic_name(r.op)).c_str(),
                static_cast<unsigned long long>(r.s.cycles),
                pct(r.s.cycles, total),
                static_cast<unsigned long long>(r.s.instructions),
                static_cast<unsigned long long>(r.s.stalls.total()));
  }
}

void print_hotspots(const obs::Profiler& prof, mem::Memory& mem, int top) {
  const auto spots = prof.hotspots(static_cast<size_t>(top));
  if (spots.empty()) return;
  std::printf("  %-10s %12s %7s %12s  %s\n", "pc", "cycles", "share",
              "instrs", "instruction");
  const u64 total = prof.total().cycles;
  for (const obs::PcStat& h : spots) {
    std::string disasm = "?";
    try {
      const u16 low = mem.load_u16(h.pc);
      const isa::Instr in =
          (low & 3u) == 3u
              ? isa::decode(
                    (static_cast<u32>(mem.load_u16(h.pc + 2)) << 16) | low,
                    h.pc)
              : isa::decode_compressed(low, h.pc);
      disasm = isa::disassemble(in, h.pc);
    } catch (const SimError&) {
      // Unreadable / no longer decodable pc: keep the placeholder.
    }
    std::printf("  0x%08x %12llu %6.2f%% %12llu  %s\n", h.pc,
                static_cast<unsigned long long>(h.stat.cycles),
                pct(h.stat.cycles, total),
                static_cast<unsigned long long>(h.stat.instructions),
                disasm.c_str());
  }
}

bool write_text_file(const std::string& path, const std::string& body,
                     const char* what) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "xprof: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  f << body;
  std::printf("wrote %s: %s\n", what, path.c_str());
  return true;
}

int run_single(const Args& args, const qnn::ConvSpec& spec,
               const kernels::ConvLayerData& data, sim::CoreConfig cfg,
               obs::Registry& reg, std::unique_ptr<obs::Timeline>& timeline) {
  kernels::ConvGenOptions gopts;
  gopts.use_hwloops = args.hwloops;
  kernels::ConvKernel kernel =
      kernels::generate_conv_kernel(spec, args.variant, 0x40000, gopts);

  mem::Memory mem;
  kernel.program.load(mem);
  kernels::load_conv_data(data, kernel.layout, mem);

  sim::Core core(mem, cfg);
  core.reset(kernel.program.entry(),
             kernel.program.base() + kernel.program.size_bytes());

  obs::Profiler::Options popts;
  popts.block_instructions = args.block;
  if (timeline) {
    popts.timeline = timeline.get();
    timeline->set_track_name(0, "core0");
  }
  obs::Profiler prof(core, kernel.regions, popts);
  core.run(600'000'000);
  prof.finalize();

  if (core.halt_reason() != sim::HaltReason::kEcall) {
    std::fprintf(stderr, "xprof: kernel did not run to completion\n");
    return 1;
  }

  bool ok = true;
  if (args.check) {
    std::vector<u8> out_bytes(kernel.layout.output_bytes);
    mem.read_block(kernel.layout.output, out_bytes);
    const qnn::Tensor out = qnn::unpack_tensor(
        out_bytes, {spec.out_h(), spec.out_w(), spec.out_c}, spec.out_bits,
        /*is_signed=*/false);
    if (!(out == data.golden())) {
      std::fprintf(stderr, "xprof: output does not match the golden model\n");
      ok = false;
    }
    const std::string inv = sim::perf_invariant_violation(core.perf());
    if (!inv.empty()) {
      std::fprintf(stderr, "xprof: perf invariant violated: %s\n",
                   inv.c_str());
      ok = false;
    }
  }

  const sim::PerfCounters& perf = core.perf();
  std::printf("\n== %s, %u-bit, %dx%dx%d -> %d (%s dispatch) ==\n",
              kernels::variant_name(args.variant), args.bits, spec.in_h,
              spec.in_w, spec.in_c, spec.out_c,
              args.reference_dispatch ? "reference" : "fast");
  std::printf("cycles %llu  instructions %llu  IPC %.3f  MACs/cycle %.3f\n\n",
              static_cast<unsigned long long>(perf.cycles),
              static_cast<unsigned long long>(perf.instructions),
              perf.cycles ? static_cast<double>(perf.instructions) /
                                static_cast<double>(perf.cycles)
                          : 0.0,
              perf.cycles ? static_cast<double>(spec.macs()) /
                                static_cast<double>(perf.cycles)
                          : 0.0);

  std::puts("per-region cycle attribution:");
  print_region_table(prof, perf.cycles);
  u64 region_sum = 0;
  u64 nonzero_regions = 0;
  for (const obs::RegionStat& r : prof.region_stats()) {
    region_sum += r.stat.cycles;
    if (r.stat.cycles != 0) ++nonzero_regions;
  }
  if (args.check && (region_sum != perf.cycles || nonzero_regions == 0)) {
    std::fprintf(stderr,
                 "xprof: region totals do not reconcile with the core's "
                 "cycle counter\n");
    ok = false;
  }

  std::printf("\ntop mnemonics:\n");
  print_mnemonic_table(prof, args.top);
  std::printf("\nhotspots:\n");
  print_hotspots(prof, mem, args.top);

  if (args.superblock) {
    // The profiler's trace hook keeps the superblock engine cold, so the
    // fusion-coverage numbers come from a second, untraced pass. Its
    // counters must land exactly on the profiled run's — fused bursts are
    // bit-identical to the interpreter.
    sim::CoreConfig sb_cfg = cfg;
    sb_cfg.reference_dispatch = false;
    sb_cfg.superblock = true;
    mem::Memory sb_mem;
    kernel.program.load(sb_mem);
    kernels::load_conv_data(data, kernel.layout, sb_mem);
    sim::Core sb_core(sb_mem, sb_cfg);
    sb_core.reset(kernel.program.entry(),
                  kernel.program.base() + kernel.program.size_bytes());
    sb_core.run(600'000'000);

    const sim::SuperblockStats& sb = sb_core.superblock_stats();
    const sim::PerfCounters& sp = sb_core.perf();
    std::printf("\nsuperblock engine (untraced pass):\n");
    std::printf("  %-22s %12llu\n", "blocks compiled",
                static_cast<unsigned long long>(sb.blocks_compiled));
    std::printf("  %-22s %12llu\n", "compile rejects",
                static_cast<unsigned long long>(sb.compile_rejects));
    std::printf("  %-22s %12llu  (rejects %llu)\n", "bursts entered",
                static_cast<unsigned long long>(sb.entries),
                static_cast<unsigned long long>(sb.entry_rejects));
    std::printf("  %-22s %12llu\n", "fused iterations",
                static_cast<unsigned long long>(sb.fused_iterations));
    std::printf("  %-22s %12llu  (%.2f%% of instructions)\n",
                "fused instructions",
                static_cast<unsigned long long>(sb.fused_instructions),
                pct(sb.fused_instructions, sp.instructions));
    std::printf("  %-22s %12llu\n", "smc bails",
                static_cast<unsigned long long>(sb.smc_bails));
    std::printf("  %-22s %12llu\n", "trap bails",
                static_cast<unsigned long long>(sb.trap_bails));
    std::printf("  %-22s %12llu\n", "invalidations",
                static_cast<unsigned long long>(sb.invalidations));
    if (args.check &&
        (sp.cycles != perf.cycles || sp.instructions != perf.instructions)) {
      std::fprintf(stderr,
                   "xprof: superblock pass diverged from the profiled run "
                   "(cycles %llu vs %llu)\n",
                   static_cast<unsigned long long>(sp.cycles),
                   static_cast<unsigned long long>(perf.cycles));
      ok = false;
    }
    obs::add_superblock_stats(reg, "sim.superblock", sb, sp.instructions);
  }

  // Registry: workload identity, raw counters, attribution, power.
  reg.text("workload.kernel", kernels::variant_name(args.variant));
  reg.counter("workload.bits", args.bits);
  reg.text("workload.core", cfg.name);
  reg.text("workload.dispatch",
           args.reference_dispatch ? "reference" : "fast");
  reg.counter("workload.macs", spec.macs());
  reg.flag("workload.output_ok", ok);
  obs::add_perf_counters(reg, "perf", perf);
  obs::add_mem_stats(reg, "mem", mem.stats());
  prof.add_to_registry(reg, "profile");
  // Flatten the per-region table to a compact regions.* block (the CI
  // smoke test reads these).
  for (const obs::RegionStat& r : prof.region_stats()) {
    reg.counter("regions." + r.name + ".cycles", r.stat.cycles);
    reg.counter("regions." + r.name + ".instructions", r.stat.instructions);
  }
  const power::SocPower pw = power::estimate_power(
      perf, core.dotp_unit().activity(), mem.stats(), cfg);
  reg.gauge("power.core_mw", pw.core.core_mw());
  reg.gauge("power.soc_mw", pw.soc_mw());
  reg.gauge("power.gmac_per_s_per_w",
            power::gmac_per_s_per_w(spec.macs(), perf.cycles, pw.soc_mw()));
  // Full component breakdown under the shared sim.power.* keys (same
  // helper xtel uses, so both tools publish identical layouts).
  obs::add_soc_power(reg, "sim.power", pw);

  if (!args.folded_path.empty()) {
    write_text_file(args.folded_path, prof.collapsed_stacks("core0"),
                    "collapsed stacks");
  }
  return ok ? 0 : 1;
}

int run_cluster(const Args& args, const qnn::ConvSpec& spec,
                const kernels::ConvLayerData& data,
                const sim::CoreConfig& cfg, obs::Registry& reg,
                std::unique_ptr<obs::Timeline>& timeline) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = args.cores;
  ccfg.core = cfg;

  std::vector<std::unique_ptr<obs::Profiler>> profilers;
  std::string folded;
  const auto instrument = [&](cluster::Cluster& cl,
                              const std::vector<kernels::ConvKernel>& ks) {
    for (int c = 0; c < cl.num_cores(); ++c) {
      obs::Profiler::Options popts;
      popts.block_instructions = args.block;
      popts.track = static_cast<u8>(c);
      if (timeline) {
        popts.timeline = timeline.get();
        timeline->set_track_name(static_cast<u8>(c),
                                 "core" + std::to_string(c));
      }
      profilers.push_back(std::make_unique<obs::Profiler>(
          cl.core(c), ks[static_cast<size_t>(c)].regions, popts));
    }
  };

  // Finalize inside after_run: the profilers must settle against their
  // cores before the cluster is torn down.
  const cluster::ParallelConvResult res = cluster::run_parallel_conv(
      data, args.variant, ccfg, instrument,
      [&](cluster::Cluster&, const std::vector<kernels::ConvKernel>&) {
        for (auto& p : profilers) p->finalize();
      });

  bool ok = true;
  if (args.check && !(res.output == data.golden())) {
    std::fprintf(stderr, "xprof: cluster output does not match golden\n");
    ok = false;
  }

  std::printf("\n== %s, %u-bit on %d cores ==\n",
              kernels::variant_name(args.variant), args.bits, args.cores);
  std::printf(
      "makespan %llu cycles  MACs/cycle %.3f  bank conflicts %llu "
      "(%.3f%% of accesses)\n",
      static_cast<unsigned long long>(res.stats.makespan),
      res.macs_per_cycle(),
      static_cast<unsigned long long>(res.stats.bank_conflicts),
      100.0 * res.stats.conflict_rate());

  reg.text("workload.kernel", kernels::variant_name(args.variant));
  reg.counter("workload.bits", args.bits);
  reg.counter("workload.cores", static_cast<u64>(args.cores));
  reg.counter("workload.macs", spec.macs());
  reg.flag("workload.output_ok", ok);
  reg.counter("cluster.makespan", res.stats.makespan);
  reg.counter("cluster.bank_conflicts", res.stats.bank_conflicts);
  reg.counter("cluster.data_accesses", res.stats.data_accesses);

  for (int c = 0; c < args.cores; ++c) {
    const obs::Profiler& prof = *profilers[static_cast<size_t>(c)];
    const u64 core_cycles =
        res.stats.core_cycles[static_cast<size_t>(c)];
    std::printf("\ncore %d (%llu cycles):\n", c,
                static_cast<unsigned long long>(core_cycles));
    print_region_table(prof, core_cycles);
    if (args.check && prof.total().cycles != core_cycles) {
      std::fprintf(stderr,
                   "xprof: core %d attribution does not reconcile\n", c);
      ok = false;
    }
    prof.add_to_registry(reg, "cores.core" + std::to_string(c));
    folded += prof.collapsed_stacks("core" + std::to_string(c));
  }

  if (!args.folded_path.empty()) {
    write_text_file(args.folded_path, folded, "collapsed stacks");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.bits != 8 && args.bits != 4 && args.bits != 2) {
    std::fprintf(stderr, "xprof: --bits must be 8, 4 or 2\n");
    return 2;
  }
  if (args.variant == ConvVariant::kXpulpV2_8b && args.bits != 8) {
    std::fprintf(stderr, "xprof: variant 8b requires --bits 8\n");
    return 2;
  }
  if (args.variant != ConvVariant::kXpulpV2_8b && args.bits == 8) {
    std::fprintf(stderr, "xprof: sub-byte variants need --bits 4 or 2\n");
    return 2;
  }

  sim::CoreConfig cfg =
      args.ri5cy_core ? sim::CoreConfig::ri5cy() : sim::CoreConfig::extended();
  cfg.reference_dispatch = args.reference_dispatch;
  cfg.hwloops = args.hwloops;

  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(args.bits);
  if (args.small) {
    spec.in_h = spec.in_w = 6;
    spec.in_c = 16;
    spec.out_c = 8;
  }

  try {
    if (!kernels::variant_supported(args.variant, cfg)) {
      std::fprintf(stderr, "xprof: variant %s is not supported on core %s\n",
                   kernels::variant_name(args.variant), cfg.name.c_str());
      return 2;
    }
    const auto data = kernels::ConvLayerData::random(spec, /*seed=*/7);
    // random() calibrates spec.requant_shift for 8-bit outputs; the kernel
    // must be generated from the calibrated spec or requantization shifts
    // by the wrong amount.
    spec = data.spec;

    std::unique_ptr<obs::Timeline> timeline;
    if (!args.trace_path.empty()) {
      timeline = std::make_unique<obs::Timeline>();
    }

    obs::Registry reg;
    const int rc =
        args.cores > 1
            ? run_cluster(args, spec, data, cfg, reg, timeline)
            : run_single(args, spec, data, cfg, reg, timeline);

    if (timeline) {
      std::ofstream f(args.trace_path);
      if (!f) {
        std::fprintf(stderr, "xprof: cannot write trace to %s\n",
                     args.trace_path.c_str());
        return 1;
      }
      timeline->write_chrome_json(f);
      std::printf("wrote Perfetto trace: %s (%llu events, %llu dropped)\n",
                  args.trace_path.c_str(),
                  static_cast<unsigned long long>(timeline->size()),
                  static_cast<unsigned long long>(timeline->dropped()));
    }
    if (!args.json_path.empty() && reg.save_json(args.json_path)) {
      std::printf("wrote metrics JSON: %s\n", args.json_path.c_str());
    }
    if (!args.csv_path.empty() && reg.save_csv(args.csv_path)) {
      std::printf("wrote metrics CSV: %s\n", args.csv_path.c_str());
    }
    return rc;
  } catch (const SimError& e) {
    std::fprintf(stderr, "xprof: %s\n", e.what());
    return 1;
  }
}
