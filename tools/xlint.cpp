// xlint — static program verifier and ISA encoding-space auditor for
// XpulpNN binaries.
//
//   xlint --audit                 prove the ISA table overlap-free and
//                                 round-trip exact (incl. the exhaustive
//                                 16-bit compressed sweep)
//   xlint --kernels               generate every paper kernel (conv/pool/
//                                 linear, both ISAs) and verify each one
//   xlint [options] file.s ...    assemble and verify assembly sources
//
// Options for file mode:
//   --base ADDR      load address of the image (default 0)
//   --mem-size N     TCDM size in bytes for bounds checks (default 512 KiB)
//   --isa NAME       target core: "xpulpnn" (default) or "ri5cy"
//   --no-hwloops     target core without hardware loops
//   --assume-abi     treat ra/sp/gp/tp/a0-a7 as initialized at entry
//   --dump           print the decoded program before the report
//
// Exit status: 0 clean, 1 diagnostics/audit failures, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/isa_audit.hpp"
#include "analysis/kernel_sweep.hpp"
#include "common/error.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "xasm/text_asm.hpp"

namespace {

using namespace xpulp;

int usage() {
  std::cerr << "usage: xlint --audit | --kernels | [--base ADDR] "
               "[--mem-size N] [--isa ri5cy|xpulpnn] [--no-hwloops] "
               "[--assume-abi] [--dump] file.s ...\n";
  return 2;
}

int run_audit() {
  const analysis::AuditResult r = analysis::audit_isa_encoding_space();
  std::cout << "encoding-space audit: " << r.checked << " checks";
  if (r.ok()) {
    std::cout << ", all passed\n"
              << "  - table entries pairwise non-overlapping\n"
              << "  - encode/decode round-trips bit-identical\n"
              << "  - 16-bit compressed space swept exhaustively\n"
              << "  - illegal-encoding bank rejected\n";
    return 0;
  }
  std::cout << ", " << r.failures.size() << " FAILED\n";
  for (const std::string& f : r.failures) std::cout << "  " << f << '\n';
  return 1;
}

int run_kernels() {
  int bad = 0;
  const auto checks = analysis::analyze_paper_kernels();
  for (const analysis::KernelCheck& c : checks) {
    if (c.report.clean()) {
      std::cout << "  OK    " << c.name << "  (" << c.report.instr_count
                << " instrs, " << c.report.hwloop_count << " hwloops)\n";
    } else {
      ++bad;
      std::cout << "  FAIL  " << c.name << '\n';
      for (const auto& d : c.report.diags) {
        std::cout << "        " << d.to_string() << '\n';
      }
    }
  }
  std::cout << checks.size() - bad << "/" << checks.size()
            << " generated kernels verify clean\n";
  return bad ? 1 : 0;
}

struct FileOptions {
  analysis::AnalyzerOptions opt;
  addr_t base = 0;
  bool dump = false;
};

int lint_file(const std::string& path, const FileOptions& fo) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "xlint: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream src;
  src << f.rdbuf();

  xasm::Program prog(fo.base, {});
  try {
    prog = xasm::assemble_text(src.str(), fo.base);
  } catch (const AsmError& e) {
    std::cout << path << ": assembly error: " << e.what() << '\n';
    return 1;
  }

  if (fo.dump) {
    for (u32 i = 0; i < prog.size_words(); ++i) {
      const addr_t pc = prog.base() + i * 4;
      std::string text;
      try {
        text = isa::disassemble(isa::decode(prog.words()[i], pc), pc);
      } catch (const IllegalInstruction&) {
        text = "<illegal>";
      }
      std::printf("  %08x: %08x  %s\n", pc, prog.words()[i], text.c_str());
    }
  }

  const analysis::AnalysisReport report =
      analysis::ProgramAnalyzer(fo.opt).analyze(prog);
  std::cout << path << ": " << report.to_string();
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  FileOptions fo;
  bool audit = false;
  bool kernels = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--audit") {
      audit = true;
    } else if (arg == "--kernels") {
      kernels = true;
    } else if (arg == "--base") {
      const char* v = next();
      if (!v) return usage();
      fo.base = static_cast<addr_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--mem-size") {
      const char* v = next();
      if (!v) return usage();
      fo.opt.mem_size = static_cast<u32>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--isa") {
      const char* v = next();
      if (!v) return usage();
      if (std::strcmp(v, "ri5cy") == 0) {
        fo.opt.xpulpnn = false;
      } else if (std::strcmp(v, "xpulpnn") == 0) {
        fo.opt.xpulpnn = true;
      } else {
        return usage();
      }
    } else if (arg == "--no-hwloops") {
      fo.opt.hwloops = false;
    } else if (arg == "--assume-abi") {
      fo.opt.assume_initialized = analysis::AnalyzerOptions::abi_entry_mask();
    } else if (arg == "--dump") {
      fo.dump = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (audit || kernels) {
    int rc = 0;
    if (audit) rc |= run_audit();
    if (kernels) rc |= run_kernels();
    return rc;
  }
  if (files.empty()) return usage();

  int rc = 0;
  for (const std::string& f : files) rc |= lint_file(f, fo);
  return rc;
}
