// Host-throughput benchmark of the interpreter itself: simulated MIPS
// (million instructions per host second) for the paper's convolution layer,
// comparing the legacy switch-on-mnemonic reference interpreter against the
// predecoded handler-table fast path. Both modes are cycle-identical by
// construction (see test_dispatch_diff); this bench quantifies the host
// speed gained by moving classification work to decode time.
//
// Emits BENCH_throughput.json (obs::Registry JSON) next to the binary's
// working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/memory.hpp"
#include "obs/registry.hpp"
#include "qnn/pack.hpp"
#include "sim/core.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct Workload {
  std::string platform;
  std::string variant;
  unsigned bits = 0;
  kernels::ConvKernel kernel;
  mem::Memory pristine;  // loaded program + layer data, untouched by runs
  sim::CoreConfig cfg;
};

struct Measurement {
  u64 instructions = 0;
  double host_seconds = 0;
  double mips() const {
    return host_seconds > 0
               ? static_cast<double>(instructions) / host_seconds / 1e6
               : 0;
  }
};

Workload make_workload(unsigned bits, ConvVariant v, sim::CoreConfig cfg) {
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  Workload w{cfg.name,
             kernels::variant_name(v),
             bits,
             kernels::generate_conv_kernel(spec, v, 0x40000),
             mem::Memory{},
             std::move(cfg)};
  w.kernel.program.load(w.pristine);
  w.pristine.write_block(w.kernel.layout.input,
                         qnn::pack_tensor(data.input, spec.in_bits));
  w.pristine.write_block(w.kernel.layout.weights,
                         qnn::pack_filter_bank(data.weights, spec.w_bits));
  if (spec.out_bits != 8) {
    w.pristine.write_block(w.kernel.layout.thresholds,
                           data.thresholds.serialize());
  }
  return w;
}

/// One timed repetition: restore memory from the pristine image, reset and
/// run the kernel to completion, accumulating host time and instructions.
void one_rep(const Workload& w, sim::Core& core, mem::Memory& mem,
             Measurement& m) {
  mem = w.pristine;
  core.reset(w.kernel.program.entry(),
             w.kernel.program.base() + w.kernel.program.size_bytes());
  core.reset_perf();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::HaltReason r = core.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r != sim::HaltReason::kEcall) {
    std::fprintf(stderr, "kernel did not complete\n");
    std::exit(1);
  }
  m.host_seconds += std::chrono::duration<double>(t1 - t0).count();
  m.instructions += core.perf().instructions;
}

struct ModeResults {
  Measurement ref, fast, superblock;
  /// Superblock coverage from one clean repetition (Core::reset clears the
  /// engine stats, so a single rep reports exactly one kernel run).
  sim::SuperblockStats coverage;
  u64 coverage_instructions = 0;
};

/// Measure the three dispatch modes in alternating *rounds* and report each
/// mode's best round. Round-level interleaving keeps slow host-clock drift
/// (thermal, scheduler) from biasing the ratios, each round is long enough
/// that cross-mode cache/predictor pollution at the switch is amortized
/// away, and taking the best round discards downward scheduler noise
/// symmetrically for every mode. The first repetition of every round is a
/// warm-up and not counted.
ModeResults measure_modes(const Workload& w, double round_seconds = 0.25,
                          int rounds = 5) {
  ModeResults out;
  mem::Memory mem;
  sim::Core core(mem, w.cfg);

  for (int r = 0; r < rounds; ++r) {
    for (int mode = 0; mode < 3; ++mode) {
      core.set_reference_dispatch(mode == 0);
      core.set_superblock(mode == 2);
      Measurement warm;
      one_rep(w, core, mem, warm);
      Measurement round;
      while (round.host_seconds < round_seconds) one_rep(w, core, mem, round);
      Measurement& best =
          mode == 0 ? out.ref : mode == 1 ? out.fast : out.superblock;
      if (round.mips() > best.mips()) best = round;
    }
  }

  core.set_reference_dispatch(false);
  core.set_superblock(true);
  Measurement cov;
  one_rep(w, core, mem, cov);
  out.coverage = core.superblock_stats();
  out.coverage_instructions = cov.instructions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup X: exit nonzero when the superblock-over-reference
  // speedup of any workload falls below X (the CI regression gate).
  double required_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-speedup" && i + 1 < argc) {
      required_speedup = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "usage: %s [--min-speedup X]\n", argv[0]);
      return 2;
    }
  }

  std::printf("interpreter host throughput -- paper conv layer\n");
  std::printf("%-28s %10s %10s %10s %10s %7s %7s %7s\n", "workload", "minstr",
              "ref MIPS", "fast MIPS", "sb MIPS", "fast x", "sb x", "fused");

  std::vector<Workload> workloads;
  workloads.push_back(
      make_workload(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::ri5cy()));
  workloads.push_back(make_workload(4, ConvVariant::kXpulpNN_HwQ,
                                    sim::CoreConfig::extended()));

  obs::Registry reg;
  reg.text("bench", "sim_throughput");
  reg.text("unit", "host MIPS");
  double min_fast_speedup = 1e30;
  double min_sb_speedup = 1e30;

  const auto add_measurement = [&reg](const std::string& prefix,
                                      const Measurement& m) {
    reg.counter(prefix + ".instructions", m.instructions);
    reg.gauge(prefix + ".host_seconds", m.host_seconds);
    reg.gauge(prefix + ".mips", m.mips());
  };

  for (const Workload& w : workloads) {
    const ModeResults r = measure_modes(w);
    const double fast_speedup = r.fast.mips() / r.ref.mips();
    const double sb_speedup = r.superblock.mips() / r.ref.mips();
    min_fast_speedup = std::min(min_fast_speedup, fast_speedup);
    min_sb_speedup = std::min(min_sb_speedup, sb_speedup);
    const double fused =
        r.coverage_instructions != 0
            ? static_cast<double>(r.coverage.fused_instructions) /
                  static_cast<double>(r.coverage_instructions)
            : 0;

    const std::string name = w.platform + "/" + w.variant;
    std::printf("%-28s %10.2f %10.2f %10.2f %10.2f %6.2fx %6.2fx %6.1f%%\n",
                name.c_str(), static_cast<double>(r.ref.instructions) / 1e6,
                r.ref.mips(), r.fast.mips(), r.superblock.mips(), fast_speedup,
                sb_speedup, 100 * fused);

    const std::string key = "workloads." + w.platform + "_" + w.variant;
    reg.text(key + ".platform", w.platform);
    reg.text(key + ".variant", w.variant);
    reg.counter(key + ".bits", w.bits);
    add_measurement(key + ".reference", r.ref);
    add_measurement(key + ".fast", r.fast);
    add_measurement(key + ".superblock", r.superblock);
    obs::add_superblock_stats(reg, key + ".superblock.coverage", r.coverage,
                              r.coverage_instructions);
    reg.gauge(key + ".speedup", fast_speedup);
    reg.gauge(key + ".superblock_speedup", sb_speedup);
  }
  reg.gauge("min_speedup", min_fast_speedup);
  reg.gauge("min_superblock_speedup", min_sb_speedup);

  if (!save_bench_json(reg, "BENCH_throughput.json")) return 1;
  std::printf("min speedup: fast %.2fx, superblock %.2fx\n", min_fast_speedup,
              min_sb_speedup);
  if (required_speedup > 0 && min_sb_speedup < required_speedup) {
    std::fprintf(stderr,
                 "FAIL: superblock speedup %.2fx below required %.2fx\n",
                 min_sb_speedup, required_speedup);
    return 1;
  }
  return 0;
}
