// Host-throughput benchmark of the interpreter itself: simulated MIPS
// (million instructions per host second) for the paper's convolution layer,
// comparing the legacy switch-on-mnemonic reference interpreter against the
// predecoded handler-table fast path. Both modes are cycle-identical by
// construction (see test_dispatch_diff); this bench quantifies the host
// speed gained by moving classification work to decode time.
//
// Emits BENCH_throughput.json (obs::Registry JSON) next to the binary's
// working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/memory.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "qnn/pack.hpp"
#include "sim/core.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct Workload {
  std::string platform;
  std::string variant;
  unsigned bits = 0;
  kernels::ConvKernel kernel;
  mem::Memory pristine;  // loaded program + layer data, untouched by runs
  sim::CoreConfig cfg;
};

struct Measurement {
  u64 instructions = 0;
  double host_seconds = 0;
  double mips() const {
    return host_seconds > 0
               ? static_cast<double>(instructions) / host_seconds / 1e6
               : 0;
  }
};

Workload make_workload(unsigned bits, ConvVariant v, sim::CoreConfig cfg) {
  const auto data =
      kernels::ConvLayerData::random(qnn::ConvSpec::paper_layer(bits), kSeed);
  const qnn::ConvSpec& spec = data.spec;  // requant_shift calibrated
  Workload w{cfg.name,
             kernels::variant_name(v),
             bits,
             kernels::generate_conv_kernel(spec, v, 0x40000),
             mem::Memory{},
             std::move(cfg)};
  w.kernel.program.load(w.pristine);
  w.pristine.write_block(w.kernel.layout.input,
                         qnn::pack_tensor(data.input, spec.in_bits));
  w.pristine.write_block(w.kernel.layout.weights,
                         qnn::pack_filter_bank(data.weights, spec.w_bits));
  if (spec.out_bits != 8) {
    w.pristine.write_block(w.kernel.layout.thresholds,
                           data.thresholds.serialize());
  }
  return w;
}

/// One timed repetition: restore memory from the pristine image, reset and
/// run the kernel to completion, accumulating host time and instructions.
void one_rep(const Workload& w, sim::Core& core, mem::Memory& mem,
             Measurement& m) {
  mem = w.pristine;
  core.reset(w.kernel.program.entry(),
             w.kernel.program.base() + w.kernel.program.size_bytes());
  core.reset_perf();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::HaltReason r = core.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r != sim::HaltReason::kEcall) {
    std::fprintf(stderr, "kernel did not complete\n");
    std::exit(1);
  }
  m.host_seconds += std::chrono::duration<double>(t1 - t0).count();
  m.instructions += core.perf().instructions;
}

struct ModeResults {
  Measurement ref, fast, superblock;
  /// Superblock coverage from one clean repetition (Core::reset clears the
  /// engine stats, so a single rep reports exactly one kernel run).
  sim::SuperblockStats coverage;
  u64 coverage_instructions = 0;
};

/// Measure the three dispatch modes in alternating *rounds* and report each
/// mode's best round. Round-level interleaving keeps slow host-clock drift
/// (thermal, scheduler) from biasing the ratios, each round is long enough
/// that cross-mode cache/predictor pollution at the switch is amortized
/// away, and taking the best round discards downward scheduler noise
/// symmetrically for every mode. The first repetition of every round is a
/// warm-up and not counted.
ModeResults measure_modes(const Workload& w, double round_seconds = 0.25,
                          int rounds = 5) {
  ModeResults out;
  mem::Memory mem;
  sim::Core core(mem, w.cfg);

  for (int r = 0; r < rounds; ++r) {
    for (int mode = 0; mode < 3; ++mode) {
      core.set_reference_dispatch(mode == 0);
      core.set_superblock(mode == 2);
      Measurement warm;
      one_rep(w, core, mem, warm);
      Measurement round;
      while (round.host_seconds < round_seconds) one_rep(w, core, mem, round);
      Measurement& best =
          mode == 0 ? out.ref : mode == 1 ? out.fast : out.superblock;
      if (round.mips() > best.mips()) best = round;
    }
  }

  core.set_reference_dispatch(false);
  core.set_superblock(true);
  Measurement cov;
  one_rep(w, core, mem, cov);
  out.coverage = core.superblock_stats();
  out.coverage_instructions = cov.instructions;
  return out;
}

/// Sampler idle-cost guard: an installed-but-idle obs::Sampler (interval
/// far beyond the run length, so it never fires mid-run) must cost < 2%
/// of the no-observer fast path, and the simulated cost must be
/// bit-identical with and without the sampler attached. Rounds alternate
/// detached/idle and each configuration keeps its best round, the same
/// noise discipline as measure_modes.
struct GuardResult {
  Measurement detached, idle;
  bool cycles_identical = false;
  double ratio() const {
    return detached.mips() > 0 ? idle.mips() / detached.mips() : 0;
  }
};

GuardResult measure_sampler_guard(const Workload& w,
                                  double round_seconds = 0.25,
                                  int rounds = 3) {
  GuardResult out;
  mem::Memory mem;
  sim::Core core(mem, w.cfg);

  cycles_t detached_cycles = 0, idle_cycles = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int mode = 0; mode < 2; ++mode) {
      std::unique_ptr<obs::Sampler> sampler;
      if (mode == 1) {
        obs::Sampler::Options sopts;
        sopts.interval_cycles = cycles_t{1} << 62;  // never due mid-run
        sampler = std::make_unique<obs::Sampler>(core, sopts);
      }
      Measurement warm;
      one_rep(w, core, mem, warm);
      Measurement round;
      while (round.host_seconds < round_seconds) one_rep(w, core, mem, round);
      (mode == 0 ? detached_cycles : idle_cycles) = core.perf().cycles;
      Measurement& best = mode == 0 ? out.detached : out.idle;
      if (round.mips() > best.mips()) best = round;
      if (sampler) sampler->finalize();
    }
  }
  out.cycles_identical = (detached_cycles == idle_cycles);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup X: exit nonzero when the superblock-over-reference
  // speedup of any workload falls below X (the CI regression gate).
  // --guard-sampler [R]: also measure the idle-sampler cost and exit
  // nonzero when it retains less than R of the detached throughput
  // (default 0.98) or when the simulated cycle count changes at all.
  double required_speedup = 0;
  bool guard_sampler = false;
  double guard_ratio = 0.98;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-speedup" && i + 1 < argc) {
      required_speedup = std::strtod(argv[++i], nullptr);
    } else if (arg == "--guard-sampler") {
      guard_sampler = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        guard_ratio = std::strtod(argv[++i], nullptr);
      }
    } else {
      std::fprintf(stderr, "usage: %s [--min-speedup X] [--guard-sampler [R]]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("interpreter host throughput -- paper conv layer\n");
  std::printf("%-28s %10s %10s %10s %10s %7s %7s %7s\n", "workload", "minstr",
              "ref MIPS", "fast MIPS", "sb MIPS", "fast x", "sb x", "fused");

  std::vector<Workload> workloads;
  workloads.push_back(
      make_workload(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::ri5cy()));
  workloads.push_back(make_workload(4, ConvVariant::kXpulpNN_HwQ,
                                    sim::CoreConfig::extended()));

  obs::Registry reg;
  reg.text("bench", "sim_throughput");
  reg.text("unit", "host MIPS");
  double min_fast_speedup = 1e30;
  double min_sb_speedup = 1e30;

  const auto add_measurement = [&reg](const std::string& prefix,
                                      const Measurement& m) {
    reg.counter(prefix + ".instructions", m.instructions);
    reg.gauge(prefix + ".host_seconds", m.host_seconds);
    reg.gauge(prefix + ".mips", m.mips());
  };

  for (const Workload& w : workloads) {
    const ModeResults r = measure_modes(w);
    const double fast_speedup = r.fast.mips() / r.ref.mips();
    const double sb_speedup = r.superblock.mips() / r.ref.mips();
    min_fast_speedup = std::min(min_fast_speedup, fast_speedup);
    min_sb_speedup = std::min(min_sb_speedup, sb_speedup);
    const double fused =
        r.coverage_instructions != 0
            ? static_cast<double>(r.coverage.fused_instructions) /
                  static_cast<double>(r.coverage_instructions)
            : 0;

    const std::string name = w.platform + "/" + w.variant;
    std::printf("%-28s %10.2f %10.2f %10.2f %10.2f %6.2fx %6.2fx %6.1f%%\n",
                name.c_str(), static_cast<double>(r.ref.instructions) / 1e6,
                r.ref.mips(), r.fast.mips(), r.superblock.mips(), fast_speedup,
                sb_speedup, 100 * fused);

    const std::string key = "workloads." + w.platform + "_" + w.variant;
    reg.text(key + ".platform", w.platform);
    reg.text(key + ".variant", w.variant);
    reg.counter(key + ".bits", w.bits);
    add_measurement(key + ".reference", r.ref);
    add_measurement(key + ".fast", r.fast);
    add_measurement(key + ".superblock", r.superblock);
    obs::add_superblock_stats(reg, key + ".superblock.coverage", r.coverage,
                              r.coverage_instructions);
    reg.gauge(key + ".speedup", fast_speedup);
    reg.gauge(key + ".superblock_speedup", sb_speedup);
  }
  reg.gauge("min_speedup", min_fast_speedup);
  reg.gauge("min_superblock_speedup", min_sb_speedup);

  bool guard_ok = true;
  if (guard_sampler) {
    // Guard on the extended-core workload (the hot configuration).
    const GuardResult g = measure_sampler_guard(workloads.back());
    std::printf("idle-sampler guard: detached %.2f MIPS, idle %.2f MIPS "
                "(%.1f%% retained, cycles %s)\n",
                g.detached.mips(), g.idle.mips(), 100 * g.ratio(),
                g.cycles_identical ? "identical" : "DIVERGED");
    reg.gauge("guard.sampler.detached_mips", g.detached.mips());
    reg.gauge("guard.sampler.idle_mips", g.idle.mips());
    reg.gauge("guard.sampler.retained", g.ratio());
    reg.flag("guard.sampler.cycles_identical", g.cycles_identical);
    if (!g.cycles_identical) {
      std::fprintf(stderr,
                   "FAIL: attaching an idle sampler changed simulated cost\n");
      guard_ok = false;
    }
    if (g.ratio() < guard_ratio) {
      std::fprintf(stderr,
                   "FAIL: idle sampler retains %.1f%% of detached throughput "
                   "(< %.1f%%)\n",
                   100 * g.ratio(), 100 * guard_ratio);
      guard_ok = false;
    }
  }

  if (!save_bench_json(reg, "BENCH_throughput.json")) return 1;
  std::printf("min speedup: fast %.2fx, superblock %.2fx\n", min_fast_speedup,
              min_sb_speedup);
  if (required_speedup > 0 && min_sb_speedup < required_speedup) {
    std::fprintf(stderr,
                 "FAIL: superblock speedup %.2fx below required %.2fx\n",
                 min_sb_speedup, required_speedup);
    return 1;
  }
  return guard_ok ? 0 : 1;
}
