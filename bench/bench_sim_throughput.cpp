// Host-throughput benchmark of the interpreter itself: simulated MIPS
// (million instructions per host second) for the paper's convolution layer,
// comparing the legacy switch-on-mnemonic reference interpreter against the
// predecoded handler-table fast path. Both modes are cycle-identical by
// construction (see test_dispatch_diff); this bench quantifies the host
// speed gained by moving classification work to decode time.
//
// Emits BENCH_throughput.json (obs::Registry JSON) next to the binary's
// working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/memory.hpp"
#include "obs/registry.hpp"
#include "qnn/pack.hpp"
#include "sim/core.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

namespace {

struct Workload {
  std::string platform;
  std::string variant;
  unsigned bits = 0;
  kernels::ConvKernel kernel;
  mem::Memory pristine;  // loaded program + layer data, untouched by runs
  sim::CoreConfig cfg;
};

struct Measurement {
  u64 instructions = 0;
  double host_seconds = 0;
  double mips() const {
    return host_seconds > 0
               ? static_cast<double>(instructions) / host_seconds / 1e6
               : 0;
  }
};

Workload make_workload(unsigned bits, ConvVariant v, sim::CoreConfig cfg) {
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  Workload w{cfg.name,
             kernels::variant_name(v),
             bits,
             kernels::generate_conv_kernel(spec, v, 0x40000),
             mem::Memory{},
             std::move(cfg)};
  w.kernel.program.load(w.pristine);
  w.pristine.write_block(w.kernel.layout.input,
                         qnn::pack_tensor(data.input, spec.in_bits));
  w.pristine.write_block(w.kernel.layout.weights,
                         qnn::pack_filter_bank(data.weights, spec.w_bits));
  if (spec.out_bits != 8) {
    w.pristine.write_block(w.kernel.layout.thresholds,
                           data.thresholds.serialize());
  }
  return w;
}

/// One timed repetition: restore memory from the pristine image, reset and
/// run the kernel to completion, accumulating host time and instructions.
void one_rep(const Workload& w, sim::Core& core, mem::Memory& mem,
             Measurement& m) {
  mem = w.pristine;
  core.reset(w.kernel.program.entry(),
             w.kernel.program.base() + w.kernel.program.size_bytes());
  core.reset_perf();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::HaltReason r = core.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r != sim::HaltReason::kEcall) {
    std::fprintf(stderr, "kernel did not complete\n");
    std::exit(1);
  }
  m.host_seconds += std::chrono::duration<double>(t1 - t0).count();
  m.instructions += core.perf().instructions;
}

/// Measure both dispatch modes in alternating *rounds* and report each
/// mode's best round. Round-level interleaving keeps slow host-clock drift
/// (thermal, scheduler) from biasing the ratio, each round is long enough
/// that cross-mode cache/predictor pollution at the switch is amortized
/// away, and taking the best round discards downward scheduler noise
/// symmetrically for both modes. The first repetition of every round is a
/// warm-up and not counted.
std::pair<Measurement, Measurement> measure_pair(const Workload& w,
                                                 double round_seconds = 0.25,
                                                 int rounds = 5) {
  Measurement ref, fast;
  mem::Memory mem;
  sim::Core core(mem, w.cfg);

  for (int r = 0; r < rounds; ++r) {
    for (const bool reference : {true, false}) {
      core.set_reference_dispatch(reference);
      Measurement warm;
      one_rep(w, core, mem, warm);
      Measurement round;
      while (round.host_seconds < round_seconds) one_rep(w, core, mem, round);
      Measurement& best = reference ? ref : fast;
      if (round.mips() > best.mips()) best = round;
    }
  }
  return {ref, fast};
}

}  // namespace

int main() {
  std::printf("interpreter host throughput -- paper conv layer\n");
  std::printf("%-28s %10s %12s %12s %9s\n", "workload", "minstr",
              "ref MIPS", "fast MIPS", "speedup");

  std::vector<Workload> workloads;
  workloads.push_back(
      make_workload(8, ConvVariant::kXpulpV2_8b, sim::CoreConfig::ri5cy()));
  workloads.push_back(make_workload(4, ConvVariant::kXpulpNN_HwQ,
                                    sim::CoreConfig::extended()));

  obs::Registry reg;
  reg.text("bench", "sim_throughput");
  reg.text("unit", "host MIPS");
  double min_speedup = 1e30;

  const auto add_measurement = [&reg](const std::string& prefix,
                                      const Measurement& m) {
    reg.counter(prefix + ".instructions", m.instructions);
    reg.gauge(prefix + ".host_seconds", m.host_seconds);
    reg.gauge(prefix + ".mips", m.mips());
  };

  for (const Workload& w : workloads) {
    const auto [ref, fast] = measure_pair(w);
    const double speedup = fast.mips() / ref.mips();
    if (speedup < min_speedup) min_speedup = speedup;

    const std::string name = w.platform + "/" + w.variant;
    std::printf("%-28s %10.2f %12.2f %12.2f %8.2fx\n", name.c_str(),
                static_cast<double>(ref.instructions) / 1e6, ref.mips(),
                fast.mips(), speedup);

    const std::string key = "workloads." + w.platform + "_" + w.variant;
    reg.text(key + ".platform", w.platform);
    reg.text(key + ".variant", w.variant);
    reg.counter(key + ".bits", w.bits);
    add_measurement(key + ".reference", ref);
    add_measurement(key + ".fast", fast);
    reg.gauge(key + ".speedup", speedup);
  }
  reg.gauge("min_speedup", min_speedup);

  if (!save_bench_json(reg, "BENCH_throughput.json")) return 1;
  std::printf("min speedup %.2fx\n", min_speedup);
  return 0;
}
