// google-benchmark suite for the checkpoint subsystem: capture, serialize,
// deserialize and apply cost of single-core and cluster snapshots. The
// fault campaigns checkpoint every few thousand instructions, so snapshot
// cost directly bounds campaign throughput (and sets a sensible default
// for --ckpt-every).
#include <benchmark/benchmark.h>

#include "ckpt/snapshot.hpp"
#include "kernels/conv_layer.hpp"
#include "qnn/ref_layers.hpp"

namespace {

using namespace xpulp;

qnn::ConvSpec small_spec() {
  qnn::ConvSpec spec = qnn::ConvSpec::paper_layer(4);
  spec.in_h = spec.in_w = 6;
  spec.in_c = 16;
  spec.out_c = 8;
  return spec;
}

/// A core paused mid-kernel, the state every benchmark below snapshots.
struct PausedRun {
  mem::Memory mem;
  kernels::ConvKernel kernel;
  sim::Core core;

  PausedRun()
      : kernel(kernels::generate_conv_kernel(small_spec(),
                                             kernels::ConvVariant::kXpulpNN_HwQ)),
        core(mem, sim::CoreConfig::extended()) {
    const auto data = kernels::ConvLayerData::random(small_spec(), 11);
    kernel.program.load(mem);
    kernels::load_conv_data(data, kernel.layout, mem);
    core.reset(kernel.program.entry(),
               kernel.program.base() + kernel.program.size_bytes());
    for (int i = 0; i < 4000 && !core.halted(); ++i) core.step();
  }
};

void BM_CaptureCore(benchmark::State& state) {
  PausedRun run;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckpt::capture(run.core, run.mem));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          run.mem.size());
}
BENCHMARK(BM_CaptureCore);

void BM_SerializeCore(benchmark::State& state) {
  PausedRun run;
  const ckpt::Snapshot snap = ckpt::capture(run.core, run.mem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckpt::serialize(snap));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          run.mem.size());
}
BENCHMARK(BM_SerializeCore);

void BM_DeserializeCore(benchmark::State& state) {
  PausedRun run;
  const std::vector<u8> bytes = ckpt::serialize(ckpt::capture(run.core, run.mem));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckpt::deserialize(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_DeserializeCore);

void BM_ApplyCore(benchmark::State& state) {
  PausedRun run;
  const ckpt::Snapshot snap = ckpt::capture(run.core, run.mem);
  for (auto _ : state) {
    ckpt::apply(snap, run.core, run.mem);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          run.mem.size());
}
BENCHMARK(BM_ApplyCore);

void BM_CaptureCluster(benchmark::State& state) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = static_cast<int>(state.range(0));
  cluster::Cluster cl(ccfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckpt::capture(cl));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          cl.memory().size());
}
BENCHMARK(BM_CaptureCluster)->Arg(2)->Arg(8);

void BM_RoundtripSerializedCluster(benchmark::State& state) {
  cluster::ClusterConfig ccfg;
  ccfg.num_cores = static_cast<int>(state.range(0));
  cluster::Cluster cl(ccfg);
  const ckpt::Snapshot snap = ckpt::capture(cl);
  for (auto _ : state) {
    const std::vector<u8> bytes = ckpt::serialize(snap);
    ckpt::Snapshot back = ckpt::deserialize(bytes);
    ckpt::apply(back, cl);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          cl.memory().size());
}
BENCHMARK(BM_RoundtripSerializedCluster)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
