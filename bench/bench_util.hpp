// Shared machinery for the table/figure reproduction benches: run the
// paper's convolution layer (16x16x32 input, 64 3x3x32 filters) on a
// platform and collect cycles + power + efficiency.
#pragma once

#include <cstdio>
#include <string>

#include "armv7e/cmsis_conv.hpp"
#include "kernels/conv_layer.hpp"
#include "obs/registry.hpp"
#include "power/power_model.hpp"

namespace xpulp::bench {

inline constexpr u64 kSeed = 7;  // all benches use the same synthetic layer

struct PlatformResult {
  std::string platform;
  unsigned bits = 0;
  cycles_t cycles = 0;
  u64 macs = 0;
  double freq_hz = 0;
  double power_mw = 0;
  cycles_t quant_cycles = 0;
  u64 qnt_stall_cycles = 0;
  bool output_ok = false;

  double macs_per_cycle() const {
    return cycles ? static_cast<double>(macs) / static_cast<double>(cycles) : 0;
  }
  double runtime_ms() const {
    return static_cast<double>(cycles) / freq_hz * 1e3;
  }
  double gmac_s_w() const {
    const double macs_per_s = static_cast<double>(macs) * freq_hz /
                              static_cast<double>(cycles);
    return macs_per_s / (power_mw * 1e-3) * 1e-9;
  }
};

/// Run the paper layer at `bits` with a RISC-V kernel variant on a core
/// configuration; fills power from the activity-based model.
inline PlatformResult run_riscv(unsigned bits, kernels::ConvVariant v,
                                sim::CoreConfig cfg,
                                power::OperatingPoint op = {}) {
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  const auto res = kernels::run_conv_layer(data, v, cfg);
  const auto gold = data.golden();
  bool ok = true;
  for (int i = 0; i < gold.elems() && ok; ++i) {
    ok = gold.flat(i) == res.output.flat(i);
  }
  const auto p =
      power::estimate_power(res.perf, res.activity, res.mem_stats, cfg, op);
  PlatformResult r;
  r.platform = cfg.name + "/" + kernels::variant_name(v);
  r.bits = bits;
  r.cycles = res.perf.cycles;
  r.macs = res.macs;
  r.freq_hz = op.freq_hz;
  r.power_mw = p.soc_mw();
  r.quant_cycles = res.quant_cycles;
  r.qnt_stall_cycles = res.perf.qnt_stall_cycles;
  r.output_ok = ok;
  return r;
}

/// Run the paper layer on the ARM Cortex-M models with datasheet power.
inline PlatformResult run_arm(unsigned bits, armv7e::ArmModel model) {
  const auto spec = qnn::ConvSpec::paper_layer(bits);
  const auto data = kernels::ConvLayerData::random(spec, kSeed);
  const auto res = armv7e::run_conv_layer_arm(data, model);
  const auto gold = data.golden();
  bool ok = true;
  for (int i = 0; i < gold.elems() && ok; ++i) {
    ok = gold.flat(i) == res.output.flat(i);
  }
  const auto plat = (model == armv7e::ArmModel::kCortexM4)
                        ? power::stm32l4_platform()
                        : power::stm32h7_platform();
  PlatformResult r;
  r.platform = plat.name;
  r.bits = bits;
  r.cycles = res.perf.cycles;
  r.macs = res.macs;
  r.freq_hz = plat.freq_hz;
  r.power_mw = plat.power_mw;
  r.output_ok = ok;
  return r;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("workload: conv 16x16x32 input, 64 filters 3x3x32 (4.72 MMAC)\n");
  std::printf("================================================================\n");
}

inline const char* okstr(bool ok) { return ok ? "ok" : "MISMATCH"; }

/// Publish a platform result under `prefix` in the metrics registry, so
/// benches can emit their tables as Registry JSON instead of hand-rolled
/// string building.
inline void add_platform_result(obs::Registry& reg, const std::string& prefix,
                                const PlatformResult& r) {
  reg.text(prefix + ".platform", r.platform);
  reg.counter(prefix + ".bits", r.bits);
  reg.counter(prefix + ".cycles", r.cycles);
  reg.counter(prefix + ".macs", r.macs);
  reg.counter(prefix + ".quant_cycles", r.quant_cycles);
  reg.counter(prefix + ".qnt_stall_cycles", r.qnt_stall_cycles);
  reg.gauge(prefix + ".macs_per_cycle", r.macs_per_cycle());
  reg.flag(prefix + ".output_ok", r.output_ok);
}

/// Save the registry next to the working directory and report the path.
inline bool save_bench_json(const obs::Registry& reg, const char* path) {
  if (!reg.save_json(path)) {
    std::fprintf(stderr, "could not write %s\n", path);
    return false;
  }
  std::printf("\nwrote %s\n", path);
  return true;
}

}  // namespace xpulp::bench
