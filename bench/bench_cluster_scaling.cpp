// Extension bench: multi-core scaling of the XpulpNN convolution kernels
// on a PULP cluster with shared banked TCDM (row-partitioned parallelism).
// The paper's conclusion points at cluster integration as the scaling path;
// PULP-NN reports near-linear speedups on 8-core clusters.
#include "bench_util.hpp"
#include "cluster/parallel_conv.hpp"

using namespace xpulp;
using namespace xpulp::bench;
using kernels::ConvVariant;

int main() {
  print_header("Cluster scaling -- XpulpNN cores on a shared banked TCDM");

  bool all_ok = true;
  for (unsigned bits : {8u, 4u, 2u}) {
    const auto spec = qnn::ConvSpec::paper_layer(bits);
    const auto data = kernels::ConvLayerData::random(spec, kSeed);
    const auto gold = data.golden();
    const ConvVariant v = (bits == 8) ? ConvVariant::kXpulpV2_8b
                                      : ConvVariant::kXpulpNN_HwQ;

    std::printf("\n%u-bit kernel:\n", bits);
    std::printf("%7s %12s %9s %9s %11s %14s %7s\n", "cores", "makespan",
                "speedup", "MAC/cyc", "conflicts", "conflict-rate", "check");
    cycles_t single = 0;
    for (const int n : {1, 2, 4, 8, 16}) {
      cluster::ClusterConfig cfg;
      cfg.num_cores = n;
      const auto res = cluster::run_parallel_conv(data, v, cfg);
      if (n == 1) single = res.stats.makespan;
      bool ok = true;
      for (int i = 0; i < gold.elems() && ok; ++i) {
        ok = gold.flat(i) == res.output.flat(i);
      }
      all_ok = all_ok && ok;
      std::printf("%7d %12llu %8.2fx %9.2f %11llu %13.2f%% %7s\n", n,
                  static_cast<unsigned long long>(res.stats.makespan),
                  static_cast<double>(single) / res.stats.makespan,
                  res.macs_per_cycle(),
                  static_cast<unsigned long long>(res.stats.bank_conflicts),
                  100.0 * res.stats.conflict_rate(), okstr(ok));
    }
  }
  std::printf("\n(PULP-NN reports near-linear scaling on 8-core clusters;\n");
  std::printf(" conflicts stay low because the TCDM has 2 banks per core.)\n");
  return all_ok ? 0 : 1;
}
